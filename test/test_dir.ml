(* Tests for Fr_sched.Dir — the direction abstraction the schedulers use
   for movement bounds and chain propagation.  Focus: the degenerate
   shapes the sweeps never hit (empty table, single entry, constraints
   absent from the TCAM). *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sorted l = List.sort compare l

let targets dir g id =
  let acc = ref [] in
  Dir.propagation_targets dir g id (fun x -> acc := x :: !acc);
  sorted !acc

let test_unconstrained_entry () =
  (* A node with no edges: free to move anywhere in either direction. *)
  let g = Graph.create () in
  Graph.add_node g 1;
  let tcam = Tcam.create ~size:16 in
  Tcam.write tcam ~rule_id:1 ~addr:7;
  check_int "Up bound = top of table" 15 (Dir.bound Dir.Up g tcam 1);
  check_int "Down bound = bottom of table" 0 (Dir.bound Dir.Down g tcam 1);
  check "no next hop up" true (Dir.next_hop Dir.Up g tcam 1 = None);
  check "no next hop down" true (Dir.next_hop Dir.Down g tcam 1 = None);
  check "no propagation targets" true
    (targets Dir.Up g 1 = [] && targets Dir.Down g 1 = [])

let test_empty_tcam () =
  (* Edges exist in the graph but nobody is placed yet: constraints that
     are not in the TCAM must not constrain. *)
  let g = Graph.create () in
  List.iter (Graph.add_node g) [ 1; 2 ];
  Graph.add_edge g 1 2;
  let tcam = Tcam.create ~size:8 in
  check_int "Up bound ignores unplaced dependency" 7 (Dir.bound Dir.Up g tcam 1);
  check_int "Down bound ignores unplaced dependent" 0 (Dir.bound Dir.Down g tcam 2);
  check "next hop none (empty table)" true
    (Dir.next_hop Dir.Up g tcam 1 = None
    && Dir.next_hop Dir.Down g tcam 2 = None)

let test_nearest_constraint_wins () =
  (* 1 depends on 2 and 3; Up must bound at the nearer (lower-addressed)
     dependency.  4 and 5 depend on 3; Down must bound 3 at the nearer
     (higher-addressed) dependent. *)
  let g = Graph.create () in
  List.iter (Graph.add_node g) [ 1; 2; 3; 4; 5 ];
  Graph.add_edge g 1 2;
  Graph.add_edge g 1 3;
  Graph.add_edge g 4 3;
  Graph.add_edge g 5 3;
  let tcam = Tcam.create ~size:32 in
  Tcam.write tcam ~rule_id:1 ~addr:0;
  Tcam.write tcam ~rule_id:4 ~addr:2;
  Tcam.write tcam ~rule_id:5 ~addr:4;
  Tcam.write tcam ~rule_id:2 ~addr:9;
  Tcam.write tcam ~rule_id:3 ~addr:6;
  check_int "Up bound is nearest dependency" 6 (Dir.bound Dir.Up g tcam 1);
  check "Up next hop" true (Dir.next_hop Dir.Up g tcam 1 = Some 6);
  check_int "Down bound is nearest dependent" 4 (Dir.bound Dir.Down g tcam 3);
  check "Down next hop" true (Dir.next_hop Dir.Down g tcam 3 = Some 4);
  (* propagation: who reads whose metric *)
  check "Up: dependents read 3" true (targets Dir.Up g 3 = [ 1; 4; 5 ]);
  check "Down: dependencies read 1" true (targets Dir.Down g 1 = [ 2; 3 ])

let test_partial_placement () =
  (* Only one of two dependencies is placed: the bound must come from the
     placed one alone. *)
  let g = Graph.create () in
  List.iter (Graph.add_node g) [ 1; 2; 3 ];
  Graph.add_edge g 1 2;
  Graph.add_edge g 1 3;
  let tcam = Tcam.create ~size:16 in
  Tcam.write tcam ~rule_id:1 ~addr:1;
  Tcam.write tcam ~rule_id:3 ~addr:11;
  check_int "bound from the placed dependency" 11 (Dir.bound Dir.Up g tcam 1);
  check "next hop from the placed dependency" true
    (Dir.next_hop Dir.Up g tcam 1 = Some 11)

let test_to_string () =
  check "names" true
    (Dir.to_string Dir.Up = "up" && Dir.to_string Dir.Down = "down")

let suite =
  [
    ( "dir",
      [
        Alcotest.test_case "unconstrained entry" `Quick test_unconstrained_entry;
        Alcotest.test_case "empty tcam" `Quick test_empty_tcam;
        Alcotest.test_case "nearest constraint wins" `Quick
          test_nearest_constraint_wins;
        Alcotest.test_case "partial placement" `Quick test_partial_placement;
        Alcotest.test_case "to_string" `Quick test_to_string;
      ] );
  ]
