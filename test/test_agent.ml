open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_policy () = Dataset.generate Dataset.FW4 ~seed:61 ~n:80

(* Compare hardware lookup against the linear specification on packets
   sampled inside installed rules (random 104-bit packets almost never hit
   anything) plus a few uniform ones. *)
let lookups_agree rng agent =
  let ok = ref true in
  let probe pkt =
    let hw = Agent.lookup agent pkt and spec = Agent.semantic_lookup agent pkt in
    let same =
      match (hw, spec) with
      | None, None -> true
      | Some a, Some b -> a.Rule.id = b.Rule.id
      | _ -> false
    in
    if not same then ok := false
  in
  List.iter
    (fun (r : Rule.t) ->
      for _ = 1 to 3 do
        probe (Header.packet_in rng r.Rule.field)
      done)
    (Agent.rules agent);
  for _ = 1 to 20 do
    probe (Header.random_packet rng)
  done;
  !ok

let test_of_rules_and_lookup () =
  let rules = small_policy () in
  let agent = Agent.of_rules ~capacity:200 rules in
  check_int "loaded" 80 (Agent.rule_count agent);
  let rng = Rng.create ~seed:62 in
  check "lookup = spec" true (lookups_agree rng agent)

let test_add_remove_set_action () =
  let agent = Agent.create ~verify:true ~capacity:64 () in
  let mk id prio s =
    Rule.make ~id
      ~field:(Header.pack { Header.wildcard with
                            Header.dst_ip = Ternary.prefix_of_int64 ~width:32 ~plen:prio s })
      ~action:(Rule.Forward id) ~priority:prio
  in
  let broad = mk 1 8 0x0A000000L in
  let narrow = mk 2 24 0x0A000100L in
  check "add broad" true (Agent.apply agent (Agent.Add broad) = Ok ());
  check "add narrow" true (Agent.apply agent (Agent.Add narrow) = Ok ());
  check_int "two rules" 2 (Agent.rule_count agent);
  check "dup rejected" true (Result.is_error (Agent.apply agent (Agent.Add broad)));
  (* Narrow must shadow broad for packets in its prefix. *)
  let rng = Rng.create ~seed:63 in
  let pkt = Header.packet_in rng narrow.Rule.field in
  check "narrow wins" true
    (match Agent.lookup agent pkt with Some r -> r.Rule.id = 2 | None -> false);
  (* Action rewrite in place: still the same match outcome, new action. *)
  check "set action" true
    (Agent.apply agent (Agent.Set_action { id = 2; action = Rule.Drop }) = Ok ());
  check "action updated" true
    (match Agent.lookup agent pkt with
    | Some r -> Rule.equal_action r.Rule.action Rule.Drop
    | None -> false);
  (* Remove the narrow rule: broad takes over. *)
  check "remove" true (Agent.apply agent (Agent.Remove { id = 2 }) = Ok ());
  check "broad now matches" true
    (match Agent.lookup agent pkt with Some r -> r.Rule.id = 1 | None -> false);
  check "remove missing rejected" true
    (Result.is_error (Agent.apply agent (Agent.Remove { id = 2 })));
  check "set-action missing rejected" true
    (Result.is_error
       (Agent.apply agent (Agent.Set_action { id = 99; action = Rule.Drop })))

let test_removal_keeps_transitive_shadowing () =
  (* a (broad, low prio) / b (middle) / c (narrow, high prio): after
     removing b, packets in c must still hit c, not a. *)
  let mk id plen v =
    Rule.make ~id
      ~field:(Header.pack { Header.wildcard with
                            Header.dst_ip = Ternary.prefix_of_int64 ~width:32 ~plen v })
      ~action:(Rule.Forward id) ~priority:plen
  in
  let a = mk 1 8 0x0A000000L in
  let b = mk 2 16 0x0A0B0000L in
  let c = mk 3 24 0x0A0B0C00L in
  let agent = Agent.of_rules ~verify:true ~capacity:16 [| a; b; c |] in
  check "remove middle" true (Agent.apply agent (Agent.Remove { id = 2 }) = Ok ());
  let rng = Rng.create ~seed:64 in
  let pkt = Header.packet_in rng c.Rule.field in
  check "narrow still wins" true
    (match Agent.lookup agent pkt with Some r -> r.Rule.id = 3 | None -> false);
  check "lookup = spec" true (lookups_agree rng agent)

let test_random_mod_stream_semantics () =
  (* The big one: a random flow-mod stream with verification on; after
     every mod the hardware must agree with the specification. *)
  let rng = Rng.create ~seed:65 in
  List.iter
    (fun kind ->
      let rules = Dataset.generate Dataset.ACL4 ~seed:66 ~n:60 in
      let agent = Agent.of_rules ~kind ~verify:true ~capacity:256 rules in
      let next_id = ref 1_000 in
      for _ = 1 to 80 do
        let installed = Agent.rules agent in
        let n_inst = List.length installed in
        let choice = Rng.int rng 10 in
        if choice < 5 || n_inst < 5 then begin
          (* add: a refinement of an existing rule or a fresh random one *)
          let id = !next_id in
          incr next_id;
          let field =
            if Rng.chance rng 0.5 && n_inst > 0 then begin
              let parent = List.nth installed (Rng.int rng n_inst) in
              (* Specialise: pin some wildcard bits of the parent. *)
              let f = ref parent.Rule.field in
              for pos = 0 to Ternary.width !f - 1 do
                if Ternary.get !f pos = Ternary.Any && Rng.chance rng 0.3 then
                  f :=
                    Ternary.set !f pos
                      (if Rng.bool rng then Ternary.One else Ternary.Zero)
              done;
              !f
            end
            else
              Header.pack
                {
                  Header.wildcard with
                  Header.dst_ip =
                    Ternary.prefix_of_int64 ~width:32
                      ~plen:(8 + Rng.int rng 25)
                      (Rng.bits64 rng);
                  proto = Ternary.exact_of_int64 ~width:8 6L;
                }
          in
          let r =
            Rule.make ~id ~field
              ~action:(Rule.Forward (Rng.int rng 8))
              ~priority:(Ternary.width field - Ternary.num_wildcards field)
          in
          match Agent.apply agent (Agent.Add r) with
          | Ok () | Error _ -> ()
        end
        else if choice < 8 && n_inst > 0 then begin
          let victim = List.nth installed (Rng.int rng n_inst) in
          match Agent.apply agent (Agent.Remove { id = victim.Rule.id }) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "remove failed: %s" e
        end
        else if n_inst > 0 then begin
          let victim = List.nth installed (Rng.int rng n_inst) in
          match
            Agent.apply agent
              (Agent.Set_action
                 { id = victim.Rule.id; action = Rule.Forward (Rng.int rng 8) })
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "set-action failed: %s" e
        end;
        check "invariant" true
          (Tcam.check_dag_order (Agent.tcam agent) (Agent.graph agent) = Ok ())
      done;
      check
        (Firmware.algo_kind_name kind ^ ": final lookup = spec")
        true (lookups_agree rng agent))
    [ Firmware.FR_O Store.Bit_backend; Firmware.FR_SB Store.Seg_backend ]

let test_flow_counters () =
  let rules = small_policy () in
  let agent = Agent.of_rules ~capacity:200 rules in
  let rng = Rng.create ~seed:67 in
  let target = rules.(5) in
  let hits = ref 0 in
  for _ = 1 to 25 do
    let pkt = Header.packet_in rng target.Rule.field in
    match Agent.lookup agent pkt with
    | Some r when r.Rule.id = target.Rule.id -> incr hits
    | Some _ | None -> ()
  done;
  check_int "counter = observed hits" !hits (Agent.packet_count agent target.Rule.id);
  check_int "total" 25 (Agent.total_packets agent);
  check "misses + matches = total" true
    (Agent.miss_count agent <= Agent.total_packets agent);
  check_int "unknown rule" 0 (Agent.packet_count agent 123_456);
  (* Counter survives an action rewrite and dies with removal. *)
  (match Agent.apply agent (Agent.Set_action { id = target.Rule.id; action = Rule.Drop }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "set-action: %s" e);
  check_int "survives set-action" !hits (Agent.packet_count agent target.Rule.id);
  (match Agent.apply agent (Agent.Remove { id = target.Rule.id }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "remove: %s" e);
  check_int "gone after remove" 0 (Agent.packet_count agent target.Rule.id)

let test_snapshot_restore () =
  let rules = small_policy () in
  let agent = Agent.of_rules ~capacity:200 rules in
  (* Mutate a bit first. *)
  (match Agent.apply agent (Agent.Remove { id = 3 }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "remove: %s" e);
  let path = Filename.temp_file "fastrule_agent" ".rules" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Agent.save agent path;
      match Agent.restore ~capacity:200 path with
      | Error e -> Alcotest.failf "restore: %s" e
      | Ok back ->
          check_int "same rule count" (Agent.rule_count agent) (Agent.rule_count back);
          (* Same semantics: probe packets inside every rule. *)
          let rng = Rng.create ~seed:68 in
          List.iter
            (fun (r : Rule.t) ->
              let pkt = Header.packet_in rng r.Rule.field in
              let id (x : Rule.t option) = Option.map (fun (r : Rule.t) -> r.Rule.id) x in
              check "same lookup" true
                (id (Agent.lookup agent pkt) = id (Agent.lookup back pkt)))
            (Agent.rules agent));
  check "restore missing file" true
    (Result.is_error (Agent.restore ~capacity:10 "/nonexistent/agent.rules"))

(* Satellite property: snapshot -> save -> restore is the identity on the
   installed table for every scheduler kind — the contract the [Fr_resil]
   checkpoint/recovery path leans on. *)
let all_kinds =
  [
    Firmware.Naive;
    Firmware.Ruletris;
    Firmware.FR_O Store.Bit_backend;
    Firmware.FR_SD Store.Bit_backend;
    Firmware.FR_SB Store.Bit_backend;
  ]

let prop_snapshot_roundtrip =
  QCheck.Test.make ~count:20
    ~name:"agent snapshot/save/restore round-trips (every scheduler kind)"
    QCheck.(pair (int_bound 1_000) (int_bound 40))
    (fun (seed, ops) ->
      let pool = Dataset.generate Dataset.ACL4 ~seed:(seed + 1) ~n:40 in
      List.for_all
        (fun kind ->
          let agent = Agent.of_rules ~kind ~capacity:200 (Array.sub pool 0 20) in
          let rng = Rng.create ~seed in
          for _ = 1 to ops do
            let i = Rng.int rng 40 in
            let fm =
              match Rng.int rng 3 with
              | 0 -> Agent.Add pool.(i)
              | 1 -> Agent.Remove { id = pool.(i).Rule.id }
              | _ ->
                  Agent.Set_action
                    { id = pool.(i).Rule.id; action = Rule.Forward (Rng.int rng 8) }
            in
            ignore (Agent.apply agent fm)
          done;
          let path = Filename.temp_file "fr_snap" ".rules" in
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              Agent.save agent path;
              match Agent.restore ~kind ~capacity:200 path with
              | Error e ->
                  QCheck.Test.fail_reportf "restore (%s): %s"
                    (Firmware.algo_kind_name kind) e
              | Ok back ->
                  Agent.snapshot agent = Agent.snapshot back
                  && Agent.rule_count agent = Agent.rule_count back
                  && Agent.verify_consistent back = Ok ()
                  && lookups_agree (Rng.create ~seed:(seed + 2)) back))
        all_kinds)

let test_meters () =
  let rules = small_policy () in
  let agent = Agent.of_rules ~capacity:200 rules in
  let id = 5_000 in
  let r =
    Rule.make ~id
      ~field:(Header.pack Header.wildcard)
      ~action:Rule.Drop ~priority:0
  in
  (match Agent.apply agent (Agent.Add r) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "add: %s" e);
  check_int "mods" 1 (Agent.mods_applied agent);
  check "tcam time accrued" true (Agent.tcam_ms_total agent > 0.0);
  check "capacity" true (Agent.capacity agent = 200)

let suite =
  [
    ( "agent",
      [
        Alcotest.test_case "bulk load + lookup" `Quick test_of_rules_and_lookup;
        Alcotest.test_case "add/remove/set-action" `Quick test_add_remove_set_action;
        Alcotest.test_case "removal keeps shadowing" `Quick
          test_removal_keeps_transitive_shadowing;
        Alcotest.test_case "random mod stream semantics" `Quick
          test_random_mod_stream_semantics;
        Alcotest.test_case "flow counters" `Quick test_flow_counters;
        Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
        Alcotest.test_case "meters" `Quick test_meters;
        QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
      ] );
  ]
