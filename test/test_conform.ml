(* Tests for the Fr_conform harness: trace serialization round-trips, the
   differential oracle is clean on honest schedulers and catches sabotaged
   ones, the shrinker produces small reproducers, and fault injection
   through Agent and the Fr_ctrl shards leaves the dependency invariant
   standing with failures isolated. *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_trace ?(seed = 7) ?(kind = Dataset.FW5) ?(events = 60) () =
  Trace.generate ~kind ~seed ~initial:100 ~pool:200 ~capacity:400 ~events ()

(* --- trace ------------------------------------------------------------- *)

let test_trace_roundtrip () =
  let t = small_trace () in
  (match Trace.of_string (Trace.to_string t) with
  | Ok t' -> check "round-trip" true (t = t')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* with recordings attached (the oracle's --record path) *)
  let report = Oracle.run ~config:{ Oracle.default_config with Oracle.record = true } t in
  let rt = report.Oracle.trace in
  check "recordings present" true (List.length rt.Trace.recordings = 5);
  match Trace.of_string (Trace.to_string rt) with
  | Ok rt' -> check "round-trip with recordings" true (rt = rt')
  | Error e -> Alcotest.failf "parse with recordings failed: %s" e

let test_trace_generation_shape () =
  let t = small_trace ~events:200 () in
  check_int "event count" 200 (List.length t.Trace.events);
  (* replaying the live/free bookkeeping: adds target absent rules,
     removes/set-actions target live ones *)
  let live = Hashtbl.create 64 in
  for i = 0 to t.Trace.initial - 1 do
    Hashtbl.replace live i ()
  done;
  List.iter
    (fun ev ->
      match ev with
      | Trace.Add i ->
          check "add targets absent rule" false (Hashtbl.mem live i);
          check "add within pool" true (i >= 0 && i < t.Trace.pool);
          Hashtbl.replace live i ()
      | Trace.Remove i ->
          check "remove targets live rule" true (Hashtbl.mem live i);
          Hashtbl.remove live i
      | Trace.Set_action (i, _) ->
          check "set targets live rule" true (Hashtbl.mem live i))
    t.Trace.events;
  (* determinism *)
  check "same seed, same trace" true (small_trace ~events:200 () = small_trace ~events:200 ());
  check "different seed, different trace" false
    (small_trace ~seed:8 () = small_trace ~seed:9 ())

let test_trace_rejects_garbage () =
  let bad s =
    match Trace.of_string s with Ok _ -> false | Error _ -> true
  in
  check "bad magic" true (bad "not a trace\n");
  check "truncated" true
    (bad "fastrule-conform-trace v1\nkind fw5\nseed 1\ninitial 1\npool 2\ncapacity 8\nevents 3\na 1\nend\n");
  check "bad event" true
    (bad "fastrule-conform-trace v1\nkind fw5\nseed 1\ninitial 1\npool 2\ncapacity 8\nevents 1\nq 1\nend\n")

(* --- oracle: clean runs ----------------------------------------------- *)

let test_oracle_clean () =
  List.iter
    (fun (kind, seed) ->
      let t = small_trace ~kind ~seed () in
      let r = Oracle.run t in
      check "clean" true (Oracle.clean r);
      check_int "five schedulers" 5 (List.length r.Oracle.columns);
      check "ops were checked" true (r.Oracle.checked_ops > 0);
      List.iter
        (fun (c : Oracle.column) ->
          check "every lane applied something" true (c.Oracle.applied > 0))
        r.Oracle.columns)
    [ (Dataset.ACL4, 3); (Dataset.FW5, 7); (Dataset.ROUTE, 11) ]

let test_oracle_tight_capacity_skew_allowed () =
  (* Barely-fitting tables: schedulers may legitimately disagree on which
     inserts they can place (Table_full-style rejections) — that is skew,
     not divergence. *)
  let t =
    Trace.generate ~kind:Dataset.ACL4 ~seed:5 ~initial:90 ~pool:180
      ~capacity:110 ~events:80 ()
  in
  let r = Oracle.run t in
  check "clean despite rejections" true (Oracle.clean r)

let test_oracle_replay_determinism () =
  let t = small_trace () in
  let r1 = Oracle.run ~config:{ Oracle.default_config with Oracle.record = true } t in
  (* replaying the recorded trace must reproduce every emission *)
  let r2 = Oracle.run r1.Oracle.trace in
  check "replay clean" true (Oracle.clean r2)

(* --- oracle: catching saboteurs ---------------------------------------- *)

let break_config mode =
  { Oracle.default_config with Oracle.sabotage = [ ("fr-o", mode) ] }

let test_oracle_catches_sabotage () =
  List.iter
    (fun mode ->
      let t = small_trace ~events:100 () in
      let r = Oracle.run ~config:(break_config mode) t in
      check
        (Printf.sprintf "sabotage %s caught" (Sabotage.mode_to_string mode))
        false (Oracle.clean r);
      (* the culprit is named, and honest schedulers are not accused *)
      check "culprit identified" true
        (List.for_all
           (fun (d : Oracle.divergence) -> d.Oracle.scheduler = "fr-o")
           r.Oracle.divergences);
      let col =
        List.find (fun (c : Oracle.column) -> c.Oracle.scheduler = "fr-o")
          r.Oracle.columns
      in
      check "verify counted the rejections" true (col.Oracle.verify_failed > 0))
    Sabotage.all_modes

(* --- shrinker ----------------------------------------------------------- *)

let test_shrinker_minimizes () =
  let t = small_trace ~events:100 () in
  let config = break_config Sabotage.Reverse in
  let failing tr = not (Oracle.clean (Oracle.run ~config tr)) in
  check "trace fails to begin with" true (failing t);
  let small, runs = Shrink.minimize ~failing t in
  check "shrunk trace still fails" true (failing small);
  check "reproducer is tiny" true (List.length small.Trace.events <= 10);
  check "oracle ran a sane number of times" true (runs > 0 && runs <= 2000);
  (* 1-minimality: deleting any single remaining event loses the failure *)
  let n = List.length small.Trace.events in
  for i = 0 to n - 1 do
    let without =
      Trace.with_events small
        (List.filteri (fun j _ -> j <> i) small.Trace.events)
    in
    check "1-minimal" false (failing without)
  done

let test_shrinker_passing_trace_untouched () =
  let t = small_trace () in
  let small, runs = Shrink.minimize ~failing:(fun _ -> false) t in
  check_int "events kept" (List.length t.Trace.events)
    (List.length small.Trace.events);
  check_int "one probe run" 1 runs

(* --- fault injection: agent level -------------------------------------- *)

let fr_kinds =
  [ Firmware.FR_O Store.Bit_backend; Firmware.FR_SD Store.Bit_backend;
    Firmware.FR_SB Store.Bit_backend ]

let test_agent_fault_recovery () =
  (* Hammer each FastRule agent with a high fault rate; after every single
     flow-mod the dependency invariant must hold and the store must agree
     with the TCAM image. *)
  List.iter
    (fun kind ->
      let pool = Dataset.generate Dataset.ACL4 ~seed:21 ~n:160 in
      let agent =
        Agent.of_rules ~kind ~verify:true ~capacity:320 (Array.sub pool 0 80)
      in
      Agent.set_fault agent (Some (Fault.create ~fail_prob:0.3 ~seed:99 ()));
      let faults = ref 0 and applied = ref 0 in
      for i = 80 to 159 do
        (match Agent.apply agent (Agent.Add pool.(i)) with
        | Ok () -> incr applied
        | Error e ->
            if String.length e >= 7 && String.sub e 0 7 = "fault: " then
              incr faults);
        check "invariant after every mod" true
          (Tcam.check_dag_order (Agent.tcam agent) (Agent.graph agent) = Ok ());
        check_int "store and TCAM agree" (Agent.rule_count agent)
          (Tcam.used_count (Agent.tcam agent))
      done;
      check "faults were injected" true (!faults > 0);
      check "some inserts survived" true (!applied > 0);
      (* recovery: clear the plan and retry — the table must accept new
         work as if nothing happened *)
      Agent.set_fault agent None;
      let before = Agent.rule_count agent in
      let retry = pool.(159) in
      let r =
        if Agent.rule agent retry.Rule.id = None then Agent.apply agent (Agent.Add retry)
        else Ok ()
      in
      check "post-recovery insert ok" true (r = Ok ());
      check "table grew or stayed" true (Agent.rule_count agent >= before))
    fr_kinds

let test_agent_faulted_remove_completes () =
  (* A delete sequence erases first; if a later (movement) op faults, the
     logical removal must still complete — store and TCAM keep agreeing. *)
  let pool = Dataset.generate Dataset.FW5 ~seed:33 ~n:120 in
  let agent =
    Agent.of_rules ~kind:(Firmware.FR_SB Store.Bit_backend) ~verify:true
      ~capacity:240 pool
  in
  Agent.set_fault agent (Some (Fault.create ~fail_prob:0.5 ~seed:77 ()));
  Array.iter
    (fun (r : Rule.t) ->
      (match Agent.apply agent (Agent.Remove { id = r.Rule.id }) with
      | Ok () -> check "removed" true (Agent.rule agent r.Rule.id = None)
      | Error _ ->
          (* either way, store must mirror the TCAM *)
          check "store/TCAM agree on membership" true
            (Agent.rule agent r.Rule.id <> None
            = Tcam.mem (Agent.tcam agent) r.Rule.id));
      check "invariant holds" true
        (Tcam.check_dag_order (Agent.tcam agent) (Agent.graph agent) = Ok ()))
    (Array.sub pool 0 60)

(* --- fault injection: control-plane isolation --------------------------- *)

let test_ctrl_shard_fault_isolation () =
  let rules = Dataset.generate Dataset.ACL4 ~seed:55 ~n:200 in
  let svc =
    Ctrl.of_rules ~verify:true ~shards:4 ~capacity:400 (Array.sub rules 0 120)
  in
  (* break shard 1's hardware completely *)
  Ctrl.set_fault svc ~shard:1 (Some (Fault.create ~fail_prob:1.0 ~seed:5 ()));
  Array.iter
    (fun r -> Ctrl.submit svc (Agent.Add r))
    (Array.sub rules 120 80);
  let report = Ctrl.flush svc in
  let failures = Ctrl.failures report in
  check "the broken shard failed its adds" true (failures <> []);
  Array.iteri
    (fun i (d : Shard.drain_result) ->
      if i = 1 then
        check "shard 1: every failure is an injected fault" true
          (List.for_all
             (fun (_, e) -> String.length e >= 7 && String.sub e 0 7 = "fault: ")
             d.Shard.failed)
      else check "healthy shards unaffected" true (d.Shard.failed = []))
    report.Ctrl.results;
  (* every shard — broken one included — still satisfies the invariant *)
  for i = 0 to 3 do
    let a = Ctrl.shard svc i |> Shard.agent in
    check "per-shard invariant" true
      (Tcam.check_dag_order (Agent.tcam a) (Agent.graph a) = Ok ())
  done;
  (* recovery: heal the shard, resubmit the casualties, everything lands *)
  Ctrl.set_fault svc ~shard:1 None;
  List.iter (fun (fm, _) -> Ctrl.submit svc fm) failures;
  let report2 = Ctrl.flush svc in
  check "resubmission clean" true (Ctrl.failures report2 = []);
  check_int "all 200 rules installed" 200 (Ctrl.rule_count svc)

(* --- oracle under faults ------------------------------------------------ *)

let test_oracle_fault_runs_clean () =
  List.iter
    (fun seed ->
      let t = small_trace ~kind:Dataset.ROUTE ~seed ~events:80 () in
      let r =
        Oracle.run
          ~config:{ Oracle.default_config with Oracle.fault_prob = 0.1 } t
      in
      check "no divergence under injected faults" true (Oracle.clean r))
    [ 1; 2; 3 ]

(* --- qcheck: the differential property ---------------------------------- *)

let prop_differential =
  QCheck.Test.make ~name:"oracle clean on honest schedulers" ~count:12
    QCheck.(
      make
        Gen.(
          triple (int_range 0 10_000)
            (oneofl [ Dataset.ACL4; Dataset.FW4; Dataset.FW5; Dataset.ROUTE ])
            (int_range 110 400))
        ~print:(fun (seed, kind, cap) ->
          Printf.sprintf "seed=%d kind=%s capacity=%d" seed
            (Dataset.to_string kind) cap))
    (fun (seed, kind, capacity) ->
      (* capacity sweeps from barely-fits to roomy: acceptance skews are
         allowed, silent divergence never.  Every accepted insert passes
         Check.sequence because the agents run verify:true — a failure
         would surface as a Verify_failed divergence. *)
      let t =
        Trace.generate ~kind ~seed ~initial:100 ~pool:200 ~capacity ~events:40
          ()
      in
      Oracle.clean (Oracle.run ~config:{ Oracle.default_config with Oracle.probes = 4 } t))

(* Satellite property: at every mid-cascade instant of every random
   trace, the published image answers like the semantic table before or
   after the op — never a mix — for all five schedulers.  The oracle
   must actually have captured snapshots (a silent no-op observer would
   pass vacuously). *)
let prop_snapshot_consistency =
  QCheck.Test.make ~name:"published snapshots are pre-or-post semantic"
    ~count:12
    QCheck.(
      make
        Gen.(
          triple (int_range 0 10_000)
            (oneofl [ Dataset.ACL4; Dataset.FW4; Dataset.FW5; Dataset.ROUTE ])
            (int_range 110 400))
        ~print:(fun (seed, kind, cap) ->
          Printf.sprintf "seed=%d kind=%s capacity=%d" seed
            (Dataset.to_string kind) cap))
    (fun (seed, kind, capacity) ->
      let t =
        Trace.generate ~kind ~seed ~initial:100 ~pool:200 ~capacity ~events:40
          ()
      in
      let r =
        Oracle.run ~config:{ Oracle.default_config with Oracle.probes = 4 } t
      in
      Oracle.clean r && r.Oracle.snapshots_checked > 0)

let test_snapshot_counter_reported () =
  let r =
    Oracle.run ~config:{ Oracle.default_config with Oracle.probes = 4 }
      (small_trace ())
  in
  check "clean" true (Oracle.clean r);
  check "snapshots were checked" true (r.Oracle.snapshots_checked > 0)

let suite =
  [
    ( "conform-trace",
      [
        Alcotest.test_case "round-trip" `Quick test_trace_roundtrip;
        Alcotest.test_case "generation shape" `Quick test_trace_generation_shape;
        Alcotest.test_case "rejects garbage" `Quick test_trace_rejects_garbage;
      ] );
    ( "conform-oracle",
      [
        Alcotest.test_case "clean runs" `Quick test_oracle_clean;
        Alcotest.test_case "tight capacity skew allowed" `Quick
          test_oracle_tight_capacity_skew_allowed;
        Alcotest.test_case "replay determinism" `Quick
          test_oracle_replay_determinism;
        Alcotest.test_case "catches sabotage" `Quick test_oracle_catches_sabotage;
        Alcotest.test_case "fault runs stay clean" `Quick
          test_oracle_fault_runs_clean;
        Alcotest.test_case "snapshot counter reported" `Quick
          test_snapshot_counter_reported;
      ] );
    ( "conform-shrink",
      [
        Alcotest.test_case "minimizes to a tiny reproducer" `Quick
          test_shrinker_minimizes;
        Alcotest.test_case "passing trace untouched" `Quick
          test_shrinker_passing_trace_untouched;
      ] );
    ( "conform-faults",
      [
        Alcotest.test_case "agent recovery" `Quick test_agent_fault_recovery;
        Alcotest.test_case "faulted remove completes" `Quick
          test_agent_faulted_remove_completes;
        Alcotest.test_case "shard isolation" `Quick
          test_ctrl_shard_fault_isolation;
      ] );
    ( "conform-props",
      [
        QCheck_alcotest.to_alcotest prop_differential;
        QCheck_alcotest.to_alcotest prop_snapshot_consistency;
      ] );
  ]
