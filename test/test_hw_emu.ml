open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_modulo_addressing () =
  (* A logical table far larger than the "hardware": writes land at
     addr mod hw_size, like the paper's ONetSwitch emulation. *)
  let e = Hw_emu.create ~hw_table_size:16 ~logical_size:1024 () in
  Hw_emu.add_entry e ~rule_id:1 ~addr:500;
  check "logical placed" true (Tcam.read (Hw_emu.logical e) 500 = Tcam.Used 1);
  check_int "hw calls" 1 (Hw_emu.hw_calls e);
  Hw_emu.delete_entry e ~addr:500;
  check "logical erased" true (Tcam.read (Hw_emu.logical e) 500 = Tcam.Free);
  check_int "hw calls 2" 2 (Hw_emu.hw_calls e)

let test_clock () =
  let latency = Latency.make ~write_ms:0.6 ~erase_ms:0.4 () in
  let e = Hw_emu.create ~latency ~logical_size:64 () in
  Hw_emu.add_entry e ~rule_id:1 ~addr:0;
  Hw_emu.add_entry e ~rule_id:2 ~addr:1;
  Hw_emu.delete_entry e ~addr:0;
  check_float "elapsed" 1.6 (Hw_emu.elapsed_ms e);
  Hw_emu.reset_meters e;
  check_float "reset" 0.0 (Hw_emu.elapsed_ms e);
  check_int "reset calls" 0 (Hw_emu.hw_calls e)

let test_apply_sequence () =
  let e = Hw_emu.create ~logical_size:32 () in
  Hw_emu.add_entry e ~rule_id:10 ~addr:0;
  Hw_emu.apply_sequence e
    [ Op.insert ~rule_id:10 ~addr:1; Op.insert ~rule_id:99 ~addr:0 ];
  check "moved" true (Tcam.read (Hw_emu.logical e) 1 = Tcam.Used 10);
  check "inserted" true (Tcam.read (Hw_emu.logical e) 0 = Tcam.Used 99);
  check_int "three SDK calls" 3 (Hw_emu.hw_calls e)

let test_mirrors_firmware_pipeline () =
  (* Drive a real FastRule run and mirror every sequence through the
     emulation; the shadow (logical) table must track the firmware's TCAM
     exactly, like the paper's rig. *)
  let table = Dataset.build_table Dataset.ACL5 ~seed:51 ~n:120 in
  let rng = Rng.create ~seed:52 in
  let stream =
    Updates.generate rng
      ~live:(Array.to_list table.Dataset.order)
      ~count:80 ~with_deletes:true ~id_base:1_000
  in
  let tcam_size = 300 in
  let tcam = Layout.place Layout.Original ~tcam_size ~order:table.Dataset.order in
  let graph = Graph.copy table.Dataset.graph in
  let fr = Greedy.create ~graph ~tcam () in
  let algo = Greedy.algo fr in
  let emu = Hw_emu.create ~hw_table_size:16 ~logical_size:tcam_size () in
  Tcam.iter_used tcam (fun ~addr ~rule_id ->
      Hw_emu.add_entry emu ~rule_id ~addr);
  Hw_emu.reset_meters emu;
  let hw_ops = ref 0 in
  List.iter
    (fun u ->
      match Updates.resolve graph tcam u with
      | Updates.R_insert { id; deps; dependents } as r -> (
          Updates.apply_graph graph r;
          match algo.Algo.schedule_insert ~rule_id:id ~deps ~dependents with
          | Ok ops ->
              Tcam.apply_sequence tcam ops;
              Hw_emu.apply_sequence emu ops;
              hw_ops := !hw_ops + List.length ops;
              algo.Algo.after_apply ops
          | Error _ -> Graph.remove_node graph id)
      | Updates.R_delete { id } as r -> (
          match algo.Algo.schedule_delete ~rule_id:id with
          | Ok ops ->
              Tcam.apply_sequence tcam ops;
              Hw_emu.apply_sequence emu ops;
              hw_ops := !hw_ops + List.length ops;
              Updates.apply_graph graph r;
              algo.Algo.after_apply ops
          | Error _ -> ()))
    stream;
  for a = 0 to tcam_size - 1 do
    check "shadow tracks firmware tcam" true
      (Tcam.read tcam a = Tcam.read (Hw_emu.logical emu) a)
  done;
  check_int "every op became one SDK call" !hw_ops (Hw_emu.hw_calls emu);
  check "shadow invariant" true
    (Tcam.check_dag_order (Hw_emu.logical emu) graph = Ok ())

let test_collision_detection () =
  (* Two logical addresses mapping onto one physical slot used to clobber
     each other silently; now the collision is counted and observable. *)
  let e = Hw_emu.create ~hw_table_size:8 ~logical_size:64 () in
  Hw_emu.add_entry e ~rule_id:1 ~addr:3;
  check_int "no collision yet" 0 (Hw_emu.collisions e);
  Hw_emu.add_entry e ~rule_id:2 ~addr:11;
  (* 11 mod 8 = 3 *)
  check_int "collision counted" 1 (Hw_emu.collisions e);
  check_int "one colliding slot" 1 (Hw_emu.colliding_slots e);
  (* both logical entries survive — the logical table never lies *)
  check "first entry intact" true (Tcam.read (Hw_emu.logical e) 3 = Tcam.Used 1);
  check "second entry intact" true
    (Tcam.read (Hw_emu.logical e) 11 = Tcam.Used 2);
  (* deleting one of the colliders clears the live collision but not the
     lifetime count *)
  Hw_emu.delete_entry e ~addr:11;
  check_int "collision resolved" 0 (Hw_emu.colliding_slots e);
  check_int "lifetime count sticks" 1 (Hw_emu.collisions e);
  check "survivor still there" true (Tcam.read (Hw_emu.logical e) 3 = Tcam.Used 1);
  (* re-adding the freed logical address re-collides on the same slot *)
  Hw_emu.add_entry e ~rule_id:2 ~addr:11;
  check_int "recollision counted" 2 (Hw_emu.collisions e);
  check_int "colliding again" 1 (Hw_emu.colliding_slots e)

let test_fault_drops_writes () =
  let e = Hw_emu.create ~hw_table_size:16 ~logical_size:32 () in
  Hw_emu.set_fault e (Some (Fault.create ~fail_prob:1.0 ~seed:1 ()));
  Hw_emu.add_entry e ~rule_id:1 ~addr:4;
  check "write dropped" true (Tcam.read (Hw_emu.logical e) 4 = Tcam.Free);
  check_int "dropped counted" 1 (Hw_emu.dropped_writes e);
  check_int "SDK call still billed" 1 (Hw_emu.hw_calls e);
  check "latency still billed" true (Hw_emu.elapsed_ms e > 0.);
  (* healing the fault restores normal service *)
  Hw_emu.set_fault e None;
  Hw_emu.add_entry e ~rule_id:1 ~addr:4;
  check "write lands after heal" true
    (Tcam.read (Hw_emu.logical e) 4 = Tcam.Used 1);
  check_int "dropped count unchanged" 1 (Hw_emu.dropped_writes e)

let test_stuck_slot () =
  let e = Hw_emu.create ~hw_table_size:16 ~logical_size:32 () in
  Hw_emu.set_fault e (Some (Fault.create ~stuck:[ 7 ] ~seed:2 ()));
  Hw_emu.add_entry e ~rule_id:1 ~addr:7;
  Hw_emu.add_entry e ~rule_id:2 ~addr:8;
  check "stuck address rejects" true (Tcam.read (Hw_emu.logical e) 7 = Tcam.Free);
  check "other address fine" true (Tcam.read (Hw_emu.logical e) 8 = Tcam.Used 2);
  (* stuck slots do not heal: a retry fails again *)
  Hw_emu.add_entry e ~rule_id:1 ~addr:7;
  check "still stuck" true (Tcam.read (Hw_emu.logical e) 7 = Tcam.Free);
  check_int "both attempts dropped" 2 (Hw_emu.dropped_writes e)

let test_default_size () =
  check_int "ONS_HW_TABLE_SIZE" 256 Hw_emu.default_hw_table_size;
  let e = Hw_emu.create ~logical_size:10 () in
  check_int "hw size default" 256 (Hw_emu.hw_size e)

let suite =
  [
    ( "hw-emu",
      [
        Alcotest.test_case "modulo addressing" `Quick test_modulo_addressing;
        Alcotest.test_case "latency clock" `Quick test_clock;
        Alcotest.test_case "apply sequence" `Quick test_apply_sequence;
        Alcotest.test_case "mirrors firmware pipeline" `Quick test_mirrors_firmware_pipeline;
        Alcotest.test_case "collision detection" `Quick test_collision_detection;
        Alcotest.test_case "fault drops writes" `Quick test_fault_drops_writes;
        Alcotest.test_case "stuck slot" `Quick test_stuck_slot;
        Alcotest.test_case "defaults" `Quick test_default_size;
      ] );
  ]
