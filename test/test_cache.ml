open Fastrule
module Id_set = Rule.Id_set

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ids set = List.sort Int.compare (Id_set.elements set)

(* --- backing table ----------------------------------------------------- *)

let test_backing_matches_semantic_lookup () =
  let rules = Dataset.generate Dataset.ACL4 ~seed:3 ~n:300 in
  let backing = Cache_backing.of_rules rules in
  let agent = Agent.of_rules ~capacity:(2 * 300) rules in
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 400 do
    (* Half targeted (inside some rule), half fully random. *)
    let pkt =
      if Rng.bool rng then
        Header.packet_in rng (Rng.pick rng rules).Rule.field
      else Header.random_packet rng
    in
    let a = Cache_backing.lookup backing pkt in
    let b = Agent.semantic_lookup agent pkt in
    let id = function None -> -1 | Some (r : Rule.t) -> r.Rule.id in
    check_int "backing scan = semantic lookup" (id b) (id a)
  done

let test_backing_churn_keeps_lookup () =
  let rules = Dataset.generate Dataset.FW4 ~seed:7 ~n:120 in
  let backing = Cache_backing.of_rules (Array.sub rules 0 80) in
  (* Insert the rest, remove some of the originals, re-check semantics
     against a freshly built table of the same membership. *)
  for i = 80 to 119 do
    match Cache_backing.insert backing rules.(i) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "insert %d: %s" i e
  done;
  for i = 0 to 29 do
    match Cache_backing.remove backing rules.(i).Rule.id with
    | Ok () -> ()
    | Error e -> Alcotest.failf "remove %d: %s" i e
  done;
  check_int "size" 90 (Cache_backing.size backing);
  let fresh =
    Cache_backing.of_rules (Array.of_list (Cache_backing.rules backing))
  in
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 300 do
    let pkt = Header.random_packet rng in
    let id = function None -> -1 | Some (r : Rule.t) -> r.Rule.id in
    check_int "churned = fresh"
      (id (Cache_backing.lookup fresh pkt))
      (id (Cache_backing.lookup backing pkt))
  done

(* A 3-deep chain by field width: a (exact) beats b (prefix) beats c
   (wildcard); the minimal graph keeps c -> b -> a and drops c -> a. *)
let chain_rules () =
  let mk id s priority =
    Rule.make ~id ~field:(Ternary.of_string s) ~action:(Rule.Forward id) ~priority
  in
  [| mk 0 "00000000" 3; mk 1 "0000****" 2; mk 2 "********" 1 |]

let test_admission_closure () =
  let backing = Cache_backing.of_rules (chain_rules ()) in
  check "a alone" true (ids (Cache_backing.admission_closure backing 0) = [ 0 ]);
  check "b pulls a" true (ids (Cache_backing.admission_closure backing 1) = [ 0; 1 ]);
  check "c pulls the chain" true
    (ids (Cache_backing.admission_closure backing 2) = [ 0; 1; 2 ])

let test_eviction_closure () =
  let backing = Cache_backing.of_rules (chain_rules ()) in
  let all = Id_set.of_list [ 0; 1; 2 ] in
  check "evicting a drags cached dependents" true
    (ids (Cache_backing.eviction_closure backing 0 ~cached:all) = [ 0; 1; 2 ]);
  check "cached filter applies" true
    (ids (Cache_backing.eviction_closure backing 0 ~cached:(Id_set.of_list [ 0; 2 ]))
    = [ 0; 2 ]);
  check "leaf evicts alone" true
    (ids (Cache_backing.eviction_closure backing 2 ~cached:all) = [ 2 ])

let test_topo_ranks_order () =
  let backing = Cache_backing.of_rules (chain_rules ()) in
  let ranks = Cache_backing.topo_ranks backing in
  let r id = Hashtbl.find ranks id in
  (* Dependents (lower precedence) rank strictly before dependencies. *)
  check "c before b" true (r 2 < r 1);
  check "b before a" true (r 1 < r 0)

(* --- policies ---------------------------------------------------------- *)

let test_policy_parsing () =
  check "lru" true (Cache_policy.kind_of_string "lru" = Some Cache_policy.Lru);
  check "fdrc default" true
    (Cache_policy.kind_of_string "fdrc"
    = Some (Cache_policy.Fdrc { admit_after = 2 }));
  check "fdrc:4" true
    (Cache_policy.kind_of_string "fdrc:4"
    = Some (Cache_policy.Fdrc { admit_after = 4 }));
  check "junk" true (Cache_policy.kind_of_string "arc" = None);
  check "roundtrip" true
    (Cache_policy.kind_of_string
       (Cache_policy.kind_to_string (Cache_policy.Fdrc { admit_after = 3 }))
    = Some (Cache_policy.Fdrc { admit_after = 3 }))

let singleton_groups id = Id_set.singleton id

let test_lru_victims_coldest_first () =
  let p = Cache_policy.create Cache_policy.Lru in
  List.iter (fun (id, tick) -> Cache_policy.touch p ~id ~tick)
    [ (1, 10); (2, 20); (3, 30); (4, 40) ];
  match
    Cache_policy.victims p ~candidates:[ 1; 2; 3; 4 ] ~group_of:singleton_groups
      ~protect:Id_set.empty ~need:2 ~limit:50.0
  with
  | None -> Alcotest.fail "expected victims"
  | Some vs -> check "oldest two" true (ids vs = [ 1; 2 ])

let test_victims_respect_protect_and_groups () =
  let p = Cache_policy.create Cache_policy.Lru in
  List.iter (fun (id, tick) -> Cache_policy.touch p ~id ~tick)
    [ (1, 10); (2, 15); (3, 99); (4, 20) ];
  (* 1 is protected; evicting 2 drags its hot dependent 3 along, making
     the group too hot — so the only usable group is {4}. *)
  let group_of = function
    | 2 -> Id_set.of_list [ 2; 3 ]
    | id -> Id_set.singleton id
  in
  match
    Cache_policy.victims p ~candidates:[ 1; 2; 4 ] ~group_of
      ~protect:(Id_set.singleton 1) ~need:1 ~limit:50.0
  with
  | None -> Alcotest.fail "expected victims"
  | Some vs -> check "hot group skipped" true (ids vs = [ 4 ])

let test_victims_antithrash () =
  (* Every candidate as hot as the admission's limit: refuse. *)
  let p = Cache_policy.create (Cache_policy.Fdrc { admit_after = 2 }) in
  List.iter (fun id ->
      Cache_policy.note_miss p ~id ~tick:1;
      Cache_policy.note_miss p ~id ~tick:2)
    [ 1; 2; 3 ];
  check "no cold victims" true
    (Cache_policy.victims p ~candidates:[ 1; 2; 3 ] ~group_of:singleton_groups
       ~protect:Id_set.empty ~need:1 ~limit:2.0
    = None)

let test_fdrc_admission_gate () =
  let p = Cache_policy.create (Cache_policy.Fdrc { admit_after = 3 }) in
  Cache_policy.note_miss p ~id:7 ~tick:1;
  check "1 miss: hold" false (Cache_policy.should_admit p ~id:7);
  Cache_policy.note_miss p ~id:7 ~tick:2;
  check "2 misses: hold" false (Cache_policy.should_admit p ~id:7);
  Cache_policy.note_miss p ~id:7 ~tick:3;
  check "3 misses: admit" true (Cache_policy.should_admit p ~id:7);
  check "lru admits instantly" true
    (Cache_policy.should_admit (Cache_policy.create Cache_policy.Lru) ~id:9)

(* --- the tier ---------------------------------------------------------- *)

let small_spec =
  {
    Cache_driver.default_spec with
    Cache_driver.n = 250;
    seed = 42;
    flows = 20_000;
    skew = 1.1;
    accesses = 1_200;
    slots = 48;
    shards = 2;
    flush_every = 32;
  }

let test_oracle_all_schedulers () =
  let results = Cache_driver.run_all ~probes:4 small_spec in
  check_int "five schedulers" 5 (List.length results);
  List.iter
    (fun (r : Cache_driver.result) ->
      let name = Firmware.algo_kind_name r.Cache_driver.algo in
      (match r.Cache_driver.divergences with
      | [] -> ()
      | d :: _ ->
          Alcotest.failf "%s diverged at %d (%s): expected %s, got %s" name
            d.Cache_driver.at d.Cache_driver.where d.Cache_driver.expected
            d.Cache_driver.got);
      check (name ^ ": traffic flowed") true (r.Cache_driver.hits > 0);
      check (name ^ ": evictions exercised") true (r.Cache_driver.evicted > 0);
      check (name ^ ": probes ran") true (r.Cache_driver.probes > 0);
      check (name ^ ": bounded") true (r.Cache_driver.cached <= small_spec.Cache_driver.slots))
    results

let test_oracle_parallel_flush () =
  (* Same conformance with multi-domain flushes (the --domains 4 leg). *)
  let r = Cache_driver.run ~domains:4 ~probes:4 small_spec in
  check_int "no divergences under domains=4" 0
    (List.length r.Cache_driver.divergences);
  check "evictions exercised" true (r.Cache_driver.evicted > 0)

let test_mid_eviction_probes_fire () =
  let rules = Dataset.generate Dataset.ACL4 ~seed:42 ~n:200 in
  let backing = Cache_backing.of_rules rules in
  let tier = Cache.create ~shards:2 ~flush_every:16 ~slots:24 ~backing () in
  let flows = Zipf.Flows.create ~rules ~seed:1 ~flows:5_000 ~skew:1.2 in
  let mid = ref 0 and settled = ref 0 and checked = ref 0 in
  Cache.set_probe_hook tier (fun phase ->
      (match phase with
      | Cache.Mid_eviction -> incr mid
      | Cache.Settled -> incr settled);
      (* The invariant the whole design rests on: at every flush
         boundary the cached target set is closed under dependencies. *)
      let cached = Cache.cached_ids tier in
      Id_set.iter
        (fun id ->
          incr checked;
          if not (Id_set.subset (Cache_backing.admission_closure backing id) cached)
          then Alcotest.failf "closure broken at %d" id)
        cached);
  for _ = 1 to 800 do
    ignore (Cache.access tier (snd (Zipf.Flows.next flows)))
  done;
  Cache.maintain tier;
  check "mid-eviction boundaries observed" true (!mid > 0);
  check "settled boundaries observed" true (!settled > 0);
  check "invariant actually checked" true (!checked > 0);
  check "no degradation" true (Cache.degraded tier = None);
  check "cache bounded" true (Cache.cached_count tier <= 24);
  check "installed bounded" true (Cache.installed_count tier <= 24)

let test_skew_beats_uniform () =
  (* A small cache under heavy skew must hit far more often than under
     uniform traffic — the workload justification for the tier. *)
  let base = { small_spec with Cache_driver.accesses = 1_500; slots = 32 } in
  let hot =
    Cache_driver.run ~check:false ~probes:0 { base with Cache_driver.skew = 1.4 }
  in
  let flat =
    Cache_driver.run ~check:false ~probes:0 { base with Cache_driver.skew = 0.0 }
  in
  check "skewed traffic caches well" true
    (hot.Cache_driver.hit_rate > flat.Cache_driver.hit_rate +. 0.15)

let test_fdrc_cuts_churn () =
  (* Frequency-gated admission must admit less than always-admit LRU on
     the same stream. *)
  let base = { small_spec with Cache_driver.accesses = 1_500 } in
  let lru = Cache_driver.run ~check:false ~probes:0 base in
  let fdrc =
    Cache_driver.run ~check:false ~probes:0
      { base with Cache_driver.policy = Cache_policy.Fdrc { admit_after = 2 } }
  in
  check "fdrc admits less" true
    (fdrc.Cache_driver.admitted < lru.Cache_driver.admitted);
  check "fdrc still serves hits" true (fdrc.Cache_driver.hit_rate > 0.2)

let test_fdrc_oracle () =
  let r =
    Cache_driver.run ~probes:4
      { small_spec with Cache_driver.policy = Cache_policy.Fdrc { admit_after = 2 } }
  in
  check_int "fdrc conformant" 0 (List.length r.Cache_driver.divergences)

(* A result dump names everything needed to reproduce itself: rebuild
   the spec from the serialized fields alone, re-run, and demand the
   same dump back (minus the one wall-clock key). *)
let test_result_json_roundtrip () =
  let strip = function
    | Telemetry.Json.Obj fields ->
        Telemetry.Json.Obj (List.remove_assoc "wall_ms" fields)
    | v -> v
  in
  let get j key =
    match j with
    | Telemetry.Json.Obj fields -> (
        match List.assoc_opt key fields with
        | Some v -> v
        | None -> Alcotest.failf "dump has no field %S" key)
    | _ -> Alcotest.failf "dump is not an object"
  in
  let int j key =
    match get j key with
    | Telemetry.Json.Int i -> i
    | _ -> Alcotest.failf "field %S is not an int" key
  in
  let str j key =
    match get j key with
    | Telemetry.Json.Str s -> s
    | _ -> Alcotest.failf "field %S is not a string" key
  in
  let first =
    Cache_driver.run ~domains:2 ~probes:2
      { small_spec with Cache_driver.policy = Cache_policy.Fdrc { admit_after = 2 } }
  in
  let dump = Cache_driver.result_json first in
  check_int "dump records the domains used" 2 (int dump "domains");
  let spec =
    {
      Cache_driver.kind =
        Option.get (Dataset.of_string (str dump "kind"));
      n = int dump "n";
      seed = int dump "seed";
      flows = int dump "flows";
      skew =
        (match get dump "skew" with
        | Telemetry.Json.Float f -> f
        | _ -> Alcotest.failf "skew is not a float");
      accesses = int dump "accesses";
      slots = int dump "slots";
      shards = int dump "shards";
      flush_every = int dump "flush_every";
      policy = Option.get (Cache_policy.kind_of_string (str dump "policy"));
    }
  in
  let algo = Option.get (Firmware.algo_kind_of_string (str dump "algo")) in
  let again =
    Cache_driver.run ~algo ~domains:(int dump "domains") ~probes:2 spec
  in
  check "recorded params reproduce the result" true
    (Telemetry.Json.to_string (strip dump)
    = Telemetry.Json.to_string (strip (Cache_driver.result_json again)))

(* Satellite property: whatever the traffic history, the eviction
   groups and the pending admission look like, an fdrc victim set never
   touches the admit closure (no rule the admission depends on — cached
   ancestor or the admitted rule itself — is ever evicted), evicts whole
   groups only, stays strictly colder than the admitted rule, and frees
   what it promised. *)
let prop_fdrc_victims_avoid_admit_closure =
  QCheck.Test.make ~name:"fdrc victims never touch the admit closure"
    ~count:200
    QCheck.(
      triple (int_bound 1_000_000) (int_range 1 3) (int_range 1 8)
      |> set_print (fun (seed, k, need) ->
             Printf.sprintf "seed=%d admit_after=%d need=%d" seed k need))
    (fun (seed, admit_after, need) ->
      let rng = Rng.create ~seed in
      let m = 24 in
      let policy = Cache_policy.create (Cache_policy.Fdrc { admit_after }) in
      for tick = 1 to 300 do
        let id = Rng.int rng m in
        if Rng.bool rng then Cache_policy.touch policy ~id ~tick
        else Cache_policy.note_miss policy ~id ~tick
      done;
      (* cached ids, partitioned into disjoint eviction groups *)
      let cached =
        List.filter (fun _ -> Rng.chance rng 0.7) (List.init m Fun.id)
      in
      QCheck.assume (cached <> []);
      let arr = Array.of_list cached in
      Rng.shuffle rng arr;
      let groups = Hashtbl.create 16 in
      let i = ref 0 in
      while !i < Array.length arr do
        let len = min (1 + Rng.int rng 3) (Array.length arr - !i) in
        let block = Array.sub arr !i len in
        let set =
          Array.fold_left (fun s id -> Id_set.add id s) Id_set.empty block
        in
        Array.iter (fun id -> Hashtbl.replace groups id set) block;
        i := !i + len
      done;
      let group_of id =
        match Hashtbl.find_opt groups id with
        | Some s -> s
        | None -> Id_set.singleton id
      in
      (* the pending admission: a fresh rule plus a random subset of the
         cached ids standing in for its ancestor closure *)
      let protect =
        List.fold_left
          (fun s id -> if Rng.chance rng 0.25 then Id_set.add id s else s)
          (Id_set.singleton (m + Rng.int rng 4))
          cached
      in
      let limit = Cache_policy.score policy ~id:(Rng.int rng m) in
      match
        Cache_policy.victims policy ~candidates:cached ~group_of ~protect
          ~need ~limit
      with
      | None -> true
      | Some vs ->
          if not (Id_set.is_empty (Id_set.inter vs protect)) then
            QCheck.Test.fail_reportf "victims intersect the admit closure";
          if Id_set.cardinal vs < need then
            QCheck.Test.fail_reportf "freed %d < need %d"
              (Id_set.cardinal vs) need;
          Id_set.iter
            (fun v ->
              if not (Id_set.subset (group_of v) vs) then
                QCheck.Test.fail_reportf "group of %d evicted piecemeal" v;
              if Cache_policy.score policy ~id:v >= limit then
                QCheck.Test.fail_reportf
                  "victim %d at least as hot as the admitted rule" v)
            vs;
          true)

let suite =
  [
    ( "cache-backing",
      [
        Alcotest.test_case "scan = semantic lookup" `Quick test_backing_matches_semantic_lookup;
        Alcotest.test_case "churned table keeps semantics" `Quick test_backing_churn_keeps_lookup;
        Alcotest.test_case "admission closures" `Quick test_admission_closure;
        Alcotest.test_case "eviction closures" `Quick test_eviction_closure;
        Alcotest.test_case "topo ranks order phases" `Quick test_topo_ranks_order;
      ] );
    ( "cache-policy",
      [
        Alcotest.test_case "kind parsing" `Quick test_policy_parsing;
        Alcotest.test_case "lru evicts coldest" `Quick test_lru_victims_coldest_first;
        Alcotest.test_case "protect + hot groups" `Quick test_victims_respect_protect_and_groups;
        Alcotest.test_case "anti-thrash guard" `Quick test_victims_antithrash;
        Alcotest.test_case "fdrc admission gate" `Quick test_fdrc_admission_gate;
      ] );
    ( "cache-tier",
      [
        Alcotest.test_case "oracle: all five schedulers" `Slow test_oracle_all_schedulers;
        Alcotest.test_case "oracle: domains=4 flushes" `Quick test_oracle_parallel_flush;
        Alcotest.test_case "mid-eviction closure invariant" `Quick test_mid_eviction_probes_fire;
        Alcotest.test_case "skew beats uniform" `Quick test_skew_beats_uniform;
        Alcotest.test_case "fdrc cuts churn" `Quick test_fdrc_cuts_churn;
        Alcotest.test_case "fdrc conformant" `Quick test_fdrc_oracle;
        Alcotest.test_case "result json round-trip" `Quick
          test_result_json_roundtrip;
      ] );
    ( "cache-props",
      List.map QCheck_alcotest.to_alcotest
        [ prop_fdrc_victims_avoid_admit_closure ] );
  ]
