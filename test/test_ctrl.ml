(* Tests for the Fr_ctrl control plane: partitioner determinism, the
   coalescing state machine, batched apply, shard failure isolation, and
   the queue's guiding invariant (drain == raw replay, failures ignored)
   as qcheck properties. *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- partitioner ------------------------------------------------------- *)

let test_partition_determinism () =
  let p = Partition.create ~shards:4 Partition.Hash_id in
  let q = Partition.create ~shards:4 Partition.Hash_id in
  let counts = Array.make 4 0 in
  for id = 0 to 1_999 do
    let s = Partition.route_id p id in
    check "in range" true (s >= 0 && s < 4);
    check_int "deterministic" s (Partition.route_id q id);
    counts.(s) <- counts.(s) + 1
  done;
  (* splitmix spread: no shard starves (exact counts are seed-free facts
     of the hash, so a loose band is enough). *)
  Array.iter (fun c -> check "balanced" true (c > 300 && c < 700)) counts;
  check "policy round-trips" true
    (Partition.policy_of_string "prefix:8" = Some (Partition.Dst_prefix 8)
    && Partition.policy_of_string "hash" = Some Partition.Hash_id
    && Partition.policy_of_string "prefix:0" = None);
  check "bad shard count" true
    (try
       ignore (Partition.create ~shards:0 Partition.Hash_id);
       false
     with Invalid_argument _ -> true)

let test_prefix_colocation () =
  let p = Partition.create ~shards:4 (Partition.Dst_prefix 8) in
  let rule_with_dst id plen v =
    Rule.make ~id
      ~field:
        (Header.pack
           {
             Header.wildcard with
             Header.dst_ip = Ternary.prefix_of_int64 ~width:32 ~plen v;
           })
      ~action:(Rule.Forward id) ~priority:plen
  in
  (* Same /8 destination block -> same shard, whatever the id. *)
  let a = rule_with_dst 1 16 0x0A010000L in
  let b = rule_with_dst 999 24 0x0A0B0C00L in
  check_int "same /8 colocates" (Partition.route_rule p a)
    (Partition.route_rule p b);
  (* Destination bits wildcarded inside the window -> id-hash fallback. *)
  let wild = rule_with_dst 7 4 0x30000000L in
  check_int "short prefix falls back" (Partition.route_id p 7)
    (Partition.route_rule p wild);
  (* Non-5-tuple rules (narrow test headers) also fall back. *)
  let narrow =
    Rule.make ~id:11 ~field:(Ternary.of_string "10****1010")
      ~action:(Rule.Forward 11) ~priority:3
  in
  check_int "narrow header falls back" (Partition.route_id p 11)
    (Partition.route_rule p narrow)

(* --- coalescing queue -------------------------------------------------- *)

let mk_rule id =
  Rule.make ~id
    ~field:
      (Header.pack
         {
           Header.wildcard with
           Header.dst_ip =
             Ternary.prefix_of_int64 ~width:32 ~plen:24
               (Int64.of_int (0x0A000000 + (id * 256)));
         })
    ~action:(Rule.Forward id) ~priority:24

let test_coalesce_folds () =
  let q = Coalesce.create () in
  let r = mk_rule 1 in
  (* Add then Remove of a pending rule annihilates. *)
  check "add queued" true (Coalesce.push q ~installed:false (Agent.Add r) = Coalesce.Queued);
  check "remove annihilates" true
    (Coalesce.push q ~installed:false (Agent.Remove { id = 1 }) = Coalesce.Annihilated);
  check_int "nothing pending" 0 (List.length (Coalesce.pending_ops q));
  check_int "two ops saved" 2 (Coalesce.coalesced q);
  (* Repeated Set_action keeps only the last. *)
  let push_set id act installed =
    Coalesce.push q ~installed (Agent.Set_action { id; action = Rule.Forward act })
  in
  check "first set queued" true (push_set 2 1 true = Coalesce.Queued);
  check "second set folds" true (push_set 2 5 true = Coalesce.Folded);
  (match Coalesce.pending_ops q with
  | [ Agent.Set_action { id = 2; action } ] ->
      check "last action wins" true (Rule.equal_action action (Rule.Forward 5))
  | ops -> Alcotest.failf "unexpected plan (%d ops)" (List.length ops));
  (* Set then Remove of an installed rule: the rewrite is moot. *)
  check "remove folds set away" true
    (Coalesce.push q ~installed:true (Agent.Remove { id = 2 }) <> Coalesce.Queued);
  (match Coalesce.pending_ops q with
  | [ Agent.Remove { id = 2 } ] -> ()
  | ops -> Alcotest.failf "expected lone remove (%d ops)" (List.length ops));
  Coalesce.clear q;
  (* Remove of an installed rule then Add of the same id: a replace —
     the erase comes out before the insertion. *)
  check "remove queued" true
    (Coalesce.push q ~installed:true (Agent.Remove { id = 1 }) = Coalesce.Queued);
  check "re-add folds" true
    (Coalesce.push q ~installed:true (Agent.Add r) <> Coalesce.Rejected "");
  (match Coalesce.pending_ops q with
  | [ Agent.Remove { id = 1 }; Agent.Add r' ] ->
      check "replace re-adds the rule" true (r'.Rule.id = 1)
  | ops -> Alcotest.failf "expected remove;add (%d ops)" (List.length ops));
  Coalesce.clear q;
  (* Ops that can never succeed are rejected at push time. *)
  (match Coalesce.push q ~installed:true (Agent.Add r) with
  | Coalesce.Rejected _ -> ()
  | _ -> Alcotest.fail "duplicate add must be rejected");
  (match Coalesce.push q ~installed:false (Agent.Remove { id = 99 }) with
  | Coalesce.Rejected _ -> ()
  | _ -> Alcotest.fail "remove of absent must be rejected");
  check_int "rejections reported" 2 (List.length (Coalesce.rejected q));
  check_int "rejections are not pending" 0 (List.length (Coalesce.pending_ops q))

(* The folds must keep the *later* op's action: a fold that merges the
   ops but forgets the newest action silently installs stale policy —
   worse than no coalescing at all. *)
let test_coalesce_keeps_later_action () =
  let q = Coalesce.create () in
  let r = mk_rule 7 in
  (* Add (pending) then Set_action: the pending insertion must carry the
     rewritten action. *)
  check "add queued" true
    (Coalesce.push q ~installed:false (Agent.Add r) = Coalesce.Queued);
  check "set folds into pending add" true
    (Coalesce.push q ~installed:false
       (Agent.Set_action { id = 7; action = Rule.Drop })
    = Coalesce.Folded);
  (match Coalesce.pending_ops q with
  | [ Agent.Add r' ] ->
      check "pending add carries the rewrite" true
        (Rule.equal_action r'.Rule.action Rule.Drop)
  | ops -> Alcotest.failf "expected lone add (%d ops)" (List.length ops));
  Coalesce.clear q;
  (* Remove (installed) then Add of a *different* replacement rule: the
     replace must re-insert the new rule, new action included. *)
  let replacement = { r with Rule.action = Rule.Forward 13; priority = 30 } in
  check "remove queued" true
    (Coalesce.push q ~installed:true (Agent.Remove { id = 7 }) = Coalesce.Queued);
  check "add folds to replace" true
    (Coalesce.push q ~installed:true (Agent.Add replacement) = Coalesce.Folded);
  (match Coalesce.pending_ops q with
  | [ Agent.Remove { id = 7 }; Agent.Add r' ] ->
      check "replace re-adds the new rule" true
        (Rule.equal_action r'.Rule.action (Rule.Forward 13)
        && r'.Rule.priority = 30)
  | ops -> Alcotest.failf "expected remove;add (%d ops)" (List.length ops));
  (* ... and a Set_action landing on the replace rewrites it again. *)
  check "set folds into replace" true
    (Coalesce.push q ~installed:true
       (Agent.Set_action { id = 7; action = Rule.Controller })
    = Coalesce.Folded);
  (match Coalesce.pending_ops q with
  | [ Agent.Remove { id = 7 }; Agent.Add r' ] ->
      check "replace carries the last rewrite" true
        (Rule.equal_action r'.Rule.action Rule.Controller)
  | ops -> Alcotest.failf "expected remove;add (%d ops)" (List.length ops))

(* --- batched apply ----------------------------------------------------- *)

let table_of agent =
  List.sort compare
    (List.map
       (fun (r : Rule.t) -> (r.Rule.id, r.Rule.action))
       (Agent.rules agent))

let test_apply_batch_equivalence () =
  let pool = Dataset.generate Dataset.FW5 ~seed:71 ~n:300 in
  let initial = Array.sub pool 0 150 in
  let mods =
    List.concat
      [
        Array.to_list (Array.map (fun r -> Agent.Add r) (Array.sub pool 150 100));
        [ Agent.Remove { id = (pool.(3)).Rule.id };
          Agent.Set_action { id = (pool.(7)).Rule.id; action = Rule.Drop } ];
        Array.to_list (Array.map (fun r -> Agent.Add r) (Array.sub pool 250 50));
      ]
  in
  let seq = Agent.of_rules ~capacity:900 initial in
  List.iter (fun m -> ignore (Agent.apply seq m)) mods;
  List.iter
    (fun refresh_every ->
      let batched = Agent.of_rules ~capacity:900 initial in
      let results = Agent.apply_batch ~refresh_every batched mods in
      check_int "one result per mod" (List.length mods) (List.length results);
      List.iter (fun r -> check "all applied" true (r = Ok ())) results;
      check "same table as sequential" true (table_of seq = table_of batched);
      check "dependency order intact" true
        (Tcam.check_dag_order (Agent.tcam batched) (Agent.graph batched) = Ok ()))
    [ 1; 4; max_int ];
  (* Per-insert refresh must match the per-op path's movement count too —
     that is the whole point of the default. *)
  let batched = Agent.of_rules ~capacity:900 initial in
  ignore (Agent.apply_batch ~refresh_every:1 batched mods);
  check_int "same hardware ops as per-op"
    (Tcam.ops_issued (Agent.tcam seq))
    (Tcam.ops_issued (Agent.tcam batched));
  check "refresh_every must be positive" true
    (try
       ignore (Agent.apply_batch ~refresh_every:0 batched
                 [ Agent.Add pool.(0); Agent.Add pool.(1) ]);
       false
     with Invalid_argument _ -> true)

(* --- shard failure isolation ------------------------------------------ *)

let test_shard_failure_isolation () =
  (* Tiny shards, and a burst aimed (by id filtering) at shard 0 only:
     the overfull shard fails mid-batch, the sibling's batch is whole. *)
  let svc = Ctrl.create ~shards:2 ~capacity:8 () in
  let part = Ctrl.partition svc in
  let to_shard s n =
    let picked = ref [] and id = ref 0 in
    while List.length !picked < n do
      if Partition.route_id part !id = s then picked := !id :: !picked;
      incr id
    done;
    List.rev !picked
  in
  List.iter (fun id -> Ctrl.submit svc (Agent.Add (mk_rule id))) (to_shard 0 12);
  List.iter (fun id -> Ctrl.submit svc (Agent.Add (mk_rule id))) (to_shard 1 3);
  let report = Ctrl.flush svc in
  let d0 = report.Ctrl.results.(0) and d1 = report.Ctrl.results.(1) in
  check_int "shard 0 filled to capacity" 8 d0.Shard.applied;
  check_int "shard 0 overflow reported" 4 (List.length d0.Shard.failed);
  check_int "sibling applied everything" 3 d1.Shard.applied;
  check_int "sibling untouched by failure" 0 (List.length d1.Shard.failed);
  check_int "route table matches agents" 11 (Ctrl.rule_count svc);
  List.iter
    (fun (fm, _) ->
      match fm with
      | Agent.Add r ->
          check "failed rules not installed" true (Ctrl.find_rule svc r.Rule.id = None)
      | _ -> Alcotest.fail "only adds were submitted")
    (Ctrl.failures report);
  (* The failed shard stays usable: freeing a slot lets the next add in. *)
  Ctrl.submit svc (Agent.Remove { id = List.hd (to_shard 0 1) });
  Ctrl.submit svc (Agent.Add (mk_rule (List.nth (to_shard 0 13) 12)));
  let report = Ctrl.flush svc in
  check_int "recovers after a remove" 0 (List.length (Ctrl.failures report));
  check_int "still at capacity" 8 d0.Shard.applied

(* --- the guiding invariant, property-tested ---------------------------- *)

(* A stream step: (kind roll, pool index, action), with kind 9 = flush. *)
let ops_gen =
  QCheck.Gen.(
    list_size (int_range 10 120)
      (triple (int_bound 9) (int_bound 59) (int_bound 7)))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (fun (k, i, a) -> Printf.sprintf "%d/%d/%d" k i a) ops))
    ops_gen

(* Replay the same raw stream (failures ignored) through a sharded
   service and through one plain agent; the tables must agree. *)
let service_matches_reference ~shards ~policy ops =
  let pool = Dataset.generate Dataset.ACL4 ~seed:73 ~n:60 in
  let initial = Array.sub pool 0 30 in
  let svc = Ctrl.of_rules ~policy ~shards ~capacity:200 initial in
  let ref_agent = Agent.of_rules ~capacity:200 initial in
  List.iter
    (fun (kind, idx, act) ->
      if kind = 9 then ignore (Ctrl.flush svc)
      else begin
        let id = (pool.(idx)).Rule.id in
        let fm =
          if kind < 5 then Agent.Add pool.(idx)
          else if kind < 8 then Agent.Remove { id }
          else Agent.Set_action { id; action = Rule.Forward act }
        in
        Ctrl.submit svc fm;
        ignore (Agent.apply ref_agent fm)
      end)
    ops;
  ignore (Ctrl.flush svc);
  let merged = ref [] in
  for s = 0 to Ctrl.shards svc - 1 do
    merged := table_of (Shard.agent (Ctrl.shard svc s)) @ !merged
  done;
  List.sort compare !merged = table_of ref_agent

let prop_drain_equals_raw_replay =
  QCheck.Test.make ~name:"single shard: drain == raw replay" ~count:150 arb_ops
    (service_matches_reference ~shards:1 ~policy:Partition.Hash_id)

let prop_sharded_union_equals_raw_replay =
  QCheck.Test.make ~name:"3 shards: union == raw replay" ~count:150 arb_ops
    (service_matches_reference ~shards:3 ~policy:Partition.Hash_id)

let prop_prefix_policy_union_equals_raw_replay =
  QCheck.Test.make ~name:"prefix policy: union == raw replay" ~count:100
    arb_ops
    (service_matches_reference ~shards:3 ~policy:(Partition.Dst_prefix 8))

(* --- telemetry round-trip ---------------------------------------------- *)

(* Drop the wall-clock-measured keys everywhere in a dump; what remains
   (counters, modelled TCAM time, breaker state) is deterministic, so a
   re-run from the dump's own recorded seed and domain count must
   serialise identically. *)
let rec strip_measured (j : Telemetry.Json.v) =
  match j with
  | Telemetry.Json.Obj fields ->
      Telemetry.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if
               List.mem k
                 [
                   "wall_ms"; "firmware_ms"; "firmware_ms_total";
                   "latency_histogram";
                 ]
             then None
             else Some (k, strip_measured v))
           fields)
  | Telemetry.Json.List l -> Telemetry.Json.List (List.map strip_measured l)
  | v -> v

let json_int j key =
  match j with
  | Telemetry.Json.Obj fields -> (
      match List.assoc_opt key fields with
      | Some (Telemetry.Json.Int i) -> i
      | _ -> Alcotest.failf "dump has no int field %S" key)
  | _ -> Alcotest.failf "dump is not an object"

let test_telemetry_roundtrip () =
  let spec =
    {
      Churn.kind = Dataset.ACL4;
      initial = 200;
      ops = 300;
      shards = 3;
      capacity = 600;
      batch = 32;
      seed = 23;
    }
  in
  let first = Churn.run ~domains:2 spec in
  let dump =
    Ctrl.to_json ~scenario:"roundtrip" ~seed:spec.Churn.seed
      first.Churn.service
  in
  check_int "dump records the domains used" 2 (json_int dump "domains");
  (* re-run from nothing but the dump's own recorded parameters *)
  let seed = json_int dump "seed" in
  let domains = json_int dump "domains" in
  let again = Churn.run ~domains { spec with Churn.seed } in
  let dump' = Ctrl.to_json ~scenario:"roundtrip" ~seed again.Churn.service in
  check "recorded params reproduce the telemetry" true
    (Telemetry.Json.to_string (strip_measured dump)
    = Telemetry.Json.to_string (strip_measured dump'))

let suite =
  [
    ( "ctrl",
      [
        Alcotest.test_case "partition determinism" `Quick
          test_partition_determinism;
        Alcotest.test_case "prefix colocation" `Quick test_prefix_colocation;
        Alcotest.test_case "coalesce folds" `Quick test_coalesce_folds;
        Alcotest.test_case "coalesce keeps later action" `Quick
          test_coalesce_keeps_later_action;
        Alcotest.test_case "apply_batch = sequential" `Quick
          test_apply_batch_equivalence;
        Alcotest.test_case "shard failure isolation" `Quick
          test_shard_failure_isolation;
        Alcotest.test_case "telemetry round-trip" `Quick
          test_telemetry_roundtrip;
      ] );
    ( "ctrl-props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_drain_equals_raw_replay;
          prop_sharded_union_equals_raw_replay;
          prop_prefix_policy_union_equals_raw_replay;
        ] );
  ]
