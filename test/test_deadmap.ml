(* Tests for degraded-hardware operation below the control plane: the
   Deadmap bookkeeping, the Tcam hooks that feed it, hole-aware placement
   ([Layout.place ?deadmap]), dead-row avoidance in all five schedulers,
   the agent's probe drill and Set_action relocation, the shard restart
   path that carries hardware knowledge across rebuilds — plus the fault
   spec string round-trip (qcheck). *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let mk_rule ?(action = Rule.Forward 1) ?(priority = 24) id =
  Rule.make ~id
    ~field:
      (Header.pack
         {
           Header.wildcard with
           Header.dst_ip =
             Ternary.prefix_of_int64 ~width:32 ~plen:24
               (Int64.of_int (0x0A000000 + (id * 256)));
         })
    ~action ~priority

(* a catch-all that overlaps everything, so every insert carries a real
   dependency edge and must order above it *)
let catch_all =
  Rule.make ~id:99 ~field:(Header.pack Header.wildcard) ~action:Rule.Drop
    ~priority:0

(* --- Deadmap bookkeeping ------------------------------------------------ *)

let test_deadmap_threshold () =
  check "size must be positive" true
    (raises_invalid (fun () -> Deadmap.create ~size:0 ()));
  check "threshold must be >= 1" true
    (raises_invalid (fun () -> Deadmap.create ~threshold:0 ~size:4 ()));
  let dm = Deadmap.create ~threshold:2 ~size:8 () in
  check "fresh map is empty" true (Deadmap.is_empty dm);
  check "first strike is not death" false (Deadmap.note_failure dm ~addr:3);
  check "one strike below threshold" false (Deadmap.is_dead dm 3);
  check "pending strikes break is_empty" false (Deadmap.is_empty dm);
  check "second strike crosses" true (Deadmap.note_failure dm ~addr:3);
  check "now dead" true (Deadmap.is_dead dm 3);
  check_int "one dead row" 1 (Deadmap.count dm);
  (* strikes must be consecutive: a success in between resets them *)
  ignore (Deadmap.note_failure dm ~addr:5);
  ignore (Deadmap.note_success dm ~addr:5);
  check "success resets the strike count" false (Deadmap.note_failure dm ~addr:5);
  check "still alive" false (Deadmap.is_dead dm 5);
  (* revive *)
  check "revive reports the transition" true (Deadmap.note_success dm ~addr:3);
  check "revived" false (Deadmap.is_dead dm 3);
  check "reviving a healthy row is a no-op" false (Deadmap.note_success dm ~addr:3)

let test_deadmap_mark_intervals () =
  let dm = Deadmap.create ~size:16 () in
  check "mark reports the transition" true (Deadmap.mark dm ~addr:7);
  check "re-mark is a no-op" false (Deadmap.mark dm ~addr:7);
  List.iter (fun a -> ignore (Deadmap.mark dm ~addr:a)) [ 4; 2; 3; 12 ];
  Alcotest.(check (list int))
    "dead_list ascending" [ 2; 3; 4; 7; 12 ] (Deadmap.dead_list dm);
  Alcotest.(check (list (pair int int)))
    "intervals are maximal runs"
    [ (2, 4); (7, 7); (12, 12) ]
    (Deadmap.intervals dm);
  check "out-of-range query raises" true
    (raises_invalid (fun () -> Deadmap.is_dead dm 16));
  let copy = Deadmap.copy dm in
  ignore (Deadmap.mark copy ~addr:0);
  check_int "copy is independent" 5 (Deadmap.count dm);
  check_int "copy took the mark" 6 (Deadmap.count copy);
  Deadmap.clear dm;
  check "clear forgets everything" true
    (Deadmap.is_empty dm && Deadmap.count dm = 0)

(* --- the Tcam hooks ----------------------------------------------------- *)

let test_tcam_hooks () =
  let tcam = Tcam.create ~size:8 in
  check "default threshold condemns on first failure" true
    (Tcam.note_write_failure tcam ~addr:3);
  check "tcam sees the dead row" true (Tcam.is_dead tcam 3);
  check_int "dead_count" 1 (Tcam.dead_count tcam);
  (* a successful write revives (the map is advisory, writes are not gated) *)
  Tcam.write tcam ~rule_id:1 ~addr:3;
  check "successful write revives" false (Tcam.is_dead tcam 3);
  (* writable_free_in skips dead and occupied rows *)
  ignore (Tcam.note_write_failure tcam ~addr:0);
  ignore (Tcam.note_write_failure tcam ~addr:1);
  Tcam.write tcam ~rule_id:2 ~addr:2;
  check "writable_free_in skips dead and used" true
    (Tcam.writable_free_in tcam ~lo:0 ~hi:7 = Some 4);
  check "empty writable window" true
    (Tcam.writable_free_in tcam ~lo:0 ~hi:1 = None);
  (* copy carries an independent dead map *)
  let dup = Tcam.copy tcam in
  ignore (Tcam.note_write_failure dup ~addr:7);
  check_int "original unchanged by copy's failures" 2 (Tcam.dead_count tcam);
  check_int "copy has its own map" 3 (Tcam.dead_count dup);
  (* adopt_deadmap: restart path *)
  let dm = Deadmap.create ~size:8 () in
  ignore (Deadmap.mark dm ~addr:5);
  let fresh = Tcam.create ~size:8 in
  Tcam.adopt_deadmap fresh dm;
  check "adopted map answers" true (Tcam.is_dead fresh 5);
  let wrong = Deadmap.create ~size:4 () in
  check "size mismatch rejected" true
    (raises_invalid (fun () -> Tcam.adopt_deadmap fresh wrong))

(* --- hole-aware placement ----------------------------------------------- *)

let order_of tcam =
  let acc = ref [] in
  Tcam.iter_used tcam (fun ~addr:_ ~rule_id -> acc := rule_id :: !acc);
  List.rev !acc

let test_place_packs_around_holes () =
  let dead = [ 0; 3; 4; 11 ] in
  let order = Array.init 10 (fun i -> 100 + i) in
  List.iter
    (fun layout ->
      let dm = Deadmap.create ~size:20 () in
      List.iter (fun a -> ignore (Deadmap.mark dm ~addr:a)) dead;
      let tcam = Layout.place ~deadmap:dm layout ~tcam_size:20 ~order in
      check_int "all entries placed" 10 (Tcam.used_count tcam);
      Alcotest.(check (list int))
        "relative order preserved" (Array.to_list order) (order_of tcam);
      List.iter
        (fun a -> check "no entry on a dead row" true (Tcam.is_free tcam a))
        dead)
    [ Layout.Original; Layout.Interleaved 4; Layout.Separated ];
  (* Original packs onto exactly the first n writable rows *)
  let dm = Deadmap.create ~size:20 () in
  List.iter (fun a -> ignore (Deadmap.mark dm ~addr:a)) dead;
  let tcam = Layout.place ~deadmap:dm Layout.Original ~tcam_size:20 ~order in
  Alcotest.(check (option int)) "skips the holes" (Some 5) (Tcam.addr_of tcam 102);
  Alcotest.(check (option int))
    "first writable row" (Some 100)
    (match Tcam.read tcam 1 with Tcam.Used id -> Some id | Tcam.Free -> None);
  (* dead rows shrink capacity: 10 entries do not fit on 9 writable rows *)
  let tight = Deadmap.create ~size:12 () in
  List.iter (fun a -> ignore (Deadmap.mark tight ~addr:a)) [ 2; 5; 9 ];
  check "over-capacity placement rejected" true
    (raises_invalid (fun () ->
         Layout.place ~deadmap:tight Layout.Original ~tcam_size:12 ~order))

(* --- all five schedulers avoid dead rows -------------------------------- *)

(* Pre-mark a scattered dead bank, install the matching stuck-at fault
   plan, and drive adds / removes / a rewrite through every scheduler:
   since the schedulers keep write targets off dead rows, not a single
   hardware fault may fire. *)
let test_schedulers_avoid_dead_rows () =
  let capacity = 64 in
  let dead = [ 0; 7; 20; 33; 50; 63 ] in
  let initial =
    Array.of_list (catch_all :: List.init 24 (fun i -> mk_rule (100 + i)))
  in
  List.iter
    (fun kind ->
      let name = Firmware.algo_kind_name kind in
      let dm = Deadmap.create ~size:capacity () in
      List.iter (fun a -> ignore (Deadmap.mark dm ~addr:a)) dead;
      let agent = Agent.of_rules ~kind ~deadmap:dm ~capacity initial in
      let fault = Fault.create ~stuck:dead ~seed:7 () in
      Agent.set_fault agent (Some fault);
      let mods =
        List.init 12 (fun i -> Agent.Add (mk_rule (200 + i)))
        @ List.init 8 (fun i -> Agent.Remove { id = 100 + (3 * i) })
        @ List.init 6 (fun i -> Agent.Add (mk_rule (300 + i)))
        @ [ Agent.Set_action { id = 201; action = Rule.Drop } ]
      in
      List.iter
        (fun m ->
          match Agent.apply agent m with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s rejected %a on degraded hardware: %s" name
                Agent.pp_flow_mod m e)
        mods;
      check_int
        (Printf.sprintf "%s: no fault ever fired" name)
        0 (Fault.injected fault);
      let tcam = Agent.tcam agent in
      List.iter
        (fun a ->
          check
            (Printf.sprintf "%s: dead row %d stayed empty" name a)
            true (Tcam.is_free tcam a))
        dead;
      check
        (Printf.sprintf "%s: table consistent" name)
        true
        (Agent.verify_consistent agent = Ok ()))
    (Firmware.standard_algos Store.Bit_backend)

(* --- the probe drill ---------------------------------------------------- *)

let test_probe_dead () =
  (* no fault plan: every mark is spurious and the drill clears them all *)
  let agent = Agent.create ~capacity:16 () in
  let tcam = Agent.tcam agent in
  ignore (Tcam.note_write_failure tcam ~addr:3);
  ignore (Tcam.note_write_failure tcam ~addr:5);
  check_int "two dead rows" 2 (Agent.dead_rows agent);
  check "all spurious marks clear" true (Agent.probe_dead agent = (2, 2));
  check_int "healthy again" 0 (Agent.dead_rows agent);
  (* a stuck row survives the drill, a healed one is revived *)
  let agent = Agent.create ~capacity:16 () in
  let tcam = Agent.tcam agent in
  let fault = Fault.create ~stuck:[ 3 ] ~seed:1 () in
  Agent.set_fault agent (Some fault);
  ignore (Tcam.note_write_failure tcam ~addr:3);
  ignore (Tcam.note_write_failure tcam ~addr:5);
  check "only the healed row recovers" true (Agent.probe_dead agent = (2, 1));
  check "stuck row still condemned" true (Tcam.is_dead tcam 3);
  check "healed row revived" false (Tcam.is_dead tcam 5);
  check_int "probes draw nothing from the fault plan" 0 (Fault.injected fault)

(* --- Set_action relocation off a dead row ------------------------------- *)

let test_set_action_relocates () =
  let rules = Array.init 6 (fun i -> mk_rule (100 + i)) in
  let agent =
    Agent.of_rules ~kind:(Firmware.FR_O Store.Bit_backend) ~capacity:16 rules
  in
  let tcam = Agent.tcam agent in
  (* healthy row: the rewrite stays in place *)
  let a0 = Option.get (Tcam.addr_of tcam 103) in
  (match Agent.apply agent (Agent.Set_action { id = 103; action = Rule.Drop }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "in-place rewrite failed: %s" e);
  check "healthy rewrite is in place" true
    (Tcam.addr_of tcam 103 = Some a0);
  (* condemned row: the agent must relocate through the scheduler *)
  let addr = Option.get (Tcam.addr_of tcam 102) in
  Agent.set_fault agent (Some (Fault.create ~stuck:[ addr ] ~seed:2 ()));
  ignore (Tcam.note_write_failure tcam ~addr);
  (match Agent.apply agent (Agent.Set_action { id = 102; action = Rule.Drop }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "relocation failed: %s" e);
  let addr' = Option.get (Tcam.addr_of tcam 102) in
  check "moved off the dead row" true (addr' <> addr);
  check "landed on a live row" false (Tcam.is_dead tcam addr');
  check "action rewritten" true
    ((Option.get (Agent.rule agent 102)).Rule.action = Rule.Drop);
  check "consistent after relocation" true
    (Agent.verify_consistent agent = Ok ())

(* --- shard restart carries the dead map --------------------------------- *)

let test_shard_reset_carries_deadmap () =
  let rules = Array.init 8 (fun i -> mk_rule (100 + i)) in
  let sh = Shard.of_rules ~capacity:32 ~id:0 rules in
  let tcam = Agent.tcam (Shard.agent sh) in
  let dead = Option.get (Tcam.writable_free_in tcam ~lo:0 ~hi:31) in
  ignore (Tcam.note_write_failure tcam ~addr:dead);
  check_int "shard sees the dead row" 1 (Shard.dead_rows sh);
  Shard.reset sh rules;
  let tcam' = Agent.tcam (Shard.agent sh) in
  check "rebuilt agent remembers the dead row" true (Tcam.is_dead tcam' dead);
  check_int "dead count survives the restart" 1 (Shard.dead_rows sh);
  check "placement packed around it" true (Tcam.is_free tcam' dead);
  check "rebuilt table consistent" true
    (Agent.verify_consistent (Shard.agent sh) = Ok ())

(* --- fault spec strings (satellite: CLI serialisation) ------------------- *)

let spec_eq : Fault.spec Alcotest.testable =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Fault.spec_to_string s))
    ( = )

let test_spec_strings () =
  let full =
    {
      Fault.fail_prob = 0.5;
      stuck = [ 3; 9 ];
      max_failures = Some 4;
      slow_ms = 2.5;
    }
  in
  Alcotest.(check string)
    "printed form" "p=0.5,stuck=3+9,max=4,slow=2.5"
    (Fault.spec_to_string full);
  (match Fault.spec_of_string "slow=2.5,stuck=3+9,p=0.5,max=4" with
  | Ok s -> Alcotest.check spec_eq "key order is free" full s
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.spec_of_string "" with
  | Ok s ->
      check "empty spec is the no-fault default" true
        (s.Fault.fail_prob = 0.0 && s.Fault.stuck = []
        && s.Fault.max_failures = None && s.Fault.slow_ms = 0.0)
  | Error e -> Alcotest.failf "empty spec rejected: %s" e);
  List.iter
    (fun bad ->
      match Fault.spec_of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad
      | Error _ -> ())
    [
      "p=1.5";
      "p=nope";
      "stuck=1+x";
      "max=-1";
      "slow=-0.5";
      "turbo=1";
      "justakey";
      "p=0.5,p=0.2";
      "stuck=1,stuck=2";
      "slow=1,slow=1";
    ]

let spec_gen =
  QCheck.Gen.(
    int_bound 100 >>= fun p ->
    list_size (int_bound 6) (int_bound 2000) >>= fun stuck ->
    opt (int_bound 50) >>= fun max_failures ->
    int_bound 40 >>= fun slow ->
    return
      {
        Fault.fail_prob = float_of_int p /. 100.0;
        stuck = List.sort_uniq Int.compare stuck;
        max_failures;
        slow_ms = float_of_int slow *. 0.25;
      })

let arb_spec = QCheck.make ~print:Fault.spec_to_string spec_gen

let prop_spec_round_trip =
  QCheck.Test.make ~name:"fault spec round-trips through its string form"
    ~count:300 arb_spec (fun s ->
      match Fault.spec_of_string (Fault.spec_to_string s) with
      | Ok s' -> s' = s
      | Error _ -> false)

let prop_spec_duplicate_keys_rejected =
  QCheck.Test.make ~name:"repeating any key is rejected" ~count:100
    (QCheck.make
       QCheck.Gen.(oneofl [ "p=0.1"; "stuck=1+2"; "max=3"; "slow=1.5" ]))
    (fun part ->
      match Fault.spec_of_string (part ^ "," ^ part) with
      | Error _ -> true
      | Ok _ -> false)

let suite =
  [
    ( "deadmap",
      [
        Alcotest.test_case "threshold and revival" `Quick test_deadmap_threshold;
        Alcotest.test_case "mark, intervals, copy" `Quick
          test_deadmap_mark_intervals;
        Alcotest.test_case "tcam hooks" `Quick test_tcam_hooks;
        Alcotest.test_case "placement packs around holes" `Quick
          test_place_packs_around_holes;
        Alcotest.test_case "all schedulers avoid dead rows" `Quick
          test_schedulers_avoid_dead_rows;
        Alcotest.test_case "probe drill" `Quick test_probe_dead;
        Alcotest.test_case "Set_action relocates off dead rows" `Quick
          test_set_action_relocates;
        Alcotest.test_case "shard reset carries the dead map" `Quick
          test_shard_reset_carries_deadmap;
        Alcotest.test_case "fault spec strings" `Quick test_spec_strings;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_spec_round_trip; prop_spec_duplicate_keys_rejected ] );
  ]
