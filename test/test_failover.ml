(* Tests for graceful degradation: the slow-call breaker policy, epoch
   fencing in the coalescing queue, rendezvous failover routing, whole-shard
   restart faults, journal retention/observability, divergence bundles, and
   the headline property — under random divert/heal/restart schedules the
   final state equals a never-faulted twin. *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rec rm_rf dir =
  try
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p
        else try Sys.remove p with Sys_error _ -> ())
      (Sys.readdir dir);
    Sys.rmdir dir
  with Sys_error _ -> ()

let mk_rule ?(action = Rule.Forward 1) ?(priority = 24) id =
  Rule.make ~id
    ~field:
      (Header.pack
         {
           Header.wildcard with
           Header.dst_ip =
             Ternary.prefix_of_int64 ~width:32 ~plen:24
               (Int64.of_int (0x0A000000 + (id * 256)));
         })
    ~action ~priority

let service_image svc =
  let acc = ref [] in
  for s = 0 to Ctrl.shards svc - 1 do
    List.iter
      (fun (r : Rule.t) ->
        acc := (s, r.Rule.id, r.Rule.priority, r.Rule.action) :: !acc)
      (Agent.rules (Shard.agent (Ctrl.shard svc s)))
  done;
  List.sort compare !acc

let consistent svc =
  let ok = ref true in
  for s = 0 to Ctrl.shards svc - 1 do
    match Agent.verify_consistent (Shard.agent (Ctrl.shard svc s)) with
    | Ok () -> ()
    | Error _ -> ok := false
  done;
  !ok

let sum_tele svc f =
  let acc = ref 0 in
  for s = 0 to Ctrl.shards svc - 1 do
    acc := !acc + f (Shard.telemetry (Ctrl.shard svc s))
  done;
  !acc

(* --- breaker slow-call policy ------------------------------------------ *)

let test_breaker_slow_calls () =
  let b = Breaker.create ~threshold:3 ~slow_threshold:2 ~cooldown:1 () in
  Breaker.note_slow b;
  check "one slow drain stays closed" true (Breaker.state b = Breaker.Closed);
  Breaker.note_slow b;
  check "slow streak trips" true (Breaker.state b = Breaker.Open);
  check_int "one open" 1 (Breaker.opens b);
  Breaker.note_skipped b;
  check "cooldown expires" true (Breaker.state b = Breaker.Half_open);
  (* a slow half-open probe is as damning as a failed one *)
  Breaker.note_slow b;
  check "slow probe re-opens" true (Breaker.state b = Breaker.Open);
  Breaker.note_skipped b;
  Breaker.note_success b;
  check "fast probe closes" true (Breaker.state b = Breaker.Closed);
  (* success resets the slow streak *)
  Breaker.note_slow b;
  Breaker.note_success b;
  Breaker.note_slow b;
  check "success breaks the slow streak" true
    (Breaker.state b = Breaker.Closed);
  (* the slow and failure streaks are independent: slow drains don't
     excuse failures *)
  let b2 = Breaker.create ~threshold:2 ~slow_threshold:5 ~cooldown:1 () in
  Breaker.note_failure b2;
  Breaker.note_slow b2;
  Breaker.note_failure b2;
  check "slow drain does not reset the failure streak" true
    (Breaker.state b2 = Breaker.Open);
  (* slow_threshold = 0 disables the policy entirely *)
  let b3 = Breaker.create ~threshold:2 ~slow_threshold:0 ~cooldown:1 () in
  for _ = 1 to 10 do
    Breaker.note_slow b3
  done;
  check "disabled slow policy never trips" true
    (Breaker.state b3 = Breaker.Closed)

(* --- epoch fence -------------------------------------------------------- *)

let test_epoch_fence () =
  let q = Coalesce.create () in
  let r1 = mk_rule 1 in
  check "add queued under epoch 0" true
    (Coalesce.push ~epoch:0 q ~installed:false (Agent.Add r1)
    = Coalesce.Queued);
  (* same id, different epoch: the id would be straddling two shard
     placements — fenced *)
  (match
     Coalesce.push ~epoch:1 q ~installed:false
       (Agent.Set_action { id = 1; action = Rule.Drop })
   with
  | Coalesce.Rejected msg ->
      check "fence names the epochs" true
        (String.length msg >= 11 && String.sub msg 0 11 = "epoch fence")
  | _ -> Alcotest.fail "cross-epoch push was not fenced");
  (* same epoch folds as always *)
  check "same-epoch push folds" true
    (Coalesce.push ~epoch:0 q ~installed:false
       (Agent.Set_action { id = 1; action = Rule.Drop })
    = Coalesce.Folded);
  (* fencing is per id: another id can live under another epoch *)
  check "other id under other epoch is fine" true
    (Coalesce.push ~epoch:1 q ~installed:false (Agent.Add (mk_rule 2))
    = Coalesce.Queued);
  (* unfenced pushes (no epoch) keep the pre-failover behaviour *)
  check "epoch-less push unaffected" true
    (Coalesce.push q ~installed:false (Agent.Add (mk_rule 3))
    = Coalesce.Queued);
  (* once the queue drains (clear), the id can re-home *)
  Coalesce.clear q;
  check "after clear the id accepts a new epoch" true
    (Coalesce.push ~epoch:1 q ~installed:false (Agent.Add r1)
    = Coalesce.Queued)

(* --- rendezvous routing ------------------------------------------------- *)

let test_rendezvous () =
  let p = Partition.create ~shards:4 Partition.Hash_id in
  let all _ = true in
  for id = 0 to 200 do
    match Partition.rendezvous p ~healthy:all id with
    | None -> Alcotest.fail "no pick with every shard healthy"
    | Some s ->
        check "pick in range" true (s >= 0 && s < 4);
        check "deterministic" true
          (Partition.rendezvous p ~healthy:all id = Some s)
  done;
  check "single healthy shard always wins" true
    (Partition.rendezvous p ~healthy:(fun s -> s = 2) 77 = Some 2);
  check "no healthy shard: none" true
    (Partition.rendezvous p ~healthy:(fun _ -> false) 77 = None);
  (* minimal disruption: quarantining shard 0 only re-routes ids shard 0
     was winning *)
  for id = 0 to 200 do
    match Partition.rendezvous p ~healthy:all id with
    | Some 0 -> ()
    | Some s ->
        check "survivors keep their shard" true
          (Partition.rendezvous p ~healthy:(fun x -> x <> 0) id = Some s)
    | None -> ()
  done

(* --- slow fault trips the service breaker -------------------------------- *)

let test_slow_fault_trips_breaker () =
  let pool = Dataset.generate Dataset.ACL4 ~seed:11 ~n:120 in
  let resil =
    {
      Ctrl.default_resil with
      Ctrl.slow_drain_ms = 2.0;
      breaker_slow_threshold = 2;
      breaker_cooldown = 2;
    }
  in
  let svc = Ctrl.create ~resil ~shards:2 ~capacity:400 () in
  Ctrl.set_fault svc ~shard:0 (Some (Fault.create ~slow_ms:8.0 ~seed:1 ()));
  Array.iteri
    (fun i r ->
      Ctrl.submit svc (Agent.Add r);
      if (i + 1) mod 10 = 0 then ignore (Ctrl.flush svc))
    pool;
  ignore (Ctrl.flush svc);
  let tele0 = Shard.telemetry (Ctrl.shard svc 0) in
  check "slow shard quarantined" true (Ctrl.breaker_state svc 0 = Breaker.Open
                                      || Ctrl.breaker_state svc 0 = Breaker.Half_open);
  check "slow drains recorded" true (Telemetry.slow_drains tele0 >= 2);
  check "breaker opened at least once" true (Telemetry.breaker_opens tele0 >= 1);
  check_int "latency faults fail nothing" 0 (sum_tele svc Telemetry.failed);
  check "healthy sibling untouched" true
    (Ctrl.breaker_state svc 1 = Breaker.Closed
    && Telemetry.slow_drains (Shard.telemetry (Ctrl.shard svc 1)) = 0)

(* --- failover acceptance scenario ---------------------------------------- *)

(* One shard under a persistent latency fault, failover on: the run must
   shed nothing, fail nothing, divert new ids to healthy shards, and —
   after the heal — rebalance every diverted id home, landing on exactly
   the state of a never-faulted twin. *)
let test_failover_acceptance () =
  let pool = Dataset.generate Dataset.ACL4 ~seed:7 ~n:360 in
  let preload = Array.sub pool 0 60 in
  let resil =
    {
      Ctrl.default_resil with
      Ctrl.failover = true;
      slow_drain_ms = 2.0;
      breaker_slow_threshold = 2;
      breaker_cooldown = 2;
    }
  in
  let drive faulted =
    let svc = Ctrl.of_rules ~resil ~shards:3 ~capacity:800 preload in
    if faulted then
      Ctrl.set_fault svc ~shard:0 (Some (Fault.create ~slow_ms:8.0 ~seed:2 ()));
    for i = 60 to Array.length pool - 1 do
      Ctrl.submit svc (Agent.Add pool.(i));
      if (i + 1) mod 16 = 0 then ignore (Ctrl.flush svc)
    done;
    if Ctrl.pending svc > 0 then ignore (Ctrl.flush svc);
    svc
  in
  let svc = drive true in
  let twin = drive false in
  check_int "zero shed" 0 (sum_tele svc Telemetry.shed);
  check_int "zero failed" 0 (sum_tele svc Telemetry.failed);
  check "ids were diverted" true (sum_tele svc Telemetry.diverted > 0);
  check "overlay non-empty before heal" true (Ctrl.diverted_count svc > 0);
  (* heal, then flush until the overlay drains home *)
  Ctrl.set_fault svc ~shard:0 None;
  let rounds = ref 0 in
  while
    (Ctrl.diverted_count svc > 0 || Ctrl.pending svc > 0) && !rounds < 50
  do
    ignore (Ctrl.flush svc);
    incr rounds
  done;
  check_int "overlay converges to zero" 0 (Ctrl.diverted_count svc);
  check "rebalances recorded" true (sum_tele svc Telemetry.rebalanced > 0);
  for s = 0 to 2 do
    check "breaker closed after heal" true
      (Ctrl.breaker_state svc s = Breaker.Closed)
  done;
  check "consistent after failover" true (consistent svc);
  (* placement converged back to the static partition: the per-shard
     image, not just the union, equals the twin's *)
  check "final state equals never-faulted twin" true
    (service_image svc = service_image twin)

(* --- whole-shard restart fault ------------------------------------------- *)

let test_restart_shard () =
  let pool = Dataset.generate Dataset.ACL4 ~seed:13 ~n:200 in
  let preload = Array.sub pool 0 40 in
  let dir = Journal.fresh_dir ~prefix:"fr-test-restart" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let svc = Ctrl.of_rules ~journal:dir ~shards:2 ~capacity:400 preload in
      let twin = Ctrl.of_rules ~shards:2 ~capacity:400 preload in
      let both fm =
        Ctrl.submit svc fm;
        Ctrl.submit twin fm
      in
      for i = 40 to 99 do
        both (Agent.Add pool.(i));
        if (i + 1) mod 10 = 0 then begin
          ignore (Ctrl.flush svc);
          ignore (Ctrl.flush twin)
        end
      done;
      both (Agent.Remove { id = pool.(45).Rule.id });
      (* kill shard 0's agent mid-run with intent still queued: the
         journal must rebuild the committed state and requeue the rest *)
      (match Ctrl.restart_shard svc ~shard:0 with
      | Error e -> Alcotest.failf "restart_shard: %s" e
      | Ok r ->
          check "restart replayed something" true
            (r.Ctrl.restart_replayed_drains > 0));
      check_int "restart recorded" 1 (sum_tele svc Telemetry.restarts);
      for i = 100 to 139 do
        both (Agent.Add pool.(i));
        if (i + 1) mod 10 = 0 then begin
          ignore (Ctrl.flush svc);
          ignore (Ctrl.flush twin)
        end
      done;
      ignore (Ctrl.flush svc);
      ignore (Ctrl.flush twin);
      check "consistent after restart" true (consistent svc);
      check "restarted service equals untouched twin" true
        (service_image svc = service_image twin);
      check "unjournaled service refuses restart" true
        (Result.is_error (Ctrl.restart_shard twin ~shard:0)))

(* --- journal retention and stat ------------------------------------------ *)

let test_checkpoint_retention () =
  let dir = Journal.fresh_dir ~prefix:"fr-test-retain" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let j = Journal.create ~dir ~shard:0 in
      for k = 1 to 3 do
        ignore (Journal.log_mod j (Agent.Add (mk_rule k)));
        Journal.checkpoint ~retain:2 j
          ~rules:(Array.init k (fun i -> mk_rule (i + 1)))
      done;
      Journal.sync j;
      (match Journal.stat ~dir ~shard:0 with
      | Error e -> Alcotest.failf "stat: %s" e
      | Ok st ->
          check_int "only the newest 2 checkpoint tables survive" 2
            (List.length st.Journal.checkpoints);
          (match st.Journal.checkpoints with
          | (newest, _, bytes) :: (older, _, _) :: _ ->
              check "newest first" true (newest > older);
              check "tables non-empty" true (bytes > 0)
          | _ -> Alcotest.fail "expected 2 checkpoints"));
      Journal.close j)

let test_journal_stat () =
  let dir = Journal.fresh_dir ~prefix:"fr-test-stat" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let j = Journal.create ~dir ~shard:0 in
      ignore (Journal.log_mod j (Agent.Add (mk_rule 1)));
      ignore (Journal.log_mod j (Agent.Add (mk_rule 2)));
      let d = Journal.log_begin j in
      Journal.log_commit j ~drain:d ~applied:2 ~failed:0;
      ignore (Journal.log_mod j (Agent.Add (mk_rule 3)));
      Journal.sync j;
      (match Journal.stat ~dir ~shard:0 with
      | Error e -> Alcotest.failf "stat: %s" e
      | Ok st ->
          check "wal has bytes" true (st.Journal.wal_bytes > 0);
          check "age is sane" true
            (st.Journal.wal_age_s >= 0.0 && st.Journal.wal_age_s < 3600.0);
          check_int "one drain" 1 st.Journal.total_drains;
          check_int "one committed" 1 st.Journal.committed_drains;
          check_int "one mod pending past the commit" 1 st.Journal.pending_mods;
          check "not interrupted" true (not st.Journal.interrupted));
      (* a begin without commit is the interrupted signature *)
      ignore (Journal.log_begin j);
      Journal.sync j;
      (match Journal.stat ~dir ~shard:0 with
      | Error e -> Alcotest.failf "stat: %s" e
      | Ok st -> check "interrupted detected" true st.Journal.interrupted);
      Journal.close j;
      check "stat of a missing shard errors" true
        (Result.is_error (Journal.stat ~dir ~shard:7)))

(* --- divergence bundles --------------------------------------------------- *)

let test_bundle_roundtrip () =
  let root = Journal.fresh_dir ~prefix:"fr-test-bundle" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let trace =
        Trace.generate ~kind:Dataset.ACL4 ~seed:5 ~initial:10 ~pool:20
          ~capacity:80 ~events:15 ()
      in
      (* a little journal to capture *)
      let jdir = Filename.concat root "j" in
      Journal.ensure_dir jdir;
      let j = Journal.create ~dir:jdir ~shard:0 in
      ignore (Journal.log_mod j (Agent.Add (mk_rule 1)));
      Journal.close j;
      let info =
        {
          Bundle.mode = "crash";
          at = 12;
          mid_drain = true;
          batch = 4;
          shards = 1;
          fault_shard = 0;
          slow_ms = 0.0;
        }
      in
      let bdir =
        Bundle.write ~dir:(Filename.concat root "b") info ~trace
          ~journal:(Some jdir)
      in
      check "is_bundle" true (Bundle.is_bundle bdir);
      check "bare trace file is not a bundle" true
        (not (Bundle.is_bundle (Bundle.trace_file bdir)));
      check "journal captured" true (Bundle.journal_dir bdir <> None);
      (match Bundle.load bdir with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok (info', trace') ->
          check "info round-trips" true (info' = info);
          Alcotest.(check string)
            "trace round-trips" (Trace.to_string trace)
            (Trace.to_string trace'));
      (* the captured journal copy is readable recovery input *)
      match Bundle.journal_dir bdir with
      | None -> Alcotest.fail "journal dir vanished"
      | Some jd ->
          check "captured WAL readable" true
            (Result.is_ok (Journal.read_recovery ~dir:jd ~shard:0)))

(* --- failover conformance oracle ------------------------------------------ *)

let test_failover_oracle_clean () =
  let trace =
    Trace.generate ~kind:Dataset.ACL4 ~seed:21 ~initial:30 ~pool:60
      ~capacity:240 ~events:80 ()
  in
  let r = Oracle.run_failover ~probes:6 ~batch:4 ~shards:3 ~fault_shard:0 trace in
  if not (Oracle.failover_clean r) then
    Alcotest.failf "failover oracle diverged:@.%a" Oracle.pp_failover_report r;
  List.iter
    (fun c ->
      check "fault engaged for every scheduler" true (c.Oracle.fo_diverted > 0);
      check_int "nothing shed" 0 c.Oracle.fo_shed;
      check_int "nothing failed" 0 c.Oracle.fo_failed)
    r.Oracle.failover_columns

(* --- the headline property ------------------------------------------------ *)

(* Random schedules of latency faults, heals and whole-shard restarts
   (never write failures: those legitimately change outcomes) against a
   failover-enabled journaled service: nothing sheds, nothing fails, and
   after healing everything the state converges to the never-faulted
   twin's — every id's ops applied in submission order on some shard. *)
let prop_divert_heal_convergence =
  QCheck.Test.make ~count:10
    ~name:"failover chaos -> heal converges to never-faulted twin"
    QCheck.(pair (int_bound 1_000) (int_bound 1_000))
    (fun (seed, chaos_seed) ->
      let spec =
        {
          Churn.kind = Dataset.ACL4;
          initial = 30;
          ops = 120;
          shards = 3;
          capacity = 600;
          batch = 10;
          seed;
        }
      in
      let resil =
        {
          Ctrl.default_resil with
          Ctrl.failover = true;
          slow_drain_ms = 2.0;
          breaker_slow_threshold = 2;
          breaker_cooldown = 1;
        }
      in
      let rng = Rng.create ~seed:chaos_seed in
      let chaos = ref [] in
      for _ = 1 to 1 + (chaos_seed mod 6) do
        let at_flush = Rng.int rng 12 in
        let shard = Rng.int rng spec.Churn.shards in
        let action =
          match Rng.int rng 3 with
          | 0 -> Churn.Chaos_slow (4.0 +. float_of_int (Rng.int rng 10))
          | 1 -> Churn.Chaos_heal
          | _ -> Churn.Chaos_restart
        in
        chaos := { Churn.at_flush; shard; action } :: !chaos
      done;
      let chaos =
        List.sort (fun a b -> compare a.Churn.at_flush b.Churn.at_flush) !chaos
      in
      let dir = Journal.fresh_dir ~prefix:"fr-test-chaos" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let r = Churn.run ~resil ~journal:dir ~chaos spec in
          let svc = r.Churn.service in
          if r.Churn.shed > 0 then
            QCheck.Test.fail_reportf "%d submits shed" r.Churn.shed;
          if r.Churn.failed > 0 then
            QCheck.Test.fail_reportf "%d ops failed under latency-only chaos"
              r.Churn.failed;
          for s = 0 to spec.Churn.shards - 1 do
            Ctrl.set_fault svc ~shard:s None
          done;
          let rounds = ref 0 in
          while
            (Ctrl.diverted_count svc > 0 || Ctrl.pending svc > 0)
            && !rounds < 60
          do
            ignore (Ctrl.flush svc);
            incr rounds
          done;
          if Ctrl.diverted_count svc > 0 then
            QCheck.Test.fail_reportf "overlay stuck at %d after %d rounds"
              (Ctrl.diverted_count svc) !rounds;
          let twin = Churn.run ~resil spec in
          if Ctrl.pending twin.Churn.service > 0 then
            ignore (Ctrl.flush twin.Churn.service);
          consistent svc
          && service_image svc = service_image twin.Churn.service))

let suite =
  [
    ( "failover",
      [
        Alcotest.test_case "breaker slow-call policy" `Quick
          test_breaker_slow_calls;
        Alcotest.test_case "coalesce epoch fence" `Quick test_epoch_fence;
        Alcotest.test_case "rendezvous routing" `Quick test_rendezvous;
        Alcotest.test_case "slow fault trips service breaker" `Quick
          test_slow_fault_trips_breaker;
        Alcotest.test_case "failover acceptance scenario" `Quick
          test_failover_acceptance;
        Alcotest.test_case "whole-shard restart fault" `Quick
          test_restart_shard;
        Alcotest.test_case "checkpoint retention" `Quick
          test_checkpoint_retention;
        Alcotest.test_case "journal stat" `Quick test_journal_stat;
        Alcotest.test_case "divergence bundle round-trip" `Quick
          test_bundle_roundtrip;
        Alcotest.test_case "failover oracle clean" `Quick
          test_failover_oracle_clean;
        QCheck_alcotest.to_alcotest prop_divert_heal_convergence;
      ] );
  ]
