open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let histogram z ~samples ~seed =
  let rng = Rng.create ~seed in
  let counts = Array.make (Zipf.n z) 0 in
  for _ = 1 to samples do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  counts

let test_bounds_and_determinism () =
  let z = Zipf.create ~n:1000 ~skew:1.3 in
  let draw seed =
    let rng = Rng.create ~seed in
    List.init 500 (fun _ -> Zipf.sample z rng)
  in
  let a = draw 7 and b = draw 7 and c = draw 8 in
  check "same seed, same stream" true (a = b);
  check "different seed, different stream" true (a <> c);
  check "all in range" true (List.for_all (fun k -> k >= 0 && k < 1000) a)

let test_head_mass_high_skew () =
  (* At skew 1.5 over a million ranks, rank 0 alone carries
     1/zeta(1.5) ~ 38% of the mass and the top ten ~70%. *)
  let z = Zipf.create ~n:1_000_000 ~skew:1.5 in
  let counts = Hashtbl.create 64 in
  let rng = Rng.create ~seed:11 in
  let samples = 20_000 in
  for _ = 1 to samples do
    let k = Zipf.sample z rng in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let freq k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. float_of_int samples in
  check "rank 0 is heavy" true (freq 0 > 0.30);
  let top10 = List.fold_left (fun acc k -> acc +. freq k) 0.0 (List.init 10 Fun.id) in
  check "top-10 majority" true (top10 > 0.60);
  check "rank 0 not everything" true (freq 0 < 0.50)

let test_uniform_limit () =
  (* skew = 0 must degenerate to the uniform distribution exactly: every
     rank within 3x of expectation on a seeded draw, and the mean rank
     near the middle. *)
  let n = 100 in
  let z = Zipf.create ~n ~skew:0.0 in
  let samples = 20_000 in
  let counts = histogram z ~samples ~seed:13 in
  let expected = samples / n in
  Array.iteri
    (fun k c ->
      if c < expected / 3 || c > expected * 3 then
        Alcotest.failf "rank %d count %d far from uniform %d" k c expected)
    counts;
  let mean =
    let s = ref 0 in
    Array.iteri (fun k c -> s := !s + (k * c)) counts;
    float_of_int !s /. float_of_int samples
  in
  check "uniform mean near middle" true (Float.abs (mean -. 49.5) < 3.0)

let test_skew_orders_means () =
  (* More skew, smaller mean rank. *)
  let mean skew =
    let z = Zipf.create ~n:10_000 ~skew in
    let rng = Rng.create ~seed:17 in
    let s = ref 0 in
    for _ = 1 to 5_000 do
      s := !s + Zipf.sample z rng
    done;
    float_of_int !s /. 5_000.0
  in
  let m0 = mean 0.0 and m08 = mean 0.8 and m15 = mean 1.5 in
  check "skew 0.8 < uniform" true (m08 < m0 /. 2.0);
  check "skew 1.5 < skew 0.8" true (m15 < m08 /. 2.0)

let test_skew_one_no_singularity () =
  (* The classic exponent: helper series must keep H finite at skew = 1. *)
  let z = Zipf.create ~n:1000 ~skew:1.0 in
  let counts = histogram z ~samples:5_000 ~seed:19 in
  check "rank 0 heaviest" true
    (Array.for_all (fun c -> c <= counts.(0)) counts);
  check_int "nothing lost" 5_000 (Array.fold_left ( + ) 0 counts)

let test_invalid_args () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "n=0 rejected" true (raises (fun () -> Zipf.create ~n:0 ~skew:1.0));
  check "negative skew rejected" true (raises (fun () -> Zipf.create ~n:10 ~skew:(-0.1)));
  check "nan skew rejected" true (raises (fun () -> Zipf.create ~n:10 ~skew:Float.nan))

let test_flows_deterministic () =
  let rules = Dataset.generate Dataset.ACL4 ~seed:3 ~n:200 in
  let mk () = Zipf.Flows.create ~rules ~seed:23 ~flows:1_000_000 ~skew:1.1 in
  let f1 = mk () and f2 = mk () in
  for _ = 1 to 200 do
    let r1, p1 = Zipf.Flows.next f1 and r2, p2 = Zipf.Flows.next f2 in
    check_int "same rank" r1 r2;
    check "same packet" true (p1 = p2);
    (* The per-flow packet is a pure function of the rank. *)
    check "packet_of agrees" true (Zipf.Flows.packet_of f1 r1 = p1)
  done

let test_flows_hit_table () =
  (* Every flow packet matches at least one rule of its table. *)
  let rules = Dataset.generate Dataset.FW5 ~seed:5 ~n:150 in
  let f = Zipf.Flows.create ~rules ~seed:29 ~flows:500 ~skew:0.9 in
  for rank = 0 to 499 do
    let pkt = Zipf.Flows.packet_of f rank in
    check "flow lands on a rule" true
      (Array.exists (fun r -> Rule.matches_packet r pkt) rules)
  done

let suite =
  [
    ( "zipf",
      [
        Alcotest.test_case "bounds + determinism" `Quick test_bounds_and_determinism;
        Alcotest.test_case "head mass at high skew" `Quick test_head_mass_high_skew;
        Alcotest.test_case "uniform limit at skew 0" `Quick test_uniform_limit;
        Alcotest.test_case "skew orders mean ranks" `Quick test_skew_orders_means;
        Alcotest.test_case "skew 1 has no singularity" `Quick test_skew_one_no_singularity;
        Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        Alcotest.test_case "flow universe deterministic" `Quick test_flows_deterministic;
        Alcotest.test_case "flow packets hit the table" `Quick test_flows_hit_table;
      ] );
  ]
