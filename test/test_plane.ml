(* The lookup-under-update data plane: log-bucketed histograms, the
   TupleChain-style software backend, and the LGEN/SUT storm driver. *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- histograms ----------------------------------------------------- *)

let test_hist_empty () =
  let h = Plane_hist.create () in
  check_int "count" 0 (Plane_hist.count h);
  check "quantile of nothing" true (Plane_hist.p50 h = 0.0)

let test_hist_quantiles () =
  (* Geometric buckets at ratio 2^(1/8): every quantile lands within
     ~9% of the true value. *)
  let h = Plane_hist.create () in
  for _ = 1 to 990 do
    Plane_hist.record h 1_000
  done;
  for _ = 1 to 10 do
    Plane_hist.record h 1_000_000
  done;
  let near x v = v > x /. 1.1 && v < x *. 1.1 in
  check "p50 near 1us" true (near 1_000.0 (Plane_hist.p50 h));
  check "p99 still 1us" true (near 1_000.0 (Plane_hist.p99 h));
  check "p999 catches the tail" true (near 1_000_000.0 (Plane_hist.p999 h));
  check "mean between" true
    (Plane_hist.mean_ns h > 1_000.0 && Plane_hist.mean_ns h < 1_000_000.0);
  check_int "max exact" 1_000_000 (Plane_hist.max_ns h);
  check_int "count" 1_000 (Plane_hist.count h)

let test_hist_merge () =
  let a = Plane_hist.create () and b = Plane_hist.create () in
  for _ = 1 to 50 do
    Plane_hist.record a 500;
    Plane_hist.record b 8_000
  done;
  Plane_hist.merge ~into:a b;
  check_int "merged count" 100 (Plane_hist.count a);
  check_int "merged max" 8_000 (Plane_hist.max_ns a);
  let p50 = Plane_hist.p50 a in
  check "merged p50 spans both" true (p50 > 450.0 && p50 < 9_000.0)

(* --- software backend ----------------------------------------------- *)

let built_image ~kind ~seed ~n =
  let rules = Dataset.generate kind ~seed ~n in
  let agent = Agent.of_rules ~capacity:(3 * n) rules in
  (Tcam.image (Agent.tcam agent), Agent.rules agent)

let test_backend_shape () =
  let img, _ = built_image ~kind:Dataset.ACL4 ~seed:21 ~n:120 in
  let b = Plane_backend.of_image img in
  check_int "all entries indexed" (Image.entry_count img)
    (Plane_backend.entry_count b);
  check "grouped into fewer tuples" true
    (Plane_backend.tuple_count b <= Plane_backend.entry_count b);
  check "image kept" true (Plane_backend.image b == img)

let test_backend_agrees () =
  (* The tuple-space engine must reproduce highest-address-wins exactly,
     on in-rule packets (which exercise shadowing) and uniform ones. *)
  List.iter
    (fun kind ->
      let img, rules = built_image ~kind ~seed:23 ~n:150 in
      let b = Plane_backend.of_image img in
      let rng = Rng.create ~seed:24 in
      let bad = ref 0 in
      let probe pkt =
        let want = Image.lookup img pkt and got = Plane_backend.lookup b pkt in
        let same =
          match (want, got) with
          | None, None -> true
          | Some x, Some y -> x.Rule.id = y.Rule.id
          | _ -> false
        in
        if not same then incr bad
      in
      List.iter
        (fun (r : Rule.t) ->
          for _ = 1 to 4 do
            probe (Header.packet_in rng r.Rule.field)
          done)
        rules;
      for _ = 1 to 50 do
        probe (Header.random_packet rng)
      done;
      check_int (Dataset.to_string kind ^ " backend = image") 0 !bad)
    [ Dataset.ACL4; Dataset.FW5; Dataset.ROUTE ]

(* --- the storm ------------------------------------------------------ *)

let small_spec =
  {
    Plane.default_spec with
    Plane.n = 150;
    seed = 31;
    flows = 3_000;
    ops = 400;
    shards = 2;
    capacity = 600;
    min_lookups = 400;
    rebuild_every = 128;
  }

let test_storm_smoke () =
  let r = Plane.run ~domains:1 small_spec in
  check "storm applied ops" true (r.Plane.applied > 0);
  check "readers sampled enough" true
    (r.Plane.lookups >= small_spec.Plane.min_lookups);
  check_int "every packet tallied" r.Plane.lookups
    (r.Plane.hits + r.Plane.misses);
  check_int "every packet cross-validated" r.Plane.lookups
    (r.Plane.agree + r.Plane.disagree);
  check_int "backend never disagrees" 0 r.Plane.disagree;
  check "observed at least one epoch" true (r.Plane.epochs_seen >= 1);
  check "latency histograms populated" true
    (r.Plane.tcam_lat.Plane.samples = r.Plane.lookups
    && r.Plane.soft_lat.Plane.samples = r.Plane.lookups
    && r.Plane.tcam_lat.Plane.p99 >= r.Plane.tcam_lat.Plane.p50)

let test_storm_four_domains_deterministic () =
  (* The storm side is a pure function of the seed, whatever the flush
     parallelism: 1 domain and 4 domains must apply the same ops. *)
  let a = Plane.run ~domains:1 small_spec in
  let b = Plane.run ~domains:4 { small_spec with Plane.readers = 2 } in
  check_int "4 domains used" 4 b.Plane.domains;
  check_int "same applied" a.Plane.applied b.Plane.applied;
  check_int "same failed" a.Plane.failed b.Plane.failed;
  check_int "same flushes" a.Plane.flushes b.Plane.flushes;
  check_int "still no disagreement" 0 b.Plane.disagree

(* A result dump names everything needed to reproduce its storm side:
   rebuild the spec from the serialized fields alone, re-run, and demand
   the same dump back minus the wall-clock keys. *)
let test_result_json_roundtrip () =
  let strip = function
    | Telemetry.Json.Obj fields ->
        Telemetry.Json.Obj
          (List.filter
             (fun (k, _) -> not (List.mem k Plane.volatile_keys))
             fields)
    | v -> v
  in
  let get j key =
    match j with
    | Telemetry.Json.Obj fields -> (
        match List.assoc_opt key fields with
        | Some v -> v
        | None -> Alcotest.failf "dump has no field %S" key)
    | _ -> Alcotest.failf "dump is not an object"
  in
  let int j key =
    match get j key with
    | Telemetry.Json.Int i -> i
    | _ -> Alcotest.failf "field %S is not an int" key
  in
  let str j key =
    match get j key with
    | Telemetry.Json.Str s -> s
    | _ -> Alcotest.failf "field %S is not a string" key
  in
  let first = Plane.run ~algo:Firmware.Ruletris ~domains:2 small_spec in
  let dump = Plane.result_json first in
  check_int "dump records the domains used" 2 (int dump "domains");
  let spec =
    {
      Plane.kind = Option.get (Dataset.of_string (str dump "kind"));
      n = int dump "n";
      seed = int dump "seed";
      flows = int dump "flows";
      skew =
        (match get dump "skew" with
        | Telemetry.Json.Float f -> f
        | _ -> Alcotest.failf "skew is not a float");
      ops = int dump "ops";
      shards = int dump "shards";
      capacity = int dump "capacity";
      batch = int dump "batch";
      readers = int dump "readers";
      min_lookups = int dump "min_lookups";
      rebuild_every = int dump "rebuild_every";
    }
  in
  let algo = Option.get (Firmware.algo_kind_of_string (str dump "algo")) in
  let again = Plane.run ~algo ~domains:(int dump "domains") spec in
  check "recorded params reproduce the storm" true
    (Telemetry.Json.to_string (strip dump)
    = Telemetry.Json.to_string (strip (Plane.result_json again)))

let suite =
  [
    ( "plane",
      [
        Alcotest.test_case "hist empty" `Quick test_hist_empty;
        Alcotest.test_case "hist quantiles" `Quick test_hist_quantiles;
        Alcotest.test_case "hist merge" `Quick test_hist_merge;
        Alcotest.test_case "backend shape" `Quick test_backend_shape;
        Alcotest.test_case "backend = image lookup" `Quick test_backend_agrees;
        Alcotest.test_case "storm smoke" `Quick test_storm_smoke;
        Alcotest.test_case "storm deterministic across domains" `Quick
          test_storm_four_domains_deterministic;
        Alcotest.test_case "result json roundtrip" `Quick
          test_result_json_roundtrip;
      ] );
  ]
