(* Tests for the degraded-hardware conformance oracle: a seeded 10%-dead
   stuck bank on one shard, every scheduler driven through discovery /
   hole-stepping / overflow diverts / the probe-drill heal, certified
   against a never-faulted twin — sequentially and under the parallel
   drain path. *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_degraded_oracle_clean () =
  let trace =
    Trace.generate ~kind:Dataset.ACL4 ~seed:31 ~initial:30 ~pool:60
      ~capacity:240 ~events:80 ()
  in
  let r = Oracle.run_degraded ~probes:6 ~batch:4 ~shards:3 ~fault_shard:0 trace in
  if not (Oracle.degraded_clean r) then
    Alcotest.failf "degraded oracle diverged:@.%a" Oracle.pp_degraded_report r;
  check "stuck bank is non-empty" true (r.Oracle.dg_seeded_dead > 0);
  List.iter
    (fun c ->
      let name = c.Oracle.degraded_scheduler in
      check (name ^ ": discovery condemned rows") true (c.Oracle.dg_dead_max > 0);
      check_int (name ^ ": nothing shed") 0 c.Oracle.dg_shed;
      check (name ^ ": the heal revived the bank") true
        (c.Oracle.dg_recovered > 0);
      check (name ^ ": converged in bounded flushes") true
        (c.Oracle.dg_heal_flushes > 0))
    r.Oracle.degraded_columns

let test_degraded_validation () =
  let trace =
    Trace.generate ~kind:Dataset.ACL4 ~seed:33 ~initial:10 ~pool:20
      ~capacity:120 ~events:10 ()
  in
  let rejects f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check "batch must be positive" true
    (rejects (fun () -> Oracle.run_degraded ~batch:0 trace));
  check "needs a shard to divert to" true
    (rejects (fun () -> Oracle.run_degraded ~shards:1 trace));
  check "fault shard must exist" true
    (rejects (fun () -> Oracle.run_degraded ~shards:3 ~fault_shard:3 trace));
  check "dead_frac below 1" true
    (rejects (fun () -> Oracle.run_degraded ~dead_frac:1.0 trace));
  check "dead_frac above 0" true
    (rejects (fun () -> Oracle.run_degraded ~dead_frac:0.0 trace))

(* The drill must be deterministic across drain parallelism: the probe
   epilogue runs after the join barrier, so one domain and four must
   produce identical columns. *)
let test_degraded_domains_agree () =
  let trace =
    Trace.generate ~kind:Dataset.ACL4 ~seed:32 ~initial:24 ~pool:48
      ~capacity:200 ~events:60 ()
  in
  let fingerprint r =
    List.map
      (fun c ->
        ( c.Oracle.degraded_scheduler,
          c.Oracle.dg_applied,
          c.Oracle.dg_shed,
          c.Oracle.dg_dead_max,
          c.Oracle.dg_recovered,
          c.Oracle.dg_heal_flushes ))
      r.Oracle.degraded_columns
  in
  let r1 = Oracle.run_degraded ~probes:4 ~domains:1 trace in
  let r4 = Oracle.run_degraded ~probes:4 ~domains:4 trace in
  check "sequential run clean" true (Oracle.degraded_clean r1);
  check "parallel run clean" true (Oracle.degraded_clean r4);
  check "columns agree across domain counts" true
    (fingerprint r1 = fingerprint r4)

(* Random seeds and dead fractions: the certification is not tuned to one
   lucky bank. *)
let prop_degraded_random_banks =
  QCheck.Test.make ~name:"degraded oracle stays clean over random banks"
    ~count:4
    (QCheck.make
       ~print:(fun (seed, pct) -> Printf.sprintf "seed=%d dead=%d%%" seed pct)
       QCheck.Gen.(pair (int_bound 1000) (int_range 5 15)))
    (fun (seed, pct) ->
      let trace =
        Trace.generate ~kind:Dataset.ACL4 ~seed ~initial:20 ~pool:40
          ~capacity:160 ~events:40 ()
      in
      let r =
        Oracle.run_degraded ~probes:4 ~dead_frac:(float_of_int pct /. 100.0)
          trace
      in
      Oracle.degraded_clean r)

let suite =
  [
    ( "degraded",
      [
        Alcotest.test_case "oracle clean at 10% dead" `Quick
          test_degraded_oracle_clean;
        Alcotest.test_case "parameter validation" `Quick test_degraded_validation;
        Alcotest.test_case "domains 1 and 4 agree" `Quick
          test_degraded_domains_agree;
      ]
      @ List.map QCheck_alcotest.to_alcotest [ prop_degraded_random_banks ] );
  ]
