open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let layouts = [ Layout.Original; Layout.Interleaved 4; Layout.Interleaved 1; Layout.Separated ]

let scattered_tcam rng ~size ~k =
  let tcam = Tcam.create ~size in
  let addrs = Array.init size Fun.id in
  Rng.shuffle rng addrs;
  let placed = Array.sub addrs 0 k in
  Array.sort Int.compare placed;
  Array.iteri (fun i a -> Tcam.write tcam ~rule_id:(100 + i) ~addr:a) placed;
  Tcam.reset_counters tcam;
  tcam

let order_of tcam =
  let acc = ref [] in
  Tcam.iter_used tcam (fun ~addr:_ ~rule_id -> acc := rule_id :: !acc);
  List.rev !acc

let test_already_canonical () =
  let order = Array.init 6 (fun i -> i) in
  List.iter
    (fun layout ->
      let tcam = Layout.place layout ~tcam_size:16 ~order in
      check "canonical" true (Defrag.is_canonical tcam ~layout);
      check_int "no moves" 0 (Defrag.moves_needed tcam ~layout);
      check "empty plan" true (Defrag.plan tcam ~layout = []))
    layouts

let test_restores_each_layout () =
  let rng = Rng.create ~seed:41 in
  List.iter
    (fun layout ->
      for _ = 1 to 10 do
        let tcam = scattered_tcam rng ~size:40 ~k:15 in
        let before = order_of tcam in
        let ops = Defrag.plan tcam ~layout in
        Tcam.apply_sequence tcam ops;
        check "canonical after" true (Defrag.is_canonical tcam ~layout);
        Alcotest.(check (list int)) "relative order preserved" before (order_of tcam);
        check_int "count unchanged" 15 (Tcam.used_count tcam)
      done)
    layouts

let test_intermediate_safety () =
  (* Every plan must pass the shadow-table verifier against a dependency
     graph that totally orders the entries (the strictest client). *)
  let rng = Rng.create ~seed:42 in
  List.iter
    (fun layout ->
      for _ = 1 to 10 do
        let tcam = scattered_tcam rng ~size:40 ~k:12 in
        let graph = Graph.create () in
        let ids = order_of tcam in
        List.iteri
          (fun i id ->
            Graph.add_node graph id;
            if i > 0 then Graph.add_edge graph (List.nth ids (i - 1)) id)
          ids;
        let ops = Defrag.plan tcam ~layout in
        check "verified" true (Check.sequence graph tcam ops = Ok ())
      done)
    layouts

let test_empty_table () =
  let tcam = Tcam.create ~size:16 in
  List.iter
    (fun layout ->
      check "empty is canonical" true (Defrag.is_canonical tcam ~layout);
      check_int "no moves for nothing" 0 (Defrag.moves_needed tcam ~layout);
      check "empty plan" true (Defrag.plan tcam ~layout = []))
    layouts

let test_single_entry () =
  List.iter
    (fun layout ->
      (* one entry marooned at the top: the plan is at most one move and
         lands it on the layout's canonical slot for a 1-entry table *)
      let tcam = Tcam.create ~size:16 in
      Tcam.write tcam ~rule_id:5 ~addr:15;
      let ops = Defrag.plan tcam ~layout in
      check "at most one move" true (List.length ops <= 1);
      Tcam.apply_sequence tcam ops;
      check "canonical after" true (Defrag.is_canonical tcam ~layout);
      check_int "still one entry" 1 (Tcam.used_count tcam);
      check "entry survived" true (Tcam.mem tcam 5);
      (* idempotence on the single entry *)
      check "second plan empty" true (Defrag.plan tcam ~layout = []))
    layouts

let test_moves_bounded () =
  let rng = Rng.create ~seed:43 in
  let tcam = scattered_tcam rng ~size:60 ~k:20 in
  List.iter
    (fun layout ->
      let ops = Defrag.plan tcam ~layout in
      check "one write per out-of-place entry" true (List.length ops <= 20))
    layouts

let test_does_not_fit () =
  let tcam = Tcam.create ~size:8 in
  for a = 0 to 5 do
    Tcam.write tcam ~rule_id:a ~addr:a
  done;
  Alcotest.check_raises "interleaved-1 needs 12 slots"
    (Invalid_argument "Defrag: entries do not fit under the target layout")
    (fun () -> ignore (Defrag.plan tcam ~layout:(Layout.Interleaved 1)))

let test_after_churn_gaps_reopen () =
  (* Drive an interleaved run until its gaps fill, defragment, and check
     the gaps are back. *)
  let table = Dataset.build_table Dataset.ACL5 ~seed:44 ~n:100 in
  let layout = Layout.Interleaved 2 in
  let run =
    Firmware.create ~layout_override:layout (Firmware.FR_O Store.Bit_backend)
      ~table ~tcam_size:400 ()
  in
  let rng = Rng.create ~seed:45 in
  let stream =
    Updates.generate rng ~live:(Array.to_list table.Dataset.order) ~count:100
      ~with_deletes:false ~id_base:1_000
  in
  ignore (Firmware.exec_all run stream);
  let tcam = Firmware.tcam run in
  check "degraded" false (Defrag.is_canonical tcam ~layout);
  let ops = Defrag.plan tcam ~layout in
  check "verified against live graph" true
    (Check.sequence (Firmware.graph run) tcam ops = Ok ());
  Tcam.apply_sequence tcam ops;
  check "canonical again" true (Defrag.is_canonical tcam ~layout);
  check "dag order still holds" true
    (Tcam.check_dag_order tcam (Firmware.graph run) = Ok ())

let test_full_occupancy () =
  (* every slot used: Original and Separated are already canonical (their
     placement is the identity at n = size), and a layout that needs gaps
     must refuse rather than emit a colliding plan *)
  let tcam = Tcam.create ~size:16 in
  for a = 0 to 15 do
    Tcam.write tcam ~rule_id:(100 + a) ~addr:a
  done;
  List.iter
    (fun layout ->
      check "full table is canonical" true (Defrag.is_canonical tcam ~layout);
      check "empty plan" true (Defrag.plan tcam ~layout = []))
    [ Layout.Original; Layout.Separated ];
  Alcotest.check_raises "interleaved cannot host a full table"
    (Invalid_argument "Defrag: entries do not fit under the target layout")
    (fun () -> ignore (Defrag.plan tcam ~layout:(Layout.Interleaved 4)))

let test_holes_at_region_boundaries () =
  (* dead rows hugging the array edges and the Separated half boundary —
     the placement must step over all of them, including entries that
     currently sit ON a dead row (stuck-at-write rows still erase, so
     moving out is always possible) *)
  let rng = Rng.create ~seed:46 in
  let dead = [ 0; 11; 12; 23 ] in
  List.iter
    (fun layout ->
      for _ = 1 to 10 do
        let tcam = scattered_tcam rng ~size:24 ~k:9 in
        List.iter
          (fun a -> ignore (Tcam.note_write_failure tcam ~addr:a))
          dead;
        let before = order_of tcam in
        let graph = Graph.create () in
        List.iteri
          (fun i id ->
            Graph.add_node graph id;
            if i > 0 then Graph.add_edge graph (List.nth before (i - 1)) id)
          before;
        let ops = Defrag.plan tcam ~layout in
        check "one write per entry, holes included" true
          (List.length ops <= 9);
        check "verified" true (Check.sequence graph tcam ops = Ok ());
        Tcam.apply_sequence tcam ops;
        check "canonical modulo holes" true (Defrag.is_canonical tcam ~layout);
        Alcotest.(check (list int)) "order preserved" before (order_of tcam);
        List.iter
          (fun a -> check "dead row vacated" true (Tcam.is_free tcam a))
          dead;
        check "idempotent" true (Defrag.plan tcam ~layout = [])
      done)
    layouts

let test_holes_shrink_capacity () =
  (* 10 entries, 12 rows, 3 dead: the writable space is too small and the
     planner must say so instead of silently stacking entries *)
  let tcam = Tcam.create ~size:12 in
  for a = 0 to 9 do
    Tcam.write tcam ~rule_id:(100 + a) ~addr:a
  done;
  List.iter (fun a -> ignore (Tcam.note_write_failure tcam ~addr:a)) [ 2; 5; 9 ];
  Alcotest.check_raises "dead rows shrink the writable space"
    (Invalid_argument "Defrag: entries do not fit under the target layout")
    (fun () -> ignore (Defrag.plan tcam ~layout:Layout.Original))

let suite =
  [
    ( "defrag",
      [
        Alcotest.test_case "already canonical" `Quick test_already_canonical;
        Alcotest.test_case "empty table" `Quick test_empty_table;
        Alcotest.test_case "single entry" `Quick test_single_entry;
        Alcotest.test_case "restores each layout" `Quick test_restores_each_layout;
        Alcotest.test_case "intermediate safety" `Quick test_intermediate_safety;
        Alcotest.test_case "moves bounded" `Quick test_moves_bounded;
        Alcotest.test_case "does not fit" `Quick test_does_not_fit;
        Alcotest.test_case "reopens gaps after churn" `Quick test_after_churn_gaps_reopen;
        Alcotest.test_case "full occupancy" `Quick test_full_occupancy;
        Alcotest.test_case "holes at region boundaries" `Quick
          test_holes_at_region_boundaries;
        Alcotest.test_case "holes shrink capacity" `Quick
          test_holes_shrink_capacity;
      ] );
  ]
