(* Property-based tests (qcheck) for the core invariants of DESIGN.md §6. *)

open Fastrule

(* --- generators -------------------------------------------------------- *)

let ternary_gen width =
  QCheck.Gen.(
    array_repeat width (frequencyl [ (2, '0'); (2, '1'); (3, '*') ])
    >|= fun chars -> Ternary.of_string (String.init width (Array.get chars)))

let arb_ternary width =
  QCheck.make ~print:Ternary.to_string (ternary_gen width)

let arb_ternary_pair width =
  QCheck.make
    ~print:(fun (a, b) -> Ternary.to_string a ^ " / " ^ Ternary.to_string b)
    QCheck.Gen.(pair (ternary_gen width) (ternary_gen width))

(* A random rule table over a narrow 10-bit header so overlaps are common. *)
let rules_gen =
  QCheck.Gen.(
    let rule_gen i =
      ternary_gen 10 >|= fun field ->
      Rule.make ~id:i ~field ~action:(Rule.Forward i)
        ~priority:(10 - Ternary.num_wildcards field)
    in
    int_range 2 25 >>= fun n ->
    let rec build i acc =
      if i = n then return (Array.of_list (List.rev acc))
      else rule_gen i >>= fun r -> build (i + 1) (r :: acc)
    in
    build 0 [])

let arb_rules =
  QCheck.make
    ~print:(fun rules ->
      String.concat ";"
        (Array.to_list
           (Array.map (fun (r : Rule.t) -> Ternary.to_string r.Rule.field) rules)))
    rules_gen

(* --- ternary algebra --------------------------------------------------- *)

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"overlap is symmetric" ~count:500 (arb_ternary_pair 12)
    (fun (a, b) -> Ternary.overlaps a b = Ternary.overlaps b a)

let prop_subsumes_implies_overlap =
  QCheck.Test.make ~name:"subsumption implies overlap" ~count:500
    (arb_ternary_pair 12) (fun (a, b) ->
      QCheck.assume (Ternary.subsumes a b);
      Ternary.overlaps a b)

let prop_intersect_members =
  QCheck.Test.make ~name:"intersection members match both" ~count:300
    (arb_ternary_pair 10) (fun (a, b) ->
      match Ternary.intersect a b with
      | None -> true
      | Some i ->
          let rng = Rng.create ~seed:(Ternary.hash i) in
          let ok = ref true in
          for _ = 1 to 20 do
            let v = Ternary.random_exact_in rng i in
            if not (Ternary.matches_value a v && Ternary.matches_value b v) then
              ok := false
          done;
          !ok)

let prop_sampled_member_matches =
  QCheck.Test.make ~name:"random_exact_in lands inside" ~count:300 (arb_ternary 16)
    (fun t ->
      let rng = Rng.create ~seed:(Ternary.hash t) in
      Ternary.matches_value t (Ternary.random_exact_in rng t))

let prop_overlap_iff_shared_member =
  (* For narrow widths, exhaustively check overlap = exists shared member. *)
  QCheck.Test.make ~name:"overlap iff shared member (width 6)" ~count:300
    (arb_ternary_pair 6) (fun (a, b) ->
      let shared = ref false in
      for v = 0 to 63 do
        let bits = [| Int64.of_int v |] in
        if Ternary.matches_value a bits && Ternary.matches_value b bits then
          shared := true
      done;
      Ternary.overlaps a b = !shared)

(* --- compiler ----------------------------------------------------------- *)

let prop_compile_acyclic_and_covering =
  QCheck.Test.make ~name:"compile: acyclic + closure covers overlaps" ~count:60
    arb_rules (fun rules ->
      let g = Dag_build.compile rules in
      Topo.is_acyclic g && Dag_build.closure_covers_overlaps g rules)

(* The cache tier's admission safety rides on closure queries staying
   sound over a *churned* graph, not just a freshly compiled one: after
   every random interleaving of incremental inserts and contracted
   deletes, the transitive closure must still cover every overlapping
   live pair.  Deletion must contract (Graph.remove_node ~contract) —
   plain removal loses the ordering that flowed through the deleted
   node, which is exactly the unsoundness this property would expose. *)
let prop_closure_covers_across_churn =
  QCheck.Test.make ~name:"closure covers overlaps across insert/delete churn"
    ~count:40
    QCheck.(pair arb_rules (make ~print:string_of_int Gen.(int_range 0 10_000)))
    (fun (rules, seed) ->
      let rng = Rng.create ~seed in
      let g = Graph.create () in
      let live = Hashtbl.create 16 in
      let live_rules () = Hashtbl.fold (fun _ r acc -> r :: acc) live [] in
      let next = ref 0 in
      let n = Array.length rules in
      let ok = ref true in
      for _ = 1 to 3 * n do
        (if !next < n && (Hashtbl.length live = 0 || Rng.chance rng 0.6) then begin
           let r = rules.(!next) in
           incr next;
           Dag_build.insert g ~existing:(live_rules ()) r;
           Hashtbl.replace live r.Rule.id r
         end
         else if Hashtbl.length live > 0 then begin
           let r = Rng.pick rng (Array.of_list (live_rules ())) in
           Dag_build.remove ~contract:true g r.Rule.id;
           Hashtbl.remove live r.Rule.id
         end);
        let arr = Array.of_list (live_rules ()) in
        if not (Topo.is_acyclic g && Dag_build.closure_covers_overlaps g arr)
        then ok := false
      done;
      !ok)

(* --- fenwick min-tree --------------------------------------------------- *)

let prop_min_tree_vs_naive =
  QCheck.Test.make ~name:"min-tree equals naive scan" ~count:200
    QCheck.(
      make
        Gen.(
          int_range 1 60 >>= fun n ->
          list_size (int_range 1 80) (pair (int_range 0 (n - 1)) (int_range 0 50))
          >|= fun ops -> (n, ops)))
    (fun (n, ops) ->
      let t = Min_tree.create n ~init:25 in
      let reference = Array.make n 25 in
      List.for_all
        (fun (i, v) ->
          Min_tree.set t i v;
          reference.(i) <- v;
          (* check a handful of ranges *)
          List.for_all
            (fun (lo, hi) ->
              let lo = min lo hi and hi = max lo hi in
              let best_v = ref max_int and best_i = ref (-1) in
              for k = lo to min hi (n - 1) do
                if reference.(k) <= !best_v then begin
                  best_v := reference.(k);
                  best_i := k
                end
              done;
              Min_tree.min_in t ~lo ~hi:(min hi (n - 1)) = Some (!best_i, !best_v))
            [ (0, n - 1); (i, n - 1); (0, i); (i / 2, i) ])
        ops)

(* --- end-to-end scheduler invariants ------------------------------------ *)

let algo_choices =
  [
    ("naive", Firmware.Naive);
    ("ruletris", Firmware.Ruletris);
    ("fr-o/bit", Firmware.FR_O Store.Bit_backend);
    ("fr-o/array", Firmware.FR_O Store.Array_backend);
    ("fr-o/od", Firmware.FR_O Store.On_demand);
    ("fr-sd", Firmware.FR_SD Store.Bit_backend);
    ("fr-sb", Firmware.FR_SB Store.Bit_backend);
  ]

(* One random end-to-end scenario: a compiled table + a random update
   stream, replayed with invariant checking on. *)
let scenario_gen =
  QCheck.Gen.(
    pair (int_range 0 10_000) (pair (int_range 10 60) bool) >|= fun (seed, (n, deletes)) ->
    (seed, n, deletes))

let arb_scenario =
  QCheck.make
    ~print:(fun (seed, n, deletes) -> Printf.sprintf "seed=%d n=%d deletes=%b" seed n deletes)
    scenario_gen

let run_scenario (seed, n, deletes) kind =
  let kinds = [| Dataset.ACL4; Dataset.ACL5; Dataset.FW4; Dataset.FW5; Dataset.ROUTE |] in
  let table = Dataset.build_table kinds.(seed mod 5) ~seed ~n in
  let rng = Rng.create ~seed:(seed + 1) in
  let stream =
    Updates.generate rng ~live:(Array.to_list table.Dataset.order) ~count:(2 * n)
      ~with_deletes:deletes ~id_base:(n + 1)
  in
  let run = Firmware.create ~check_invariant:true kind ~table ~tcam_size:(4 * n) () in
  let failed = Firmware.exec_all run stream in
  (run, failed)

let prop_invariant_all_algos =
  List.map
    (fun (name, kind) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "dependency invariant: %s" name)
        ~count:30 arb_scenario
        (fun sc ->
          let run, failed = run_scenario sc kind in
          failed = 0
          && Tcam.check_dag_order (Firmware.tcam run) (Firmware.graph run) = Ok ()))
    algo_choices

let prop_membership_agreement =
  QCheck.Test.make ~name:"final membership agrees across algorithms" ~count:15
    arb_scenario (fun sc ->
      let members kind =
        let run, failed = run_scenario sc kind in
        QCheck.assume (failed = 0);
        List.sort Int.compare (Tcam.used_ids (Firmware.tcam run))
      in
      let reference = members Firmware.Naive in
      List.for_all
        (fun (_, kind) -> members kind = reference)
        [ ("rt", Firmware.Ruletris); ("fr", Firmware.FR_O Store.Bit_backend);
          ("sb", Firmware.FR_SB Store.Bit_backend) ])

let prop_metric_stores_truthful =
  QCheck.Test.make ~name:"metric stores truthful after streams" ~count:25
    arb_scenario (fun sc ->
      let seed, n, _ = sc in
      let table = Dataset.build_table Dataset.FW5 ~seed ~n in
      let rng = Rng.create ~seed:(seed + 2) in
      let stream =
        Updates.generate rng ~live:(Array.to_list table.Dataset.order) ~count:n
          ~with_deletes:true ~id_base:(n + 1)
      in
      let tcam =
        Layout.place Layout.Original ~tcam_size:(3 * n) ~order:table.Dataset.order
      in
      let graph = Graph.copy table.Dataset.graph in
      let st = Greedy.create ~backend:Store.Bit_backend ~graph ~tcam () in
      let algo = Greedy.algo st in
      List.iter
        (fun u ->
          match Updates.resolve graph tcam u with
          | Updates.R_insert { id; deps; dependents } as r ->
              Updates.apply_graph graph r;
              (match algo.Algo.schedule_insert ~rule_id:id ~deps ~dependents with
              | Ok ops ->
                  Tcam.apply_sequence tcam ops;
                  algo.Algo.after_apply ops
              | Error _ -> Graph.remove_node graph id)
          | Updates.R_delete { id } as r -> (
              match algo.Algo.schedule_delete ~rule_id:id with
              | Ok ops ->
                  Tcam.apply_sequence tcam ops;
                  Updates.apply_graph graph r;
                  algo.Algo.after_apply ops
              | Error _ -> ()))
        stream;
      let snap = Store.snapshot (Greedy.store st) in
      Array.for_all
        (fun a -> snap.(a) = Metric.compute Dir.Up graph tcam ~addr:a)
        (Array.init (Tcam.size tcam) Fun.id))

(* Every sequence any scheduler emits must be intermediate-state safe: no
   live-entry clobbering, dependency order intact after every single op
   (Check simulates op by op). *)
let prop_sequences_intermediate_safe =
  QCheck.Test.make ~name:"sequences are intermediate-state safe" ~count:20
    arb_scenario (fun (seed, n, _) ->
      let table = Dataset.build_table Dataset.FW4 ~seed ~n in
      let rng = Rng.create ~seed:(seed + 3) in
      let stream =
        Updates.generate rng ~live:(Array.to_list table.Dataset.order) ~count:n
          ~with_deletes:true ~id_base:(10 * n)
      in
      List.for_all
        (fun kind ->
          let run =
            Firmware.create ~check_invariant:false kind ~table ~tcam_size:(4 * n) ()
          in
          let graph = Firmware.graph run and tcam = Firmware.tcam run in
          let algo = Firmware.scheduler run in
          (* Re-drive the stream by hand so we can interpose Check. *)
          let ok = ref true in
          List.iter
            (fun u ->
              match Updates.resolve graph tcam u with
              | Updates.R_insert { id; deps; dependents } as r -> (
                  Updates.apply_graph graph r;
                  match algo.Algo.schedule_insert ~rule_id:id ~deps ~dependents with
                  | Ok ops ->
                      if Check.sequence graph tcam ops <> Ok () then ok := false;
                      Tcam.apply_sequence tcam ops;
                      algo.Algo.after_apply ops
                  | Error _ -> Graph.remove_node graph id)
              | Updates.R_delete { id } as r -> (
                  match algo.Algo.schedule_delete ~rule_id:id with
                  | Ok ops ->
                      if Check.sequence graph tcam ops <> Ok () then ok := false;
                      Tcam.apply_sequence tcam ops;
                      Updates.apply_graph graph r;
                      algo.Algo.after_apply ops
                  | Error _ -> ()))
            stream;
          !ok)
        [
          Firmware.Naive;
          Firmware.FR_O Store.Bit_backend;
          Firmware.FR_SB Store.Bit_backend;
        ])

let prop_ruletris_never_longer =
  QCheck.Test.make ~name:"ruletris <= greedy sequence length" ~count:40
    arb_scenario (fun (seed, n, _) ->
      let table = Dataset.build_table Dataset.ACL4 ~seed ~n in
      let tcam =
        Layout.place Layout.Original ~tcam_size:(n + 8) ~order:table.Dataset.order
      in
      let graph = Graph.copy table.Dataset.graph in
      let rng = Rng.create ~seed in
      let ids = Array.of_list (Tcam.used_ids tcam) in
      let x = Rng.pick rng ids and y = Rng.pick rng ids in
      QCheck.assume (x <> y);
      let f_a, f_b =
        if Topo.reachable graph x y then (x, y)
        else if Topo.reachable graph y x then (y, x)
        else if Tcam.addr_of tcam x < Tcam.addr_of tcam y then (x, y)
        else (y, x)
      in
      Graph.add_node graph 424242;
      Graph.add_edge graph 424242 f_b;
      Graph.add_edge graph f_a 424242;
      let greedy = Greedy.algo (Greedy.create ~graph ~tcam ()) in
      let rt = Ruletris.make ~graph ~tcam in
      match
        ( greedy.Algo.schedule_insert ~rule_id:424242 ~deps:[ f_b ] ~dependents:[ f_a ],
          rt.Algo.schedule_insert ~rule_id:424242 ~deps:[ f_b ] ~dependents:[ f_a ] )
      with
      | Ok g, Ok r -> List.length r <= List.length g
      | _ -> false)

let to_alcotest tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "props-ternary",
      to_alcotest
        [
          prop_overlap_symmetric;
          prop_subsumes_implies_overlap;
          prop_intersect_members;
          prop_sampled_member_matches;
          prop_overlap_iff_shared_member;
        ] );
    ( "props-compiler",
      to_alcotest
        [ prop_compile_acyclic_and_covering; prop_closure_covers_across_churn ] );
    ("props-bitree", to_alcotest [ prop_min_tree_vs_naive ]);
    ( "props-schedulers",
      to_alcotest
        (prop_invariant_all_algos
        @ [
            prop_membership_agreement;
            prop_metric_stores_truthful;
            prop_sequences_intermediate_safe;
            prop_ruletris_never_longer;
          ]) );
  ]
