open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let chain edges =
  let g = Graph.create () in
  List.iter (fun (u, v) -> Graph.add_edge g u v) edges;
  g

let test_toposort_order () =
  let g = chain [ (1, 2); (2, 3); (1, 4) ] in
  match Topo.toposort g with
  | None -> Alcotest.fail "expected acyclic"
  | Some order ->
      let pos = Hashtbl.create 8 in
      List.iteri (fun i u -> Hashtbl.replace pos u i) order;
      let p x = Hashtbl.find pos x in
      check "1 before 2" true (p 1 < p 2);
      check "2 before 3" true (p 2 < p 3);
      check "1 before 4" true (p 1 < p 4)

let test_cycle_detected () =
  let g = chain [ (1, 2); (2, 3); (3, 1) ] in
  check "cyclic" false (Topo.is_acyclic g);
  check "toposort none" true (Topo.toposort g = None)

let test_empty_and_singleton () =
  let g = Graph.create () in
  check "empty acyclic" true (Topo.is_acyclic g);
  check_int "empty longest path" 0 (Topo.longest_path_nodes g);
  Graph.add_node g 7;
  check_int "singleton longest path" 1 (Topo.longest_path_nodes g)

let test_reachable () =
  let g = chain [ (1, 2); (2, 3); (4, 3) ] in
  check "direct" true (Topo.reachable g 1 2);
  check "transitive" true (Topo.reachable g 1 3);
  check "self" true (Topo.reachable g 2 2);
  check "reverse" false (Topo.reachable g 3 1);
  check "cross" false (Topo.reachable g 1 4)

let test_would_close_cycle () =
  let g = chain [ (1, 2); (2, 3) ] in
  check "back edge closes" true (Topo.would_close_cycle g 3 1);
  check "forward edge fine" false (Topo.would_close_cycle g 1 3);
  check "self closes" true (Topo.would_close_cycle g 2 2)

let test_descendants_ancestors () =
  let g = chain [ (1, 2); (2, 3); (1, 4) ] in
  let to_list s = List.sort Int.compare (Rule.Id_set.elements s) in
  Alcotest.(check (list int)) "descendants" [ 2; 3; 4 ] (to_list (Topo.descendants g 1));
  Alcotest.(check (list int)) "ancestors" [ 1; 2 ] (to_list (Topo.ancestors g 3));
  Alcotest.(check (list int)) "leaf descendants" [] (to_list (Topo.descendants g 3))

let test_longest_path () =
  let g = chain [ (1, 2); (2, 3); (3, 4); (10, 11) ] in
  check_int "longest" 4 (Topo.longest_path_nodes g);
  Graph.add_edge g 0 1;
  check_int "longer" 5 (Topo.longest_path_nodes g)

(* The cache tier asks for whole-chain closures; on a pathological 50k-deep
   dependency chain the explicit-stack traversals must neither overflow
   nor miss anything. *)
let test_deep_chain_stack_safety () =
  let n = 50_000 in
  let g = Graph.create () in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1)
  done;
  check_int "descendants of root" (n - 1)
    (Rule.Id_set.cardinal (Topo.descendants g 0));
  check_int "ancestors of leaf" (n - 1)
    (Rule.Id_set.cardinal (Topo.ancestors g (n - 1)));
  check "reachable end to end" true (Topo.reachable g 0 (n - 1));
  check_int "longest path spans the chain" n (Topo.longest_path_nodes g);
  match Topo.toposort g with
  | None -> Alcotest.fail "chain must be acyclic"
  | Some order -> check_int "toposort covers the chain" n (List.length order)

let test_longest_path_dag_diamond () =
  (* Diamond: 1 -> {2,3} -> 4 gives a 3-node longest chain, not 4. *)
  let g = chain [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  check_int "diamond" 3 (Topo.longest_path_nodes g)

let suite =
  [
    ( "topo",
      [
        Alcotest.test_case "toposort respects edges" `Quick test_toposort_order;
        Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
        Alcotest.test_case "empty/singleton" `Quick test_empty_and_singleton;
        Alcotest.test_case "reachable" `Quick test_reachable;
        Alcotest.test_case "would_close_cycle" `Quick test_would_close_cycle;
        Alcotest.test_case "descendants/ancestors" `Quick test_descendants_ancestors;
        Alcotest.test_case "longest path" `Quick test_longest_path;
        Alcotest.test_case "diamond longest path" `Quick test_longest_path_dag_diamond;
        Alcotest.test_case "50k-deep chain stack safety" `Quick test_deep_chain_stack_safety;
      ] );
  ]
