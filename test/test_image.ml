(* The published-image layer: immutable snapshots, epoch publication,
   bind/unbind payload protocol, and wait-free readers racing a writer. *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk id prio plen base =
  Rule.make ~id
    ~field:
      (Header.pack
         {
           Header.wildcard with
           Header.dst_ip = Ternary.prefix_of_int64 ~width:32 ~plen base;
         })
    ~action:(Rule.Forward id) ~priority:prio

let test_empty () =
  let img = Image.empty in
  check_int "epoch 0" 0 (Image.epoch img);
  check_int "no entries" 0 (Image.entry_count img);
  check "no addr" true (Image.addr_of img 1 = None);
  check "lookup misses" true
    (Image.lookup img (Header.random_packet (Rng.create ~seed:1)) = None)

let test_persistence () =
  (* Deriving a new image must leave every older snapshot untouched. *)
  let r1 = mk 1 8 8 0x0A000000L in
  let v0 = Image.empty in
  let v1 = Image.write (Image.bind v0 r1) ~rule_id:1 ~addr:3 in
  let v2 = Image.erase v1 ~addr:3 in
  check_int "v0 empty" 0 (Image.entry_count v0);
  check_int "v1 holds 1" 1 (Image.entry_count v1);
  check "v1 addr" true (Image.addr_of v1 1 = Some 3);
  check_int "v2 empty again" 0 (Image.entry_count v2);
  check "v1 unchanged by erase" true (Image.addr_of v1 1 = Some 3);
  check "epochs strictly grow" true
    (Image.epoch v0 < Image.epoch v1 && Image.epoch v1 < Image.epoch v2)

let test_move_vacates () =
  let v =
    Image.write (Image.write Image.empty ~rule_id:7 ~addr:2) ~rule_id:7 ~addr:5
  in
  check_int "still one entry" 1 (Image.entry_count v);
  check "new slot" true (Image.addr_of v 7 = Some 5);
  check "old slot vacated" true
    (Image.fold v ~init:true ~f:(fun acc ~addr ~rule_id:_ -> acc && addr <> 2))

let test_unbound_skipped () =
  (* A slot whose payload is not bound must not answer lookups. *)
  let r = mk 4 24 24 0x0A000100L in
  let rng = Rng.create ~seed:9 in
  let pkt = Header.packet_in rng r.Rule.field in
  let unbound = Image.write Image.empty ~rule_id:4 ~addr:1 in
  check "unbound miss" true (Image.lookup unbound pkt = None);
  let bound = Image.bind unbound r in
  check "bound hit" true
    (match Image.lookup bound pkt with Some x -> x.Rule.id = 4 | None -> false);
  check "unbind hides again" true
    (Image.lookup (Image.unbind bound ~id:4) pkt = None)

let test_tcam_publishes () =
  (* Every committed Tcam mutation publishes a fresh image that answers
     exactly like the mutable slot array. *)
  let rules = Dataset.generate Dataset.ACL4 ~seed:17 ~n:40 in
  let agent = Agent.of_rules ~capacity:100 rules in
  let tcam = Agent.tcam agent in
  check "image consistent" true (Result.is_ok (Tcam.image_consistent tcam));
  let img = Tcam.image tcam in
  check_int "image mirrors tcam" (Tcam.used_count tcam) (Image.entry_count img);
  let rng = Rng.create ~seed:18 in
  let agree = ref true in
  List.iter
    (fun (r : Rule.t) ->
      let pkt = Header.packet_in rng r.Rule.field in
      let live = Agent.lookup agent pkt in
      let snap = Image.lookup img pkt in
      let same =
        match (live, snap) with
        | None, None -> true
        | Some a, Some b -> a.Rule.id = b.Rule.id
        | _ -> false
      in
      if not same then agree := false)
    (Agent.rules agent);
  check "snapshot = live lookup" true !agree

let test_epoch_per_op () =
  let t = Tcam.create ~size:16 in
  let e0 = Image.epoch (Tcam.image t) in
  Tcam.write t ~rule_id:1 ~addr:0;
  let e1 = Image.epoch (Tcam.image t) in
  Tcam.write t ~rule_id:2 ~addr:1;
  let e2 = Image.epoch (Tcam.image t) in
  Tcam.erase t ~addr:0;
  let e3 = Image.epoch (Tcam.image t) in
  check "each op publishes" true (e0 < e1 && e1 < e2 && e2 < e3)

let test_copy_does_not_publish () =
  (* Simulation copies (Check.sequence) share the image but must never
     call the parent's publisher. *)
  let t = Tcam.create ~size:8 in
  let fired = ref 0 in
  Tcam.set_publisher t (Some (fun _ -> incr fired));
  Tcam.write t ~rule_id:1 ~addr:0;
  check_int "parent publishes" 1 !fired;
  let sim = Tcam.copy t in
  Tcam.write sim ~rule_id:2 ~addr:1;
  check_int "copy is silent" 1 !fired;
  check "parent image unaffected" true (Image.addr_of (Tcam.image t) 2 = None)

let test_publish_allocation_bound () =
  (* Publication is a pointer swap over a persistent map: the per-op
     allocation is O(log n) words, far below copying the table.  Gate it
     at a small fraction of the 4096-entry table size so a regression to
     O(n) snapshotting fails loudly. *)
  let n = 4096 in
  let t = Tcam.create ~size:(2 * n) in
  for i = 0 to n - 1 do
    Tcam.write t ~rule_id:i ~addr:(2 * i)
  done;
  let before = Gc.minor_words () in
  for i = 0 to 99 do
    Tcam.write t ~rule_id:i ~addr:((2 * i) + 1)
  done;
  let per_op = (Gc.minor_words () -. before) /. 100.0 in
  check ("per-op words bounded, got " ^ string_of_float per_op) true
    (per_op < float_of_int (n / 4))

let test_readers_race_writer () =
  (* Four wait-free reader domains hammer the published pointer while the
     writer churns slots.  Each reader checks it only ever observes fully
     bound, monotonically-published snapshots. *)
  let rules = Array.init 64 (fun i -> mk i (8 + (i mod 16)) 24 (Int64.of_int (i * 256))) in
  let t = Tcam.create ~size:128 in
  let published = Atomic.make (Tcam.image t) in
  Tcam.set_publisher t (Some (fun img -> Atomic.set published img));
  let stop = Atomic.make false in
  let reader () =
    let rng = Rng.create ~seed:(Domain.self () :> int) in
    let last_epoch = ref (-1) in
    let bad = ref 0 in
    let reads = ref 0 in
    while (not (Atomic.get stop)) || !reads < 200 do
      incr reads;
      let img = Atomic.get published in
      let e = Image.epoch img in
      if e < !last_epoch then incr bad;
      last_epoch := e;
      (* Every slot in a published snapshot must resolve its payload:
         binds happen before writes, unbinds after erases. *)
      Image.iter img (fun ~addr:_ ~rule_id ->
          if Image.rule img rule_id = None then incr bad);
      let pkt = Header.packet_in rng rules.(Rng.int rng 64).Rule.field in
      (match Image.lookup img pkt with
      | Some r -> if Image.addr_of img r.Rule.id = None then incr bad
      | None -> ());
      if !reads land 63 = 0 then Domain.cpu_relax ()
    done;
    !bad
  in
  let readers = List.init 4 (fun _ -> Domain.spawn reader) in
  for round = 0 to 5 do
    (* Bounce every rule between two disjoint address banks so a move's
       target slot is always free, then retire a third of them. *)
    let bank = if round land 1 = 0 then 0 else 64 in
    Array.iteri
      (fun i r ->
        Tcam.bind_rule t r;
        Tcam.write t ~rule_id:i ~addr:(bank + i))
      rules;
    Array.iteri
      (fun i _ ->
        if i mod 3 = round mod 3 then begin
          match Tcam.addr_of t i with
          | Some a ->
              Tcam.erase t ~addr:a;
              Tcam.unbind_rule t ~id:i
          | None -> ()
        end)
      rules
  done;
  Atomic.set stop true;
  let bad = List.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
  check_int "no torn or stale snapshot observed" 0 bad;
  check "writer image still consistent" true
    (Result.is_ok (Tcam.image_consistent t))

let suite =
  [
    ( "image",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "persistence" `Quick test_persistence;
        Alcotest.test_case "move vacates old slot" `Quick test_move_vacates;
        Alcotest.test_case "unbound payloads skipped" `Quick test_unbound_skipped;
        Alcotest.test_case "tcam publishes per op" `Quick test_tcam_publishes;
        Alcotest.test_case "epoch per op" `Quick test_epoch_per_op;
        Alcotest.test_case "copy does not publish" `Quick test_copy_does_not_publish;
        Alcotest.test_case "publish allocation bound" `Quick
          test_publish_allocation_bound;
        Alcotest.test_case "4 readers race a writer" `Quick
          test_readers_race_writer;
      ] );
  ]
