(* Tests for the domain pool behind the parallel flush (Fr_exec.Pool) and
   for the determinism contract it must honour: a flush on [n] domains is
   observationally identical to the sequential one — same reports, same
   journal bytes, same deterministic telemetry — under random churn and
   chaos schedules.  Also covers the adaptive slow-call threshold the
   supervisor derives from a shard's own latency history. *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rec rm_rf dir =
  try
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p
        else try Sys.remove p with Sys_error _ -> ())
      (Sys.readdir dir);
    Sys.rmdir dir
  with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Pool unit tests *)

let test_run_all_order () =
  let p = Pool.create ~workers:2 () in
  let fs = Array.init 16 (fun i -> fun () -> (i * i) + 1) in
  let out = Pool.run_all p fs in
  Array.iteri
    (fun i r -> check "slot i holds thunk i's value" true (r = Ok ((i * i) + 1)))
    out;
  check_int "workers accessor" 2 (Pool.workers p);
  Pool.shutdown p

let test_workers_zero_inline () =
  (* workers:0 is the legacy path: tasks run inside the caller's await. *)
  let p = Pool.create ~workers:0 () in
  let hits = ref 0 in
  let h1 = Pool.submit p (fun () -> incr hits; 1) in
  let h2 = Pool.submit p (fun () -> incr hits; 2) in
  check_int "nothing ran before await" 0 !hits;
  check "await h2 runs queued work" true (Pool.await h2 = Ok 2);
  check "h1 resolved along the way" true (Pool.await h1 = Ok 1);
  check_int "both bodies ran on this domain" 2 !hits;
  Pool.shutdown p

let test_bounded_admission () =
  let p = Pool.create ~max_pending:2 ~workers:0 () in
  let h1 = Pool.submit p (fun () -> ()) in
  let h2 = Pool.submit p (fun () -> ()) in
  check "third try_submit refused" true (Pool.try_submit p (fun () -> ()) = None);
  check "third submit raises Saturated" true
    (try
       ignore (Pool.submit p (fun () -> ()));
       false
     with Pool.Saturated -> true);
  check "h1 resolves" true (Pool.await h1 = Ok ());
  check "h2 resolves" true (Pool.await h2 = Ok ());
  check "admission reopens once drained" true
    (Pool.try_submit p (fun () -> ()) <> None);
  Pool.shutdown p

let test_worker_exception () =
  let p = Pool.create ~workers:1 () in
  let bad = Pool.submit p (fun () -> failwith "boom") in
  (match Pool.await bad with
  | Error (Failure m) -> check "exception surfaced" true (m = "boom")
  | _ -> Alcotest.fail "expected Error (Failure boom)");
  (* The worker domain survived the raise and keeps serving. *)
  let ok = Pool.submit p (fun () -> 7) in
  check "pool still usable after a raise" true (Pool.await ok = Ok 7);
  Pool.shutdown p

let test_deadline_then_resolve () =
  let p = Pool.create ~workers:1 () in
  let gate = Atomic.make false in
  let h =
    Pool.submit p (fun () ->
        while not (Atomic.get gate) do
          Unix.sleepf 0.001
        done;
        42)
  in
  check "deadlined await times out, task keeps running" true
    (Pool.await ~deadline_ms:15.0 h = Error Pool.Timed_out);
  Atomic.set gate true;
  check "second await lands the value" true (Pool.await h = Ok 42);
  Pool.shutdown p

let test_shutdown () =
  let p = Pool.create ~workers:1 () in
  let done_ = Atomic.make 0 in
  let hs =
    List.init 4 (fun _ ->
        Pool.submit p (fun () -> Atomic.incr done_))
  in
  Pool.shutdown p;
  check_int "graceful: queued tasks finished before join" 4 (Atomic.get done_);
  List.iter (fun h -> check "handles resolve after shutdown" true (Pool.await h = Ok ())) hs;
  Pool.shutdown p (* idempotent *);
  check "submit after shutdown raises Shut_down" true
    (try
       ignore (Pool.submit p (fun () -> ()));
       false
     with Pool.Shut_down -> true);
  check "try_submit after shutdown raises Shut_down" true
    (try
       ignore (Pool.try_submit p (fun () -> ()));
       false
     with Pool.Shut_down -> true)

let test_shared_memoised () =
  let a = Pool.shared ~workers:1 in
  let b = Pool.shared ~workers:1 in
  check "same worker count yields the same pool" true (a == b);
  check_int "shared pool has the asked-for workers" 1 (Pool.workers a);
  check "recommended is at least 1" true (Pool.recommended () >= 1)

(* ------------------------------------------------------------------ *)
(* Determinism: flush on n domains == flush on 1 domain *)

(* Byte-image of a journal directory: sorted relative paths with contents.
   The contract says the parallel flush writes the exact same bytes. *)
let dir_image root =
  let acc = ref [] in
  let rec walk rel abs =
    Array.iter
      (fun f ->
        let rel = if rel = "" then f else Filename.concat rel f in
        let abs = Filename.concat abs f in
        if Sys.is_directory abs then walk rel abs
        else
          let ic = open_in_bin abs in
          let n = in_channel_length ic in
          let b = really_input_string ic n in
          close_in ic;
          acc := (rel, b) :: !acc)
      (Sys.readdir abs)
  in
  walk "" root;
  List.sort compare !acc

let service_image svc =
  let acc = ref [] in
  for s = 0 to Ctrl.shards svc - 1 do
    List.iter
      (fun (r : Rule.t) ->
        acc := (s, r.Rule.id, r.Rule.priority, r.Rule.action) :: !acc)
      (Agent.rules (Shard.agent (Ctrl.shard svc s)))
  done;
  List.sort compare !acc

(* Every deterministic per-shard counter; measured wall-clock metrics
   (firmware_ms, wall_ms summaries) are explicitly out of contract. *)
let telemetry_image svc =
  List.init (Ctrl.shards svc) (fun s ->
      let t = Shard.telemetry (Ctrl.shard svc s) in
      ( ( Telemetry.submitted t,
          Telemetry.coalesced t,
          Telemetry.rejected t,
          Telemetry.applied t,
          Telemetry.failed t,
          Telemetry.drains t,
          Telemetry.tcam_ops t,
          Telemetry.moves t ),
        ( Telemetry.retries t,
          Telemetry.retried_ops t,
          Telemetry.backoff_ms_total t,
          Telemetry.shed t,
          Telemetry.breaker_opens t,
          Telemetry.checkpoints t,
          Telemetry.breaker_state t ),
        ( Telemetry.diverted t,
          Telemetry.rebalanced t,
          Telemetry.restarts t,
          Telemetry.slow_drains t,
          Telemetry.hardware_ms_total t ) ))

let counters (r : Churn.result) =
  ( ( r.Churn.submitted,
      r.Churn.applied,
      r.Churn.failed,
      r.Churn.coalesced,
      r.Churn.flushes ),
    ( r.Churn.retries,
      r.Churn.shed,
      r.Churn.breaker_opens,
      r.Churn.diverted,
      r.Churn.rebalanced,
      r.Churn.restarts ) )

let equivalence_case (seed, shards, ops, batch, events, domains) =
  let spec =
    {
      Churn.kind = Dataset.FW5;
      initial = shards * 8;
      ops;
      shards;
      capacity = 128;
      batch;
      seed;
    }
  in
  let resil =
    { Ctrl.default_resil with Ctrl.failover = true; slow_drain_ms = 2.0 }
  in
  let flushes = ((ops + batch - 1) / batch) + 1 in
  let chaos = Churn.chaos_plan ~seed ~shards ~flushes ~events in
  let d1 = Journal.fresh_dir ~prefix:"fr-test-eqv-seq" in
  let dn = Journal.fresh_dir ~prefix:"fr-test-eqv-par" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf d1;
      rm_rf dn)
    (fun () ->
      let seq = Churn.run ~resil ~chaos ~journal:d1 ~domains:1 spec in
      let par = Churn.run ~resil ~chaos ~journal:dn ~domains spec in
      counters seq = counters par
      && service_image seq.Churn.service = service_image par.Churn.service
      && telemetry_image seq.Churn.service = telemetry_image par.Churn.service
      && dir_image d1 = dir_image dn)

let prop_parallel_equiv =
  QCheck.Test.make ~count:8 ~name:"flush ~domains:n == flush ~domains:1"
    QCheck.(
      make
        ~print:(fun (s, sh, ops, b, ev, d) ->
          Printf.sprintf "seed=%d shards=%d ops=%d batch=%d events=%d domains=%d"
            s sh ops b ev d)
        Gen.(
          tup6 (int_bound 10_000)
            (int_range 2 4) (int_range 30 120) (int_range 4 24)
            (int_range 0 5) (int_range 2 4)))
    equivalence_case

(* ------------------------------------------------------------------ *)
(* Adaptive slow-call threshold *)

let mk_rule ?(action = Rule.Forward 1) ?(priority = 24) id =
  Rule.make ~id
    ~field:
      (Header.pack
         {
           Header.wildcard with
           Header.dst_ip =
             Ternary.prefix_of_int64 ~width:32 ~plen:24
               (Int64.of_int (0x0A000000 + (id * 256)));
         })
    ~action ~priority

let drain_some svc ~base ~rounds =
  for k = 1 to rounds do
    Ctrl.submit svc (Agent.Add (mk_rule (base + k)));
    ignore (Ctrl.flush svc)
  done

let test_adaptive_threshold () =
  (* slow_factor on, no static bound: the threshold must stay disabled
     until 8 per-op samples exist, then track p99 * factor. *)
  let resil = { Ctrl.default_resil with Ctrl.slow_factor = 3.0 } in
  let svc = Ctrl.of_rules ~resil ~shards:1 ~capacity:256 [||] in
  let tele = Shard.telemetry (Ctrl.shard svc 0) in
  drain_some svc ~base:1_000 ~rounds:4;
  check "below min samples: threshold still off" true
    (Telemetry.slow_threshold_ms tele = infinity);
  (* The threshold a drain is judged against comes from history *before*
     it, so the 8-sample gate clears one drain after sample 8 lands. *)
  drain_some svc ~base:2_000 ~rounds:8;
  let thr = Telemetry.slow_threshold_ms tele in
  check "enough history: threshold engaged" true (thr < infinity);
  check "threshold is positive" true (thr > 0.0);
  (* The judged bound is p99-of-history x factor; the last drain added one
     more sample, so recompute loosely against the current summary. *)
  let p99 = (Telemetry.hw_per_op_ms tele).Measure.p99 in
  check "threshold tracks p99 * factor" true
    (thr <= 3.0 *. p99 *. 1.5 && thr >= 3.0 *. p99 /. 1.5)

let test_adaptive_disabled_and_override () =
  (* factor 0.0: never engages, however long the history. *)
  let svc = Ctrl.of_rules ~shards:1 ~capacity:256 [||] in
  drain_some svc ~base:1_000 ~rounds:12;
  check "slow_factor 0.0 never engages" true
    (Telemetry.slow_threshold_ms (Shard.telemetry (Ctrl.shard svc 0))
    = infinity);
  (* A finite slow_drain_ms always wins over the adaptive bound. *)
  let resil =
    { Ctrl.default_resil with Ctrl.slow_drain_ms = 5.0; slow_factor = 3.0 }
  in
  let svc = Ctrl.of_rules ~resil ~shards:1 ~capacity:256 [||] in
  drain_some svc ~base:1_000 ~rounds:12;
  check "static bound overrides adaptive" true
    (Telemetry.slow_threshold_ms (Shard.telemetry (Ctrl.shard svc 0)) = 5.0)

let suite =
  [
    ( "exec",
      [
        Alcotest.test_case "pool: run_all joins in submission order" `Quick
          test_run_all_order;
        Alcotest.test_case "pool: workers=0 runs inline on await" `Quick
          test_workers_zero_inline;
        Alcotest.test_case "pool: bounded admission" `Quick
          test_bounded_admission;
        Alcotest.test_case "pool: a raising task leaves the pool alive" `Quick
          test_worker_exception;
        Alcotest.test_case "pool: deadline times out, later await lands" `Quick
          test_deadline_then_resolve;
        Alcotest.test_case "pool: shutdown drains, is idempotent, rejects"
          `Quick test_shutdown;
        Alcotest.test_case "pool: shared pools are memoised" `Quick
          test_shared_memoised;
        Alcotest.test_case "adaptive slow-call threshold engages at 8 samples"
          `Quick test_adaptive_threshold;
        Alcotest.test_case "adaptive: disabled at 0.0, overridden by static"
          `Quick test_adaptive_disabled_and_override;
        QCheck_alcotest.to_alcotest prop_parallel_equiv;
      ] );
  ]
