(* Fleet-level tests: topologies, the version-tagged policy encoding, the
   two-phase planner, the brute-force transient checker, rollout
   execution (incl. the parallel node fan-out), crash recovery, and the
   network conformance oracle. *)

open Fastrule

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rec rm_rf dir =
  match Sys.is_directory dir with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat dir f)) (Sys.readdir dir);
      (try Sys.rmdir dir with Sys_error _ -> ())
  | false -> ( try Sys.remove dir with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* Flat [(relative path, contents)] view of a directory tree, sorted —
   byte-level journal comparison across fleets. *)
let read_tree root =
  let acc = ref [] in
  let rec walk rel abs =
    if Sys.is_directory abs then
      Array.iter
        (fun f ->
          walk (if rel = "" then f else Filename.concat rel f)
            (Filename.concat abs f))
        (Sys.readdir abs)
    else begin
      let ic = open_in_bin abs in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      acc := (rel, body) :: !acc
    end
  in
  walk "" root;
  List.sort compare !acc

(* --- topology ---------------------------------------------------------- *)

let test_topo_shapes () =
  let line = Net_topo.make Line 4 in
  Alcotest.(check (list (pair int int)))
    "line links"
    [ (0, 1); (1, 2); (2, 3) ]
    (Net_topo.links line);
  let ring = Net_topo.make Ring 4 in
  Alcotest.(check (list (pair int int)))
    "ring links"
    [ (0, 1); (0, 3); (1, 2); (2, 3) ]
    (Net_topo.links ring);
  let tree = Net_topo.make Tree 7 in
  Alcotest.(check (list int)) "root children" [ 1; 2 ] (Net_topo.neighbors tree 0);
  Alcotest.(check (list int)) "node 1 adj" [ 0; 3; 4 ] (Net_topo.neighbors tree 1);
  check_int "tree links" 6 (List.length (Net_topo.links tree))

let test_topo_ports () =
  let line = Net_topo.make Line 3 in
  Alcotest.(check (option int)) "0->1" (Some 1) (Net_topo.port_to line ~src:0 ~dst:1);
  Alcotest.(check (option int)) "1->0" (Some 1) (Net_topo.port_to line ~src:1 ~dst:0);
  Alcotest.(check (option int)) "1->2" (Some 2) (Net_topo.port_to line ~src:1 ~dst:2);
  Alcotest.(check (option int)) "0->2 unlinked" None (Net_topo.port_to line ~src:0 ~dst:2);
  Alcotest.(check (option int))
    "next_hop inverts port_to" (Some 2)
    (Net_topo.next_hop line ~node:1 ~port:2);
  Alcotest.(check (option int))
    "host port exits" None
    (Net_topo.next_hop line ~node:1 ~port:Net_topo.host_port)

let test_simple_paths () =
  let ring = Net_topo.make Ring 4 in
  check_int "ring has two simple paths" 2
    (List.length (Net_topo.simple_paths ring ~src:0 ~dst:2));
  let line = Net_topo.make Line 5 in
  Alcotest.(check (list (list int)))
    "line path unique"
    [ [ 0; 1; 2; 3; 4 ] ]
    (Net_topo.simple_paths line ~src:0 ~dst:4);
  check_int "limit caps enumeration" 1
    (List.length (Net_topo.simple_paths ~limit:1 ring ~src:0 ~dst:2))

(* --- policy ------------------------------------------------------------ *)

let flow ?(plen = 16) ?waypoint ~id ~dst path =
  {
    Net_policy.flow_id = id;
    dst_value = Int64.of_int dst;
    plen;
    path;
    waypoint;
  }

let test_hop_rules () =
  let line = Net_topo.make Line 4 in
  let f = flow ~id:3 ~dst:(1 lsl 16) [ 0; 1; 2; 3 ] in
  let hops = Net_policy.hop_rules line f ~version:1 in
  check_int "one rule per hop" 4 (List.length hops);
  List.iter
    (fun (node, (r : Rule.t)) ->
      check_int "rule id tags flow and version" 7 r.id;
      check_int "priority is plen" 16 r.priority;
      match r.action with
      | Rule.Forward p when node = 3 ->
          check_int "egress delivers" Net_topo.host_port p
      | Rule.Forward p ->
          Alcotest.(check (option int))
            "interior forwards down the path" (Some (node + 1))
            (Net_topo.next_hop line ~node ~port:p)
      | _ -> Alcotest.fail "expected Forward")
    hops;
  (* version tag: a v1-stamped packet matches only the v1 rule *)
  let rng = Rng.create ~seed:5 in
  let pkt = Option.get (Net_policy.packet_for rng ~all:[ f ] f) in
  let r1 = snd (List.hd hops) in
  let r0 = snd (List.hd (Net_policy.hop_rules line f ~version:0)) in
  check_bool "v1 rule matches v1 stamp" true
    (Rule.matches_packet r1 (Net_policy.stamp_packet pkt ~version:1));
  check_bool "v0 rule rejects v1 stamp" false
    (Rule.matches_packet r0 (Net_policy.stamp_packet pkt ~version:1))

let test_pure_region_and_winner () =
  let parent = flow ~id:0 ~dst:(1 lsl 16) [ 0; 1 ] in
  let child =
    flow ~id:1 ~plen:24 ~dst:((1 lsl 16) lor (1 lsl 8)) [ 0; 1 ]
  in
  let all = [ parent; child ] in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 50 do
    let pkt = Option.get (Net_policy.packet_for rng ~all parent) in
    (match Net_policy.winner all pkt with
    | Some w -> check_int "parent wins its pure region" 0 w.Net_policy.flow_id
    | None -> Alcotest.fail "no winner");
    let pkt_c = Option.get (Net_policy.packet_for rng ~all child) in
    match Net_policy.winner all pkt_c with
    | Some w -> check_int "child wins its own prefix" 1 w.Net_policy.flow_id
    | None -> Alcotest.fail "no winner"
  done

let test_policy_check_rejects () =
  let line = Net_topo.make Line 4 in
  let bad_hop = [ flow ~id:0 ~dst:(1 lsl 16) [ 0; 2 ] ] in
  check_bool "unlinked hop rejected" true
    (Result.is_error (Net_policy.check line bad_hop));
  let bad_wp = [ flow ~id:0 ~dst:(1 lsl 16) ~waypoint:3 [ 0; 1 ] ] in
  check_bool "waypoint off path rejected" true
    (Result.is_error (Net_policy.check line bad_wp));
  let dup =
    [ flow ~id:0 ~dst:(1 lsl 16) [ 0; 1 ]; flow ~id:1 ~dst:(1 lsl 16) [ 2; 3 ] ]
  in
  check_bool "duplicate prefix rejected" true
    (Result.is_error (Net_policy.check line dup));
  check_bool "good policy accepted" true
    (Result.is_ok
       (Net_policy.check line [ flow ~id:0 ~dst:(1 lsl 16) [ 0; 1 ] ]))

(* --- planner ----------------------------------------------------------- *)

let scenario_plan ?(batch = 3) ~seed shape n =
  let topo = Net_topo.make shape n in
  let sc = Net_scenario.make ~seed topo in
  match Net_scenario.plan ~batch sc with
  | Ok p -> (sc, p)
  | Error e -> Alcotest.failf "plan: %s" e

let test_plan_phases () =
  let _, plan = scenario_plan ~seed:42 Ring 5 in
  let phases =
    List.map (fun (r : Net_plan.round) -> r.kind) (Net_plan.rounds plan)
  in
  let rec ordered = function
    | Net_plan.Install :: rest -> ordered rest
    | Net_plan.Flip :: rest ->
        List.for_all (fun k -> k = Net_plan.Uninstall) rest
    | Net_plan.Uninstall :: _ -> false
    | [] -> true
  in
  check_bool "install* flip uninstall* order" true (ordered phases);
  check_int "exactly one flip round" 1
    (List.length (List.filter (fun k -> k = Net_plan.Flip) phases))

let test_plan_batch_bound () =
  List.iter
    (fun batch ->
      let _, plan = scenario_plan ~batch ~seed:7 Tree 7 in
      List.iter
        (fun (r : Net_plan.round) ->
          List.iter
            (fun (_, mods) ->
              check_bool "per-switch batch bound" true
                (List.length mods <= batch))
            r.batches)
        (Net_plan.rounds plan))
    [ 1; 2; 8 ];
  (* total mods are batch-invariant *)
  let _, p1 = scenario_plan ~batch:1 ~seed:7 Tree 7 in
  let _, p8 = scenario_plan ~batch:8 ~seed:7 Tree 7 in
  check_int "mods independent of batch" (Net_plan.total_mods p8)
    (Net_plan.total_mods p1);
  check_bool "smaller batch, at least as many rounds" true
    (Net_plan.num_rounds p1 >= Net_plan.num_rounds p8)

let test_plan_stamps () =
  let sc, plan = scenario_plan ~seed:42 Ring 5 in
  let before = Net_plan.stamps_before plan in
  let after = Net_plan.stamps_after plan in
  List.iter
    (fun (f : Net_policy.flow) ->
      check_bool "every new flow stamped after" true
        (List.mem_assoc f.flow_id after))
    sc.new_policy;
  List.iter
    (fun (fid, v) ->
      match List.assoc_opt fid before with
      | None -> check_int "introduced flows start at v0" 0 v
      | Some _ -> ())
    after

(* --- brute-force checker ---------------------------------------------- *)

let test_check_plan_fixtures () =
  List.iter
    (fun (shape, n, seed) ->
      let _, plan = scenario_plan ~seed shape n in
      match Net_check.check_plan plan with
      | Ok () -> ()
      | Error vs ->
          Alcotest.failf "%s/%d seed %d: %s" (Net_topo.shape_to_string shape) n
            seed (String.concat "; " vs))
    [ (Net_topo.Line, 6, 1); (Net_topo.Ring, 5, 2); (Net_topo.Tree, 7, 3) ]

(* The checker is not a rubber stamp: claiming the post-flip stamp while
   only the old version is installed must surface violations. *)
let test_check_catches_premature_flip () =
  let sc, plan = scenario_plan ~seed:42 Ring 5 in
  let changed =
    List.filter
      (fun (fid, v) -> List.assoc_opt fid (Net_plan.stamps_before plan) <> Some v)
      (Net_plan.stamps_after plan)
  in
  check_bool "scenario changes something" true (changed <> []);
  let model =
    Net_check.Model.of_policy sc.topo
      ~version_of:(fun f ->
        List.assoc f.Net_policy.flow_id (Net_plan.stamps_before plan))
      sc.old_policy
  in
  let stamps fid =
    match List.assoc_opt fid (Net_plan.stamps_after plan) with
    | Some v -> Some v
    | None -> List.assoc_opt fid (Net_plan.stamps_before plan)
  in
  let rng = Rng.create ~seed:3 in
  let violations =
    Net_check.consistent ~rng plan ~stamps
      ~lookup:(Net_check.Model.lookup model) ~where:"premature flip"
  in
  check_bool "premature flip caught" true (violations <> [])

(* A path that detours around the configured waypoint is caught even
   when delivery still succeeds. *)
let test_check_catches_waypoint_bypass () =
  let ring = Net_topo.make Ring 4 in
  let f =
    flow ~id:0 ~dst:(1 lsl 16) ~waypoint:1 [ 0; 1; 2 ]
  in
  let plan =
    match
      Net_plan.make ring ~stamps:[ (0, 0) ] ~old_policy:[ f ] ~new_policy:[ f ]
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  (* malicious tables: 0 -> 3 -> 2, skipping the waypoint at 1 *)
  let model = Net_check.Model.create ring in
  let rule ~node ~to_ =
    let port =
      if to_ = -1 then Net_topo.host_port
      else Option.get (Net_topo.port_to ring ~src:node ~dst:to_)
    in
    Net_check.Model.apply model node
      (Agent.Add (Net_policy.rule f ~version:0 ~port))
  in
  rule ~node:0 ~to_:3;
  rule ~node:3 ~to_:2;
  rule ~node:2 ~to_:(-1);
  let rng = Rng.create ~seed:4 in
  let violations =
    Net_check.consistent ~rng plan
      ~stamps:(fun _ -> Some 0)
      ~lookup:(Net_check.Model.lookup model) ~where:"bypass"
  in
  check_bool "waypoint bypass caught" true (violations <> [])

(* --- fleet ------------------------------------------------------------- *)

let test_fleet_install_and_lookup () =
  let sc, plan = scenario_plan ~seed:11 Line 5 in
  let fleet = Net.of_policy ~domains:1 sc.topo sc.old_policy in
  (* live tables agree with the pure model before any rollout *)
  let model =
    Net_check.Model.of_policy sc.topo ~version_of:(fun _ -> 0) sc.old_policy
  in
  for node = 0 to Net_topo.nodes sc.topo - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "node %d table" node)
      (List.map (fun (r : Rule.t) -> r.id) (Net_check.Model.rules model node))
      (List.map (fun (r : Rule.t) -> r.id) (Net.rules fleet node))
  done;
  let rng = Rng.create ~seed:2 in
  let violations =
    Net_check.consistent ~rng plan ~stamps:(Net.stamp fleet)
      ~lookup:(Net.lookup fleet) ~where:"installed"
  in
  Alcotest.(check (list string)) "fresh fleet consistent" [] violations

let test_execute_reaches_new_policy () =
  let sc, plan = scenario_plan ~seed:13 Tree 7 in
  let fleet = Net.of_policy ~domains:1 sc.topo sc.old_policy in
  let report = Net.execute fleet plan in
  check_bool "completed" true report.Net.completed;
  check_int "no casualties" 0 report.Net.failed;
  check_int "rounds all committed" (Net_plan.num_rounds plan)
    report.Net.rounds_run;
  let reference =
    Net.of_policy ~domains:1 sc.topo sc.new_policy ~version_of:(fun f ->
        List.assoc f.Net_policy.flow_id (Net_plan.stamps_after plan))
  in
  Alcotest.(check (list (pair int int)))
    "stamps converged"
    (Net_plan.stamps_after plan)
    (Net.stamps fleet);
  for node = 0 to Net_topo.nodes sc.topo - 1 do
    check_bool
      (Printf.sprintf "node %d equals reference" node)
      true
      (Net.rules fleet node = Net.rules reference node)
  done

let test_domains_bit_identical_journals () =
  let sc, plan = scenario_plan ~seed:17 Ring 5 in
  let run domains =
    let dir = Journal.fresh_dir ~prefix:"fr-test-netdom" in
    let fleet = Net.of_policy ~domains ~journal:dir sc.topo sc.old_policy in
    let report = Net.execute fleet plan in
    check_bool "completed" true report.Net.completed;
    (dir, read_tree dir, List.init 5 (Net.rules fleet))
  in
  let d1, tree1, rules1 = run 1 in
  let d4, tree4, rules4 = run 4 in
  Fun.protect
    ~finally:(fun () ->
      rm_rf d1;
      rm_rf d4)
    (fun () ->
      check_bool "installed tables identical" true (rules1 = rules4);
      Alcotest.(check (list string))
        "same journal files"
        (List.map fst tree1)
        (List.map fst tree4);
      List.iter2
        (fun (name, a) (_, b) ->
          check_bool (Printf.sprintf "journal bytes: %s" name) true (a = b))
        tree1 tree4)

let crash_resume_equals_twin ~crash_mode ~stop_after ~seed shape n =
  let topo = Net_topo.make shape n in
  let sc = Net_scenario.make ~seed topo in
  let plan =
    match Net_scenario.plan ~batch:2 sc with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  let dir = Journal.fresh_dir ~prefix:"fr-test-netcrash" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let fleet = Net.of_policy ~domains:1 ~journal:dir topo sc.old_policy in
      let rep =
        Net.execute ~stop_after_rounds:stop_after ~crash_mode fleet plan
      in
      let rc =
        match Net.recover ~domains:1 ~journal:dir () with
        | Ok rc -> rc
        | Error e -> Alcotest.failf "recover: %s" e
      in
      Alcotest.(check (list string)) "no recovery warnings" [] rc.Net.warnings;
      let rep2 = Net.resume rc in
      check_bool "resume completes" true rep2.Net.completed;
      if stop_after < Net_plan.num_rounds plan then
        check_bool "crash actually happened" true (not rep.Net.completed);
      let twin = Net.of_policy ~domains:1 topo sc.old_policy in
      let twin_rep = Net.execute twin plan in
      check_bool "twin completes" true twin_rep.Net.completed;
      let f = rc.Net.fleet in
      Alcotest.(check (list (pair int int)))
        "stamps equal twin" (Net.stamps twin) (Net.stamps f);
      for node = 0 to n - 1 do
        check_bool
          (Printf.sprintf "node %d equals twin" node)
          true
          (Net.rules f node = Net.rules twin node)
      done)

let test_crash_boundary () =
  crash_resume_equals_twin ~crash_mode:Net.Boundary ~stop_after:1 ~seed:9
    Net_topo.Tree 7

let test_crash_mid_submit () =
  crash_resume_equals_twin ~crash_mode:Net.Mid_submit ~stop_after:2 ~seed:9
    Net_topo.Ring 6

let test_recover_without_rollout () =
  let topo = Net_topo.make Net_topo.Line 4 in
  let sc = Net_scenario.make ~seed:21 topo in
  let dir = Journal.fresh_dir ~prefix:"fr-test-netidle" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let fleet = Net.of_policy ~domains:1 ~journal:dir topo sc.old_policy in
      let rc =
        match Net.recover ~domains:1 ~journal:dir () with
        | Ok rc -> rc
        | Error e -> Alcotest.failf "recover: %s" e
      in
      check_bool "nothing to resume" true (rc.Net.plan = None);
      Alcotest.(check (list (pair int int)))
        "stamps restored" (Net.stamps fleet)
        (Net.stamps rc.Net.fleet);
      for node = 0 to 3 do
        check_bool "tables restored" true
          (Net.rules fleet node = Net.rules rc.Net.fleet node)
      done)

(* --- fault schedules, supervision and rollback ------------------------- *)

let test_fault_codec_roundtrip () =
  List.iter
    (fun f ->
      let s = Net_scenario.fault_to_string f in
      match Net_scenario.fault_of_string s with
      | Ok f' ->
          check_bool (Printf.sprintf "%s round-trips" s) true (f = f');
          Alcotest.(check string)
            "string form is canonical" s
            (Net_scenario.fault_to_string f')
      | Error e -> Alcotest.failf "%s does not parse back: %s" s e)
    [
      (2, Net_scenario.Crash_at { round = 3; mid_flush = true });
      (0, Net_scenario.Crash_at { round = 0; mid_flush = false });
      (0, Net_scenario.Slow_from { round = 1; slow_ms = 250.; heal_after = 3 });
      (5, Net_scenario.Slow_from { round = 0; slow_ms = 0.5; heal_after = 1 });
      (1, Net_scenario.Stuck_bank { round = 0; shard = 1; rows = [ 5; 12 ] });
      (3, Net_scenario.Stuck_bank { round = 2; shard = 0; rows = [ 0 ] });
    ];
  List.iter
    (fun s ->
      match Net_scenario.fault_of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "0:crash"; "crash@1"; "0:warp@1"; "0:slow@2"; "0:stuck@1=2:" ]

let strict_supervision =
  {
    Net.default_supervision with
    Net.deadline_ms = 50.0;
    retries = 2;
    breaker_cooldown = 1;
  }

let test_supervised_slow_node_retries () =
  let sc, plan = scenario_plan ~seed:19 Ring 5 in
  let fleet = Net.of_policy ~domains:1 sc.topo sc.old_policy in
  let faults =
    Net_scenario.schedule_of_faults
      [ (1, Net_scenario.Slow_from { round = 0; slow_ms = 200.; heal_after = 1 }) ]
  in
  let report = Net.execute ~faults ~supervision:strict_supervision fleet plan in
  check_bool "completed despite the slow node" true report.Net.completed;
  check_int "no unresolved failures" 0 report.Net.failed;
  check_bool "the timeout was retried" true (report.Net.retried > 0);
  let twin = Net.of_policy ~domains:1 sc.topo sc.old_policy in
  let _ = Net.execute twin plan in
  Alcotest.(check (list (pair int int)))
    "stamps equal twin" (Net.stamps twin) (Net.stamps fleet);
  for node = 0 to 4 do
    check_bool
      (Printf.sprintf "node %d equals twin" node)
      true
      (Net.rules fleet node = Net.rules twin node)
  done

let test_node_crash_readopted_mid_rollout () =
  let sc, plan = scenario_plan ~batch:2 ~seed:23 Tree 7 in
  let dir = Journal.fresh_dir ~prefix:"fr-test-netfault" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let fleet = Net.of_policy ~domains:1 ~journal:dir sc.topo sc.old_policy in
      let faults =
        Net_scenario.schedule_of_faults
          [ (2, Net_scenario.Crash_at { round = 1; mid_flush = true }) ]
      in
      let report =
        Net.execute ~faults ~supervision:strict_supervision fleet plan
      in
      check_bool "completed despite the node crash" true report.Net.completed;
      check_int "no unresolved failures" 0 report.Net.failed;
      check_bool "the node was re-adopted" true (report.Net.recovered >= 1);
      let twin = Net.of_policy ~domains:1 sc.topo sc.old_policy in
      let _ = Net.execute twin plan in
      Alcotest.(check (list (pair int int)))
        "stamps equal twin" (Net.stamps twin) (Net.stamps fleet);
      for node = 0 to 6 do
        check_bool
          (Printf.sprintf "node %d equals twin" node)
          true
          (Net.rules fleet node = Net.rules twin node)
      done)

let test_abort_rolls_back_to_pre_rollout () =
  let sc, plan = scenario_plan ~batch:2 ~seed:7 Ring 5 in
  check_bool "fixture has rounds to abort between"
    true
    (Net_plan.num_rounds plan >= 3);
  let dir = Journal.fresh_dir ~prefix:"fr-test-netabort" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let fleet = Net.of_policy ~domains:1 ~journal:dir sc.topo sc.old_policy in
      let report = Net.execute ~abort_after_rounds:1 fleet plan in
      (match report.Net.outcome with
      | Net.Aborted { at_round; rolled_back } ->
          check_int "aborted at the requested boundary" 1 at_round;
          check_bool "compensating rounds ran" true (rolled_back > 0)
      | _ -> Alcotest.fail "expected an Aborted outcome");
      check_bool "not reported completed" true (not report.Net.completed);
      (* the fleet must be byte-identical to one that never started *)
      let twin = Net.of_policy ~domains:1 sc.topo sc.old_policy in
      Alcotest.(check (list (pair int int)))
        "stamps back to pre-rollout"
        (Net_plan.stamps_before plan)
        (Net.stamps fleet);
      for node = 0 to 4 do
        check_bool
          (Printf.sprintf "node %d equals never-started twin" node)
          true
          (Net.rules fleet node = Net.rules twin node)
      done;
      (* the journal agrees: completed rollback, boundary = pre-rollout *)
      check_bool "fleet journal detected" true (Net.is_fleet_journal dir);
      match Net.rollout_stat ~journal:dir () with
      | Error e -> Alcotest.failf "rollout_stat: %s" e
      | Ok st ->
          Alcotest.(check string) "state" "rolled-back" st.Net.rs_state;
          check_int "forward rounds committed before the abort" 1
            st.Net.rs_committed;
          check_bool "all compensating rounds committed" true
            (st.Net.rs_rb_committed = st.Net.rs_rb_begun
            && st.Net.rs_rb_committed > 0))

let test_crash_during_rollback_recovers () =
  let sc, plan = scenario_plan ~batch:2 ~seed:7 Ring 5 in
  let dir = Journal.fresh_dir ~prefix:"fr-test-netrbcrash" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let fleet = Net.of_policy ~domains:1 ~journal:dir sc.topo sc.old_policy in
      let report =
        Net.execute ~abort_after_rounds:2 ~stop_in_rollback:1 fleet plan
      in
      check_bool "controller died mid-rollback" true
        (report.Net.outcome = Net.Crashed);
      (* recover sees the in-flight compensating plan and finishes it *)
      let rc =
        match Net.recover ~domains:1 ~journal:dir () with
        | Ok rc -> rc
        | Error e -> Alcotest.failf "recover: %s" e
      in
      check_bool "recovery is a rollback" true rc.Net.aborting;
      check_bool "inverse plan re-derived" true (rc.Net.plan <> None);
      check_int "one compensating round already committed" 1 rc.Net.next_round;
      let rep2 = Net.resume rc in
      check_bool "rollback resumes to completion" true rep2.Net.completed;
      let twin = Net.of_policy ~domains:1 sc.topo sc.old_policy in
      let f = rc.Net.fleet in
      Alcotest.(check (list (pair int int)))
        "stamps back to pre-rollout"
        (Net_plan.stamps_before plan)
        (Net.stamps f);
      for node = 0 to 4 do
        check_bool
          (Printf.sprintf "node %d equals never-started twin" node)
          true
          (Net.rules f node = Net.rules twin node)
      done;
      (* a second recover finds nothing in flight *)
      match Net.recover ~domains:1 ~journal:dir () with
      | Error e -> Alcotest.failf "second recover: %s" e
      | Ok rc2 ->
          check_bool "nothing left to resume" true (rc2.Net.plan = None);
          Alcotest.(check (list (pair int int)))
            "recovered stamps are pre-rollout"
            (Net_plan.stamps_before plan)
            (Net.stamps rc2.Net.fleet))

(* --- conformance oracle ------------------------------------------------ *)

let test_run_net_fixtures () =
  List.iter
    (fun (shape, n, seed) ->
      let topo = Net_topo.make shape n in
      let sc = Net_scenario.make ~seed topo in
      let r = Oracle.run_net ~domains:1 sc in
      if not (Oracle.net_clean r) then
        Alcotest.failf "%s seed %d: %s"
          (Net_topo.shape_to_string shape)
          seed
          (String.concat "; "
             (List.map
                (fun (d : Oracle.divergence) -> d.detail)
                r.Oracle.net_divergences));
      check_int "five schedulers" 5 (List.length r.Oracle.net_columns);
      List.iter
        (fun (c : Oracle.net_column) ->
          check_bool "probe points cover rounds" true
            (c.net_probes > r.Oracle.net_rounds_planned))
        r.Oracle.net_columns)
    [ (Net_topo.Line, 6, 1); (Net_topo.Ring, 5, 2); (Net_topo.Tree, 7, 3) ]

let test_run_net_chaos_small () =
  let r = Oracle.run_net_chaos ~cases:10 ~domains:1 ~seed:42 () in
  if not (Oracle.chaos_clean r) then
    Alcotest.failf "chaos divergences: %s"
      (String.concat "; "
         (List.map
            (fun (d : Oracle.divergence) -> d.detail)
            r.Oracle.chaos_divergences));
  check_int "every case ran" 10 (List.length r.Oracle.chaos_cases);
  check_bool "cases probe the rollout" true
    (List.for_all
       (fun (c : Oracle.chaos_case) -> c.case_probes > 0)
       r.Oracle.chaos_cases)

let test_chaos_fingerprint_domains_invariant () =
  let r1 = Oracle.run_net_chaos ~cases:8 ~domains:1 ~seed:42 () in
  let r2 = Oracle.run_net_chaos ~cases:8 ~domains:2 ~seed:42 () in
  check_bool "domains 1 clean" true (Oracle.chaos_clean r1);
  check_bool "domains 2 clean" true (Oracle.chaos_clean r2);
  Alcotest.(check string)
    "verdict fingerprint is domain-count-invariant"
    (Oracle.chaos_fingerprint r1)
    (Oracle.chaos_fingerprint r2)

(* --- bench row round-trip ---------------------------------------------- *)

(* One BENCH_net.json row, built exactly as [bench net] builds it.  The
   row records its own seed and effective domain count, so the row
   alone re-runs the cell; everything but the measured makespan must
   serialise byte-for-byte identically. *)
let bench_net_row ~shape ~nodes ~batch ~seed ~domains =
  let topo = Net_topo.make shape nodes in
  let flows = nodes in
  let sc =
    Net_scenario.make ~flows ~reroute:(flows / 3) ~withdraw:1 ~introduce:1
      ~waypoints:2 ~seed topo
  in
  let plan =
    match Net_scenario.plan ~batch sc with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  let fleet =
    Net.of_policy ~capacity:(4 * flows) ~domains topo sc.old_policy
  in
  let report = Net.execute fleet plan in
  check_bool "bench cell completes" true report.Net.completed;
  let open Telemetry.Json in
  Obj
    [
      ("shape", Str (Net_topo.shape_name topo));
      ("nodes", Int nodes);
      ("flows", Int flows);
      ("batch", Int batch);
      ("seed", Int seed);
      ("domains", Int (Net.domains fleet));
      ("rounds", Int (Net_plan.num_rounds plan));
      ("total_mods", Int (Net_plan.total_mods plan));
      ("applied", Int report.Net.applied);
      ("makespan_ms", Float report.Net.wall_ms);
      ( "round_touched",
        List
          (Stdlib.List.map
             (fun (s : Net.round_stat) -> Int s.Net.r_switches)
             report.Net.per_round) );
      ( "round_mods",
        List
          (Stdlib.List.map
             (fun (s : Net.round_stat) -> Int s.Net.r_mods)
             report.Net.per_round) );
    ]

let row_field row key =
  match row with
  | Telemetry.Json.Obj fields -> (
      match List.assoc_opt key fields with
      | Some (Telemetry.Json.Int i) -> i
      | _ -> Alcotest.failf "row has no int field %S" key)
  | _ -> Alcotest.failf "row is not an object"

let strip_wall row =
  match row with
  | Telemetry.Json.Obj fields ->
      Telemetry.Json.Obj
        (List.filter (fun (k, _) -> k <> "makespan_ms") fields)
  | v -> v

let test_bench_net_row_roundtrip () =
  let row = bench_net_row ~shape:Net_topo.Ring ~nodes:5 ~batch:4 ~seed:29 ~domains:2 in
  check_int "row records the effective domains" 2 (row_field row "domains");
  (* re-run the cell from nothing but the row's own recorded fields *)
  let again =
    bench_net_row ~shape:Net_topo.Ring ~nodes:(row_field row "nodes")
      ~batch:(row_field row "batch") ~seed:(row_field row "seed")
      ~domains:(row_field row "domains")
  in
  Alcotest.(check string)
    "recorded seed+domains reproduce the row byte-for-byte"
    (Telemetry.Json.to_string (strip_wall row))
    (Telemetry.Json.to_string (strip_wall again))

(* --- properties -------------------------------------------------------- *)

let arb_scenario =
  let gen =
    QCheck.Gen.(
      let* shape = oneofl [ Net_topo.Line; Net_topo.Ring; Net_topo.Tree ] in
      let* nodes = int_range 3 8 in
      let* seed = int_range 0 100_000 in
      let* flows = int_range 3 9 in
      let* reroute = int_range 0 flows in
      let* withdraw = int_range 0 2 in
      let* introduce = int_range 0 2 in
      let* waypoints = int_range 0 3 in
      let* batch = int_range 1 5 in
      return (shape, nodes, seed, flows, reroute, withdraw, introduce, waypoints, batch))
  in
  QCheck.make
    ~print:(fun (shape, nodes, seed, flows, reroute, withdraw, introduce, wps, batch) ->
      Printf.sprintf
        "%s/%d seed=%d flows=%d reroute=%d withdraw=%d introduce=%d wps=%d \
         batch=%d"
        (Net_topo.shape_to_string shape)
        nodes seed flows reroute withdraw introduce wps batch)
    gen

let build_scenario (shape, nodes, seed, flows, reroute, withdraw, introduce, waypoints, _) =
  let topo = Net_topo.make shape nodes in
  Net_scenario.make ~flows ~reroute ~withdraw ~introduce ~waypoints ~seed topo

(* The headline qcheck property: any random small topology and policy
   diff plans into a rollout whose every reachable instant the
   brute-force enumerator certifies consistent. *)
let prop_random_topology_consistent =
  QCheck.Test.make ~name:"planner output consistent on random topologies"
    ~count:120 arb_scenario (fun params ->
      let (_, _, seed, _, _, _, _, _, batch) = params in
      let sc = build_scenario params in
      match Net_scenario.plan ~batch sc with
      | Error e -> QCheck.Test.fail_reportf "does not plan: %s" e
      | Ok plan -> (
          match Net_check.check_plan ~seed plan with
          | Ok () -> true
          | Error vs ->
              QCheck.Test.fail_reportf "inconsistent instant: %s"
                (String.concat "; " vs)))

(* Fleet-level crash twin: crash at a random round boundary (or inside
   the next round's submit), recover from the journals alone, re-drive
   the rest, and land exactly on a never-crashed twin. *)
let prop_crash_recover_twin =
  QCheck.Test.make ~name:"crashed rollout recovers to the twin" ~count:12
    arb_scenario (fun params ->
      let (_, _, _, _, _, _, _, _, batch) = params in
      let sc = build_scenario params in
      match Net_scenario.plan ~batch sc with
      | Error e -> QCheck.Test.fail_reportf "does not plan: %s" e
      | Ok plan ->
          let rounds = Net_plan.num_rounds plan in
          QCheck.assume (rounds > 0);
          let (_, _, seed, _, _, _, _, _, _) = params in
          let rng = Rng.create ~seed in
          let stop_after = Rng.int_in rng 0 (rounds - 1) in
          let crash_mode =
            if Rng.bool rng then Net.Boundary else Net.Mid_submit
          in
          let dir = Journal.fresh_dir ~prefix:"fr-prop-netcrash" in
          Fun.protect
            ~finally:(fun () -> rm_rf dir)
            (fun () ->
              let fleet =
                Net.of_policy ~domains:1 ~journal:dir sc.topo sc.old_policy
              in
              let _ =
                Net.execute ~stop_after_rounds:stop_after ~crash_mode fleet
                  plan
              in
              match Net.recover ~domains:1 ~journal:dir () with
              | Error e -> QCheck.Test.fail_reportf "recover: %s" e
              | Ok rc ->
                  if rc.Net.warnings <> [] then
                    QCheck.Test.fail_reportf "warnings: %s"
                      (String.concat "; " rc.Net.warnings);
                  let rep = Net.resume rc in
                  if not rep.Net.completed then
                    QCheck.Test.fail_reportf "resume did not complete";
                  let twin =
                    Net.of_policy ~domains:1 sc.topo sc.old_policy
                  in
                  let _ = Net.execute twin plan in
                  let f = rc.Net.fleet in
                  if Net.stamps f <> Net.stamps twin then
                    QCheck.Test.fail_reportf "stamps differ from twin";
                  let nodes = Net_topo.nodes sc.topo in
                  let rec nodes_equal i =
                    i >= nodes
                    || (Net.rules f i = Net.rules twin i && nodes_equal (i + 1))
                  in
                  if not (nodes_equal 0) then
                    QCheck.Test.fail_reportf "tables differ from twin";
                  true))

(* Compensating-rollback algebra at the pure-model level: execute any
   fully-committed prefix of a plan, then its inverse, and the tables
   and stamps land exactly back on the pre-rollout state.  Model.apply
   raises on duplicate installs / missing removes, so the equality is
   strict — the inverse must be exact, not merely idempotent. *)
let prop_inverse_plan_restores_model =
  QCheck.Test.make ~name:"prefix + inverse plan = identity (pure model)"
    ~count:80 arb_scenario (fun params ->
      let (_, _, seed, _, _, _, _, _, batch) = params in
      let sc = build_scenario params in
      match Net_scenario.plan ~batch sc with
      | Error e -> QCheck.Test.fail_reportf "does not plan: %s" e
      | Ok plan ->
          let rounds = Net_plan.rounds plan in
          let n = List.length rounds in
          QCheck.assume (n > 0);
          let rng = Rng.create ~seed in
          let upto = Rng.int_in rng 0 n in
          let stamps0 = Net_plan.stamps_before plan in
          let version_of (f : Net_policy.flow) =
            match List.assoc_opt f.Net_policy.flow_id stamps0 with
            | Some v -> v
            | None -> 0
          in
          let model =
            Net_check.Model.of_policy sc.topo ~version_of sc.old_policy
          in
          let stamps = Hashtbl.create 16 in
          List.iter (fun (f, v) -> Hashtbl.replace stamps f (Some v)) stamps0;
          let apply_round (r : Net_plan.round) =
            List.iter
              (fun (node, mods) ->
                List.iter (Net_check.Model.apply model node) mods)
              r.Net_plan.batches;
            List.iter
              (fun (f, v) -> Hashtbl.replace stamps f v)
              r.Net_plan.stamp_changes
          in
          List.iter
            (fun (r : Net_plan.round) ->
              if r.Net_plan.index < upto then apply_round r)
            rounds;
          List.iter apply_round
            (Net_plan.rounds (Net_plan.inverse ~upto plan));
          let reference =
            Net_check.Model.of_policy sc.topo ~version_of sc.old_policy
          in
          let nodes = Net_topo.nodes sc.topo in
          let rec tables_equal i =
            i >= nodes
            || (Net_check.Model.rules model i
                = Net_check.Model.rules reference i
               && tables_equal (i + 1))
          in
          if not (tables_equal 0) then
            QCheck.Test.fail_reportf "tables differ after rollback (upto=%d)"
              upto;
          let final =
            Hashtbl.fold
              (fun f v acc ->
                match v with Some v -> (f, v) :: acc | None -> acc)
              stamps []
            |> List.sort compare
          in
          if final <> stamps0 then
            QCheck.Test.fail_reportf "stamps differ after rollback (upto=%d)"
              upto;
          true)

let to_alcotest tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "net-topo",
      [
        Alcotest.test_case "shapes" `Quick test_topo_shapes;
        Alcotest.test_case "ports" `Quick test_topo_ports;
        Alcotest.test_case "simple paths" `Quick test_simple_paths;
      ] );
    ( "net-policy",
      [
        Alcotest.test_case "hop rules" `Quick test_hop_rules;
        Alcotest.test_case "pure region and winner" `Quick
          test_pure_region_and_winner;
        Alcotest.test_case "check rejects" `Quick test_policy_check_rejects;
      ] );
    ( "net-plan",
      [
        Alcotest.test_case "phase order" `Quick test_plan_phases;
        Alcotest.test_case "batch bound" `Quick test_plan_batch_bound;
        Alcotest.test_case "stamps" `Quick test_plan_stamps;
      ] );
    ( "net-check",
      [
        Alcotest.test_case "fixtures consistent" `Quick
          test_check_plan_fixtures;
        Alcotest.test_case "premature flip caught" `Quick
          test_check_catches_premature_flip;
        Alcotest.test_case "waypoint bypass caught" `Quick
          test_check_catches_waypoint_bypass;
      ] );
    ( "net-fleet",
      [
        Alcotest.test_case "install and lookup" `Quick
          test_fleet_install_and_lookup;
        Alcotest.test_case "execute reaches new policy" `Quick
          test_execute_reaches_new_policy;
        Alcotest.test_case "domains bit-identical journals" `Quick
          test_domains_bit_identical_journals;
        Alcotest.test_case "crash at boundary, resume = twin" `Quick
          test_crash_boundary;
        Alcotest.test_case "crash mid-submit, resume = twin" `Quick
          test_crash_mid_submit;
        Alcotest.test_case "recover without rollout" `Quick
          test_recover_without_rollout;
      ] );
    ( "net-supervision",
      [
        Alcotest.test_case "fault codec round-trips" `Quick
          test_fault_codec_roundtrip;
        Alcotest.test_case "slow node retried to completion" `Quick
          test_supervised_slow_node_retries;
        Alcotest.test_case "crashed node re-adopted mid-rollout" `Quick
          test_node_crash_readopted_mid_rollout;
        Alcotest.test_case "abort rolls back to pre-rollout" `Quick
          test_abort_rolls_back_to_pre_rollout;
        Alcotest.test_case "crash during rollback recovers" `Quick
          test_crash_during_rollback_recovers;
      ] );
    ( "net-oracle",
      [
        Alcotest.test_case "line/ring/tree clean" `Quick test_run_net_fixtures;
        Alcotest.test_case "chaos: 10 seeded schedules clean" `Quick
          test_run_net_chaos_small;
        Alcotest.test_case "chaos: fingerprint domains-invariant" `Quick
          test_chaos_fingerprint_domains_invariant;
      ] );
    ( "net-bench",
      [
        Alcotest.test_case "BENCH_net row round-trips" `Quick
          test_bench_net_row_roundtrip;
      ] );
    ( "net-props",
      to_alcotest
        [
          prop_random_topology_consistent;
          prop_crash_recover_twin;
          prop_inverse_plan_restores_model;
        ] );
  ]
