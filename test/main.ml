(* Test entry point: every suite registers its alcotest cases here.
   Property-based suites (qcheck) are adapted via QCheck_alcotest. *)

let () =
  Alcotest.run "fastrule"
    (Test_prng.suite @ Test_ternary.suite @ Test_header.suite @ Test_rule.suite
   @ Test_range.suite
   @ Test_graph.suite @ Test_topo.suite @ Test_build.suite @ Test_stats.suite
   @ Test_levels.suite @ Test_overlap_index.suite @ Test_bitree.suite @ Test_tcam.suite @ Test_layout.suite
   @ Test_latency.suite @ Test_hw_emu.suite @ Test_defrag.suite @ Test_algo.suite @ Test_dir.suite @ Test_metric.suite
   @ Test_store.suite @ Test_check.suite @ Test_naive.suite @ Test_ruletris.suite
   @ Test_fastrule.suite @ Test_separated.suite @ Test_workload.suite
   @ Test_updates.suite @ Test_rules_io.suite @ Test_measure.suite
   @ Test_experiment.suite @ Test_firmware.suite @ Test_agent.suite
   @ Test_queue_sim.suite @ Test_paper_examples.suite @ Test_ctrl.suite
   @ Test_resil.suite @ Test_failover.suite @ Test_exec.suite
   @ Test_conform.suite @ Test_deadmap.suite @ Test_degraded.suite
   @ Test_zipf.suite @ Test_cache.suite @ Test_net.suite
   @ Test_image.suite @ Test_plane.suite
   @ Test_props.suite)
