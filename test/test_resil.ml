(* Tests for the Fr_resil supervision layer and its wiring through the
   control plane: journal record round-trips and torn-tail tolerance,
   backoff and breaker unit behaviour, supervisor retry and quarantine
   integration, and the headline crash-recovery property — a recovered
   service always equals the committed prefix of its journal. *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let rm_rf dir =
  try
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    Sys.rmdir dir
  with Sys_error _ -> ()

let mk_rule ?(action = Rule.Forward 1) ?(priority = 24) id =
  Rule.make ~id
    ~field:
      (Header.pack
         {
           Header.wildcard with
           Header.dst_ip =
             Ternary.prefix_of_int64 ~width:32 ~plen:24
               (Int64.of_int (0x0A000000 + (id * 256)));
         })
    ~action ~priority

(* --- journal ----------------------------------------------------------- *)

let test_journal_entry_codec () =
  let entries =
    [
      Journal.Mod { seq = 1; fm = Agent.Add (mk_rule 7 ~action:Rule.Drop) };
      Journal.Mod { seq = 2; fm = Agent.Remove { id = 7 } };
      Journal.Mod
        { seq = 3; fm = Agent.Set_action { id = 9; action = Rule.Controller } };
      Journal.Mod
        { seq = 4; fm = Agent.Set_action { id = 9; action = Rule.Forward 5 } };
      Journal.Begin { drain = 2; upto = 4 };
      Journal.Commit { drain = 2; upto = 4; applied = 3; failed = 1 };
      Journal.Checkpoint { upto = 4; file = "shard-0-ckpt-4.rules" };
    ]
  in
  List.iter
    (fun e ->
      let s = Journal.entry_to_string e in
      match Journal.entry_of_string s with
      | Ok e' -> check_str "entry round-trips" s (Journal.entry_to_string e')
      | Error msg -> Alcotest.failf "cannot reparse %S: %s" s msg)
    entries;
  check "garbage rejected" true
    (Result.is_error (Journal.entry_of_string "x 1 2 3"));
  check "truncated commit rejected" true
    (Result.is_error (Journal.entry_of_string "c 2 4 3"))

let test_journal_write_read () =
  let dir = Journal.fresh_dir ~prefix:"fr-test-journal" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let j = Journal.create ~dir ~shard:0 in
      let s1 = Journal.log_mod j (Agent.Add (mk_rule 1)) in
      let s2 = Journal.log_mod j (Agent.Add (mk_rule 2)) in
      let d1 = Journal.log_begin j in
      Journal.log_commit j ~drain:d1 ~applied:2 ~failed:0;
      let s3 = Journal.log_mod j (Agent.Remove { id = 1 }) in
      let d2 = Journal.log_begin j in
      Journal.close j;
      (match Journal.read_recovery ~dir ~shard:0 with
      | Error e -> Alcotest.failf "read_recovery: %s" e
      | Ok r ->
          check "no checkpoint yet" true (r.Journal.checkpoint = None);
          (match r.Journal.committed with
          | [ c ] ->
              check_int "committed drain" d1 c.Journal.drain;
              check_int "committed upto" s2 c.Journal.upto;
              check_int "committed applied" 2 c.Journal.applied
          | l -> Alcotest.failf "expected 1 committed drain, got %d" (List.length l));
          check "all mods present" true
            (List.map fst r.Journal.mods = [ s1; s2; s3 ]);
          check "mid-drain begin detected" true r.Journal.interrupted;
          check_int "next_seq" (s3 + 1) r.Journal.next_seq;
          check_int "next_drain" (d2 + 1) r.Journal.next_drain);
      (* A torn tail — the partial line a crash mid-append leaves — is
         dropped, not reported. *)
      let path = Journal.dir_file ~dir ~shard:0 in
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      output_string oc "m 99 a 123";
      close_out oc;
      (match Journal.read_recovery ~dir ~shard:0 with
      | Error e -> Alcotest.failf "torn tail must be tolerated: %s" e
      | Ok r ->
          check "torn tail dropped" true
            (List.map fst r.Journal.mods = [ s1; s2; s3 ]));
      (* Corruption *before* the tail is real and must be reported. *)
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      output_string oc "\nc 9 9 9 9\n";
      close_out oc;
      check "mid-file garbage is an error" true
        (Result.is_error (Journal.read_recovery ~dir ~shard:0)))

let test_journal_checkpoint_compacts () =
  let dir = Journal.fresh_dir ~prefix:"fr-test-journal" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let j = Journal.create ~dir ~shard:1 in
      let _ = Journal.log_mod j (Agent.Add (mk_rule 1)) in
      let _ = Journal.log_mod j (Agent.Add (mk_rule 2)) in
      let d = Journal.log_begin j in
      Journal.log_commit j ~drain:d ~applied:2 ~failed:0;
      Journal.checkpoint j ~rules:[| mk_rule 1; mk_rule 2 |];
      let s4 = Journal.log_mod j (Agent.Remove { id = 2 }) in
      Journal.sync j;
      Journal.close j;
      match Journal.read_recovery ~dir ~shard:1 with
      | Error e -> Alcotest.failf "read_recovery: %s" e
      | Ok r ->
          (match r.Journal.checkpoint with
          | Some (upto, file) ->
              check_int "checkpoint covers the commit" 2 upto;
              (match Rules_io.load file with
              | Ok rules -> check_int "checkpoint table" 2 (Array.length rules)
              | Error e -> Alcotest.failf "checkpoint table: %s" e)
          | None -> Alcotest.fail "expected a checkpoint");
          check "compaction cleared committed drains" true
            (r.Journal.committed = []);
          check "only the suffix mod survives" true
            (List.map fst r.Journal.mods = [ s4 ]))

let test_meta_roundtrip () =
  let dir = Journal.fresh_dir ~prefix:"fr-test-meta" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let m =
        {
          Journal.shards = 4;
          capacity = 2_000;
          policy = "prefix:8";
          kind = "fr-sd";
          refresh_every = 16;
          verify = true;
        }
      in
      Journal.write_meta ~dir m;
      match Journal.read_meta ~dir with
      | Ok m' -> check "meta round-trips" true (m = m')
      | Error e -> Alcotest.failf "read_meta: %s" e)

(* --- backoff ----------------------------------------------------------- *)

let test_backoff () =
  let b = Backoff.create ~base_ms:1.0 ~factor:2.0 ~max_ms:8.0 ~jitter:0.25 ~seed:3 () in
  for attempt = 1 to 6 do
    let ideal = min 8.0 (2.0 ** float_of_int (attempt - 1)) in
    let d = Backoff.delay_ms b ~attempt in
    check "within jitter band" true
      (d >= ideal *. 0.75 -. 1e-9 && d <= ideal *. 1.25 +. 1e-9)
  done;
  (* No jitter: exact exponential, capped. *)
  let exact = Backoff.create ~base_ms:2.0 ~jitter:0.0 ~max_ms:16.0 ~seed:0 () in
  check "exact base" true (Backoff.delay_ms exact ~attempt:1 = 2.0);
  check "exact doubling" true (Backoff.delay_ms exact ~attempt:3 = 8.0);
  check "capped" true (Backoff.delay_ms exact ~attempt:10 = 16.0);
  check "bad jitter rejected" true
    (try
       ignore (Backoff.create ~jitter:1.5 ~seed:0 ());
       false
     with Invalid_argument _ -> true)

(* --- breaker ----------------------------------------------------------- *)

let test_breaker_state_machine () =
  let b = Breaker.create ~threshold:2 ~cooldown:2 () in
  check "starts closed" true (Breaker.state b = Breaker.Closed);
  Breaker.note_failure b;
  check "one failure stays closed" true (Breaker.state b = Breaker.Closed);
  Breaker.note_success b;
  Breaker.note_failure b;
  check "success resets the streak" true (Breaker.state b = Breaker.Closed);
  Breaker.note_failure b;
  check "threshold trips" true (Breaker.state b = Breaker.Open);
  check "open does not admit" false (Breaker.admits b);
  Breaker.note_skipped b;
  check "cooldown not elapsed" true (Breaker.state b = Breaker.Open);
  Breaker.note_skipped b;
  check "cooldown elapsed: half-open" true (Breaker.state b = Breaker.Half_open);
  check "half-open admits a probe" true (Breaker.admits b);
  Breaker.note_failure b;
  check "failed probe reopens" true (Breaker.state b = Breaker.Open);
  check_int "opens counted" 2 (Breaker.opens b);
  Breaker.note_skipped b;
  Breaker.note_skipped b;
  Breaker.note_success b;
  check "successful probe closes" true (Breaker.state b = Breaker.Closed)

(* --- supervisor: retry ------------------------------------------------- *)

let test_retry_recovers_transient_fault () =
  let svc = Ctrl.create ~shards:1 ~capacity:100 () in
  (* One injected failure, then a healthy plan: the first drain loses an
     op, the in-flush retry re-drives it, the flush reports no
     casualties. *)
  Ctrl.set_fault svc ~shard:0
    (Some (Fault.create ~fail_prob:1.0 ~max_failures:1 ~seed:3 ()));
  Ctrl.submit svc (Agent.Add (mk_rule 1));
  Ctrl.submit svc (Agent.Add (mk_rule 2));
  let report = Ctrl.flush svc in
  check "no residual failures" true (Ctrl.failures report = []);
  check_int "both ops applied" 2 (Ctrl.applied report);
  let tele = Shard.telemetry (Ctrl.shard svc 0) in
  check "retry happened" true (Telemetry.retries tele >= 1);
  check "backoff accounted" true (Telemetry.backoff_ms_total tele > 0.0);
  check "breaker stays closed" true (Ctrl.breaker_state svc 0 = Breaker.Closed);
  check_int "rules installed" 2 (Ctrl.rule_count svc)

(* --- supervisor: breaker quarantine ------------------------------------ *)

let test_breaker_quarantines_faulted_shard () =
  let resil =
    {
      Ctrl.default_resil with
      Ctrl.retry_budget = 0;
      breaker_threshold = 2;
      breaker_cooldown = 2;
      queue_bound = 2;
    }
  in
  let svc = Ctrl.create ~resil ~shards:2 ~capacity:300 () in
  let part = Ctrl.partition svc in
  (* Enough distinct rules routed to each shard to feed the whole
     scenario. *)
  let routed s =
    let acc = ref [] in
    let id = ref 1 in
    while List.length !acc < 12 do
      let r = mk_rule !id in
      if Partition.route_rule part r = s then acc := r :: !acc;
      incr id
    done;
    Array.of_list (List.rev !acc)
  in
  let to0 = routed 0 and to1 = routed 1 in
  let i0 = ref 0 and i1 = ref 0 in
  let feed s =
    if s = 0 then begin
      Ctrl.submit svc (Agent.Add to0.(!i0));
      incr i0
    end
    else begin
      Ctrl.submit svc (Agent.Add to1.(!i1));
      incr i1
    end
  in
  Ctrl.set_fault svc ~shard:0 (Some (Fault.create ~fail_prob:1.0 ~seed:5 ()));
  (* Two damaged drains trip the breaker; the sibling applies both of
     its ops regardless. *)
  feed 0; feed 1;
  ignore (Ctrl.flush svc);
  check "still closed at 1 failure" true (Ctrl.breaker_state svc 0 = Breaker.Closed);
  feed 0; feed 1;
  let r2 = Ctrl.flush svc in
  check "tripped at threshold" true (Ctrl.breaker_state svc 0 = Breaker.Open);
  check "trip is visible in the flush report" true (r2.Ctrl.quarantined = []);
  check_int "sibling unharmed" 2 (Ctrl.rule_count svc);
  (* Quarantined: submits queue up to the bound, then shed. *)
  let q1 = Ctrl.try_submit svc (Agent.Add to0.(!i0)) in
  incr i0;
  let q2 = Ctrl.try_submit svc (Agent.Add to0.(!i0)) in
  incr i0;
  let q3 = Ctrl.try_submit svc (Agent.Add to0.(!i0)) in
  incr i0;
  check "bounded queue accepts" true (q1 = Ctrl.Accepted && q2 = Ctrl.Accepted);
  (match q3 with
  | Ctrl.Overloaded _ -> ()
  | Ctrl.Accepted -> Alcotest.fail "overfull quarantine queue must shed");
  (* The next flushes skip shard 0 (cooldown), keep serving shard 1, and
     report the shed op as a casualty. *)
  feed 1;
  let r3 = Ctrl.flush svc in
  check "skipped while open" true (r3.Ctrl.quarantined = [ 0 ]);
  check_int "shed reported" 1 (List.length (Ctrl.failures r3));
  feed 1;
  let r4 = Ctrl.flush svc in
  check "still skipped" true (r4.Ctrl.quarantined = [ 0 ]);
  check "cooldown elapsed" true (Ctrl.breaker_state svc 0 = Breaker.Half_open);
  check_int "siblings kept applying" 4
    (Telemetry.applied (Shard.telemetry (Ctrl.shard svc 1)));
  (* Heal the shard: the half-open probe drains the backlog and closes
     the breaker. *)
  Ctrl.set_fault svc ~shard:0 None;
  let r5 = Ctrl.flush svc in
  check "probe admitted" true (r5.Ctrl.quarantined = []);
  check "probe closed the breaker" true
    (Ctrl.breaker_state svc 0 = Breaker.Closed);
  check "backlog applied" true
    (Agent.rule_count (Shard.agent (Ctrl.shard svc 0)) >= 2);
  let tele0 = Shard.telemetry (Ctrl.shard svc 0) in
  check_int "one trip recorded" 1 (Telemetry.breaker_opens tele0);
  check_int "one shed recorded" 1 (Telemetry.shed tele0);
  check_str "state string surfaced" "closed" (Telemetry.breaker_state tele0)

(* --- crash/recovery ---------------------------------------------------- *)

let service_image svc =
  let acc = ref [] in
  for s = 0 to Ctrl.shards svc - 1 do
    List.iter
      (fun (r : Rule.t) ->
        acc := (s, r.Rule.id, r.Rule.priority, r.Rule.action) :: !acc)
      (Agent.rules (Shard.agent (Ctrl.shard svc s)))
  done;
  List.sort compare !acc

let consistent svc =
  let ok = ref true in
  for s = 0 to Ctrl.shards svc - 1 do
    match Agent.verify_consistent (Shard.agent (Ctrl.shard svc s)) with
    | Ok () -> ()
    | Error _ -> ok := false
  done;
  !ok

(* The headline property: crash anywhere (between flushes or mid-drain),
   recover from the journal directory alone, and the installed state
   equals the committed prefix; one more flush replays the requeued
   suffix and lands on the same state as a service that never crashed. *)
let prop_crash_recovery =
  QCheck.Test.make ~count:12 ~name:"crash -> recover == committed prefix"
    QCheck.(triple (int_bound 1_000) (int_bound 80) (int_bound 100))
    (fun (seed, extra_ops, knobs) ->
      let batch = 4 + (knobs mod 12) in
      let stop = 1 + (knobs mod 3) in
      let mid_drain = knobs mod 2 = 0 in
      let spec =
        {
          Churn.kind = Dataset.ACL4;
          initial = 30;
          ops = 20 + extra_ops;
          shards = 2;
          capacity = 400;
          batch;
          seed;
        }
      in
      let dir = Journal.fresh_dir ~prefix:"fr-test-crash" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let crashed =
            Churn.run ~journal:dir ~stop_after_flushes:stop spec
          in
          let committed_image = service_image crashed.Churn.service in
          Ctrl.simulate_crash ~mid_drain crashed.Churn.service;
          match Ctrl.recover ~journal:dir () with
          | Error e -> QCheck.Test.fail_reportf "recover: %s" e
          | Ok rc ->
              let recovered = rc.Ctrl.service in
              let prefix_ok =
                service_image recovered = committed_image
                && rc.Ctrl.warnings = []
                && consistent recovered
              in
              (* Replay the suffix and compare against an uncrashed twin
                 driven over the same stream. *)
              if Ctrl.pending recovered > 0 then ignore (Ctrl.flush recovered);
              let twin = Churn.run ~stop_after_flushes:stop spec in
              if Ctrl.pending twin.Churn.service > 0 then
                ignore (Ctrl.flush twin.Churn.service);
              prefix_ok
              && service_image recovered = service_image twin.Churn.service))

(* Torn-tail robustness at the byte level: truncate the WAL anywhere
   after the baseline checkpoint and recovery must still land on the
   image of one of the flush states that actually committed. *)
let prop_truncated_journal =
  QCheck.Test.make ~count:12 ~name:"truncated journal recovers a committed image"
    QCheck.(pair (int_bound 1_000) (int_bound 10_000))
    (fun (seed, cut) ->
      let spec =
        {
          Churn.kind = Dataset.ACL4;
          initial = 20;
          ops = 60;
          shards = 1;
          capacity = 300;
          batch = 8;
          seed;
        }
      in
      let dir = Journal.fresh_dir ~prefix:"fr-test-torn" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          (* Drive the stream by hand so every post-flush image is
             recorded. *)
          let pool = Dataset.generate Dataset.ACL4 ~seed ~n:80 in
          let svc =
            Ctrl.of_rules ~journal:dir ~shards:1 ~capacity:300
              (Array.sub pool 0 20)
          in
          let images = ref [ service_image svc ] in
          for i = 20 to 79 do
            Ctrl.submit svc (Agent.Add pool.(i));
            if (i - 19) mod spec.Churn.batch = 0 then begin
              ignore (Ctrl.flush svc);
              images := service_image svc :: !images
            end
          done;
          Ctrl.simulate_crash svc;
          (* Truncate anywhere after the header + baseline checkpoint
             line (everything before that is written atomically, not
             appended). *)
          let path = Journal.dir_file ~dir ~shard:0 in
          let text =
            let ic = open_in_bin path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          in
          let nl = ref 0 and floor = ref 0 in
          String.iteri
            (fun i c ->
              if c = '\n' && !nl < 3 then begin
                incr nl;
                floor := i + 1
              end)
            text;
          let len = String.length text in
          let point = !floor + (cut mod (len - !floor + 1)) in
          let oc = open_out_bin path in
          output_string oc (String.sub text 0 point);
          close_out oc;
          match Ctrl.recover ~journal:dir () with
          | Error e -> QCheck.Test.fail_reportf "recover after truncation: %s" e
          | Ok rc ->
              consistent rc.Ctrl.service
              && List.mem (service_image rc.Ctrl.service) !images))

(* A journal directory refuses double initialisation: accidental reuse
   would silently erase history. *)
let test_journal_dir_refuses_reuse () =
  let dir = Journal.fresh_dir ~prefix:"fr-test-reuse" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let svc = Ctrl.create ~journal:dir ~shards:1 ~capacity:50 () in
      check "journaled" true (Ctrl.journaled svc);
      check "reuse refused" true
        (try
           ignore (Ctrl.create ~journal:dir ~shards:1 ~capacity:50 ());
           false
         with Invalid_argument _ -> true))

let suite =
  [
    ( "resil",
      [
        Alcotest.test_case "journal entry codec" `Quick test_journal_entry_codec;
        Alcotest.test_case "journal write/read + torn tail" `Quick
          test_journal_write_read;
        Alcotest.test_case "checkpoint compacts" `Quick
          test_journal_checkpoint_compacts;
        Alcotest.test_case "meta round-trip" `Quick test_meta_roundtrip;
        Alcotest.test_case "backoff" `Quick test_backoff;
        Alcotest.test_case "breaker state machine" `Quick
          test_breaker_state_machine;
        Alcotest.test_case "retry recovers transient fault" `Quick
          test_retry_recovers_transient_fault;
        Alcotest.test_case "breaker quarantines faulted shard" `Quick
          test_breaker_quarantines_faulted_shard;
        Alcotest.test_case "journal dir refuses reuse" `Quick
          test_journal_dir_refuses_reuse;
        QCheck_alcotest.to_alcotest prop_crash_recovery;
        QCheck_alcotest.to_alcotest prop_truncated_journal;
      ] );
  ]
