#!/bin/sh
# Pre-commit gate: build everything, run the full test suite, and check
# formatting when ocamlformat is available (the reference container does
# not ship it, so the fmt step degrades to a notice rather than a
# failure).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== dune build @conform (differential smoke run) =="
dune build @conform

echo "== journal recovery drill (crash mid-flush, recover, flush clean) =="
J=$(mktemp -d)
CLI=_build/default/bin/fastrule_cli.exe
dune build bin/fastrule_cli.exe
status=0
"$CLI" ctrl -k acl4 -s 4 -n 400 -u 2000 -b 32 \
  --journal "$J" --crash-after 5 --crash-mid-drain >/dev/null || status=$?
[ "$status" -eq 42 ] || { echo "crash drill: expected exit 42, got $status"; exit 1; }
"$CLI" ctrl --journal "$J" --recover >/dev/null
rm -rf "$J"

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not installed) =="
fi

echo "dev-check: OK"
