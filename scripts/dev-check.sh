#!/bin/sh
# Pre-commit gate: build everything, run the full test suite, and check
# formatting when ocamlformat is available (the reference container does
# not ship it, so the fmt step degrades to a notice rather than a
# failure).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== dune build @conform (differential smoke run) =="
dune build @conform

echo "== dune build @cache (cache-tier oracle smoke run) =="
dune build @cache

echo "== dune build @net (fleet transient-path oracle smoke run) =="
dune build @net

echo "== dune build @plane (lookup-under-update smoke run) =="
dune build @plane

echo "== journal recovery drill (crash mid-flush, recover, flush clean) =="
J=$(mktemp -d)
CLI=_build/default/bin/fastrule_cli.exe
dune build bin/fastrule_cli.exe
status=0
"$CLI" ctrl -k acl4 -s 4 -n 400 -u 2000 -b 32 \
  --journal "$J" --crash-after 5 --crash-mid-drain >/dev/null || status=$?
[ "$status" -eq 42 ] || { echo "crash drill: expected exit 42, got $status"; exit 1; }
"$CLI" ctrl --journal "$J" --recover >/dev/null
rm -rf "$J"

echo "== failover drill (persistent slow fault, zero shed, diverted > 0) =="
out=$("$CLI" ctrl -k acl4 -s 4 -n 400 -c 2000 -u 2000 -b 32 \
  --failover --slow-call 2 --fault 0:slow=8)
echo "$out" | grep -q 'shed 0' || { echo "failover drill: submits were shed"; exit 1; }
echo "$out" | grep -q 'failed 0  flushes' || { echo "failover drill: ops failed"; exit 1; }
echo "$out" | grep -Eq 'diverted [1-9]' || { echo "failover drill: nothing diverted — fault never engaged"; exit 1; }

echo "== chaos crash drill (random faults, crash mid-flush, stat, recover) =="
J=$(mktemp -d)
status=0
"$CLI" ctrl -k acl4 -s 4 -n 400 -u 2000 -b 32 --failover --slow-call 2 \
  --journal "$J" --chaos 6 --crash-after 8 --crash-mid-drain >/dev/null || status=$?
[ "$status" -eq 42 ] || { echo "chaos crash drill: expected exit 42, got $status"; exit 1; }
"$CLI" journal stat --journal "$J" >/dev/null
"$CLI" ctrl --journal "$J" --recover >/dev/null
rm -rf "$J"

echo "== failover conformance (every scheduler, divergences fail the gate) =="
"$CLI" conform -k acl4 -n 60 -e 150 --failover 0 --shards 3 >/dev/null

echo "== cache oracle under parallel drains (five schedulers, domains=4) =="
out=$("$CLI" cache --oracle -k fw5 -n 250 --flows 15000 --skew 1.1 \
  -a 1200 --slots 40 -s 2 -b 32 --domains 4)
echo "$out" | grep -q 'all conformant' || { echo "cache oracle: divergence under domains=4"; exit 1; }

echo "== net oracle under parallel drains (five schedulers, domains=4) =="
"$CLI" net --oracle --shape ring --nodes 6 --flows 7 --seed 13 --batch 3 \
  --domains 4 >/dev/null

echo "== fleet journal equivalence (same rollout, 1 vs 4 domains, same bytes) =="
N1=$(mktemp -d)/fleet
N4=$(mktemp -d)/fleet
"$CLI" net --shape tree --nodes 7 --seed 11 --batch 2 \
  --journal "$N1" --domains 1 >/dev/null
"$CLI" net --shape tree --nodes 7 --seed 11 --batch 2 \
  --journal "$N4" --domains 4 >/dev/null
diff -r "$N1" "$N4" || { echo "fleet rollout: journals diverged between --domains 1 and 4"; exit 1; }
rm -rf "$(dirname "$N1")" "$(dirname "$N4")"

echo "== degraded-tcam drill (10% dead rows, discovery, zero shed) =="
out=$("$CLI" ctrl -k acl4 -s 3 -n 300 -c 200 -u 1200 -b 32 \
  --failover --dead-frac 0.10 --seed 7)
echo "$out" | grep -q 'degraded:' || { echo "degraded drill: no summary line"; exit 1; }
echo "$out" | grep -Eq 'dead discovered, degraded-diverted [0-9]+, shed 0' || { echo "degraded drill: submits were shed"; exit 1; }
echo "$out" | grep -Eq '[1-9][0-9]* dead discovered' || { echo "degraded drill: stuck bank never discovered"; exit 1; }

echo "== degraded conformance (every scheduler, domains 1 and 4, strict) =="
"$CLI" conform -k acl4 -n 90 --pool 150 -c 60 -e 300 --seed 31 \
  --degraded 0.10 --strict >/dev/null
"$CLI" conform -k acl4 -n 90 --pool 150 -c 60 -e 300 --seed 31 \
  --degraded 0.10 --strict --domains 4 >/dev/null

echo "== net chaos certification (random switch faults, domains 1 = 4 fingerprint) =="
C1=$(mktemp); C4=$(mktemp)
"$CLI" net --chaos --cases 25 --seed 2026 --json "$C1" >/dev/null
FASTRULE_DOMAINS=4 "$CLI" net --chaos --cases 25 --seed 2026 --json "$C4" >/dev/null
f1=$(sed 's/.*"fingerprint":"\([^"]*\)".*/\1/' "$C1")
f4=$(sed 's/.*"fingerprint":"\([^"]*\)".*/\1/' "$C4")
[ -n "$f1" ] && [ "$f1" = "$f4" ] || { echo "net chaos: fingerprints diverged between domains 1 and 4"; exit 1; }
rm -f "$C1" "$C4"

echo "== abort drill (rollback checkpoint = pre-rollout checkpoint, same bytes) =="
A0=$(mktemp -d)/fleet
A1=$(mktemp -d)/fleet
"$CLI" net --shape ring --nodes 5 --seed 7 --batch 2 \
  --journal "$A0" --abort-at 0 >/dev/null
"$CLI" net --shape ring --nodes 5 --seed 7 --batch 2 \
  --journal "$A1" --abort-at 2 >/dev/null
"$CLI" journal stat --journal "$A1" | grep -q 'rolled-back' \
  || { echo "abort drill: journal does not record the rollback"; exit 1; }
cat "$A0"/node-*/shard-*-ckpt-*.rules | sort > "$A0.pre"
cat "$A1"/node-*/shard-*-ckpt-*.rules | sort > "$A1.post"
cmp "$A0.pre" "$A1.post" || { echo "abort drill: post-rollback checkpoint differs from pre-rollout"; exit 1; }
rm -rf "$(dirname "$A0")" "$(dirname "$A1")" "$A0.pre" "$A1.post"

echo "== lookup-under-update storm (p99 gate + snapshot oracle, domains 1 and 4) =="
FASTRULE_DOMAINS=1 "$CLI" plane -k acl4 -n 300 --seed 13 --ops 1200 \
  --flows 10000 --min-lookups 1000 --sweep --events 100 \
  --max-p99-ms 500 >/dev/null
FASTRULE_DOMAINS=4 "$CLI" plane -k acl4 -n 300 --seed 13 --ops 1200 \
  --flows 10000 --min-lookups 1000 --readers 2 --sweep --events 100 \
  --max-p99-ms 500 >/dev/null

echo "== tcam-vs-software lookup agreement (every packet cross-validated) =="
out=$("$CLI" plane -k fw5 -n 250 --seed 17 --ops 900 --flows 8000 \
  --min-lookups 800 --rebuild-every 64 --no-oracle)
echo "$out" | grep -q 'disagree 0' || { echo "plane: software backend disagreed with the TCAM emulation"; exit 1; }
echo "$out" | grep -q 'all conformant' || { echo "plane: storm leg not conformant"; exit 1; }

echo "== parallel flush equivalence (same seed, 1 vs 4 domains, same journal bytes) =="
J1=$(mktemp -d)
J4=$(mktemp -d)
"$CLI" ctrl -k fw5 -s 4 -n 300 -u 1500 -b 32 --failover --slow-call 2 \
  --chaos 4 --allow-failures --journal "$J1" --domains 1 >/dev/null
"$CLI" ctrl -k fw5 -s 4 -n 300 -u 1500 -b 32 --failover --slow-call 2 \
  --chaos 4 --allow-failures --journal "$J4" --domains 4 >/dev/null
diff -r "$J1" "$J4" || { echo "parallel flush: journals diverged between --domains 1 and 4"; exit 1; }
rm -rf "$J1" "$J4"

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not installed) =="
fi

echo "dev-check: OK"
