#!/bin/sh
# Pre-commit gate: build everything, run the full test suite, and check
# formatting when ocamlformat is available (the reference container does
# not ship it, so the fmt step degrades to a notice rather than a
# failure).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== dune build @conform (differential smoke run) =="
dune build @conform

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not installed) =="
fi

echo "dev-check: OK"
