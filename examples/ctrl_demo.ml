(* Control-plane demo: a bursty insert/delete stream across 4 shards.

   A controller application drives {!Fastrule.Ctrl} — the sharded,
   batched control-plane service — with the update pattern that motivates
   it: BGP-style churn arriving in bursts, with plenty of redundant work
   (routes that flap add/remove inside one burst, actions rewritten
   several times before anything reaches hardware).  Each burst is
   submitted, then flushed as one batch per shard; the coalescing queues
   fold the flaps away and the telemetry shows what the hardware was
   actually asked to do.

   Run with:  dune exec examples/ctrl_demo.exe *)

open Fastrule

let shards = 4
let seed = 2024

let () =
  Format.printf "=== Control-plane demo: 4 shards, bursty churn ===@.@.";
  let rng = Rng.create ~seed in
  (* A warm table: 2000 synthetic firewall rules spread over the shards. *)
  let pool = Dataset.generate Dataset.FW5 ~seed ~n:12_000 in
  let service =
    Ctrl.of_rules ~shards ~capacity:1_500 (Array.sub pool 0 2_000)
  in
  Format.printf "preloaded %d rules; per-shard occupancy:" (Ctrl.rule_count service);
  for s = 0 to shards - 1 do
    Format.printf " %d" (Agent.rule_count (Shard.agent (Ctrl.shard service s)))
  done;
  Format.printf "@.@.";

  let live = ref (Array.to_list (Array.map (fun (r : Rule.t) -> r.Rule.id)
                                   (Array.sub pool 0 2_000)))
  and n_live = ref 2_000
  and next = ref 2_000 in
  let pick () = List.nth !live (Rng.int rng !n_live) in
  let burst ~adds ~removes ~flaps ~rewrites =
    (* Fresh routes come up ... *)
    for _ = 1 to adds do
      if !next < Array.length pool then begin
        let r = pool.(!next) in
        incr next;
        Ctrl.submit service (Agent.Add r);
        live := r.Rule.id :: !live;
        incr n_live
      end
    done;
    (* ... old ones are withdrawn ... *)
    for _ = 1 to removes do
      if !n_live > 0 then begin
        let id = pick () in
        Ctrl.submit service (Agent.Remove { id });
        live := List.filter (fun x -> x <> id) !live;
        decr n_live
      end
    done;
    (* ... some flap inside the very same burst (add then remove before
       any hardware contact: the queue annihilates the pair) ... *)
    for _ = 1 to flaps do
      if !next < Array.length pool then begin
        let r = pool.(!next) in
        incr next;
        Ctrl.submit service (Agent.Add r);
        Ctrl.submit service (Agent.Remove { id = r.Rule.id })
      end
    done;
    (* ... and a next-hop change rewrites the same actions repeatedly
       (only the last write survives the queue). *)
    for _ = 1 to rewrites do
      if !n_live > 0 then begin
        let id = pick () in
        Ctrl.submit service (Agent.Set_action { id; action = Rule.Forward (Rng.int rng 8) });
        Ctrl.submit service (Agent.Set_action { id; action = Rule.Forward (Rng.int rng 8) })
      end
    done
  in
  let run_burst i ~adds ~removes ~flaps ~rewrites =
    burst ~adds ~removes ~flaps ~rewrites;
    let queued = Ctrl.pending service in
    let report = Ctrl.flush service in
    let failed = List.length (Ctrl.failures report) in
    Format.printf
      "burst %d: %4d ops submitted -> %4d queued after folding, %4d applied, \
       %d failed, flush %.1f ms@."
      i
      (adds + removes + (2 * flaps) + (2 * rewrites))
      queued (Ctrl.applied report) failed report.Ctrl.wall_ms
  in
  run_burst 1 ~adds:400 ~removes:100 ~flaps:150 ~rewrites:100;
  run_burst 2 ~adds:150 ~removes:350 ~flaps:250 ~rewrites:50;
  run_burst 3 ~adds:300 ~removes:300 ~flaps:50 ~rewrites:300;

  Format.printf "@.%d rules installed across %d shards after churn@.@."
    (Ctrl.rule_count service) shards;
  Ctrl.pp_stats Format.std_formatter service;

  (* Failure isolation: shard capacities are finite.  Aim a burst of adds
     at the rules the partitioner maps to shard 0 — more than its free
     slots — while the other shards get routine next-hop rewrites.  The
     overfull shard runs out of space and reports its own casualties;
     every sibling's batch applies untouched. *)
  Format.printf "@.-- overflow burst (deliberate): shard 0 gets more adds \
                 than it has free slots --@.";
  let part = Ctrl.partition service in
  let a0 = Shard.agent (Ctrl.shard service 0) in
  let target = Agent.capacity a0 - Agent.rule_count a0 + 150 in
  let aimed = ref 0 in
  while !aimed < target && !next < Array.length pool do
    let r = pool.(!next) in
    incr next;
    if Partition.route_rule part r = 0 then begin
      Ctrl.submit service (Agent.Add r);
      incr aimed
    end
  done;
  for _ = 1 to 200 do
    if !n_live > 0 then
      Ctrl.submit service
        (Agent.Set_action { id = pick (); action = Rule.Forward (Rng.int rng 8) })
  done;
  let report = Ctrl.flush service in
  Array.iter
    (fun (d : Shard.drain_result) ->
      Format.printf "shard %d: applied %d, failed %d@." d.Shard.shard
        d.Shard.applied
        (List.length d.Shard.failed))
    report.Ctrl.results;
  Format.printf "service still consistent: %d rules installed@."
    (Ctrl.rule_count service)
