module Rng = Fr_prng.Rng
module Rule = Fr_tern.Rule
module Header = Fr_tern.Header

(* Hörmann's rejection-inversion sampler for the Zipf distribution
   (W. Hörmann, G. Derflinger, "Rejection-inversion to generate variates
   from monotone discrete distributions", 1996; the same construction as
   Apache Commons' RejectionInversionZipfSampler).  The unnormalised mass
   h(x) = x^-skew is dominated on [k - 1/2, k + 1/2] by its own integral
   H; inverting H turns a uniform draw into a candidate, and the
   acceptance test only ever rejects candidates near bucket boundaries,
   so the acceptance rate stays >= ~70% for every skew >= 0. *)

type t = {
  n : int;
  skew : float;
  h_x1 : float;  (* H(1.5) - 1 *)
  h_n : float;  (* H(n + 0.5) *)
  s : float;  (* acceptance shortcut constant *)
}

(* log1p(x)/x and expm1(x)/x, continuous at 0 (series for tiny |x|) so
   skew = 1 and skew = 0 need no special-casing. *)
let helper1 x =
  if Float.abs x > 1e-8 then Float.log1p x /. x
  else 1.0 -. (x /. 2.0) +. (x *. x /. 3.0)

let helper2 x =
  if Float.abs x > 1e-8 then Float.expm1 x /. x
  else 1.0 +. (x /. 2.0) +. (x *. x /. 6.0)

(* H(x) = integral of x^-skew, shifted so the expressions below stay
   finite at skew = 1: H(x) = log(x) * helper2((1-skew) * log(x)). *)
let h_integral ~skew x =
  let lx = Float.log x in
  helper2 ((1.0 -. skew) *. lx) *. lx

let h ~skew x = Float.exp (-.skew *. Float.log x)

let h_integral_inv ~skew x =
  let t = x *. (1.0 -. skew) in
  (* Clamp: t < -1 can only arise from rounding at the lower boundary. *)
  let t = if t < -1.0 then -1.0 else t in
  Float.exp (helper1 t *. x)

let create ~n ~skew =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if (not (Float.is_finite skew)) || skew < 0.0 then
    invalid_arg "Zipf.create: skew must be finite and >= 0";
  {
    n;
    skew;
    h_x1 = h_integral ~skew 1.5 -. 1.0;
    h_n = h_integral ~skew (float_of_int n +. 0.5);
    s = 2.0 -. h_integral_inv ~skew (h_integral ~skew 2.5 -. h ~skew 2.0);
  }

let n t = t.n
let skew t = t.skew

let sample t rng =
  if t.n = 1 then 0
  else begin
    let skew = t.skew in
    let rec draw () =
      let u = t.h_n +. (Rng.float rng *. (t.h_x1 -. t.h_n)) in
      let x = h_integral_inv ~skew u in
      let k = int_of_float (Float.round x) in
      let k = if k < 1 then 1 else if k > t.n then t.n else k in
      let kf = float_of_int k in
      if
        kf -. x <= t.s
        || u >= h_integral ~skew (kf +. 0.5) -. h ~skew kf
      then k - 1
      else draw ()
    in
    draw ()
  end

module Flows = struct
  type zipf = t

  type t = {
    rules : Rule.t array;
    seed : int;
    count : int;
    zipf : zipf;
    stream : Rng.t;
  }

  let create ~rules ~seed ~flows ~skew =
    if Array.length rules = 0 then invalid_arg "Zipf.Flows.create: no rules";
    if flows < 1 then invalid_arg "Zipf.Flows.create: flows must be >= 1";
    {
      rules;
      seed;
      count = flows;
      zipf = create ~n:flows ~skew;
      stream = Rng.create ~seed;
    }

  let flows t = t.count

  (* The flow's packet is a pure function of (seed, rank): a splitmix
     stream keyed by both picks the target rule and the packet inside
     its match field.  Popular ranks land on uniformly random rules —
     the skew lives in the access stream, not in which rules are hot,
     so every run re-rolls which part of the table the elephants hit. *)
  let packet_of t rank =
    if rank < 0 || rank >= t.count then
      invalid_arg "Zipf.Flows.packet_of: rank out of range";
    let rng = Rng.create ~seed:(t.seed lxor ((rank + 1) * 0x2545F4914F6CDD1D)) in
    let rule = t.rules.(Rng.int rng (Array.length t.rules)) in
    Header.packet_in rng rule.Rule.field

  let next t =
    let rank = sample t.zipf t.stream in
    (rank, packet_of t rank)
end
