(** Seeded Zipf flow traffic (the cache-tier workload).

    Flow popularity in real switch traces is heavy-tailed: a few elephant
    flows carry most packets while a long tail of mice appears once or
    twice.  The cache literature (FDRC; OVS megaflow studies) therefore
    evaluates admission/eviction policies under Zipf-distributed flow
    arrivals with a tunable skew.  This module provides

    - a {e rank sampler}: Zipf([skew]) over [n] ranks, exact for any
      [skew >= 0] (including the uniform limit [skew = 0] and the
      classic [skew = 1]) via Hörmann's rejection-inversion method —
      O(1) setup and O(1) expected time per sample, so "millions of
      flows" costs nothing up front; and
    - a {e flow universe}: a deterministic mapping from flow rank to a
      concrete packet that hits a given rule table, so a flow stream can
      drive a cache tier whose ground truth is the table itself.

    Everything is a pure function of the seed: equal seeds give equal
    streams, which is what lets the conformance oracle replay a run. *)

type t
(** Sampler for a fixed [(n, skew)] pair.  Immutable; the randomness
    comes from the generator passed to {!sample}. *)

val create : n:int -> skew:float -> t
(** Ranks [0 .. n-1] with P(rank k) proportional to [1 / (k+1)^skew].
    @raise Invalid_argument if [n < 1], or [skew] is negative or not
    finite. *)

val n : t -> int
val skew : t -> float

val sample : t -> Fr_prng.Rng.t -> int
(** Draw a rank in [\[0, n)]; rank 0 is the most popular.  Expected O(1):
    rejection-inversion accepts with probability bounded away from 0 for
    every [skew >= 0]. *)

(** A deterministic flow universe over a rule table.  Each flow rank maps
    to one fixed packet that matches some rule of the table (flows that
    would miss the whole table teach a cache nothing), and the stream
    draws ranks Zipf-style.  The per-flow packet is derived from the
    seed and the rank alone — flow 17 is the same packet in every run
    and in every probe, without materialising the universe. *)
module Flows : sig
  type nonrec t

  val create :
    rules:Fr_tern.Rule.t array -> seed:int -> flows:int -> skew:float -> t
  (** [flows] distinct flows over [rules].
      @raise Invalid_argument if [rules] is empty, [flows < 1], or the
      skew is invalid (see {!create}). *)

  val flows : t -> int

  val packet_of : t -> int -> Fr_tern.Header.packet
  (** The fixed packet of a flow rank (pure; any rank in [\[0, flows)]).
      @raise Invalid_argument if the rank is out of range. *)

  val next : t -> int * Fr_tern.Header.packet
  (** Draw the next flow from the Zipf stream: [(rank, packet_of rank)].
      Advances the stream's own generator. *)
end
