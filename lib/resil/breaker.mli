(** Per-shard circuit breaker.

    The classic three-state machine, with time measured in {e flush
    rounds} (the control plane's natural clock) rather than wall time:

    {v
      Closed --[threshold consecutive failed drains]--> Open
      Open   --[cooldown skipped flushes]------------> Half_open
      Half_open --[probe drain succeeds]-------------> Closed
      Half_open --[probe drain fails]----------------> Open
    v}

    While Open the supervisor skips the shard's drain entirely; submits
    still queue up to a bound, beyond which they are shed with explicit
    [overloaded] rejections (see {!Fr_ctrl.Service}). *)

type state = Closed | Open | Half_open

type t

val create : ?threshold:int -> ?slow_threshold:int -> ?cooldown:int -> unit -> t
(** [threshold] (default 3) consecutive failed drains trip the breaker;
    [slow_threshold] (default 0, meaning disabled) consecutive {e slow}
    drains trip it too — a shard that answers, but too slowly, is as
    quarantine-worthy as one that fails; [cooldown] (default 2) is how
    many flush rounds stay skipped before the half-open probe.
    @raise Invalid_argument if [threshold] is below 1 or either of the
    others below 0. *)

val state : t -> state

val admits : t -> bool
(** Whether the next flush should drain this shard ([Closed] or
    [Half_open]). *)

val note_success : t -> unit
(** A drain that attempted work and ended with no failures.  Resets the
    failure streak; closes a half-open breaker. *)

val note_failure : t -> unit
(** A drain that attempted work and ended with failures.  Extends the
    streak (tripping at [threshold]); re-opens a half-open breaker. *)

val note_slow : t -> unit
(** A drain that attempted work, succeeded, but breached the supervisor's
    slow-call latency threshold.  Extends a separate slow streak
    (tripping at [slow_threshold]); a slow half-open probe re-opens the
    breaker.  When the slow policy is disabled ([slow_threshold = 0])
    this is equivalent to {!note_success}. *)

val note_skipped : t -> unit
(** A flush round passed over an open breaker.  After [cooldown] such
    rounds the breaker goes half-open. *)

val opens : t -> int
(** Lifetime count of transitions into [Open]. *)

val state_to_string : state -> string
val pp : Format.formatter -> t -> unit
