type state = Closed | Open | Half_open

type t = {
  threshold : int;
  slow_threshold : int;  (* 0 = slow calls never trip *)
  cooldown : int;
  mutable state : state;
  mutable streak : int;  (* consecutive failed drains while Closed *)
  mutable slow_streak : int;  (* consecutive slow drains while Closed *)
  mutable cooldown_left : int;
  mutable opens : int;
}

let create ?(threshold = 3) ?(slow_threshold = 0) ?(cooldown = 2) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if slow_threshold < 0 then
    invalid_arg "Breaker.create: slow_threshold must be >= 0";
  if cooldown < 0 then invalid_arg "Breaker.create: cooldown must be >= 0";
  {
    threshold;
    slow_threshold;
    cooldown;
    state = Closed;
    streak = 0;
    slow_streak = 0;
    cooldown_left = 0;
    opens = 0;
  }

let state t = t.state
let admits t = t.state <> Open
let opens t = t.opens

let trip t =
  t.state <- Open;
  t.streak <- 0;
  t.slow_streak <- 0;
  t.cooldown_left <- t.cooldown;
  t.opens <- t.opens + 1

let note_success t =
  match t.state with
  | Closed ->
      t.streak <- 0;
      t.slow_streak <- 0
  | Half_open ->
      t.state <- Closed;
      t.streak <- 0;
      t.slow_streak <- 0
  | Open -> ()

let note_failure t =
  match t.state with
  | Closed ->
      t.streak <- t.streak + 1;
      if t.streak >= t.threshold then trip t
  | Half_open -> trip t
  | Open -> ()

let note_slow t =
  if t.slow_threshold = 0 then note_success t
  else
    match t.state with
    | Closed ->
        (* A slow drain is not evidence of damage, so the failure streak is
           left alone; it is also not evidence of health, so it is not
           reset either. *)
        t.slow_streak <- t.slow_streak + 1;
        if t.slow_streak >= t.slow_threshold then trip t
    | Half_open -> trip t
    | Open -> ()

let note_skipped t =
  match t.state with
  | Open ->
      t.cooldown_left <- t.cooldown_left - 1;
      if t.cooldown_left <= 0 then t.state <- Half_open
  | Closed | Half_open -> ()

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let pp ppf t =
  Format.fprintf ppf "breaker(%s, streak=%d, opens=%d)"
    (state_to_string t.state) t.streak t.opens
