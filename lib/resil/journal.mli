(** Write-ahead intent journal — the durability half of [Fr_resil].

    One journal file per shard, plain text, one record per line (the same
    discipline as [Fr_conform.Trace] and [Fr_workload.Rules_io]): a [m]od
    line serialises a flow-mod with a monotonically increasing sequence
    number, [b]egin/[c]ommit markers bracket each drain, and a
    [k] (checkpoint) marker points at a {!Fr_workload.Rules_io} table file
    holding the full installed policy at that sequence number.

    The write path is {e fsync-batched}: mod appends are buffered and the
    channel is flushed only at begin/commit/checkpoint boundaries, so the
    journal is guaranteed to be ahead of the hardware (a drain never
    touches the TCAM before its begin marker — and every mod it covers —
    is durable) without paying a flush per submit.

    Checkpoints compact: the checkpoint table file is written atomically
    (tmp + rename), then the journal itself is atomically rewritten to
    hold just the header and the [k] marker, and stale checkpoint files
    are garbage-collected.  A crash between the two renames leaves the
    previous journal intact (the new table file is merely orphaned).

    The reader is torn-tail tolerant: a crash can leave a partial final
    line, which is dropped; malformed lines {e before} the tail are real
    corruption and reported as errors. *)

module Rule = Fr_tern.Rule
module Agent = Fr_switch.Agent

(** {1 Line codec} *)

val action_to_string : Rule.action -> string
(** Compact action tokens — ["f<port>"], ["d"], ["c"] — shared with the
    conformance trace format ({!Fr_conform.Trace} delegates here). *)

val action_of_string : string -> Rule.action option

type entry =
  | Mod of { seq : int; fm : Agent.flow_mod }
  | Begin of { drain : int; upto : int }
      (** drain [drain] is about to apply every journaled mod with
          [seq <= upto] that is not already covered. *)
  | Commit of { drain : int; upto : int; applied : int; failed : int }
  | Checkpoint of { upto : int; file : string }
      (** [file] (relative to the journal directory) holds the full
          installed table covering every mod with [seq <= upto]. *)

val entry_to_string : entry -> string
val entry_of_string : string -> (entry, string) result

(** {1 Journal directory layout} *)

val dir_file : dir:string -> shard:int -> string
(** Path of shard [shard]'s journal file. *)

val meta_file : dir:string -> string

type meta = {
  shards : int;
  capacity : int;
  policy : string;  (** {!Fr_ctrl.Partition.policy_to_string} form *)
  kind : string;  (** {!Fr_switch.Firmware.algo_kind_name} form *)
  refresh_every : int;
  verify : bool;
}
(** Service shape, persisted once at journal creation so that recovery
    needs nothing but the directory. *)

val write_meta : dir:string -> meta -> unit
val read_meta : dir:string -> (meta, string) result

val ensure_dir : string -> unit
(** Create [dir] (and missing parents) if needed. *)

val fresh_dir : prefix:string -> string
(** A new empty directory under the system temp dir — for the crash
    oracle and the test suite. *)

(** {1 Writing} *)

type t

val create : dir:string -> shard:int -> t
(** Start a fresh journal (truncating any previous file for this shard). *)

val reopen : dir:string -> shard:int -> next_seq:int -> next_drain:int -> t
(** Reattach to an existing journal in append mode after recovery; the
    counters come from {!read_recovery}. *)

val path : t -> string

val dir : t -> string
(** The journal directory this writer lives in. *)

val last_seq : t -> int

val log_mod : t -> Agent.flow_mod -> int
(** Append a mod record (buffered) and return its sequence number. *)

val log_begin : t -> int
(** Append a begin marker covering every mod so far and flush.  Returns
    the drain id. *)

val log_commit : t -> drain:int -> applied:int -> failed:int -> unit
(** Append the matching commit marker and flush. *)

val checkpoint : ?retain:int -> t -> rules:Rule.t array -> unit
(** Write a checkpoint table covering every mod so far and compact the
    journal down to it (see module doc).  Subsumes the pending drain's
    commit marker: a checkpoint {e is} a commit.  [retain] (default 1,
    clamped to at least 1) keeps the newest [retain] checkpoint tables on
    disk and garbage-collects the rest; recovery only ever reads the
    newest, the extras are an operator safety margin. *)

val sync : t -> unit
val close : t -> unit

(** {1 Recovery reading} *)

type committed = { drain : int; upto : int; applied : int; failed : int }

type recovery = {
  shard : int;
  checkpoint : (int * string) option;
      (** covered sequence number and {e absolute} table-file path *)
  committed : committed list;  (** drains after the checkpoint, in order *)
  mods : (int * Agent.flow_mod) list;
      (** every mod after the checkpoint, ascending seq *)
  interrupted : bool;  (** trailing begin without commit (mid-drain crash) *)
  next_seq : int;
  next_drain : int;
}

val read_recovery : dir:string -> shard:int -> (recovery, string) result

(** {1 Observability} *)

type stat = {
  shard : int;
  wal_bytes : int;
  wal_age_s : float;  (** seconds since the WAL was last written *)
  checkpoints : (int * string * int) list;
      (** (covered seq, file name, bytes), newest first *)
  total_drains : int;  (** drains ever recorded (checkpoints included) *)
  committed_drains : int;  (** committed drains since the last checkpoint *)
  pending_mods : int;  (** journaled mods not yet covered by a commit *)
  interrupted : bool;
}

val stat : dir:string -> shard:int -> (stat, string) result
(** Read-only health summary of one shard's journal — sizes and ages from
    the filesystem, counts from {!read_recovery}. *)
