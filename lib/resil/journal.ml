module Rule = Fr_tern.Rule
module Ternary = Fr_tern.Ternary
module Agent = Fr_switch.Agent
module Rules_io = Fr_workload.Rules_io

(* -- line codec ------------------------------------------------------ *)

let action_to_string = function
  | Rule.Forward p -> Printf.sprintf "f%d" p
  | Rule.Drop -> "d"
  | Rule.Controller -> "c"

let action_of_string s =
  if s = "d" then Some Rule.Drop
  else if s = "c" then Some Rule.Controller
  else if String.length s >= 2 && s.[0] = 'f' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some p when p >= 0 -> Some (Rule.Forward p)
    | Some _ | None -> None
  else None

type entry =
  | Mod of { seq : int; fm : Agent.flow_mod }
  | Begin of { drain : int; upto : int }
  | Commit of { drain : int; upto : int; applied : int; failed : int }
  | Checkpoint of { upto : int; file : string }

let entry_to_string = function
  | Mod { seq; fm = Agent.Add r } ->
      Printf.sprintf "m %d a %d %d %s %s" seq r.Rule.id r.Rule.priority
        (action_to_string r.Rule.action)
        (Ternary.to_string r.Rule.field)
  | Mod { seq; fm = Agent.Remove { id } } -> Printf.sprintf "m %d r %d" seq id
  | Mod { seq; fm = Agent.Set_action { id; action } } ->
      Printf.sprintf "m %d s %d %s" seq id (action_to_string action)
  | Begin { drain; upto } -> Printf.sprintf "b %d %d" drain upto
  | Commit { drain; upto; applied; failed } ->
      Printf.sprintf "c %d %d %d %d" drain upto applied failed
  | Checkpoint { upto; file } -> Printf.sprintf "k %d %s" upto file

let entry_of_string line =
  let fields =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  let int_ s = int_of_string_opt s in
  match fields with
  | [ "m"; seq; "a"; id; prio; act; field ] -> (
      match (int_ seq, int_ id, int_ prio, action_of_string act) with
      | Some seq, Some id, Some priority, Some action -> (
          match Ternary.of_string field with
          | field ->
              Ok (Mod { seq; fm = Agent.Add (Rule.make ~id ~field ~action ~priority) })
          | exception Invalid_argument _ -> Error "malformed field")
      | _ -> Error "malformed add record")
  | [ "m"; seq; "r"; id ] -> (
      match (int_ seq, int_ id) with
      | Some seq, Some id -> Ok (Mod { seq; fm = Agent.Remove { id } })
      | _ -> Error "malformed remove record")
  | [ "m"; seq; "s"; id; act ] -> (
      match (int_ seq, int_ id, action_of_string act) with
      | Some seq, Some id, Some action ->
          Ok (Mod { seq; fm = Agent.Set_action { id; action } })
      | _ -> Error "malformed set-action record")
  | [ "b"; drain; upto ] -> (
      match (int_ drain, int_ upto) with
      | Some drain, Some upto -> Ok (Begin { drain; upto })
      | _ -> Error "malformed begin marker")
  | [ "c"; drain; upto; applied; failed ] -> (
      match (int_ drain, int_ upto, int_ applied, int_ failed) with
      | Some drain, Some upto, Some applied, Some failed ->
          Ok (Commit { drain; upto; applied; failed })
      | _ -> Error "malformed commit marker")
  | [ "k"; upto; file ] -> (
      match int_ upto with
      | Some upto -> Ok (Checkpoint { upto; file })
      | None -> Error "malformed checkpoint marker")
  | _ -> Error (Printf.sprintf "unrecognised record %S" line)

(* -- directory layout ------------------------------------------------ *)

let magic = "fastrule-resil-journal v1"
let meta_magic = "fastrule-resil-meta v1"
let dir_file ~dir ~shard = Filename.concat dir (Printf.sprintf "shard-%d.wal" shard)
let meta_file ~dir = Filename.concat dir "meta"

let ckpt_basename ~shard ~upto = Printf.sprintf "shard-%d-ckpt-%d.rules" shard upto
let ckpt_prefix ~shard = Printf.sprintf "shard-%d-ckpt-" shard

(* [Some upto] when [name] is one of this shard's checkpoint tables. *)
let ckpt_upto_of_name ~shard name =
  let prefix = ckpt_prefix ~shard in
  let plen = String.length prefix in
  let ext = ".rules" in
  if
    String.length name > plen + String.length ext
    && String.sub name 0 plen = prefix
    && Filename.check_suffix name ext
  then int_of_string_opt (String.sub name plen (String.length name - plen - String.length ext))
  else None

let list_checkpoints ~dir ~shard =
  (try Sys.readdir dir with Sys_error _ -> [||])
  |> Array.to_list
  |> List.filter_map (fun name ->
         match ckpt_upto_of_name ~shard name with
         | Some upto -> Some (upto, name)
         | None -> None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

let fresh_dir ~prefix =
  let stamp = Filename.temp_file prefix "" in
  Sys.remove stamp;
  Sys.mkdir stamp 0o700;
  stamp

type meta = {
  shards : int;
  capacity : int;
  policy : string;
  kind : string;
  refresh_every : int;
  verify : bool;
}

let write_meta ~dir m =
  ensure_dir dir;
  let path = meta_file ~dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "%s\nshards %d\ncapacity %d\npolicy %s\nkind %s\nrefresh_every %d\nverify %b\n"
    meta_magic m.shards m.capacity m.policy m.kind m.refresh_every m.verify;
  close_out oc;
  Sys.rename tmp path

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      Ok text

let read_meta ~dir =
  let ( let* ) = Result.bind in
  let* text = read_file (meta_file ~dir) in
  let tbl = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  match lines with
  | m :: rest when m = meta_magic ->
      List.iter
        (fun l ->
          match String.index_opt l ' ' with
          | Some i ->
              Hashtbl.replace tbl (String.sub l 0 i)
                (String.sub l (i + 1) (String.length l - i - 1))
          | None -> ())
        rest;
      let get k =
        match Hashtbl.find_opt tbl k with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "journal meta: missing %s" k)
      in
      let get_int k =
        let* v = get k in
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "journal meta: bad %s %S" k v)
      in
      let* shards = get_int "shards" in
      let* capacity = get_int "capacity" in
      let* policy = get "policy" in
      let* kind = get "kind" in
      let* refresh_every = get_int "refresh_every" in
      let* verify_s = get "verify" in
      let* verify =
        match bool_of_string_opt verify_s with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "journal meta: bad verify %S" verify_s)
      in
      Ok { shards; capacity; policy; kind; refresh_every; verify }
  | m :: _ ->
      Error (Printf.sprintf "journal meta: bad magic %S (want %S)" m meta_magic)
  | [] -> Error "journal meta: empty file"

(* -- writer ---------------------------------------------------------- *)

type t = {
  dir : string;
  shard : int;
  path : string;
  mutable oc : out_channel;
  mutable next_seq : int;
  mutable next_drain : int;
}

let header_lines ~shard = Printf.sprintf "%s\nshard %d\n" magic shard

let create ~dir ~shard =
  ensure_dir dir;
  let path = dir_file ~dir ~shard in
  let oc = open_out path in
  output_string oc (header_lines ~shard);
  flush oc;
  { dir; shard; path; oc; next_seq = 1; next_drain = 1 }

let reopen ~dir ~shard ~next_seq ~next_drain =
  let path = dir_file ~dir ~shard in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  { dir; shard; path; oc; next_seq; next_drain }

let path t = t.path
let dir t = t.dir
let last_seq t = t.next_seq - 1
let sync t = flush t.oc
let append t e = output_string t.oc (entry_to_string e ^ "\n")

let log_mod t fm =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  append t (Mod { seq; fm });
  seq

let log_begin t =
  let drain = t.next_drain in
  t.next_drain <- drain + 1;
  append t (Begin { drain; upto = last_seq t });
  sync t;
  drain

let log_commit t ~drain ~applied ~failed =
  append t (Commit { drain; upto = last_seq t; applied; failed });
  sync t

let checkpoint ?(retain = 1) t ~rules =
  let retain = max 1 retain in
  let upto = last_seq t in
  let file = ckpt_basename ~shard:t.shard ~upto in
  Rules_io.save (Filename.concat t.dir file) rules;
  (* Compact: the new journal is just the header plus the marker.  The
     rename is the commit point; a crash before it leaves the previous
     journal (and its checkpoint) fully intact. *)
  close_out t.oc;
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (header_lines ~shard:t.shard);
  output_string oc (entry_to_string (Checkpoint { upto; file }) ^ "\n");
  close_out oc;
  Sys.rename tmp t.path;
  t.oc <- open_out_gen [ Open_wronly; Open_append ] 0o644 t.path;
  (* GC checkpoint tables beyond the retention window (newest [retain]
     survive, recovery only ever reads the newest), best-effort. *)
  List.iteri
    (fun i (_, name) ->
      if i >= retain then
        try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
    (list_checkpoints ~dir:t.dir ~shard:t.shard)

let close t = close_out t.oc

(* -- recovery reader ------------------------------------------------- *)

type committed = { drain : int; upto : int; applied : int; failed : int }

type recovery = {
  shard : int;
  checkpoint : (int * string) option;
  committed : committed list;
  mods : (int * Agent.flow_mod) list;
  interrupted : bool;
  next_seq : int;
  next_drain : int;
}

(* Parse every line, dropping a torn tail: a crash mid-append can leave
   one partial final line, which is not corruption.  A bad line followed
   by good ones is. *)
let parse_entries ~path lines =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let is_blank i = String.trim arr.(i) = "" in
  let rec last_content i = if i < 0 then -1 else if is_blank i then last_content (i - 1) else i in
  let last = last_content (n - 1) in
  let rec go i acc =
    if i > last then Ok (List.rev acc)
    else if is_blank i then go (i + 1) acc
    else
      match entry_of_string arr.(i) with
      | Ok e -> go (i + 1) (e :: acc)
      | Error msg ->
          if i = last then Ok (List.rev acc) (* torn tail *)
          else Error (Printf.sprintf "%s: line %d: %s" path (i + 3) msg)
  in
  go 0 []

let read_recovery ~dir ~shard =
  let ( let* ) = Result.bind in
  let path = dir_file ~dir ~shard in
  let* text = read_file path in
  let lines = String.split_on_char '\n' text in
  match lines with
  | m :: s :: rest when m = magic ->
      let* () =
        if String.trim s = Printf.sprintf "shard %d" shard then Ok ()
        else Error (Printf.sprintf "%s: shard header mismatch %S" path s)
      in
      let* entries = parse_entries ~path rest in
      let checkpoint = ref None in
      let committed = ref [] in
      let mods = ref [] in
      let open_begin = ref None in
      let max_seq = ref 0 in
      let max_drain = ref 0 in
      List.iter
        (fun e ->
          match e with
          | Mod { seq; fm } ->
              if seq > !max_seq then max_seq := seq;
              mods := (seq, fm) :: !mods
          | Begin { drain; upto = _ } ->
              if drain > !max_drain then max_drain := drain;
              open_begin := Some drain
          | Commit { drain; upto; applied; failed } ->
              if drain > !max_drain then max_drain := drain;
              if upto > !max_seq then max_seq := upto;
              open_begin := None;
              committed := { drain; upto; applied; failed } :: !committed
          | Checkpoint { upto; file } ->
              if upto > !max_seq then max_seq := upto;
              checkpoint := Some (upto, Filename.concat dir file);
              committed :=
                List.filter (fun (c : committed) -> c.upto > upto) !committed;
              mods := List.filter (fun (seq, _) -> seq > upto) !mods;
              open_begin := None)
        entries;
      let floor = match !checkpoint with Some (u, _) -> u | None -> 0 in
      Ok
        {
          shard;
          checkpoint = !checkpoint;
          committed = List.rev !committed;
          mods =
            List.filter (fun (seq, _) -> seq > floor) !mods
            |> List.sort (fun (a, _) (b, _) -> compare a b);
          interrupted = !open_begin <> None;
          next_seq = !max_seq + 1;
          next_drain = !max_drain + 1;
        }
  | m :: _ when m <> magic ->
      Error (Printf.sprintf "%s: bad magic %S (want %S)" path m magic)
  | _ -> Error (Printf.sprintf "%s: truncated header" path)

(* -- observability ---------------------------------------------------- *)

type stat = {
  shard : int;
  wal_bytes : int;
  wal_age_s : float;
  checkpoints : (int * string * int) list;  (* upto, file, bytes; newest first *)
  total_drains : int;
  committed_drains : int;  (* committed since the last checkpoint *)
  pending_mods : int;
  interrupted : bool;
}

let stat ~dir ~shard =
  let ( let* ) = Result.bind in
  let* r = read_recovery ~dir ~shard in
  let path = dir_file ~dir ~shard in
  let* st =
    try Ok (Unix.stat path)
    with Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  in
  let now = Unix.gettimeofday () in
  let checkpoints =
    list_checkpoints ~dir ~shard
    |> List.map (fun (upto, name) ->
           let bytes =
             try (Unix.stat (Filename.concat dir name)).Unix.st_size
             with Unix.Unix_error _ -> 0
           in
           (upto, name, bytes))
  in
  let committed_floor =
    List.fold_left
      (fun acc (c : committed) -> max acc c.upto)
      (match r.checkpoint with Some (u, _) -> u | None -> 0)
      r.committed
  in
  Ok
    {
      shard;
      wal_bytes = st.Unix.st_size;
      wal_age_s = Float.max 0.0 (now -. st.Unix.st_mtime);
      checkpoints;
      total_drains = r.next_drain - 1;
      committed_drains = List.length r.committed;
      pending_mods =
        List.length (List.filter (fun (seq, _) -> seq > committed_floor) r.mods);
      interrupted = r.interrupted;
    }
