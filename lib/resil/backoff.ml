module Rng = Fr_prng.Rng

type t = {
  base_ms : float;
  factor : float;
  max_ms : float;
  jitter : float;
  rng : Rng.t;
}

let create ?(base_ms = 1.0) ?(factor = 2.0) ?(max_ms = 64.0) ?(jitter = 0.2)
    ?rng ~seed () =
  if base_ms <= 0.0 || factor <= 0.0 then
    invalid_arg "Backoff.create: base_ms and factor must be positive";
  if jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Backoff.create: jitter must be in [0, 1]";
  {
    base_ms;
    factor;
    max_ms;
    jitter;
    rng = (match rng with Some r -> r | None -> Rng.create ~seed);
  }

let delay_ms t ~attempt =
  if attempt < 1 then invalid_arg "Backoff.delay_ms: attempt is 1-based";
  let nominal =
    Float.min t.max_ms
      (t.base_ms *. Float.pow t.factor (float_of_int (attempt - 1)))
  in
  if t.jitter = 0.0 then nominal
  else
    let spread = nominal *. t.jitter in
    nominal -. spread +. (2.0 *. spread *. Rng.float t.rng)
