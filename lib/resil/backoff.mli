(** Exponential backoff with deterministic jitter.

    Delays are {e modelled} milliseconds, in the same spirit as the
    latency model ({!Fr_tcam.Latency}): the supervisor accounts them in
    telemetry instead of sleeping, so tests and benches stay fast and
    reproducible.  Jitter is drawn from a seeded {!Fr_prng.Rng.t} —
    equal seeds give equal retry schedules. *)

type t

val create :
  ?base_ms:float ->
  ?factor:float ->
  ?max_ms:float ->
  ?jitter:float ->
  ?rng:Fr_prng.Rng.t ->
  seed:int ->
  unit ->
  t
(** Defaults: [base_ms = 1.0], [factor = 2.0], [max_ms = 64.0],
    [jitter = 0.2] (each delay is spread uniformly over ±20% of its
    nominal value).  [rng] injects an already-derived jitter stream (e.g.
    one {!Fr_prng.Rng.split} per shard) and supersedes [seed] — the way a
    supervisor owning many backoffs keeps their streams independent
    instead of threading one generator across all of them.
    @raise Invalid_argument on a non-positive base/factor or a jitter
    outside [\[0, 1\]]. *)

val delay_ms : t -> attempt:int -> float
(** Delay before retry [attempt] (1-based):
    [base * factor^(attempt-1)] capped at [max_ms], jittered.
    Advances the jitter PRNG. *)
