(** Exponential backoff with deterministic jitter.

    Delays are {e modelled} milliseconds, in the same spirit as the
    latency model ({!Fr_tcam.Latency}): the supervisor accounts them in
    telemetry instead of sleeping, so tests and benches stay fast and
    reproducible.  Jitter is drawn from a seeded {!Fr_prng.Rng.t} —
    equal seeds give equal retry schedules. *)

type t

val create :
  ?base_ms:float ->
  ?factor:float ->
  ?max_ms:float ->
  ?jitter:float ->
  seed:int ->
  unit ->
  t
(** Defaults: [base_ms = 1.0], [factor = 2.0], [max_ms = 64.0],
    [jitter = 0.2] (each delay is spread uniformly over ±20% of its
    nominal value).
    @raise Invalid_argument on a non-positive base/factor or a jitter
    outside [\[0, 1\]]. *)

val delay_ms : t -> attempt:int -> float
(** Delay before retry [attempt] (1-based):
    [base * factor^(attempt-1)] capped at [max_ms], jittered.
    Advances the jitter PRNG. *)
