(** Log-bucketed latency histogram (nanoseconds).

    Fixed geometric buckets — [2^(1/8)] ratio, so every quantile is exact
    to within ~9% relative error while [record] is O(1), allocation-free
    and cheap enough to sit inside a per-lookup timing loop.  Each LGEN
    reader domain owns a private histogram and the driver {!merge}s them
    after the readers join, so no synchronisation is ever needed. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one latency sample in nanoseconds (negative samples clamp
    to 0 — a clock that steps backwards is not worth crashing over). *)

val count : t -> int
val max_ns : t -> int
val mean_ns : t -> float

val quantile : t -> float -> float
(** [quantile t p] for [p] in [\[0, 1\]]: the geometric midpoint of the
    bucket holding the [p]-th fraction of samples, in ns.  [0.0] when
    empty. *)

val p50 : t -> float
val p99 : t -> float
val p999 : t -> float

val merge : into:t -> t -> unit
(** Add every bucket of the second histogram into [into]. *)
