(* 8 sub-buckets per power of two: relative bucket width 2^(1/8) - 1,
   about 9%.  64 powers of two cover any int64 nanosecond reading. *)
let sub = 8
let buckets = 64 * sub

type t = {
  counts : int array;
  mutable total : int;
  mutable sum_ns : float;
  mutable max_ns : int;
}

let create () =
  { counts = Array.make buckets 0; total = 0; sum_ns = 0.0; max_ns = 0 }

let bucket_of ns =
  if ns <= 1 then 0
  else
    let b = int_of_float (Float.log2 (float_of_int ns) *. float_of_int sub) in
    if b >= buckets then buckets - 1 else b

let record t ns =
  let ns = if ns < 0 then 0 else ns in
  let b = bucket_of ns in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  t.sum_ns <- t.sum_ns +. float_of_int ns;
  if ns > t.max_ns then t.max_ns <- ns

let count t = t.total
let max_ns t = t.max_ns
let mean_ns t = if t.total = 0 then 0.0 else t.sum_ns /. float_of_int t.total

let value_of b = Float.pow 2.0 ((float_of_int b +. 0.5) /. float_of_int sub)

let quantile t p =
  if t.total = 0 then 0.0
  else begin
    let target = p *. float_of_int t.total in
    let cum = ref 0 in
    let answer = ref (value_of (buckets - 1)) in
    (try
       for b = 0 to buckets - 1 do
         cum := !cum + t.counts.(b);
         if float_of_int !cum >= target && t.counts.(b) > 0 then begin
           answer := value_of b;
           raise Exit
         end
       done
     with Exit -> ());
    !answer
  end

let p50 t = quantile t 0.50
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let merge ~into src =
  Array.iteri (fun b n -> into.counts.(b) <- into.counts.(b) + n) src.counts;
  into.total <- into.total + src.total;
  into.sum_ns <- into.sum_ns +. src.sum_ns;
  if src.max_ns > into.max_ns then into.max_ns <- src.max_ns
