module Rule = Fr_tern.Rule
module Image = Fr_tcam.Image
module Dataset = Fr_workload.Dataset
module Zipf = Fr_workload.Zipf
module Firmware = Fr_switch.Firmware
module Agent = Fr_switch.Agent
module Measure = Fr_switch.Measure
module Ctrl = Fr_ctrl.Service
module Shard = Fr_ctrl.Shard
module Churn = Fr_ctrl.Churn
module Telemetry = Fr_ctrl.Telemetry

type spec = {
  kind : Dataset.kind;
  n : int;
  seed : int;
  flows : int;
  skew : float;
  ops : int;
  shards : int;
  capacity : int;
  batch : int;
  readers : int;
  min_lookups : int;
  rebuild_every : int;
}

let default_spec =
  {
    kind = Dataset.ACL4;
    n = 400;
    seed = 42;
    flows = 20_000;
    skew = 1.1;
    ops = 4_000;
    shards = 4;
    capacity = 1_500;
    batch = 32;
    readers = 1;
    min_lookups = 2_000;
    rebuild_every = 256;
  }

type lat = {
  p50 : float;
  p99 : float;
  p999 : float;
  mean : float;
  max : float;
  samples : int;
}

type result = {
  spec : spec;
  algo : Firmware.algo_kind;
  domains : int;
  applied : int;
  failed : int;
  flushes : int;
  storm_wall_ms : float;
  tcam_lat : lat;
  soft_lat : lat;
  lookups : int;
  hits : int;
  misses : int;
  retired_hits : int;
  epochs_seen : int;
  soft_rebuilds : int;
  agree : int;
  disagree : int;
}

(* What one LGEN domain brings home. *)
type reader_report = {
  r_tcam : Hist.t;
  r_soft : Hist.t;
  r_tallies : (int, int) Hashtbl.t;
  r_hits : int;
  r_misses : int;
  r_lookups : int;
  r_epochs : int;
  r_rebuilds : int;
  r_agree : int;
  r_disagree : int;
}

let lat_of h =
  {
    p50 = Hist.p50 h;
    p99 = Hist.p99 h;
    p999 = Hist.p999 h;
    mean = Hist.mean_ns h;
    max = float_of_int (Hist.max_ns h);
    samples = Hist.count h;
  }

let now_ns () = Monotonic_clock.now ()

(* The reader loop: Zipf packets against shard 0's published snapshots,
   every lookup timed on the monotonic clock, hits tallied locally.  The
   software backend answers for its own (periodically refreshed)
   snapshot and is cross-checked against the linear image scan over that
   same snapshot — a comparison that stays well-defined however far the
   live table has moved on. *)
let reader ~spec ~shard0 ~rules ~stop idx () =
  let flows =
    Zipf.Flows.create ~rules
      ~seed:(spec.seed + (7919 * (idx + 1)))
      ~flows:spec.flows ~skew:spec.skew
  in
  let tcam_h = Hist.create () and soft_h = Hist.create () in
  let tallies = Hashtbl.create 64 in
  let hits = ref 0 and misses = ref 0 in
  let agree = ref 0 and disagree = ref 0 in
  let epochs = ref 0 and last_epoch = ref (-1) in
  let rebuilds = ref 0 in
  let backend = ref (Backend.of_image (Shard.published shard0)) in
  let n = ref 0 in
  while (not (Atomic.get stop)) || !n < spec.min_lookups do
    incr n;
    let _rank, pkt = Zipf.Flows.next flows in
    (* The RCU read: one atomic load, then an immutable snapshot. *)
    let img = Shard.published shard0 in
    let e = Image.epoch img in
    if e <> !last_epoch then begin
      last_epoch := e;
      incr epochs
    end;
    let t0 = now_ns () in
    let answer = Image.lookup img pkt in
    let t1 = now_ns () in
    Hist.record tcam_h (Int64.to_int (Int64.sub t1 t0));
    (match answer with
    | Some r ->
        incr hits;
        Hashtbl.replace tallies r.Rule.id
          (1 + Option.value (Hashtbl.find_opt tallies r.Rule.id) ~default:0)
    | None -> incr misses);
    if !n mod spec.rebuild_every = 0 then begin
      backend := Backend.of_image (Shard.published shard0);
      incr rebuilds
    end;
    let t2 = now_ns () in
    let soft = Backend.lookup !backend pkt in
    let t3 = now_ns () in
    Hist.record soft_h (Int64.to_int (Int64.sub t3 t2));
    let reference = Image.lookup (Backend.image !backend) pkt in
    let same =
      match (soft, reference) with
      | None, None -> true
      | Some (a : Rule.t), Some (b : Rule.t) -> a.Rule.id = b.Rule.id
      | _ -> false
    in
    if same then incr agree else incr disagree
  done;
  {
    r_tcam = tcam_h;
    r_soft = soft_h;
    r_tallies = tallies;
    r_hits = !hits;
    r_misses = !misses;
    r_lookups = !n;
    r_epochs = !epochs;
    r_rebuilds = !rebuilds;
    r_agree = !agree;
    r_disagree = !disagree;
  }

let run ?(algo = Firmware.FR_O Fr_sched.Store.Bit_backend) ?domains spec =
  if spec.readers < 1 then invalid_arg "Storm.run: readers must be >= 1";
  if spec.min_lookups < 1 then invalid_arg "Storm.run: min_lookups must be >= 1";
  if spec.rebuild_every < 1 then
    invalid_arg "Storm.run: rebuild_every must be >= 1";
  let stop = Atomic.make false in
  let handles = ref [] in
  let shard0_ref = ref None in
  (* [configure] fires after the service is built and before the first
     storm op is submitted: the window in which the LGEN domains spawn,
     so every flush of the run happens under reader fire. *)
  let configure svc =
    let shard0 = Ctrl.shard svc 0 in
    shard0_ref := Some shard0;
    let rules =
      Agent.rules (Shard.agent shard0) |> Array.of_list
    in
    Array.sort (fun (a : Rule.t) (b : Rule.t) -> Int.compare a.Rule.id b.Rule.id) rules;
    handles :=
      List.init spec.readers (fun i ->
          Domain.spawn (reader ~spec ~shard0 ~rules ~stop i))
  in
  let t0 = Measure.now_ms () in
  let churn =
    Churn.run ~algo ?domains ~configure
      {
        Churn.kind = spec.kind;
        initial = spec.n;
        ops = spec.ops;
        shards = spec.shards;
        capacity = spec.capacity;
        batch = spec.batch;
        seed = spec.seed;
      }
  in
  Atomic.set stop true;
  let reports = List.map Domain.join !handles in
  let storm_wall_ms = Measure.now_ms () -. t0 in
  let shard0 =
    match !shard0_ref with Some s -> s | None -> assert false
  in
  (* Merge: private histograms and flow-stats tallies fold in on this
     domain, after the readers joined — the counter fix for snapshot-
     served packets (Agent.account_hits). *)
  let tcam_h = Hist.create () and soft_h = Hist.create () in
  let agent = Shard.agent shard0 in
  List.iter
    (fun r ->
      Hist.merge ~into:tcam_h r.r_tcam;
      Hist.merge ~into:soft_h r.r_soft;
      Agent.account_hits agent ~misses:r.r_misses
        (Hashtbl.fold (fun id n acc -> (id, n) :: acc) r.r_tallies []))
    reports;
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  {
    spec;
    algo;
    domains = Ctrl.domains churn.Churn.service;
    applied = churn.Churn.applied;
    failed = churn.Churn.failed;
    flushes = churn.Churn.flushes;
    storm_wall_ms;
    tcam_lat = lat_of tcam_h;
    soft_lat = lat_of soft_h;
    lookups = sum (fun r -> r.r_lookups);
    hits = sum (fun r -> r.r_hits);
    misses = sum (fun r -> r.r_misses);
    retired_hits = Agent.retired_hits agent;
    epochs_seen = sum (fun r -> r.r_epochs);
    soft_rebuilds = sum (fun r -> r.r_rebuilds);
    agree = sum (fun r -> r.r_agree);
    disagree = sum (fun r -> r.r_disagree);
  }

let run_all ?domains spec =
  List.map
    (fun algo -> run ~algo ?domains spec)
    (Firmware.standard_algos Fr_sched.Store.Bit_backend)

let pp_lat ppf (l : lat) =
  Format.fprintf ppf "p50 %.0f  p99 %.0f  p999 %.0f ns (%d samples)" l.p50
    l.p99 l.p999 l.samples

let pp_result ppf r =
  Format.fprintf ppf
    "%s/%s: %d lookups under %d storm ops (%d applied, %d failed, %d \
     flushes, %d domains, %d reader%s)@."
    (Dataset.to_string r.spec.kind)
    (Firmware.algo_kind_name r.algo)
    r.lookups r.spec.ops r.applied r.failed r.flushes r.domains r.spec.readers
    (if r.spec.readers = 1 then "" else "s");
  Format.fprintf ppf "  tcam-image lookup:  %a@." pp_lat r.tcam_lat;
  Format.fprintf ppf "  software backend:   %a@." pp_lat r.soft_lat;
  Format.fprintf ppf
    "  hits %d  misses %d  retired %d  epochs seen %d  rebuilds %d  \
     agree %d  disagree %d@."
    r.hits r.misses r.retired_hits r.epochs_seen r.soft_rebuilds r.agree
    r.disagree

let volatile_keys = [ "storm_wall_ms"; "traffic"; "tcam_ns"; "soft_ns" ]

let lat_json (l : lat) =
  let open Telemetry.Json in
  Obj
    [
      ("p50", Float l.p50);
      ("p99", Float l.p99);
      ("p999", Float l.p999);
      ("mean", Float l.mean);
      ("max", Float l.max);
      ("samples", Int l.samples);
    ]

let result_json r =
  let open Telemetry.Json in
  Obj
    [
      ("kind", Str (Dataset.to_string r.spec.kind));
      ("algo", Str (Firmware.algo_kind_name r.algo));
      ("n", Int r.spec.n);
      ("seed", Int r.spec.seed);
      ("flows", Int r.spec.flows);
      ("skew", Float r.spec.skew);
      ("ops", Int r.spec.ops);
      ("shards", Int r.spec.shards);
      ("capacity", Int r.spec.capacity);
      ("batch", Int r.spec.batch);
      ("readers", Int r.spec.readers);
      ("min_lookups", Int r.spec.min_lookups);
      ("rebuild_every", Int r.spec.rebuild_every);
      ("domains", Int r.domains);
      ("applied", Int r.applied);
      ("failed", Int r.failed);
      ("flushes", Int r.flushes);
      ("storm_wall_ms", Float r.storm_wall_ms);
      ( "traffic",
        Obj
          [
            ("lookups", Int r.lookups);
            ("hits", Int r.hits);
            ("misses", Int r.misses);
            ("retired_hits", Int r.retired_hits);
            ("epochs_seen", Int r.epochs_seen);
            ("soft_rebuilds", Int r.soft_rebuilds);
            ("agree", Int r.agree);
            ("disagree", Int r.disagree);
          ] );
      ("tcam_ns", lat_json r.tcam_lat);
      ("soft_ns", lat_json r.soft_lat);
    ]
