(** The lookup-under-update storm driver: LGEN/SUT split on domains.

    One or more {e load-generator} reader domains drive sustained seeded
    Zipf traffic (reusing {!Fr_workload.Zipf.Flows}) against shard 0's
    published snapshots, while the churn driver ({!Fr_ctrl.Churn}) — the
    {e system under test} — flushes an update storm through every shard
    on {!Fr_exec.Pool} executors.  Readers are wait-free: each lookup is
    one atomic load of the shard's current {!Fr_tcam.Image.t} plus a
    descending scan of that immutable snapshot, so the writers never
    block them and they never see a half-applied cascade step.

    Each reader times every lookup with the monotonic clock into private
    log-bucketed {!Hist}s — one for the TCAM-emulation path
    ([Image.lookup]) and one for the {!Backend} software engine, which is
    recompiled from a fresh snapshot every [rebuild_every] lookups and
    cross-validated on every packet against [Image.lookup] over the
    backend's {e own} image (always comparable, even mid-cascade;
    [disagree] must be 0).  After the storm the readers join and their
    tallies merge into the agent's flow-stats counters via
    {!Fr_switch.Agent.account_hits}.

    The storm side (applied/failed/flushes) is a pure function of
    [seed] (and bit-identical across [domains] — {!Fr_ctrl.Service.flush}'s
    guarantee), so a recorded run reproduces; the lookup side (latencies,
    counts) is wall-clock and scheduling dependent by nature and is
    reported under separate JSON keys the round-trip test strips.

    Caveat: on a single-core host the reader and writer domains timeshare,
    so p99 includes scheduler preemption — see doc/PLANE.md. *)

type spec = {
  kind : Fr_workload.Dataset.kind;
  n : int;  (** initial rules preloaded before the storm *)
  seed : int;
  flows : int;  (** distinct Zipf flows in the reader universe *)
  skew : float;
  ops : int;  (** storm flow-mods *)
  shards : int;
  capacity : int;  (** TCAM slots per shard *)
  batch : int;  (** ops per flush window *)
  readers : int;  (** LGEN domains *)
  min_lookups : int;
      (** per-reader floor: readers keep measuring until the storm ends
          {e and} they have at least this many samples, so tiny CI runs
          still produce meaningful quantiles *)
  rebuild_every : int;  (** software-backend recompile period, in lookups *)
}

val default_spec : spec

type lat = {
  p50 : float;
  p99 : float;
  p999 : float;
  mean : float;
  max : float;  (** all ns *)
  samples : int;
}

type result = {
  spec : spec;
  algo : Fr_switch.Firmware.algo_kind;
  domains : int;  (** flush executors actually used *)
  applied : int;
  failed : int;
  flushes : int;
  storm_wall_ms : float;
  tcam_lat : lat;  (** [Image.lookup] — the TCAM-emulation read path *)
  soft_lat : lat;  (** {!Backend.lookup} — the software engine *)
  lookups : int;
  hits : int;
  misses : int;
  retired_hits : int;
      (** snapshot-served packets whose rule was gone by merge time *)
  epochs_seen : int;  (** distinct published epochs readers observed *)
  soft_rebuilds : int;
  agree : int;
  disagree : int;  (** backend vs snapshot cross-validation; must be 0 *)
}

val run :
  ?algo:Fr_switch.Firmware.algo_kind -> ?domains:int -> spec -> result
(** One storm.  [domains] defaults to {!Fr_ctrl.Service.default_domains}
    (the FASTRULE_DOMAINS env var).
    @raise Invalid_argument on a non-positive [readers], [min_lookups]
    or [rebuild_every], or an initial policy that does not fit. *)

val run_all : ?domains:int -> spec -> result list
(** {!run} once per standard scheduler (BIT back-end), same spec. *)

val pp_result : Format.formatter -> result -> unit

val result_json : result -> Fr_ctrl.Telemetry.Json.v
(** Deterministic fields at the top level (spec echo, seed, domains,
    applied/failed/flushes); wall-clock-dependent measurements nested
    under ["storm_wall_ms"], ["traffic"], ["tcam_ns"] and ["soft_ns"] —
    strip those four keys and the dump is reproducible from the seed. *)

val volatile_keys : string list
(** The four wall-clock-dependent keys above, for round-trip tests. *)
