module Rule = Fr_tern.Rule
module Ternary = Fr_tern.Ternary
module Header = Fr_tern.Header
module Image = Fr_tcam.Image

type tuple = {
  mask : int64 array;
  (* masked packet bits -> (address, rule); one winner per exact value
     because two rules with equal value and mask have identical fields,
     and the TCAM answers the higher address. *)
  entries : (int64 array, int * Rule.t) Hashtbl.t;
  mutable max_addr : int;
}

type t = { tuples : tuple array; image : Image.t; entry_count : int }

let of_image img =
  let by_mask : (int64 array, tuple) Hashtbl.t = Hashtbl.create 16 in
  let entries = Image.entries img in
  Array.iter
    (fun (addr, (r : Rule.t)) ->
      (* Canonical ternaries keep value bits 0 outside the mask, so the
         stored value chunks are exactly the masked-bits hash key. *)
      let value, mask = Ternary.unsafe_chunks r.Rule.field in
      let tu =
        match Hashtbl.find_opt by_mask mask with
        | Some tu -> tu
        | None ->
            let tu = { mask; entries = Hashtbl.create 16; max_addr = -1 } in
            Hashtbl.add by_mask mask tu;
            tu
      in
      (match Hashtbl.find_opt tu.entries value with
      | Some (a, _) when a >= addr -> ()
      | Some _ | None -> Hashtbl.replace tu.entries value (addr, r));
      if addr > tu.max_addr then tu.max_addr <- addr)
    entries;
  let tuples =
    Hashtbl.fold (fun _ tu acc -> tu :: acc) by_mask [] |> Array.of_list
  in
  Array.sort (fun a b -> Int.compare b.max_addr a.max_addr) tuples;
  { tuples; image = img; entry_count = Array.length entries }

let image t = t.image
let tuple_count t = Array.length t.tuples
let entry_count t = t.entry_count

let lookup t packet =
  let bits = Header.packet_bits packet in
  let chunks = Array.length bits in
  let key = Array.make chunks 0L in
  let best = ref None in
  let best_addr = ref (-1) in
  (try
     Array.iter
       (fun tu ->
         (* Descending max_addr: nothing past this point can win. *)
         if tu.max_addr <= !best_addr then raise Exit;
         for i = 0 to chunks - 1 do
           key.(i) <- Int64.logand bits.(i) tu.mask.(i)
         done;
         match Hashtbl.find_opt tu.entries key with
         | Some (addr, r) when addr > !best_addr ->
             best_addr := addr;
             best := Some r
         | Some _ | None -> ())
       t.tuples
   with Exit -> ());
  !best
