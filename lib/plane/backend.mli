(** TupleChain-style software lookup backend over a snapshot image.

    The second lookup engine the data plane races against the TCAM
    emulation (PAPERS.md: TupleChain; the tuple-space idea goes back to
    Srinivasan–Suri–Varghese).  Rules are grouped by their exact ternary
    mask — inside one {e tuple} every rule cares about the same bits, so
    matching degenerates to hashing the masked packet bits.  Tuples are
    probed in descending order of their highest TCAM address with an
    early exit once no remaining tuple can beat the best candidate, which
    preserves the hardware's highest-address-wins answer exactly.

    A backend is compiled from one immutable {!Fr_tcam.Image.t} and holds
    on to it: {!lookup} answers for {e that} snapshot, which is what makes
    cross-validation always well-defined mid-storm — compare against
    [Image.lookup (image backend)], never against the moving table. *)

type t

val of_image : Fr_tcam.Image.t -> t
(** Compile the tuple space.  O(entries) expected time. *)

val image : t -> Fr_tcam.Image.t
(** The snapshot this backend answers for. *)

val lookup : t -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** Semantically identical to [Fr_tcam.Image.lookup (image t)]: the
    entry with the highest address among those matching. *)

val tuple_count : t -> int
(** Distinct masks — the number of hash probes a worst-case lookup
    makes. *)

val entry_count : t -> int
