module Id_set = Fr_tern.Rule.Id_set

type kind = Lru | Fdrc of { admit_after : int }

let kind_to_string = function
  | Lru -> "lru"
  | Fdrc { admit_after } -> Printf.sprintf "fdrc:%d" admit_after

let kind_of_string s =
  match String.lowercase_ascii s with
  | "lru" -> Some Lru
  | "fdrc" -> Some (Fdrc { admit_after = 2 })
  | s when String.length s > 5 && String.sub s 0 5 = "fdrc:" -> (
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some k when k >= 1 -> Some (Fdrc { admit_after = k })
      | _ -> None)
  | _ -> None

type stats = { mutable last_tick : int; mutable hits : int; mutable misses : int }

type t = { kind : kind; table : (int, stats) Hashtbl.t }

let create kind = { kind; table = Hashtbl.create 256 }
let kind t = t.kind

let get t id =
  match Hashtbl.find_opt t.table id with
  | Some s -> s
  | None ->
      let s = { last_tick = 0; hits = 0; misses = 0 } in
      Hashtbl.replace t.table id s;
      s

let touch t ~id ~tick =
  let s = get t id in
  s.last_tick <- tick;
  s.hits <- s.hits + 1

let note_miss t ~id ~tick =
  let s = get t id in
  s.last_tick <- tick;
  s.misses <- s.misses + 1

let should_admit t ~id =
  match t.kind with
  | Lru -> true
  | Fdrc { admit_after } -> (
      match Hashtbl.find_opt t.table id with
      | None -> false
      | Some s -> s.misses >= admit_after)

let score t ~id =
  match Hashtbl.find_opt t.table id with
  | None -> 0.0
  | Some s -> (
      match t.kind with
      | Lru -> float_of_int s.last_tick
      | Fdrc _ -> float_of_int (s.hits + s.misses))

let forget t ~id = Hashtbl.remove t.table id

let victims t ~candidates ~group_of ~protect ~need ~limit =
  (* Coldest-first by the candidate's own score.  A group's effective
     temperature is its hottest member, checked when the group is
     considered; since own-score <= group-score, once the sweep reaches
     candidates at or above [limit] nothing further can qualify. *)
  let order =
    List.sort
      (fun a b -> Float.compare (score t ~id:a) (score t ~id:b))
      candidates
  in
  let chosen = ref Id_set.empty in
  let freed = ref 0 in
  let rec take = function
    | [] -> ()
    | _ when !freed >= need -> ()
    | c :: rest ->
        if score t ~id:c >= limit then ()
        else begin
          (if not (Id_set.mem c !chosen) then
             let group = group_of c in
             let hottest =
               Id_set.fold (fun m acc -> Float.max acc (score t ~id:m)) group 0.0
             in
             if
               hottest < limit
               && Id_set.is_empty (Id_set.inter group protect)
             then begin
               chosen := Id_set.union !chosen group;
               freed := Id_set.cardinal !chosen
             end);
          take rest
        end
  in
  take order;
  if !freed >= need then Some !chosen else None
