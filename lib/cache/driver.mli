(** Zipf-driven cache runs and the cache conformance oracle.

    A run wires the pieces together: a ClassBench-style table becomes
    the {!Backing}, a {!Fr_workload.Zipf.Flows} universe streams packets
    through a {!Tier}, and — in oracle mode — every answer and every
    flush boundary is checked against the full-table semantic scan.
    The check is total: a divergence is impossible to miss because a
    cached hit must name {e exactly} the rule the backing scan names,
    and probes also run mid-eviction (see {!Tier.set_probe_hook}).

    {!run_all} is the acceptance gate: the same spec replayed over all
    five schedulers must come back divergence-free. *)

type spec = {
  kind : Fr_workload.Dataset.kind;
  n : int;  (** backing-table rules *)
  seed : int;
  flows : int;  (** flow-universe size (lazy; millions are fine) *)
  skew : float;  (** Zipf exponent; 0 = uniform *)
  accesses : int;  (** packets to stream *)
  slots : int;  (** cache capacity (logical rules) *)
  shards : int;
  flush_every : int;  (** accesses per maintenance round *)
  policy : Policy.kind;
}

val default_spec : spec
(** ACL4, 800 rules, seed 42, 100k flows at skew 1.1, 4000 accesses,
    128 slots, 2 shards, maintenance every 64, LRU. *)

type divergence = {
  at : int;  (** access index, or the probe's flush boundary *)
  where : string;  (** ["access"], ["probe:mid-eviction"], ... *)
  expected : string;
  got : string;
}

type result = {
  algo : Fr_switch.Firmware.algo_kind;
  spec : spec;
  domains : int;  (** flush executors the tier's service actually used *)
  hits : int;
  misses : int;
  hit_rate : float;
  admitted : int;  (** rules installed by admissions (closures included) *)
  evicted : int;
  admit_skipped : int;
  repairs : int;
  rounds : int;  (** maintenance rounds *)
  probes : int;  (** oracle probes run (0 outside oracle mode) *)
  cached : int;  (** target cached rules at the end *)
  installed : int;
  tcam_ops : int;  (** hardware writes+erases spent on cache churn *)
  hardware_ms : float;  (** modelled TCAM time for that churn *)
  hw_ms_per_access : float;
  hw_ms_per_update : float;  (** hardware cost per admitted+evicted rule *)
  closure_p99 : float;  (** p99 admission-closure size *)
  churn_per_flush : float;  (** mean inserts+deletes per maintenance *)
  wall_ms : float;
  divergences : divergence list;  (** empty = conformant *)
}

val run :
  ?algo:Fr_switch.Firmware.algo_kind ->
  ?domains:int ->
  ?check:bool ->
  ?probes:int ->
  spec ->
  result
(** One tier, one scheduler, one seeded stream.  [check] (default true)
    verifies every hit against the backing scan as it happens; [probes]
    (default 8, oracle mode only) is how many extra packets are probed
    at each flush boundary, half re-drawn from the flow universe and
    half uniformly random.  [check:false] with [probes:0] is bench mode
    — no oracle overhead. *)

val run_all :
  ?domains:int -> ?probes:int -> spec -> result list
(** {!run} with [check:true] for every scheduler in
    {!Fr_switch.Firmware.standard_algos} — the conformance sweep. *)

val pp_result : Format.formatter -> result -> unit
(** Two summary lines: traffic/churn and cost/threshold. *)

val result_json : result -> Fr_ctrl.Telemetry.Json.v
