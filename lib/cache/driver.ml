module Rng = Fr_prng.Rng
module Rule = Fr_tern.Rule
module Header = Fr_tern.Header
module Dataset = Fr_workload.Dataset
module Zipf = Fr_workload.Zipf
module Firmware = Fr_switch.Firmware
module Measure = Fr_switch.Measure
module Ctrl = Fr_ctrl.Service
module Shard = Fr_ctrl.Shard
module Telemetry = Fr_ctrl.Telemetry

type spec = {
  kind : Dataset.kind;
  n : int;
  seed : int;
  flows : int;
  skew : float;
  accesses : int;
  slots : int;
  shards : int;
  flush_every : int;
  policy : Policy.kind;
}

let default_spec =
  {
    kind = Dataset.ACL4;
    n = 800;
    seed = 42;
    flows = 100_000;
    skew = 1.1;
    accesses = 4_000;
    slots = 128;
    shards = 2;
    flush_every = 64;
    policy = Policy.Lru;
  }

type divergence = { at : int; where : string; expected : string; got : string }

type result = {
  algo : Firmware.algo_kind;
  spec : spec;
  domains : int;
  hits : int;
  misses : int;
  hit_rate : float;
  admitted : int;
  evicted : int;
  admit_skipped : int;
  repairs : int;
  rounds : int;
  probes : int;
  cached : int;
  installed : int;
  tcam_ops : int;
  hardware_ms : float;
  hw_ms_per_access : float;
  hw_ms_per_update : float;
  closure_p99 : float;
  churn_per_flush : float;
  wall_ms : float;
  divergences : divergence list;
}

let rule_str = function
  | None -> "none"
  | Some (r : Rule.t) -> Printf.sprintf "#%d p=%d" r.Rule.id r.Rule.priority

let run ?(algo = Firmware.FR_O Fr_sched.Store.Bit_backend) ?domains
    ?(check = true) ?(probes = 8) spec =
  let t0 = Measure.now_ms () in
  let rules = Dataset.generate spec.kind ~seed:spec.seed ~n:spec.n in
  let backing = Backing.of_rules rules in
  let tier =
    Tier.create ~kind:algo ?domains ~shards:spec.shards
      ~flush_every:spec.flush_every ~policy:spec.policy ~slots:spec.slots
      ~backing ()
  in
  let flows =
    Zipf.Flows.create ~rules ~seed:(spec.seed lxor 0x5eed) ~flows:spec.flows
      ~skew:spec.skew
  in
  let divergences = ref [] in
  let probes_run = ref 0 in
  let step = ref 0 in
  let diverge where expected got =
    divergences :=
      { at = !step; where; expected; got } :: !divergences
  in
  let check_answer where pkt answer =
    let full = Backing.lookup backing pkt in
    match (answer, full) with
    | `Hit (r : Rule.t), Some (w : Rule.t) when r.Rule.id = w.Rule.id -> ()
    | `Hit r, full -> diverge where (rule_str full) (rule_str (Some r))
    | `Miss ans, full ->
        (* The miss path *is* the backing scan; this guards the plumbing. *)
        let same =
          match (ans, full) with
          | None, None -> true
          | Some (a : Rule.t), Some (b : Rule.t) -> a.Rule.id = b.Rule.id
          | _ -> false
        in
        if not same then diverge where (rule_str full) (rule_str ans)
  in
  if check && probes > 0 then begin
    let prng = Rng.create ~seed:(spec.seed lxor 0x517cc1b7) in
    Tier.set_probe_hook tier (fun phase ->
        let where =
          match phase with
          | Tier.Mid_eviction -> "probe:mid-eviction"
          | Tier.Settled -> "probe:settled"
        in
        for _ = 1 to probes do
          incr probes_run;
          let pkt =
            if Rng.bool prng then
              Zipf.Flows.packet_of flows (Rng.int prng spec.flows)
            else Header.random_packet prng
          in
          check_answer where pkt (Tier.probe tier pkt)
        done)
  end;
  for i = 1 to spec.accesses do
    step := i;
    let _rank, pkt = Zipf.Flows.next flows in
    let answer = Tier.access tier pkt in
    if check then
      match answer with
      | `Hit _ -> check_answer "access" pkt answer
      | `Miss _ -> ()
  done;
  Tier.maintain tier;
  (match Tier.degraded tier with
  | None -> ()
  | Some why -> diverge "flush" "clean flushes" why);
  let tel = Tier.telemetry tier in
  let svc = Tier.service tier in
  let tcam_ops = ref 0 and hw_ms = ref 0.0 in
  for s = 0 to Ctrl.shards svc - 1 do
    let st = Shard.telemetry (Ctrl.shard svc s) in
    tcam_ops := !tcam_ops + Telemetry.tcam_ops st;
    hw_ms := !hw_ms +. Telemetry.hardware_ms_total st
  done;
  let hits = Telemetry.cache_hits tel and misses = Telemetry.cache_misses tel in
  let admitted = Telemetry.cache_admitted tel in
  let evicted = Telemetry.cache_evicted tel in
  let updates = admitted + evicted in
  {
    algo;
    spec;
    domains = Ctrl.domains svc;
    hits;
    misses;
    hit_rate =
      (if hits + misses = 0 then 0.0
       else float_of_int hits /. float_of_int (hits + misses));
    admitted;
    evicted;
    admit_skipped = Telemetry.cache_admit_skips tel;
    repairs = Telemetry.cache_repairs tel;
    rounds = Tier.rounds tier;
    probes = !probes_run;
    cached = Tier.cached_count tier;
    installed = Tier.installed_count tier;
    tcam_ops = !tcam_ops;
    hardware_ms = !hw_ms;
    hw_ms_per_access =
      (if spec.accesses = 0 then 0.0
       else !hw_ms /. float_of_int spec.accesses);
    hw_ms_per_update =
      (if updates = 0 then 0.0 else !hw_ms /. float_of_int updates);
    closure_p99 = (Telemetry.cache_closure tel).Measure.p99;
    churn_per_flush = (Telemetry.cache_churn tel).Measure.mean;
    wall_ms = Measure.now_ms () -. t0;
    divergences = List.rev !divergences;
  }

let run_all ?domains ?probes spec =
  List.map
    (fun algo -> run ~algo ?domains ~check:true ?probes spec)
    (Firmware.standard_algos Fr_sched.Store.Bit_backend)

let pp_result ppf r =
  Format.fprintf ppf
    "%s/%s: %d accesses @@ skew %.2f, %d slots (%d shard%s, %s): hit %.1f%%  \
     admitted %d  evicted %d  skipped %d  rounds %d@."
    (Dataset.to_string r.spec.kind)
    (Firmware.algo_kind_name r.algo)
    r.spec.accesses r.spec.skew r.spec.slots r.spec.shards
    (if r.spec.shards = 1 then "" else "s")
    (Policy.kind_to_string r.spec.policy)
    (100.0 *. r.hit_rate) r.admitted r.evicted r.admit_skipped r.rounds;
  Format.fprintf ppf
    "  update cost: %d tcam ops, %.1f ms hw (%.3f ms/access, %.3f ms/rule)  \
     closure p99 %.0f  churn/flush %.1f  probes %d  divergences %d@."
    r.tcam_ops r.hardware_ms r.hw_ms_per_access r.hw_ms_per_update
    r.closure_p99 r.churn_per_flush r.probes
    (List.length r.divergences)

let result_json r =
  let open Telemetry.Json in
  Obj
    [
      ("kind", Str (Dataset.to_string r.spec.kind));
      ("algo", Str (Firmware.algo_kind_name r.algo));
      ("n", Int r.spec.n);
      ("seed", Int r.spec.seed);
      ("flows", Int r.spec.flows);
      ("skew", Float r.spec.skew);
      ("accesses", Int r.spec.accesses);
      ("slots", Int r.spec.slots);
      ("shards", Int r.spec.shards);
      ("domains", Int r.domains);
      ("flush_every", Int r.spec.flush_every);
      ("policy", Str (Policy.kind_to_string r.spec.policy));
      ("hits", Int r.hits);
      ("misses", Int r.misses);
      ("hit_rate", Float r.hit_rate);
      ("admitted", Int r.admitted);
      ("evicted", Int r.evicted);
      ("admit_skipped", Int r.admit_skipped);
      ("repairs", Int r.repairs);
      ("rounds", Int r.rounds);
      ("probes", Int r.probes);
      ("cached", Int r.cached);
      ("installed", Int r.installed);
      ("tcam_ops", Int r.tcam_ops);
      ("hardware_ms", Float r.hardware_ms);
      ("hw_ms_per_access", Float r.hw_ms_per_access);
      ("hw_ms_per_update", Float r.hw_ms_per_update);
      ("closure_p99", Float r.closure_p99);
      ("churn_per_flush", Float r.churn_per_flush);
      ("wall_ms", Float r.wall_ms);
      ("divergences", Int (List.length r.divergences));
    ]
