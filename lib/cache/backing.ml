module Rule = Fr_tern.Rule
module Header = Fr_tern.Header
module Graph = Fr_dag.Graph
module Build = Fr_dag.Build
module Topo = Fr_dag.Topo

type t = {
  mutable sorted : Rule.t array;
      (* precedence-descending: scan answers at the first match *)
  by_id : (int, Rule.t) Hashtbl.t;
  graph : Graph.t;
  mutable lookups : int;
}

(* Same tie-break as Agent.semantic_lookup and the compiler: higher
   priority wins, equal priorities go to the lower id. *)
let beats (a : Rule.t) (b : Rule.t) =
  a.Rule.priority > b.Rule.priority
  || (a.Rule.priority = b.Rule.priority && a.Rule.id < b.Rule.id)

let cmp a b = if beats a b then -1 else if beats b a then 1 else 0

let of_rules rules =
  let by_id = Hashtbl.create (max 16 (Array.length rules)) in
  Array.iter
    (fun (r : Rule.t) ->
      if Hashtbl.mem by_id r.Rule.id then
        invalid_arg
          (Printf.sprintf "Backing.of_rules: duplicate id %d" r.Rule.id);
      Hashtbl.replace by_id r.Rule.id r)
    rules;
  let sorted = Array.copy rules in
  Array.sort cmp sorted;
  { sorted; by_id; graph = Build.compile_fast rules; lookups = 0 }

let size t = Hashtbl.length t.by_id
let rule t id = Hashtbl.find_opt t.by_id id
let mem t id = Hashtbl.mem t.by_id id
let rules t = Hashtbl.fold (fun _ r acc -> r :: acc) t.by_id []
let graph t = t.graph

let lookup t pkt =
  t.lookups <- t.lookups + 1;
  let n = Array.length t.sorted in
  let rec scan i =
    if i >= n then None
    else
      let r = t.sorted.(i) in
      if Rule.matches_packet r pkt then Some r else scan (i + 1)
  in
  scan 0

let lookups t = t.lookups

let insert t r =
  if Hashtbl.mem t.by_id r.Rule.id then
    Error (Printf.sprintf "duplicate id %d" r.Rule.id)
  else begin
    Build.insert t.graph ~existing:(rules t) r;
    Hashtbl.replace t.by_id r.Rule.id r;
    let n = Array.length t.sorted in
    let out = Array.make (n + 1) r in
    let j = ref 0 in
    while !j < n && beats t.sorted.(!j) r do incr j done;
    Array.blit t.sorted 0 out 0 !j;
    out.(!j) <- r;
    Array.blit t.sorted !j out (!j + 1) (n - !j);
    t.sorted <- out;
    Ok ()
  end

let remove t id =
  if not (Hashtbl.mem t.by_id id) then Error (Printf.sprintf "unknown id %d" id)
  else begin
    Build.remove ~contract:true t.graph id;
    Hashtbl.remove t.by_id id;
    t.sorted <- Array.of_seq (Seq.filter (fun (r : Rule.t) -> r.Rule.id <> id) (Array.to_seq t.sorted));
    Ok ()
  end

let set_action t id action =
  match Hashtbl.find_opt t.by_id id with
  | None -> Error (Printf.sprintf "unknown id %d" id)
  | Some r ->
      let r' = { r with Rule.action } in
      Hashtbl.replace t.by_id id r';
      Array.iteri
        (fun i (x : Rule.t) -> if x.Rule.id = id then t.sorted.(i) <- r')
        t.sorted;
      Ok ()

let check_known t id fn =
  if not (Hashtbl.mem t.by_id id) then
    invalid_arg (Printf.sprintf "Backing.%s: unknown id %d" fn id)

let admission_closure t id =
  check_known t id "admission_closure";
  Rule.Id_set.add id (Topo.descendants t.graph id)

let eviction_closure t id ~cached =
  check_known t id "eviction_closure";
  Rule.Id_set.add id
    (Rule.Id_set.filter
       (fun a -> Rule.Id_set.mem a cached)
       (Topo.ancestors t.graph id))

let topo_ranks t =
  match Topo.toposort t.graph with
  | None -> invalid_arg "Backing.topo_ranks: graph is cyclic"
  | Some order ->
      let ranks = Hashtbl.create (max 16 (List.length order)) in
      List.iteri (fun i id -> Hashtbl.replace ranks id i) order;
      ranks
