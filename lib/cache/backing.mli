(** The software backing table: the slow path behind the TCAM cache.

    Production switches keep the full policy — far larger than any TCAM
    — in an ordinary software table and answer cache misses from it by a
    priority-ordered scan, exactly the semantics of
    {!Fr_switch.Agent.semantic_lookup}: highest priority wins, ties to
    the lower rule id.  This module is that table, plus the one thing
    the cache tier needs on top of raw lookup: the compiled dependency
    graph of the {e whole} policy, kept incrementally, so admission and
    eviction closures can be answered in time proportional to the
    closure instead of the table.

    Deletions contract the graph ({!Fr_dag.Graph.remove_node} with
    [~contract:true]): two rules ordered only through a removed middle
    rule stay transitively ordered, which is what keeps closure queries
    sound across churn — the property the test suite's churn qcheck
    locks in. *)

type t

val of_rules : Fr_tern.Rule.t array -> t
(** Build the table and compile its dependency graph
    ({!Fr_dag.Build.compile_fast}).
    @raise Invalid_argument on duplicate ids. *)

val size : t -> int
val rule : t -> int -> Fr_tern.Rule.t option
val mem : t -> int -> bool

val rules : t -> Fr_tern.Rule.t list
(** Unspecified order. *)

val graph : t -> Fr_dag.Graph.t
(** The live compiled graph; callers must not mutate it. *)

val lookup : t -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** Semantic scan: the highest-priority matching rule, ties to the lower
    id.  The table is kept precedence-sorted so the scan exits at the
    first match. *)

val lookups : t -> int
(** Lookups served so far (the slow-path load a cache is trying to
    absorb). *)

val insert : t -> Fr_tern.Rule.t -> (unit, string) result
(** Add a rule and its minimal dependency edges
    ({!Fr_dag.Build.insert}). *)

val remove : t -> int -> (unit, string) result
(** Delete a rule; the graph contracts (see the module preamble). *)

val set_action : t -> int -> Fr_tern.Rule.action -> (unit, string) result
(** Rewrite a rule's action in place — never affects ordering, so the
    graph is untouched. *)

(** {1 Closure queries (what the cache tier runs on)} *)

val admission_closure : t -> int -> Fr_tern.Rule.Id_set.t
(** The rule plus every rule it transitively depends on — all
    higher-precedence overlapping rules.  A cache may serve hits for a
    rule only when its whole admission closure is cached; otherwise a
    packet in an overlap would be answered by the wrong (cached,
    lower-precedence) entry.
    @raise Invalid_argument on an unknown id. *)

val eviction_closure : t -> int -> cached:Fr_tern.Rule.Id_set.t -> Fr_tern.Rule.Id_set.t
(** The rule plus every {e cached} rule transitively depending on it —
    the set that must leave together when it leaves, or a surviving
    dependent would shadow traffic its missing dependency should have
    caught.  Removing such an ancestor-closed set from a closure-closed
    cache leaves it closure-closed.
    @raise Invalid_argument on an unknown id. *)

val topo_ranks : t -> (int, int) Hashtbl.t
(** Rank of every rule in one topological order of the current graph:
    dependents strictly before their dependencies.  Submitting evictions
    in ascending rank and admissions in descending rank keeps every
    intra-shard intermediate state dependency-safe.  Recompute after
    mutating the table. *)
