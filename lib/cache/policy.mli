(** Flow-driven admission/eviction policies.

    A policy scores rules by how hot the traffic says they are and picks
    eviction victims when an admission needs room.  It is deliberately
    closure-blind about {e membership} — the tier owns the dependency
    bookkeeping — but closure-{e aware} about cost: victims are chosen
    whole eviction groups at a time, and a group is only as cold as its
    hottest member, so a popular dependent protects the cold dependency
    it relies on.

    Two policies ship:

    - {!Lru}: admit on first miss; victim score is the last-access tick.
      The classic baseline, maximally eager, churns the most.
    - {!Fdrc}: flow-driven rule caching in the spirit of the FDRC line
      of work — admit only after a rule has missed [admit_after] times
      (one-hit wonders never enter), score by access frequency, and
      refuse to evict any group as hot as the rule being admitted (the
      anti-thrash guard: equal-temperature traffic settles instead of
      swapping). *)

type kind = Lru | Fdrc of { admit_after : int }

val kind_to_string : kind -> string
(** ["lru"] or ["fdrc:<admit_after>"] (plain ["fdrc"] means
    [admit_after = 2]). *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}. *)

type t

val create : kind -> t
val kind : t -> kind

val touch : t -> id:int -> tick:int -> unit
(** A cache hit (or any access) on [id] at logical time [tick]. *)

val note_miss : t -> id:int -> tick:int -> unit
(** A miss whose backing answer was [id]. *)

val should_admit : t -> id:int -> bool
(** Consult after {!note_miss}: is [id] hot enough to cache? *)

val score : t -> id:int -> float
(** Hotness (bigger = hotter; 0 for never-seen ids). *)

val forget : t -> id:int -> unit
(** Drop [id]'s state (evicted or deleted). *)

val victims :
  t ->
  candidates:int list ->
  group_of:(int -> Fr_tern.Rule.Id_set.t) ->
  protect:Fr_tern.Rule.Id_set.t ->
  need:int ->
  limit:float ->
  Fr_tern.Rule.Id_set.t option
(** Choose whole eviction groups freeing at least [need] slots.
    [candidates] are the currently cached ids; [group_of] maps a victim
    to its eviction closure (itself plus cached dependents — evicted
    together or not at all); [protect] is the admission closure being
    installed (never evicted); [limit] is the admitted rule's own score
    — groups whose hottest member scores at or above it are off-limits.
    Groups are taken coldest-first.  [None] when the achievable victims
    cannot free [need] slots (the caller should skip the admission). *)
