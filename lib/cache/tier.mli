(** The TCAM cache tier: a bounded {!Fr_ctrl.Service} in front of a
    {!Backing} table.

    {1 Why admission needs closures}

    A TCAM answers with the best match {e it holds}.  If a rule [r] is
    cached while some higher-precedence rule [w] overlapping it is not,
    a packet in the overlap hits [r] in the TCAM and is answered by the
    wrong rule — the miss that would have consulted the backing table
    never happens.  The fix is structural: only ever cache {e admission
    closures} ([r] plus {!Backing.admission_closure} — everything [r]
    transitively depends on), and only ever evict {e eviction closures}
    ([r] plus its cached dependents).  Both keep the cached set closed
    under "depends on", and for a closed set the TCAM's answer provably
    equals the full table's whenever it answers at all:

    if the cache answers [c] but the full table prefers [w], both match
    the packet, so they overlap, so the compiled graph orders [c ->* w];
    closedness puts [w] in the cache, and the TCAM would have preferred
    it — contradiction.

    {1 Update protocol}

    Admissions and evictions are buffered and applied in {e maintenance
    rounds} every [flush_every] accesses, as two service flushes:
    evictions first, then admissions.  Both intermediate states are
    closed — the mid-eviction state is [installed ∩ target], an
    intersection of closed sets — so a probe is safe at {e every} flush
    boundary, which is exactly what the conformance oracle exercises
    (see {!set_probe_hook}).  Within the eviction flush, ops are
    submitted dependents-first ({!Backing.topo_ranks}); admissions
    dependencies-first.

    Capacity is counted in {e logical slots} over the whole service: the
    cached-rule target set never exceeds [slots].  Each shard gets TCAM
    headroom beyond that so the schedulers always have room to move. *)

type t

type phase = Mid_eviction | Settled
(** Where a maintenance round currently stands when the probe hook runs:
    after the eviction flush ([Mid_eviction], only when there were
    evictions) and after the final flush of the round ([Settled]). *)

val create :
  ?kind:Fr_switch.Firmware.algo_kind ->
  ?latency:Fr_tcam.Latency.t ->
  ?domains:int ->
  ?shards:int ->
  ?flush_every:int ->
  ?policy:Policy.kind ->
  slots:int ->
  backing:Backing.t ->
  unit ->
  t
(** Defaults: the service's default scheduler, 1 shard, maintenance
    every 64 accesses, {!Policy.Lru}, [domains] from
    {!Fr_ctrl.Service.default_domains}.  The backing table must outlive
    the tier and must not be mutated while the tier runs (the tier
    caches its topological ranks).
    @raise Invalid_argument if [slots < 1] or [flush_every < 1]. *)

val access : t -> Fr_tern.Header.packet -> [ `Hit of Fr_tern.Rule.t | `Miss of Fr_tern.Rule.t option ]
(** One packet through the tier: TCAM first, backing scan on miss.
    Misses feed the admission policy; every [flush_every] accesses the
    buffered churn is flushed (see the module preamble).  [`Hit r] is
    the cache's answer; [`Miss ans] is the backing table's. *)

val probe : t -> Fr_tern.Header.packet -> [ `Hit of Fr_tern.Rule.t | `Miss of Fr_tern.Rule.t option ]
(** {!access} without consequences: no policy feedback, no admission, no
    hit/miss telemetry, no maintenance.  What the oracle calls. *)

val maintain : t -> unit
(** Force a maintenance round now (no-op when nothing is buffered).
    Call once after the last access so trailing churn reaches the
    hardware. *)

val set_probe_hook : t -> (phase -> unit) -> unit
(** Called at every flush boundary of every maintenance round.  The
    hook may {!probe} freely; it must not {!access} or {!maintain}. *)

(** {1 Observation} *)

val slots : t -> int
val policy : t -> Policy.kind
val backing : t -> Backing.t

val service : t -> Fr_ctrl.Service.t
(** The underlying control-plane service (per-shard telemetry, stats). *)

val cached_count : t -> int
(** Target cached set size (buffered churn included). *)

val installed_count : t -> int
(** Rules physically in the TCAM right now. *)

val is_cached : t -> int -> bool
(** Is the id in the target cached set? *)

val cached_ids : t -> Fr_tern.Rule.Id_set.t
(** The target cached set itself — what the closure invariant is stated
    over ([admission_closure id ⊆ cached_ids] for every member). *)

val telemetry : t -> Fr_ctrl.Telemetry.t
(** Tier-level counters: hits, misses, admissions (with closure sizes),
    evictions, skipped admissions, churn per flush, repairs. *)

val rounds : t -> int
(** Maintenance rounds run. *)

val degraded : t -> string option
(** [Some reason] after an unrepairable flush failure (should not happen
    in a fault-free run; the oracle treats it as a divergence). *)
