module Rule = Fr_tern.Rule
module Id_set = Rule.Id_set
module Agent = Fr_switch.Agent
module Ctrl = Fr_ctrl.Service
module Shard = Fr_ctrl.Shard
module Telemetry = Fr_ctrl.Telemetry

type phase = Mid_eviction | Settled

type t = {
  backing : Backing.t;
  service : Ctrl.t;
  slots : int;
  flush_every : int;
  policy : Policy.t;
  ranks : (int, int) Hashtbl.t;  (* topo rank: dependents rank lower *)
  telemetry : Telemetry.t;
  installed : (int, unit) Hashtbl.t;  (* physically in the TCAM *)
  mutable cached : Id_set.t;  (* target set; always closure-closed *)
  mutable pending_evict : Id_set.t;  (* = installed \ cached *)
  mutable pending_admit : Id_set.t;  (* = cached \ installed *)
  mutable tick : int;
  mutable since_flush : int;
  mutable rounds : int;
  mutable probe_hook : (phase -> unit) option;
  mutable degraded : string option;
}

let create ?kind ?latency ?domains ?(shards = 1) ?(flush_every = 64)
    ?(policy = Policy.Lru) ~slots ~backing () =
  if slots < 1 then invalid_arg "Tier.create: slots must be >= 1";
  if flush_every < 1 then invalid_arg "Tier.create: flush_every must be >= 1";
  (* Slots are a logical budget across the whole service; each shard gets
     TCAM headroom past a worst-case all-on-one-shard load so the
     schedulers never run out of moving room. *)
  let capacity = (2 * slots) + 16 in
  let service =
    Ctrl.create ?kind ?latency ?domains ~shards ~capacity ()
  in
  {
    backing;
    service;
    slots;
    flush_every;
    policy = Policy.create policy;
    ranks = Backing.topo_ranks backing;
    telemetry = Telemetry.create ();
    installed = Hashtbl.create (2 * slots);
    cached = Id_set.empty;
    pending_evict = Id_set.empty;
    pending_admit = Id_set.empty;
    tick = 0;
    since_flush = 0;
    rounds = 0;
    probe_hook = None;
    degraded = None;
  }

let slots t = t.slots
let policy t = Policy.kind t.policy
let backing t = t.backing
let service t = t.service
let cached_count t = Id_set.cardinal t.cached
let installed_count t = Hashtbl.length t.installed
let is_cached t id = Id_set.mem id t.cached
let cached_ids t = t.cached
let telemetry t = t.telemetry
let rounds t = t.rounds
let degraded t = t.degraded
let set_probe_hook t hook = t.probe_hook <- Some hook

(* Best TCAM match across shards.  Within a shard the dependency
   invariant makes the highest-address match the highest-precedence one;
   across shards we compare explicitly (priority, then lower id — the
   same tie-break as the semantic scan). *)
let tcam_lookup t pkt =
  let beats (a : Rule.t) (b : Rule.t) =
    a.Rule.priority > b.Rule.priority
    || (a.Rule.priority = b.Rule.priority && a.Rule.id < b.Rule.id)
  in
  let best = ref None in
  for s = 0 to Ctrl.shards t.service - 1 do
    match Agent.lookup (Shard.agent (Ctrl.shard t.service s)) pkt with
    | None -> ()
    | Some r -> (
        match !best with
        | Some b when beats b r -> ()
        | _ -> best := Some r)
  done;
  !best

let probe t pkt =
  match tcam_lookup t pkt with
  | Some r -> `Hit r
  | None -> `Miss (Backing.lookup t.backing pkt)

(* --- target-set transitions (buffered; hardware untouched) ----------- *)

let evict_id t id =
  t.cached <- Id_set.remove id t.cached;
  if Hashtbl.mem t.installed id then
    t.pending_evict <- Id_set.add id t.pending_evict
  else t.pending_admit <- Id_set.remove id t.pending_admit

let admit_id t id =
  t.cached <- Id_set.add id t.cached;
  if Id_set.mem id t.pending_evict then
    t.pending_evict <- Id_set.remove id t.pending_evict
  else t.pending_admit <- Id_set.add id t.pending_admit

let try_admit t (w : Rule.t) =
  let closure = Backing.admission_closure t.backing w.Rule.id in
  let fresh = Id_set.filter (fun id -> not (Id_set.mem id t.cached)) closure in
  let fresh_n = Id_set.cardinal fresh in
  if fresh_n = 0 then ()
  else if fresh_n > t.slots then
    (* The rule's dependency cone alone exceeds the cache: uncacheable. *)
    Telemetry.record_cache_admit_skip t.telemetry
  else begin
    let need = Id_set.cardinal t.cached + fresh_n - t.slots in
    let victims =
      if need <= 0 then Some Id_set.empty
      else
        Policy.victims t.policy
          ~candidates:(Id_set.elements (Id_set.diff t.cached closure))
          ~group_of:(fun id ->
            Backing.eviction_closure t.backing id ~cached:t.cached)
          ~protect:closure ~need
          ~limit:(Policy.score t.policy ~id:w.Rule.id)
    in
    match victims with
    | None -> Telemetry.record_cache_admit_skip t.telemetry
    | Some vs ->
        Id_set.iter (evict_id t) vs;
        Id_set.iter (admit_id t) fresh;
        Telemetry.record_cache_admission t.telemetry ~rules:fresh_n;
        if not (Id_set.is_empty vs) then
          Telemetry.record_cache_eviction t.telemetry
            ~rules:(Id_set.cardinal vs)
  end

(* --- maintenance ------------------------------------------------------ *)

let rank t id = try Hashtbl.find t.ranks id with Not_found -> max_int
let by_rank t ids = List.sort (fun a b -> compare (rank t a) (rank t b)) ids

let mod_id = function
  | Agent.Add r -> r.Rule.id
  | Agent.Set_action { id; _ } | Agent.Remove { id } -> id

let degrade t phase failures =
  if t.degraded = None && failures <> [] then begin
    let m, why = List.hd failures in
    t.degraded <-
      Some
        (Format.asprintf "%s flush: %a: %s (%d failures)" phase
           Agent.pp_flow_mod m why (List.length failures))
  end

(* Re-drive flush casualties once; Add failures additionally evict the
   cached rules that depended on the missing entry, restoring closure. *)
let repair t phase failures =
  match failures with
  | [] -> []
  | _ ->
      Telemetry.record_cache_repair t.telemetry;
      let retry, dropped =
        List.partition (fun (m, _) -> mod_id m |> Backing.mem t.backing) failures
      in
      List.iter (fun (m, _) -> Ctrl.submit t.service m) retry;
      let rep = Ctrl.flush t.service in
      let still = Ctrl.failures rep in
      degrade t phase (still @ dropped);
      List.map fst still

let run_flush t phase mods =
  List.iter (Ctrl.submit t.service) mods;
  let rep = Ctrl.flush t.service in
  let failed = repair t phase (Ctrl.failures rep) in
  let failed_ids =
    List.fold_left (fun s m -> Id_set.add (mod_id m) s) Id_set.empty failed
  in
  List.iter
    (fun m ->
      let id = mod_id m in
      if not (Id_set.mem id failed_ids) then
        match m with
        | Agent.Add _ -> Hashtbl.replace t.installed id ()
        | Agent.Remove _ -> Hashtbl.remove t.installed id
        | Agent.Set_action _ -> ())
    mods;
  (* An Add that stayed failed leaves a hole: evict its cached dependents
     so the installed set is closed again. *)
  Id_set.iter
    (fun id ->
      if Id_set.mem id t.cached then begin
        let group = Backing.eviction_closure t.backing id ~cached:t.cached in
        Id_set.iter (evict_id t) group
      end)
    failed_ids

let fire t phase = match t.probe_hook with None -> () | Some f -> f phase

let maintain t =
  t.since_flush <- 0;
  if
    not (Id_set.is_empty t.pending_evict && Id_set.is_empty t.pending_admit)
  then begin
    t.rounds <- t.rounds + 1;
    (* Phase 1: evictions, dependents first. *)
    let deletes = by_rank t (Id_set.elements t.pending_evict) in
    t.pending_evict <- Id_set.empty;
    if deletes <> [] then begin
      run_flush t "evict"
        (List.map (fun id -> Agent.Remove { id }) deletes);
      fire t Mid_eviction
    end;
    (* Phase 2: admissions, dependencies first. *)
    let adds = by_rank t (Id_set.elements t.pending_admit) in
    let adds = List.rev adds in
    t.pending_admit <- Id_set.empty;
    if adds <> [] then
      run_flush t "admit"
        (List.filter_map
           (fun id ->
             match Backing.rule t.backing id with
             | Some r -> Some (Agent.Add r)
             | None -> None)
           adds);
    Telemetry.record_cache_flush t.telemetry ~inserts:(List.length adds)
      ~deletes:(List.length deletes);
    fire t Settled
  end

let access t pkt =
  t.tick <- t.tick + 1;
  t.since_flush <- t.since_flush + 1;
  let result =
    match tcam_lookup t pkt with
    | Some r ->
        Telemetry.record_cache_hit t.telemetry;
        Policy.touch t.policy ~id:r.Rule.id ~tick:t.tick;
        `Hit r
    | None ->
        Telemetry.record_cache_miss t.telemetry;
        let ans = Backing.lookup t.backing pkt in
        (match ans with
        | Some w ->
            Policy.note_miss t.policy ~id:w.Rule.id ~tick:t.tick;
            if
              (not (Id_set.mem w.Rule.id t.cached))
              && Policy.should_admit t.policy ~id:w.Rule.id
            then try_admit t w
        | None -> ());
        `Miss ans
  in
  if t.since_flush >= t.flush_every then maintain t;
  result
