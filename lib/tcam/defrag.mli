(** Defragmentation: restore a layout's canonical free-space structure.

    Churn degrades every layout — dirty deletes riddle the packed region
    with holes, the interleaved layout's gaps fill up (§V: "it can
    decrease to c_max if all intermediate spaces are filled"), the
    separated layout's middle pool drifts.  A switch can repair this
    during idle periods by {e defragmenting}: moving entries back to the
    layout's canonical positions.

    [plan] emits a movement sequence that realises the canonical
    placement while {e preserving the entries' relative address order} —
    therefore preserving any dependency order without consulting the
    graph — and that is safe to apply left to right: up-moves are emitted
    top-down first, then down-moves bottom-up, so no op ever lands on an
    occupied slot and no entry ever passes another.  Cost: at most one
    write per out-of-place entry.

    When the TCAM's {!Deadmap} is non-empty, the plan repacks into
    {e canonical-modulo-holes} positions: the per-layout placement rule
    runs over the sequence of writable addresses, so packing steps over
    dead rows (and moves any entry currently stranded on one back onto
    healthy silicon).  Targets remain strictly increasing in entry
    order, so the two-phase ordering and the one-write-per-entry bound
    are unchanged. *)

val plan : Tcam.t -> layout:Layout.t -> Op.t list
(** The (application-order) sequence repacking the TCAM's current entries
    into [layout]'s canonical (modulo dead rows) positions for their
    count.
    @raise Invalid_argument if the entries do not fit under [layout]
    restricted to writable rows. *)

val moves_needed : Tcam.t -> layout:Layout.t -> int
(** [List.length (plan ...)] without building the list: the number of
    out-of-place entries. *)

val is_canonical : Tcam.t -> layout:Layout.t -> bool
