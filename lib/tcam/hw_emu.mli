(** ONetSwitch-style hardware emulation (§VI.1).

    The physical TCAM on ONetSwitch45 holds only [ONS_HW_TABLE_SIZE = 256]
    entries, so the paper emulates large tables by applying each scheduled
    operation at [address mod ONS_HW_TABLE_SIZE] on the real hardware —
    preserving the number and latency of hardware writes while a host-side
    shadow table (our {!Tcam.t}) tracks logical correctness.

    This module reproduces that rig in software: a logical TCAM carries the
    real state, a small "hardware" TCAM receives the modulo-addressed
    writes through [add_entry]/[delete_entry] (the ONetSwitch SDK entry
    points), and the modelled hardware clock advances per call.

    Two emulation realities are surfaced rather than hidden:

    - {e modulo collisions}: two live logical entries can map to the same
      physical slot; each slot tracks every live logical address on it and
      {!collisions}/{!colliding_slots} report the overlap instead of one
      entry silently clobbering the other;
    - {e injected faults}: an optional {!Fault.t} plan makes individual
      SDK calls fail (the call is issued and billed, but neither table
      changes); {!dropped_writes} counts the casualties. *)

type t

val default_hw_table_size : int
(** 256, ONetSwitch45's [ONS_HW_TABLE_SIZE]. *)

val create : ?hw_table_size:int -> ?latency:Latency.t -> logical_size:int -> unit -> t

val logical : t -> Tcam.t
(** The shadow table holding ground truth. *)

val image : t -> Image.t
(** The query face: the logical table's current published snapshot
    ({!Tcam.image}).  Every SDK mutation that reaches the shadow table
    re-derives it, so readers racing [add_entry]/[delete_entry] always
    see a committed-prefix state. *)

val hw_size : t -> int

val add_entry : t -> rule_id:int -> addr:int -> unit
(** SDK [ADDENTRY]: logical write at [addr], hardware write at
    [addr mod hw_table_size].  A write landing on a slot that already
    carries a {e different} live logical address counts a collision. *)

val delete_entry : t -> addr:int -> unit
(** SDK [DELETEENTRY].  Only the logical address being erased leaves its
    physical slot; colliding co-tenants stay live. *)

val apply_sequence : t -> Op.t list -> unit
(** Apply a scheduler sequence (already in application order) through the
    SDK calls, like {!Tcam.apply_sequence}. *)

val hw_calls : t -> int
(** Number of SDK calls issued so far. *)

val elapsed_ms : t -> float
(** Modelled hardware time consumed so far. *)

val collisions : t -> int
(** Lifetime count of writes that landed on a physical slot already
    occupied by a different live logical entry. *)

val colliding_slots : t -> int
(** Physical slots currently shared by more than one live logical
    entry — the lookups the real rig would answer wrongly right now. *)

val set_fault : t -> Fault.t option -> unit
(** Install (or clear) a fault plan consulted before every SDK call. *)

val dropped_writes : t -> int
(** SDK calls dropped by the fault plan (billed but not applied). *)

val reset_meters : t -> unit
(** Resets [hw_calls]/[elapsed_ms]; collision and fault counters are
    lifetime totals and survive. *)
