(** Flow-table layouts (§V).

    Where the free slots live determines how far a displacement chain must
    travel:

    - {e Original}: entries packed at the bottom, all free space on top
      (Fig. 6a) — the layout FR-O runs on.
    - {e Interleaved K}: one free slot after every [K] used slots (Fig. 6b,
      the TreeCAM-style layout); chains stop within [K] steps until the
      local gaps fill up.
    - {e Separated}: entries split into a bottom and a top region with the
      free space pooled in the middle (Fig. 6c–d) — the layout FR-SB /
      FR-SD run on.

    [place] builds the initial TCAM image for a layout from a bottom-to-top
    entry order (the caller supplies an order consistent with the DAG, e.g.
    ascending precedence). *)

type t =
  | Original
  | Interleaved of int  (** gap period K >= 1 *)
  | Separated

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val capacity_needed : t -> n:int -> int
(** Minimum TCAM size able to hold [n] entries under the layout (the
    interleaved layout needs room for its gaps). *)

val place : ?deadmap:Deadmap.t -> t -> tcam_size:int -> order:int array -> Tcam.t
(** [place layout ~tcam_size ~order] writes [order.(0)] lowest ... to a
    fresh TCAM according to the layout:
    - [Original]: addresses [0 .. n-1];
    - [Interleaved k]: address [i + i/k] (a gap after every [k] entries);
    - [Separated]: the lower half of [order] packed at the bottom
      ([0 ..]), the upper half packed against the top, free space between.

    When [deadmap] is given, the fresh TCAM adopts it and the canonical
    positions above index the sequence of {e writable} addresses instead
    of raw addresses, so placement packs around known-dead rows — the
    restart path for a switch re-adopting rules onto degraded hardware.
    @raise Invalid_argument if the entries do not fit on the writable
    rows. *)

type separated_regions = {
  mutable bottom_next : int;
      (** lowest middle-free address: bottom region is [\[0, bottom_next)] *)
  mutable top_next : int;
      (** highest middle-free address: top region is [(top_next, size)] *)
  mutable bottom_count : int;  (** live entries in the bottom region *)
  mutable top_count : int;  (** live entries in the top region *)
}
(** Mutable bookkeeping for the separated layout: which addresses belong to
    which region and how full each is.  Maintained by the separated
    scheduler as entries come and go. *)

val separated_regions_of : Tcam.t -> separated_regions
(** Infer regions from a TCAM image produced by [place Separated]: the
    bottom region ends at the first free address scanning up, the top
    region starts at the first free address scanning down.  Counts are the
    live entries inside each region (holes from dirty deletes are not
    counted). *)

val middle_free : separated_regions -> int
(** Number of addresses in the middle pool, [top_next - bottom_next + 1]
    (may be negative if the regions have met). *)
