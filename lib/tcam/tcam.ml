type slot = Free | Used of int

type t = {
  slots : slot array;
  index : (int, int) Hashtbl.t;  (* rule id -> address *)
  mutable used : int;
  mutable ops : int;
  mutable moves : int;
  mutable dead : Deadmap.t;  (* discovered broken rows; empty on healthy hw *)
  mutable image : Image.t;  (* persistent snapshot, re-derived per op *)
  mutable publisher : (Image.t -> unit) option;
}

let create ~size =
  if size <= 0 then invalid_arg "Tcam.create: size must be positive";
  let dead = Deadmap.create ~size () in
  {
    slots = Array.make size Free;
    index = Hashtbl.create size;
    used = 0;
    ops = 0;
    moves = 0;
    dead;
    image = Image.empty;
    publisher = None;
  }

let image t = t.image
let set_publisher t f = t.publisher <- f

let publish t img =
  t.image <- img;
  match t.publisher with Some f -> f img | None -> ()

let size t = Array.length t.slots
let used_count t = t.used
let free_count t = size t - t.used

let check_addr t addr =
  if addr < 0 || addr >= size t then invalid_arg "Tcam: address out of range"

let read t addr =
  check_addr t addr;
  t.slots.(addr)

let is_free t addr = match read t addr with Free -> true | Used _ -> false

let addr_of t id = Hashtbl.find_opt t.index id
let mem t id = Hashtbl.mem t.index id

let write t ~rule_id ~addr =
  check_addr t addr;
  (match t.slots.(addr) with
  | Used id when id <> rule_id ->
      invalid_arg
        (Printf.sprintf "Tcam.write: address 0x%x already holds entry %d" addr id)
  | Free | Used _ -> ());
  (match Hashtbl.find_opt t.index rule_id with
  | Some old when old <> addr ->
      t.slots.(old) <- Free;
      t.moves <- t.moves + 1;
      t.used <- t.used - 1
  | Some _ | None -> ());
  if t.slots.(addr) = Free then t.used <- t.used + 1;
  t.slots.(addr) <- Used rule_id;
  Hashtbl.replace t.index rule_id addr;
  t.ops <- t.ops + 1;
  (* A write that reached the hardware proves the row works: clear any
     strikes (and revive the row if a spurious mark had condemned it). *)
  if not (Deadmap.is_empty t.dead) then
    ignore (Deadmap.note_success t.dead ~addr);
  publish t (Image.write t.image ~rule_id ~addr)

let erase t ~addr =
  check_addr t addr;
  (match t.slots.(addr) with
  | Used id ->
      Hashtbl.remove t.index id;
      t.used <- t.used - 1
  | Free -> ());
  t.slots.(addr) <- Free;
  t.ops <- t.ops + 1;
  publish t (Image.erase t.image ~addr)

let bind_rule t r = publish t (Image.bind t.image r)
let unbind_rule t ~id = publish t (Image.unbind t.image ~id)

let apply_sequence t ops =
  List.iter
    (function
      | Op.Insert { rule_id; addr } -> write t ~rule_id ~addr
      | Op.Delete { addr } -> erase t ~addr)
    ops

let ops_issued t = t.ops
let moves_issued t = t.moves

let reset_counters t =
  t.ops <- 0;
  t.moves <- 0

let iter_used t f =
  Array.iteri
    (fun addr slot -> match slot with Used id -> f ~addr ~rule_id:id | Free -> ())
    t.slots

let used_ids t =
  let acc = ref [] in
  iter_used t (fun ~addr:_ ~rule_id -> acc := rule_id :: !acc);
  List.rev !acc

let highest_used t =
  let rec go a = if a < 0 then None else match t.slots.(a) with Used _ -> Some a | Free -> go (a - 1) in
  go (size t - 1)

let lowest_free t =
  let n = size t in
  let rec go a = if a >= n then None else match t.slots.(a) with Free -> Some a | Used _ -> go (a + 1) in
  go 0

let lookup t ~rules packet =
  let bits = Fr_tern.Header.packet_bits packet in
  let rec go a =
    if a < 0 then None
    else
      match t.slots.(a) with
      | Used id when Fr_tern.Ternary.matches_value (rules id).Fr_tern.Rule.field bits ->
          Some id
      | Used _ | Free -> go (a - 1)
  in
  go (size t - 1)

let check_dag_order t g =
  let bad = ref None in
  Fr_dag.Graph.iter_nodes g (fun u ->
      match addr_of t u with
      | None -> ()
      | Some au ->
          Fr_dag.Graph.iter_deps g u (fun v ->
              match addr_of t v with
              | None -> ()
              | Some av ->
                  if au >= av && !bad = None then
                    bad :=
                      Some
                        (Printf.sprintf
                           "entry %d at 0x%x must sit below entry %d at 0x%x" u au
                           v av)));
  match !bad with None -> Ok () | Some msg -> Error msg

let deadmap t = t.dead
let is_dead t addr = Deadmap.is_dead t.dead addr
let dead_count t = Deadmap.count t.dead

let note_write_failure t ~addr =
  check_addr t addr;
  Deadmap.note_failure t.dead ~addr

let adopt_deadmap t dead =
  if Deadmap.size dead <> size t then
    invalid_arg "Tcam.adopt_deadmap: size mismatch";
  t.dead <- dead

let writable_free_in t ~lo ~hi =
  let lo = max lo 0 and hi = min hi (size t - 1) in
  let rec go a =
    if a > hi then None
    else if t.slots.(a) = Free && not (Deadmap.is_dead t.dead a) then Some a
    else go (a + 1)
  in
  go lo

(* The persistent image is shared (it is immutable), but the copy never
   publishes: Check.sequence simulates candidate sequences on a copy and
   those phantom states must not reach readers. *)
let copy t =
  {
    slots = Array.copy t.slots;
    index = Hashtbl.copy t.index;
    used = t.used;
    ops = t.ops;
    moves = t.moves;
    dead = Deadmap.copy t.dead;
    image = t.image;
    publisher = None;
  }

let image_consistent t =
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  Array.iteri
    (fun addr slot ->
      match slot with
      | Free -> ()
      | Used id -> (
          match Image.addr_of t.image id with
          | Some a when a = addr -> ()
          | Some a ->
              fail
                (Printf.sprintf "entry %d at 0x%x but image says 0x%x" id addr a)
          | None ->
              fail (Printf.sprintf "entry %d at 0x%x missing from image" id addr)))
    t.slots;
  if Image.entry_count t.image <> t.used then
    fail
      (Printf.sprintf "image holds %d entries but TCAM holds %d"
         (Image.entry_count t.image) t.used);
  match !err with None -> Ok () | Some msg -> Error msg

let pp ppf t =
  for a = size t - 1 downto 0 do
    match t.slots.(a) with
    | Used id -> Format.fprintf ppf "0x%x: %d@." a id
    | Free -> Format.fprintf ppf "0x%x: -@." a
  done
