(* Ascending array of the writable (non-dead) addresses.  On healthy
   hardware [writable.(j) = j] and everything below degenerates to the
   plain canonical placement. *)
let writable_addrs tcam =
  let dead = Tcam.deadmap tcam in
  let n = Tcam.size tcam in
  let out = Array.make (max 1 (n - Deadmap.count dead)) 0 in
  let j = ref 0 in
  for a = 0 to n - 1 do
    if not (Deadmap.is_dead dead a) then begin
      out.(!j) <- a;
      incr j
    end
  done;
  Array.sub out 0 !j

(* Canonical-modulo-holes position of the i-th entry (by current address
   order) out of [n]: the classic per-layout rule applied to the
   sequence of writable addresses instead of raw addresses, so packing
   steps over dead rows.  Targets are strictly increasing in [i], which
   is what makes [plan]'s two-phase ordering safe. *)
let target_position layout ~writable ~n i =
  match layout with
  | Layout.Original -> writable.(i)
  | Layout.Interleaved k ->
      if k < 1 then invalid_arg "Defrag: K must be >= 1"
      else writable.(i + (i / k))
  | Layout.Separated ->
      let bottom = n / 2 in
      if i < bottom then writable.(i)
      else writable.(Array.length writable - (n - i))

let placements tcam layout =
  let n = Tcam.used_count tcam in
  let writable = writable_addrs tcam in
  if Layout.capacity_needed layout ~n > Array.length writable then
    invalid_arg "Defrag: entries do not fit under the target layout";
  let out = ref [] in
  let i = ref 0 in
  Tcam.iter_used tcam (fun ~addr ~rule_id ->
      let target = target_position layout ~writable ~n !i in
      incr i;
      if target <> addr then out := (rule_id, addr, target) :: !out);
  List.rev !out

(* Up-moves top-down, then down-moves bottom-up: with monotone targets this
   never collides and never lets one entry pass another (see .mli). *)
let plan tcam ~layout =
  let moving = placements tcam layout in
  let ups = List.filter (fun (_, cur, tgt) -> tgt > cur) moving in
  let downs = List.filter (fun (_, cur, tgt) -> tgt < cur) moving in
  let up_ops =
    List.rev_map (fun (id, _, tgt) -> Op.insert ~rule_id:id ~addr:tgt) ups
  in
  let down_ops =
    List.map (fun (id, _, tgt) -> Op.insert ~rule_id:id ~addr:tgt) downs
  in
  up_ops @ down_ops

let moves_needed tcam ~layout = List.length (placements tcam layout)

let is_canonical tcam ~layout = moves_needed tcam ~layout = 0
