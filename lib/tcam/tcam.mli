(** The TCAM model: an addressed array of flow-entry slots where lookups
    return the matching entry with the {e highest} physical address (§II).

    The model stores rule ids, not rule payloads; pair it with a rule store
    for semantic lookups.  It keeps an id->address index, counts every
    hardware write (the quantity that, times the per-write latency, gives
    the paper's "TCAM update time"), and can check the dependency-order
    invariant against a DAG. *)

type slot = Free | Used of int  (** rule id *)

type t

val create : size:int -> t
(** All slots free, with a fresh empty {!Deadmap} attached (use
    {!adopt_deadmap} when a restarting switch should keep what it
    learnt about its hardware). *)

val size : t -> int
val used_count : t -> int
val free_count : t -> int

val read : t -> int -> slot
(** @raise Invalid_argument if the address is out of range. *)

val is_free : t -> int -> bool

val addr_of : t -> int -> int option
(** Current address of a rule id, if present. *)

val mem : t -> int -> bool

val write : t -> rule_id:int -> addr:int -> unit
(** Raw hardware write of an entry at an address.  If the id already lives
    at another address, that slot is freed (a movement).  Overwriting a slot
    occupied by a {e different} id is refused — schedulers must order their
    sequences so this never happens (see {!apply_sequence}).
    @raise Invalid_argument on clobbering or out-of-range address. *)

val erase : t -> addr:int -> unit
(** Raw hardware erase.  Freeing a free slot is allowed (counts as an op —
    the firmware did issue it). *)

val apply_sequence : t -> Op.t list -> unit
(** Apply an update sequence left to right.  Schedulers return sequences in
    {e application order} (see {!Fr_sched.Algo} once linked): for an insert
    chain the op landing in free space comes first, so each write happens
    before its source slot is reused and every intermediate hardware state
    is lookup-safe. *)

val ops_issued : t -> int
(** Lifetime count of hardware writes + erases. *)

val moves_issued : t -> int
(** Lifetime count of writes that re-positioned an existing entry. *)

val reset_counters : t -> unit

val iter_used : t -> (addr:int -> rule_id:int -> unit) -> unit
(** Ascending address order. *)

val used_ids : t -> int list

val highest_used : t -> int option
val lowest_free : t -> int option
(** Linear scans; convenience for tests and layout setup. *)

val lookup : t -> rules:(int -> Fr_tern.Rule.t) -> Fr_tern.Header.packet -> int option
(** Highest-address matching entry, as the hardware would answer.  [rules]
    maps a stored id to its payload. *)

val check_dag_order : t -> Fr_dag.Graph.t -> (unit, string) result
(** For every edge [u -> v] with both entries present: [addr u < addr v].
    The central correctness invariant (DESIGN.md §6.1). *)

val deadmap : t -> Deadmap.t
(** The attached dead-row map.  {!write} reports successes to it
    automatically; failures never reach the [Tcam], so the fault-aware
    drivers ([Hw_emu], [Fr_switch.Agent]) report them via
    {!note_write_failure}. *)

val is_dead : t -> int -> bool
(** [Deadmap.is_dead (deadmap t)] — the query every scheduler's
    candidate-slot search asks. *)

val dead_count : t -> int

val note_write_failure : t -> addr:int -> bool
(** Record a failed hardware write at [addr]; returns [true] when the
    row was newly declared dead (see {!Deadmap.note_failure}). *)

val adopt_deadmap : t -> Deadmap.t -> unit
(** Replace the attached map (restart paths carry hardware knowledge
    across re-adoption).  @raise Invalid_argument on size mismatch. *)

val writable_free_in : t -> lo:int -> hi:int -> int option
(** Lowest free, non-dead address in [\[lo, hi\]] (clamped), if any. *)

val image : t -> Image.t
(** The current published snapshot.  Re-derived (persistently, O(log n))
    by every {!write} / {!erase} / {!bind_rule} / {!unbind_rule}, so it
    always reflects exactly the committed ops — a reader holding it sees
    a consistent table even while a cascade is mid-flight. *)

val set_publisher : t -> (Image.t -> unit) option -> unit
(** Install the publication hook: called with the fresh image after every
    op that changes it.  {!Fr_switch.Agent} points this at an [Atomic.t]
    so concurrent readers pick up each committed step with one atomic
    load ({i the} epoch/RCU pointer swap). *)

val bind_rule : t -> Fr_tern.Rule.t -> unit
(** Attach a rule payload to the image (and publish).  Bound {e before}
    the insertion sequence commits so every mid-cascade snapshot can
    resolve the id it is about to see. *)

val unbind_rule : t -> id:int -> unit
(** Detach a payload (and publish), after a removal commits. *)

val image_consistent : t -> (unit, string) result
(** Cross-check the mutable slot array against the persistent image:
    same entries at the same addresses, nothing extra on either side.
    {!Fr_sched.Check.sequence} runs this after every simulated op, so a
    verified sequence proves each publication point is coherent. *)

val copy : t -> t
(** Deep copy, including an independent copy of the dead map.  The
    persistent image is shared (it is immutable) but the copy's publisher
    is [None]: simulation copies must never publish phantom states. *)

val pp : Format.formatter -> t -> unit
