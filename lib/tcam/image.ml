module Imap = Map.Make (Int)
module Rule = Fr_tern.Rule

type t = {
  slots : int Imap.t;  (* addr -> rule id *)
  addrs : int Imap.t;  (* rule id -> addr *)
  rules : Rule.t Imap.t;  (* rule id -> payload *)
  epoch : int;
}

let empty = { slots = Imap.empty; addrs = Imap.empty; rules = Imap.empty; epoch = 0 }
let epoch t = t.epoch
let entry_count t = Imap.cardinal t.slots

let write t ~rule_id ~addr =
  (* Mirror Tcam.write's one-call move: vacate the id's previous slot. *)
  let slots =
    match Imap.find_opt rule_id t.addrs with
    | Some old when old <> addr -> Imap.remove old t.slots
    | Some _ | None -> t.slots
  in
  (* Displacing a different id is refused by Tcam.write before the image
     ever sees it, but keep the index coherent if driven directly. *)
  let addrs =
    match Imap.find_opt addr slots with
    | Some id when id <> rule_id -> Imap.remove id t.addrs
    | Some _ | None -> t.addrs
  in
  {
    t with
    slots = Imap.add addr rule_id slots;
    addrs = Imap.add rule_id addr addrs;
    epoch = t.epoch + 1;
  }

let erase t ~addr =
  match Imap.find_opt addr t.slots with
  | None -> { t with epoch = t.epoch + 1 }
  | Some id ->
      {
        t with
        slots = Imap.remove addr t.slots;
        addrs = Imap.remove id t.addrs;
        epoch = t.epoch + 1;
      }

let bind t (r : Rule.t) =
  { t with rules = Imap.add r.Rule.id r t.rules; epoch = t.epoch + 1 }

let unbind t ~id = { t with rules = Imap.remove id t.rules; epoch = t.epoch + 1 }
let addr_of t id = Imap.find_opt id t.addrs
let rule t id = Imap.find_opt id t.rules
let mem t id = Imap.mem id t.addrs

let lookup t packet =
  let bits = Fr_tern.Header.packet_bits packet in
  let rec go seq =
    match seq () with
    | Seq.Nil -> None
    | Seq.Cons ((_addr, id), rest) -> (
        match Imap.find_opt id t.rules with
        | Some r when Fr_tern.Ternary.matches_value r.Rule.field bits -> Some r
        | Some _ | None -> go rest)
  in
  go (Imap.to_rev_seq t.slots)

let lookup_id t packet =
  match lookup t packet with Some r -> Some r.Rule.id | None -> None

let fold t ~init ~f =
  Imap.fold (fun addr rule_id acc -> f acc ~addr ~rule_id) t.slots init

let iter t f = Imap.iter (fun addr rule_id -> f ~addr ~rule_id) t.slots

let entries t =
  Imap.fold
    (fun addr id acc ->
      match Imap.find_opt id t.rules with
      | Some r -> (addr, r) :: acc
      | None -> acc)
    t.slots []
  |> List.rev |> Array.of_list

let pp ppf t =
  Format.fprintf ppf "epoch %d, %d entries@." t.epoch (entry_count t);
  Imap.iter (fun addr id -> Format.fprintf ppf "0x%x: %d@." addr id) t.slots
