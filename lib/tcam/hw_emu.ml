type t = {
  logical : Tcam.t;
  hw_table_size : int;
  latency : Latency.t;
  (* The physical TCAM image under modulo addressing.  Distinct logical
     entries can collide on a hardware slot; each slot tracks every live
     logical address mapped onto it (most recent writer first) so
     collisions are detected instead of silently clobbering. *)
  hw_slots : int list array;
  mutable calls : int;
  mutable clock_ms : float;
  mutable collisions : int;
  mutable dropped : int;
  mutable fault : Fault.t option;
}

let default_hw_table_size = 256

let create ?(hw_table_size = default_hw_table_size) ?(latency = Latency.default)
    ~logical_size () =
  if hw_table_size <= 0 then invalid_arg "Hw_emu.create: hw_table_size must be positive";
  {
    logical = Tcam.create ~size:logical_size;
    hw_table_size;
    latency;
    hw_slots = Array.make hw_table_size [];
    calls = 0;
    clock_ms = 0.0;
    collisions = 0;
    dropped = 0;
    fault = None;
  }

let logical t = t.logical
let image t = Tcam.image t.logical
let hw_size t = t.hw_table_size
let set_fault t f = t.fault <- f

let faulted t ~decide ~addr =
  match t.fault with
  | None -> false
  | Some f ->
      if decide f ~addr then begin
        (* The SDK call was issued and errored: it costs a call and its
           latency but leaves both tables untouched. *)
        t.dropped <- t.dropped + 1;
        true
      end
      else false

(* Latency faults bill every hardware call, successful or not: a slow
   bus is slow regardless of the outcome. *)
let bill_slow t =
  match t.fault with
  | Some f -> t.clock_ms <- t.clock_ms +. Fault.slow_ms f
  | None -> ()

let add_entry t ~rule_id ~addr =
  t.calls <- t.calls + 1;
  t.clock_ms <- t.clock_ms +. t.latency.Latency.write_ms;
  bill_slow t;
  if faulted t ~decide:Fault.should_fail ~addr then
    (* Write-failure feedback: the firmware learns which rows are bad. *)
    ignore (Tcam.note_write_failure t.logical ~addr)
  else begin
    Tcam.write t.logical ~rule_id ~addr;
    let slot = addr mod t.hw_table_size in
    let live = List.filter (fun a -> a <> addr) t.hw_slots.(slot) in
    if live <> [] then t.collisions <- t.collisions + 1;
    t.hw_slots.(slot) <- addr :: live
  end

let delete_entry t ~addr =
  t.calls <- t.calls + 1;
  t.clock_ms <- t.clock_ms +. t.latency.Latency.erase_ms;
  bill_slow t;
  (* Erases use the valid-bit path: stuck rows still invalidate. *)
  if not (faulted t ~decide:Fault.should_fail_erase ~addr) then begin
    Tcam.erase t.logical ~addr;
    let slot = addr mod t.hw_table_size in
    t.hw_slots.(slot) <- List.filter (fun a -> a <> addr) t.hw_slots.(slot)
  end

let apply_sequence t ops =
  List.iter
    (function
      | Op.Insert { rule_id; addr } -> add_entry t ~rule_id ~addr
      | Op.Delete { addr } -> delete_entry t ~addr)
    ops

let hw_calls t = t.calls
let elapsed_ms t = t.clock_ms
let collisions t = t.collisions

let colliding_slots t =
  Array.fold_left
    (fun acc live -> if List.length live > 1 then acc + 1 else acc)
    0 t.hw_slots

let dropped_writes t = t.dropped

let reset_meters t =
  t.calls <- 0;
  t.clock_ms <- 0.0
