module Rng = Fr_prng.Rng

type t = {
  rng : Rng.t;
  fail_prob : float;
  stuck : (int, unit) Hashtbl.t;
  mutable remaining : int;  (* spontaneous failures left; -1 = unlimited *)
  mutable injected : int;
}

let create ?(fail_prob = 0.0) ?(stuck = []) ?max_failures ~seed () =
  if fail_prob < 0.0 || fail_prob > 1.0 then
    invalid_arg "Fault.create: fail_prob must be in [0, 1]";
  let tbl = Hashtbl.create (max 1 (List.length stuck)) in
  List.iter (fun a -> Hashtbl.replace tbl a ()) stuck;
  {
    rng = Rng.create ~seed;
    fail_prob;
    stuck = tbl;
    remaining = Option.value max_failures ~default:(-1);
    injected = 0;
  }

let should_fail t ~addr =
  if Hashtbl.mem t.stuck addr then begin
    t.injected <- t.injected + 1;
    true
  end
  else if
    t.fail_prob > 0.0 && t.remaining <> 0 && Rng.chance t.rng t.fail_prob
  then begin
    t.injected <- t.injected + 1;
    if t.remaining > 0 then t.remaining <- t.remaining - 1;
    true
  end
  else false

let injected t = t.injected
let stuck_slots t = Hashtbl.fold (fun a () acc -> a :: acc) t.stuck []

let pp ppf t =
  Format.fprintf ppf "fault(p=%g, stuck=%d, injected=%d)" t.fail_prob
    (Hashtbl.length t.stuck) t.injected
