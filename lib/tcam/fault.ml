module Rng = Fr_prng.Rng

type t = {
  rng : Rng.t;
  fail_prob : float;
  stuck : (int, unit) Hashtbl.t;
  slow_ms : float;  (* extra modelled latency per hardware op *)
  mutable remaining : int;  (* spontaneous failures left; -1 = unlimited *)
  mutable injected : int;
}

let create ?(fail_prob = 0.0) ?(stuck = []) ?max_failures ?(slow_ms = 0.0)
    ~seed () =
  if fail_prob < 0.0 || fail_prob > 1.0 then
    invalid_arg "Fault.create: fail_prob must be in [0, 1]";
  if slow_ms < 0.0 then invalid_arg "Fault.create: slow_ms must be >= 0";
  let tbl = Hashtbl.create (max 1 (List.length stuck)) in
  List.iter (fun a -> Hashtbl.replace tbl a ()) stuck;
  {
    rng = Rng.create ~seed;
    fail_prob;
    stuck = tbl;
    slow_ms;
    remaining = Option.value max_failures ~default:(-1);
    injected = 0;
  }

let slow_ms t = t.slow_ms

let spontaneous t =
  if t.fail_prob > 0.0 && t.remaining <> 0 && Rng.chance t.rng t.fail_prob
  then begin
    t.injected <- t.injected + 1;
    if t.remaining > 0 then t.remaining <- t.remaining - 1;
    true
  end
  else false

let should_fail t ~addr =
  if Hashtbl.mem t.stuck addr then begin
    t.injected <- t.injected + 1;
    true
  end
  else spontaneous t

(* Stuck-at-write rows still invalidate (the valid bit clears even when
   the content cells are broken), so erases only suffer the spontaneous
   fault tier.  [addr] is kept for interface symmetry. *)
let should_fail_erase t ~addr:_ = spontaneous t

let is_stuck t ~addr = Hashtbl.mem t.stuck addr

type spec = {
  fail_prob : float;
  stuck : int list;
  max_failures : int option;
  slow_ms : float;
}

let of_spec { fail_prob; stuck; max_failures; slow_ms } ~seed =
  create ~fail_prob ~stuck ?max_failures ~slow_ms ~seed ()

let spec_to_string { fail_prob; stuck; max_failures; slow_ms } =
  String.concat ","
    (Printf.sprintf "p=%g" fail_prob
     :: (match stuck with
        | [] -> []
        | l -> [ "stuck=" ^ String.concat "+" (List.map string_of_int l) ])
    @ (match max_failures with Some m -> [ Printf.sprintf "max=%d" m ] | None -> [])
    @ if slow_ms > 0.0 then [ Printf.sprintf "slow=%g" slow_ms ] else [])

(* "p=0.5,stuck=3+9,max=4,slow=2.5" — every key optional, order free. *)
let spec_of_string s =
  let parts = String.split_on_char ',' s |> List.filter (fun p -> p <> "") in
  let seen = Hashtbl.create 4 in
  let rec go acc = function
    | [] -> Ok acc
    | part :: rest -> (
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "fault spec: expected key=value, got %S" part)
        | Some i -> (
            let key = String.sub part 0 i in
            let value = String.sub part (i + 1) (String.length part - i - 1) in
            if Hashtbl.mem seen key then
              Error (Printf.sprintf "fault spec: duplicate key %S" key)
            else begin
              Hashtbl.replace seen key ();
              match key with
            | "p" -> (
                match float_of_string_opt value with
                | Some p when p >= 0.0 && p <= 1.0 ->
                    go { acc with fail_prob = p } rest
                | _ -> Error (Printf.sprintf "fault spec: bad probability %S" value))
            | "stuck" -> (
                let addrs =
                  String.split_on_char '+' value
                  |> List.filter (fun a -> a <> "")
                  |> List.map int_of_string_opt
                in
                if List.exists Option.is_none addrs then
                  Error (Printf.sprintf "fault spec: bad stuck list %S" value)
                else
                  go { acc with stuck = List.filter_map Fun.id addrs } rest)
            | "max" -> (
                match int_of_string_opt value with
                | Some m when m >= 0 -> go { acc with max_failures = Some m } rest
                | _ -> Error (Printf.sprintf "fault spec: bad max %S" value))
            | "slow" -> (
                match float_of_string_opt value with
                | Some ms when ms >= 0.0 -> go { acc with slow_ms = ms } rest
                | _ -> Error (Printf.sprintf "fault spec: bad slow %S" value))
            | k -> Error (Printf.sprintf "fault spec: unknown key %S" k)
            end))
  in
  go { fail_prob = 0.0; stuck = []; max_failures = None; slow_ms = 0.0 } parts

let injected t = t.injected
let stuck_slots (t : t) = Hashtbl.fold (fun a () acc -> a :: acc) t.stuck []

let pp ppf (t : t) =
  Format.fprintf ppf "fault(p=%g, stuck=%d, injected=%d)" t.fail_prob
    (Hashtbl.length t.stuck) t.injected
