(** Discovered dead TCAM rows — the switch's persistent memory of which
    addresses reject writes.

    Real TCAMs ship with (and accumulate) stuck cells.  The schedulers
    cannot see a {!Fault} plan — faults model the hardware, not the
    firmware's knowledge of it — so the firmware learns the hard way:
    every failed hardware {e write} is reported here ({!note_failure}),
    and after [threshold] consecutive failures at the same address the
    row is declared dead.  Every successful write at an address clears
    it again ({!note_success}) — rows can heal, and a probe drill uses
    the same entry point when it finds recovered hardware.

    The failure mode modelled is {e stuck-at-write}: a dead row rejects
    new content, but its valid bit still clears, so entries can always
    be {e moved out} of a dead row and erases still succeed (see
    {!Fault.should_fail_erase}).  Consumers therefore only need to keep
    write targets off dead rows; occupied dead rows are immovable
    obstacles whose entries remain readable.

    The map is advisory: {!Tcam.write} is not gated on it.  Spurious
    marks (a spontaneous bus error, not a broken row) are harmless —
    the row is avoided until the next successful write or probe clears
    it. *)

type t

val create : ?threshold:int -> size:int -> unit -> t
(** [threshold] (default 1) is the number of {e consecutive} write
    failures at an address before it is declared dead.
    @raise Invalid_argument if [size <= 0] or [threshold < 1]. *)

val size : t -> int
val threshold : t -> int

val count : t -> int
(** Number of addresses currently marked dead. *)

val is_empty : t -> bool
(** No dead rows {e and} no pending strikes — the fast-path guard
    consumers use to skip dead-awareness entirely on healthy
    hardware. *)

val is_dead : t -> int -> bool
(** @raise Invalid_argument if the address is out of range. *)

val note_failure : t -> addr:int -> bool
(** Record one failed write at [addr].  Returns [true] when this
    failure crossed the threshold and the row was newly marked dead. *)

val note_success : t -> addr:int -> bool
(** Record one successful write at [addr]: resets its strike count and
    revives the row if it was marked dead.  Returns [true] when a dead
    row was revived. *)

val mark : t -> addr:int -> bool
(** Unconditionally mark [addr] dead (tests, pre-known bad banks).
    Returns [true] if the row was not already dead. *)

val clear : t -> unit
(** Forget everything — all rows healthy, all strikes erased. *)

val dead_list : t -> int list
(** Dead addresses in ascending order. *)

val iter_dead : t -> (int -> unit) -> unit
(** Ascending address order. *)

val intervals : t -> (int * int) list
(** Maximal runs of dead addresses as inclusive [(lo, hi)] pairs,
    ascending — the hole view the defrag planner packs around. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
