(** Immutable snapshot of the TCAM: the query face of the mutation/query
    split (ROADMAP item #1).

    An [Image.t] is a persistent value — address map, id index and rule
    payloads are balanced-tree maps, so deriving the next image from the
    previous one after a single hardware op is O(log n) and shares almost
    the whole structure with its predecessor.  Publishing a snapshot is
    therefore a pointer swap, never a copy: a {!Tcam.t} republishes after
    every committed op, readers grab the current image with one atomic
    load and keep using it for as long as they like.  Readers are
    wait-free (they never block a writer, a writer never blocks them) and
    always see a table some committed prefix of the update sequence
    produced — never a half-applied move.

    The image carries rule {e payloads} as well as placements, so
    [lookup] is self-contained: a reader domain needs no access to the
    agent's mutable rule store.  Payloads are bound before an insertion
    sequence commits and unbound after a removal commits, so every id a
    slot names resolves. *)

type t

val empty : t
(** No entries, no payloads, epoch 0. *)

val epoch : t -> int
(** Strictly increases with every derived image ([write], [erase],
    [bind], [unbind]); readers can use it to detect publication. *)

val entry_count : t -> int
(** Occupied slots. *)

val write : t -> rule_id:int -> addr:int -> t
(** The image after a hardware write: [rule_id] now lives at [addr]; if
    it lived elsewhere, that slot is free (a movement, mirroring
    {!Tcam.write}'s one-call move semantics). *)

val erase : t -> addr:int -> t
(** The image after a hardware erase (erasing a free slot only bumps the
    epoch). *)

val bind : t -> Fr_tern.Rule.t -> t
(** Attach (or replace) the payload for a rule id. *)

val unbind : t -> id:int -> t
(** Detach a payload (after the entry has left the slots). *)

val addr_of : t -> int -> int option
val rule : t -> int -> Fr_tern.Rule.t option
val mem : t -> int -> bool

val lookup : t -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** Highest-address matching entry, exactly as the TCAM hardware answers
    (descending address scan).  Slots whose payload is not bound are
    skipped — with the agent's bind-before-insert / unbind-after-remove
    protocol this never happens, but a detached image stays total. *)

val lookup_id : t -> Fr_tern.Header.packet -> int option
(** [lookup] returning the winning rule id. *)

val fold : t -> init:'a -> f:('a -> addr:int -> rule_id:int -> 'a) -> 'a
(** Ascending address order over occupied slots. *)

val iter : t -> (addr:int -> rule_id:int -> unit) -> unit

val entries : t -> (int * Fr_tern.Rule.t) array
(** Occupied slots with bound payloads, ascending address — the input a
    software lookup backend compiles. *)

val pp : Format.formatter -> t -> unit
