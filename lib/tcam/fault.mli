(** Hardware-write fault plans — the injection half of the conformance
    harness ([Fr_conform]).

    A plan decides, per attempted hardware write/erase, whether the
    operation is made to fail: either the target address is {e stuck}
    (every write fails, modelling a broken TCAM row — erases still
    succeed, see {!should_fail_erase}) or the operation fails
    spontaneously with probability [fail_prob] (modelling flaky SDK
    calls / bus errors).  Decisions are drawn from a dedicated seeded
    {!Fr_prng.Rng.t}, so a faulty run replays exactly.

    Consumers ({!Hw_emu}, [Fr_switch.Agent]) ask {!should_fail} before
    each raw operation and leave the hardware untouched when it answers
    [true]; the plan counts every injected failure so tests can assert
    how much damage was actually dealt. *)

type t

val create :
  ?fail_prob:float ->
  ?stuck:int list ->
  ?max_failures:int ->
  ?slow_ms:float ->
  seed:int ->
  unit ->
  t
(** [fail_prob] (default 0) is the per-operation spontaneous failure
    probability; [stuck] addresses always fail; [max_failures] caps the
    number of {e spontaneous} failures injected (stuck slots keep
    failing — hardware does not heal), default unlimited; [slow_ms]
    (default 0) is extra modelled latency billed per hardware operation
    — a latency fault: the op still succeeds, it just takes longer.
    @raise Invalid_argument if [fail_prob] is outside [\[0, 1\]] or
    [slow_ms] is negative. *)

type spec = {
  fail_prob : float;
  stuck : int list;
  max_failures : int option;
  slow_ms : float;
}
(** A plan's shape without its PRNG — the serialisable half, so fault
    plans can cross the CLI/bench boundary as strings. *)

val of_spec : spec -> seed:int -> t
(** @raise Invalid_argument as {!create}. *)

val spec_to_string : spec -> string
(** ["p=0.1,stuck=3+9,max=4,slow=2.5"] (keys with default values
    omitted). *)

val spec_of_string : string -> (spec, string) result
(** Parse the {!spec_to_string} form; every key is optional and order is
    free ([p] in [\[0,1\]], [stuck] a [+]-separated address list, [max]
    a non-negative failure budget, [slow] a non-negative latency in
    ms).  Repeating a key is rejected rather than silently taking the
    last occurrence. *)

val should_fail : t -> addr:int -> bool
(** One decision for one attempted {e write} at [addr].  Advances the
    plan's PRNG; counts the failure when it answers [true]. *)

val should_fail_erase : t -> addr:int -> bool
(** One decision for one attempted {e erase} at [addr].  Stuck rows
    model stuck-at-write cells whose valid bit still clears, so erases
    only suffer the spontaneous [fail_prob] tier (drawn from the same
    PRNG stream as writes). *)

val is_stuck : t -> addr:int -> bool
(** Whether [addr] is in the plan's stuck set — the probe-drill query:
    it draws nothing from the PRNG and counts nothing, it just answers
    whether a write there would still be doomed. *)

val slow_ms : t -> float
(** Extra modelled latency billed per hardware operation (0 when the
    plan carries no latency fault). *)

val injected : t -> int
(** Failures injected so far (stuck hits included). *)

val stuck_slots : t -> int list

val pp : Format.formatter -> t -> unit
