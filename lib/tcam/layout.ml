type t = Original | Interleaved of int | Separated

let to_string = function
  | Original -> "original"
  | Interleaved k -> Printf.sprintf "interleaved-%d" k
  | Separated -> "separated"

let pp ppf l = Format.pp_print_string ppf (to_string l)

let capacity_needed layout ~n =
  match layout with
  | Original | Separated -> n
  | Interleaved k ->
      if k < 1 then invalid_arg "Layout.capacity_needed: K must be >= 1";
      n + ((n + k - 1) / k)

let place ?deadmap layout ~tcam_size ~order =
  let n = Array.length order in
  let tcam = Tcam.create ~size:tcam_size in
  (match deadmap with
  | Some d -> Tcam.adopt_deadmap tcam d
  | None -> ());
  (* Canonical positions index the sequence of writable addresses, so a
     switch re-adopting rules onto partially dead hardware packs around
     the holes it already knows about (identity on healthy hardware). *)
  let writable =
    let dead = Tcam.deadmap tcam in
    let out = Array.make (max 1 (tcam_size - Deadmap.count dead)) 0 in
    let j = ref 0 in
    for a = 0 to tcam_size - 1 do
      if not (Deadmap.is_dead dead a) then begin
        out.(!j) <- a;
        incr j
      end
    done;
    Array.sub out 0 !j
  in
  let w = Array.length writable in
  if capacity_needed layout ~n > w then
    invalid_arg "Layout.place: entries do not fit in the TCAM";
  (match layout with
  | Original ->
      Array.iteri (fun i id -> Tcam.write tcam ~rule_id:id ~addr:writable.(i)) order
  | Interleaved k ->
      if k < 1 then invalid_arg "Layout.place: K must be >= 1";
      Array.iteri
        (fun i id -> Tcam.write tcam ~rule_id:id ~addr:writable.(i + (i / k)))
        order
  | Separated ->
      let bottom = n / 2 in
      Array.iteri
        (fun i id ->
          let addr =
            if i < bottom then writable.(i) else writable.(w - (n - i))
          in
          Tcam.write tcam ~rule_id:id ~addr)
        order);
  Tcam.reset_counters tcam;
  tcam

type separated_regions = {
  mutable bottom_next : int;
  mutable top_next : int;
  mutable bottom_count : int;
  mutable top_count : int;
}

let separated_regions_of tcam =
  let sz = Tcam.size tcam in
  let bottom_next = ref 0 in
  while !bottom_next < sz && not (Tcam.is_free tcam !bottom_next) do
    incr bottom_next
  done;
  let top_next = ref (sz - 1) in
  while !top_next >= 0 && not (Tcam.is_free tcam !top_next) do
    decr top_next
  done;
  let bottom_count = ref 0 and top_count = ref 0 in
  Tcam.iter_used tcam (fun ~addr ~rule_id:_ ->
      if addr < !bottom_next then incr bottom_count
      else if addr > !top_next then incr top_count);
  {
    bottom_next = !bottom_next;
    top_next = !top_next;
    bottom_count = !bottom_count;
    top_count = !top_count;
  }

let middle_free r = r.top_next - r.bottom_next + 1
