type t = {
  size : int;
  threshold : int;
  dead : Bytes.t;  (* 1 = dead *)
  strikes : (int, int) Hashtbl.t;  (* consecutive write failures per addr *)
  mutable count : int;
}

let create ?(threshold = 1) ~size () =
  if size <= 0 then invalid_arg "Deadmap.create: size must be positive";
  if threshold < 1 then invalid_arg "Deadmap.create: threshold must be >= 1";
  {
    size;
    threshold;
    dead = Bytes.make size '\000';
    strikes = Hashtbl.create 8;
    count = 0;
  }

let size t = t.size
let threshold t = t.threshold
let count t = t.count
let is_empty t = t.count = 0 && Hashtbl.length t.strikes = 0

let check_addr t addr =
  if addr < 0 || addr >= t.size then invalid_arg "Deadmap: address out of range"

let is_dead t addr =
  check_addr t addr;
  Bytes.unsafe_get t.dead addr <> '\000'

let mark t ~addr =
  check_addr t addr;
  Hashtbl.remove t.strikes addr;
  if Bytes.get t.dead addr = '\000' then begin
    Bytes.set t.dead addr '\001';
    t.count <- t.count + 1;
    true
  end
  else false

let note_failure t ~addr =
  check_addr t addr;
  if Bytes.get t.dead addr <> '\000' then false
  else
    let strikes = 1 + Option.value (Hashtbl.find_opt t.strikes addr) ~default:0 in
    if strikes >= t.threshold then mark t ~addr
    else begin
      Hashtbl.replace t.strikes addr strikes;
      false
    end

let note_success t ~addr =
  check_addr t addr;
  Hashtbl.remove t.strikes addr;
  if Bytes.get t.dead addr <> '\000' then begin
    Bytes.set t.dead addr '\000';
    t.count <- t.count - 1;
    true
  end
  else false

let clear t =
  Bytes.fill t.dead 0 t.size '\000';
  Hashtbl.reset t.strikes;
  t.count <- 0

let dead_list t =
  let acc = ref [] in
  for a = t.size - 1 downto 0 do
    if Bytes.get t.dead a <> '\000' then acc := a :: !acc
  done;
  !acc

let iter_dead t f =
  for a = 0 to t.size - 1 do
    if Bytes.get t.dead a <> '\000' then f a
  done

let intervals t =
  let acc = ref [] in
  let run_start = ref (-1) in
  for a = 0 to t.size - 1 do
    if Bytes.get t.dead a <> '\000' then begin
      if !run_start < 0 then run_start := a
    end
    else if !run_start >= 0 then begin
      acc := (!run_start, a - 1) :: !acc;
      run_start := -1
    end
  done;
  if !run_start >= 0 then acc := (!run_start, t.size - 1) :: !acc;
  List.rev !acc

let copy t =
  {
    size = t.size;
    threshold = t.threshold;
    dead = Bytes.copy t.dead;
    strikes = Hashtbl.copy t.strikes;
    count = t.count;
  }

let pp ppf t =
  let pp_iv ppf (lo, hi) =
    if lo = hi then Format.fprintf ppf "0x%x" lo
    else Format.fprintf ppf "0x%x-0x%x" lo hi
  in
  Format.fprintf ppf "dead(%d/%d: %a)" t.count t.size
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_iv)
    (intervals t)
