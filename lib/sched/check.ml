module Tcam = Fr_tcam.Tcam
module Op = Fr_tcam.Op

let sequence graph tcam ops =
  let sim = Tcam.copy tcam in
  (* Each simulated op is a publication point on the real table: besides
     the dependency invariant, the persistent image the op would publish
     must agree with the slot array, so readers of the snapshot see
     exactly this committed-prefix state. *)
  let publication i describe k =
    match Tcam.check_dag_order sim graph with
    | Error msg ->
        Error
          (Printf.sprintf "op %d %s breaks dependency order: %s" i (describe ())
             msg)
    | Ok () -> (
        match Tcam.image_consistent sim with
        | Error msg ->
            Error
              (Printf.sprintf "op %d %s desyncs the published image: %s" i
                 (describe ()) msg)
        | Ok () -> k ())
  in
  let rec go i = function
    | [] -> Ok ()
    | op :: rest -> (
        let describe () = Format.asprintf "%a" Op.pp op in
        match op with
        | Op.Insert { rule_id; addr } -> (
            (match Tcam.read sim addr with
            | Tcam.Used id when id <> rule_id ->
                Error
                  (Printf.sprintf "op %d %s overwrites live entry %d" i
                     (describe ()) id)
            | Tcam.Used _ | Tcam.Free -> Ok ())
            |> function
            | Error _ as e -> e
            | Ok () ->
                Tcam.write sim ~rule_id ~addr;
                publication i describe (fun () -> go (i + 1) rest))
        | Op.Delete { addr } ->
            Tcam.erase sim ~addr;
            publication i describe (fun () -> go (i + 1) rest))
  in
  go 0 ops

let apply_verified graph tcam ops =
  match sequence graph tcam ops with
  | Ok () ->
      Tcam.apply_sequence tcam ops;
      Ok ()
  | Error _ as e -> e
