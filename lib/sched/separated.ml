module Tcam = Fr_tcam.Tcam
module Op = Fr_tcam.Op
module Layout = Fr_tcam.Layout
module Graph = Fr_dag.Graph

type delete_mode = Dirty | Balance

let delete_mode_to_string = function Dirty -> "dirty" | Balance -> "balance"

type state = {
  graph : Graph.t;
  tcam : Tcam.t;
  up : Store.t;
  down : Store.t;
  r : Layout.separated_regions;
  delete_mode : delete_mode;
  backend : Store.backend;
  mutable pending_post : unit -> unit;
  mutable pending_ids : int list;
  (* Addresses whose occupancy changes without being any op's target — the
     balance fill's final vacated slot. *)
  mutable pending_addrs : int list;
  (* The sequence [pending_post] was computed for.  [after_apply] runs the
     closure only when exactly this sequence landed; anything else (a
     fault-truncated prefix, an in-place write after a rejected schedule)
     resynchronises the regions from the TCAM instead. *)
  mutable pending_ops : Op.t list;
}

let create ?(backend = Store.Bit_backend) ~delete_mode ~graph ~tcam () =
  {
    graph;
    tcam;
    up = Store.create ~backend ~dir:Dir.Up graph tcam;
    down = Store.create ~backend ~dir:Dir.Down graph tcam;
    r = Layout.separated_regions_of tcam;
    delete_mode;
    backend;
    pending_post = ignore;
    pending_ids = [];
    pending_addrs = [];
    pending_ops = [];
  }

let regions st = st.r
let up_store st = st.up
let down_store st = st.down

(* Greedy chain with displacement windows clamped at [clamp], so a chain
   spills at most one slot past its region's middle edge. *)
let chain st ~dir ~rule_id ~lo ~hi ~clamp =
  let store = match dir with Dir.Up -> st.up | Dir.Down -> st.down in
  let rec loop f lo hi steps acc =
    if steps > Tcam.size st.tcam then
      Error "displacement chain exceeded the TCAM size (invariant violation)"
    else
      match Store.min_in store ~lo ~hi with
      | None -> Error "no feasible address: candidate window is empty"
      | Some (a, _) -> (
          let acc = Op.insert ~rule_id:f ~addr:a :: acc in
          match Tcam.read st.tcam a with
          | Tcam.Free -> Ok acc
          | Tcam.Used occupant ->
              let lo', hi' =
                match dir with
                | Dir.Up ->
                    (a + 1, min (Dir.bound Dir.Up st.graph st.tcam occupant) clamp)
                | Dir.Down ->
                    (max (Dir.bound Dir.Down st.graph st.tcam occupant) clamp, a - 1)
              in
              loop occupant lo' hi' (steps + 1) acc)
  in
  loop rule_id lo hi 0 []

(* Region bookkeeping for an insert sequence, evaluated against the
   pre-apply TCAM and captured as a closure to run after the ops land. *)
let post_of_insert_ops st ops =
  let r = st.r in
  let bn = r.Layout.bottom_next and tn = r.Layout.top_next in
  let classify a = if a < bn then `Bottom else if a > tn then `Top else `Middle a in
  let db = ref 0 and dt = ref 0 in
  let new_bn = ref bn and new_tn = ref tn in
  List.iter
    (fun op ->
      match op with
      | Op.Delete _ -> ()
      | Op.Insert { rule_id; addr } ->
          (match Tcam.addr_of st.tcam rule_id with
          | Some old -> (
              match classify old with
              | `Bottom -> decr db
              | `Top -> decr dt
              | `Middle _ -> ())
          | None -> ());
          (match classify addr with
          | `Bottom -> incr db
          | `Top -> incr dt
          | `Middle a ->
              (* Clamped chains and direct middle inserts only ever touch
                 the pool's edges; joining an edge moves it. *)
              if a = tn then begin
                incr dt;
                new_tn := min !new_tn (a - 1)
              end
              else begin
                incr db;
                new_bn := max !new_bn (a + 1)
              end))
    ops;
  fun () ->
    r.Layout.bottom_count <- r.Layout.bottom_count + !db;
    r.Layout.top_count <- r.Layout.top_count + !dt;
    r.Layout.bottom_next <- !new_bn;
    r.Layout.top_next <- !new_tn

let schedule_insert st ~rule_id ~deps ~dependents =
  match Algo.fresh_request_check st.tcam ~rule_id with
  | Error _ as e -> e
  | Ok () -> (
      match Algo.insert_window st.tcam ~deps ~dependents with
      | Error _ as e -> e
      | Ok (lo, hi) ->
          let r = st.r in
          let size = Tcam.size st.tcam in
          (* If a region-local chain cannot reach free space (region packed
             and middle pool gone), retry unclamped in both directions
             before giving up. *)
          let with_fallback primary =
            match primary () with
            | Ok _ as ok -> ok
            | Error _ -> (
                match
                  chain st ~dir:Dir.Up ~rule_id ~lo:(lo + 1)
                    ~hi:(min hi (size - 1)) ~clamp:(size - 1)
                with
                | Ok _ as ok -> ok
                | Error _ ->
                    chain st ~dir:Dir.Down ~rule_id ~lo:(max 0 lo) ~hi:(hi - 1)
                      ~clamp:0)
          in
          let result =
            if hi < r.Layout.bottom_next then
              (* Dependency inside the bottom region: upward chain, windows
                 clamped at the region's middle edge. *)
              with_fallback (fun () ->
                  chain st ~dir:Dir.Up ~rule_id ~lo:(lo + 1) ~hi
                    ~clamp:r.Layout.bottom_next)
            else if lo > r.Layout.top_next then
              (* Dependent inside the top region: downward chain over
                 [lo, hi) — the dependent's slot is the displaceable one. *)
              with_fallback (fun () ->
                  chain st ~dir:Dir.Down ~rule_id ~lo ~hi:(hi - 1)
                    ~clamp:r.Layout.top_next)
            else if Layout.middle_free r > 0 then begin
              (* Straddling window: land on a middle edge, zero movements,
                 on the side holding fewer entries (§V.1). *)
              let bottom_ok =
                r.Layout.bottom_next >= lo + 1
                && r.Layout.bottom_next <= hi
                && not (Tcam.is_dead st.tcam r.Layout.bottom_next)
              in
              let top_ok =
                r.Layout.top_next >= lo + 1
                && r.Layout.top_next <= hi
                && not (Tcam.is_dead st.tcam r.Layout.top_next)
              in
              let side =
                if bottom_ok && top_ok then
                  if r.Layout.top_count > r.Layout.bottom_count then `Bottom
                  else `Top
                else if bottom_ok then `Bottom
                else if top_ok then `Top
                else `None
              in
              match side with
              | `Bottom -> Ok [ Op.insert ~rule_id ~addr:r.Layout.bottom_next ]
              | `Top -> Ok [ Op.insert ~rule_id ~addr:r.Layout.top_next ]
              | `None ->
                  (* Should be unreachable (a straddling window contains
                     the middle pool); degrade gracefully. *)
                  chain st ~dir:Dir.Up ~rule_id ~lo:(lo + 1)
                    ~hi:(min hi (size - 1)) ~clamp:(size - 1)
            end
            else
              (* Middle pool exhausted: the layout has degenerated; run the
                 plain greedy over the whole window — upward first, then
                 downward if the only free slots are holes below it. *)
              with_fallback (fun () -> Error "middle pool exhausted")
          in
          (match result with
          | Ok ops ->
              st.pending_post <- post_of_insert_ops st ops;
              st.pending_ops <- ops
          | Error _ ->
              st.pending_post <- ignore;
              st.pending_ops <- []);
          result)

(* Balance delete: migrate the hole to the region's middle edge.  Each step
   moves the farthest legally movable entry into the hole; the entry
   adjacent to the hole is always legal, so the loop advances. *)
let balance_fill_bottom st ~hole =
  let r = st.r in
  let rec steps cur acc =
    (* Highest movable occupant of (cur, bottom_next); the lowest occupant
       is always movable (everything below it is free). *)
    let pick =
      let found = ref None in
      let a = ref (r.Layout.bottom_next - 1) in
      while !found = None && !a > cur do
        (match Tcam.read st.tcam !a with
        | Tcam.Free -> ()
        | Tcam.Used id ->
            (* A dead source slot must not become the next hole to fill:
               migration stops before it. *)
            let movable =
              (not (Tcam.is_dead st.tcam !a))
              &&
              match Dir.next_hop Dir.Down st.graph st.tcam id with
              | None -> true
              | Some dep_max -> dep_max < cur
            in
            if movable then found := Some (!a, id));
        decr a
      done;
      (* The scan runs high-to-low, so [lowest] holds the last occupant
         seen; rescan upward for the true lowest when nothing qualified. *)
      match !found with
      | Some _ as f -> f
      | None ->
          let rec lowest_used a =
            if a >= r.Layout.bottom_next then None
            else
              match Tcam.read st.tcam a with
              | Tcam.Used id when not (Tcam.is_dead st.tcam a) -> Some (a, id)
              | Tcam.Used _ | Tcam.Free -> lowest_used (a + 1)
          in
          lowest_used (cur + 1)
    in
    match pick with
    | None -> (cur, acc)  (* nothing above the hole: region shrinks to it *)
    | Some (a, id) -> steps a (Op.insert ~rule_id:id ~addr:cur :: acc)
  in
  let final_hole, moves = steps hole [] in
  (final_hole, List.rev moves)

let balance_fill_top st ~hole =
  let r = st.r in
  let rec steps cur acc =
    let pick =
      let found = ref None in
      let a = ref (r.Layout.top_next + 1) in
      while !found = None && !a < cur do
        (match Tcam.read st.tcam !a with
        | Tcam.Free -> ()
        | Tcam.Used id ->
            let movable =
              (not (Tcam.is_dead st.tcam !a))
              &&
              match Dir.next_hop Dir.Up st.graph st.tcam id with
              | None -> true
              | Some dep_min -> dep_min > cur
            in
            if movable then found := Some (!a, id));
        incr a
      done;
      match !found with
      | Some _ as f -> f
      | None ->
          let rec highest_used a =
            if a <= r.Layout.top_next then None
            else
              match Tcam.read st.tcam a with
              | Tcam.Used id when not (Tcam.is_dead st.tcam a) -> Some (a, id)
              | Tcam.Used _ | Tcam.Free -> highest_used (a - 1)
          in
          highest_used (cur - 1)
    in
    match pick with
    | None -> (cur, acc)
    | Some (a, id) -> steps a (Op.insert ~rule_id:id ~addr:cur :: acc)
  in
  let final_hole, moves = steps hole [] in
  (final_hole, List.rev moves)

let schedule_delete st ~rule_id =
  match Tcam.addr_of st.tcam rule_id with
  | None ->
      st.pending_post <- ignore;
      st.pending_ops <- [];
      Error (Printf.sprintf "entry %d is not in the TCAM" rule_id)
  | Some addr ->
      let r = st.r in
      let affected = ref [] in
      Graph.iter_dependents st.graph rule_id (fun x -> affected := x :: !affected);
      Graph.iter_deps st.graph rule_id (fun x -> affected := x :: !affected);
      st.pending_ids <- !affected;
      let in_bottom = addr < r.Layout.bottom_next in
      (* A dead hole cannot be refilled (writes into it fail), so balance
         deletes degrade to dirty ones there: erase in place — the
         valid bit still clears — and leave the hole where it is. *)
      let mode =
        if Tcam.is_dead st.tcam addr then Dirty else st.delete_mode
      in
      (match mode with
      | Dirty ->
          st.pending_post <-
            (fun () ->
              if in_bottom then r.Layout.bottom_count <- r.Layout.bottom_count - 1
              else r.Layout.top_count <- r.Layout.top_count - 1);
          let ops = [ Op.delete ~addr ] in
          st.pending_ops <- ops;
          Ok ops
      | Balance ->
          if in_bottom then begin
            let final_hole, moves = balance_fill_bottom st ~hole:addr in
            st.pending_post <-
              (fun () ->
                r.Layout.bottom_count <- r.Layout.bottom_count - 1;
                r.Layout.bottom_next <- final_hole);
            st.pending_addrs <- [ final_hole ];
            let ops = Op.delete ~addr :: moves in
            st.pending_ops <- ops;
            Ok ops
          end
          else begin
            let final_hole, moves = balance_fill_top st ~hole:addr in
            st.pending_post <-
              (fun () ->
                r.Layout.top_count <- r.Layout.top_count - 1;
                r.Layout.top_next <- final_hole);
            st.pending_addrs <- [ final_hole ];
            let ops = Op.delete ~addr :: moves in
            st.pending_ops <- ops;
            Ok ops
          end)

(* Rebuild the region model from the TCAM image alone, choosing the longest
   run of free slots as the middle pool — the one region shape every
   scheduling path can trust ([bottom_next]/[top_next] must point at free
   slots, and the middle pool must be entirely free; entries stranded
   inside a region by a truncated sequence become that region's holes,
   which the chain logic already tolerates). *)
let resync st =
  let sz = Tcam.size st.tcam in
  let best_lo = ref sz and best_len = ref 0 in
  let cur_lo = ref 0 and cur_len = ref 0 in
  for a = 0 to sz - 1 do
    if Tcam.is_free st.tcam a then begin
      if !cur_len = 0 then cur_lo := a;
      incr cur_len;
      if !cur_len > !best_len then begin
        best_lo := !cur_lo;
        best_len := !cur_len
      end
    end
    else cur_len := 0
  done;
  let bn, tn =
    if !best_len = 0 then (sz, -1) else (!best_lo, !best_lo + !best_len - 1)
  in
  let bc = ref 0 and tc = ref 0 in
  Tcam.iter_used st.tcam (fun ~addr ~rule_id:_ ->
      if addr < bn then incr bc else if addr > tn then incr tc);
  st.r.Layout.bottom_next <- bn;
  st.r.Layout.top_next <- tn;
  st.r.Layout.bottom_count <- !bc;
  st.r.Layout.top_count <- !tc

let after_apply st ops =
  let scheduled = st.pending_ops in
  let post = st.pending_post in
  st.pending_ops <- [];
  st.pending_post <- ignore;
  (if List.equal Op.equal ops scheduled then post ()
   else if scheduled = [] then
     (* an in-place write the scheduler never saw (Set_action): occupancy
        is unchanged, the region model still holds *)
     ()
   else
     (* a truncated or substituted sequence (injected fault, or a caller
        touching the table after a rejected schedule): the closure's
        assumptions are void — re-derive the regions from the hardware *)
     resync st);
  let addrs = st.pending_addrs @ List.map Op.addr ops in
  st.pending_addrs <- [];
  let ids = st.pending_ids in
  st.pending_ids <- [];
  Store.refresh st.up ~addrs ~ids;
  Store.refresh st.down ~addrs ~ids

let algo st =
  let mode =
    match st.delete_mode with Dirty -> "fr-sd" | Balance -> "fr-sb"
  in
  {
    Algo.name = Printf.sprintf "%s/%s" mode (Store.backend_to_string st.backend);
    schedule_insert =
      (fun ~rule_id ~deps ~dependents -> schedule_insert st ~rule_id ~deps ~dependents);
    schedule_delete = (fun ~rule_id -> schedule_delete st ~rule_id);
    after_apply = (fun ops -> after_apply st ops);
    insert_batch = None;
  }
