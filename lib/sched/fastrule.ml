module Tcam = Fr_tcam.Tcam
module Op = Fr_tcam.Op

type state = {
  graph : Fr_dag.Graph.t;
  tcam : Tcam.t;
  store : Store.t;
  dir : Dir.t;
  (* Entries whose metric must be revisited at the next [after_apply] even
     though their own address kept its occupant (set by schedule_delete). *)
  mutable pending_ids : int list;
}

let create ?(backend = Store.Bit_backend) ?(dir = Dir.Up) ~graph ~tcam () =
  {
    graph;
    tcam;
    store = Store.create ~backend ~dir graph tcam;
    dir;
    pending_ids = [];
  }

let store st = st.store

let schedule_chain st ~rule_id ~lo ~hi =
  let rec loop f lo hi steps acc =
    if steps > Tcam.size st.tcam then
      Error "displacement chain exceeded the TCAM size (invariant violation)"
    else
      match Store.min_in st.store ~lo ~hi with
      | None -> Error "no feasible address: candidate window is empty"
      | Some (a, _metric) -> (
          let acc = Op.insert ~rule_id:f ~addr:a :: acc in
          match Tcam.read st.tcam a with
          | Tcam.Free -> Ok acc
          | Tcam.Used occupant ->
              let lo', hi' =
                match st.dir with
                | Dir.Up -> (a + 1, Dir.bound Dir.Up st.graph st.tcam occupant)
                | Dir.Down -> (Dir.bound Dir.Down st.graph st.tcam occupant, a - 1)
              in
              loop occupant lo' hi' (steps + 1) acc)
  in
  loop rule_id lo hi 0 []

let schedule_insert st ~rule_id ~deps ~dependents =
  match Algo.fresh_request_check st.tcam ~rule_id with
  | Error _ as e -> e
  | Ok () -> (
      match Algo.insert_window st.tcam ~deps ~dependents with
      | Error _ as e -> e
      | Ok (lo, hi) -> (
          (* The candidate range includes the displaceable constraint slot
             on the free-pool side: the dependency's for upward chains, the
             dependent's for downward ones. *)
          match st.dir with
          | Dir.Up ->
              schedule_chain st ~rule_id ~lo:(lo + 1)
                ~hi:(min hi (Tcam.size st.tcam - 1))
          | Dir.Down -> schedule_chain st ~rule_id ~lo:(max 0 lo) ~hi:(hi - 1)))

let schedule_delete st ~rule_id =
  match Tcam.addr_of st.tcam rule_id with
  | None -> Error (Printf.sprintf "entry %d is not in the TCAM" rule_id)
  | Some addr ->
      (* The node disappears from the graph before [after_apply] runs, so
         capture the neighbours whose chains read it now. *)
      let affected = ref [] in
      Dir.propagation_targets st.dir st.graph rule_id (fun x ->
          affected := x :: !affected);
      st.pending_ids <- !affected;
      Ok [ Op.delete ~addr ]

let after_apply st ops =
  let addrs = List.map Op.addr ops in
  let ids = st.pending_ids in
  st.pending_ids <- [];
  Store.refresh st.store ~addrs ~ids

let insert_batch ?(refresh_every = max_int) st requests =
  if refresh_every < 1 then invalid_arg "insert_batch: refresh_every < 1";
  let all_ops = ref [] in
  let dirty = ref [] in
  let since_flush = ref 0 in
  let flush () =
    Store.refresh st.store ~addrs:!dirty ~ids:[];
    dirty := [];
    since_flush := 0
  in
  let rec run = function
    | [] ->
        flush ();
        Ok (List.concat (List.rev !all_ops))
    | (rule_id, deps, dependents) :: rest -> (
        let attempt () = schedule_insert st ~rule_id ~deps ~dependents in
        let result =
          match attempt () with
          | Ok _ as ok -> ok
          | Error _ ->
              (* Stale guidance may have walked the chain into a corner:
                 refresh and retry once before declaring failure. *)
              flush ();
              attempt ()
        in
        match result with
        | Error _ as e ->
            flush ();
            e
        | Ok ops ->
            Tcam.apply_sequence st.tcam ops;
            dirty := List.rev_append (List.map Op.addr ops) !dirty;
            all_ops := ops :: !all_ops;
            incr since_flush;
            if !since_flush >= refresh_every then flush ();
            run rest)
  in
  run requests

let algo st =
  {
    Algo.name = Printf.sprintf "fr-o/%s" (Store.backend_to_string (Store.backend st.store));
    schedule_insert =
      (fun ~rule_id ~deps ~dependents -> schedule_insert st ~rule_id ~deps ~dependents);
    schedule_delete = (fun ~rule_id -> schedule_delete st ~rule_id);
    after_apply = (fun ops -> after_apply st ops);
    insert_batch =
      Some (fun ~refresh_every requests -> insert_batch ~refresh_every st requests);
  }
