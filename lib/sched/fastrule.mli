(** The FastRule greedy TCAM update scheduler (Algorithm 1).

    Insertion: starting from the request's candidate window, repeatedly
    pick the address [A] with the smallest chain metric {!Metric} (ties to
    the highest address, like the algorithm's ascending scan with [<=]),
    emit [(I, f, A)], and continue with the displaced occupant, whose new
    window is [(A, bound occupant\]] — until [A] is free.  Termination and
    correctness are the paper's Propositions 1–2: free addresses have
    metric 0 and always win, the metric strictly decreases along the chosen
    chain, and every emitted move stays inside its entry's legal window.

    The metric query runs on any {!Store} back-end; with the BIT back-end
    this is the headline O(c_avg (log n)^2) configuration ("FR-O" on the
    original layout).  Deletion erases in place (one op, zero movements) —
    the free slot simply joins the pool and later insertions flow into it.

    The scheduler works in either {!Dir.t}; [Down] is used by the separated
    layout's top region (see {!Separated}). *)

type state

val create :
  ?backend:Store.backend ->
  ?dir:Dir.t ->
  graph:Fr_dag.Graph.t ->
  tcam:Fr_tcam.Tcam.t ->
  unit ->
  state
(** Defaults: [Bit_backend], [Up]. *)

val algo : state -> Algo.t
(** Name is ["fr-o/<backend>"]. *)

val store : state -> Store.t
(** The live metric store (for tests and the separated-layout composition). *)

val insert_batch :
  ?refresh_every:int ->
  state ->
  (int * int list * int list) list ->
  (Fr_tcam.Op.t list, string) result
(** [insert_batch st requests] — batched insertion: each
    [(rule_id, deps, dependents)] is scheduled and its sequence applied to
    the TCAM {e immediately}, but metric maintenance is deferred to one
    {!Store.refresh} over the whole batch's dirty set (amortising the
    per-update O(c (log n)^2) maintenance the paper accounts for).  The
    graph must already contain every request's node and edges.

    Stale metrics between batch members can only degrade sequence quality,
    never correctness — candidate windows and free-slot checks read the
    live TCAM; if a mid-batch request still fails, the store is refreshed
    and that request retried before giving up.  The degradation is real,
    though: a slot consumed by an earlier batch member still advertises
    metric 0 until the next refresh, so later members walk into it and
    displace — measured on FW5 churn, each fully-deferred batch member
    costs ≈ 0.4 extra movements {e per member already in the batch}.
    [refresh_every] bounds that: the dirty set is flushed after every
    [k] requests ([1] = per-request maintenance, the quality-preserving
    cadence; default: only at the end, the legacy behaviour).  Returns the
    concatenation of the applied sequences (already applied; do {e not}
    re-apply).  On [Error], requests before the failing one remain applied
    and the store is left truthful. *)

val schedule_chain :
  state -> rule_id:int -> lo:int -> hi:int -> (Fr_tcam.Op.t list, string) result
(** The bare greedy over the explicit inclusive candidate range
    [\[lo, hi\]], without the request-window derivation — the separated
    layout builds its region scheduling on this.  Displacements cascade in
    the state's direction.  Returned in application order. *)
