module Tcam = Fr_tcam.Tcam
module Op = Fr_tcam.Op

let unreachable = max_int / 4

(* One DP instance = one update.  [windows] is rebuilt for the whole table
   on every call — RuleTris's per-update initialisation cost. *)
type dp = {
  tcam : Tcam.t;
  window : int array;  (* per address: occupant's displacement bound *)
  cost : int array;  (* -1 = not yet computed *)
  choice : int array;  (* argmin address inside the window *)
  frees : int array;  (* free addresses, ascending *)
}

let init graph tcam =
  let n = Tcam.size tcam in
  let window = Array.make n (-1) in
  let cost = Array.make n (-1) in
  let choice = Array.make n (-1) in
  let frees = Array.make (max 1 (Tcam.free_count tcam)) 0 in
  let nf = ref 0 in
  for a = 0 to n - 1 do
    (* Dead rows can never receive a write: they are neither usable free
       slots nor freeable used ones, so their cost pins at unreachable
       and chains route around them. *)
    if Tcam.is_dead tcam a then cost.(a) <- unreachable
    else
      match Tcam.read tcam a with
      | Tcam.Free ->
          cost.(a) <- 0;
          frees.(!nf) <- a;
          incr nf
      | Tcam.Used id -> window.(a) <- Dir.bound Dir.Up graph tcam id
  done;
  { tcam; window; cost; choice; frees = Array.sub frees 0 !nf }

(* Lowest free address in (lo, hi], if any — binary search over [frees]. *)
let first_free_in dp ~lo ~hi =
  let n = Array.length dp.frees in
  let rec lower l r =
    (* least index with frees.(i) > lo *)
    if l >= r then l
    else
      let m = (l + r) / 2 in
      if dp.frees.(m) > lo then lower l m else lower (m + 1) r
  in
  let i = lower 0 n in
  if i < n && dp.frees.(i) <= hi then Some dp.frees.(i) else None

(* cost a = writes needed to free address [a]: one plus the cheapest cost
   over the occupant's displacement window, 0 for free slots. *)
let rec solve dp a =
  if dp.cost.(a) >= 0 then dp.cost.(a)
  else begin
    (* A free slot in the window is unbeatable (cost 0); take the lowest,
       the same free-pool-preserving choice as the greedy's stores, found
       by binary search so the huge windows of dependency-free entries
       stay O(log n).  Only free-less windows — which are bounded by a
       real dependency and hence short — are scanned. *)
    match first_free_in dp ~lo:a ~hi:dp.window.(a) with
    | Some f ->
        dp.cost.(a) <- 1;
        dp.choice.(a) <- f;
        1
    | None ->
        let best = ref unreachable and arg = ref (-1) in
        for b = a + 1 to dp.window.(a) do
          let c = solve dp b in
          if c < !best then begin
            best := c;
            arg := b
          end
        done;
        let c = if !best >= unreachable then unreachable else 1 + !best in
        dp.cost.(a) <- c;
        dp.choice.(a) <- !arg;
        c
  end

let best_in_window dp ~lo ~hi =
  let lo = max 0 lo and hi = min (Array.length dp.cost - 1) hi in
  if lo > hi then None
  else begin
    let best = ref unreachable and arg = ref (-1) in
    (* Ascending scan with strict < : lowest address wins ties. *)
    for a = lo to hi do
      let c = solve dp a in
      if c < !best then begin
        best := c;
        arg := a
      end
    done;
    if !best >= unreachable then None else Some (!arg, !best)
  end

let reconstruct dp ~rule_id ~start =
  let rec go f a acc =
    let acc = Op.insert ~rule_id:f ~addr:a :: acc in
    match Tcam.read dp.tcam a with
    | Tcam.Free -> acc
    | Tcam.Used occupant -> go occupant dp.choice.(a) acc
  in
  go rule_id start []

let schedule_insert graph tcam ~rule_id ~deps ~dependents =
  match Algo.fresh_request_check tcam ~rule_id with
  | Error _ as e -> e
  | Ok () -> (
      match Algo.insert_window tcam ~deps ~dependents with
      | Error _ as e -> e
      | Ok (lo, hi) -> (
          let dp = init graph tcam in
          match best_in_window dp ~lo:(lo + 1) ~hi with
          | None -> Error "no reachable free slot for the insertion"
          | Some (a, _) -> Ok (reconstruct dp ~rule_id ~start:a)))

let schedule_delete tcam ~rule_id =
  match Tcam.addr_of tcam rule_id with
  | None -> Error (Printf.sprintf "entry %d is not in the TCAM" rule_id)
  | Some addr -> Ok [ Op.delete ~addr ]

let make ~graph ~tcam =
  {
    Algo.name = "ruletris";
    schedule_insert =
      (fun ~rule_id ~deps ~dependents ->
        schedule_insert graph tcam ~rule_id ~deps ~dependents);
    schedule_delete = (fun ~rule_id -> schedule_delete tcam ~rule_id);
    after_apply = (fun _ -> ());
    insert_batch = None;
  }

let min_cost_in_window ~graph tcam ~lo ~hi =
  let dp = init graph tcam in
  match best_in_window dp ~lo ~hi with
  | None -> None
  | Some (_, c) -> Some (c + 1)
