(** The common scheduler interface.

    A scheduler owns references to the shared dependency graph and TCAM and
    turns update requests into update sequences.  The firmware drives it
    with the protocol:

    + (insert) add the new node and its edges to the graph;
    + [schedule_insert] — pure computation, the "firmware time" span;
    + {!Fr_tcam.Tcam.apply_sequence} the result;
    + [after_apply] — the scheduler's own bookkeeping (metric maintenance,
      region accounting); also part of firmware time.

    Deletions mirror this with [schedule_delete] before the node is removed
    from the graph.

    Sequences are returned in {e application order}: the op that lands in
    free space comes first, the op that writes the requested entry last, so
    a left-to-right application never clobbers a live entry.  (The paper
    prints chains in the opposite, discovery order.)

    Application order is also the {e publication contract} for the
    concurrent read path: {!Fr_tcam.Tcam.apply_sequence} publishes a
    fresh immutable {!Fr_tcam.Image.t} after every op, so each
    intermediate state a scheduler emits becomes visible to wait-free
    readers.  Because every intermediate state of a correctly ordered
    sequence is lookup-safe, a snapshot grabbed mid-cascade always equals
    the semantic table either before or after the flow-mod — never a
    mix ({!Fr_conform.Oracle} proves this per scheduler). *)

type t = {
  name : string;
  schedule_insert :
    rule_id:int -> deps:int list -> dependents:int list -> (Fr_tcam.Op.t list, string) result;
      (** [deps] must end up above the new entry, [dependents] below; both
          must already be present in the TCAM. *)
  schedule_delete : rule_id:int -> (Fr_tcam.Op.t list, string) result;
  after_apply : Fr_tcam.Op.t list -> unit;
  insert_batch :
    (refresh_every:int ->
    (int * int list * int list) list ->
    (Fr_tcam.Op.t list, string) result)
    option;
      (** Optional batched-insert fast path ({!Fastrule.insert_batch}):
          every [(rule_id, deps, dependents)] request is scheduled {e and
          applied to the TCAM} by the call itself, with metric maintenance
          flushed every [refresh_every] requests — callers must {e not}
          re-apply the returned ops and must not call [after_apply] for
          them.  [deps] may name earlier requests of the same batch (they
          are in the TCAM by the time the later request schedules).
          Schedulers without a batch-aware back-end leave this [None] and
          are driven one request at a time. *)
}

val insert_window :
  Fr_tcam.Tcam.t -> deps:int list -> dependents:int list ->
  (int * int, string) result
(** The candidate address window as the exclusive pair [(lo, hi)]: the new
    entry must land strictly between them.  [lo] is the highest dependent's
    address (or [-1] when unconstrained below), [hi] the lowest
    dependency's address (or [size] when unconstrained above).  An upward
    scheduler may additionally {e take} [hi] itself by displacing the
    dependency upward (window [\[lo+1, min hi (size-1)\]]); a downward one
    may take [lo] (window [\[max lo 0, hi-1\]]).  [Error] if a constraint
    entry is missing from the TCAM or [lo >= hi] (contradictory
    constraints). *)

val fresh_request_check :
  Fr_tcam.Tcam.t -> rule_id:int -> (unit, string) result
(** Inserting an entry that is already stored is a request error. *)
