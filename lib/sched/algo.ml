module Tcam = Fr_tcam.Tcam

type t = {
  name : string;
  schedule_insert :
    rule_id:int -> deps:int list -> dependents:int list -> (Fr_tcam.Op.t list, string) result;
  schedule_delete : rule_id:int -> (Fr_tcam.Op.t list, string) result;
  after_apply : Fr_tcam.Op.t list -> unit;
  insert_batch :
    (refresh_every:int ->
    (int * int list * int list) list ->
    (Fr_tcam.Op.t list, string) result)
    option;
}

let insert_window tcam ~deps ~dependents =
  let resolve id =
    match Tcam.addr_of tcam id with
    | Some a -> Ok a
    | None -> Error (Printf.sprintf "constraint entry %d is not in the TCAM" id)
  in
  let rec fold_bound f init = function
    | [] -> Ok init
    | id :: rest -> (
        match resolve id with
        | Error _ as e -> e
        | Ok a -> fold_bound f (f init a) rest)
  in
  match fold_bound max (-1) dependents with
  | Error _ as e -> e
  | Ok lo -> (
      match fold_bound min (Tcam.size tcam) deps with
      | Error _ as e -> e
      | Ok hi ->
          if lo >= hi then
            Error
              (Printf.sprintf
                 "empty candidate window: dependents reach 0x%x, dependencies \
                  start at 0x%x"
                 lo hi)
          else Ok (lo, hi))

let fresh_request_check tcam ~rule_id =
  if Tcam.mem tcam rule_id then
    Error (Printf.sprintf "entry %d is already stored" rule_id)
  else Ok ()
