(** Update-sequence verification — the safety net the paper's host-side
    shadow table provides (§VI.1: the Linux server "is only used to ensure
    the correctness of our algorithm").

    A verified sequence guarantees that applying it to the given TCAM
    (left to right) never overwrites a live entry with a different one,
    and that the dependency-order invariant holds {e after every single
    op} — i.e. lookups stay correct mid-update, which is the property that
    lets firmware apply sequences without locking the data path.

    Every op is also a {e publication point}: the real table re-derives
    and publishes its persistent {!Fr_tcam.Image.t} per committed op, so
    the simulation additionally checks {!Fr_tcam.Tcam.image_consistent}
    after each step — the snapshot a concurrent reader would grab at that
    instant must mirror the slot array exactly. *)

val sequence :
  Fr_dag.Graph.t -> Fr_tcam.Tcam.t -> Fr_tcam.Op.t list -> (unit, string) result
(** [sequence graph tcam ops] simulates on copies; neither argument is
    modified.  [Error] pinpoints the first offending op. *)

val apply_verified :
  Fr_dag.Graph.t -> Fr_tcam.Tcam.t -> Fr_tcam.Op.t list -> (unit, string) result
(** Verify, then apply to the real TCAM only on success. *)
