module Tcam = Fr_tcam.Tcam
module Min_tree = Fr_bitree.Min_tree
module Segment_tree = Fr_bitree.Segment_tree

type backend = On_demand | Array_backend | Bit_backend | Seg_backend

let backend_to_string = function
  | On_demand -> "on-demand"
  | Array_backend -> "array"
  | Bit_backend -> "bit"
  | Seg_backend -> "segtree"

let all_backends = [ On_demand; Array_backend; Bit_backend; Seg_backend ]

type repr =
  | Demand
  | Arr of int array
  | Bit of Min_tree.t  (* indices mirrored for Dir.Up, see below *)
  | Seg of Segment_tree.t  (* same mirroring *)

type t = {
  backend : backend;
  dir : Dir.t;
  graph : Fr_dag.Graph.t;
  tcam : Tcam.t;
  repr : repr;
}

let dir t = t.dir
let backend t = t.backend

let size t = Tcam.size t.tcam

(* Tie-breaking: the LOWEST address wins ties for Up, the HIGHEST for Down —
   i.e. always the candidate nearest the entries, keeping the free pool
   contiguous.  (Algorithm 1's literal "<=" would prefer the highest
   address, which eats the free pool from the far end and eventually
   strands the top slot; see DESIGN.md §7.)  The BIT natively prefers the
   highest internal index on ties, so Up runs on mirrored indices. *)
let to_internal t a = match t.dir with Dir.Up -> size t - 1 - a | Dir.Down -> a
let of_internal = to_internal

(* Dead rows are unusable as chain landing slots: their metric is a
   sentinel larger than any real chain length, so [min_in] can both
   avoid them and recognise an all-dead window.  Far below [max_int] so
   arithmetic around it cannot overflow. *)
let dead_metric = max_int / 4

let compute t addr =
  if Tcam.is_dead t.tcam addr then dead_metric
  else Metric.compute t.dir t.graph t.tcam ~addr

let stored_get t addr =
  match t.repr with
  | Demand -> compute t addr
  | Arr m -> m.(addr)
  | Bit mt -> Min_tree.get mt (to_internal t addr)
  | Seg st -> Segment_tree.get st (to_internal t addr)

let get t addr =
  if Tcam.is_dead t.tcam addr then dead_metric else stored_get t addr

let stored_set t addr v =
  match t.repr with
  | Demand -> ()
  | Arr m -> m.(addr) <- v
  | Bit mt -> Min_tree.set mt (to_internal t addr) v
  | Seg st -> Segment_tree.set st (to_internal t addr) v

let rebuild t =
  match t.repr with
  | Demand -> ()
  | Arr _ | Bit _ | Seg _ ->
      for a = 0 to size t - 1 do
        stored_set t a (compute t a)
      done

let create ~backend ~dir graph tcam =
  let repr =
    match backend with
    | On_demand -> Demand
    | Array_backend -> Arr (Array.make (Tcam.size tcam) 0)
    | Bit_backend -> Bit (Min_tree.create (Tcam.size tcam) ~init:0)
    | Seg_backend -> Seg (Segment_tree.create (Tcam.size tcam) ~init:0)
  in
  let t = { backend; dir; graph; tcam; repr } in
  rebuild t;
  t

(* Linear scan with direction-dependent tie-breaking: Up prefers the lowest
   address, Down the highest (see above). *)
let scan_min value_at t ~lo ~hi =
  let lo = max 0 lo and hi = min (size t - 1) hi in
  if lo > hi then None
  else begin
    let best_a = ref lo and best_v = ref (value_at t lo) in
    for a = lo + 1 to hi do
      let v = value_at t a in
      let replace =
        match t.dir with Dir.Up -> v < !best_v | Dir.Down -> v <= !best_v
      in
      if replace then begin
        best_a := a;
        best_v := v
      end
    done;
    Some (!best_a, !best_v)
  end

let raw_min_in t ~lo ~hi =
  match t.repr with
  | Demand -> scan_min compute t ~lo ~hi
  | Arr m -> scan_min (fun _ a -> m.(a)) t ~lo ~hi
  | Bit mt ->
      let lo = max 0 lo and hi = min (size t - 1) hi in
      if lo > hi then None
      else begin
        let ilo = min (to_internal t lo) (to_internal t hi)
        and ihi = max (to_internal t lo) (to_internal t hi) in
        match Min_tree.min_in mt ~lo:ilo ~hi:ihi with
        | None -> None
        | Some (ia, v) -> Some (of_internal t ia, v)
      end
  | Seg st ->
      let lo = max 0 lo and hi = min (size t - 1) hi in
      if lo > hi then None
      else begin
        let ilo = min (to_internal t lo) (to_internal t hi)
        and ihi = max (to_internal t lo) (to_internal t hi) in
        match Segment_tree.min_in st ~lo:ilo ~hi:ihi with
        | None -> None
        | Some (ia, v) -> Some (of_internal t ia, v)
      end

(* Stored backends can hold a stale (pre-discovery) value for a row that
   has since been declared dead: a failed op never refreshes its target.
   Each query lazily repairs the stale cells it trips over — every
   round-trip permanently raises one dead address to the sentinel, so
   the loop terminates.  (On-demand computes fresh values, so a dead
   winner already carries the sentinel and falls out on the first
   test.) *)
let rec min_in t ~lo ~hi =
  match raw_min_in t ~lo ~hi with
  | None -> None
  | Some (_, v) when v >= dead_metric -> None
  | Some (a, _) when Tcam.is_dead t.tcam a ->
      stored_set t a dead_metric;
      min_in t ~lo ~hi
  | Some _ as best -> best

let refresh t ~addrs ~ids =
  match t.repr with
  | Demand -> ()
  | Arr _ | Bit _ | Seg _ ->
      let pending : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      let queue = Queue.create () in
      let enqueue_id id =
        if not (Hashtbl.mem pending id) then begin
          Hashtbl.replace pending id ();
          Queue.add id queue
        end
      in
      (* Phase 1: addresses whose occupancy changed get fresh values, and
         every entry whose chain reads them is queued unconditionally (its
         nearest-hop pointer may have silently moved here or away). *)
      List.iter
        (fun a ->
          stored_set t a (compute t a);
          match Tcam.read t.tcam a with
          | Tcam.Free -> ()
          | Tcam.Used id -> Dir.propagation_targets t.dir t.graph id enqueue_id)
        (List.sort_uniq Int.compare addrs);
      List.iter enqueue_id ids;
      (* Phase 2: value-change propagation along the reverse chains. *)
      while not (Queue.is_empty queue) do
        let id = Queue.pop queue in
        Hashtbl.remove pending id;
        match Tcam.addr_of t.tcam id with
        | None -> ()
        | Some a ->
            let v = compute t a in
            if v <> stored_get t a then begin
              stored_set t a v;
              Dir.propagation_targets t.dir t.graph id enqueue_id
            end
      done

let snapshot t = Array.init (size t) (fun a -> stored_get t a)
