(** Metric storage back-ends — the three methods of §III/§IV.

    The greedy's inner step is "find the candidate address with the minimum
    metric".  The paper gives three ways to answer it:

    - {e on-demand} ([On_demand]): recompute [M] for every candidate at
      query time — O(c_avg x range) per query, nothing to maintain;
    - {e pre-compute with array} ([Array_backend]): keep [M] in a plain
      array — O(range) scan per query, O(c_avg) maintenance per update;
    - {e pre-compute with BIT} ([Bit_backend]): keep [M] in the modified
      Binary Indexed Tree — O(log n) query, O(c_avg (log n)^2) maintenance.

    All three implement the same interface and, by construction, the same
    tie-breaking: the candidate {e nearest the entries} wins ties — the
    lowest address for {!Dir.Up}, the highest for {!Dir.Down} (the BIT runs
    on mirrored indices for [Up]).  This deviates from Algorithm 1's
    literal [<=] scan, which would prefer the farthest candidate and eat
    the free pool from the wrong end until the top slot strands; it agrees
    with the paper on every worked example (ties between {e free} slots
    never change the op count, only future packing).  A scheduler's
    decisions are identical across back-ends; the test suite asserts
    this. *)

type backend =
  | On_demand
  | Array_backend
  | Bit_backend
  | Seg_backend
      (** our extension: a segment tree with O(log n) point assignment
          (vs the BIT's O((log n)^2)) — see {!Fr_bitree.Segment_tree} and
          the ablation bench *)

val backend_to_string : backend -> string
val all_backends : backend list

type t

val create : backend:backend -> dir:Dir.t -> Fr_dag.Graph.t -> Fr_tcam.Tcam.t -> t
(** Builds the initial metrics for every address (O(n c_avg)).  The store
    keeps references to the graph and TCAM; call {!refresh} after every
    applied update to keep the pre-computed back-ends truthful. *)

val dir : t -> Dir.t
val backend : t -> backend

val dead_metric : int
(** Sentinel metric carried by rows the {!Fr_tcam.Deadmap} marks dead —
    larger than any real chain length, so dead rows lose every
    [min_in] comparison and an all-dead window is recognisable. *)

val get : t -> int -> int
(** Metric at an address (computed on the fly for [On_demand];
    {!dead_metric} for dead rows). *)

val min_in : t -> lo:int -> hi:int -> (int * int) option
(** [(address, metric)] minimising the metric over the inclusive range,
    ties broken toward the free-space pool; [None] when [lo > hi] or
    when every address in range is dead (the returned address is never
    a dead row — stale pre-discovery values are lazily repaired).
    Endpoints are clamped to the TCAM. *)

val refresh : t -> addrs:int list -> ids:int list -> unit
(** Re-establish correctness after the TCAM and/or graph changed:
    [addrs] are all addresses whose occupancy changed (every op address of
    the applied sequence covers them) and [ids] are additional entries
    whose metric may be stale even though their address kept its occupant
    (e.g. the dependents of a deleted node).  Changes propagate along
    {!Dir.propagation_targets} until values stabilise.  No-op for
    [On_demand]. *)

val rebuild : t -> unit
(** Recompute everything from scratch (test oracle / recovery hatch). *)

val snapshot : t -> int array
(** The metric of every address as the back-end currently believes it
    ([On_demand] computes fresh).  The property tests compare this against
    a from-scratch recomputation after every update. *)
