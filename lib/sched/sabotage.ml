type mode = Reverse | Drop_first

let all_modes = [ Reverse; Drop_first ]

let mode_to_string = function
  | Reverse -> "reverse"
  | Drop_first -> "drop-first"

let mode_of_string = function
  | "reverse" -> Some Reverse
  | "drop-first" | "drop_first" -> Some Drop_first
  | _ -> None

let mangle mode ops =
  match ops with
  | [] | [ _ ] -> ops
  | _ :: rest -> ( match mode with Reverse -> List.rev ops | Drop_first -> rest)

let wrap mode (a : Algo.t) =
  let corrupt = Result.map (mangle mode) in
  {
    Algo.name = a.Algo.name ^ "!" ^ mode_to_string mode;
    schedule_insert =
      (fun ~rule_id ~deps ~dependents ->
        corrupt (a.Algo.schedule_insert ~rule_id ~deps ~dependents));
    schedule_delete =
      (fun ~rule_id -> corrupt (a.Algo.schedule_delete ~rule_id));
    after_apply = a.Algo.after_apply;
    insert_batch = None;
  }
