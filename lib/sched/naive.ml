module Tcam = Fr_tcam.Tcam
module Op = Fr_tcam.Op

type pending = Commit of { id : int; p : int } | Remove of int | Nothing

type state = {
  tcam : Tcam.t;
  prio : (int, int) Hashtbl.t;  (* dense ranks: 1 = bottom *)
  mutable pending : pending;
  mutable renumbers : int;
}

let create ~tcam =
  let st = { tcam; prio = Hashtbl.create 64; pending = Nothing; renumbers = 0 } in
  let i = ref 0 in
  Tcam.iter_used tcam (fun ~addr:_ ~rule_id ->
      incr i;
      Hashtbl.replace st.prio rule_id !i);
  st

let priority_of st id = Hashtbl.find_opt st.prio id
let renumber_count st = st.renumbers

let prio_exn st id =
  match Hashtbl.find_opt st.prio id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Naive: entry %d has no priority" id)

let max_priority st = Hashtbl.fold (fun _ p acc -> max p acc) st.prio 0

(* The address of the lowest-addressed entry whose priority is at least
   [p] (the table is priority-sorted, so everything above it also is). *)
let first_at_or_above st p =
  let n = Tcam.size st.tcam in
  let rec go a =
    if a >= n then None
    else
      match Tcam.read st.tcam a with
      | Tcam.Used id when prio_exn st id >= p -> Some a
      | Tcam.Used _ | Tcam.Free -> go (a + 1)
  in
  go 0

(* The firmware's per-movement work: re-locate the displaced entry by a
   fresh table scan (§VI.A: "it needs to locate the suitable place in
   every update, and assign a new priority for all entries that need to be
   moved").  The scan result is the entry's own slot — the point is its
   cost, which is what the paper's measurements show. *)
let relocate_entry st id =
  ignore (first_at_or_above st (prio_exn st id))

(* Shifting generalised over dead rows.  The window [pos, U] (resp.
   [D, pos - 1]) grows until its writable (non-dead) slots can hold every
   entry inside it plus the new one; entries are then repacked onto the
   writable slots in the same relative order, stepping over dead free
   slots and carrying the occupants of dead used rows along (entries can
   always be moved {e out} of a dead row — only writes {e into} one
   fail).  The walk stops at the first writable free slot where the
   writable surplus reaches one, so on healthy hardware the window is
   exactly [pos, nearest-free] and the ops degenerate to the classic
   shift-everything-by-one.  Minimality of the window means every entry
   in it moves strictly toward the free end, so applying the moves
   farthest-first keeps each write target free and no entry ever passes
   another — DAG order holds at every intermediate state. *)
let grow_window st ~from ~step =
  let n = Tcam.size st.tcam in
  let rec walk a surplus =
    if a < 0 || a >= n then None
    else
      let dead = Tcam.is_dead st.tcam a in
      match Tcam.read st.tcam a with
      | Tcam.Free when not dead ->
          if surplus >= 0 then Some a else walk (a + step) (surplus + 1)
      | Tcam.Free -> walk (a + step) surplus
      | Tcam.Used _ -> walk (a + step) (if dead then surplus - 1 else surplus)
  in
  walk from 0

(* Entry ids and writable addresses of [lo, hi], both in ascending
   address order.  In a minimal window there is exactly one more
   writable slot than there are entries. *)
let window_contents st ~lo ~hi =
  let entries = ref [] and writable = ref [] in
  for a = hi downto lo do
    if not (Tcam.is_dead st.tcam a) then writable := a :: !writable;
    match Tcam.read st.tcam a with
    | Tcam.Used id -> entries := id :: !entries
    | Tcam.Free -> ()
  done;
  (Array.of_list !entries, Array.of_list !writable)

(* Repack [pos, u]: the new entry lands on the lowest writable slot,
   every entry steps up to the next writable one.  Application order:
   topmost first, the new entry last. *)
let shift_up_ops st ~pos ~u ~rule_id =
  let entries, writable = window_contents st ~lo:pos ~hi:u in
  let ops = ref [ Op.insert ~rule_id ~addr:writable.(0) ] in
  for i = 0 to Array.length entries - 1 do
    relocate_entry st entries.(i);
    ops := Op.insert ~rule_id:entries.(i) ~addr:writable.(i + 1) :: !ops
  done;
  !ops

(* Mirror: repack [d, pos - 1]; the new entry lands on the highest
   writable slot, every entry steps down.  Application order:
   bottom-most first, the new entry last. *)
let shift_down_ops st ~pos ~d ~rule_id =
  let entries, writable = window_contents st ~lo:d ~hi:(pos - 1) in
  let k = Array.length entries in
  let moves = ref [] in
  for i = k - 1 downto 0 do
    relocate_entry st entries.(i);
    moves := Op.insert ~rule_id:entries.(i) ~addr:writable.(i) :: !moves
  done;
  !moves @ [ Op.insert ~rule_id ~addr:writable.(k) ]

(* Make room in the rank space: every entry with rank >= p moves up one. *)
let bump_ranks st p =
  let bumped = ref false in
  Hashtbl.iter
    (fun id q ->
      if q >= p then begin
        Hashtbl.replace st.prio id (q + 1);
        bumped := true
      end)
    (Hashtbl.copy st.prio);
  if !bumped then st.renumbers <- st.renumbers + 1

let schedule_insert st ~rule_id ~deps ~dependents =
  match Algo.fresh_request_check st.tcam ~rule_id with
  | Error _ as e -> e
  | Ok () -> (
      let missing =
        List.find_opt (fun id -> not (Tcam.mem st.tcam id)) (deps @ dependents)
      in
      match missing with
      | Some id -> Error (Printf.sprintf "constraint entry %d is not in the TCAM" id)
      | None ->
          let lo_p =
            List.fold_left (fun acc id -> max acc (prio_exn st id)) 0 dependents
          in
          let hi_p =
            List.fold_left
              (fun acc id -> min acc (prio_exn st id))
              (max_priority st + 1)
              deps
          in
          if hi_p <= lo_p then Error "contradictory priority constraints"
          else begin
            (* The new entry takes rank [hi_p]; everything at or above
               shifts one rank up. *)
            let pos =
              match first_at_or_above st hi_p with
              | Some a -> a
              | None -> (
                  match Tcam.highest_used st.tcam with
                  | Some top -> top + 1
                  | None -> 0)
            in
            let ops =
              if
                pos < Tcam.size st.tcam
                && Tcam.is_free st.tcam pos
                && not (Tcam.is_dead st.tcam pos)
              then Some [ Op.insert ~rule_id ~addr:pos ]
              else
                let up = grow_window st ~from:pos ~step:1 in
                let down =
                  if pos = 0 then None
                  else grow_window st ~from:(pos - 1) ~step:(-1)
                in
                match (up, down) with
                | None, None -> None
                | Some u, None -> Some (shift_up_ops st ~pos ~u ~rule_id)
                | None, Some d -> Some (shift_down_ops st ~pos ~d ~rule_id)
                | Some u, Some d ->
                    (* Fewest movements wins, ties go up (with no dead
                       rows both counts equal the spans the classic
                       comparison used). *)
                    let moves lo hi =
                      let c = ref 0 in
                      for a = lo to hi do
                        match Tcam.read st.tcam a with
                        | Tcam.Used _ -> incr c
                        | Tcam.Free -> ()
                      done;
                      !c
                    in
                    if moves pos u <= moves d (pos - 1) then
                      Some (shift_up_ops st ~pos ~u ~rule_id)
                    else Some (shift_down_ops st ~pos ~d ~rule_id)
            in
            match ops with
            | None -> Error "TCAM is full"
            | Some ops ->
                bump_ranks st hi_p;
                st.pending <- Commit { id = rule_id; p = hi_p };
                Ok ops
          end)

let schedule_delete st ~rule_id =
  match Tcam.addr_of st.tcam rule_id with
  | None -> Error (Printf.sprintf "entry %d is not in the TCAM" rule_id)
  | Some addr ->
      st.pending <- Remove rule_id;
      Ok [ Op.delete ~addr ]

let after_apply st (_ : Op.t list) =
  (match st.pending with
  | Commit { id; p } -> Hashtbl.replace st.prio id p
  | Remove id -> Hashtbl.remove st.prio id
  | Nothing -> ());
  st.pending <- Nothing

let algo st =
  {
    Algo.name = "naive";
    schedule_insert =
      (fun ~rule_id ~deps ~dependents -> schedule_insert st ~rule_id ~deps ~dependents);
    schedule_delete = (fun ~rule_id -> schedule_delete st ~rule_id);
    after_apply = (fun ops -> after_apply st ops);
    insert_batch = None;
  }
