(** Deliberately broken schedulers — the conformance harness' test hook.

    A differential oracle is only trustworthy if it demonstrably catches a
    wrong scheduler; [wrap] manufactures one by mangling the update
    sequences an otherwise-correct scheduler emits.  Both modes leave
    single-op sequences alone (those carry no ordering obligations worth
    breaking) and corrupt every multi-op sequence in a way
    {!Check.sequence} provably rejects: some op ends up writing over a
    still-live entry.

    This lives in the library (not the tests) so the CLI's
    [conform --break] flag and the test suite share one saboteur. *)

type mode =
  | Reverse  (** apply the sequence back to front: the final insert now
                 comes first and lands on the occupied chain slot *)
  | Drop_first
      (** lose the op that vacates the chain's free-space end: every
          later op writes onto a live entry *)

val all_modes : mode list
val mode_to_string : mode -> string
val mode_of_string : string -> mode option

val wrap : mode -> Algo.t -> Algo.t
(** The same scheduler with every emitted multi-op sequence mangled
    (insertions and deletions both); [after_apply] and the batch path are
    delegated untouched except that batching is disabled — the saboteur
    must see each sequence before it reaches the TCAM. *)
