(** Bounded pool of OCaml 5 domains with work-stealing submit and a
    deadline-aware join.

    The control plane fans independent per-shard drains out to a pool and
    joins them back in shard order; the pool itself is generic and knows
    nothing about shards.  Design points that matter to callers:

    - {b Persistent workers.}  A pool spawns its worker domains once at
      [create] time and keeps them parked on a condition variable between
      submissions.  Spawning a domain costs far more than a typical drain,
      and the runtime caps the number of live domains, so callers should
      share pools (see {!shared}) rather than create one per service.
    - {b Work stealing.}  Each worker owns a deque; [submit] distributes
      tasks round-robin, an idle worker drains its own deque first and then
      steals the oldest task from a sibling.  Tasks here are coarse (a whole
      shard drain), so all deques hang off a single pool lock — contention
      is a few lock acquisitions per task, not per operation.
    - {b Deterministic failure.}  A task that raises stores its exception in
      its handle; worker domains never die.  [await] surfaces the exception
      as [Error], so a join over many handles can merge results in a fixed
      order and decide what to re-raise.
    - {b Caller helps when unbounded, polls when deadlined.}  [await]
      without a deadline lends the calling domain to the pool (it executes
      queued tasks while waiting), so even a [~workers:0] pool makes
      progress.  With [~deadline_ms] the caller only polls — it must be able
      to return the moment the deadline passes, which it could not do from
      inside a borrowed task. *)

type t
(** A pool of worker domains. *)

type 'a handle
(** A submitted task: either still pending, or resolved to a value or to the
    exception the task raised. *)

exception Saturated
(** Raised by {!submit} when [max_pending] tasks are already queued. *)

exception Timed_out
(** Returned (as [Error Timed_out]) by {!await} when the deadline passes
    before the task resolves. *)

exception Shut_down
(** Raised by {!submit}/{!try_submit} on a pool that has been shut down. *)

val create : ?max_pending:int -> workers:int -> unit -> t
(** [create ~workers ()] spawns [workers] domains (in addition to the
    caller's).  [workers = 0] is legal: tasks then run inside un-deadlined
    [await] calls on the submitting domain — the exact legacy sequential
    path.  [max_pending] bounds the number of queued (not yet started)
    tasks; default 65536. *)

val workers : t -> int
(** Number of worker domains spawned by this pool. *)

val try_submit : t -> (unit -> 'a) -> 'a handle option
(** [try_submit t f] enqueues [f]; [None] if [max_pending] tasks are
    already queued.  @raise Shut_down on a stopped pool. *)

val submit : t -> (unit -> 'a) -> 'a handle
(** Like {!try_submit}.  @raise Saturated instead of returning [None]. *)

val await : ?deadline_ms:float -> 'a handle -> ('a, exn) result
(** [await h] blocks until [h] resolves: [Ok v] if the task returned [v],
    [Error e] if it raised [e].  Without a deadline the caller executes
    queued pool tasks while it waits.  With [~deadline_ms] (relative, in
    wall-clock milliseconds) the caller polls and returns
    [Error Timed_out] once the deadline passes; the task itself keeps
    running and may be awaited again. *)

val run_all : t -> (unit -> 'a) array -> ('a, exn) result array
(** [run_all t fs] submits every thunk, then awaits them all; result [i]
    corresponds to [fs.(i)] regardless of execution interleaving.  This is
    the deterministic join used by the parallel flush: outcomes are merged
    in submission order, so any re-raise policy downstream is stable.
    @raise Saturated if [fs] exceeds the pool's admission bound. *)

val shutdown : t -> unit
(** Graceful stop: lets queued tasks finish, joins the worker domains, and
    rejects further submissions.  Idempotent; concurrent [await]s on
    already-submitted handles still resolve. *)

val shared : workers:int -> t
(** [shared ~workers] returns a process-wide pool with that many workers,
    creating it on first use (or if a previous one was shut down).  Shared
    pools are joined via [at_exit].  This is what [Service.flush] uses, so
    any number of services and test cases reuse the same few domains
    instead of exhausting the runtime's domain limit. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — the default for
    [--domains] in the CLI and bench harness. *)
