(* Bounded domain pool with work-stealing submit and deadline-aware join.

   Concurrency discipline: one mutex guards every deque, every handle
   outcome and the pool state; [work] wakes parked workers, [resolved] wakes
   awaiters.  Task bodies run outside the lock.  Tasks are coarse (a whole
   shard drain each), so the single lock is a few acquisitions per task —
   far below the cost of the task itself — and buys us an obviously
   race-free design instead of a lock-free deque. *)

exception Saturated
exception Timed_out
exception Shut_down

type state = Running | Draining | Stopped

type cell = { run : unit -> unit }

type t = {
  lock : Mutex.t;
  work : Condition.t; (* new task queued, or shutdown requested *)
  resolved : Condition.t; (* some handle resolved *)
  deques : cell Queue.t array; (* one per worker; >= 1 even when workers=0 *)
  mutable cursor : int; (* round-robin target for the next submit *)
  mutable queued : int; (* tasks sitting in deques, not yet running *)
  max_pending : int;
  mutable state : state;
  mutable domains : unit Domain.t list;
  workers : int;
}

type 'a outcome = Pending | Done of 'a | Raised of exn

type 'a handle = { pool : t; mutable outcome : 'a outcome }

let workers t = t.workers

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Pop from our own deque first (oldest first — submission order), then
   steal the oldest task of the nearest sibling.  Must hold [t.lock]. *)
let take_locked t ~own =
  let n = Array.length t.deques in
  let rec scan k tried =
    if tried >= n then None
    else
      let q = t.deques.(k mod n) in
      if Queue.is_empty q then scan (k + 1) (tried + 1)
      else Some (Queue.pop q)
  in
  match scan own 0 with
  | Some c ->
      t.queued <- t.queued - 1;
      Some c
  | None -> None

let worker_loop t own () =
  Mutex.lock t.lock;
  let rec loop () =
    match take_locked t ~own with
    | Some c ->
        Mutex.unlock t.lock;
        c.run ();
        Mutex.lock t.lock;
        loop ()
    | None ->
        if t.state = Running then begin
          Condition.wait t.work t.lock;
          loop ()
        end
        (* Draining/Stopped with empty deques: fall through and exit. *)
  in
  loop ();
  Mutex.unlock t.lock

let create ?(max_pending = 65536) ~workers () =
  if workers < 0 then invalid_arg "Pool.create: workers < 0";
  if max_pending < 1 then invalid_arg "Pool.create: max_pending < 1";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      resolved = Condition.create ();
      deques = Array.init (max 1 workers) (fun _ -> Queue.create ());
      cursor = 0;
      queued = 0;
      max_pending;
      state = Running;
      domains = [];
      workers;
    }
  in
  t.domains <- List.init workers (fun i -> Domain.spawn (worker_loop t i));
  t

(* The task body never escapes an exception: the outcome (value or raise) is
   published under the pool lock so awaiters never miss a wakeup. *)
let make_cell t f =
  let h = { pool = t; outcome = Pending } in
  let run () =
    let o = match f () with v -> Done v | exception e -> Raised e in
    Mutex.lock t.lock;
    h.outcome <- o;
    Condition.broadcast t.resolved;
    Mutex.unlock t.lock
  in
  (h, { run })

let try_submit t f =
  Mutex.lock t.lock;
  if t.state <> Running then begin
    Mutex.unlock t.lock;
    raise Shut_down
  end;
  if t.queued >= t.max_pending then begin
    Mutex.unlock t.lock;
    None
  end
  else begin
    let h, c = make_cell t f in
    let k = t.cursor mod Array.length t.deques in
    t.cursor <- t.cursor + 1;
    Queue.push c t.deques.(k);
    t.queued <- t.queued + 1;
    Condition.signal t.work;
    Mutex.unlock t.lock;
    Some h
  end

let submit t f =
  match try_submit t f with Some h -> h | None -> raise Saturated

let await ?deadline_ms h =
  let t = h.pool in
  let deadline = Option.map (fun ms -> now_ms () +. ms) deadline_ms in
  Mutex.lock t.lock;
  let rec loop () =
    match h.outcome with
    | Done v ->
        Mutex.unlock t.lock;
        Ok v
    | Raised e ->
        Mutex.unlock t.lock;
        Error e
    | Pending -> (
        match deadline with
        | Some limit ->
            if now_ms () > limit then begin
              Mutex.unlock t.lock;
              Error Timed_out
            end
            else begin
              (* Poll: a borrowed task could overrun the deadline, so a
                 deadlined await never helps execute. *)
              Mutex.unlock t.lock;
              Unix.sleepf 0.0002;
              Mutex.lock t.lock;
              loop ()
            end
        | None -> (
            (* Lend this domain to the pool while we wait; with workers=0
               this is the only executor and gives the legacy inline path. *)
            match take_locked t ~own:0 with
            | Some c ->
                Mutex.unlock t.lock;
                c.run ();
                Mutex.lock t.lock;
                loop ()
            | None ->
                Condition.wait t.resolved t.lock;
                loop ()))
  in
  loop ()

let run_all t fs =
  let n = Array.length fs in
  let handles = Array.make n None in
  for i = 0 to n - 1 do
    handles.(i) <- Some (submit t fs.(i))
  done;
  let out = Array.make n (Error Timed_out) in
  for i = 0 to n - 1 do
    match handles.(i) with
    | Some h -> out.(i) <- await h
    | None -> assert false
  done;
  out

let shutdown t =
  Mutex.lock t.lock;
  match t.state with
  | Draining | Stopped -> Mutex.unlock t.lock
  | Running ->
      t.state <- Draining;
      Condition.broadcast t.work;
      let doms = t.domains in
      t.domains <- [];
      Mutex.unlock t.lock;
      List.iter Domain.join doms;
      Mutex.lock t.lock;
      t.state <- Stopped;
      Condition.broadcast t.resolved;
      Mutex.unlock t.lock

(* Process-wide pools, keyed by worker count.  Flushes from any number of
   services (and test cases) share the same few domains, which keeps us far
   from the runtime's live-domain cap. *)
let shared_lock = Mutex.create ()

let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared_at_exit_installed = ref false

let shutdown_shared () =
  let pools =
    Mutex.lock shared_lock;
    let ps = Hashtbl.fold (fun _ p acc -> p :: acc) shared_pools [] in
    Hashtbl.reset shared_pools;
    Mutex.unlock shared_lock;
    ps
  in
  List.iter shutdown pools

let shared ~workers =
  Mutex.lock shared_lock;
  if not !shared_at_exit_installed then begin
    shared_at_exit_installed := true;
    at_exit shutdown_shared
  end;
  let alive p =
    Mutex.lock p.lock;
    let a = p.state = Running in
    Mutex.unlock p.lock;
    a
  in
  let p =
    match Hashtbl.find_opt shared_pools workers with
    | Some p when alive p -> p
    | _ ->
        let p = create ~workers () in
        Hashtbl.replace shared_pools workers p;
        p
  in
  Mutex.unlock shared_lock;
  p

let recommended () = max 1 (Domain.recommended_domain_count ())
