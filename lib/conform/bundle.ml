module Journal = Fr_resil.Journal

type info = {
  mode : string;
  at : int;
  mid_drain : bool;
  batch : int;
  shards : int;
  fault_shard : int;
  slow_ms : float;
}

let meta_name = "bundle.meta"
let trace_name = "trace"
let journal_subdir = "journal"
let magic = "fastrule-bundle 1"

let is_bundle dir =
  Sys.file_exists dir
  && Sys.is_directory dir
  && Sys.file_exists (Filename.concat dir meta_name)
  && Sys.file_exists (Filename.concat dir trace_name)

let journal_dir dir =
  let j = Filename.concat dir journal_subdir in
  if Sys.file_exists j && Sys.is_directory j then Some j else None

let trace_file dir = Filename.concat dir trace_name

let copy_file src dst =
  let data = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc data)

let info_to_string i =
  String.concat "\n"
    [
      magic;
      "mode " ^ i.mode;
      "at " ^ string_of_int i.at;
      "mid_drain " ^ string_of_bool i.mid_drain;
      "batch " ^ string_of_int i.batch;
      "shards " ^ string_of_int i.shards;
      "fault_shard " ^ string_of_int i.fault_shard;
      Printf.sprintf "slow_ms %g" i.slow_ms;
      "";
    ]

let info_of_string s =
  match String.split_on_char '\n' s with
  | header :: rest when String.trim header = magic ->
      let fields = Hashtbl.create 8 in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | Some i ->
              Hashtbl.replace fields
                (String.sub line 0 i)
                (String.trim
                   (String.sub line (i + 1) (String.length line - i - 1)))
          | None -> ())
        rest;
      let get name parse fallback =
        match Hashtbl.find_opt fields name with
        | None -> Ok fallback
        | Some v -> (
            match parse v with
            | Some x -> Ok x
            | None -> Error (Printf.sprintf "bundle: bad %s %S" name v))
      in
      let ( let* ) = Result.bind in
      let* mode = get "mode" Option.some "crash" in
      let* at = get "at" int_of_string_opt 0 in
      let* mid_drain = get "mid_drain" bool_of_string_opt false in
      let* batch = get "batch" int_of_string_opt 4 in
      let* shards = get "shards" int_of_string_opt 1 in
      let* fault_shard = get "fault_shard" int_of_string_opt 0 in
      let* slow_ms = get "slow_ms" float_of_string_opt 0.0 in
      Ok { mode; at; mid_drain; batch; shards; fault_shard; slow_ms }
  | _ -> Error "bundle: missing fastrule-bundle header"

let write ~dir info ~trace ~journal =
  Journal.ensure_dir dir;
  Trace.save trace (trace_file dir);
  Out_channel.with_open_text (Filename.concat dir meta_name) (fun oc ->
      Out_channel.output_string oc (info_to_string info));
  (match journal with
  | Some jdir when Sys.file_exists jdir && Sys.is_directory jdir ->
      let dst = Filename.concat dir journal_subdir in
      Journal.ensure_dir dst;
      Array.iter
        (fun f ->
          let src = Filename.concat jdir f in
          if not (Sys.is_directory src) then
            copy_file src (Filename.concat dst f))
        (Sys.readdir jdir)
  | Some _ | None -> ());
  dir

let load dir =
  if not (is_bundle dir) then
    Error (Printf.sprintf "bundle: %s is not a divergence bundle" dir)
  else
    let ( let* ) = Result.bind in
    let* meta =
      try
        Ok
          (In_channel.with_open_text (Filename.concat dir meta_name)
             In_channel.input_all)
      with Sys_error e -> Error ("bundle: " ^ e)
    in
    let* info = info_of_string meta in
    let* trace = Trace.load (trace_file dir) in
    Ok (info, trace)

let pp_info ppf i =
  Format.fprintf ppf "%s bundle: at %d%s, batch %d, %d shard%s%s%s" i.mode i.at
    (if i.mid_drain then " (mid-drain)" else "")
    i.batch i.shards
    (if i.shards = 1 then "" else "s")
    (if i.mode = "failover" then Printf.sprintf ", fault shard %d" i.fault_shard
     else "")
    (if i.slow_ms > 0.0 then Printf.sprintf ", slow %g ms/op" i.slow_ms else "")
