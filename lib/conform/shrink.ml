let drop_range lst lo len =
  List.filteri (fun i _ -> i < lo || i >= lo + len) lst

let minimize ?(max_runs = 2000) ~failing (trace : Trace.t) =
  let runs = ref 0 in
  let check t =
    if !runs >= max_runs then false
    else begin
      incr runs;
      failing t
    end
  in
  let base = Trace.with_events trace trace.Trace.events in
  if not (check base) then (base, !runs)
  else begin
    let best = ref base in
    let improved = ref true in
    while !improved && !runs < max_runs do
      improved := false;
      let n = List.length !best.Trace.events in
      (* chunk sizes n/2, n/4, ..., 1 — restart from the top after any
         successful deletion (the classic ddmin refinement loop) *)
      let chunk = ref (max 1 (n / 2)) in
      let continue_sizes = ref true in
      while !continue_sizes && !runs < max_runs do
        let n = List.length !best.Trace.events in
        let deleted_one = ref false in
        let lo = ref 0 in
        while !lo < n && !runs < max_runs do
          let len = min !chunk (List.length !best.Trace.events - !lo) in
          if len > 0 && !lo < List.length !best.Trace.events then begin
            let candidate =
              Trace.with_events !best (drop_range !best.Trace.events !lo len)
            in
            if candidate.Trace.events <> !best.Trace.events && check candidate
            then begin
              best := candidate;
              deleted_one := true;
              improved := true
              (* keep [lo]: the next chunk slid into this position *)
            end
            else lo := !lo + len
          end
          else lo := !lo + max len 1
        done;
        if !deleted_one then ()
        else if !chunk = 1 then continue_sizes := false
        else chunk := max 1 (!chunk / 2)
      done
    done;
    (!best, !runs)
  end
