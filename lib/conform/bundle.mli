(** Divergence bundles: a failing conformance run, frozen for offline
    replay.

    When the crash or failover oracle finds a divergence, the interesting
    state is ephemeral — the trace lives in memory and the journal in a
    temp directory the oracle deletes on exit.  A bundle captures both
    before they vanish: a directory holding the serialized trace
    ({!Trace.save}), a [bundle.meta] header recording exactly which
    differential mode diverged and with what parameters, and (for crash
    runs) a verbatim copy of the journal directory.  [conform --replay]
    on a bundle re-runs the recorded mode bit-for-bit. *)

type info = {
  mode : string;  (** ["crash"] or ["failover"] *)
  at : int;  (** crash point (events run before the simulated crash) *)
  mid_drain : bool;  (** begin markers on disk, no commit *)
  batch : int;  (** events per flush window *)
  shards : int;
  fault_shard : int;  (** shard under the persistent fault (failover) *)
  slow_ms : float;  (** latency-fault cost per hardware op (failover) *)
}

val write :
  dir:string -> info -> trace:Trace.t -> journal:string option -> string
(** Materialise a bundle at [dir] (created if missing): the trace, the
    meta header, and — when [journal] names a directory — a [journal/]
    copy of its files.  Returns [dir]. *)

val is_bundle : string -> bool
(** [dir] holds a [bundle.meta] and a trace — i.e. [--replay] should
    treat it as a bundle, not a bare trace file. *)

val load : string -> (info * Trace.t, string) result

val journal_dir : string -> string option
(** The bundle's captured journal copy, when it has one. *)

val trace_file : string -> string
(** Path of the bundle's serialized trace. *)

val pp_info : Format.formatter -> info -> unit
