module Rng = Fr_prng.Rng
module Rule = Fr_tern.Rule
module Header = Fr_tern.Header
module Op = Fr_tcam.Op
module Tcam = Fr_tcam.Tcam
module Fault = Fr_tcam.Fault
module Algo = Fr_sched.Algo
module Sabotage = Fr_sched.Sabotage
module Firmware = Fr_switch.Firmware
module Agent = Fr_switch.Agent
module Measure = Fr_switch.Measure
module Journal = Fr_resil.Journal
module Service = Fr_ctrl.Service
module Shard = Fr_ctrl.Shard
module Telemetry = Fr_ctrl.Telemetry
module Breaker = Fr_resil.Breaker

type outcome =
  | Applied
  | Rejected of string
  | Verify_failed of string
  | Faulted of string

let pp_outcome ppf = function
  | Applied -> Format.pp_print_string ppf "applied"
  | Rejected e -> Format.fprintf ppf "rejected (%s)" e
  | Verify_failed e -> Format.fprintf ppf "VERIFY FAILED (%s)" e
  | Faulted e -> Format.fprintf ppf "faulted (%s)" e

type divergence = { event : int; scheduler : string; detail : string }

let pp_divergence ppf d =
  Format.fprintf ppf "[%s] %s: %s"
    (if d.event < 0 then "end" else string_of_int d.event)
    d.scheduler d.detail

type config = {
  probes : int;
  verify : bool;
  record : bool;
  sabotage : (string * Sabotage.mode) list;
  fault_prob : float;
  fault_seed : int;
  max_failures : int;
}

let default_config =
  {
    probes = 8;
    verify = true;
    record = false;
    sabotage = [];
    fault_prob = 0.;
    fault_seed = 0;
    max_failures = -1;
  }

type column = {
  scheduler : string;
  applied : int;
  rejected : int;
  verify_failed : int;
  faulted : int;
  crashed : string option;
}

type report = {
  trace : Trace.t;
  columns : column list;
  events_run : int;
  probes_run : int;
  divergences : divergence list;
  checked_ops : int;
  snapshots_checked : int;
  verify_ms : float;
  wall_ms : float;
}

let clean r =
  r.divergences = [] && List.for_all (fun c -> c.crashed = None) r.columns

(* One scheduler under examination. *)
type lane = {
  name : string;
  agent : Agent.t;
  emitted : Op.t list array;  (** what the scheduler emitted, per event *)
  history : Buffer.t;  (** '1' per applied event, '0' otherwise *)
  mutable n_applied : int;
  mutable n_rejected : int;
  mutable n_verify_failed : int;
  mutable n_faulted : int;
  mutable dead : string option;
}

(* Record every accepted emission into [slot.(!cur)] — wrapped outside the
   saboteur, so the recording is what actually reached the TCAM. *)
let recorder ~slot ~cur (a : Algo.t) =
  {
    a with
    Algo.schedule_insert =
      (fun ~rule_id ~deps ~dependents ->
        let r = a.Algo.schedule_insert ~rule_id ~deps ~dependents in
        (match r with Ok ops -> slot.(!cur) <- ops | Error _ -> ());
        r);
    schedule_delete =
      (fun ~rule_id ->
        let r = a.Algo.schedule_delete ~rule_id in
        (match r with Ok ops -> slot.(!cur) <- ops | Error _ -> ());
        r);
    insert_batch = None;
  }

let fault_tolerant = function
  | Firmware.FR_O _ | Firmware.FR_SD _ | Firmware.FR_SB _ -> true
  | Firmware.Naive | Firmware.Ruletris -> false

let classify = function
  | Ok () -> Applied
  | Error e ->
      let has_prefix p =
        String.length e >= String.length p && String.sub e 0 (String.length p) = p
      in
      if has_prefix "verify: " then Verify_failed e
      else if has_prefix "fault: " then Faulted e
      else Rejected e

let store_image agent =
  List.sort compare
    (List.map (fun (r : Rule.t) -> (r.Rule.id, r.Rule.action)) (Agent.rules agent))

let winner_id = function None -> -1 | Some (r : Rule.t) -> r.Rule.id

(* Semantic winner over an explicit rule list — Agent.semantic_lookup's
   total order (priority, then lower id) detached from the live store, so
   it can answer for the *pre*-event rule set after the event applied. *)
let semantic_winner rules pkt =
  List.fold_left
    (fun best (r : Rule.t) ->
      if not (Rule.matches_packet r pkt) then best
      else
        match best with
        | None -> Some r
        | Some (b : Rule.t) ->
            if
              r.Rule.priority > b.Rule.priority
              || (r.Rule.priority = b.Rule.priority && r.Rule.id < b.Rule.id)
            then Some r
            else best)
    None rules

let run ?(config = default_config) (trace : Trace.t) =
  let pool = Trace.rules trace in
  let n_events = List.length trace.Trace.events in
  let kinds = Firmware.standard_algos Fr_sched.Store.Bit_backend in
  let cur = ref 0 in
  let preload = Array.sub pool 0 trace.Trace.initial in
  let divergences = ref [] in
  let diverge ~event ~scheduler detail =
    divergences := { event; scheduler; detail } :: !divergences
  in
  let make_lane kind =
    let name = Firmware.algo_kind_name kind in
    let emitted = Array.make (max n_events 1) ([] : Op.t list) in
    let scheduler ~graph ~tcam =
      let base = Firmware.make_scheduler kind ~graph ~tcam in
      let base =
        match List.assoc_opt name config.sabotage with
        | Some mode -> Sabotage.wrap mode base
        | None -> base
      in
      recorder ~slot:emitted ~cur base
    in
    let agent =
      Agent.of_rules ~kind ~scheduler ~verify:config.verify
        ~capacity:trace.Trace.capacity preload
    in
    (if config.fault_prob > 0. && fault_tolerant kind then
       let plan =
         Fault.create ~fail_prob:config.fault_prob
           ~max_failures:config.max_failures
           ~seed:(trace.Trace.seed lxor config.fault_seed lxor Hashtbl.hash name)
           ()
       in
       Agent.set_fault agent (Some plan));
    {
      name;
      agent;
      emitted;
      history = Buffer.create (n_events + 1);
      n_applied = 0;
      n_rejected = 0;
      n_verify_failed = 0;
      n_faulted = 0;
      dead = None;
    }
  in
  let lanes, setup_ms = Measure.time_ms (fun () -> List.map make_lane kinds) in
  (* probe stream: second split of the trace seed (the first is the event
     stream the generator consumed) *)
  let root = Rng.create ~seed:trace.Trace.seed in
  let _event_stream = Rng.split root in
  let probe_rng = Rng.split root in
  let probes_run = ref 0 in
  let snapshots_checked = ref 0 in
  let body () =
    List.iteri
      (fun idx ev ->
        cur := idx;
        let fm = Trace.flow_mod pool ev in
        (* 1. drive the event through every (live) lane, capturing every
           snapshot the lane publishes mid-cascade (one image per
           committed hardware op / payload bind) together with the
           pre-event rule set, for the snapshot-consistency step below *)
        let snap_work = ref [] in
        List.iter
          (fun lane ->
            match lane.dead with
            | Some _ -> Buffer.add_char lane.history 'x'
            | None -> (
                let pre_rules = Agent.rules lane.agent in
                let captured = ref [] in
                Agent.set_publish_observer lane.agent
                  (Some (fun img -> captured := img :: !captured));
                let finish_capture () =
                  Agent.set_publish_observer lane.agent None;
                  snap_work := (lane, pre_rules, List.rev !captured) :: !snap_work
                in
                match classify (Agent.apply lane.agent fm) with
                | Applied ->
                    finish_capture ();
                    lane.n_applied <- lane.n_applied + 1;
                    Buffer.add_char lane.history '1'
                | Rejected _ ->
                    finish_capture ();
                    lane.n_rejected <- lane.n_rejected + 1;
                    Buffer.add_char lane.history '0'
                | Verify_failed e ->
                    finish_capture ();
                    lane.n_verify_failed <- lane.n_verify_failed + 1;
                    Buffer.add_char lane.history '0';
                    diverge ~event:idx ~scheduler:lane.name e
                | Faulted _ ->
                    finish_capture ();
                    lane.n_faulted <- lane.n_faulted + 1;
                    (* A faulted sequence can still change the store: a
                       Remove whose erase landed before the fault completes
                       the logical removal.  The history tracks the store
                       *effect* (that is what the grouping compares), so
                       probe the store rather than trusting the verdict. *)
                    let changed =
                      match ev with
                      | Trace.Remove i ->
                          Agent.rule lane.agent pool.(i).Rule.id = None
                      | Trace.Add _ | Trace.Set_action _ -> false
                    in
                    Buffer.add_char lane.history (if changed then '1' else '0')
                | exception e ->
                    Agent.set_publish_observer lane.agent None;
                    lane.dead <- Some (Printexc.to_string e);
                    Buffer.add_char lane.history 'x';
                    diverge ~event:idx ~scheduler:lane.name
                      ("agent crashed: " ^ Printexc.to_string e)))
          lanes;
        (* 2. dependency invariant on every intermediate state *)
        List.iter
          (fun lane ->
            if lane.dead = None then
              match
                Tcam.check_dag_order (Agent.tcam lane.agent)
                  (Agent.graph lane.agent)
              with
              | Ok () -> ()
              | Error e ->
                  diverge ~event:idx ~scheduler:lane.name
                    ("dependency invariant violated: " ^ e))
          lanes;
        (* 3. semantic lookup equivalence: TCAM winner vs linear scan.
           The probe stream advances regardless of lane health, so equal
           traces probe equal packets.  The packets are drawn once per
           event and shared with the snapshot step below. *)
        let pkts =
          Array.init config.probes (fun _ ->
              let r = pool.(Rng.int probe_rng (Array.length pool)) in
              Header.packet_in probe_rng r.Rule.field)
        in
        Array.iter
          (fun pkt ->
            incr probes_run;
            List.iter
              (fun lane ->
                if lane.dead = None then
                  let hw = winner_id (Agent.lookup lane.agent pkt) in
                  let sem = winner_id (Agent.semantic_lookup lane.agent pkt) in
                  if hw <> sem then
                    diverge ~event:idx ~scheduler:lane.name
                      (Printf.sprintf
                         "lookup divergence: TCAM matched rule %d, linear scan \
                          says %d"
                         hw sem))
              lanes)
          pkts;
        (* 3b. snapshot consistency: every image published mid-cascade
           must answer the probe packets exactly as the semantic table
           either before or after the flow-mod — as a whole vector, so a
           half-applied mix of the two states can never hide.  A
           [Set_action] whose entry sits on a dead row legitimately
           relocates through Remove + Add (see Agent), so the transient
           rule-absent state is an accepted third vector for that event
           kind only. *)
        if config.probes > 0 then
          List.iter
            (fun (lane, pre_rules, images) ->
              if lane.dead = None && images <> [] then begin
                let vec rules =
                  Array.map (fun pkt -> winner_id (semantic_winner rules pkt)) pkts
                in
                let pre_v = vec pre_rules in
                let post_v = vec (Agent.rules lane.agent) in
                let relocate_v =
                  match fm with
                  | Agent.Set_action { id; _ } ->
                      Some
                        (vec
                           (List.filter
                              (fun (r : Rule.t) -> r.Rule.id <> id)
                              pre_rules))
                  | Agent.Add _ | Agent.Remove _ -> None
                in
                List.iter
                  (fun img ->
                    incr snapshots_checked;
                    let got =
                      Array.map
                        (fun pkt ->
                          winner_id (Fr_tcam.Image.lookup img pkt))
                        pkts
                    in
                    if
                      got <> pre_v && got <> post_v
                      && (match relocate_v with
                         | Some v -> got <> v
                         | None -> true)
                    then begin
                      (* got <> pre_v, so a differing probe exists; prefer
                         one that matches neither state (a true stray)
                         over one that merely exposes a mix. *)
                      let first_bad = ref (-1) in
                      Array.iteri
                        (fun i g ->
                          if !first_bad < 0 && g <> pre_v.(i) && g <> post_v.(i)
                          then first_bad := i)
                        got;
                      if !first_bad < 0 then
                        Array.iteri
                          (fun i g ->
                            if !first_bad < 0 && g <> pre_v.(i) then
                              first_bad := i)
                          got;
                      if !first_bad < 0 then first_bad := 0;
                      diverge ~event:idx ~scheduler:lane.name
                        (Printf.sprintf
                           "snapshot divergence at epoch %d: image matched \
                            rule %d on probe %d, semantic table says %d \
                            (pre) / %d (post)"
                           (Fr_tcam.Image.epoch img)
                           got.(!first_bad) !first_bad pre_v.(!first_bad)
                           post_v.(!first_bad))
                    end)
                  images
              end)
            !snap_work;
        (* 4. lanes with identical accept histories must hold identical
           stores *)
        let groups : (string, (string * (int * Rule.action) list) list) Hashtbl.t
            =
          Hashtbl.create 8
        in
        List.iter
          (fun lane ->
            if lane.dead = None then
              let key = Buffer.contents lane.history in
              let img = store_image lane.agent in
              Hashtbl.replace groups key
                ((lane.name, img)
                :: (try Hashtbl.find groups key with Not_found -> [])))
          lanes;
        Hashtbl.iter
          (fun _ members ->
            match members with
            | [] | [ _ ] -> ()
            | (ref_name, ref_img) :: rest ->
                List.iter
                  (fun (name, img) ->
                    if img <> ref_img then
                      diverge ~event:idx ~scheduler:name
                        (Printf.sprintf
                           "store differs from %s despite identical accept \
                            history (%d vs %d rules)"
                           ref_name (List.length img) (List.length ref_img)))
                  rest)
          groups)
      trace.Trace.events;
    (* 5. determinism: fresh emissions must reproduce embedded recordings *)
    List.iter
      (fun (name, recorded) ->
        match List.find_opt (fun l -> l.name = name) lanes with
        | None -> ()
        | Some lane ->
            if lane.dead = None then
              Array.iteri
                (fun idx ops ->
                  if idx < n_events
                     && not (List.equal Op.equal ops lane.emitted.(idx))
                  then
                    diverge ~event:idx ~scheduler:name
                      (Format.asprintf
                         "nondeterministic emission: recorded %a, replayed %a"
                         Op.pp_sequence ops Op.pp_sequence lane.emitted.(idx)))
                recorded)
      trace.Trace.recordings
  in
  let (), body_ms = Measure.time_ms body in
  let columns =
    List.map
      (fun lane ->
        {
          scheduler = lane.name;
          applied = lane.n_applied;
          rejected = lane.n_rejected;
          verify_failed = lane.n_verify_failed;
          faulted = lane.n_faulted;
          crashed = lane.dead;
        })
      lanes
  in
  let checked_ops =
    List.fold_left (fun acc l -> acc + Agent.verified_ops l.agent) 0 lanes
  in
  let verify_ms =
    List.fold_left (fun acc l -> acc +. Agent.verify_ms_total l.agent) 0. lanes
  in
  let trace =
    if config.record then
      {
        trace with
        Trace.recordings =
          List.map (fun l -> (l.name, Array.sub l.emitted 0 n_events)) lanes;
      }
    else trace
  in
  {
    trace;
    columns;
    events_run = n_events;
    probes_run = !probes_run;
    divergences = List.rev !divergences;
    checked_ops;
    snapshots_checked = !snapshots_checked;
    verify_ms;
    wall_ms = setup_ms +. body_ms;
  }

(* -- crash-recovery differential mode -------------------------------- *)

type crash_column = {
  crash_scheduler : string;
  committed : int;
  suffix : int;
  replayed_drains : int;
  requeued : int;
  recovered_rules : int;
}

type crash_report = {
  crash_trace : Trace.t;
  crash_at : int;
  mid_drain : bool;
  crash_columns : crash_column list;
  crash_divergences : divergence list;
  crash_wall_ms : float;
}

let crash_clean r = r.crash_divergences = []

let run_crash ?(probes = 8) ?(batch = 4) ?(mid_drain = false) ?at ?domains
    ?capture (trace : Trace.t) =
  if batch <= 0 then invalid_arg "Oracle.run_crash: batch must be positive";
  let pool = Trace.rules trace in
  let n_events = List.length trace.Trace.events in
  let at = match at with None -> n_events | Some a -> max 0 (min a n_events) in
  let events = Array.of_list trace.Trace.events in
  let preload = Array.sub pool 0 trace.Trace.initial in
  let kinds = Firmware.standard_algos Fr_sched.Store.Bit_backend in
  let divergences = ref [] in
  let diverge ~scheduler detail =
    divergences := { event = -1; scheduler; detail } :: !divergences
  in
  (* The spec for what recovery must rebuild: a journal-free service of the
     same shape driven over a prefix with the same flush cadence.  Replay
     determinism (dirty drains checkpoint, clean ones re-drain identically)
     is exactly the claim under test. *)
  let reference kind upto =
    let s =
      Service.of_rules ~kind ?domains ~shards:1 ~capacity:trace.Trace.capacity
        preload
    in
    for i = 0 to upto - 1 do
      Service.submit s (Trace.flow_mod pool events.(i));
      if (i + 1) mod batch = 0 then ignore (Service.flush s)
    done;
    if Service.pending s > 0 then ignore (Service.flush s);
    s
  in
  let agent_of s = Shard.agent (Service.shard s 0) in
  let compare_states ~scheduler ~stage a b =
    let img_a = store_image a and img_b = store_image b in
    if img_a <> img_b then
      diverge ~scheduler
        (Printf.sprintf
           "%s: store differs from committed-prefix replay (%d vs %d rules)"
           stage (List.length img_a) (List.length img_b));
    let rng = Rng.create ~seed:(trace.Trace.seed lxor 0x5eed) in
    for _ = 1 to probes do
      let r = pool.(Rng.int rng (Array.length pool)) in
      let pkt = Header.packet_in rng r.Rule.field in
      let wa = winner_id (Agent.lookup a pkt) in
      let wb = winner_id (Agent.lookup b pkt) in
      if wa <> wb then
        diverge ~scheduler
          (Printf.sprintf
             "%s: lookup divergence (recovered matched %d, reference %d)" stage
             wa wb)
    done
  in
  let run_kind kind =
    let name = Firmware.algo_kind_name kind in
    let diverged_before = List.length !divergences in
    let dir = Journal.fresh_dir ~prefix:"fr-conform-crash" in
    let service =
      Service.of_rules ~kind ?domains ~shards:1 ~capacity:trace.Trace.capacity
        ~journal:dir preload
    in
    let committed = ref 0 in
    for i = 0 to at - 1 do
      Service.submit service (Trace.flow_mod pool events.(i));
      if (i + 1) mod batch = 0 then begin
        ignore (Service.flush service);
        committed := i + 1
      end
    done;
    Service.simulate_crash ~mid_drain service;
    let col =
      match Service.recover ?domains ~journal:dir () with
      | Error e ->
          diverge ~scheduler:name ("recovery failed: " ^ e);
          {
            crash_scheduler = name;
            committed = !committed;
            suffix = at - !committed;
            replayed_drains = 0;
            requeued = 0;
            recovered_rules = 0;
          }
      | Ok r ->
          List.iter
            (fun w -> diverge ~scheduler:name ("recovery warning: " ^ w))
            r.Service.warnings;
          let recovered = r.Service.service in
          let ragent = agent_of recovered in
          (match Agent.verify_consistent ragent with
          | Ok () -> ()
          | Error e ->
              diverge ~scheduler:name ("recovered agent inconsistent: " ^ e));
          (* installed state of the recovered service == committed prefix *)
          compare_states ~scheduler:name ~stage:"post-recovery" ragent
            (agent_of (reference kind !committed));
          (* flushing the requeued suffix == having run the whole prefix *)
          if Service.pending recovered > 0 then ignore (Service.flush recovered);
          compare_states ~scheduler:name ~stage:"post-recovery flush" ragent
            (agent_of (reference kind at));
          {
            crash_scheduler = name;
            committed = !committed;
            suffix = at - !committed;
            replayed_drains = r.Service.replayed_drains;
            requeued = r.Service.requeued;
            recovered_rules = Service.rule_count recovered;
          }
    in
    (* Capture must beat the cleanup below: the journal is the evidence. *)
    (match capture with
    | Some cap when List.length !divergences > diverged_before ->
        let bundle =
          Bundle.write
            ~dir:(Filename.concat cap ("crash-" ^ name))
            {
              Bundle.mode = "crash";
              at;
              mid_drain;
              batch;
              shards = 1;
              fault_shard = 0;
              slow_ms = 0.0;
            }
            ~trace ~journal:(Some dir)
        in
        diverge ~scheduler:name ("divergence bundle captured at " ^ bundle)
    | Some _ | None -> ());
    (try
       Array.iter
         (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
         (Sys.readdir dir);
       Sys.rmdir dir
     with Sys_error _ -> ());
    col
  in
  let crash_columns, crash_wall_ms =
    Measure.time_ms (fun () -> List.map run_kind kinds)
  in
  {
    crash_trace = trace;
    crash_at = at;
    mid_drain;
    crash_columns;
    crash_divergences = List.rev !divergences;
    crash_wall_ms;
  }

let pp_crash_report ppf r =
  Format.fprintf ppf "%a@." Trace.pp r.crash_trace;
  Format.fprintf ppf "  crash after %d events%s@." r.crash_at
    (if r.mid_drain then " (mid-drain: begin markers on disk, no commit)"
     else "");
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-9s committed %d + suffix %d; replayed %d drains, requeued %d, \
         %d rules recovered@."
        c.crash_scheduler c.committed c.suffix c.replayed_drains c.requeued
        c.recovered_rules)
    r.crash_columns;
  match r.crash_divergences with
  | [] -> Format.fprintf ppf "  divergences: none@."
  | ds ->
      Format.fprintf ppf "  divergences: %d@." (List.length ds);
      List.iter (fun d -> Format.fprintf ppf "    %a@." pp_divergence d) ds

(* -- failover differential mode --------------------------------------- *)

type failover_column = {
  failover_scheduler : string;
  fo_applied : int;
  fo_failed : int;
  fo_shed : int;
  fo_diverted : int;
  fo_rebalanced : int;
  heal_flushes : int;
}

type failover_report = {
  failover_trace : Trace.t;
  fo_shards : int;
  fault_shard : int;
  fo_slow_ms : float;
  failover_columns : failover_column list;
  failover_divergences : divergence list;
  failover_wall_ms : float;
}

let failover_clean r = r.failover_divergences = []

(* The union of every shard's installed table — placement-independent, so
   a service that diverted and rebalanced compares equal to one that never
   faulted as long as the *rules* agree. *)
let union_image service =
  let acc = ref [] in
  for i = 0 to Service.shards service - 1 do
    acc := store_image (Shard.agent (Service.shard service i)) @ !acc
  done;
  List.sort compare !acc

(* Cross-shard lookup winner: highest priority, ties to the smaller id —
   the same total order {!Agent.semantic_lookup} uses within one shard. *)
let union_lookup service pkt =
  let best = ref None in
  for i = 0 to Service.shards service - 1 do
    match Agent.lookup (Shard.agent (Service.shard service i)) pkt with
    | None -> ()
    | Some (r : Rule.t) -> (
        match !best with
        | Some (b : Rule.t)
          when b.Rule.priority > r.Rule.priority
               || (b.Rule.priority = r.Rule.priority && b.Rule.id < r.Rule.id)
          -> ()
        | _ -> best := Some r)
  done;
  winner_id !best

let run_failover ?(probes = 8) ?(batch = 4) ?(shards = 3) ?(fault_shard = 0)
    ?(slow_ms = 8.0) ?domains ?capture (trace : Trace.t) =
  if batch <= 0 then invalid_arg "Oracle.run_failover: batch must be positive";
  if shards < 2 then
    invalid_arg "Oracle.run_failover: failover needs at least 2 shards";
  if fault_shard < 0 || fault_shard >= shards then
    invalid_arg "Oracle.run_failover: fault_shard out of range";
  if slow_ms <= 0.0 then
    invalid_arg "Oracle.run_failover: slow_ms must be positive";
  let pool = Trace.rules trace in
  let events = Array.of_list trace.Trace.events in
  let n_events = Array.length events in
  let preload = Array.sub pool 0 trace.Trace.initial in
  let kinds = Firmware.standard_algos Fr_sched.Store.Bit_backend in
  let divergences = ref [] in
  let diverge ~scheduler detail =
    divergences := { event = -1; scheduler; detail } :: !divergences
  in
  (* A slow threshold between the healthy per-op cost (~0.6 ms) and the
     faulted one (base + slow_ms) — healthy shards never trip it, the
     sick one always does. *)
  let resil =
    {
      Service.default_resil with
      Service.failover = true;
      slow_drain_ms = 2.0;
      breaker_slow_threshold = 2;
      breaker_cooldown = 2;
    }
  in
  let run_kind kind =
    let name = Firmware.algo_kind_name kind in
    let diverged_before = List.length !divergences in
    let drive ~faulted =
      let s =
        Service.of_rules ~kind ?domains ~shards ~capacity:trace.Trace.capacity
          ~resil preload
      in
      if faulted then
        Service.set_fault s ~shard:fault_shard
          (Some
             (Fault.create ~slow_ms ~seed:(trace.Trace.seed lxor 0xfa11) ()));
      for i = 0 to n_events - 1 do
        Service.submit s (Trace.flow_mod pool events.(i));
        if (i + 1) mod batch = 0 then ignore (Service.flush s)
      done;
      if Service.pending s > 0 then ignore (Service.flush s);
      s
    in
    let faulted = drive ~faulted:true in
    let twin = drive ~faulted:false in
    (* Heal, then keep flushing: cooldown expires, the half-open probe
       closes the breaker, and the rebalance pass drains the overlay home
       in bounded batches. *)
    Service.set_fault faulted ~shard:fault_shard None;
    let converged () =
      Service.diverted_count faulted = 0
      && Service.pending faulted = 0
      &&
      let ok = ref true in
      for i = 0 to shards - 1 do
        if Service.breaker_state faulted i <> Breaker.Closed then ok := false
      done;
      !ok
    in
    let heal_flushes = ref 0 in
    while (not (converged ())) && !heal_flushes < 100 do
      ignore (Service.flush faulted);
      incr heal_flushes
    done;
    let sum f =
      let acc = ref 0 in
      for i = 0 to shards - 1 do
        acc := !acc + f (Shard.telemetry (Service.shard faulted i))
      done;
      !acc
    in
    let fo_shed = sum Telemetry.shed in
    let fo_failed = sum Telemetry.failed in
    let fo_diverted = sum Telemetry.diverted in
    let fo_rebalanced = sum Telemetry.rebalanced in
    if fo_shed > 0 then
      diverge ~scheduler:name
        (Printf.sprintf "graceful degradation violated: %d submits shed"
           fo_shed);
    if fo_failed > 0 then
      diverge ~scheduler:name
        (Printf.sprintf "%d ops failed under a latency-only fault" fo_failed);
    if fo_diverted = 0 then
      diverge ~scheduler:name
        "vacuous run: the latency fault never diverted any id";
    if not (converged ()) then
      diverge ~scheduler:name
        (Printf.sprintf
           "failover did not converge: %d ids still diverted after %d heal \
            flushes"
           (Service.diverted_count faulted)
           !heal_flushes);
    let img_a = union_image faulted and img_b = union_image twin in
    if img_a <> img_b then
      diverge ~scheduler:name
        (Printf.sprintf
           "final store differs from the never-faulted twin (%d vs %d rules)"
           (List.length img_a) (List.length img_b));
    let rng = Rng.create ~seed:(trace.Trace.seed lxor 0xf10e) in
    for _ = 1 to probes do
      let r = pool.(Rng.int rng (Array.length pool)) in
      let pkt = Header.packet_in rng r.Rule.field in
      let wa = union_lookup faulted pkt in
      let wb = union_lookup twin pkt in
      if wa <> wb then
        diverge ~scheduler:name
          (Printf.sprintf
             "lookup divergence under failover (healed matched %d, twin %d)" wa
             wb)
    done;
    (match capture with
    | Some cap when List.length !divergences > diverged_before ->
        let bundle =
          Bundle.write
            ~dir:(Filename.concat cap ("failover-" ^ name))
            {
              Bundle.mode = "failover";
              at = n_events;
              mid_drain = false;
              batch;
              shards;
              fault_shard;
              slow_ms;
            }
            ~trace ~journal:None
        in
        diverge ~scheduler:name ("divergence bundle captured at " ^ bundle)
    | Some _ | None -> ());
    {
      failover_scheduler = name;
      fo_applied = sum Telemetry.applied;
      fo_failed;
      fo_shed;
      fo_diverted;
      fo_rebalanced;
      heal_flushes = !heal_flushes;
    }
  in
  let failover_columns, failover_wall_ms =
    Measure.time_ms (fun () -> List.map run_kind kinds)
  in
  {
    failover_trace = trace;
    fo_shards = shards;
    fault_shard;
    fo_slow_ms = slow_ms;
    failover_columns;
    failover_divergences = List.rev !divergences;
    failover_wall_ms;
  }

let pp_failover_report ppf r =
  Format.fprintf ppf "%a@." Trace.pp r.failover_trace;
  Format.fprintf ppf
    "  failover: %d shards, persistent %g ms/op latency fault on shard %d@."
    r.fo_shards r.fo_slow_ms r.fault_shard;
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-9s %4d applied, %d failed, %d shed; %d diverted, %d rebalanced \
         home in %d heal flushes@."
        c.failover_scheduler c.fo_applied c.fo_failed c.fo_shed c.fo_diverted
        c.fo_rebalanced c.heal_flushes)
    r.failover_columns;
  match r.failover_divergences with
  | [] -> Format.fprintf ppf "  divergences: none@."
  | ds ->
      Format.fprintf ppf "  divergences: %d@." (List.length ds);
      List.iter (fun d -> Format.fprintf ppf "    %a@." pp_divergence d) ds

(* -- degraded-hardware differential mode ------------------------------ *)

type degraded_column = {
  degraded_scheduler : string;
  dg_applied : int;
  dg_failed : int;
  dg_shed : int;
  dg_diverted : int;
  dg_degraded_diverted : int;
  dg_dead_max : int;
  dg_recovered : int;
  dg_heal_flushes : int;
}

type degraded_report = {
  degraded_trace : Trace.t;
  dg_shards : int;
  dg_fault_shard : int;
  dg_dead_frac : float;
  dg_seeded_dead : int;
  degraded_columns : degraded_column list;
  degraded_divergences : divergence list;
  degraded_wall_ms : float;
}

let degraded_clean r = r.degraded_divergences = []

(* Cross-shard specification winner: the same total order as
   {!union_lookup}, evaluated by linear scan over every shard's store. *)
let union_semantic service pkt =
  let best = ref None in
  for i = 0 to Service.shards service - 1 do
    match Agent.semantic_lookup (Shard.agent (Service.shard service i)) pkt with
    | None -> ()
    | Some (r : Rule.t) -> (
        match !best with
        | Some (b : Rule.t)
          when b.Rule.priority > r.Rule.priority
               || (b.Rule.priority = r.Rule.priority && b.Rule.id < r.Rule.id)
          -> ()
        | _ -> best := Some r)
  done;
  winner_id !best

let run_degraded ?(probes = 8) ?(batch = 4) ?(shards = 3) ?(fault_shard = 0)
    ?(dead_frac = 0.10) ?domains ?capture (trace : Trace.t) =
  if batch <= 0 then invalid_arg "Oracle.run_degraded: batch must be positive";
  if shards < 2 then
    invalid_arg "Oracle.run_degraded: partial failover needs at least 2 shards";
  if fault_shard < 0 || fault_shard >= shards then
    invalid_arg "Oracle.run_degraded: fault_shard out of range";
  if dead_frac <= 0.0 || dead_frac >= 1.0 then
    invalid_arg "Oracle.run_degraded: dead_frac must be in (0, 1)";
  let pool = Trace.rules trace in
  let events = Array.of_list trace.Trace.events in
  let n_events = Array.length events in
  let preload = Array.sub pool 0 trace.Trace.initial in
  let kinds = Firmware.standard_algos Fr_sched.Store.Bit_backend in
  let divergences = ref [] in
  let diverge ~scheduler detail =
    divergences := { event = -1; scheduler; detail } :: !divergences
  in
  (* The stuck bank: [dead_frac] of the sick shard's rows, drawn once per
     trace so every scheduler (and every domain count) faces the same
     holes. *)
  let n_dead =
    max 1 (int_of_float (dead_frac *. float_of_int trace.Trace.capacity))
  in
  let stuck =
    let rng = Rng.create ~seed:(trace.Trace.seed lxor 0xdead) in
    let seen = Hashtbl.create n_dead in
    let rec draw acc k =
      if k = 0 then acc
      else
        let a = Rng.int rng trace.Trace.capacity in
        if Hashtbl.mem seen a then draw acc k
        else begin
          Hashtbl.replace seen a ();
          draw (a :: acc) (k - 1)
        end
    in
    draw [] n_dead
  in
  (* Stuck writes are damage, so the supervisor must absorb the discovery:
     a failed op condemns its target row and the retry reschedules around
     it.  A generous retry budget lets a drain end damage-free even when
     successive cascades keep probing fresh holes, so the breaker never
     mistakes the sick shard for a dead one — it is not dead, merely
     smaller. *)
  let resil =
    {
      Service.default_resil with
      Service.failover = true;
      retry_budget = 8;
      breaker_cooldown = 2;
    }
  in
  let run_kind kind =
    let name = Firmware.algo_kind_name kind in
    let diverged_before = List.length !divergences in
    let dead_max = ref 0 in
    let probe_rng = Rng.create ~seed:(trace.Trace.seed lxor 0x9b0e) in
    let drive ~faulted =
      let s =
        Service.of_rules ~kind ?domains ~shards ~capacity:trace.Trace.capacity
          ~resil preload
      in
      if faulted then
        Service.set_fault s ~shard:fault_shard
          (Some (Fault.create ~stuck ~seed:(trace.Trace.seed lxor 0xdf) ()));
      let checkpoint i =
        (* Probe point: the hardware answer must match the semantic scan
           at every flush boundary, holes or no holes. *)
        if faulted then begin
          dead_max := max !dead_max (Service.dead_rows s);
          for _ = 1 to 2 do
            let r = pool.(Rng.int probe_rng (Array.length pool)) in
            let pkt = Header.packet_in probe_rng r.Rule.field in
            let wa = union_lookup s pkt in
            let wb = union_semantic s pkt in
            if wa <> wb then
              diverge ~scheduler:name
                (Printf.sprintf
                   "lookup/semantic divergence at event %d under dead rows \
                    (hw %d, spec %d)"
                   i wa wb)
          done
        end
      in
      for i = 0 to n_events - 1 do
        Service.submit s (Trace.flow_mod pool events.(i));
        if (i + 1) mod batch = 0 then begin
          ignore (Service.flush s);
          checkpoint i
        end
      done;
      if Service.pending s > 0 then begin
        ignore (Service.flush s);
        checkpoint n_events
      end;
      s
    in
    let faulted = drive ~faulted:true in
    let twin = drive ~faulted:false in
    (* Heal the silicon, then keep flushing: the probe drill revives the
       condemned rows, room returns, and the rebalance pass drains any
       diverted ids home through the epoch fence. *)
    Service.set_fault faulted ~shard:fault_shard None;
    let converged () =
      Service.diverted_count faulted = 0
      && Service.pending faulted = 0
      && Service.dead_rows faulted = 0
      &&
      let ok = ref true in
      for i = 0 to shards - 1 do
        if Service.breaker_state faulted i <> Breaker.Closed then ok := false
      done;
      !ok
    in
    let heal_flushes = ref 0 in
    while (not (converged ())) && !heal_flushes < 100 do
      ignore (Service.flush faulted);
      incr heal_flushes
    done;
    let sum f =
      let acc = ref 0 in
      for i = 0 to shards - 1 do
        acc := !acc + f (Shard.telemetry (Service.shard faulted i))
      done;
      !acc
    in
    let dg_shed = sum Telemetry.shed in
    (* [Telemetry.failed] is NOT a gate: it counts the per-drain transient
       failures that discover the holes before the retry heals them — the
       price of learning, not damage. *)
    if dg_shed > 0 then
      diverge ~scheduler:name
        (Printf.sprintf "graceful degradation violated: %d submits shed"
           dg_shed);
    (* Whether the stuck bank was ever touched ([dg_dead_max = 0] means
       the workload never wrote into it) is workload-dependent, so it is
       reported in the column rather than gated here — certification
       entry points assert [dg_dead_max > 0] on traces dense enough to
       guarantee contact. *)
    if not (converged ()) then
      diverge ~scheduler:name
        (Printf.sprintf
           "degraded run did not converge: %d diverted, %d pending, %d dead \
            rows after %d heal flushes"
           (Service.diverted_count faulted)
           (Service.pending faulted)
           (Service.dead_rows faulted)
           !heal_flushes);
    let img_a = union_image faulted and img_b = union_image twin in
    if img_a <> img_b then
      diverge ~scheduler:name
        (Printf.sprintf
           "final store differs from the never-faulted twin (%d vs %d rules)"
           (List.length img_a) (List.length img_b));
    let rng = Rng.create ~seed:(trace.Trace.seed lxor 0xd1f) in
    for _ = 1 to probes do
      let r = pool.(Rng.int rng (Array.length pool)) in
      let pkt = Header.packet_in rng r.Rule.field in
      let wa = union_lookup faulted pkt in
      let wb = union_lookup twin pkt in
      if wa <> wb then
        diverge ~scheduler:name
          (Printf.sprintf
             "lookup divergence after heal (healed matched %d, twin %d)" wa wb)
    done;
    (match capture with
    | Some cap when List.length !divergences > diverged_before ->
        let bundle =
          Bundle.write
            ~dir:(Filename.concat cap ("degraded-" ^ name))
            {
              Bundle.mode = "degraded";
              at = n_events;
              mid_drain = false;
              batch;
              shards;
              fault_shard;
              slow_ms = 0.0;
            }
            ~trace ~journal:None
        in
        diverge ~scheduler:name ("divergence bundle captured at " ^ bundle)
    | Some _ | None -> ());
    {
      degraded_scheduler = name;
      dg_applied = sum Telemetry.applied;
      dg_failed = sum Telemetry.failed;
      dg_shed;
      dg_diverted = sum Telemetry.diverted;
      dg_degraded_diverted = sum Telemetry.degraded_diverted;
      dg_dead_max = !dead_max;
      dg_recovered = sum Telemetry.rows_recovered;
      dg_heal_flushes = !heal_flushes;
    }
  in
  let degraded_columns, degraded_wall_ms =
    Measure.time_ms (fun () -> List.map run_kind kinds)
  in
  {
    degraded_trace = trace;
    dg_shards = shards;
    dg_fault_shard = fault_shard;
    dg_dead_frac = dead_frac;
    dg_seeded_dead = n_dead;
    degraded_columns;
    degraded_divergences = List.rev !divergences;
    degraded_wall_ms;
  }

let pp_degraded_report ppf r =
  Format.fprintf ppf "%a@." Trace.pp r.degraded_trace;
  Format.fprintf ppf
    "  degraded: %d shards, %.0f%% stuck bank (%d rows) on shard %d@."
    r.dg_shards
    (100.0 *. r.dg_dead_frac)
    r.dg_seeded_dead r.dg_fault_shard;
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-9s %4d applied, %d transient-failed, %d shed; %d diverted (%d \
         degraded), %d dead max, %d recovered, healed in %d flushes@."
        c.degraded_scheduler c.dg_applied c.dg_failed c.dg_shed c.dg_diverted
        c.dg_degraded_diverted c.dg_dead_max c.dg_recovered c.dg_heal_flushes)
    r.degraded_columns;
  (match r.degraded_divergences with
  | [] -> Format.fprintf ppf "  divergences: none@."
  | ds ->
      Format.fprintf ppf "  divergences: %d@." (List.length ds);
      List.iter (fun d -> Format.fprintf ppf "    %a@." pp_divergence d) ds)

let pp_report ppf r =
  Format.fprintf ppf "%a@." Trace.pp r.trace;
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-9s %4d applied, %3d rejected%s%s%s@." c.scheduler
        c.applied c.rejected
        (if c.verify_failed > 0 then
           Printf.sprintf ", %d VERIFY-FAILED" c.verify_failed
         else "")
        (if c.faulted > 0 then Printf.sprintf ", %d faulted" c.faulted else "")
        (match c.crashed with
        | Some e -> Printf.sprintf ", CRASHED (%s)" e
        | None -> ""))
    r.columns;
  Format.fprintf ppf
    "  %d probes/agent; %d snapshots checked; %d ops checked in %.2f ms%s@."
    r.probes_run r.snapshots_checked r.checked_ops r.verify_ms
    (if r.verify_ms > 0. then
       Printf.sprintf " (%.0f checked-ops/s)"
         (float_of_int r.checked_ops /. (r.verify_ms /. 1000.))
     else "");
  match r.divergences with
  | [] -> Format.fprintf ppf "  divergences: none@."
  | ds ->
      Format.fprintf ppf "  divergences: %d@." (List.length ds);
      let shown = List.filteri (fun i _ -> i < 10) ds in
      List.iter (fun d -> Format.fprintf ppf "    %a@." pp_divergence d) shown;
      if List.length ds > 10 then
        Format.fprintf ppf "    ... and %d more@." (List.length ds - 10)

(* ------------------------------------------------------------------ *)
(* Network rollout differential mode.                                  *)

module Net_fleet = Fr_net.Fleet
module Net_plan = Fr_net.Plan
module Net_check = Fr_net.Check
module Net_scenario = Fr_net.Scenario

type net_column = {
  net_scheduler : string;
  net_rounds : int;
  net_applied : int;
  net_failed : int;
  net_probes : int;
}

type net_report = {
  net_shape : string;
  net_nodes : int;
  net_flows : int;
  net_rounds_planned : int;
  net_columns : net_column list;
  net_divergences : divergence list;
  net_wall_ms : float;
}

let net_clean r = r.net_divergences = []

let run_net ?(batch = 4) ?(samples = 2) ?(shards = 2) ?(capacity = 64) ?domains
    (sc : Net_scenario.t) =
  let plan =
    match Net_scenario.plan ~batch sc with
    | Ok p -> p
    | Error e -> invalid_arg ("Oracle.run_net: " ^ e)
  in
  let kinds = Firmware.standard_algos Fr_sched.Store.Bit_backend in
  let divergences = ref [] in
  let diverge ~event ~scheduler detail =
    divergences := { event; scheduler; detail } :: !divergences
  in
  let images = ref [] in
  let (columns : net_column list), net_wall_ms =
    Measure.time_ms (fun () ->
        List.map
          (fun kind ->
            let name = Firmware.algo_kind_name kind in
            let fleet =
              Net_fleet.of_policy ~kind ~shards ~capacity ?domains sc.topo
                sc.old_policy
            in
            (* One PRNG per scheduler lane, same seed for all lanes: the
               probe order is deterministic, so every lane traces the
               same packets and any disagreement is the scheduler's. *)
            let rng = Rng.create ~seed:11 in
            let probes = ref 0 in
            let check f ~event ~where =
              incr probes;
              List.iter
                (diverge ~event ~scheduler:name)
                (Net_check.consistent ~samples ~rng plan
                   ~stamps:(Net_fleet.stamp f) ~lookup:(Net_fleet.lookup f)
                   ~where)
            in
            check fleet ~event:0 ~where:"initial";
            let probe f ~round ~where = check f ~event:round ~where in
            let report = Net_fleet.execute ~probe fleet plan in
            if not report.Net_fleet.completed then
              diverge ~event:(-1) ~scheduler:name "rollout did not complete";
            if report.Net_fleet.failed > 0 then
              diverge ~event:(-1) ~scheduler:name
                (Printf.sprintf "%d flow-mods failed during the rollout"
                   report.Net_fleet.failed);
            check fleet ~event:(-1) ~where:"final";
            (* Final state must equal a fleet built directly from the new
               policy at the post-rollout versions. *)
            let reference =
              Net_fleet.of_policy ~kind ~shards ~capacity ?domains sc.topo
                sc.new_policy
                ~version_of:(fun fl ->
                  List.assoc fl.Fr_net.Policy.flow_id
                    (Net_plan.stamps_after plan))
            in
            let image =
              List.init (Fr_net.Topo.nodes sc.topo) (fun node ->
                  Net_fleet.rules fleet node)
            in
            let ref_image =
              List.init (Fr_net.Topo.nodes sc.topo) (fun node ->
                  Net_fleet.rules reference node)
            in
            if image <> ref_image then
              diverge ~event:(-1) ~scheduler:name
                "final tables differ from a fresh fleet on the new policy";
            if Net_fleet.stamps fleet <> Net_plan.stamps_after plan then
              diverge ~event:(-1) ~scheduler:name
                "final stamps differ from the plan's";
            images := (name, image) :: !images;
            {
              net_scheduler = name;
              net_rounds = report.Net_fleet.rounds_run;
              net_applied = report.Net_fleet.applied;
              net_failed = report.Net_fleet.failed;
              net_probes = !probes;
            })
          kinds)
  in
  (* Cross-scheduler: every lane must land on identical tables. *)
  (match List.rev !images with
  | [] | [ _ ] -> ()
  | (ref_name, ref_image) :: rest ->
      List.iter
        (fun (name, image) ->
          if image <> ref_image then
            diverge ~event:(-1) ~scheduler:name
              (Printf.sprintf "final tables differ from %s's" ref_name))
        rest);
  {
    net_shape = Fr_net.Topo.shape_name sc.topo;
    net_nodes = Fr_net.Topo.nodes sc.topo;
    net_flows = List.length sc.old_policy;
    net_rounds_planned = Net_plan.num_rounds plan;
    net_columns = columns;
    net_divergences = List.rev !divergences;
    net_wall_ms;
  }

(* ------------------------------------------------------------------ *)
(* Network chaos certification mode.                                   *)

let rec rm_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_tree (Filename.concat path f)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let outcome_name (o : Net_fleet.outcome) =
  match o with
  | Net_fleet.Completed -> "completed"
  | Net_fleet.Crashed -> "crashed"
  | Net_fleet.Held k -> Printf.sprintf "held@%d" k
  | Net_fleet.Aborted { at_round; rolled_back } ->
      Printf.sprintf "aborted@%d-%d" at_round rolled_back

type chaos_case = {
  case_index : int;
  case_seed : int;
  case_shape : string;
  case_nodes : int;
  case_flows : int;
  case_rounds : int;
  case_faults : string list;
  case_hold : string;
  case_abort_at : int option;
  case_outcome : string;
  case_retried : int;
  case_quarantines : int;
  case_recovered : int;
  case_probes : int;
}

type chaos_report = {
  chaos_seed : int;
  chaos_cases : chaos_case list;
  chaos_outcomes : (string * int) list;
  chaos_divergences : divergence list;
  chaos_wall_ms : float;
}

let chaos_clean r = r.chaos_divergences = []

let chaos_fingerprint r =
  let buf = Buffer.create 4096 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %s %d %d %d [%s] %s %s %s %d %d %d %d\n"
           c.case_index c.case_seed c.case_shape c.case_nodes c.case_flows
           c.case_rounds
           (String.concat "," c.case_faults)
           c.case_hold
           (match c.case_abort_at with
           | None -> "-"
           | Some k -> string_of_int k)
           c.case_outcome c.case_retried c.case_quarantines c.case_recovered
           c.case_probes))
    r.chaos_cases;
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "div %d %s %s\n" d.event d.scheduler d.detail))
    r.chaos_divergences;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* The chaos supervision profile.  The deadline sits far above any
   healthy round (a batch-4 round is tens of modelled ms at
   0.6 ms/op) and far below every injected ack penalty (200+ ms), so
   timeouts fire exactly on scheduled slow faults regardless of which
   scheduler's movement count is under it. *)
let chaos_supervision ~hold ~hold_budget ~sup_seed =
  {
    Net_fleet.default_supervision with
    deadline_ms = 50.0;
    retries = 1;
    breaker_threshold = 2;
    breaker_slow_threshold = 2;
    breaker_cooldown = 1;
    hold;
    hold_budget;
    sup_seed;
  }

let run_net_chaos ?(cases = 100) ?(samples = 2) ?(shards = 2) ?(capacity = 64)
    ?domains ~seed () =
  if cases < 1 then invalid_arg "Oracle.run_net_chaos: cases must be positive";
  let kinds = Firmware.standard_algos Fr_sched.Store.Bit_backend in
  let divergences = ref [] in
  let diverge ~event ~scheduler detail =
    divergences := { event; scheduler; detail } :: !divergences
  in
  let run_case i =
    let case_seed = seed + (7919 * i) in
    let rng = Rng.create ~seed:case_seed in
    let shape =
      match Rng.int rng 3 with
      | 0 -> Fr_net.Topo.Line
      | 1 -> Fr_net.Topo.Ring
      | _ -> Fr_net.Topo.Tree
    in
    let nodes = 3 + Rng.int rng 4 in
    let topo = Fr_net.Topo.make shape nodes in
    let flows = 4 + Rng.int rng 3 in
    let sc = Net_scenario.make ~flows ~seed:case_seed topo in
    let plan =
      match Net_scenario.plan ~batch:4 sc with
      | Ok p -> p
      | Error e ->
          invalid_arg (Printf.sprintf "Oracle.run_net_chaos: seed %d: %s"
             case_seed e)
    in
    let rounds = Net_plan.num_rounds plan in
    let faults =
      Net_scenario.chaos_faults ~shards ~capacity ~seed:case_seed ~rounds
        ~nodes ()
    in
    let hold, hold_budget =
      if i mod 2 = 0 then (Net_fleet.Wait, 16) else (Net_fleet.Abort, 2)
    in
    let abort_at =
      (* every fourth case also pulls the operator abort lever at a
         random committed boundary, so the rollback path is probed even
         when no fault escalates *)
      if i mod 4 = 3 && rounds > 1 then Some (1 + Rng.int rng (rounds - 1))
      else None
    in
    let supervision =
      chaos_supervision ~hold ~hold_budget ~sup_seed:case_seed
    in
    let images = ref [] and outcomes = ref [] in
    let reference_stats = ref None in
    List.iter
      (fun kind ->
        let name = Firmware.algo_kind_name kind in
        let dir = Journal.fresh_dir ~prefix:"fr-conform-chaos" in
        let fleet =
          Net_fleet.of_policy ~kind ~shards ~capacity ?domains ~journal:dir
            sc.topo sc.old_policy
        in
        let prng = Rng.create ~seed:11 in
        let probes = ref 0 in
        let check f ~event ~where =
          incr probes;
          List.iter
            (fun d ->
              diverge ~event ~scheduler:name
                (Printf.sprintf "case %d (seed %d): %s" i case_seed d))
            (Net_check.consistent ~samples ~rng:prng plan
               ~stamps:(Net_fleet.stamp f) ~lookup:(Net_fleet.lookup f)
               ~where)
        in
        check fleet ~event:0 ~where:"initial";
        let probe f ~round ~where = check f ~event:round ~where in
        let report =
          Net_fleet.execute ~probe ~faults ~supervision
            ?abort_after_rounds:abort_at fleet plan
        in
        check fleet ~event:(-1) ~where:"final";
        let expected_policy, expected_stamps, against =
          match report.Net_fleet.outcome with
          | Net_fleet.Completed ->
              (sc.new_policy, Net_plan.stamps_after plan, "new policy")
          | Net_fleet.Aborted _ ->
              (* abort contract: the fleet is byte-identical to a twin
                 on which the rollout never started *)
              (sc.old_policy, Net_plan.stamps_before plan, "pre-rollout")
          | Net_fleet.Held k ->
              diverge ~event:k ~scheduler:name
                (Printf.sprintf
                   "case %d (seed %d): rollout wedged (held at round %d)" i
                   case_seed k);
              (sc.old_policy, Net_fleet.stamps fleet, "held")
          | Net_fleet.Crashed ->
              diverge ~event:(-1) ~scheduler:name
                (Printf.sprintf "case %d (seed %d): unexpected crash outcome"
                   i case_seed);
              (sc.old_policy, Net_fleet.stamps fleet, "crashed")
        in
        (match report.Net_fleet.outcome with
        | Net_fleet.Completed | Net_fleet.Aborted _ ->
            let reference =
              Net_fleet.of_policy ~kind ~shards ~capacity ?domains sc.topo
                expected_policy
                ~version_of:(fun fl ->
                  match
                    List.assoc_opt fl.Fr_net.Policy.flow_id expected_stamps
                  with
                  | Some v -> v
                  | None -> 0)
            in
            let image =
              List.init nodes (fun node -> Net_fleet.rules fleet node)
            in
            let ref_image =
              List.init nodes (fun node -> Net_fleet.rules reference node)
            in
            if image <> ref_image then
              diverge ~event:(-1) ~scheduler:name
                (Printf.sprintf
                   "case %d (seed %d): final tables differ from the %s twin"
                   i case_seed against);
            if Net_fleet.stamps fleet <> expected_stamps then
              diverge ~event:(-1) ~scheduler:name
                (Printf.sprintf
                   "case %d (seed %d): final stamps differ from the %s twin"
                   i case_seed against);
            images := (name, image) :: !images
        | _ -> ());
        outcomes := (name, outcome_name report.Net_fleet.outcome) :: !outcomes;
        if !reference_stats = None then
          reference_stats :=
            Some
              ( outcome_name report.Net_fleet.outcome,
                report.Net_fleet.retried,
                report.Net_fleet.quarantines,
                report.Net_fleet.recovered,
                !probes );
        rm_tree dir)
      kinds;
    (* Cross-lane: every scheduler must reach the same verdict, and the
       lanes that settled must hold identical tables. *)
    (match List.rev !outcomes with
    | [] -> ()
    | (ref_name, ref_outcome) :: rest ->
        List.iter
          (fun (name, o) ->
            if o <> ref_outcome then
              diverge ~event:(-1) ~scheduler:name
                (Printf.sprintf
                   "case %d (seed %d): outcome %s but %s saw %s" i case_seed
                   o ref_name ref_outcome))
          rest);
    (match List.rev !images with
    | [] | [ _ ] -> ()
    | (ref_name, ref_image) :: rest ->
        List.iter
          (fun (name, image) ->
            if image <> ref_image then
              diverge ~event:(-1) ~scheduler:name
                (Printf.sprintf
                   "case %d (seed %d): final tables differ from %s's" i
                   case_seed ref_name))
          rest);
    let case_outcome, case_retried, case_quarantines, case_recovered,
        case_probes =
      Option.value !reference_stats ~default:("none", 0, 0, 0, 0)
    in
    {
      case_index = i;
      case_seed;
      case_shape = Fr_net.Topo.shape_name topo;
      case_nodes = nodes;
      case_flows = flows;
      case_rounds = rounds;
      case_faults =
        List.concat_map
          (fun (node, fs) ->
            List.map (fun f -> Net_scenario.fault_to_string (node, f)) fs)
          faults;
      case_hold = (match hold with Net_fleet.Wait -> "wait" | _ -> "abort");
      case_abort_at = abort_at;
      case_outcome;
      case_retried;
      case_quarantines;
      case_recovered;
      case_probes;
    }
  in
  let chaos_cases, chaos_wall_ms =
    Measure.time_ms (fun () -> List.init cases run_case)
  in
  let outcomes =
    List.fold_left
      (fun acc c ->
        let key =
          match String.index_opt c.case_outcome '@' with
          | Some k -> String.sub c.case_outcome 0 k
          | None -> c.case_outcome
        in
        match List.assoc_opt key acc with
        | Some n -> (key, n + 1) :: List.remove_assoc key acc
        | None -> (key, 1) :: acc)
      [] chaos_cases
    |> List.sort compare
  in
  {
    chaos_seed = seed;
    chaos_cases;
    chaos_outcomes = outcomes;
    chaos_divergences = List.rev !divergences;
    chaos_wall_ms;
  }

let pp_chaos_report ppf r =
  Format.fprintf ppf "net chaos: %d cases from seed %d, %.0f ms@."
    (List.length r.chaos_cases)
    r.chaos_seed r.chaos_wall_ms;
  Format.fprintf ppf "  outcomes:%s@."
    (String.concat ""
       (List.map
          (fun (k, n) -> Printf.sprintf " %s=%d" k n)
          r.chaos_outcomes));
  let retried =
    List.fold_left (fun a c -> a + c.case_retried) 0 r.chaos_cases
  and quarantines =
    List.fold_left (fun a c -> a + c.case_quarantines) 0 r.chaos_cases
  and recovered =
    List.fold_left (fun a c -> a + c.case_recovered) 0 r.chaos_cases
  and probes = List.fold_left (fun a c -> a + c.case_probes) 0 r.chaos_cases in
  Format.fprintf ppf
    "  %d retries, %d quarantines, %d node recoveries, %d probe points/lane@."
    retried quarantines recovered probes;
  Format.fprintf ppf "  fingerprint: %s@." (chaos_fingerprint r);
  match r.chaos_divergences with
  | [] -> Format.fprintf ppf "  divergences: none@."
  | ds ->
      Format.fprintf ppf "  divergences: %d@." (List.length ds);
      let shown = List.filteri (fun i _ -> i < 10) ds in
      List.iter (fun d -> Format.fprintf ppf "    %a@." pp_divergence d) shown;
      if List.length ds > 10 then
        Format.fprintf ppf "    ... and %d more@." (List.length ds - 10)

let pp_net_report ppf r =
  Format.fprintf ppf
    "net oracle: %s topology, %d nodes, %d flows, %d rounds planned@."
    r.net_shape r.net_nodes r.net_flows r.net_rounds_planned;
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-9s %d rounds, %4d applied, %d failed, %d probe points@."
        c.net_scheduler c.net_rounds c.net_applied c.net_failed c.net_probes)
    r.net_columns;
  match r.net_divergences with
  | [] -> Format.fprintf ppf "  divergences: none@."
  | ds ->
      Format.fprintf ppf "  divergences: %d@." (List.length ds);
      let shown = List.filteri (fun i _ -> i < 10) ds in
      List.iter (fun d -> Format.fprintf ppf "    %a@." pp_divergence d) shown;
      if List.length ds > 10 then
        Format.fprintf ppf "    ... and %d more@." (List.length ds - 10)
