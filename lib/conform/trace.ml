module Rng = Fr_prng.Rng
module Rule = Fr_tern.Rule
module Op = Fr_tcam.Op
module Dataset = Fr_workload.Dataset
module Agent = Fr_switch.Agent

type event =
  | Add of int
  | Remove of int
  | Set_action of int * Rule.action

let pp_event ppf = function
  | Add i -> Format.fprintf ppf "add %d" i
  | Remove i -> Format.fprintf ppf "remove %d" i
  | Set_action (i, a) ->
      Format.fprintf ppf "set %d %s" i
        (match a with
        | Rule.Forward p -> Printf.sprintf "fwd:%d" p
        | Rule.Drop -> "drop"
        | Rule.Controller -> "ctrl")

type t = {
  kind : Dataset.kind;
  seed : int;
  initial : int;
  pool : int;
  capacity : int;
  events : event list;
  recordings : (string * Op.t list array) list;
}

(* -- generation ----------------------------------------------------- *)

let generate ?(p_remove = 0.2) ?(p_set = 0.1) ~kind ~seed ~initial ~pool
    ~capacity ~events () =
  if initial > pool then
    invalid_arg
      (Printf.sprintf "Trace.generate: initial %d exceeds pool %d" initial pool);
  if p_remove < 0. || p_set < 0. || p_remove +. p_set >= 1. then
    invalid_arg "Trace.generate: probabilities must leave room for adds";
  if events > 0 && pool <= 0 then
    invalid_arg "Trace.generate: events need a non-empty pool";
  let rng = Rng.create ~seed in
  let ev_rng = Rng.split rng in
  (* Track the live pool indices the replayed agents will hold, so every
     Remove/Set_action targets something plausibly installed and every Add
     targets something absent.  Rejections can still occur downstream
     (capacity, duplicate races under faults) — that is the oracle's
     business, not the generator's. *)
  let live = Hashtbl.create (2 * pool) in
  for i = 0 to initial - 1 do
    Hashtbl.replace live i ()
  done;
  let free = ref [] in
  for i = pool - 1 downto initial do
    free := i :: !free
  done;
  let pick_live () =
    let targets =
      List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) live [])
    in
    List.nth targets (Rng.int ev_rng (List.length targets))
  in
  let do_add () =
    let arr = Array.of_list !free in
    let i = arr.(Rng.int ev_rng (Array.length arr)) in
    free := List.filter (fun j -> j <> i) !free;
    Hashtbl.replace live i ();
    Add i
  in
  let do_remove () =
    let i = pick_live () in
    Hashtbl.remove live i;
    free := i :: !free;
    Remove i
  in
  let do_set () =
    let i = pick_live () in
    Set_action
      ( i,
        match Rng.int ev_rng 3 with
        | 0 -> Rule.Forward (Rng.int ev_rng 16)
        | 1 -> Rule.Drop
        | _ -> Rule.Controller )
  in
  let evs = ref [] in
  for _ = 1 to events do
    let n_live = Hashtbl.length live in
    let can_add = !free <> [] in
    let roll = Rng.float ev_rng in
    let ev =
      if n_live = 0 then do_add () (* pool > 0, so free is non-empty here *)
      else if not can_add then
        if roll < p_set /. (p_remove +. p_set) then do_set () else do_remove ()
      else if roll < p_remove then do_remove ()
      else if roll < p_remove +. p_set then do_set ()
      else do_add ()
    in
    evs := ev :: !evs
  done;
  {
    kind;
    seed;
    initial;
    pool;
    capacity;
    events = List.rev !evs;
    recordings = [];
  }

let rules t = Dataset.generate t.kind ~seed:t.seed ~n:t.pool

let flow_mod pool ev =
  match ev with
  | Add i -> Agent.Add pool.(i)
  | Remove i -> Agent.Remove { id = pool.(i).Rule.id }
  | Set_action (i, a) -> Agent.Set_action { id = pool.(i).Rule.id; action = a }

let with_events t events = { t with events; recordings = [] }

(* -- serialization -------------------------------------------------- *)

(* The compact action tokens are owned by the journal's line codec now —
   one format, two files (WAL and trace) that stay in sync by
   construction. *)
let action_to_string = Fr_resil.Journal.action_to_string
let action_of_string = Fr_resil.Journal.action_of_string

let op_to_string = function
  | Op.Insert { rule_id; addr } -> Printf.sprintf "i%d@%d" rule_id addr
  | Op.Delete { addr } -> Printf.sprintf "d@%d" addr

let op_of_string s =
  match String.index_opt s '@' with
  | None -> None
  | Some at -> (
      let addr = String.sub s (at + 1) (String.length s - at - 1) in
      match int_of_string_opt addr with
      | None -> None
      | Some addr ->
          if s = Printf.sprintf "d@%d" addr then Some (Op.delete ~addr)
          else if String.length s >= 2 && s.[0] = 'i' then
            match int_of_string_opt (String.sub s 1 (at - 1)) with
            | Some rule_id -> Some (Op.insert ~rule_id ~addr)
            | None -> None
          else None)

let ops_to_string = function
  | [] -> "-"
  | ops -> String.concat "," (List.map op_to_string ops)

let ops_of_string s =
  if s = "-" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
          match op_of_string p with
          | Some op -> go (op :: acc) rest
          | None -> None)
    in
    go [] parts

let magic = "fastrule-conform-trace v1"

let to_string t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" magic;
  line "kind %s" (Dataset.to_string t.kind);
  line "seed %d" t.seed;
  line "initial %d" t.initial;
  line "pool %d" t.pool;
  line "capacity %d" t.capacity;
  line "events %d" (List.length t.events);
  List.iter
    (fun ev ->
      match ev with
      | Add i -> line "a %d" i
      | Remove i -> line "r %d" i
      | Set_action (i, a) -> line "s %d %s" i (action_to_string a))
    t.events;
  List.iter
    (fun (name, per_event) ->
      Array.iteri
        (fun idx ops -> line "ops %s %d %s" name idx (ops_to_string ops))
        per_event)
    t.recordings;
  line "end";
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let err n msg = Error (Printf.sprintf "trace line %d: %s" n msg) in
  match lines with
  | [] -> Error "trace: empty input"
  | m :: rest when m = magic -> (
      (* header *)
      let header = Hashtbl.create 8 in
      let rec read_header n = function
        | l :: rest -> (
            match String.split_on_char ' ' l with
            | [ k; v ]
              when List.mem k
                     [ "kind"; "seed"; "initial"; "pool"; "capacity"; "events" ]
              ->
                Hashtbl.replace header k v;
                read_header (n + 1) rest
            | _ -> Ok (n, l :: rest))
        | [] -> Ok (n, [])
      in
      let get k =
        match Hashtbl.find_opt header k with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "trace: missing header %s" k)
      in
      let get_int k =
        match get k with
        | Ok v -> (
            match int_of_string_opt v with
            | Some i -> Ok i
            | None -> Error (Printf.sprintf "trace: bad %s %S" k v))
        | Error e -> Error e
      in
      let ( let* ) = Result.bind in
      match read_header 2 rest with
      | Error e -> Error e
      | Ok (body_start, body) ->
          let* kind_s = get "kind" in
          let* kind =
            match Dataset.of_string kind_s with
            | Some k -> Ok k
            | None -> Error (Printf.sprintf "trace: unknown kind %S" kind_s)
          in
          let* seed = get_int "seed" in
          let* initial = get_int "initial" in
          let* pool = get_int "pool" in
          let* capacity = get_int "capacity" in
          let* n_events = get_int "events" in
          let rec read_events n acc left = function
            | l :: rest when left > 0 -> (
                match String.split_on_char ' ' l with
                | [ "a"; i ] -> (
                    match int_of_string_opt i with
                    | Some i -> read_events (n + 1) (Add i :: acc) (left - 1) rest
                    | None -> err n "bad add index")
                | [ "r"; i ] -> (
                    match int_of_string_opt i with
                    | Some i ->
                        read_events (n + 1) (Remove i :: acc) (left - 1) rest
                    | None -> err n "bad remove index")
                | [ "s"; i; a ] -> (
                    match (int_of_string_opt i, action_of_string a) with
                    | Some i, Some a ->
                        read_events (n + 1) (Set_action (i, a) :: acc) (left - 1)
                          rest
                    | _ -> err n "bad set-action event")
                | _ -> err n (Printf.sprintf "expected an event, got %S" l))
            | rest when left = 0 -> Ok (n, List.rev acc, rest)
            | _ -> Error "trace: truncated event list"
          in
          let* n, events, tail = read_events body_start [] n_events body in
          let recs : (string, Op.t list array) Hashtbl.t = Hashtbl.create 8 in
          let order = ref [] in
          let rec read_tail n = function
            | [ "end" ] | [] -> Ok ()
            | l :: rest -> (
                match String.split_on_char ' ' l with
                | [ "ops"; name; idx; ops_s ] -> (
                    match (int_of_string_opt idx, ops_of_string ops_s) with
                    | Some idx, Some ops when idx >= 0 && idx < n_events ->
                        (if not (Hashtbl.mem recs name) then begin
                           Hashtbl.replace recs name
                             (Array.make n_events ([] : Op.t list));
                           order := name :: !order
                         end);
                        (Hashtbl.find recs name).(idx) <- ops;
                        read_tail (n + 1) rest
                    | _ -> err n "bad ops line"
                    )
                | _ -> err n (Printf.sprintf "unexpected line %S" l))
          in
          let* () = read_tail n tail in
          let recordings =
            List.rev_map (fun name -> (name, Hashtbl.find recs name)) !order
          in
          Ok { kind; seed; initial; pool; capacity; events; recordings })
  | m :: _ -> err 1 (Printf.sprintf "bad magic %S (want %S)" m magic)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error e -> Error e

let pp ppf t =
  Format.fprintf ppf "%s trace: seed %d, %d preloaded of %d pool, cap %d, %d events%s"
    (Dataset.to_string t.kind) t.seed t.initial t.pool t.capacity
    (List.length t.events)
    (if t.recordings = [] then ""
     else Printf.sprintf ", %d recordings" (List.length t.recordings))
