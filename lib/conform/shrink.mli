(** Greedy trace minimization (ddmin-lite).

    Given a trace on which [failing] holds (typically "the oracle found a
    divergence"), repeatedly try to delete chunks of events — halves,
    quarters, down to single events, to a fixpoint — keeping any deletion
    that still fails.  The result is {e 1-minimal in expectation}, not
    guaranteed globally minimal: deleting any single remaining event makes
    the failure disappear.

    The workload header (pool, preload, capacity, seed) is never shrunk —
    pool indices in the surviving events must keep meaning the same rules
    — so a shrunk trace replays with the exact [conform replay] command
    the CLI prints.  Recordings are dropped (they are positional). *)

val minimize :
  ?max_runs:int ->
  failing:(Trace.t -> bool) ->
  Trace.t ->
  Trace.t * int
(** [minimize ~failing t] is [(t', runs)]: the smallest failing trace
    found and the number of times [failing] ran.  [t] itself is returned
    (with recordings dropped) if it does not fail to begin with or if
    [max_runs] (default 2000) is exhausted before any deletion sticks.
    [failing] must be deterministic — feed it a fixed oracle config. *)
