(** The differential conformance oracle.

    One seeded trace is replayed through {e every} standard scheduler
    (Naive, RuleTris, FR-O, FR-SD, FR-SB), each driving its own
    {!Fr_switch.Agent} with the shadow-table check on, and the oracle
    cross-examines the five tables after every event:

    - {b sequence validity} — the agent runs {!Fr_sched.Check.sequence}
      over every emitted sequence before it touches the TCAM; a rejection
      surfaces as a ["verify: "]-prefixed error and is {e always} a
      divergence (the scheduler emitted a wrong sequence);
    - {b dependency invariant} — {!Fr_tcam.Tcam.check_dag_order} on every
      intermediate state, including states left by injected faults;
    - {b lookup equivalence} — seeded packet probes, sampled to hit pool
      rules: the TCAM answer ({!Fr_switch.Agent.lookup}, highest address)
      must name the same rule as the priority-sorted linear scan
      ({!Fr_switch.Agent.semantic_lookup});
    - {b store agreement} — agents whose accept histories are identical
      must hold identical [(id, action)] stores;
    - {b determinism} — when the trace embeds recordings, each scheduler's
      fresh emissions must reproduce them op for op.

    Schedulers are allowed to {e disagree on acceptance} (a capacity
    rejection on one layout is not a bug on another — the "skip on
    Table_full" allowance); they are never allowed to diverge silently.

    Fault injection ({!config.fault_prob}) installs a {!Fr_tcam.Fault}
    plan on the FastRule agents only — their bookkeeping recomputes from
    TCAM truth, so a sequence cut mid-way is a state the oracle can hold
    to the same invariants.  The stateful baselines run fault-free and
    anchor the comparison. *)

type outcome =
  | Applied
  | Rejected of string  (** scheduling/request rejection — allowed skew *)
  | Verify_failed of string  (** shadow table refused the sequence *)
  | Faulted of string  (** injected hardware failure cut the sequence *)

val pp_outcome : Format.formatter -> outcome -> unit

type divergence = {
  event : int;  (** event index; [-1] for end-of-run checks *)
  scheduler : string;  (** offending scheduler (kind name) *)
  detail : string;
}

val pp_divergence : Format.formatter -> divergence -> unit

type config = {
  probes : int;  (** packets sampled per event (default 8) *)
  verify : bool;
      (** shadow-table check on every sequence (default [true]; turn off
          only to baseline the check's overhead on trusted schedulers —
          a saboteur without the net crashes its agent, which the oracle
          reports as a divergence but cannot localise) *)
  record : bool;  (** embed each scheduler's emissions in the report trace *)
  sabotage : (string * Fr_sched.Sabotage.mode) list;
      (** mangle these schedulers (by kind name, e.g. ["fr-o"]) — the
          self-test hook behind [conform --break] *)
  fault_prob : float;  (** per-write failure probability, 0 = off *)
  fault_seed : int;  (** offsets the trace seed for the fault streams *)
  max_failures : int;  (** injection budget per agent; [-1] unlimited *)
}

val default_config : config
(** 8 probes, verify on, no recording, no sabotage, no faults. *)

type column = {
  scheduler : string;
  applied : int;
  rejected : int;
  verify_failed : int;
  faulted : int;
  crashed : string option;
      (** an exception escaped the agent; it sat out the remaining events *)
}

type report = {
  trace : Trace.t;  (** input trace, with recordings when [record] *)
  columns : column list;  (** per scheduler, trace order *)
  events_run : int;
  probes_run : int;  (** total packets probed (per agent) *)
  divergences : divergence list;
  checked_ops : int;  (** ops through {!Fr_sched.Check.sequence}, summed *)
  snapshots_checked : int;
      (** published mid-cascade images held to the pre-or-post law, summed
          over lanes and events *)
  verify_ms : float;  (** wall-clock inside the check, summed *)
  wall_ms : float;
}

val clean : report -> bool
(** No divergences and no crashed agent. *)

val run : ?config:config -> Trace.t -> report
(** Replay the trace through all five schedulers and cross-examine.
    Deterministic: equal traces and configs yield equal reports (up to
    the wall-clock fields).

    Besides the classic checks (dependency invariant after every event,
    TCAM-vs-linear lookup equivalence, store agreement by accept history,
    emission determinism), the oracle captures {e every} snapshot image an
    agent publishes while a flow-mod cascades ({!Fr_switch.Agent.set_publish_observer})
    and holds each to the pre-or-post law: over the event's probe packets,
    the image's answer vector must equal the semantic table's before the
    flow-mod or after it — never a mix of the two, never a third state.
    (The one sanctioned exception: a [Set_action] on a dead row relocates
    via Remove + Add, whose mid-flight snapshots legitimately miss the
    rule.)  This is the proof that wait-free readers of the published
    image can never observe a half-applied cascade. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Crash-recovery differential mode}

    The durability counterpart of {!run}: the same trace is driven, per
    scheduler kind, through a single-shard {e journaled}
    {!Fr_ctrl.Service}, flushed every [batch] events, and then killed
    after [at] events via {!Fr_ctrl.Service.simulate_crash} — with
    [mid_drain], in the worst spot, after the begin markers went durable
    but before any commit.  {!Fr_ctrl.Service.recover} rebuilds a service
    from the journal directory alone, and the oracle checks, for every
    kind:

    - the recovered installed state (store image and probe lookups)
      equals a journal-free reference service driven over just the
      {e committed} prefix;
    - after one more flush (draining the requeued suffix), it equals the
      reference over the {e whole} prefix — no accepted intent was lost;
    - the recovered agent passes
      {!Fr_switch.Agent.verify_consistent}, and recovery itself reports
      no warnings. *)

type crash_column = {
  crash_scheduler : string;
  committed : int;  (** events covered by completed flushes *)
  suffix : int;  (** events submitted but uncommitted at the crash *)
  replayed_drains : int;
  requeued : int;
  recovered_rules : int;
}

type crash_report = {
  crash_trace : Trace.t;
  crash_at : int;  (** clamped to the trace length *)
  mid_drain : bool;
  crash_columns : crash_column list;
  crash_divergences : divergence list;
  crash_wall_ms : float;
}

val crash_clean : crash_report -> bool

val run_crash :
  ?probes:int ->
  ?batch:int ->
  ?mid_drain:bool ->
  ?at:int ->
  ?domains:int ->
  ?capture:string ->
  Trace.t ->
  crash_report
(** Defaults: 8 probes, flush every 4 events, clean crash between
    flushes, [at] = the whole trace.  [domains] is handed to every
    service the oracle builds (reference, journaled run, recovery) — with
    [domains > 1] the oracle doubles as the proof that the parallel drain
    path is observationally equivalent to the sequential one.  Journals live in (and are cleaned
    from) a fresh temp directory per scheduler — unless [capture] names a
    directory, in which case each diverging kind leaves a {!Bundle}
    (trace + parameters + journal copy) at [capture/crash-<kind>]
    {e before} the temp journal is deleted, replayable offline via
    [conform --replay].
    @raise Invalid_argument if [batch <= 0]. *)

val pp_crash_report : Format.formatter -> crash_report -> unit

(** {1 Failover differential mode}

    The graceful-degradation counterpart of {!run_crash}: per scheduler
    kind, the trace is driven through a multi-shard failover-enabled
    {!Fr_ctrl.Service} with a {e persistent latency fault} on one shard
    (every hardware op succeeds, [slow_ms] late), flushed every [batch]
    events.  The slow-call breaker quarantines the sick shard, failover
    routing diverts new ids to healthy siblings, and after the stream
    ends the oracle heals the fault and keeps flushing until the overlay
    drains home.  It then checks, against a never-faulted twin of the
    same shape:

    - no submit was shed and no op failed (latency must degrade service,
      not correctness);
    - the fault actually engaged ([diverted > 0] — otherwise the run is
      vacuous and reported as such);
    - the overlay converges back to 0 diverted ids with every breaker
      closed;
    - the union of all shards' installed tables, and cross-shard probe
      lookups, equal the twin's — lookup equivalence under failover. *)

type failover_column = {
  failover_scheduler : string;
  fo_applied : int;
  fo_failed : int;
  fo_shed : int;
  fo_diverted : int;  (** ids routed away from the sick home *)
  fo_rebalanced : int;  (** ids drained back home after the heal *)
  heal_flushes : int;  (** flushes from heal to convergence *)
}

type failover_report = {
  failover_trace : Trace.t;
  fo_shards : int;
  fault_shard : int;
  fo_slow_ms : float;
  failover_columns : failover_column list;
  failover_divergences : divergence list;
  failover_wall_ms : float;
}

val failover_clean : failover_report -> bool

val run_failover :
  ?probes:int ->
  ?batch:int ->
  ?shards:int ->
  ?fault_shard:int ->
  ?slow_ms:float ->
  ?domains:int ->
  ?capture:string ->
  Trace.t ->
  failover_report
(** Defaults: 8 probes, flush every 4 events, 3 shards, the fault on
    shard 0, 8 ms/op — far above the supervisor's 2 ms/op slow-call
    threshold, so the sick shard always trips and healthy ones never do.
    [domains] drives both the faulted service and its twin, so the whole
    quarantine/divert/heal/rebalance cycle is exercised under the
    parallel drain path.
    With [capture], diverging kinds leave a bundle at
    [capture/failover-<kind>].
    @raise Invalid_argument if [batch <= 0], [shards < 2], [fault_shard]
    is out of range, or [slow_ms <= 0]. *)

val pp_failover_report : Format.formatter -> failover_report -> unit

(** {1 Degraded-hardware differential mode}

    The partial-degradation counterpart of {!run_failover}: per scheduler
    kind, the trace is driven through a multi-shard failover-enabled
    {!Fr_ctrl.Service} with a {e seeded stuck bank} — [dead_frac] of one
    shard's rows reject every write — flushed every [batch] events.  The
    firmware discovers the holes through write failures (each condemns
    its row in the {!Fr_tcam.Deadmap}), the supervisor's retry budget
    absorbs the discovery so the breaker never opens, the schedulers
    step over the dead rows, and the service diverts only the overflow
    once the shard's effective capacity is exhausted.  Checks:

    - at every flush boundary the hardware lookup equals the semantic
      scan (dependency order survives hole-stepping);
    - no submit is shed — a 10%-dead shard still serves;
    - after the heal, the probe drill revives every row and the run
      converges (no diverted ids, no pending work, no dead rows, all
      breakers closed);
    - the final union table and post-heal probe lookups equal a
      never-faulted twin's. *)

type degraded_column = {
  degraded_scheduler : string;
  dg_applied : int;
  dg_failed : int;
      (** transient per-drain failures — the discovery cost, not a gate *)
  dg_shed : int;
  dg_diverted : int;
  dg_degraded_diverted : int;
      (** diverts caused by shrunken capacity, not a quarantine *)
  dg_dead_max : int;
      (** most rows simultaneously condemned; [0] means the workload never
          wrote into the stuck bank — certification entry points assert
          [> 0] on traces chosen to guarantee contact *)
  dg_recovered : int;  (** rows revived by the probe drill *)
  dg_heal_flushes : int;
}

type degraded_report = {
  degraded_trace : Trace.t;
  dg_shards : int;
  dg_fault_shard : int;
  dg_dead_frac : float;
  dg_seeded_dead : int;  (** rows in the seeded stuck bank *)
  degraded_columns : degraded_column list;
  degraded_divergences : divergence list;
  degraded_wall_ms : float;
}

val degraded_clean : degraded_report -> bool

val run_degraded :
  ?probes:int ->
  ?batch:int ->
  ?shards:int ->
  ?fault_shard:int ->
  ?dead_frac:float ->
  ?domains:int ->
  ?capture:string ->
  Trace.t ->
  degraded_report
(** Defaults: 8 probes, flush every 4 events, 3 shards, the stuck bank on
    shard 0 covering 10% of its rows.  [domains] drives both the faulted
    service and its twin, so discovery, hole-stepping, overflow diverts
    and the probe-drill heal all run under the parallel drain path too.
    With [capture], diverging kinds leave a bundle at
    [capture/degraded-<kind>].
    @raise Invalid_argument if [batch <= 0], [shards < 2], [fault_shard]
    is out of range, or [dead_frac] is outside (0, 1). *)

val pp_degraded_report : Format.formatter -> degraded_report -> unit

(** {1 Network rollout differential mode}

    The fleet-level conformance class: one seeded {!Fr_net.Scenario}
    (topology + old → new policy diff) is planned once
    ({!Fr_net.Plan.make}) and then rolled out, per scheduler kind,
    through a full {!Fr_net.Fleet} — every topology node a complete
    [Fr_ctrl.Service] running that scheduler.  The oracle hooks the
    fleet's probe callback, so at {e every} reachable instant — the
    initial state, after each switch's flush inside every round
    (mid-flush probe points), after each individual ingress-stamp flip,
    and at each round boundary — it traces seeded pure-region packets
    hop by hop through the live tables ({!Fr_net.Check.consistent}) and
    demands:

    - {b per-packet consistency} — every trace equals exactly the path
      its (flow, stamped version) configures: entirely the old policy's
      path or entirely the new one's, never a mix;
    - {b waypoint preservation} — a flow's configured waypoint is on
      every trace, at every instant;
    - {b delivery} — traces end at the configured egress, no drops,
      no loops, no rule gaps;
    - {b convergence} — the final tables and stamps equal a fresh fleet
      built directly from the new policy, and all five schedulers land
      on identical tables.

    All lanes trace the same packets (same probe PRNG seed), so any
    disagreement is attributable to the scheduler under test. *)

type net_column = {
  net_scheduler : string;
  net_rounds : int;  (** rounds committed *)
  net_applied : int;  (** flow-mods applied across the fleet *)
  net_failed : int;
  net_probes : int;  (** probe points checked for this lane *)
}

type net_report = {
  net_shape : string;
  net_nodes : int;
  net_flows : int;  (** old-policy flows *)
  net_rounds_planned : int;
  net_columns : net_column list;
  net_divergences : divergence list;
      (** [event] is the round index; [-1] for initial/final checks *)
  net_wall_ms : float;
}

val net_clean : net_report -> bool

val run_net :
  ?batch:int ->
  ?samples:int ->
  ?shards:int ->
  ?capacity:int ->
  ?domains:int ->
  Fr_net.Scenario.t ->
  net_report
(** Defaults: [batch = 4] mods per switch per round, [samples = 2]
    packets per stamped flow per probe point, 2 shards of 64 slots per
    node.  [domains] feeds both the fleet-level node fan-out and every
    node service — running the oracle under [domains = 1] and [= 4]
    (plus the CI journal-byte diff) extends the parallel ≡ sequential
    equivalence proof to the fleet.
    @raise Invalid_argument if the scenario does not plan. *)

val pp_net_report : Format.formatter -> net_report -> unit

(** {1 Network chaos certification mode}

    The switch-loss counterpart of {!run_net}: a seeded stream of random
    rollout scenarios, each executed under a random per-switch fault
    schedule ({!Fr_net.Scenario.chaos_faults} — control-agent crashes at
    round boundaries and mid-flush, slow acks, stuck TCAM banks) with
    per-node supervision engaged.  Even cases run [hold = Wait] with a
    generous pass budget; odd cases run [hold = Abort] with a tight one,
    so fault escalation triggers real compensating rollbacks; every
    fourth case additionally pulls the operator abort lever at a random
    committed boundary.  Per case and per scheduler lane the oracle
    demands:

    - {b consistency at every instant} — {!Fr_net.Check.consistent}
      against the {e original} plan at the initial state, after every
      node flush, every retry, every mid-flush node crash, every
      individual stamp flip (forward and rolled-back), and every round
      boundary;
    - {b abort atomicity} — an [Aborted] rollout's fleet (tables and
      stamps) equals a twin on which the rollout never started, a
      [Completed] one equals the new-policy twin, and a [Held] verdict
      (a wedged rollout) is itself a divergence;
    - {b verdict agreement} — all five schedulers reach the same
      outcome and identical settled tables.

    Everything derives from [seed], and supervision runs on modelled
    time, so the whole report (see {!chaos_fingerprint}) is
    deterministic and domain-count-invariant. *)

type chaos_case = {
  case_index : int;
  case_seed : int;
  case_shape : string;
  case_nodes : int;
  case_flows : int;
  case_rounds : int;  (** forward rounds planned *)
  case_faults : string list;  (** {!Fr_net.Scenario.fault_to_string} forms *)
  case_hold : string;  (** ["wait"] or ["abort"] *)
  case_abort_at : int option;  (** operator abort boundary, if pulled *)
  case_outcome : string;  (** e.g. ["completed"], ["aborted@2-3"] *)
  case_retried : int;
  case_quarantines : int;
  case_recovered : int;
  case_probes : int;  (** probe points checked per lane *)
}

type chaos_report = {
  chaos_seed : int;
  chaos_cases : chaos_case list;
  chaos_outcomes : (string * int) list;
      (** outcome kind -> case count, sorted *)
  chaos_divergences : divergence list;
  chaos_wall_ms : float;
}

val chaos_clean : chaos_report -> bool

val chaos_fingerprint : chaos_report -> string
(** Digest of every wall-clock-free field of the report — equal across
    [domains] settings for equal seeds, which is what the CI chaos job
    asserts. *)

val run_net_chaos :
  ?cases:int ->
  ?samples:int ->
  ?shards:int ->
  ?capacity:int ->
  ?domains:int ->
  seed:int ->
  unit ->
  chaos_report
(** Defaults: 100 cases, [samples = 2] packets per stamped flow per
    probe point, 2 shards of 64 slots per node.  Each case builds a
    journaled fleet per scheduler lane in a fresh temp directory
    (removed afterwards) — crash faults re-adopt nodes from those
    journals mid-rollout.
    @raise Invalid_argument if [cases < 1]. *)

val pp_chaos_report : Format.formatter -> chaos_report -> unit
