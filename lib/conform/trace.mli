(** Conformance traces: a seeded, serializable workload recording.

    A trace is everything needed to replay one conformance run bit-for-bit
    on another machine: the workload parameters (table kind, seed, pool
    and preload sizes, per-agent TCAM capacity) and the flow-mod events,
    expressed as indices into the deterministic rule pool
    [Fr_workload.Dataset.generate kind ~seed ~n:pool].  Optionally it also
    carries {e recordings} — the update sequences each scheduler emitted
    per event — so a replay can assert the schedulers are deterministic,
    not merely correct.

    The on-disk format is a line-oriented text file (see doc/CONFORM.md):
    a header of [key value] pairs, one event per line ([a i] insert pool
    rule [i], [r i] remove it, [s i f4] rewrite its action), then optional
    [ops <scheduler> <event> <csv>] recording lines.  It is stable,
    diff-able and small — a 1000-event trace is a few kilobytes. *)

type event =
  | Add of int  (** install pool rule [i] *)
  | Remove of int  (** remove pool rule [i] (by its id) *)
  | Set_action of int * Fr_tern.Rule.action
      (** rewrite pool rule [i]'s action in place *)

val pp_event : Format.formatter -> event -> unit

type t = {
  kind : Fr_workload.Dataset.kind;
  seed : int;  (** pool generation, event stream and probe sampling *)
  initial : int;  (** pool rules [0 .. initial-1] are preloaded *)
  pool : int;  (** pool size; events draw from [initial ..] first *)
  capacity : int;  (** TCAM slots per agent *)
  events : event list;
  recordings : (string * Fr_tcam.Op.t list array) list;
      (** per scheduler name, the emitted sequence per event index
          (empty list for events that scheduled nothing) *)
}

val generate :
  ?p_remove:float ->
  ?p_set:float ->
  kind:Fr_workload.Dataset.kind ->
  seed:int ->
  initial:int ->
  pool:int ->
  capacity:int ->
  events:int ->
  unit ->
  t
(** A seeded event stream: each step is an [Add] of a pool rule not
    currently live (probability [1 - p_remove - p_set], and forced when
    nothing is live), a [Remove] of a live one ([p_remove], default 0.2),
    or a [Set_action] ([p_set], default 0.1).  Removed rules return to the
    draw pool, so long streams churn rather than drain.  Equal arguments
    yield equal traces.
    @raise Invalid_argument if [initial > pool] or the probabilities leave
    no room for adds. *)

val rules : t -> Fr_tern.Rule.t array
(** The trace's rule pool, regenerated from [(kind, seed, pool)]. *)

val flow_mod : Fr_tern.Rule.t array -> event -> Fr_switch.Agent.flow_mod
(** Resolve one event against the pool. *)

val with_events : t -> event list -> t
(** Same workload, different events; recordings are dropped (they are
    indexed by event position). *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** [of_string (to_string t) = Ok t].  [Error] pinpoints the first bad
    line. *)

val save : t -> string -> unit
val load : string -> (t, string) result

val pp : Format.formatter -> t -> unit
(** Human-oriented one-line summary (not the serialization). *)
