module Measure = Fr_switch.Measure

module Json = struct
  type v =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of v list
    | Obj of (string * v) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec write buf = function
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%g" f)
        else Buffer.add_string buf "null"
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            write buf v)
          vs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            write buf (Str k);
            Buffer.add_char buf ':';
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    write buf v;
    Buffer.contents buf

  let of_summary (s : Measure.summary) =
    Obj
      [
        ("count", Int s.Measure.count);
        ("mean", Float s.Measure.mean);
        ("min", Float s.Measure.min);
        ("max", Float s.Measure.max);
        ("p50", Float s.Measure.p50);
        ("p95", Float s.Measure.p95);
        ("p99", Float s.Measure.p99);
      ]
end

type t = {
  mutable submitted : int;
  mutable coalesced : int;
  mutable rejected : int;
  mutable applied : int;
  mutable failed : int;
  mutable drains : int;
  mutable tcam_ops : int;
  mutable moves : int;
  mutable fw_ms : float;
  mutable hw_ms : float;
  mutable depth_max : int;
  (* supervision (Fr_resil) *)
  mutable retries : int;  (* retry rounds run *)
  mutable retried_ops : int;  (* ops re-driven by those rounds *)
  mutable backoff_ms : float;  (* modelled backoff delay accrued *)
  mutable shed : int;  (* submits rejected Overloaded *)
  mutable breaker_opens : int;
  mutable checkpoints : int;
  mutable breaker_state : string;  (* current, for dumps *)
  (* failover / fault domains *)
  mutable diverted : int;  (* new ids routed here away from a sick home *)
  mutable rebalanced : int;  (* diverted ids drained back to this home *)
  mutable restarts : int;  (* whole-shard restart faults absorbed *)
  mutable slow_drains : int;  (* drains over the slow-call threshold *)
  mutable slow_threshold_ms : float;
      (* per-op bound the last drain was judged against (infinity: slow
         policy off or still warming up) *)
  (* degraded hardware (dead rows) *)
  mutable dead_rows : int;  (* gauge: rows the dead map condemns now *)
  mutable degraded_diverted : int;
      (* diverts caused by a degraded home's shrunken capacity (also
         counted in [diverted]) *)
  mutable heal_probes : int;  (* dead rows re-tested by the probe drill *)
  mutable rows_recovered : int;  (* probes that revived a row *)
  (* cache tier (Fr_cache) *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_admitted : int;  (* rules installed, closures included *)
  mutable cache_evicted : int;
  mutable cache_admit_skips : int;  (* admissions refused (no cold victims) *)
  mutable cache_repairs : int;  (* flush-failure repair passes *)
  mutable cache_flushes : int;  (* maintenance rounds flushed *)
  fw_series : Measure.Series.t;  (* per drain *)
  hw_series : Measure.Series.t;
  wall_series : Measure.Series.t;
  ops_series : Measure.Series.t;
  hw_op_series : Measure.Series.t;
      (* modelled hardware ms per TCAM op, one sample per non-empty drain
         — the latency histogram the adaptive slow-call threshold reads *)
  closure_series : Measure.Series.t;
      (* admission-closure sizes, one sample per admission *)
  churn_series : Measure.Series.t;
      (* inserts + deletes per cache maintenance flush *)
}

let create () =
  {
    submitted = 0;
    coalesced = 0;
    rejected = 0;
    applied = 0;
    failed = 0;
    drains = 0;
    tcam_ops = 0;
    moves = 0;
    fw_ms = 0.0;
    hw_ms = 0.0;
    depth_max = 0;
    retries = 0;
    retried_ops = 0;
    backoff_ms = 0.0;
    shed = 0;
    breaker_opens = 0;
    checkpoints = 0;
    breaker_state = "closed";
    diverted = 0;
    rebalanced = 0;
    restarts = 0;
    slow_drains = 0;
    slow_threshold_ms = infinity;
    dead_rows = 0;
    degraded_diverted = 0;
    heal_probes = 0;
    rows_recovered = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_admitted = 0;
    cache_evicted = 0;
    cache_admit_skips = 0;
    cache_repairs = 0;
    cache_flushes = 0;
    fw_series = Measure.Series.create ();
    hw_series = Measure.Series.create ();
    wall_series = Measure.Series.create ();
    ops_series = Measure.Series.create ();
    hw_op_series = Measure.Series.create ();
    closure_series = Measure.Series.create ();
    churn_series = Measure.Series.create ();
  }

let record_submitted t = t.submitted <- t.submitted + 1

let record_retry t ~ops ~backoff_ms =
  t.retries <- t.retries + 1;
  t.retried_ops <- t.retried_ops + ops;
  t.backoff_ms <- t.backoff_ms +. backoff_ms

let record_shed t = t.shed <- t.shed + 1
let record_breaker_open t = t.breaker_opens <- t.breaker_opens + 1
let record_checkpoint t = t.checkpoints <- t.checkpoints + 1
let record_diverted t = t.diverted <- t.diverted + 1
let record_rebalanced t = t.rebalanced <- t.rebalanced + 1
let record_restart t = t.restarts <- t.restarts + 1
let record_slow_drain t = t.slow_drains <- t.slow_drains + 1
let set_slow_threshold t ms = t.slow_threshold_ms <- ms
let set_dead_rows t n = t.dead_rows <- n
let record_degraded_divert t = t.degraded_diverted <- t.degraded_diverted + 1

let record_heal_probe t ~probed ~recovered =
  t.heal_probes <- t.heal_probes + probed;
  t.rows_recovered <- t.rows_recovered + recovered
let set_breaker_state t s = t.breaker_state <- s
let record_coalesced t n = t.coalesced <- t.coalesced + n
let record_cache_hit t = t.cache_hits <- t.cache_hits + 1
let record_cache_miss t = t.cache_misses <- t.cache_misses + 1

let record_cache_admission t ~rules =
  t.cache_admitted <- t.cache_admitted + rules;
  Measure.Series.add t.closure_series (float_of_int rules)

let record_cache_eviction t ~rules = t.cache_evicted <- t.cache_evicted + rules
let record_cache_admit_skip t = t.cache_admit_skips <- t.cache_admit_skips + 1
let record_cache_repair t = t.cache_repairs <- t.cache_repairs + 1

let record_cache_flush t ~inserts ~deletes =
  t.cache_flushes <- t.cache_flushes + 1;
  Measure.Series.add t.churn_series (float_of_int (inserts + deletes))
let record_rejected t n = t.rejected <- t.rejected + n

let record_drain t ~queue_depth ~applied ~failed ~firmware_ms ~hardware_ms
    ~tcam_ops ~moves ~wall_ms =
  t.drains <- t.drains + 1;
  t.applied <- t.applied + applied;
  t.failed <- t.failed + failed;
  t.tcam_ops <- t.tcam_ops + tcam_ops;
  t.moves <- t.moves + moves;
  t.fw_ms <- t.fw_ms +. firmware_ms;
  t.hw_ms <- t.hw_ms +. hardware_ms;
  if queue_depth > t.depth_max then t.depth_max <- queue_depth;
  Measure.Series.add t.fw_series firmware_ms;
  Measure.Series.add t.hw_series hardware_ms;
  Measure.Series.add t.wall_series wall_ms;
  Measure.Series.add t.ops_series (float_of_int tcam_ops);
  if tcam_ops > 0 then
    Measure.Series.add t.hw_op_series (hardware_ms /. float_of_int tcam_ops)

let submitted t = t.submitted
let coalesced t = t.coalesced
let rejected t = t.rejected
let applied t = t.applied
let failed t = t.failed
let drains t = t.drains
let tcam_ops t = t.tcam_ops
let moves t = t.moves
let firmware_ms_total t = t.fw_ms
let hardware_ms_total t = t.hw_ms
let queue_depth_max t = t.depth_max
let retries t = t.retries
let retried_ops t = t.retried_ops
let backoff_ms_total t = t.backoff_ms
let shed t = t.shed
let breaker_opens t = t.breaker_opens
let checkpoints t = t.checkpoints
let breaker_state t = t.breaker_state
let diverted t = t.diverted
let rebalanced t = t.rebalanced
let restarts t = t.restarts
let slow_drains t = t.slow_drains
let slow_threshold_ms t = t.slow_threshold_ms
let dead_rows t = t.dead_rows
let degraded_diverted t = t.degraded_diverted
let heal_probes t = t.heal_probes
let rows_recovered t = t.rows_recovered
let firmware_ms t = Measure.Series.summary t.fw_series
let hardware_ms t = Measure.Series.summary t.hw_series
let wall_ms t = Measure.Series.summary t.wall_series
let drain_ops t = Measure.Series.summary t.ops_series
let hw_per_op_ms t = Measure.Series.summary t.hw_op_series
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let cache_admitted t = t.cache_admitted
let cache_evicted t = t.cache_evicted
let cache_admit_skips t = t.cache_admit_skips
let cache_repairs t = t.cache_repairs
let cache_flushes t = t.cache_flushes

let cache_hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

let cache_closure t = Measure.Series.summary t.closure_series
let cache_churn t = Measure.Series.summary t.churn_series

type histogram = { bounds : float array; counts : int array }

(* Log2-spaced bucket bounds from just under the smallest positive sample
   up to the largest; every sample <= bounds.(i) for some i except the
   overflow bucket. *)
let histogram ?(buckets = 12) samples =
  let positive = Array.of_list (List.filter (fun x -> x > 0.0) (Array.to_list samples)) in
  if Array.length positive = 0 then
    { bounds = [| 1.0 |]; counts = [| Array.length samples; 0 |] }
  else begin
    let lo = Array.fold_left min positive.(0) positive in
    let hi = Array.fold_left max positive.(0) positive in
    let lo_exp = int_of_float (Float.floor (Float.log2 lo)) in
    let hi_exp = int_of_float (Float.ceil (Float.log2 hi)) in
    let n = min buckets (max 1 (hi_exp - lo_exp + 1)) in
    (* When the range exceeds the bucket budget, widen the step so the
       top bound still covers [hi]. *)
    let step =
      float_of_int (max 1 ((hi_exp - lo_exp + n) / n))
    in
    let bounds =
      Array.init n (fun i ->
          Float.pow 2.0 (float_of_int lo_exp +. (step *. float_of_int (i + 1))))
    in
    let counts = Array.make (n + 1) 0 in
    Array.iter
      (fun x ->
        let rec place i =
          if i >= n then counts.(n) <- counts.(n) + 1
          else if x <= bounds.(i) then counts.(i) <- counts.(i) + 1
          else place (i + 1)
        in
        place 0)
      samples;
    { bounds; counts }
  end

let latency_histogram t = histogram (Measure.Series.to_array t.wall_series)
let moves_histogram t = histogram (Measure.Series.to_array t.ops_series)

let pp_histogram ppf { bounds; counts } =
  Array.iteri
    (fun i c ->
      if c > 0 then
        if i < Array.length bounds then
          Format.fprintf ppf "    <= %8.3f  %d@." bounds.(i) c
        else Format.fprintf ppf "     > %8.3f  %d@." bounds.(Array.length bounds - 1) c)
    counts

let pp ppf t =
  Format.fprintf ppf
    "submitted %d  coalesced %d  rejected %d  applied %d  failed %d@."
    t.submitted t.coalesced t.rejected t.applied t.failed;
  Format.fprintf ppf
    "drains %d  tcam-ops %d  moves %d  queue-depth-max %d@."
    t.drains t.tcam_ops t.moves t.depth_max;
  if
    t.retries > 0 || t.shed > 0 || t.breaker_opens > 0 || t.checkpoints > 0
    || t.breaker_state <> "closed"
  then
    Format.fprintf ppf
      "retries %d (%d ops, %.1f ms backoff)  shed %d  breaker %s (opened %d)  checkpoints %d@."
      t.retries t.retried_ops t.backoff_ms t.shed t.breaker_state
      t.breaker_opens t.checkpoints;
  if t.diverted > 0 || t.rebalanced > 0 || t.restarts > 0 || t.slow_drains > 0
  then
    Format.fprintf ppf
      "diverted %d  rebalanced %d  restarts %d  slow-drains %d@." t.diverted
      t.rebalanced t.restarts t.slow_drains;
  if Float.is_finite t.slow_threshold_ms then
    Format.fprintf ppf "slow-call threshold (ms/op): %.3f@." t.slow_threshold_ms;
  if t.dead_rows > 0 || t.heal_probes > 0 || t.degraded_diverted > 0 then
    Format.fprintf ppf
      "dead-rows %d  degraded-diverted %d  heal-probes %d  recovered %d@."
      t.dead_rows t.degraded_diverted t.heal_probes t.rows_recovered;
  if t.cache_hits > 0 || t.cache_misses > 0 then begin
    Format.fprintf ppf
      "cache: hits %d  misses %d (%.1f%% hit)  admitted %d  evicted %d  \
       skipped %d  repairs %d  flushes %d@."
      t.cache_hits t.cache_misses
      (100.0 *. cache_hit_rate t)
      t.cache_admitted t.cache_evicted t.cache_admit_skips t.cache_repairs
      t.cache_flushes;
    Format.fprintf ppf "admission closure (rules): %a@." Measure.pp_summary
      (cache_closure t);
    Format.fprintf ppf "churn/flush (ops): %a@." Measure.pp_summary
      (cache_churn t)
  end;
  Format.fprintf ppf "firmware/drain (ms): %a@." Measure.pp_summary
    (firmware_ms t);
  Format.fprintf ppf "hardware/drain (ms): %a@." Measure.pp_summary
    (hardware_ms t);
  Format.fprintf ppf "drain latency histogram (wall ms):@.%a" pp_histogram
    (latency_histogram t)

let histogram_json { bounds; counts } =
  Json.Obj
    [
      ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) bounds)));
      ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts)));
    ]

let to_json t =
  Json.Obj
    [
      ("submitted", Json.Int t.submitted);
      ("coalesced", Json.Int t.coalesced);
      ("rejected", Json.Int t.rejected);
      ("applied", Json.Int t.applied);
      ("failed", Json.Int t.failed);
      ("drains", Json.Int t.drains);
      ("tcam_ops", Json.Int t.tcam_ops);
      ("moves", Json.Int t.moves);
      ("queue_depth_max", Json.Int t.depth_max);
      ("retries", Json.Int t.retries);
      ("retried_ops", Json.Int t.retried_ops);
      ("backoff_ms_total", Json.Float t.backoff_ms);
      ("shed", Json.Int t.shed);
      ("breaker_opens", Json.Int t.breaker_opens);
      ("breaker_state", Json.Str t.breaker_state);
      ("checkpoints", Json.Int t.checkpoints);
      ("diverted", Json.Int t.diverted);
      ("rebalanced", Json.Int t.rebalanced);
      ("restarts", Json.Int t.restarts);
      ("slow_drains", Json.Int t.slow_drains);
      ("slow_threshold_ms", Json.Float t.slow_threshold_ms);
      ("dead_rows", Json.Int t.dead_rows);
      ("degraded_diverted", Json.Int t.degraded_diverted);
      ("heal_probes", Json.Int t.heal_probes);
      ("rows_recovered", Json.Int t.rows_recovered);
      ("cache_hits", Json.Int t.cache_hits);
      ("cache_misses", Json.Int t.cache_misses);
      ("cache_hit_rate", Json.Float (cache_hit_rate t));
      ("cache_admitted", Json.Int t.cache_admitted);
      ("cache_evicted", Json.Int t.cache_evicted);
      ("cache_admit_skips", Json.Int t.cache_admit_skips);
      ("cache_repairs", Json.Int t.cache_repairs);
      ("cache_flushes", Json.Int t.cache_flushes);
      ("cache_closure", Json.of_summary (cache_closure t));
      ("cache_churn", Json.of_summary (cache_churn t));
      ("firmware_ms_total", Json.Float t.fw_ms);
      ("hardware_ms_total", Json.Float t.hw_ms);
      ("firmware_ms", Json.of_summary (firmware_ms t));
      ("hardware_ms", Json.of_summary (hardware_ms t));
      ("wall_ms", Json.of_summary (wall_ms t));
      ("drain_ops", Json.of_summary (drain_ops t));
      ("hw_per_op_ms", Json.of_summary (hw_per_op_ms t));
      ("latency_histogram", histogram_json (latency_histogram t));
      ("moves_histogram", histogram_json (moves_histogram t));
    ]
