module Agent = Fr_switch.Agent
module Measure = Fr_switch.Measure
module Tcam = Fr_tcam.Tcam

type t = {
  id : int;
  (* Mutable so a whole-shard restart fault can swap in a fresh agent:
     the old one's volatile state is the thing the fault destroys. *)
  mutable agent : Agent.t;
  queue : Coalesce.t;
  telemetry : Telemetry.t;
  refresh_every : int;
  (* Construction parameters, kept so [reset] rebuilds an identical
     agent shape. *)
  kind : Fr_switch.Firmware.algo_kind option;
  latency : Fr_tcam.Latency.t option;
  verify : bool option;
  capacity : int;
}

let create ?kind ?latency ?verify ?(refresh_every = 1) ~capacity ~id () =
  {
    id;
    agent = Agent.create ?kind ?latency ?verify ~capacity ();
    queue = Coalesce.create ();
    telemetry = Telemetry.create ();
    refresh_every;
    kind;
    latency;
    verify;
    capacity;
  }

let of_rules ?kind ?latency ?verify ?(refresh_every = 1) ~capacity ~id rules =
  {
    id;
    agent = Agent.of_rules ?kind ?latency ?verify ~capacity rules;
    queue = Coalesce.create ();
    telemetry = Telemetry.create ();
    refresh_every;
    kind;
    latency;
    verify;
    capacity;
  }

let id t = t.id
let agent t = t.agent
let published t = Agent.published t.agent
let lookup_published t packet = Agent.lookup_published t.agent packet
let telemetry t = t.telemetry
let queue_depth t = Coalesce.depth t.queue
let set_fault t f = Agent.set_fault t.agent f

(* A whole-shard restart: the agent process dies and comes back holding
   [rules] (what the journal checkpoint says it should hold).  Volatile
   state — queue, pending ops — is lost; the hardware fault plan survives
   because the fault is in the switch, not the agent process — and so
   does the dead map (the dead rows are in the silicon too), so the fresh
   placement packs around the known holes instead of rediscovering them
   write failure by write failure. *)
let reset t rules =
  let fault = Agent.fault t.agent in
  let deadmap = Tcam.deadmap (Agent.tcam t.agent) in
  t.agent <-
    Agent.of_rules ?kind:t.kind ?latency:t.latency ?verify:t.verify ~deadmap
      ~capacity:t.capacity rules;
  Agent.set_fault t.agent fault;
  Coalesce.clear t.queue

let dead_rows t = Agent.dead_rows t.agent
let probe_dead t = Agent.probe_dead t.agent

let installed t fm =
  let rule_id =
    match fm with
    | Agent.Add r -> r.Fr_tern.Rule.id
    | Agent.Set_action { id; _ } -> id
    | Agent.Remove { id } -> id
  in
  Agent.rule t.agent rule_id <> None

let submit ?epoch t fm =
  Telemetry.record_submitted t.telemetry;
  Coalesce.push ?epoch t.queue ~installed:(installed t fm) fm

(* Re-enqueue work the service already counted once: retried casualties
   and journal replay go through here so [submitted] stays an arrival
   count, not an attempt count. *)
let requeue ?epoch t fm = Coalesce.push ?epoch t.queue ~installed:(installed t fm) fm

let has_work t = not (Coalesce.is_empty t.queue)
let pending_mods t = Coalesce.pending_ops t.queue

let has_pending_id t id =
  List.exists
    (fun fm ->
      match fm with
      | Agent.Add r -> r.Fr_tern.Rule.id = id
      | Agent.Set_action { id = i; _ } | Agent.Remove { id = i } -> i = id)
    (Coalesce.pending_ops t.queue)

type drain_result = {
  shard : int;
  applied : int;
  failed : (Agent.flow_mod * string) list;
  coalesced : int;
  firmware_ms : float;
  hardware_ms : float;
  tcam_ops : int;
  wall_ms : float;
}

let empty_result ~shard =
  {
    shard;
    applied = 0;
    failed = [];
    coalesced = 0;
    firmware_ms = 0.0;
    hardware_ms = 0.0;
    tcam_ops = 0;
    wall_ms = 0.0;
  }

let drain t =
  let plan = Coalesce.pending_ops t.queue in
  let rejections = Coalesce.rejected t.queue in
  let coalesced = Coalesce.coalesced t.queue in
  let depth = Coalesce.depth t.queue in
  Coalesce.clear t.queue;
  let fw0 = Agent.firmware_ms_total t.agent in
  let hw0 = Agent.tcam_ms_total t.agent in
  let ops0 = Tcam.ops_issued (Agent.tcam t.agent) in
  let moves0 = Tcam.moves_issued (Agent.tcam t.agent) in
  let results, wall_ms =
    Measure.time_ms (fun () ->
        Agent.apply_batch ~refresh_every:t.refresh_every t.agent plan)
  in
  let applied = ref 0 and failed = ref (List.rev rejections) in
  List.iter2
    (fun fm result ->
      match result with
      | Ok () -> incr applied
      | Error e -> failed := (fm, e) :: !failed)
    plan results;
  let result =
    {
      shard = t.id;
      applied = !applied;
      failed = List.rev !failed;
      coalesced;
      firmware_ms = Agent.firmware_ms_total t.agent -. fw0;
      hardware_ms = Agent.tcam_ms_total t.agent -. hw0;
      tcam_ops = Tcam.ops_issued (Agent.tcam t.agent) - ops0;
      wall_ms;
    }
  in
  Telemetry.record_coalesced t.telemetry coalesced;
  Telemetry.record_rejected t.telemetry (List.length rejections);
  Telemetry.record_drain t.telemetry ~queue_depth:depth ~applied:!applied
    ~failed:(List.length result.failed)
    ~firmware_ms:result.firmware_ms ~hardware_ms:result.hardware_ms
    ~tcam_ops:result.tcam_ops
    ~moves:(Tcam.moves_issued (Agent.tcam t.agent) - moves0)
    ~wall_ms;
  result
