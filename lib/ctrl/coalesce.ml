module Rule = Fr_tern.Rule
module Agent = Fr_switch.Agent

(* Per-id pending state.  [seq] is the arrival index of the op that
   created the entry (for adds: of the latest Add), so the drain plan can
   keep arrival order within each phase. *)
type pending =
  | P_add of { rule : Rule.t; seq : int }  (** insert a fresh rule *)
  | P_set of { action : Rule.action; seq : int }
      (** rewrite an installed rule's action in place *)
  | P_remove of { seq : int }  (** erase an installed rule *)
  | P_replace of { rule : Rule.t; seq : int }
      (** erase an installed rule, then insert its successor *)

type outcome = Queued | Folded | Annihilated | Rejected of string

type t = {
  tbl : (int, pending) Hashtbl.t;
  (* Placement epoch of each pending id (failover fencing): once an id
     has pending ops under epoch [e], ops tagged with a different epoch
     are fenced off — they belong to a different shard placement and
     accepting them here would let one id's ops interleave across two
     shards.  The service bumps an id's epoch only when it has no pending
     ops anywhere, so a fence firing means the ordering invariant was
     about to break. *)
  epochs : (int, int) Hashtbl.t;
  mutable next_seq : int;
  mutable coalesced : int;
  mutable rejected : (Agent.flow_mod * string) list;  (* newest first *)
}

let create () =
  {
    tbl = Hashtbl.create 64;
    epochs = Hashtbl.create 64;
    next_seq = 0;
    coalesced = 0;
    rejected = [];
  }

let depth t = Hashtbl.length t.tbl
let is_empty t = Hashtbl.length t.tbl = 0 && t.rejected = []
let coalesced t = t.coalesced
let rejected t = List.rev t.rejected

let clear t =
  Hashtbl.reset t.tbl;
  Hashtbl.reset t.epochs;
  t.coalesced <- 0;
  t.rejected <- []

let reject t fm msg =
  t.rejected <- (fm, msg) :: t.rejected;
  Rejected msg

let fold t ~n = t.coalesced <- t.coalesced + n

let fm_id = function
  | Agent.Add r -> r.Rule.id
  | Agent.Set_action { id; _ } -> id
  | Agent.Remove { id } -> id

let fence t ~epoch fm =
  match epoch with
  | None -> None
  | Some e -> (
      let id = fm_id fm in
      match Hashtbl.find_opt t.epochs id with
      | Some e' when e' <> e && Hashtbl.mem t.tbl id ->
          Some
            (Printf.sprintf
               "epoch fence: rule %d moved shards mid-queue (pending epoch \
                %d, op epoch %d)"
               id e' e)
      | _ ->
          Hashtbl.replace t.epochs id e;
          None)

let push ?epoch t ~installed fm =
  match fence t ~epoch fm with
  | Some msg -> reject t fm msg
  | None ->
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  match fm with
  | Agent.Add rule -> (
      let id = rule.Rule.id in
      match Hashtbl.find_opt t.tbl id with
      | None ->
          if installed then
            reject t fm (Printf.sprintf "rule %d already installed" id)
          else begin
            Hashtbl.replace t.tbl id (P_add { rule; seq });
            Queued
          end
      | Some (P_add _ | P_replace _ | P_set _) ->
          (* The id will exist when this op's turn comes: a raw replay
             would fail it as a duplicate. *)
          reject t fm (Printf.sprintf "rule %d already installed" id)
      | Some (P_remove _) ->
          Hashtbl.replace t.tbl id (P_replace { rule; seq });
          Folded)
  | Agent.Set_action { id; action } -> (
      match Hashtbl.find_opt t.tbl id with
      | None ->
          if installed then begin
            Hashtbl.replace t.tbl id (P_set { action; seq });
            Queued
          end
          else reject t fm (Printf.sprintf "rule %d is not installed" id)
      | Some (P_add { rule; seq }) ->
          Hashtbl.replace t.tbl id
            (P_add { rule = { rule with Rule.action }; seq });
          fold t ~n:1;
          Folded
      | Some (P_replace { rule; seq }) ->
          Hashtbl.replace t.tbl id
            (P_replace { rule = { rule with Rule.action }; seq });
          fold t ~n:1;
          Folded
      | Some (P_set _) ->
          Hashtbl.replace t.tbl id (P_set { action; seq });
          fold t ~n:1;
          Folded
      | Some (P_remove _) ->
          reject t fm (Printf.sprintf "rule %d is not installed" id))
  | Agent.Remove { id } -> (
      match Hashtbl.find_opt t.tbl id with
      | None ->
          if installed then begin
            Hashtbl.replace t.tbl id (P_remove { seq });
            Queued
          end
          else reject t fm (Printf.sprintf "rule %d is not installed" id)
      | Some (P_add _) ->
          (* The insertion never happened as far as the hardware is
             concerned: both ops vanish. *)
          Hashtbl.remove t.tbl id;
          Hashtbl.remove t.epochs id;
          fold t ~n:2;
          Annihilated
      | Some (P_set { seq; _ }) ->
          (* The rewrite is moot on a rule about to be erased. *)
          Hashtbl.replace t.tbl id (P_remove { seq });
          fold t ~n:1;
          Folded
      | Some (P_replace { seq; _ }) ->
          (* The re-insert is cancelled; the original erase stands. *)
          Hashtbl.replace t.tbl id (P_remove { seq });
          fold t ~n:1;
          Folded
      | Some (P_remove _) ->
          reject t fm (Printf.sprintf "rule %d is not installed" id))

(* Erases free slots for the insertions that follow; rewrites touch rules
   no erase of this drain can reach (the states are exclusive per id). *)
let pending_ops t =
  let removes = ref [] and sets = ref [] and adds = ref [] in
  Hashtbl.iter
    (fun id -> function
      | P_add { rule; seq } -> adds := (seq, Agent.Add rule) :: !adds
      | P_set { action; seq } ->
          sets := (seq, Agent.Set_action { id; action }) :: !sets
      | P_remove { seq } -> removes := (seq, Agent.Remove { id }) :: !removes
      | P_replace { rule; seq } ->
          removes := (seq, Agent.Remove { id }) :: !removes;
          adds := (seq, Agent.Add rule) :: !adds)
    t.tbl;
  let in_order l = List.map snd (List.sort compare l) in
  in_order !removes @ in_order !sets @ in_order !adds
