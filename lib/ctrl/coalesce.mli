(** The per-shard coalescing queue.

    Flow-mods arrive faster than a TCAM can absorb them (BGP churn bursts
    touch the same prefixes over and over), so each shard buffers its ops
    and folds redundant work {e before} it reaches the firmware:

    - [Add] then [Remove] of the same pending rule annihilate — two ops
      that would have cost a full insertion sequence plus an erase cost
      nothing;
    - repeated [Set_action] keeps only the last action;
    - [Set_action] followed by [Remove] drops the moot rewrite;
    - [Remove] of an installed rule followed by [Add] of the same id
      becomes a {e replace}: the erase and the re-insert both survive, in
      that order.

    Folding is only sound against a known base state: [Add 5] over an
    {e installed} rule 5 is a duplicate that must fail, while [Add 5] over
    an empty slot is a real insertion — and [Add 5; Remove 5] cancels in
    the second case but must leave the installed rule alone (and report
    the doomed [Add]) in the first.  The caller therefore passes
    [~installed] (the owning agent's view) on every push; between drains
    the agent does not change, so the answer stays truthful for the
    queue's whole lifetime.  Ops that can {e never} succeed against that
    base state (duplicate adds, removes of absent rules) are rejected at
    push time and reported by the next drain rather than wasting a trip
    through the scheduler.

    The guiding invariant, which the property tests drive with random
    streams: {e draining the queue into the agent leaves exactly the
    table that replaying the raw stream (failed ops ignored) would have
    left.}

    The drain plan {!pending_ops} emits erases first (freeing TCAM slots
    for what follows), then in-place action rewrites, then insertions in
    arrival order — the shape {!Fr_switch.Agent.apply_batch} turns into
    one amortised batch. *)

type t

val create : unit -> t

type outcome =
  | Queued  (** started a new pending entry *)
  | Folded  (** merged into an existing pending entry: one op saved *)
  | Annihilated
      (** cancelled a pending [Add] outright: two ops saved *)
  | Rejected of string
      (** can never succeed against the base state; reported at drain *)

val push : ?epoch:int -> t -> installed:bool -> Fr_switch.Agent.flow_mod -> outcome
(** [push q ~installed fm] — fold [fm] into the queue.  [installed] is
    whether the op's rule id is currently installed in the owning agent
    (ignoring the queue's own pending ops).

    [epoch] is the id's placement epoch under failover routing: if the id
    already has pending ops recorded under a {e different} epoch the push
    is [Rejected] (an "epoch fence") instead of queued, because mixing
    epochs in one queue would mean the id's ops were interleaving across
    two shard placements.  The service only re-homes an id when it has no
    pending ops, so a fence firing indicates a routing bug, not load.
    Omitted = unfenced (the pre-failover behaviour). *)

val depth : t -> int
(** Pending entries (a replace counts once). *)

val is_empty : t -> bool
(** No pending ops {e and} no rejections to report. *)

val coalesced : t -> int
(** Ops folded away since the last {!clear} — submitted work that will
    never reach the scheduler or the hardware. *)

val pending_ops : t -> Fr_switch.Agent.flow_mod list
(** The drain plan: removes (including the erase half of replaces), then
    action rewrites, then adds in arrival order. *)

val rejected : t -> (Fr_switch.Agent.flow_mod * string) list
(** Push-time rejections in arrival order. *)

val clear : t -> unit
(** Empty the queue and reset {!coalesced} / {!rejected} — called by the
    shard once a drain's plan has been handed to the agent. *)
