(** One control-plane shard: a switch agent behind a coalescing queue.

    A shard is the unit of failure isolation in {!Service}: it owns one
    {!Fr_switch.Agent.t} (its slice of the rule space), buffers submitted
    flow-mods in a {!Coalesce} queue, and applies them in bulk on
    {!drain}.  A drain runs erases first, then in-place rewrites, then
    the surviving insertions through {!Fr_switch.Agent.apply_batch} — so
    a burst of churn costs one metric refresh, not one per op.

    Failures stay local twice over: a failed op leaves the agent's table
    unchanged (the agent's own guarantee) and the drain carries on with
    the remaining ops, reporting every casualty in {!drain_result}[.failed]
    — and nothing a shard does can disturb a sibling shard, because
    shards share no state at all. *)

type t

val create :
  ?kind:Fr_switch.Firmware.algo_kind ->
  ?latency:Fr_tcam.Latency.t ->
  ?verify:bool ->
  ?refresh_every:int ->
  capacity:int ->
  id:int ->
  unit ->
  t
(** An empty shard.  [verify] turns on the agent's shadow-table check
    ({!Fr_sched.Check}) for every drained sequence — drains then take the
    per-op path, trading the amortised refresh for the safety net.
    [refresh_every] (default 1) is the drain's metric-maintenance cadence
    — see {!Fr_switch.Agent.apply_batch}. *)

val of_rules :
  ?kind:Fr_switch.Firmware.algo_kind ->
  ?latency:Fr_tcam.Latency.t ->
  ?verify:bool ->
  ?refresh_every:int ->
  capacity:int ->
  id:int ->
  Fr_tern.Rule.t array ->
  t
(** Bulk-load this shard's slice of an initial policy.
    @raise Invalid_argument like {!Fr_switch.Agent.of_rules}. *)

val id : t -> int
val agent : t -> Fr_switch.Agent.t

val published : t -> Fr_tcam.Image.t
(** This shard's current snapshot image ({!Fr_switch.Agent.published}).
    Wait-free; safe from any domain while the shard drains on another.
    Call it per lookup rather than caching the agent: a {!reset} swaps
    the agent underneath, and going through the shard always reads the
    live one. *)

val lookup_published : t -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** Snapshot lookup on {!published} — no hit accounting (readers tally
    locally and merge via {!Fr_switch.Agent.account_hits}). *)

val telemetry : t -> Telemetry.t
val queue_depth : t -> int

val set_fault : t -> Fr_tcam.Fault.t option -> unit
(** Install a fault plan on this shard's agent
    ({!Fr_switch.Agent.set_fault}); drains then take the per-op path and
    report each injected casualty in {!drain_result}[.failed] while the
    sibling shards stay untouched — the isolation the conformance
    fault-injection tests assert. *)

val reset : t -> Fr_tern.Rule.t array -> unit
(** A whole-shard restart fault: replace the agent with a fresh one
    holding [rules] and drop the coalescing queue — everything volatile
    dies, exactly what an agent-process crash loses.  The hardware fault
    plan carries over (the fault lives in the switch, not the process),
    and so does the discovered {!Fr_tcam.Deadmap} — the dead rows are in
    the silicon too, so the rebuilt agent packs its placement around
    them.  {!Service.restart_shard} follows this with a journal
    re-adoption. *)

val dead_rows : t -> int
(** Rows this shard's dead map currently condemns
    ({!Fr_switch.Agent.dead_rows}) — the amount by which its effective
    capacity shrinks under partial degradation. *)

val probe_dead : t -> int * int
(** Heal drill over this shard's dead rows
    ({!Fr_switch.Agent.probe_dead}); returns [(probed, recovered)]. *)

val submit : ?epoch:int -> t -> Fr_switch.Agent.flow_mod -> Coalesce.outcome
(** Fold one flow-mod into the queue (no hardware contact).  [epoch] is
    the id's failover placement epoch, threaded to {!Coalesce.push} as
    the ordering fence. *)

val requeue : ?epoch:int -> t -> Fr_switch.Agent.flow_mod -> Coalesce.outcome
(** Like {!submit} but without the [submitted] telemetry tick — for work
    the service already counted once: supervisor retries of transient
    casualties and journal replay during recovery. *)

val has_work : t -> bool
(** Whether a drain would do anything (pending ops or queued
    rejections). *)

val pending_mods : t -> Fr_switch.Agent.flow_mod list
(** The drain plan a {!drain} would execute now, without clearing
    anything — the service uses it to keep routes alive for ops queued
    behind a quarantined shard. *)

val has_pending_id : t -> int -> bool
(** Whether any pending op touches rule [id] — the rebalance pass only
    migrates ids that are quiescent on both shards. *)

type drain_result = {
  shard : int;
  applied : int;  (** ops the agent accepted *)
  failed : (Fr_switch.Agent.flow_mod * string) list;
      (** agent rejections plus push-time coalesce rejections, with the
          agent's (or queue's) reason *)
  coalesced : int;  (** ops folded away before the drain *)
  firmware_ms : float;  (** scheduling + bookkeeping, this drain *)
  hardware_ms : float;  (** modelled TCAM time, this drain *)
  tcam_ops : int;
  wall_ms : float;
}

val drain : t -> drain_result
(** Apply everything pending and clear the queue.  Never raises on op
    failure; all accounting lands in the shard's {!Telemetry}. *)

val empty_result : shard:int -> drain_result
(** The all-zero result — what a flush reports for a shard it skipped
    (quarantined by its circuit breaker). *)
