module Rng = Fr_prng.Rng
module Rule = Fr_tern.Rule
module Dataset = Fr_workload.Dataset
module Agent = Fr_switch.Agent
module Measure = Fr_switch.Measure

type spec = {
  kind : Dataset.kind;
  initial : int;
  ops : int;
  shards : int;
  capacity : int;
  batch : int;
  seed : int;
}

type result = {
  service : Service.t;
  submitted : int;
  applied : int;
  failed : int;
  coalesced : int;
  flushes : int;
  retries : int;
  shed : int;
  breaker_opens : int;
  diverted : int;
  rebalanced : int;
  restarts : int;
  flush_wall_ms : Measure.summary;
}

exception Stop

(* -- chaos plans ------------------------------------------------------ *)

type chaos_action =
  | Chaos_fault of Fr_tcam.Fault.spec
  | Chaos_slow of float
  | Chaos_restart
  | Chaos_heal

type chaos_event = { at_flush : int; shard : int; action : chaos_action }

let chaos_action_to_string = function
  | Chaos_fault spec -> "fault " ^ Fr_tcam.Fault.spec_to_string spec
  | Chaos_slow ms -> Printf.sprintf "slow %g ms/op" ms
  | Chaos_restart -> "restart"
  | Chaos_heal -> "heal"

let pp_chaos_event ppf e =
  Format.fprintf ppf "@flush %d: shard %d %s" e.at_flush e.shard
    (chaos_action_to_string e.action)

(* A seeded fault/heal schedule.  Faulted shards are tracked so heals
   target something actually sick and fault events prefer healthy victims
   — a plan that keeps poking the same dead shard teaches nothing. *)
let chaos_plan ~seed ~shards ~flushes ~events =
  if shards < 1 then invalid_arg "Churn.chaos_plan: shards < 1";
  if flushes < 1 then invalid_arg "Churn.chaos_plan: flushes < 1";
  let rng = Rng.create ~seed in
  (* Fire times are drawn first and sorted so the sick-shard bookkeeping
     below walks the plan in the order it will actually execute — a heal
     always lands after the fault that made its shard sick. *)
  let times = Array.init events (fun _ -> Rng.int rng flushes) in
  Array.sort compare times;
  let sick = Hashtbl.create 8 in
  let plan = ref [] in
  Array.iter (fun at_flush ->
    let shard = Rng.int rng shards in
    let action =
      if Hashtbl.mem sick shard then begin
        (* Mostly heal what is sick; occasionally bounce it instead. *)
        if Rng.int rng 100 < 70 then begin
          Hashtbl.remove sick shard;
          Chaos_heal
        end
        else Chaos_restart
      end
      else
        match Rng.int rng 100 with
        | r when r < 40 ->
            Hashtbl.replace sick shard ();
            Chaos_slow (4.0 +. float_of_int (Rng.int rng 12))
        | r when r < 70 ->
            Hashtbl.replace sick shard ();
            Chaos_fault
              {
                Fr_tcam.Fault.fail_prob = 0.2 +. (0.1 *. float_of_int (Rng.int rng 5));
                stuck = [];
                max_failures = None;
                slow_ms = 0.0;
              }
        | _ -> Chaos_restart
    in
    plan := { at_flush; shard; action } :: !plan)
    times;
  List.rev !plan

let apply_chaos_event service ~seed e =
  match e.action with
  | Chaos_fault spec ->
      Service.set_fault service ~shard:e.shard
        (Some
           (Fr_tcam.Fault.of_spec spec
              ~seed:(seed lxor (0xc4a05 + (e.shard * 131) + e.at_flush))))
  | Chaos_slow ms ->
      (* Seed keyed by shard and fire time, like Chaos_fault above: one
         shared stream across shards would make any draw the fault plan
         ever takes depend on which other shards got slow faults first —
         a replay-determinism hazard even in a sequential run. *)
      Service.set_fault service ~shard:e.shard
        (Some
           (Fr_tcam.Fault.create ~slow_ms:ms
              ~seed:(seed lxor (0x510 + (e.shard * 131) + e.at_flush))
              ()))
  | Chaos_heal -> Service.set_fault service ~shard:e.shard None
  | Chaos_restart ->
      (* Restart faults need a journal to re-adopt from; on an
         unjournaled service the event degrades to a no-op rather than
         killing state we could never rebuild. *)
      if Service.journaled service then
        ignore (Service.restart_shard service ~shard:e.shard)

let run ?policy ?algo ?verify ?refresh_every ?resil ?journal ?domains
    ?configure ?(chaos = []) ?stop_after_flushes spec =
  (* One pool covers the preload and every insertion the mix can draw. *)
  let pool = Dataset.generate spec.kind ~seed:spec.seed ~n:(spec.initial + spec.ops) in
  let service =
    Service.of_rules ?kind:algo ?verify ?refresh_every ?policy ?resil ?journal
      ?domains ~shards:spec.shards ~capacity:spec.capacity
      (Array.sub pool 0 spec.initial)
  in
  Option.iter (fun f -> f service) configure;
  let rng = Rng.create ~seed:(spec.seed + 1) in
  (* The generator's view of which ids are alive: optimistic (a rejected
     op leaves it slightly stale), like a controller racing its own
     in-flight updates.  The coalescing layer is exactly what absorbs the
     resulting redundancy. *)
  let live = ref (Array.to_list (Array.map (fun (r : Rule.t) -> r.Rule.id)
                                   (Array.sub pool 0 spec.initial)))
  in
  let n_live = ref spec.initial in
  let next = ref spec.initial in
  let pick_live () =
    let i = Rng.int rng !n_live in
    List.nth !live i
  in
  let drop_live id =
    live := List.filter (fun x -> x <> id) !live;
    decr n_live
  in
  let wall = Measure.Series.create () in
  let flushes = ref 0 in
  let chaos_pending = ref chaos in
  let flush () =
    (* Stop *before* the flush past the budget: the current window's ops
       stay queued (and journaled) — exactly the uncommitted suffix a
       crash test wants to find on recovery. *)
    (match stop_after_flushes with
    | Some n when !flushes >= n -> raise Stop
    | _ -> ());
    (* Chaos events fire between flushes (the only point where a shard is
       quiescent, so a restart cannot interleave with a drain). *)
    let due, rest =
      List.partition (fun e -> e.at_flush <= !flushes) !chaos_pending
    in
    chaos_pending := rest;
    List.iter (apply_chaos_event service ~seed:spec.seed) due;
    let report = Service.flush service in
    Measure.Series.add wall report.Service.wall_ms;
    incr flushes
  in
  (try
  for op = 1 to spec.ops do
    let roll = Rng.int rng 100 in
    (if (roll < 55 || !n_live = 0) && !next < Array.length pool then begin
       let r = pool.(!next) in
       incr next;
       Service.submit service (Agent.Add r);
       live := r.Rule.id :: !live;
       incr n_live
     end
     else if roll < 80 && !n_live > 0 then begin
       let id = pick_live () in
       Service.submit service (Agent.Remove { id });
       drop_live id
     end
     else if !n_live > 0 then
       Service.submit service
         (Agent.Set_action { id = pick_live (); action = Rule.Forward (Rng.int rng 16) }));
    if op mod spec.batch = 0 then flush ()
  done;
  if Service.pending service > 0 then flush ()
  with Stop -> ());
  let sum f =
    let acc = ref 0 in
    for i = 0 to spec.shards - 1 do
      acc := !acc + f (Shard.telemetry (Service.shard service i))
    done;
    !acc
  in
  {
    service;
    submitted = sum Telemetry.submitted;
    applied = sum Telemetry.applied;
    failed = sum Telemetry.failed;
    coalesced = sum Telemetry.coalesced;
    flushes = !flushes;
    retries = sum Telemetry.retries;
    shed = sum Telemetry.shed;
    breaker_opens = sum Telemetry.breaker_opens;
    diverted = sum Telemetry.diverted;
    rebalanced = sum Telemetry.rebalanced;
    restarts = sum Telemetry.restarts;
    flush_wall_ms = Measure.Series.summary wall;
  }
