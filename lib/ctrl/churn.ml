module Rng = Fr_prng.Rng
module Rule = Fr_tern.Rule
module Dataset = Fr_workload.Dataset
module Agent = Fr_switch.Agent
module Measure = Fr_switch.Measure

type spec = {
  kind : Dataset.kind;
  initial : int;
  ops : int;
  shards : int;
  capacity : int;
  batch : int;
  seed : int;
}

type result = {
  service : Service.t;
  submitted : int;
  applied : int;
  failed : int;
  coalesced : int;
  flushes : int;
  retries : int;
  shed : int;
  breaker_opens : int;
  flush_wall_ms : Measure.summary;
}

exception Stop

let run ?policy ?algo ?verify ?refresh_every ?resil ?journal ?configure
    ?stop_after_flushes spec =
  (* One pool covers the preload and every insertion the mix can draw. *)
  let pool = Dataset.generate spec.kind ~seed:spec.seed ~n:(spec.initial + spec.ops) in
  let service =
    Service.of_rules ?kind:algo ?verify ?refresh_every ?policy ?resil ?journal
      ~shards:spec.shards ~capacity:spec.capacity
      (Array.sub pool 0 spec.initial)
  in
  Option.iter (fun f -> f service) configure;
  let rng = Rng.create ~seed:(spec.seed + 1) in
  (* The generator's view of which ids are alive: optimistic (a rejected
     op leaves it slightly stale), like a controller racing its own
     in-flight updates.  The coalescing layer is exactly what absorbs the
     resulting redundancy. *)
  let live = ref (Array.to_list (Array.map (fun (r : Rule.t) -> r.Rule.id)
                                   (Array.sub pool 0 spec.initial)))
  in
  let n_live = ref spec.initial in
  let next = ref spec.initial in
  let pick_live () =
    let i = Rng.int rng !n_live in
    List.nth !live i
  in
  let drop_live id =
    live := List.filter (fun x -> x <> id) !live;
    decr n_live
  in
  let wall = Measure.Series.create () in
  let flushes = ref 0 in
  let flush () =
    (* Stop *before* the flush past the budget: the current window's ops
       stay queued (and journaled) — exactly the uncommitted suffix a
       crash test wants to find on recovery. *)
    (match stop_after_flushes with
    | Some n when !flushes >= n -> raise Stop
    | _ -> ());
    let report = Service.flush service in
    Measure.Series.add wall report.Service.wall_ms;
    incr flushes
  in
  (try
  for op = 1 to spec.ops do
    let roll = Rng.int rng 100 in
    (if (roll < 55 || !n_live = 0) && !next < Array.length pool then begin
       let r = pool.(!next) in
       incr next;
       Service.submit service (Agent.Add r);
       live := r.Rule.id :: !live;
       incr n_live
     end
     else if roll < 80 && !n_live > 0 then begin
       let id = pick_live () in
       Service.submit service (Agent.Remove { id });
       drop_live id
     end
     else if !n_live > 0 then
       Service.submit service
         (Agent.Set_action { id = pick_live (); action = Rule.Forward (Rng.int rng 16) }));
    if op mod spec.batch = 0 then flush ()
  done;
  if Service.pending service > 0 then flush ()
  with Stop -> ());
  let sum f =
    let acc = ref 0 in
    for i = 0 to spec.shards - 1 do
      acc := !acc + f (Shard.telemetry (Service.shard service i))
    done;
    !acc
  in
  {
    service;
    submitted = sum Telemetry.submitted;
    applied = sum Telemetry.applied;
    failed = sum Telemetry.failed;
    coalesced = sum Telemetry.coalesced;
    flushes = !flushes;
    retries = sum Telemetry.retries;
    shed = sum Telemetry.shed;
    breaker_opens = sum Telemetry.breaker_opens;
    flush_wall_ms = Measure.Series.summary wall;
  }
