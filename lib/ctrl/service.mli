(** [Fr_ctrl]'s front door: a sharded, batched, {e self-healing}
    control-plane service.

    The service is what a controller application programs against when
    one switch agent is not enough: it owns [N] {!Shard}s (each a full
    {!Fr_switch.Agent} with its own TCAM, dependency graph and
    scheduler), routes every flow-mod to its shard through a
    deterministic {!Partition}, folds redundant ops in per-shard
    {!Coalesce} queues, and applies everything pending in one {!flush} —
    per shard, one amortised batch through the firmware's batched-insert
    path.

    Routing is sticky: an [Add] is placed by the partitioner and the
    service remembers the rule's shard (pending or installed), so
    [Set_action] and [Remove] follow their rule even under the
    prefix-locality policy, where the id alone does not determine the
    shard.  Ids the service has never routed fall back to the id hash —
    the shard then rejects the op exactly like a single agent would.

    Failure isolation is structural: shards share nothing, a flush drains
    every shard regardless of its siblings' failures, and each shard's
    casualties are reported in its own {!Shard.drain_result}.

    On top of that sits the [Fr_resil] supervision layer:

    - {b Durability} — given a [journal] directory, every accepted submit
      is written ahead to a per-shard WAL ({!Fr_resil.Journal}), drains
      are bracketed by begin/commit markers, and the installed table is
      checkpointed on a cadence (and immediately after any drain whose
      damage a replay could not reproduce).  {!recover} rebuilds the
      whole service from the directory alone: checkpoint, deterministic
      replay of committed drains, and re-enqueueing of the uncommitted
      suffix as pending intent — so the installed state always equals the
      committed prefix, and no accepted intent is lost past its last
      sync.
    - {b Retry} — transient fault-plan casualties are re-driven within
      the flush, up to [retry_budget] rounds, with exponential backoff
      and jitter ({!Fr_resil.Backoff}) accounted as modelled delay in
      {!Telemetry}.
    - {b Circuit breaking} — a shard whose drains keep ending in
      hardware/verify damage is quarantined ({!Fr_resil.Breaker}):
      flushes skip it (siblings keep being served), submits for it queue
      up to [queue_bound] and are then shed with explicit {!Overloaded}
      rejections, and after a cooldown the breaker goes half-open and one
      probe drain decides re-admission.

    Telemetry aggregates per shard ({!Telemetry}); {!pp_stats} and
    {!to_json} dump the whole service. *)

(** {1 Supervision policy} *)

type resil = {
  retry_budget : int;  (** retry rounds per shard per flush *)
  backoff_base_ms : float;
  backoff_factor : float;
  backoff_max_ms : float;
  backoff_jitter : float;
  breaker_threshold : int;  (** consecutive damaged drains that trip *)
  breaker_slow_threshold : int;
      (** consecutive slow drains that trip (only active when
          [slow_drain_ms] is finite) *)
  slow_drain_ms : float;
      (** per-op modelled hardware-time bound above which a damage-free
          drain counts as {e slow}; [infinity] defers to [slow_factor]
          (and disables the policy when that is 0 too).  A finite value
          always overrides the adaptive threshold. *)
  slow_factor : float;
      (** adaptive slow-call threshold: judge each drain against the
          shard's {e own} p99 per-op hardware time
          ({!Telemetry.hw_per_op_ms}) times this factor, once at least 8
          per-op samples exist — so the breaker tracks the shard's drift
          instead of a constant.  [0.0] (default) disables; ignored while
          [slow_drain_ms] is finite *)
  breaker_cooldown : int;  (** flush rounds quarantined before probing *)
  queue_bound : int;  (** max queued entries behind an open breaker *)
  checkpoint_every : int;  (** commits between periodic checkpoints *)
  checkpoint_retain : int;  (** checkpoint tables kept per shard (>= 1) *)
  failover : bool;
      (** divert new rule ids away from quarantined shards (and drain
          them back home on recovery) instead of queueing/shedding *)
  rebalance_batch : int;
      (** max diverted ids migrated home per flush once the home heals *)
}

val default_resil : resil
(** [retry_budget = 2], backoff 1 ms doubling to 64 ms with ±20% jitter,
    breaker trips after 3 damaged drains (slow-call policy disabled:
    [slow_drain_ms = infinity], [slow_factor = 0.0],
    [breaker_slow_threshold = 3] once enabled) and cools down for 2
    flushes, [queue_bound = 1024], checkpoint every 32 commits keeping 1
    table, failover routing off, [rebalance_batch = 64]. *)

type t

val default_domains : unit -> int
(** The [domains] value constructors use when the caller passes none:
    the [FASTRULE_DOMAINS] environment variable if it parses as a
    positive integer, else [1].  The library never grabs extra cores
    uninvited — the CLI and bench default to
    {!Fr_exec.Pool.recommended} explicitly. *)

val create :
  ?kind:Fr_switch.Firmware.algo_kind ->
  ?latency:Fr_tcam.Latency.t ->
  ?verify:bool ->
  ?refresh_every:int ->
  ?policy:Partition.policy ->
  ?resil:resil ->
  ?journal:string ->
  ?domains:int ->
  shards:int ->
  capacity:int ->
  unit ->
  t
(** [shards] empty agents of [capacity] TCAM slots each.  Defaults:
    FastRule on the original layout, 0.6 ms/op, no shadow-table verify,
    per-insert metric maintenance ([refresh_every = 1], see
    {!Fr_switch.Agent.apply_batch}), {!Partition.Hash_id} routing,
    {!default_resil} supervision, no journal, [domains] from
    {!default_domains}.  [journal] names a directory (created if
    missing) that receives the service's shape metadata plus one WAL per
    shard.  [domains] is the number of executors a {!flush} may use to
    drain shards concurrently; [1] is the exact legacy sequential path,
    and any value produces bit-identical results (see {!flush}).
    @raise Invalid_argument if [journal] already holds a journal —
    {!recover} from it instead of silently overwriting history — or if
    [domains < 1]. *)

val of_rules :
  ?kind:Fr_switch.Firmware.algo_kind ->
  ?latency:Fr_tcam.Latency.t ->
  ?verify:bool ->
  ?refresh_every:int ->
  ?policy:Partition.policy ->
  ?resil:resil ->
  ?journal:string ->
  ?domains:int ->
  shards:int ->
  capacity:int ->
  Fr_tern.Rule.t array ->
  t
(** Partition an initial policy and bulk-load each shard's slice.  With
    [journal], each shard's starting table becomes its baseline
    checkpoint.
    @raise Invalid_argument if ids collide or a slice does not fit. *)

val shards : t -> int

val domains : t -> int
(** Executors {!flush} may use; [1] means strictly sequential. *)


val shard : t -> int -> Shard.t
(** @raise Invalid_argument if the index is out of range. *)

val published : t -> shard:int -> Fr_tcam.Image.t
(** One shard's current snapshot image — the data-plane read face.  A
    reader domain may call this (and {!lookup_published}) while {!flush}
    drains the very same shard on a pool domain: publication is an atomic
    pointer swap per committed hardware op, so the reader always sees a
    committed-prefix table and never blocks the writer.
    @raise Invalid_argument if the index is out of range. *)

val lookup_published :
  t -> shard:int -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** Wait-free snapshot lookup on one shard ({!Fr_ctrl.Shard.lookup_published}). *)

val partition : t -> Partition.t

val set_fault : t -> shard:int -> Fr_tcam.Fault.t option -> unit
(** Install (or clear) a fault plan on one shard's agent — the
    conformance harness' lever for mid-batch aborts.
    @raise Invalid_argument if the index is out of range. *)

val breaker_state : t -> int -> Fr_resil.Breaker.state
val journaled : t -> bool

val diverted_count : t -> int
(** Rule ids currently living away from their static home under failover
    routing.  Converges back to 0 after the sick shard heals (the
    rebalance pass drains them home in [rebalance_batch]-bounded
    batches). *)

val dead_rows : t -> int
(** Total rows condemned by the shards' dead maps
    ({!Fr_ctrl.Shard.dead_rows} summed).  Under [failover], a shard with
    dead rows is only {e partially} degraded: it keeps serving its
    installed rules and its remaining writable capacity, and the service
    diverts just the overflow — a new Add whose home's effective
    capacity (capacity − dead rows) is exhausted goes to the rendezvous
    pick among the shards with room (keyed by the rule's {!Partition}
    prefix window so destination blocks stay colocated).  Each flush
    ends with a probe drill: shards still carrying dead rows re-test
    them against the hardware, revived rows re-enter the writable pool,
    and the next rebalance pass drains diverted ids home through the
    usual epoch fence. *)

val shard_of_rule : t -> int -> int option
(** Where a rule id lives (installed) or will live (pending add); [None]
    for ids the service is not tracking. *)

val rule_count : t -> int
(** Installed rules, summed over shards. *)

val find_rule : t -> int -> Fr_tern.Rule.t option

(** {1 Submitting} *)

type submit_outcome = Accepted | Overloaded of string

val try_submit : t -> Fr_switch.Agent.flow_mod -> submit_outcome
(** Route and enqueue one flow-mod (journaling it first when a WAL is
    attached).  [Overloaded] means the target shard is quarantined and
    its bounded queue is full: the op was {e not} accepted, and the same
    rejection is reported in the next flush's casualty list for that
    shard. *)

val submit : t -> Fr_switch.Agent.flow_mod -> unit
(** {!try_submit} with the outcome dropped (sheds still reach telemetry
    and the next flush report).  No hardware contact until {!flush}. *)

val submit_all : t -> Fr_switch.Agent.flow_mod list -> unit

val pending : t -> int
(** Queued entries over all shards. *)

(** {1 Flushing} *)

type flush_report = {
  results : Shard.drain_result array;  (** indexed by shard *)
  quarantined : int list;
      (** shards skipped this flush (breaker open); their result slot is
          {!Shard.empty_result} plus any shed submits as failures *)
  wall_ms : float;
}

val applied : flush_report -> int
val failures : flush_report -> (Fr_switch.Agent.flow_mod * string) list
(** All shards' casualties, shard order. *)

val flush : t -> flush_report
(** Drain every admitted shard (all of them, even when some report
    failures), retrying transient casualties under the backoff policy,
    advancing/settling each shard's breaker, writing the journal's
    begin/commit/checkpoint markers, running the failover rebalance pass
    (diverted ids whose home is healthy again migrate back, erase before
    re-insert, never two copies live), and reconciling the routing table
    against the installed state plus any still-queued intent.  Rebalance
    drains are merged into the owning shard's [results] slot.

    With [domains > 1] the per-shard drains — retries, breaker
    bookkeeping, journal append/fsync and telemetry included — run
    concurrently on a shared pool of OCaml domains
    ({!Fr_exec.Pool.shared}) and are joined {e deterministically}: shards
    share nothing inside a drain, each shard's backoff jitter comes from
    its own split PRNG stream, the adaptive slow threshold reads only the
    shard's own history, and reports are merged in shard order.  The
    result is bit-identical to the sequential path in everything modelled
    — applied/failed/coalesced counts, TCAM ops, modelled hardware ms,
    journal bytes, telemetry counters; only measured wall/firmware times
    differ.  Anything that crosses shards (the rebalance pass, route
    reconciliation) runs after the join barrier, in shard order. *)

val checkpoint : t -> unit
(** Force a checkpoint (and journal compaction) on every shard now.
    No-op without a journal. *)

(** {1 Crash and recovery} *)

val simulate_crash : ?mid_drain:bool -> t -> unit
(** Put the journal directory into the exact on-disk state of a process
    crash: with [mid_drain] (default false), begin markers are written
    for every shard with pending work first — the state of dying inside
    a flush after intent went durable but before any commit.  Closes the
    WALs; the service must not be used afterwards.
    @raise Invalid_argument if the service has no journal. *)

type readoption = {
  restart_replayed_drains : int;  (** committed drains re-driven *)
  restart_replayed_mods : int;  (** mods those drains covered *)
  restart_requeued : int;  (** uncommitted suffix re-enqueued *)
}

val restart_shard : t -> shard:int -> (readoption, string) result
(** A whole-shard restart fault, absorbed mid-run: shard [shard]'s agent
    loses all volatile state ({!Shard.reset}) and is re-adopted from its
    journal in place — checkpoint load, deterministic replay of committed
    drains, uncommitted suffix requeued — while the sibling shards keep
    running untouched.  The shard's hardware fault plan survives (the
    fault lives in the switch, not the agent process).  Only sound
    between flushes.  Errors when the rebuilt agent fails its consistency
    check or the journal cannot be read.
    @raise Invalid_argument if the index is out of range; [Error] if the
    service has no journal. *)

type recovery = {
  service : t;
  replayed_drains : int;  (** committed drains re-driven *)
  replayed_mods : int;  (** mods those drains covered *)
  requeued : int;  (** uncommitted suffix re-enqueued as pending *)
  interrupted : int;  (** shards with a begin marker but no commit *)
  warnings : string list;
      (** replay-count mismatches and consistency-check failures —
          recovery still completes, but the journal and the rebuilt state
          disagree somewhere *)
}

val recover :
  ?latency:Fr_tcam.Latency.t ->
  ?resil:resil ->
  ?domains:int ->
  journal:string ->
  unit ->
  (recovery, string) result
(** Rebuild a service from a journal directory alone (shape comes from
    the directory's metadata): per shard, load the last checkpoint,
    replay the committed drains after it (deterministic — dirty drains
    always checkpoint, so replay never crosses fault damage), verify the
    rebuilt agent ({!Fr_switch.Agent.verify_consistent}), and re-enqueue
    the uncommitted suffix as pending intent for the next {!flush}.  The
    installed state of the result equals the committed prefix of the
    journal. *)

(** {1 Dumps} *)

val pp_stats : Format.formatter -> t -> unit
(** Per-shard plain-text telemetry dump. *)

val to_json : ?scenario:string -> ?seed:int -> t -> Telemetry.Json.v
(** [{scenario?, seed?, shards, domains, policy, journaled, rules,
    per_shard: [...]}] — each shard contributes {!Telemetry.to_json}
    plus its rule count.  [seed] and [domains] make the dump
    self-reproducing: re-running the same scenario from the recorded
    seed on the recorded domain count regenerates the same telemetry
    (up to wall-clock samples). *)
