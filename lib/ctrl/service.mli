(** [Fr_ctrl]'s front door: a sharded, batched control-plane service.

    The service is what a controller application programs against when
    one switch agent is not enough: it owns [N] {!Shard}s (each a full
    {!Fr_switch.Agent} with its own TCAM, dependency graph and
    scheduler), routes every flow-mod to its shard through a
    deterministic {!Partition}, folds redundant ops in per-shard
    {!Coalesce} queues, and applies everything pending in one {!flush} —
    per shard, one amortised batch through the firmware's batched-insert
    path.

    Routing is sticky: an [Add] is placed by the partitioner and the
    service remembers the rule's shard (pending or installed), so
    [Set_action] and [Remove] follow their rule even under the
    prefix-locality policy, where the id alone does not determine the
    shard.  Ids the service has never routed fall back to the id hash —
    the shard then rejects the op exactly like a single agent would.

    Failure isolation is structural: shards share nothing, a flush drains
    every shard regardless of its siblings' failures, and each shard's
    casualties are reported in its own {!Shard.drain_result}.  Telemetry
    aggregates per shard ({!Telemetry}); {!pp_stats} and {!to_json} dump
    the whole service. *)

type t

val create :
  ?kind:Fr_switch.Firmware.algo_kind ->
  ?latency:Fr_tcam.Latency.t ->
  ?verify:bool ->
  ?refresh_every:int ->
  ?policy:Partition.policy ->
  shards:int ->
  capacity:int ->
  unit ->
  t
(** [shards] empty agents of [capacity] TCAM slots each.  Defaults:
    FastRule on the original layout, 0.6 ms/op, no shadow-table verify,
    per-insert metric maintenance ([refresh_every = 1], see
    {!Fr_switch.Agent.apply_batch}), {!Partition.Hash_id} routing. *)

val of_rules :
  ?kind:Fr_switch.Firmware.algo_kind ->
  ?latency:Fr_tcam.Latency.t ->
  ?verify:bool ->
  ?refresh_every:int ->
  ?policy:Partition.policy ->
  shards:int ->
  capacity:int ->
  Fr_tern.Rule.t array ->
  t
(** Partition an initial policy and bulk-load each shard's slice.
    @raise Invalid_argument if ids collide or a slice does not fit. *)

val shards : t -> int
val shard : t -> int -> Shard.t
(** @raise Invalid_argument if the index is out of range. *)

val partition : t -> Partition.t

val set_fault : t -> shard:int -> Fr_tcam.Fault.t option -> unit
(** Install (or clear) a fault plan on one shard's agent — the
    conformance harness' lever for mid-batch aborts.
    @raise Invalid_argument if the index is out of range. *)

val shard_of_rule : t -> int -> int option
(** Where a rule id lives (installed) or will live (pending add); [None]
    for ids the service is not tracking. *)

val rule_count : t -> int
(** Installed rules, summed over shards. *)

val find_rule : t -> int -> Fr_tern.Rule.t option

val submit : t -> Fr_switch.Agent.flow_mod -> unit
(** Route and enqueue one flow-mod.  No hardware contact until
    {!flush}. *)

val submit_all : t -> Fr_switch.Agent.flow_mod list -> unit

val pending : t -> int
(** Queued entries over all shards. *)

type flush_report = {
  results : Shard.drain_result array;  (** indexed by shard *)
  wall_ms : float;
}

val applied : flush_report -> int
val failures : flush_report -> (Fr_switch.Agent.flow_mod * string) list
(** All shards' casualties, shard order. *)

val flush : t -> flush_report
(** Drain every shard (all of them, even when some report failures) and
    reconcile the routing table against the installed state. *)

val pp_stats : Format.formatter -> t -> unit
(** Per-shard plain-text telemetry dump. *)

val to_json : ?scenario:string -> t -> Telemetry.Json.v
(** [{scenario?, shards, policy, rules, per_shard: [...]}] — each shard
    contributes {!Telemetry.to_json} plus its rule count. *)
