module Rule = Fr_tern.Rule
module Agent = Fr_switch.Agent
module Measure = Fr_switch.Measure

type t = {
  partition : Partition.t;
  shards : Shard.t array;
  routes : (int, int) Hashtbl.t;
      (* rule id -> shard, for every id pending or installed.  Rebuilt
         from the agents after each flush (queues are empty then), so a
         failed Add never leaves a stale route behind. *)
}

let create ?kind ?latency ?verify ?refresh_every
    ?(policy = Partition.Hash_id) ~shards ~capacity () =
  {
    partition = Partition.create ~shards policy;
    shards =
      Array.init shards (fun id ->
          Shard.create ?kind ?latency ?verify ?refresh_every ~capacity ~id ());
    routes = Hashtbl.create 1024;
  }

let of_rules ?kind ?latency ?verify ?refresh_every
    ?(policy = Partition.Hash_id) ~shards ~capacity rules =
  let partition = Partition.create ~shards policy in
  let slices = Array.make shards [] in
  Array.iter
    (fun (r : Rule.t) ->
      let s = Partition.route_rule partition r in
      slices.(s) <- r :: slices.(s))
    rules;
  let t =
    {
      partition;
      shards =
        Array.init shards (fun id ->
            Shard.of_rules ?kind ?latency ?verify ?refresh_every ~capacity ~id
              (Array.of_list (List.rev slices.(id))));
      routes = Hashtbl.create (2 * Array.length rules);
    }
  in
  Array.iter
    (fun (r : Rule.t) ->
      Hashtbl.replace t.routes r.Rule.id (Partition.route_rule partition r))
    rules;
  t

let shards t = Array.length t.shards

let shard t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Service.shard: no shard %d" i);
  t.shards.(i)

let partition t = t.partition
let set_fault t ~shard:i f = Shard.set_fault (shard t i) f
let shard_of_rule t id = Hashtbl.find_opt t.routes id

let rule_count t =
  Array.fold_left (fun acc s -> acc + Agent.rule_count (Shard.agent s)) 0 t.shards

let find_rule t id =
  match Hashtbl.find_opt t.routes id with
  | Some s -> Agent.rule (Shard.agent t.shards.(s)) id
  | None -> None

let route t fm =
  match fm with
  | Agent.Add r -> (
      let id = r.Rule.id in
      match Hashtbl.find_opt t.routes id with
      | Some s -> s (* duplicate: let the owning shard reject it *)
      | None ->
          let s = Partition.route_rule t.partition r in
          Hashtbl.replace t.routes id s;
          s)
  | Agent.Set_action { id; _ } | Agent.Remove { id } -> (
      match Hashtbl.find_opt t.routes id with
      | Some s -> s
      | None -> Partition.route_id t.partition id)

let submit t fm = ignore (Shard.submit t.shards.(route t fm) fm)
let submit_all t mods = List.iter (submit t) mods

let pending t =
  Array.fold_left (fun acc s -> acc + Shard.queue_depth s) 0 t.shards

type flush_report = {
  results : Shard.drain_result array;
  wall_ms : float;
}

let applied r =
  Array.fold_left (fun acc (d : Shard.drain_result) -> acc + d.Shard.applied) 0
    r.results

let failures r =
  Array.fold_left
    (fun acc (d : Shard.drain_result) -> acc @ d.Shard.failed)
    [] r.results

let rebuild_routes t =
  Hashtbl.reset t.routes;
  Array.iteri
    (fun s shard ->
      List.iter
        (fun (r : Rule.t) -> Hashtbl.replace t.routes r.Rule.id s)
        (Agent.rules (Shard.agent shard)))
    t.shards

let flush t =
  let results, wall_ms =
    Measure.time_ms (fun () -> Array.map Shard.drain t.shards)
  in
  rebuild_routes t;
  { results; wall_ms }

let pp_stats ppf t =
  Array.iter
    (fun s ->
      Format.fprintf ppf "-- shard %d (%d rules, %d/%d slots) --@.%a"
        (Shard.id s)
        (Agent.rule_count (Shard.agent s))
        (Fr_tcam.Tcam.used_count (Agent.tcam (Shard.agent s)))
        (Agent.capacity (Shard.agent s))
        Telemetry.pp (Shard.telemetry s))
    t.shards

let to_json ?scenario t =
  let open Telemetry.Json in
  let per_shard =
    Array.to_list
      (Array.map
         (fun s ->
           match Telemetry.to_json (Shard.telemetry s) with
           | Obj fields ->
               Obj
                 (("shard", Int (Shard.id s))
                 :: ("rules", Int (Agent.rule_count (Shard.agent s)))
                 :: fields)
           | v -> v)
         t.shards)
  in
  let header =
    match scenario with Some s -> [ ("scenario", Str s) ] | None -> []
  in
  Obj
    (header
    @ [
        ("shards", Int (Array.length t.shards));
        ("policy", Str (Partition.policy_to_string (Partition.policy t.partition)));
        ("rules", Int (rule_count t));
        ("per_shard", List per_shard);
      ])
