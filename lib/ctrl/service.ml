module Rule = Fr_tern.Rule
module Agent = Fr_switch.Agent
module Firmware = Fr_switch.Firmware
module Measure = Fr_switch.Measure
module Journal = Fr_resil.Journal
module Backoff = Fr_resil.Backoff
module Breaker = Fr_resil.Breaker

(* -- supervision policy ---------------------------------------------- *)

type resil = {
  retry_budget : int;
  backoff_base_ms : float;
  backoff_factor : float;
  backoff_max_ms : float;
  backoff_jitter : float;
  breaker_threshold : int;
  breaker_cooldown : int;
  queue_bound : int;
  checkpoint_every : int;
}

let default_resil =
  {
    retry_budget = 2;
    backoff_base_ms = 1.0;
    backoff_factor = 2.0;
    backoff_max_ms = 64.0;
    backoff_jitter = 0.2;
    breaker_threshold = 3;
    breaker_cooldown = 2;
    queue_bound = 1024;
    checkpoint_every = 32;
  }

type t = {
  partition : Partition.t;
  shards : Shard.t array;
  routes : (int, int) Hashtbl.t;
      (* rule id -> shard, for every id pending or installed.  Rebuilt
         from the agents (and the still-pending queues of quarantined
         shards) after each flush, so a failed Add never leaves a stale
         route behind. *)
  resil : resil;
  journals : Journal.t array option;  (* one WAL per shard *)
  breakers : Breaker.t array;
  backoffs : Backoff.t array;
  shed : (Agent.flow_mod * string) list array;  (* newest first, per shard *)
  commits_since_ckpt : int array;
}

let default_kind = Firmware.FR_O Fr_sched.Store.Bit_backend

let make_supervision resil ~shards =
  ( Array.init shards (fun _ ->
        Breaker.create ~threshold:resil.breaker_threshold
          ~cooldown:resil.breaker_cooldown ()),
    Array.init shards (fun i ->
        Backoff.create ~base_ms:resil.backoff_base_ms
          ~factor:resil.backoff_factor ~max_ms:resil.backoff_max_ms
          ~jitter:resil.backoff_jitter
          ~seed:(0x5e51 + i)
          ()) )

(* A fresh journal directory: shape metadata once, then one compacted
   journal per shard anchored on a checkpoint of its starting table (so
   recovery always has a baseline).  Refuses a directory that already
   carries a journal — recover from it or point elsewhere. *)
let make_journals ~dir ~kind ~policy ~verify ~refresh_every ~capacity
    (shards : Shard.t array) =
  if Sys.file_exists (Journal.meta_file ~dir) then
    invalid_arg
      (Printf.sprintf
         "Service: journal directory %s already holds a journal (recover from \
          it instead)"
         dir);
  Journal.write_meta ~dir
    {
      Journal.shards = Array.length shards;
      capacity;
      policy = Partition.policy_to_string policy;
      kind = Firmware.algo_kind_name kind;
      refresh_every;
      verify;
    };
  Array.map
    (fun shard ->
      let j = Journal.create ~dir ~shard:(Shard.id shard) in
      Journal.checkpoint j
        ~rules:(Array.of_list (Agent.rules (Shard.agent shard)));
      j)
    shards

let create ?(kind = default_kind) ?latency ?(verify = false)
    ?(refresh_every = 1) ?(policy = Partition.Hash_id)
    ?(resil = default_resil) ?journal ~shards ~capacity () =
  let shard_arr =
    Array.init shards (fun id ->
        Shard.create ~kind ?latency ~verify ~refresh_every ~capacity ~id ())
  in
  let breakers, backoffs = make_supervision resil ~shards in
  {
    partition = Partition.create ~shards policy;
    shards = shard_arr;
    routes = Hashtbl.create 1024;
    resil;
    journals =
      Option.map
        (fun dir ->
          make_journals ~dir ~kind ~policy ~verify ~refresh_every ~capacity
            shard_arr)
        journal;
    breakers;
    backoffs;
    shed = Array.make shards [];
    commits_since_ckpt = Array.make shards 0;
  }

let of_rules ?(kind = default_kind) ?latency ?(verify = false)
    ?(refresh_every = 1) ?(policy = Partition.Hash_id)
    ?(resil = default_resil) ?journal ~shards ~capacity rules =
  let partition = Partition.create ~shards policy in
  let slices = Array.make shards [] in
  Array.iter
    (fun (r : Rule.t) ->
      let s = Partition.route_rule partition r in
      slices.(s) <- r :: slices.(s))
    rules;
  let shard_arr =
    Array.init shards (fun id ->
        Shard.of_rules ~kind ?latency ~verify ~refresh_every ~capacity ~id
          (Array.of_list (List.rev slices.(id))))
  in
  let breakers, backoffs = make_supervision resil ~shards in
  let t =
    {
      partition;
      shards = shard_arr;
      routes = Hashtbl.create (2 * Array.length rules);
      resil;
      journals =
        Option.map
          (fun dir ->
            make_journals ~dir ~kind ~policy ~verify ~refresh_every ~capacity
              shard_arr)
          journal;
      breakers;
      backoffs;
      shed = Array.make shards [];
      commits_since_ckpt = Array.make shards 0;
    }
  in
  Array.iter
    (fun (r : Rule.t) ->
      Hashtbl.replace t.routes r.Rule.id (Partition.route_rule partition r))
    rules;
  t

let shards t = Array.length t.shards

let shard t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Service.shard: no shard %d" i);
  t.shards.(i)

let partition t = t.partition
let set_fault t ~shard:i f = Shard.set_fault (shard t i) f
let shard_of_rule t id = Hashtbl.find_opt t.routes id
let breaker_state t i = Breaker.state t.breakers.(i)
let journaled t = t.journals <> None

let rule_count t =
  Array.fold_left (fun acc s -> acc + Agent.rule_count (Shard.agent s)) 0 t.shards

let find_rule t id =
  match Hashtbl.find_opt t.routes id with
  | Some s -> Agent.rule (Shard.agent t.shards.(s)) id
  | None -> None

let id_of = function
  | Agent.Add r -> r.Rule.id
  | Agent.Set_action { id; _ } | Agent.Remove { id } -> id

let route t fm =
  match fm with
  | Agent.Add r -> (
      let id = r.Rule.id in
      match Hashtbl.find_opt t.routes id with
      | Some s -> s (* duplicate: let the owning shard reject it *)
      | None ->
          let s = Partition.route_rule t.partition r in
          Hashtbl.replace t.routes id s;
          s)
  | Agent.Set_action { id; _ } | Agent.Remove { id } -> (
      match Hashtbl.find_opt t.routes id with
      | Some s -> s
      | None -> Partition.route_id t.partition id)

type submit_outcome = Accepted | Overloaded of string

let try_submit t fm =
  let id = id_of fm in
  let had_route = Hashtbl.mem t.routes id in
  let s = route t fm in
  let sh = t.shards.(s) in
  if
    (not (Breaker.admits t.breakers.(s)))
    && Shard.queue_depth sh >= t.resil.queue_bound
  then begin
    (* Quarantined and the bounded queue is full: shed instead of letting
       a dead shard's backlog grow without limit. *)
    if not had_route then Hashtbl.remove t.routes id;
    let msg =
      Printf.sprintf "overloaded: shard %d quarantined (queue bound %d)" s
        t.resil.queue_bound
    in
    Telemetry.record_shed (Shard.telemetry sh);
    t.shed.(s) <- (fm, msg) :: t.shed.(s);
    Overloaded msg
  end
  else begin
    (* WAL before queue: intent is durable (fsync-batched — see
       {!Fr_resil.Journal}) before any drain can touch hardware. *)
    (match t.journals with
    | Some js -> ignore (Journal.log_mod js.(s) fm)
    | None -> ());
    ignore (Shard.submit sh fm);
    Accepted
  end

let submit t fm = ignore (try_submit t fm)
let submit_all t mods = List.iter (submit t) mods

let pending t =
  Array.fold_left (fun acc s -> acc + Shard.queue_depth s) 0 t.shards

type flush_report = {
  results : Shard.drain_result array;
  quarantined : int list;
  wall_ms : float;
}

let applied r =
  Array.fold_left (fun acc (d : Shard.drain_result) -> acc + d.Shard.applied) 0
    r.results

let failures r =
  Array.fold_left
    (fun acc (d : Shard.drain_result) -> acc @ d.Shard.failed)
    [] r.results

let rebuild_routes t =
  Hashtbl.reset t.routes;
  Array.iteri
    (fun s shard ->
      List.iter
        (fun (r : Rule.t) -> Hashtbl.replace t.routes r.Rule.id s)
        (Agent.rules (Shard.agent shard));
      (* A quarantined shard still holds queued intent; keep its routes
         so follow-up ops for those ids find the right queue. *)
      List.iter
        (fun fm -> Hashtbl.replace t.routes (id_of fm) s)
        (Shard.pending_mods shard))
    t.shards

(* -- failure classification ------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A transient casualty is an injected hardware failure that left the op
   un-applied — worth retrying.  A Remove whose erase landed before the
   fault ("entry removed") already took effect; retrying it would only
   manufacture a spurious rejection. *)
let is_transient e = has_prefix ~prefix:"fault: " e && not (contains ~sub:"entry removed" e)

(* A drain whose final casualty list still contains fault (or shadow-table)
   damage cannot be reproduced by a fault-free replay; recovery must
   restart from a checkpoint instead. *)
let is_dirty_failure e = is_transient e || has_prefix ~prefix:"verify: " e

let merge_results keep_failed (a : Shard.drain_result)
    (b : Shard.drain_result) =
  {
    Shard.shard = a.Shard.shard;
    applied = a.Shard.applied + b.Shard.applied;
    failed = keep_failed @ b.Shard.failed;
    coalesced = a.Shard.coalesced + b.Shard.coalesced;
    firmware_ms = a.Shard.firmware_ms +. b.Shard.firmware_ms;
    hardware_ms = a.Shard.hardware_ms +. b.Shard.hardware_ms;
    tcam_ops = a.Shard.tcam_ops + b.Shard.tcam_ops;
    wall_ms = a.Shard.wall_ms +. b.Shard.wall_ms;
  }

let checkpoint_shard t i =
  match t.journals with
  | None -> ()
  | Some js ->
      Journal.checkpoint js.(i)
        ~rules:(Array.of_list (Agent.rules (Shard.agent t.shards.(i))));
      Telemetry.record_checkpoint (Shard.telemetry t.shards.(i));
      t.commits_since_ckpt.(i) <- 0

let checkpoint t =
  Array.iteri (fun i _ -> checkpoint_shard t i) t.shards

(* Drain one admitted shard under the supervisor: retry transient
   casualties with backoff (modelled delay, accounted not slept), then
   settle the journal — a clean drain commits (a fault-free replay of its
   mods reproduces it exactly); a dirty one, or one past the checkpoint
   cadence, checkpoints instead so recovery never replays through
   non-deterministic fault damage. *)
let drain_supervised t i =
  let sh = t.shards.(i) in
  let tele = Shard.telemetry sh in
  let had_work = Shard.has_work sh in
  let drain_id =
    match t.journals with
    | Some js when had_work -> Some (Journal.log_begin js.(i))
    | _ -> None
  in
  let rec retry (r : Shard.drain_result) attempt =
    if attempt > t.resil.retry_budget then r
    else
      match List.partition (fun (_, e) -> is_transient e) r.Shard.failed with
      | [], _ -> r
      | transient, rest ->
          let delay = Backoff.delay_ms t.backoffs.(i) ~attempt in
          Telemetry.record_retry tele ~ops:(List.length transient)
            ~backoff_ms:delay;
          List.iter (fun (fm, _) -> ignore (Shard.requeue sh fm)) transient;
          retry (merge_results rest r (Shard.drain sh)) (attempt + 1)
  in
  let final = retry (Shard.drain sh) 1 in
  let br = t.breakers.(i) in
  if had_work then begin
    let was_open = Breaker.state br = Breaker.Open in
    (* Plain rejections (duplicates, not-installed, capacity) are
       normal-plane noise; only hardware/verify damage counts against the
       breaker. *)
    let damaged =
      List.exists
        (fun (_, e) ->
          has_prefix ~prefix:"fault: " e || has_prefix ~prefix:"verify: " e)
        final.Shard.failed
    in
    if damaged then Breaker.note_failure br else Breaker.note_success br;
    if Breaker.state br = Breaker.Open && not was_open then
      Telemetry.record_breaker_open tele
  end;
  Telemetry.set_breaker_state tele (Breaker.state_to_string (Breaker.state br));
  (match (t.journals, drain_id) with
  | Some js, Some drain ->
      let dirty =
        List.exists (fun (_, e) -> is_dirty_failure e) final.Shard.failed
      in
      t.commits_since_ckpt.(i) <- t.commits_since_ckpt.(i) + 1;
      if dirty || t.commits_since_ckpt.(i) >= t.resil.checkpoint_every then
        checkpoint_shard t i
      else
        Journal.log_commit js.(i) ~drain ~applied:final.Shard.applied
          ~failed:(List.length final.Shard.failed)
  | _ -> ());
  final

let flush t =
  let (results, quarantined), wall_ms =
    Measure.time_ms (fun () ->
        let quarantined = ref [] in
        let results =
          Array.init (Array.length t.shards) (fun i ->
              let sheds = List.rev t.shed.(i) in
              t.shed.(i) <- [];
              let br = t.breakers.(i) in
              if not (Breaker.admits br) then begin
                Breaker.note_skipped br;
                Telemetry.set_breaker_state
                  (Shard.telemetry t.shards.(i))
                  (Breaker.state_to_string (Breaker.state br));
                quarantined := i :: !quarantined;
                { (Shard.empty_result ~shard:i) with Shard.failed = sheds }
              end
              else
                let r = drain_supervised t i in
                { r with Shard.failed = sheds @ r.Shard.failed })
        in
        (results, List.rev !quarantined))
  in
  rebuild_routes t;
  { results; quarantined; wall_ms }

(* -- crash simulation ------------------------------------------------ *)

let simulate_crash ?(mid_drain = false) t =
  match t.journals with
  | None -> invalid_arg "Service.simulate_crash: service has no journal"
  | Some js ->
      Array.iteri
        (fun i sh ->
          if mid_drain && Shard.has_work sh then ignore (Journal.log_begin js.(i)))
        t.shards;
      (* Closing flushes the buffered tail; the process is now free to
         disappear.  The service must not be used afterwards. *)
      Array.iter Journal.close js

(* -- recovery -------------------------------------------------------- *)

type recovery = {
  service : t;
  replayed_drains : int;
  replayed_mods : int;
  requeued : int;
  interrupted : int;
  warnings : string list;
}

let recover ?latency ?(resil = default_resil) ~journal:dir () =
  let ( let* ) = Result.bind in
  let* meta = Journal.read_meta ~dir in
  let* kind =
    match Firmware.algo_kind_of_string meta.Journal.kind with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "recover: unknown kind %S" meta.Journal.kind)
  in
  let* policy =
    match Partition.policy_of_string meta.Journal.policy with
    | Some p -> Ok p
    | None ->
        Error (Printf.sprintf "recover: unknown policy %S" meta.Journal.policy)
  in
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  let replayed_drains = ref 0 in
  let replayed_mods = ref 0 in
  let requeued = ref 0 in
  let interrupted = ref 0 in
  let rebuild_shard i =
    let* r = Journal.read_recovery ~dir ~shard:i in
    let* rules =
      match r.Journal.checkpoint with
      | None -> Ok [||]
      | Some (_, file) -> Fr_workload.Rules_io.load file
    in
    let* sh =
      match
        Shard.of_rules ~kind ?latency ~verify:meta.Journal.verify
          ~refresh_every:meta.Journal.refresh_every
          ~capacity:meta.Journal.capacity ~id:i rules
      with
      | sh -> Ok sh
      | exception Invalid_argument msg ->
          Error (Printf.sprintf "recover: shard %d checkpoint: %s" i msg)
    in
    (* Committed drains replay deterministically: the journal never
       commits through fault damage (dirty drains checkpoint instead), so
       re-driving each drain's mods through a fresh queue reproduces the
       recorded outcome. *)
    let mods = ref r.Journal.mods in
    List.iter
      (fun (c : Journal.committed) ->
        let batch, rest =
          List.partition (fun (seq, _) -> seq <= c.Journal.upto) !mods
        in
        mods := rest;
        List.iter (fun (_, fm) -> ignore (Shard.requeue sh fm)) batch;
        let dr = Shard.drain sh in
        incr replayed_drains;
        replayed_mods := !replayed_mods + List.length batch;
        if
          dr.Shard.applied <> c.Journal.applied
          || List.length dr.Shard.failed <> c.Journal.failed
        then
          warn "shard %d: drain %d replayed as %d applied / %d failed (journal says %d / %d)"
            i c.Journal.drain dr.Shard.applied
            (List.length dr.Shard.failed)
            c.Journal.applied c.Journal.failed)
      r.Journal.committed;
    (* The uncommitted suffix is intent, not state: re-enqueue it so the
       next flush drives it, leaving the installed table equal to the
       committed prefix. *)
    List.iter
      (fun (_, fm) ->
        ignore (Shard.requeue sh fm);
        incr requeued)
      !mods;
    if r.Journal.interrupted then incr interrupted;
    (match Agent.verify_consistent (Shard.agent sh) with
    | Ok () -> ()
    | Error e -> warn "shard %d: inconsistent after recovery: %s" i e);
    Ok
      ( sh,
        Journal.reopen ~dir ~shard:i ~next_seq:r.Journal.next_seq
          ~next_drain:r.Journal.next_drain )
  in
  let rec go i acc =
    if i >= meta.Journal.shards then Ok (List.rev acc)
    else
      let* pair = rebuild_shard i in
      go (i + 1) (pair :: acc)
  in
  let* pairs = go 0 [] in
  let shard_arr = Array.of_list (List.map fst pairs) in
  let journals = Array.of_list (List.map snd pairs) in
  let breakers, backoffs =
    make_supervision resil ~shards:meta.Journal.shards
  in
  let t =
    {
      partition = Partition.create ~shards:meta.Journal.shards policy;
      shards = shard_arr;
      routes = Hashtbl.create 1024;
      resil;
      journals = Some journals;
      breakers;
      backoffs;
      shed = Array.make meta.Journal.shards [];
      commits_since_ckpt = Array.make meta.Journal.shards 0;
    }
  in
  rebuild_routes t;
  Ok
    {
      service = t;
      replayed_drains = !replayed_drains;
      replayed_mods = !replayed_mods;
      requeued = !requeued;
      interrupted = !interrupted;
      warnings = List.rev !warnings;
    }

(* -- dumps ----------------------------------------------------------- *)

let pp_stats ppf t =
  Array.iter
    (fun s ->
      Format.fprintf ppf "-- shard %d (%d rules, %d/%d slots) --@.%a"
        (Shard.id s)
        (Agent.rule_count (Shard.agent s))
        (Fr_tcam.Tcam.used_count (Agent.tcam (Shard.agent s)))
        (Agent.capacity (Shard.agent s))
        Telemetry.pp (Shard.telemetry s))
    t.shards

let to_json ?scenario t =
  let open Telemetry.Json in
  let per_shard =
    Array.to_list
      (Array.map
         (fun s ->
           match Telemetry.to_json (Shard.telemetry s) with
           | Obj fields ->
               Obj
                 (("shard", Int (Shard.id s))
                 :: ("rules", Int (Agent.rule_count (Shard.agent s)))
                 :: fields)
           | v -> v)
         t.shards)
  in
  let header =
    match scenario with Some s -> [ ("scenario", Str s) ] | None -> []
  in
  Obj
    (header
    @ [
        ("shards", Int (Array.length t.shards));
        ("policy", Str (Partition.policy_to_string (Partition.policy t.partition)));
        ("journaled", Bool (t.journals <> None));
        ("rules", Int (rule_count t));
        ("per_shard", List per_shard);
      ])
