module Rule = Fr_tern.Rule
module Agent = Fr_switch.Agent
module Firmware = Fr_switch.Firmware
module Measure = Fr_switch.Measure
module Journal = Fr_resil.Journal
module Backoff = Fr_resil.Backoff
module Breaker = Fr_resil.Breaker
module Pool = Fr_exec.Pool
module Rng = Fr_prng.Rng

(* -- supervision policy ---------------------------------------------- *)

type resil = {
  retry_budget : int;
  backoff_base_ms : float;
  backoff_factor : float;
  backoff_max_ms : float;
  backoff_jitter : float;
  breaker_threshold : int;
  breaker_slow_threshold : int;
  slow_drain_ms : float;
  slow_factor : float;
  breaker_cooldown : int;
  queue_bound : int;
  checkpoint_every : int;
  checkpoint_retain : int;
  failover : bool;
  rebalance_batch : int;
}

let default_resil =
  {
    retry_budget = 2;
    backoff_base_ms = 1.0;
    backoff_factor = 2.0;
    backoff_max_ms = 64.0;
    backoff_jitter = 0.2;
    breaker_threshold = 3;
    breaker_slow_threshold = 3;
    slow_drain_ms = infinity;
    slow_factor = 0.0;
    breaker_cooldown = 2;
    queue_bound = 1024;
    checkpoint_every = 32;
    checkpoint_retain = 1;
    failover = false;
    rebalance_batch = 64;
  }

type t = {
  partition : Partition.t;
  domains : int;
      (* executors a flush may use; 1 = the exact legacy sequential path *)
  shards : Shard.t array;
  routes : (int, int) Hashtbl.t;
      (* rule id -> shard, for every id pending or installed.  Rebuilt
         from the agents (and the still-pending queues of quarantined
         shards) after each flush, so a failed Add never leaves a stale
         route behind. *)
  resil : resil;
  journals : Journal.t array option;  (* one WAL per shard *)
  breakers : Breaker.t array;
  backoffs : Backoff.t array;
  shed : (Agent.flow_mod * string) list array;  (* newest first, per shard *)
  commits_since_ckpt : int array;
  overlay : Partition.Overlay.t;
      (* ids living away from their static home while it is quarantined *)
  epochs : (int, int) Hashtbl.t;
      (* id -> placement epoch, bumped each time the rebalance pass
         re-homes the id; threaded into Coalesce as the ordering fence *)
}

let default_kind = Firmware.FR_O Fr_sched.Store.Bit_backend

(* How many executors a flush uses when the caller does not say: the
   [FASTRULE_DOMAINS] env knob (so a whole test/CI run can be switched to
   the parallel path without touching call sites), else 1 — the library
   never grabs extra cores uninvited. *)
let default_domains () =
  match Sys.getenv_opt "FASTRULE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
  | None -> 1

let resolve_domains = function
  | None -> default_domains ()
  | Some n when n >= 1 -> n
  | Some n -> invalid_arg (Printf.sprintf "Service: domains %d < 1" n)

let make_supervision resil ~shards =
  let slow_policy =
    resil.slow_drain_ms < infinity || resil.slow_factor > 0.0
  in
  let breakers =
    Array.init shards (fun _ ->
        Breaker.create ~threshold:resil.breaker_threshold
          ~slow_threshold:(if slow_policy then resil.breaker_slow_threshold else 0)
          ~cooldown:resil.breaker_cooldown ())
  in
  (* Jitter streams: one root generator, split once per shard in shard
     order.  Each backoff owns an independent stream keyed only by its
     shard index, so a parallel flush draws exactly the jitter the
     sequential one would — and retries on shard [i] never perturb the
     schedule of shard [j], which a single shared generator would. *)
  let root = Rng.create ~seed:0x5e51 in
  let streams = Array.init shards (fun _ -> root) in
  for i = 0 to shards - 1 do
    streams.(i) <- Rng.split root
  done;
  let backoffs =
    Array.map
      (fun rng ->
        Backoff.create ~base_ms:resil.backoff_base_ms
          ~factor:resil.backoff_factor ~max_ms:resil.backoff_max_ms
          ~jitter:resil.backoff_jitter ~rng ~seed:0 ())
      streams
  in
  (breakers, backoffs)

(* A fresh journal directory: shape metadata once, then one compacted
   journal per shard anchored on a checkpoint of its starting table (so
   recovery always has a baseline).  Refuses a directory that already
   carries a journal — recover from it or point elsewhere. *)
let make_journals ~dir ~kind ~policy ~verify ~refresh_every ~capacity
    (shards : Shard.t array) =
  if Sys.file_exists (Journal.meta_file ~dir) then
    invalid_arg
      (Printf.sprintf
         "Service: journal directory %s already holds a journal (recover from \
          it instead)"
         dir);
  Journal.write_meta ~dir
    {
      Journal.shards = Array.length shards;
      capacity;
      policy = Partition.policy_to_string policy;
      kind = Firmware.algo_kind_name kind;
      refresh_every;
      verify;
    };
  Array.map
    (fun shard ->
      let j = Journal.create ~dir ~shard:(Shard.id shard) in
      Journal.checkpoint j
        ~rules:(Array.of_list (Agent.rules (Shard.agent shard)));
      j)
    shards

let create ?(kind = default_kind) ?latency ?(verify = false)
    ?(refresh_every = 1) ?(policy = Partition.Hash_id)
    ?(resil = default_resil) ?journal ?domains ~shards ~capacity () =
  let shard_arr =
    Array.init shards (fun id ->
        Shard.create ~kind ?latency ~verify ~refresh_every ~capacity ~id ())
  in
  let breakers, backoffs = make_supervision resil ~shards in
  {
    partition = Partition.create ~shards policy;
    domains = resolve_domains domains;
    shards = shard_arr;
    routes = Hashtbl.create 1024;
    resil;
    journals =
      Option.map
        (fun dir ->
          make_journals ~dir ~kind ~policy ~verify ~refresh_every ~capacity
            shard_arr)
        journal;
    breakers;
    backoffs;
    shed = Array.make shards [];
    commits_since_ckpt = Array.make shards 0;
    overlay = Partition.Overlay.create ();
    epochs = Hashtbl.create 64;
  }

let of_rules ?(kind = default_kind) ?latency ?(verify = false)
    ?(refresh_every = 1) ?(policy = Partition.Hash_id)
    ?(resil = default_resil) ?journal ?domains ~shards ~capacity rules =
  let partition = Partition.create ~shards policy in
  let slices = Array.make shards [] in
  Array.iter
    (fun (r : Rule.t) ->
      let s = Partition.route_rule partition r in
      slices.(s) <- r :: slices.(s))
    rules;
  let shard_arr =
    Array.init shards (fun id ->
        Shard.of_rules ~kind ?latency ~verify ~refresh_every ~capacity ~id
          (Array.of_list (List.rev slices.(id))))
  in
  let breakers, backoffs = make_supervision resil ~shards in
  let t =
    {
      partition;
      domains = resolve_domains domains;
      shards = shard_arr;
      routes = Hashtbl.create (2 * Array.length rules);
      resil;
      journals =
        Option.map
          (fun dir ->
            make_journals ~dir ~kind ~policy ~verify ~refresh_every ~capacity
              shard_arr)
          journal;
      breakers;
      backoffs;
      shed = Array.make shards [];
      commits_since_ckpt = Array.make shards 0;
      overlay = Partition.Overlay.create ();
      epochs = Hashtbl.create 64;
    }
  in
  Array.iter
    (fun (r : Rule.t) ->
      Hashtbl.replace t.routes r.Rule.id (Partition.route_rule partition r))
    rules;
  t

let shards t = Array.length t.shards
let domains t = t.domains

let shard t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Service.shard: no shard %d" i);
  t.shards.(i)

let published t ~shard:i = Shard.published (shard t i)
let lookup_published t ~shard:i packet = Shard.lookup_published (shard t i) packet
let partition t = t.partition
let set_fault t ~shard:i f = Shard.set_fault (shard t i) f
let shard_of_rule t id = Hashtbl.find_opt t.routes id
let breaker_state t i = Breaker.state t.breakers.(i)
let journaled t = t.journals <> None

let rule_count t =
  Array.fold_left (fun acc s -> acc + Agent.rule_count (Shard.agent s)) 0 t.shards

let find_rule t id =
  match Hashtbl.find_opt t.routes id with
  | Some s -> Agent.rule (Shard.agent t.shards.(s)) id
  | None -> None

let id_of = function
  | Agent.Add r -> r.Rule.id
  | Agent.Set_action { id; _ } | Agent.Remove { id } -> id

let diverted_count t = Partition.Overlay.count t.overlay
let epoch_of t id = Option.value (Hashtbl.find_opt t.epochs id) ~default:0

let dead_rows t =
  Array.fold_left (fun acc s -> acc + Shard.dead_rows s) 0 t.shards

(* Effective headroom of shard [i] under partial degradation: hardware
   slots its dead map has not condemned, minus rules installed and mods
   queued.  An approximation (queued Removes will free room), erring
   toward diverting early — a spurious divert is safe, a doomed Add is
   not. *)
let effective_room t i =
  let a = Shard.agent t.shards.(i) in
  Agent.capacity a - Shard.dead_rows t.shards.(i) - Agent.rule_count a
  - Shard.queue_depth t.shards.(i)

(* Degraded-full: silicon losses have shrunk the shard below its load.
   Only meaningful when rows are actually dead — a healthy full shard
   still takes the Add and rejects it itself (capacity errors are
   normal-plane noise, not divert-worthy). *)
let degraded_full t i =
  Shard.dead_rows t.shards.(i) > 0 && effective_room t i <= 0

let route t fm =
  match fm with
  | Agent.Add r -> (
      let id = r.Rule.id in
      match Hashtbl.find_opt t.routes id with
      | Some s -> s (* duplicate: let the owning shard reject it *)
      | None ->
          let home = Partition.route_rule t.partition r in
          let quarantined = not (Breaker.admits t.breakers.(home)) in
          let s =
            if t.resil.failover && (quarantined || degraded_full t home) then
              (* The static home is quarantined, or degraded silicon has
                 shrunk it below its load: divert this *new* id — only
                 the overflow, in the degraded case; the home keeps
                 serving what it already holds — to the rendezvous pick
                 among the shards that are admitted and have room.  Ids
                 that already live on the sick shard keep their sticky
                 route (the [Some s] branch above).  The pick is keyed by
                 the rule's routing window under the prefix policy so a
                 diverted destination block stays colocated. *)
              match
                Partition.rendezvous ~rule:r t.partition
                  ~healthy:(fun i ->
                    i <> home
                    && Breaker.admits t.breakers.(i)
                    && not (degraded_full t i))
                  id
              with
              | Some alt ->
                  Partition.Overlay.divert t.overlay ~id ~shard:alt;
                  Telemetry.record_diverted (Shard.telemetry t.shards.(alt));
                  if not quarantined then
                    Telemetry.record_degraded_divert
                      (Shard.telemetry t.shards.(alt));
                  alt
              | None -> home (* nobody has room; let it queue or shed *)
            else home
          in
          Hashtbl.replace t.routes id s;
          s)
  | Agent.Set_action { id; _ } | Agent.Remove { id } -> (
      match Hashtbl.find_opt t.routes id with
      | Some s -> s
      | None -> (
          match Partition.Overlay.find t.overlay id with
          | Some s -> s
          | None -> Partition.route_id t.partition id))

type submit_outcome = Accepted | Overloaded of string

let try_submit t fm =
  let id = id_of fm in
  let had_route = Hashtbl.mem t.routes id in
  let s = route t fm in
  let sh = t.shards.(s) in
  if
    (not (Breaker.admits t.breakers.(s)))
    && Shard.queue_depth sh >= t.resil.queue_bound
  then begin
    (* Quarantined and the bounded queue is full: shed instead of letting
       a dead shard's backlog grow without limit. *)
    if not had_route then Hashtbl.remove t.routes id;
    let msg =
      Printf.sprintf "overloaded: shard %d quarantined (queue bound %d)" s
        t.resil.queue_bound
    in
    Telemetry.record_shed (Shard.telemetry sh);
    t.shed.(s) <- (fm, msg) :: t.shed.(s);
    Overloaded msg
  end
  else begin
    (* WAL before queue: intent is durable (fsync-batched — see
       {!Fr_resil.Journal}) before any drain can touch hardware. *)
    (match t.journals with
    | Some js -> ignore (Journal.log_mod js.(s) fm)
    | None -> ());
    (if t.resil.failover then
       ignore (Shard.submit ~epoch:(epoch_of t id) sh fm)
     else ignore (Shard.submit sh fm));
    Accepted
  end

let submit t fm = ignore (try_submit t fm)
let submit_all t mods = List.iter (submit t) mods

let pending t =
  Array.fold_left (fun acc s -> acc + Shard.queue_depth s) 0 t.shards

type flush_report = {
  results : Shard.drain_result array;
  quarantined : int list;
  wall_ms : float;
}

let applied r =
  Array.fold_left (fun acc (d : Shard.drain_result) -> acc + d.Shard.applied) 0
    r.results

let failures r =
  Array.fold_left
    (fun acc (d : Shard.drain_result) -> acc @ d.Shard.failed)
    [] r.results

let rebuild_routes t =
  Hashtbl.reset t.routes;
  Array.iteri
    (fun s shard ->
      List.iter
        (fun (r : Rule.t) -> Hashtbl.replace t.routes r.Rule.id s)
        (Agent.rules (Shard.agent shard));
      (* A quarantined shard still holds queued intent; keep its routes
         so follow-up ops for those ids find the right queue. *)
      List.iter
        (fun fm -> Hashtbl.replace t.routes (id_of fm) s)
        (Shard.pending_mods shard))
    t.shards;
  (* Prune overlay bindings that no longer describe reality: the id was
     removed, or it drained back home (rebalance), or its diverted Add
     never materialised. *)
  List.iter
    (fun (id, s) ->
      match Hashtbl.find_opt t.routes id with
      | Some s' when s' = s -> ()
      | _ -> Partition.Overlay.settle t.overlay ~id)
    (Partition.Overlay.bindings t.overlay)

(* -- failure classification ------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A transient casualty is an injected hardware failure that left the op
   un-applied — worth retrying.  A Remove whose erase landed before the
   fault ("entry removed") already took effect; retrying it would only
   manufacture a spurious rejection. *)
let is_transient e = has_prefix ~prefix:"fault: " e && not (contains ~sub:"entry removed" e)

(* A drain whose final casualty list still contains fault (or shadow-table)
   damage cannot be reproduced by a fault-free replay; recovery must
   restart from a checkpoint instead. *)
let is_dirty_failure e = is_transient e || has_prefix ~prefix:"verify: " e

let merge_results keep_failed (a : Shard.drain_result)
    (b : Shard.drain_result) =
  {
    Shard.shard = a.Shard.shard;
    applied = a.Shard.applied + b.Shard.applied;
    failed = keep_failed @ b.Shard.failed;
    coalesced = a.Shard.coalesced + b.Shard.coalesced;
    firmware_ms = a.Shard.firmware_ms +. b.Shard.firmware_ms;
    hardware_ms = a.Shard.hardware_ms +. b.Shard.hardware_ms;
    tcam_ops = a.Shard.tcam_ops + b.Shard.tcam_ops;
    wall_ms = a.Shard.wall_ms +. b.Shard.wall_ms;
  }

let checkpoint_shard t i =
  match t.journals with
  | None -> ()
  | Some js ->
      Journal.checkpoint ~retain:t.resil.checkpoint_retain js.(i)
        ~rules:(Array.of_list (Agent.rules (Shard.agent t.shards.(i))));
      Telemetry.record_checkpoint (Shard.telemetry t.shards.(i));
      t.commits_since_ckpt.(i) <- 0

let checkpoint t =
  Array.iteri (fun i _ -> checkpoint_shard t i) t.shards

(* Minimum per-op latency samples before the adaptive slow-call threshold
   engages; below this the shard's histogram is too thin to call anything
   an outlier, so the policy stays silent rather than tripping on
   warm-up noise. *)
let adaptive_min_samples = 8

(* The per-op bound this drain is judged against.  An explicit
   [slow_drain_ms] always wins; otherwise, with [slow_factor > 0], the
   bound is the shard's *own* p99 per-op hardware time scaled by the
   factor — derived from history only (the current drain is not yet in
   the series), so the judgment is identical whether shards drain
   sequentially or in parallel. *)
let effective_slow_ms t i =
  if t.resil.slow_drain_ms < infinity then t.resil.slow_drain_ms
  else if t.resil.slow_factor > 0.0 then begin
    let s = Telemetry.hw_per_op_ms (Shard.telemetry t.shards.(i)) in
    if s.Measure.count >= adaptive_min_samples then
      s.Measure.p99 *. t.resil.slow_factor
    else infinity
  end
  else infinity

(* Drain one admitted shard under the supervisor: retry transient
   casualties with backoff (modelled delay, accounted not slept), then
   settle the journal — a clean drain commits (a fault-free replay of its
   mods reproduces it exactly); a dirty one, or one past the checkpoint
   cadence, checkpoints instead so recovery never replays through
   non-deterministic fault damage. *)
let drain_supervised t i =
  let sh = t.shards.(i) in
  let tele = Shard.telemetry sh in
  let slow_ms = effective_slow_ms t i in
  Telemetry.set_slow_threshold tele slow_ms;
  let had_work = Shard.has_work sh in
  let drain_id =
    match t.journals with
    | Some js when had_work -> Some (Journal.log_begin js.(i))
    | _ -> None
  in
  let rec retry (r : Shard.drain_result) attempt =
    if attempt > t.resil.retry_budget then r
    else
      match List.partition (fun (_, e) -> is_transient e) r.Shard.failed with
      | [], _ -> r
      | transient, rest ->
          let delay = Backoff.delay_ms t.backoffs.(i) ~attempt in
          Telemetry.record_retry tele ~ops:(List.length transient)
            ~backoff_ms:delay;
          List.iter (fun (fm, _) -> ignore (Shard.requeue sh fm)) transient;
          retry (merge_results rest r (Shard.drain sh)) (attempt + 1)
  in
  let final = retry (Shard.drain sh) 1 in
  let br = t.breakers.(i) in
  if had_work then begin
    let was_open = Breaker.state br = Breaker.Open in
    (* Plain rejections (duplicates, not-installed, capacity) are
       normal-plane noise; only hardware/verify damage counts against the
       breaker. *)
    let damaged =
      List.exists
        (fun (_, e) ->
          has_prefix ~prefix:"fault: " e || has_prefix ~prefix:"verify: " e)
        final.Shard.failed
    in
    (* Slow-call policy: a damage-free drain whose modelled per-op
       hardware time breached [slow_drain_ms] counts against the
       breaker's slow streak — a switch that answers too slowly is
       quarantine-worthy even though nothing failed. *)
    let slow =
      (not damaged)
      && final.Shard.tcam_ops > 0
      && final.Shard.hardware_ms /. float_of_int final.Shard.tcam_ops
         > slow_ms
    in
    if damaged then Breaker.note_failure br
    else if slow then begin
      Telemetry.record_slow_drain tele;
      Breaker.note_slow br
    end
    else Breaker.note_success br;
    if Breaker.state br = Breaker.Open && not was_open then
      Telemetry.record_breaker_open tele
  end
  else if Breaker.state br = Breaker.Half_open then
    (* An empty probe window: the shard had nothing to drain, so there is
       no damage and no latency to judge.  Count it as a passed probe —
       otherwise a shard healed *after* the op stream ends stays
       half-open forever and the rebalance pass (which wants a fully
       closed home) can never drain its diverted ids back.  If the fault
       is in fact still there, the first real drain re-trips. *)
    Breaker.note_success br;
  Telemetry.set_breaker_state tele (Breaker.state_to_string (Breaker.state br));
  (match (t.journals, drain_id) with
  | Some js, Some drain ->
      let dirty =
        List.exists (fun (_, e) -> is_dirty_failure e) final.Shard.failed
      in
      t.commits_since_ckpt.(i) <- t.commits_since_ckpt.(i) + 1;
      if dirty || t.commits_since_ckpt.(i) >= t.resil.checkpoint_every then
        checkpoint_shard t i
      else
        Journal.log_commit js.(i) ~drain ~applied:final.Shard.applied
          ~failed:(List.length final.Shard.failed)
  | _ -> ());
  final

let journal_mod t s fm =
  match t.journals with
  | Some js -> ignore (Journal.log_mod js.(s) fm)
  | None -> ()

let dedup_ints l = List.sort_uniq compare l

(* The background rebalance pass: once a diverted id's static home is
   healthy again ([Closed], not merely probing), migrate it back in
   bounded batches.  Ordering safety: an id is only touched when it has
   no pending ops on either shard, its placement epoch is bumped before
   the migration ops are queued (the Coalesce fence would reject any
   racing op from the old placement), and the Remove on the overlay
   shard drains *before* the Add on the home shard — the id is briefly
   absent from the union, never present twice. *)
let rebalance t =
  if (not t.resil.failover) || Partition.Overlay.count t.overlay = 0 then []
  else begin
    let take n l = List.filteri (fun i _ -> i < n) l in
    let candidates =
      Partition.Overlay.bindings t.overlay
      |> List.filter_map (fun (id, s) ->
             match Agent.rule (Shard.agent t.shards.(s)) id with
             | None -> None (* not installed there (yet); nothing to move *)
             | Some r ->
                 let home = Partition.route_rule t.partition r in
                 if
                   home <> s
                   && Breaker.state t.breakers.(home) = Breaker.Closed
                   && effective_room t home > 0
                      (* a degraded home gets its ids back only once the
                         probe drill (or defrag churn) has restored room *)
                   && Breaker.admits t.breakers.(s)
                   && (not (Shard.has_pending_id t.shards.(s) id))
                   && not (Shard.has_pending_id t.shards.(home) id)
                 then Some (id, s, home, r)
                 else None)
      |> take t.resil.rebalance_batch
    in
    if candidates = [] then []
    else begin
      (* Phase 1: erase each migrating id from its overlay shard. *)
      List.iter
        (fun (id, s, _home, _r) ->
          let e = epoch_of t id + 1 in
          Hashtbl.replace t.epochs id e;
          journal_mod t s (Agent.Remove { id });
          ignore (Shard.requeue ~epoch:e t.shards.(s) (Agent.Remove { id })))
        candidates;
      let rm_results =
        List.map
          (fun s -> drain_supervised t s)
          (dedup_ints (List.map (fun (_, s, _, _) -> s) candidates))
      in
      (* Phase 2: re-insert at home every id whose erase landed. *)
      let moved =
        List.filter
          (fun (id, s, _home, _r) ->
            Agent.rule (Shard.agent t.shards.(s)) id = None)
          candidates
      in
      List.iter
        (fun (id, _s, home, r) ->
          journal_mod t home (Agent.Add r);
          ignore (Shard.requeue ~epoch:(epoch_of t id) t.shards.(home) (Agent.Add r)))
        moved;
      let add_results =
        List.map
          (fun h -> drain_supervised t h)
          (dedup_ints (List.map (fun (_, _, h, _) -> h) moved))
      in
      (* Phase 3: settle what landed; re-shelter what did not. *)
      let repair_results = ref [] in
      List.iter
        (fun (id, s, home, r) ->
          if Agent.rule (Shard.agent t.shards.(home)) id <> None then begin
            Partition.Overlay.settle t.overlay ~id;
            Hashtbl.replace t.routes id home;
            Telemetry.record_rebalanced (Shard.telemetry t.shards.(home))
          end
          else begin
            (* The home insert failed (capacity, fresh damage): put the
               rule back where it was and keep the overlay binding. *)
            let e = epoch_of t id + 1 in
            Hashtbl.replace t.epochs id e;
            journal_mod t s (Agent.Add r);
            ignore (Shard.requeue ~epoch:e t.shards.(s) (Agent.Add r));
            repair_results := drain_supervised t s :: !repair_results
          end)
        moved;
      rm_results @ add_results @ List.rev !repair_results
    end
  end

(* One shard's share of a flush: skip-or-drain under its breaker, with
   any shed submits folded into the casualty list.  Everything here —
   agent, coalesce queue, telemetry, breaker, backoff stream, journal
   file, [shed] and [commits_since_ckpt] slot — is owned by shard [i]
   alone, which is what makes the domain fan-out below race-free without
   a single lock in the drain path.  Returns [(skipped, result)]. *)
let flush_shard t i =
  let sheds = List.rev t.shed.(i) in
  t.shed.(i) <- [];
  let br = t.breakers.(i) in
  if not (Breaker.admits br) then begin
    Breaker.note_skipped br;
    Telemetry.set_breaker_state
      (Shard.telemetry t.shards.(i))
      (Breaker.state_to_string (Breaker.state br));
    (true, { (Shard.empty_result ~shard:i) with Shard.failed = sheds })
  end
  else
    let r = drain_supervised t i in
    (false, { r with Shard.failed = sheds @ r.Shard.failed })

(* Fan the per-shard drains out to the shared domain pool and join
   deterministically.  [domains = 1] (or a single shard) bypasses the
   pool entirely — the exact legacy sequential path.  The pool gets
   [domains - 1] workers because the joining caller lends itself to the
   pool while it waits, so [domains] executors run in total.  A task
   exception is re-raised only after every sibling has finished (lowest
   shard first), so no drain is ever abandoned mid-journal-write and the
   raise order does not depend on scheduling. *)
let drain_all t =
  let n = Array.length t.shards in
  let out = Array.make n (true, Shard.empty_result ~shard:0) in
  if t.domains <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      out.(i) <- flush_shard t i
    done
  else begin
    let pool = Pool.shared ~workers:(min (t.domains - 1) n) in
    let joined =
      Pool.run_all pool (Array.init n (fun i -> fun () -> flush_shard t i))
    in
    Array.iteri
      (fun i -> function Ok r -> out.(i) <- r | Error _ -> ())
      joined;
    Array.iter (function Error e -> raise e | Ok _ -> ()) joined
  end;
  out

let flush t =
  let (results, quarantined), wall_ms =
    Measure.time_ms (fun () ->
        let per_shard = drain_all t in
        let results = Array.map snd per_shard in
        let quarantined = ref [] in
        Array.iteri
          (fun i (skipped, _) ->
            if skipped then quarantined := i :: !quarantined)
          per_shard;
        (* The rebalance pass crosses shards (it reads sibling breakers
           and moves ids between queues), so it runs as an ordered
           epilogue after the join barrier, never concurrently with the
           drains.  Its extra drains are merged into the per-shard slots
           so the report stays a truthful account of the whole flush. *)
        List.iter
          (fun (r : Shard.drain_result) ->
            let i = r.Shard.shard in
            results.(i) <- merge_results results.(i).Shard.failed results.(i) r)
          (rebalance t);
        (* Probe drill + dead-row gauges: every shard still carrying dead
           rows re-tests them (rows found healed re-enter the writable
           pool, so the next rebalance can drain diverted ids home).
           Ordered epilogue, after the join barrier — deterministic and
           identical for any domain count. *)
        Array.iter
          (fun sh ->
            if Shard.dead_rows sh > 0 then begin
              let probed, recovered = Shard.probe_dead sh in
              Telemetry.record_heal_probe (Shard.telemetry sh) ~probed
                ~recovered
            end;
            Telemetry.set_dead_rows (Shard.telemetry sh) (Shard.dead_rows sh))
          t.shards;
        (results, List.rev !quarantined))
  in
  rebuild_routes t;
  { results; quarantined; wall_ms }

(* -- crash simulation ------------------------------------------------ *)

let simulate_crash ?(mid_drain = false) t =
  match t.journals with
  | None -> invalid_arg "Service.simulate_crash: service has no journal"
  | Some js ->
      Array.iteri
        (fun i sh ->
          if mid_drain && Shard.has_work sh then ignore (Journal.log_begin js.(i)))
        t.shards;
      (* Closing flushes the buffered tail; the process is now free to
         disappear.  The service must not be used afterwards. *)
      Array.iter Journal.close js

(* -- whole-shard restart fault ---------------------------------------- *)

type readoption = {
  restart_replayed_drains : int;
  restart_replayed_mods : int;
  restart_requeued : int;
}

(* One shard's agent process dies and restarts mid-run: volatile state
   (installed table view, queue) is lost, the journal survives, and the
   service re-adopts the shard from it without disturbing its siblings —
   checkpoint, deterministic replay of committed drains, uncommitted
   suffix requeued.  The replay goes through the raw [Shard.drain] (no
   begin/commit markers: those drains are already journaled) and the
   writer keeps appending afterwards with its own counters.  Only safe
   between flushes, which is when the chaos layer fires it. *)
let restart_shard t ~shard:i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Service.restart_shard: no shard %d" i);
  match t.journals with
  | None -> Error "restart_shard: service has no journal"
  | Some js ->
      let ( let* ) = Result.bind in
      let j = js.(i) in
      (* The reader must see every buffered mod the writer accepted. *)
      Journal.sync j;
      let sh = t.shards.(i) in
      let dir = Journal.dir j in
      let* r = Journal.read_recovery ~dir ~shard:i in
      let* rules =
        match r.Journal.checkpoint with
        | None -> Ok [||]
        | Some (_, file) -> Fr_workload.Rules_io.load file
      in
      Telemetry.record_restart (Shard.telemetry sh);
      Shard.reset sh rules;
      let replayed_drains = ref 0 and replayed_mods = ref 0 in
      let requeued = ref 0 in
      let mods = ref r.Journal.mods in
      List.iter
        (fun (c : Journal.committed) ->
          let batch, rest =
            List.partition (fun (seq, _) -> seq <= c.Journal.upto) !mods
          in
          mods := rest;
          List.iter (fun (_, fm) -> ignore (Shard.requeue sh fm)) batch;
          ignore (Shard.drain sh);
          incr replayed_drains;
          replayed_mods := !replayed_mods + List.length batch)
        r.Journal.committed;
      List.iter
        (fun (_, fm) ->
          ignore (Shard.requeue sh fm);
          incr requeued)
        !mods;
      (match Agent.verify_consistent (Shard.agent sh) with
      | Ok () ->
          Ok
            {
              restart_replayed_drains = !replayed_drains;
              restart_replayed_mods = !replayed_mods;
              restart_requeued = !requeued;
            }
      | Error e ->
          Error (Printf.sprintf "restart_shard: shard %d inconsistent: %s" i e))

(* -- recovery -------------------------------------------------------- *)

type recovery = {
  service : t;
  replayed_drains : int;
  replayed_mods : int;
  requeued : int;
  interrupted : int;
  warnings : string list;
}

let recover ?latency ?(resil = default_resil) ?domains ~journal:dir () =
  let ( let* ) = Result.bind in
  let* meta = Journal.read_meta ~dir in
  let* kind =
    match Firmware.algo_kind_of_string meta.Journal.kind with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "recover: unknown kind %S" meta.Journal.kind)
  in
  let* policy =
    match Partition.policy_of_string meta.Journal.policy with
    | Some p -> Ok p
    | None ->
        Error (Printf.sprintf "recover: unknown policy %S" meta.Journal.policy)
  in
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  let replayed_drains = ref 0 in
  let replayed_mods = ref 0 in
  let requeued = ref 0 in
  let interrupted = ref 0 in
  let rebuild_shard i =
    let* r = Journal.read_recovery ~dir ~shard:i in
    let* rules =
      match r.Journal.checkpoint with
      | None -> Ok [||]
      | Some (_, file) -> Fr_workload.Rules_io.load file
    in
    let* sh =
      match
        Shard.of_rules ~kind ?latency ~verify:meta.Journal.verify
          ~refresh_every:meta.Journal.refresh_every
          ~capacity:meta.Journal.capacity ~id:i rules
      with
      | sh -> Ok sh
      | exception Invalid_argument msg ->
          Error (Printf.sprintf "recover: shard %d checkpoint: %s" i msg)
    in
    (* Committed drains replay deterministically: the journal never
       commits through fault damage (dirty drains checkpoint instead), so
       re-driving each drain's mods through a fresh queue reproduces the
       recorded outcome. *)
    let mods = ref r.Journal.mods in
    List.iter
      (fun (c : Journal.committed) ->
        let batch, rest =
          List.partition (fun (seq, _) -> seq <= c.Journal.upto) !mods
        in
        mods := rest;
        List.iter (fun (_, fm) -> ignore (Shard.requeue sh fm)) batch;
        let dr = Shard.drain sh in
        incr replayed_drains;
        replayed_mods := !replayed_mods + List.length batch;
        if
          dr.Shard.applied <> c.Journal.applied
          || List.length dr.Shard.failed <> c.Journal.failed
        then
          warn "shard %d: drain %d replayed as %d applied / %d failed (journal says %d / %d)"
            i c.Journal.drain dr.Shard.applied
            (List.length dr.Shard.failed)
            c.Journal.applied c.Journal.failed)
      r.Journal.committed;
    (* The uncommitted suffix is intent, not state: re-enqueue it so the
       next flush drives it, leaving the installed table equal to the
       committed prefix. *)
    List.iter
      (fun (_, fm) ->
        ignore (Shard.requeue sh fm);
        incr requeued)
      !mods;
    if r.Journal.interrupted then incr interrupted;
    (match Agent.verify_consistent (Shard.agent sh) with
    | Ok () -> ()
    | Error e -> warn "shard %d: inconsistent after recovery: %s" i e);
    Ok
      ( sh,
        Journal.reopen ~dir ~shard:i ~next_seq:r.Journal.next_seq
          ~next_drain:r.Journal.next_drain )
  in
  let rec go i acc =
    if i >= meta.Journal.shards then Ok (List.rev acc)
    else
      let* pair = rebuild_shard i in
      go (i + 1) (pair :: acc)
  in
  let* pairs = go 0 [] in
  let shard_arr = Array.of_list (List.map fst pairs) in
  let journals = Array.of_list (List.map snd pairs) in
  let breakers, backoffs =
    make_supervision resil ~shards:meta.Journal.shards
  in
  let t =
    {
      partition = Partition.create ~shards:meta.Journal.shards policy;
      domains = resolve_domains domains;
      shards = shard_arr;
      routes = Hashtbl.create 1024;
      resil;
      journals = Some journals;
      breakers;
      backoffs;
      shed = Array.make meta.Journal.shards [];
      commits_since_ckpt = Array.make meta.Journal.shards 0;
      overlay = Partition.Overlay.create ();
      epochs = Hashtbl.create 64;
    }
  in
  rebuild_routes t;
  Ok
    {
      service = t;
      replayed_drains = !replayed_drains;
      replayed_mods = !replayed_mods;
      requeued = !requeued;
      interrupted = !interrupted;
      warnings = List.rev !warnings;
    }

(* -- dumps ----------------------------------------------------------- *)

let pp_stats ppf t =
  Array.iter
    (fun s ->
      Format.fprintf ppf "-- shard %d (%d rules, %d/%d slots) --@.%a"
        (Shard.id s)
        (Agent.rule_count (Shard.agent s))
        (Fr_tcam.Tcam.used_count (Agent.tcam (Shard.agent s)))
        (Agent.capacity (Shard.agent s))
        Telemetry.pp (Shard.telemetry s))
    t.shards

let to_json ?scenario ?seed t =
  let open Telemetry.Json in
  let per_shard =
    Array.to_list
      (Array.map
         (fun s ->
           match Telemetry.to_json (Shard.telemetry s) with
           | Obj fields ->
               Obj
                 (("shard", Int (Shard.id s))
                 :: ("rules", Int (Agent.rule_count (Shard.agent s)))
                 :: fields)
           | v -> v)
         t.shards)
  in
  let header =
    (match scenario with Some s -> [ ("scenario", Str s) ] | None -> [])
    @ match seed with Some s -> [ ("seed", Int s) ] | None -> []
  in
  Obj
    (header
    @ [
        ("shards", Int (Array.length t.shards));
        ("domains", Int t.domains);
        ("policy", Str (Partition.policy_to_string (Partition.policy t.partition)));
        ("journaled", Bool (t.journals <> None));
        ("rules", Int (rule_count t));
        ("per_shard", List per_shard);
      ])
