(** Deterministic rule-to-shard partitioning.

    The control plane owns several switch agents (shards) and must route
    every flow-mod to exactly one of them.  Routing has to be {e
    deterministic} — the same rule must land on the same shard in every
    run and across controller restarts, or a re-submitted policy would
    scatter — and cheap, because it sits on the submit path of every op.

    Two policies:

    - {!Hash_id}: a splitmix-style integer hash of the rule id, spread
      uniformly over the shards.  No locality, perfect balance; the
      default.
    - {!Dst_prefix}: route by the top [bits] of the destination-IP match
      field, so rules covering the same destination block colocate — the
      arrangement a rule-caching or consistent-update controller wants,
      because overlapping rules then share a shard and keep their
      dependency chains (and hence TCAM movement costs) local.  Rules
      whose destination bits are not fully specified in that window, rules
      that are not 104-bit 5-tuples, and id-only ops fall back to the id
      hash.

    A partitioner is a pure value: {!route_rule} and {!route_id} never
    mutate, so concurrent shards can share one. *)

type policy =
  | Hash_id  (** uniform id hash (default) *)
  | Dst_prefix of int
      (** colocate by the top [k] destination-IP bits, [0 < k <= 32] *)

val policy_to_string : policy -> string
(** ["hash"] or ["prefix:<k>"]. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_to_string}. *)

type t

val create : shards:int -> policy -> t
(** @raise Invalid_argument if [shards < 1] or a prefix length is out of
    [1..32]. *)

val shards : t -> int
val policy : t -> policy

val route_id : t -> int -> int
(** The id-hash route — the only information available for [Set_action]
    and [Remove] ops of rules the service has not seen installed. *)

val route_rule : t -> Fr_tern.Rule.t -> int
(** Route an [Add] by the configured policy.  Always in
    [0 .. shards - 1]. *)

val rendezvous :
  ?rule:Fr_tern.Rule.t -> t -> healthy:(int -> bool) -> int -> int option
(** Rendezvous-hash pick for failover: the shard among those [healthy]
    answers [true] for with the highest per-(key, shard) mixed weight, or
    [None] when no shard is healthy.  Deterministic, and minimally
    disruptive — changing the healthy set only re-routes ids whose
    winning shard joined or left it.

    The weight key is the rule id, except under {!Dst_prefix} when
    [rule] is supplied and its window bits are fully specified: then the
    window value is the key, so all rules of one destination block
    divert to the same fallback shard and their dependency chains stay
    colocated (the point of the policy).  Omitting [rule] — the only
    option for id-only ops — preserves the pure id-keyed pick. *)

(** The dynamic failover overlay: rule ids temporarily living away from
    their static home while that home's breaker is open.  A plain mutable
    id → shard table owned by the service; the partitioner itself stays a
    pure value. *)
module Overlay : sig
  type t

  val create : unit -> t
  val find : t -> int -> int option
  val divert : t -> id:int -> shard:int -> unit
  val settle : t -> id:int -> unit
  (** The id is back on (or gone from) its static home. *)

  val count : t -> int
  val bindings : t -> (int * int) list
  (** Sorted, for deterministic iteration in the rebalance pass. *)
end
