(** A reusable multi-shard churn scenario — the control-plane workload the
    bench harness and the CLI both drive.

    The stream models BGP-style update churn against a warm table: a
    synthetic policy ({!Fr_workload.Dataset}) is partitioned across the
    shards, then [ops] flow-mods — a weighted mix of insertions of fresh
    rules, removals of live ones and in-place action rewrites — are
    submitted and flushed every [batch] ops, so the coalescing queues and
    the batched-insert path actually get bursts to chew on.  Everything is
    seeded and deterministic. *)

type spec = {
  kind : Fr_workload.Dataset.kind;
  initial : int;  (** rules preloaded before the stream starts *)
  ops : int;  (** flow-mods submitted *)
  shards : int;
  capacity : int;  (** TCAM slots per shard *)
  batch : int;  (** ops per flush window *)
  seed : int;
}

type result = {
  service : Service.t;  (** final state, telemetry included *)
  submitted : int;
  applied : int;
  failed : int;  (** drain failures, push-time rejections included *)
  coalesced : int;
  flushes : int;
  retries : int;  (** supervisor retry rounds, summed over shards *)
  shed : int;  (** submits rejected behind open breakers *)
  breaker_opens : int;  (** circuit-breaker trips, summed over shards *)
  diverted : int;  (** new ids failover-routed away from sick homes *)
  rebalanced : int;  (** diverted ids drained back home after heal *)
  restarts : int;  (** whole-shard restart faults absorbed mid-run *)
  flush_wall_ms : Fr_switch.Measure.summary;
      (** wall-clock per {!Service.flush} call *)
}

(** {1 Chaos: scheduled whole-shard fault/heal events} *)

type chaos_action =
  | Chaos_fault of Fr_tcam.Fault.spec
      (** install a write-failure plan on the shard *)
  | Chaos_slow of float
      (** install a latency fault: this many extra modelled ms per
          hardware op (trips the breaker's slow-call policy, never fails
          an op) *)
  | Chaos_restart
      (** kill and re-adopt the shard's agent via
          {!Service.restart_shard}; degrades to a no-op on an unjournaled
          service *)
  | Chaos_heal  (** clear the shard's fault plan *)

type chaos_event = { at_flush : int; shard : int; action : chaos_action }
(** [action] fires on [shard] just before the flush numbered [at_flush]
    (0-based count of completed flushes). *)

val chaos_plan :
  seed:int -> shards:int -> flushes:int -> events:int -> chaos_event list
(** A seeded, deterministic schedule of [events] fault-domain events over
    a run expected to flush [flushes] times: slow faults, write-failure
    faults and restarts land on healthy shards, heals and restarts on
    sick ones.  Sorted by [at_flush].
    @raise Invalid_argument if [shards] or [flushes] is below 1. *)

val chaos_action_to_string : chaos_action -> string
val pp_chaos_event : Format.formatter -> chaos_event -> unit

val run :
  ?policy:Partition.policy ->
  ?algo:Fr_switch.Firmware.algo_kind ->
  ?verify:bool ->
  ?refresh_every:int ->
  ?resil:Service.resil ->
  ?journal:string ->
  ?domains:int ->
  ?configure:(Service.t -> unit) ->
  ?chaos:chaos_event list ->
  ?stop_after_flushes:int ->
  spec ->
  result
(** [configure] runs right after the service is built, before any op is
    submitted — the hook for installing fault plans.  [domains] is handed
    to {!Service.of_rules}: the run's flushes drain shards on that many
    executors, with results identical to [domains = 1] by construction.  [chaos] events fire
    between flushes, each just before the flush its [at_flush] names
    (events whose flush never happens are dropped).  [stop_after_flushes]
    abandons the stream at the flush that would follow the [n]th: the
    current window's ops stay queued (and, with [journal], journaled but
    uncommitted), which is exactly the suffix the CLI's crash simulation
    wants recovery to find.
    @raise Invalid_argument if the initial policy does not fit its
    shards. *)
