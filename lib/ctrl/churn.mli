(** A reusable multi-shard churn scenario — the control-plane workload the
    bench harness and the CLI both drive.

    The stream models BGP-style update churn against a warm table: a
    synthetic policy ({!Fr_workload.Dataset}) is partitioned across the
    shards, then [ops] flow-mods — a weighted mix of insertions of fresh
    rules, removals of live ones and in-place action rewrites — are
    submitted and flushed every [batch] ops, so the coalescing queues and
    the batched-insert path actually get bursts to chew on.  Everything is
    seeded and deterministic. *)

type spec = {
  kind : Fr_workload.Dataset.kind;
  initial : int;  (** rules preloaded before the stream starts *)
  ops : int;  (** flow-mods submitted *)
  shards : int;
  capacity : int;  (** TCAM slots per shard *)
  batch : int;  (** ops per flush window *)
  seed : int;
}

type result = {
  service : Service.t;  (** final state, telemetry included *)
  submitted : int;
  applied : int;
  failed : int;  (** drain failures, push-time rejections included *)
  coalesced : int;
  flushes : int;
  flush_wall_ms : Fr_switch.Measure.summary;
      (** wall-clock per {!Service.flush} call *)
}

val run :
  ?policy:Partition.policy ->
  ?algo:Fr_switch.Firmware.algo_kind ->
  ?verify:bool ->
  ?refresh_every:int ->
  spec ->
  result
(** @raise Invalid_argument if the initial policy does not fit its
    shards. *)
