(** A reusable multi-shard churn scenario — the control-plane workload the
    bench harness and the CLI both drive.

    The stream models BGP-style update churn against a warm table: a
    synthetic policy ({!Fr_workload.Dataset}) is partitioned across the
    shards, then [ops] flow-mods — a weighted mix of insertions of fresh
    rules, removals of live ones and in-place action rewrites — are
    submitted and flushed every [batch] ops, so the coalescing queues and
    the batched-insert path actually get bursts to chew on.  Everything is
    seeded and deterministic. *)

type spec = {
  kind : Fr_workload.Dataset.kind;
  initial : int;  (** rules preloaded before the stream starts *)
  ops : int;  (** flow-mods submitted *)
  shards : int;
  capacity : int;  (** TCAM slots per shard *)
  batch : int;  (** ops per flush window *)
  seed : int;
}

type result = {
  service : Service.t;  (** final state, telemetry included *)
  submitted : int;
  applied : int;
  failed : int;  (** drain failures, push-time rejections included *)
  coalesced : int;
  flushes : int;
  retries : int;  (** supervisor retry rounds, summed over shards *)
  shed : int;  (** submits rejected behind open breakers *)
  breaker_opens : int;  (** circuit-breaker trips, summed over shards *)
  flush_wall_ms : Fr_switch.Measure.summary;
      (** wall-clock per {!Service.flush} call *)
}

val run :
  ?policy:Partition.policy ->
  ?algo:Fr_switch.Firmware.algo_kind ->
  ?verify:bool ->
  ?refresh_every:int ->
  ?resil:Service.resil ->
  ?journal:string ->
  ?configure:(Service.t -> unit) ->
  ?stop_after_flushes:int ->
  spec ->
  result
(** [configure] runs right after the service is built, before any op is
    submitted — the hook for installing fault plans.  [stop_after_flushes]
    abandons the stream at the flush that would follow the [n]th: the
    current window's ops stay queued (and, with [journal], journaled but
    uncommitted), which is exactly the suffix the CLI's crash simulation
    wants recovery to find.
    @raise Invalid_argument if the initial policy does not fit its
    shards. *)
