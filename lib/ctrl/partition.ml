module Rule = Fr_tern.Rule
module Ternary = Fr_tern.Ternary
module Header = Fr_tern.Header

type policy = Hash_id | Dst_prefix of int

let policy_to_string = function
  | Hash_id -> "hash"
  | Dst_prefix k -> Printf.sprintf "prefix:%d" k

let policy_of_string s =
  match String.lowercase_ascii s with
  | "hash" -> Some Hash_id
  | s when String.length s > 7 && String.sub s 0 7 = "prefix:" -> (
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some k when k >= 1 && k <= 32 -> Some (Dst_prefix k)
      | _ -> None)
  | _ -> None

type t = { shards : int; policy : policy }

let create ~shards policy =
  if shards < 1 then invalid_arg "Partition.create: shards < 1";
  (match policy with
  | Dst_prefix k when k < 1 || k > 32 ->
      invalid_arg "Partition.create: prefix length must be in 1..32"
  | _ -> ());
  { shards; policy }

let shards t = t.shards
let policy t = t.policy

(* splitmix64's finaliser: a full-avalanche mix so that dense sequential
   rule ids still spread uniformly over a handful of shards. *)
let mix id =
  let open Int64 in
  let z = of_int id in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  to_int (logand (logxor z (shift_right_logical z 31)) 0x3fffffffffffffffL)

let route_id t id = mix id mod t.shards

(* The top [k] bits of the 32-bit dst_ip field, if all of them are
   specified.  Bit 0 of a ternary string is the LSB, so "top k" means
   positions 31 .. 32-k. *)
let dst_prefix_value (rule : Rule.t) ~k =
  if Ternary.width rule.Rule.field <> Header.total_width then None
  else
  let dst = (Header.unpack rule.Rule.field).Header.dst_ip in
  let rec go i acc =
    if i < 32 - k then Some acc
    else
      match Ternary.get dst i with
      | Ternary.Zero -> go (i - 1) (acc * 2)
      | Ternary.One -> go (i - 1) ((acc * 2) + 1)
      | Ternary.Any -> None
  in
  go 31 0

let route_rule t (rule : Rule.t) =
  match t.policy with
  | Hash_id -> route_id t rule.Rule.id
  | Dst_prefix k -> (
      match dst_prefix_value rule ~k with
      | Some v -> v mod t.shards
      | None -> route_id t rule.Rule.id)

(* Rendezvous (highest-random-weight) pick over the healthy shards: each
   (key, shard) pair gets an independent mixed weight and the id goes to
   the admissible shard with the largest one.  Deterministic across runs,
   and when a shard heals only the ids that were diverted move — the
   weights of the others never changed.

   Under the prefix policy the weight is keyed by the rule's routing
   window (when [rule] is given and fully specified), not by its id:
   every rule of the same destination block then diverts to the {e same}
   fallback shard, so the colocation the policy bought — dependency
   chains staying local — survives the divert. *)
let rendezvous ?rule t ~healthy id =
  let key =
    match (t.policy, rule) with
    | Dst_prefix k, Some r -> (
        match dst_prefix_value r ~k with Some v -> v | None -> id)
    | (Hash_id | Dst_prefix _), _ -> id
  in
  let best = ref None in
  for s = 0 to t.shards - 1 do
    if healthy s then begin
      let w = mix (key + ((s + 1) * 0x9e3779b9)) in
      match !best with
      | Some (bw, _) when bw >= w -> ()
      | _ -> best := Some (w, s)
    end
  done;
  Option.map snd !best

module Overlay = struct
  type nonrec t = (int, int) Hashtbl.t

  let create () = Hashtbl.create 64
  let find t id = Hashtbl.find_opt t id
  let divert t ~id ~shard = Hashtbl.replace t id shard
  let settle t ~id = Hashtbl.remove t id
  let count t = Hashtbl.length t

  let bindings t =
    Hashtbl.fold (fun id shard acc -> (id, shard) :: acc) t []
    |> List.sort compare
end
