(** Per-shard control-plane telemetry.

    Every shard meters the quantities an operator (or a later
    load-balancing layer) needs to see where the firmware bottleneck
    lives: how much submitted work was folded away before it reached the
    scheduler, how long each drain spent in the two clocks the paper
    separates (firmware computation vs modelled TCAM write time), how
    many hardware ops and movements each drain cost, and how deep the
    queue ran.  Counters are plain monotonic ints; per-drain samples are
    kept whole ({!Fr_switch.Measure.Series}) so percentiles are exact,
    with log-bucketed histograms derived on demand for the dumps. *)

(** A minimal JSON value — enough for machine-readable dumps without an
    external dependency.  Serialisation is deterministic (fields print in
    construction order). *)
module Json : sig
  type v =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of v list
    | Obj of (string * v) list

  val to_string : v -> string
  (** Compact, valid JSON ([Float nan/inf] print as [null]). *)

  val of_summary : Fr_switch.Measure.summary -> v
  (** [{count, mean, min, max, p50, p95, p99}]. *)
end

type t

val create : unit -> t

(** {1 Recording (called by the shard)} *)

val record_submitted : t -> unit
val record_coalesced : t -> int -> unit
val record_rejected : t -> int -> unit

val record_drain :
  t ->
  queue_depth:int ->
  applied:int ->
  failed:int ->
  firmware_ms:float ->
  hardware_ms:float ->
  tcam_ops:int ->
  moves:int ->
  wall_ms:float ->
  unit
(** One drain's worth of accounting; the [*_ms] / op figures feed the
    per-drain series, the rest the counters. *)

(** {1 Recording (called by the supervisor, [Fr_resil] via {!Service})} *)

val record_retry : t -> ops:int -> backoff_ms:float -> unit
(** One retry round: how many transient casualties were re-driven and the
    modelled backoff delay charged before the round. *)

val record_shed : t -> unit
(** One submit rejected [Overloaded] while the shard was quarantined. *)

val record_breaker_open : t -> unit
val record_checkpoint : t -> unit
val set_breaker_state : t -> string -> unit

val record_diverted : t -> unit
(** A new rule id landed on this shard because its static home was
    quarantined (failover routing). *)

val record_rebalanced : t -> unit
(** A diverted id was drained back to this shard — its static home —
    after the home's breaker closed. *)

val record_restart : t -> unit
(** This shard absorbed a whole-shard restart fault and was re-adopted
    from its journal. *)

val record_slow_drain : t -> unit
(** A drain finished damage-free but over the supervisor's slow-call
    latency threshold. *)

val set_slow_threshold : t -> float -> unit
(** The per-op slow-call bound (ms) the supervisor judged the last drain
    against — a gauge, not a counter; [infinity] while the policy is off
    or the adaptive threshold is still warming up. *)

val set_dead_rows : t -> int -> unit
(** Gauge: rows this shard's {!Fr_tcam.Deadmap} condemns right now —
    refreshed by the service at the end of every flush. *)

val record_degraded_divert : t -> unit
(** A new rule id landed on this shard because its static home's
    effective capacity (capacity minus dead rows) was exhausted — the
    partial-degradation divert, also counted in {!diverted}. *)

val record_heal_probe : t -> probed:int -> recovered:int -> unit
(** One probe-drill pass over this shard's dead rows: [probed] rows were
    re-tested, [recovered] of them revived. *)

(** {1 Recording (called by the cache tier, [Fr_cache.Tier])}

    A tier keeps its own [Telemetry.t] for traffic-level accounting —
    separate from the per-shard instances, which keep metering the
    drains the tier's flushes cause. *)

val record_cache_hit : t -> unit
val record_cache_miss : t -> unit

val record_cache_admission : t -> rules:int -> unit
(** One admission of a whole closure: [rules] entries entered the
    target set; the closure size feeds {!cache_closure}. *)

val record_cache_eviction : t -> rules:int -> unit
(** One eviction decision: [rules] entries (victim groups, closed under
    dependents) left the target set. *)

val record_cache_admit_skip : t -> unit
(** An admission refused: the closure would not fit, or every victim
    group was as hot as the candidate (anti-thrash). *)

val record_cache_repair : t -> unit
(** A flush came back with casualties and the tier ran a repair pass. *)

val record_cache_flush : t -> inserts:int -> deletes:int -> unit
(** One maintenance round reached the hardware; the op counts feed
    {!cache_churn}. *)

(** {1 Reading} *)

val submitted : t -> int
val coalesced : t -> int
val rejected : t -> int
val applied : t -> int
val failed : t -> int
val drains : t -> int
val tcam_ops : t -> int
val moves : t -> int
val firmware_ms_total : t -> float
val hardware_ms_total : t -> float
val queue_depth_max : t -> int
val retries : t -> int
val retried_ops : t -> int
val backoff_ms_total : t -> float
val shed : t -> int
val breaker_opens : t -> int
val checkpoints : t -> int
val diverted : t -> int
val rebalanced : t -> int
val restarts : t -> int
val slow_drains : t -> int

val slow_threshold_ms : t -> float
(** Last value passed to {!set_slow_threshold}; [infinity] initially. *)

val dead_rows : t -> int
(** Last value passed to {!set_dead_rows}; [0] initially. *)

val degraded_diverted : t -> int
val heal_probes : t -> int
val rows_recovered : t -> int

val breaker_state : t -> string
(** Current breaker state name ("closed" when no supervisor runs). *)

val firmware_ms : t -> Fr_switch.Measure.summary
(** Per-drain firmware milliseconds. *)

val hardware_ms : t -> Fr_switch.Measure.summary
(** Per-drain modelled TCAM milliseconds. *)

val wall_ms : t -> Fr_switch.Measure.summary
(** Per-drain wall-clock milliseconds (firmware + simulator overhead). *)

val drain_ops : t -> Fr_switch.Measure.summary
(** Per-drain TCAM op counts (the paper's movement metric, per drain). *)

val cache_hits : t -> int
val cache_misses : t -> int

val cache_hit_rate : t -> float
(** Hits over (hits + misses); [0.] before any traffic. *)

val cache_admitted : t -> int
val cache_evicted : t -> int
val cache_admit_skips : t -> int
val cache_repairs : t -> int
val cache_flushes : t -> int

val cache_closure : t -> Fr_switch.Measure.summary
(** Admission-closure sizes (rules per admission). *)

val cache_churn : t -> Fr_switch.Measure.summary
(** Inserts + deletes per maintenance flush. *)

val hw_per_op_ms : t -> Fr_switch.Measure.summary
(** Modelled hardware milliseconds per TCAM op, one sample per non-empty
    drain.  This is the shard's own latency distribution: the adaptive
    slow-call threshold is its p99 times the service's [slow_factor].
    Modelled time, so the summary is deterministic for a given op
    stream. *)

type histogram = { bounds : float array; counts : int array }
(** [counts.(i)] samples fall in [(bounds.(i-1), bounds.(i)]] (the first
    bucket is [<= bounds.(0)], the last unbounded above). *)

val histogram : ?buckets:int -> float array -> histogram
(** Log2-spaced buckets spanning the samples' range. *)

val latency_histogram : t -> histogram
(** Histogram of per-drain wall milliseconds. *)

val moves_histogram : t -> histogram
(** Histogram of per-drain TCAM op counts. *)

val pp : Format.formatter -> t -> unit
(** The plain-text dump: counters one per line, then the two-clock
    summaries and the latency histogram. *)

val to_json : t -> Json.v
(** Everything above as one object (see doc/CTRL.md for the schema). *)
