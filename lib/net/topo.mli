(** Fleet topologies: switches, links and ports.

    A topology is the static wiring the network-wide planner works over:
    [n] switches (nodes [0 .. n-1]), an undirected link set, and a
    per-node port numbering.  Port [0] of every node is its {e host}
    port — a packet forwarded there leaves the fabric (delivery);
    ports [1 ..] lead to the node's neighbours in ascending node order,
    so the numbering (and therefore every rule the planner emits) is a
    pure function of the link set.

    Three seed shapes cover the classic consistency literature
    (line / ring / balanced binary tree); arbitrary link sets can be
    assembled with {!make_links} for tests. *)

type shape = Line | Ring | Tree

val shape_to_string : shape -> string
(** ["line"], ["ring"] or ["tree"]. *)

val shape_of_string : string -> shape option

type t

val make : shape -> int -> t
(** [make shape n] builds the canonical [n]-node instance: a path
    [0 - 1 - ... - n-1], that path closed into a cycle, or the balanced
    binary tree where node [i]'s children are [2i+1] and [2i+2].
    @raise Invalid_argument if [n < 2] (or [n < 3] for a ring). *)

val make_links : nodes:int -> (int * int) list -> t
(** An explicit link set (self-loops and duplicates rejected).
    @raise Invalid_argument on out-of-range endpoints. *)

val shape_name : t -> string
(** The canonical shape name when built by {!make}, ["custom"] after
    {!make_links}. *)

val nodes : t -> int

val links : t -> (int * int) list
(** Each undirected link once, [(u, v)] with [u < v], sorted. *)

val neighbors : t -> int -> int list
(** Ascending. *)

val host_port : int
(** [0] — the delivery port every node has. *)

val port_to : t -> src:int -> dst:int -> int option
(** The port on [src] whose far end is [dst]; [None] when not linked. *)

val next_hop : t -> node:int -> port:int -> int option
(** Where a [Forward port] action sends the packet next; [None] for the
    host port and for ports the node does not have. *)

val simple_paths : ?limit:int -> t -> src:int -> dst:int -> int list list
(** Every simple path from [src] to [dst] (each begins with [src] and
    ends with [dst]), in a deterministic order, capped at [limit]
    (default 16).  [src = dst] yields [[[src]]]. *)

val pp : Format.formatter -> t -> unit
