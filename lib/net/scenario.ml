module Rng = Fr_prng.Rng

type t = {
  topo : Topo.t;
  old_policy : Policy.t;
  new_policy : Policy.t;
  stamps : (int * int) list;
}

(* /16 roots at (i+1) << 16; every third flow is a /24 child nested in
   its predecessor's root prefix — the nesting is what puts real edges
   into the per-switch dependency graphs. *)
let prefix_for i =
  if i mod 3 = 2 then
    (Int64.of_int ((i lsl 16) lor (((i mod 7) + 1) lsl 8)), 24)
  else (Int64.of_int ((i + 1) lsl 16), 16)

let pick_path rng topo =
  let n = Topo.nodes topo in
  let src = Rng.int_in rng 0 (n - 1) in
  let dst = ref (Rng.int_in rng 0 (n - 1)) in
  while !dst = src do
    dst := Rng.int_in rng 0 (n - 1)
  done;
  Rng.pick_list rng (Topo.simple_paths topo ~src ~dst:!dst)

let with_waypoint rng enabled path =
  if enabled && List.length path >= 3 then
    (* any interior node preserves "never bypassed" non-trivially *)
    Some (List.nth path (1 + Rng.int rng (List.length path - 2)))
  else None

let make ?(flows = 6) ?(reroute = 2) ?(withdraw = 1) ?(introduce = 1)
    ?(waypoints = 2) ~seed topo =
  if flows < 1 then invalid_arg "Scenario.make: flows must be positive";
  let rng = Rng.create ~seed in
  let reroute = min reroute flows in
  let withdraw = min withdraw (flows - reroute) in
  let old_policy =
    List.init flows (fun i ->
        let dst_value, plen = prefix_for i in
        let path = pick_path rng topo in
        {
          Policy.flow_id = i;
          dst_value;
          plen;
          path;
          waypoint = with_waypoint rng (i < waypoints) path;
        })
  in
  let kept = List.filteri (fun i _ -> i < flows - withdraw) old_policy in
  let new_policy =
    List.map
      (fun (f : Policy.flow) ->
        if f.flow_id < reroute then begin
          (* a fresh endpoint pair (almost) always gives a genuinely
             different path, even on trees/lines where endpoint pairs
             determine the path uniquely *)
          let rec repick k =
            let path = pick_path rng topo in
            if path <> f.path || k = 0 then path else repick (k - 1)
          in
          let path = repick 8 in
          {
            f with
            path;
            waypoint = with_waypoint rng (f.flow_id < waypoints) path;
          }
        end
        else f)
      kept
  in
  let new_policy =
    new_policy
    @ List.init introduce (fun j ->
          let i = flows + j in
          let dst_value, plen = (Int64.of_int ((i + 1) lsl 16), 16) in
          let path = pick_path rng topo in
          {
            Policy.flow_id = i;
            dst_value;
            plen;
            path;
            waypoint = with_waypoint rng (j = 0 && waypoints > 0) path;
          })
  in
  let fail who = function
    | Error e -> invalid_arg (Printf.sprintf "Scenario.make: %s: %s" who e)
    | Ok () -> ()
  in
  fail "old policy" (Policy.check topo old_policy);
  fail "new policy" (Policy.check topo new_policy);
  {
    topo;
    old_policy;
    new_policy;
    stamps = List.map (fun (f : Policy.flow) -> (f.flow_id, 0)) old_policy;
  }

(* -- per-switch fault schedules ------------------------------------- *)

type node_fault =
  | Crash_at of { round : int; mid_flush : bool }
  | Slow_from of { round : int; slow_ms : float; heal_after : int }
  | Stuck_bank of { round : int; shard : int; rows : int list }

type fault_schedule = (int * node_fault list) list

let fault_to_string (node, f) =
  match f with
  | Crash_at { round; mid_flush } ->
      Printf.sprintf "%d:crash@%d%s" node round (if mid_flush then "+mid" else "")
  | Slow_from { round; slow_ms; heal_after } ->
      Printf.sprintf "%d:slow@%d=%gx%d" node round slow_ms heal_after
  | Stuck_bank { round; shard; rows } ->
      Printf.sprintf "%d:stuck@%d=%d:%s" node round shard
        (String.concat "+" (List.map string_of_int rows))

let fault_of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt s ':' with
  | None -> fail "fault %S: expected NODE:KIND@ROUND..." s
  | Some i -> (
      let node = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt node, String.index_opt rest '@') with
      | None, _ -> fail "fault %S: bad node %S" s node
      | _, None -> fail "fault %S: expected KIND@ROUND" s
      | Some node, Some j -> (
          let kind = String.sub rest 0 j in
          let arg = String.sub rest (j + 1) (String.length rest - j - 1) in
          match kind with
          | "crash" -> (
              let round, mid =
                match String.index_opt arg '+' with
                | Some k when String.sub arg (k + 1) (String.length arg - k - 1) = "mid"
                  ->
                    (String.sub arg 0 k, true)
                | _ -> (arg, false)
              in
              match int_of_string_opt round with
              | Some round when round >= 0 ->
                  Ok (node, Crash_at { round; mid_flush = mid })
              | _ -> fail "fault %S: bad crash round %S" s round)
          | "slow" -> (
              match String.index_opt arg '=' with
              | None -> fail "fault %S: expected slow@ROUND=MSxHEAL" s
              | Some k -> (
                  let round = String.sub arg 0 k in
                  let tail = String.sub arg (k + 1) (String.length arg - k - 1) in
                  let ms, heal =
                    match String.index_opt tail 'x' with
                    | Some l ->
                        ( String.sub tail 0 l,
                          String.sub tail (l + 1) (String.length tail - l - 1) )
                    | None -> (tail, "1")
                  in
                  match
                    (int_of_string_opt round, float_of_string_opt ms,
                     int_of_string_opt heal)
                  with
                  | Some round, Some ms, Some heal
                    when round >= 0 && ms > 0. && heal >= 1 ->
                      Ok (node, Slow_from { round; slow_ms = ms; heal_after = heal })
                  | _ -> fail "fault %S: bad slow spec %S" s arg))
          | "stuck" -> (
              match String.index_opt arg '=' with
              | None -> fail "fault %S: expected stuck@ROUND=SHARD:A+B" s
              | Some k -> (
                  let round = String.sub arg 0 k in
                  let tail = String.sub arg (k + 1) (String.length arg - k - 1) in
                  match String.index_opt tail ':' with
                  | None -> fail "fault %S: expected SHARD:A+B" s
                  | Some l -> (
                      let shard = String.sub tail 0 l in
                      let rows =
                        String.sub tail (l + 1) (String.length tail - l - 1)
                        |> String.split_on_char '+'
                        |> List.map int_of_string_opt
                      in
                      match
                        (int_of_string_opt round, int_of_string_opt shard)
                      with
                      | Some round, Some shard
                        when round >= 0 && shard >= 0
                             && rows <> []
                             && List.for_all
                                  (function Some r -> r >= 0 | None -> false)
                                  rows ->
                          Ok
                            ( node,
                              Stuck_bank
                                {
                                  round;
                                  shard;
                                  rows = List.filter_map Fun.id rows;
                                } )
                      | _ -> fail "fault %S: bad stuck spec %S" s arg)))
          | k -> fail "fault %S: unknown fault kind %S" s k))

let schedule_of_faults faults =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (node, f) ->
      Hashtbl.replace tbl node (f :: Option.value ~default:[] (Hashtbl.find_opt tbl node)))
    faults;
  Hashtbl.fold (fun node fs acc -> (node, List.rev fs) :: acc) tbl []
  |> List.sort compare

let chaos_faults ?(max_faults = 3) ?(shards = 2) ?(capacity = 64) ~seed ~rounds
    ~nodes () =
  if nodes < 1 then invalid_arg "Scenario.chaos_faults: nodes must be positive";
  let rng = Rng.create ~seed in
  let n_faults = 1 + Rng.int rng (max 1 max_faults) in
  let faults = ref [] in
  let has_crash node =
    List.exists
      (fun (n, f) -> n = node && match f with Crash_at _ -> true | _ -> false)
      !faults
  in
  for _ = 1 to n_faults do
    let node = Rng.int rng nodes in
    let round = Rng.int rng (max 1 rounds) in
    match Rng.int rng 3 with
    | 0 ->
        (* at most one crash per node: a second crash of the same switch
           inside one rollout adds nothing but double-recovery noise *)
        if not (has_crash node) then
          faults :=
            (node, Crash_at { round; mid_flush = Rng.bool rng }) :: !faults
    | 1 ->
        faults :=
          ( node,
            Slow_from
              {
                round;
                slow_ms = 200. +. float_of_int (Rng.int rng 400);
                heal_after = 2 + Rng.int rng 4;
              } )
          :: !faults
    | _ ->
        let base = Rng.int rng (max 1 (capacity / 2)) in
        faults :=
          ( node,
            Stuck_bank
              {
                round;
                shard = Rng.int rng (max 1 shards);
                rows = [ base; (base + 7) mod capacity ];
              } )
          :: !faults
  done;
  schedule_of_faults (List.rev !faults)

let plan ?batch t =
  Plan.make ?batch t.topo ~stamps:t.stamps ~old_policy:t.old_policy
    ~new_policy:t.new_policy

let pp ppf t =
  Format.fprintf ppf "%a: %d -> %d flows@." Topo.pp t.topo
    (List.length t.old_policy)
    (List.length t.new_policy);
  List.iter (fun f -> Format.fprintf ppf "  old %a@." Policy.pp_flow f) t.old_policy;
  List.iter (fun f -> Format.fprintf ppf "  new %a@." Policy.pp_flow f) t.new_policy
