module Rng = Fr_prng.Rng

type t = {
  topo : Topo.t;
  old_policy : Policy.t;
  new_policy : Policy.t;
  stamps : (int * int) list;
}

(* /16 roots at (i+1) << 16; every third flow is a /24 child nested in
   its predecessor's root prefix — the nesting is what puts real edges
   into the per-switch dependency graphs. *)
let prefix_for i =
  if i mod 3 = 2 then
    (Int64.of_int ((i lsl 16) lor (((i mod 7) + 1) lsl 8)), 24)
  else (Int64.of_int ((i + 1) lsl 16), 16)

let pick_path rng topo =
  let n = Topo.nodes topo in
  let src = Rng.int_in rng 0 (n - 1) in
  let dst = ref (Rng.int_in rng 0 (n - 1)) in
  while !dst = src do
    dst := Rng.int_in rng 0 (n - 1)
  done;
  Rng.pick_list rng (Topo.simple_paths topo ~src ~dst:!dst)

let with_waypoint rng enabled path =
  if enabled && List.length path >= 3 then
    (* any interior node preserves "never bypassed" non-trivially *)
    Some (List.nth path (1 + Rng.int rng (List.length path - 2)))
  else None

let make ?(flows = 6) ?(reroute = 2) ?(withdraw = 1) ?(introduce = 1)
    ?(waypoints = 2) ~seed topo =
  if flows < 1 then invalid_arg "Scenario.make: flows must be positive";
  let rng = Rng.create ~seed in
  let reroute = min reroute flows in
  let withdraw = min withdraw (flows - reroute) in
  let old_policy =
    List.init flows (fun i ->
        let dst_value, plen = prefix_for i in
        let path = pick_path rng topo in
        {
          Policy.flow_id = i;
          dst_value;
          plen;
          path;
          waypoint = with_waypoint rng (i < waypoints) path;
        })
  in
  let kept = List.filteri (fun i _ -> i < flows - withdraw) old_policy in
  let new_policy =
    List.map
      (fun (f : Policy.flow) ->
        if f.flow_id < reroute then begin
          (* a fresh endpoint pair (almost) always gives a genuinely
             different path, even on trees/lines where endpoint pairs
             determine the path uniquely *)
          let rec repick k =
            let path = pick_path rng topo in
            if path <> f.path || k = 0 then path else repick (k - 1)
          in
          let path = repick 8 in
          {
            f with
            path;
            waypoint = with_waypoint rng (f.flow_id < waypoints) path;
          }
        end
        else f)
      kept
  in
  let new_policy =
    new_policy
    @ List.init introduce (fun j ->
          let i = flows + j in
          let dst_value, plen = (Int64.of_int ((i + 1) lsl 16), 16) in
          let path = pick_path rng topo in
          {
            Policy.flow_id = i;
            dst_value;
            plen;
            path;
            waypoint = with_waypoint rng (j = 0 && waypoints > 0) path;
          })
  in
  let fail who = function
    | Error e -> invalid_arg (Printf.sprintf "Scenario.make: %s: %s" who e)
    | Ok () -> ()
  in
  fail "old policy" (Policy.check topo old_policy);
  fail "new policy" (Policy.check topo new_policy);
  {
    topo;
    old_policy;
    new_policy;
    stamps = List.map (fun (f : Policy.flow) -> (f.flow_id, 0)) old_policy;
  }

let plan ?batch t =
  Plan.make ?batch t.topo ~stamps:t.stamps ~old_policy:t.old_policy
    ~new_policy:t.new_policy

let pp ppf t =
  Format.fprintf ppf "%a: %d -> %d flows@." Topo.pp t.topo
    (List.length t.old_policy)
    (List.length t.new_policy);
  List.iter (fun f -> Format.fprintf ppf "  old %a@." Policy.pp_flow f) t.old_policy;
  List.iter (fun f -> Format.fprintf ppf "  new %a@." Policy.pp_flow f) t.new_policy
