(** A fleet: one {!Fr_ctrl.Service} per topology node, plus the rollout
    engine that drives a {!Plan} through them.

    Each switch in the topology is a {e full} control-plane service —
    its own shards, scheduler, TCAM models, journal and breaker
    machinery — so a fleet rollout exercises exactly the single-switch
    stack the rest of the repository proves correct, [n] times over.

    {b Rollout execution.}  {!execute} drives the plan round by round:
    submit every switch's batch, flush the touched services (fanned out
    over {!Fr_exec.Pool.shared} when [domains > 1], joined
    deterministically in node order — per-node journal bytes are
    bit-identical to the sequential path, same story as
    [Service.flush]), then apply the flip round's ingress-stamp changes
    one flow at a time.  With a [probe] callback the flushes run
    sequentially in node order and the callback fires after every
    node's flush and every individual stamp flip — those are precisely
    the reachable intermediate instants the conformance oracle checks.

    {b Durability.}  A journaled fleet owns a directory with one
    service journal per node plus a rollout log: the old/new policies,
    pre-rollout stamps and batch size are recorded when {!execute}
    starts (the plan itself is recomputed deterministically, never
    stored), and each round is bracketed by begin/commit markers.
    {!recover} rebuilds every node from its own journal, re-derives the
    plan and the committed-round prefix, and {!resume} re-drives the
    remainder idempotently — mods already accounted for (installed, or
    removed, before the crash) are skipped, so a crash between any two
    journal writes lands back on a consistent round boundary. *)

type t

val of_policy :
  ?kind:Fr_switch.Firmware.algo_kind ->
  ?shards:int ->
  ?capacity:int ->
  ?domains:int ->
  ?journal:string ->
  ?version_of:(Policy.flow -> int) ->
  Topo.t ->
  Policy.t ->
  t
(** A fleet with the policy pre-installed at each flow's [version_of]
    version (default all 0) and the stamps set to match.  Per node:
    [shards] (default 2) shards of [capacity] (default 64) TCAM slots.
    [domains] (default {!Fr_ctrl.Service.default_domains}) feeds both
    the fleet-level node fan-out and every node service.  [journal]
    names a fresh directory (one sub-journal per node).
    @raise Invalid_argument if the policy fails {!Policy.check} or the
    journal directory already holds a fleet. *)

val topo : t -> Topo.t
val kind_name : t -> string
val domains : t -> int
val journaled : t -> bool

val node : t -> int -> Fr_ctrl.Service.t
(** The switch's service.  @raise Invalid_argument out of range. *)

val stamps : t -> (int * int) list
(** Current ingress stamps, flow-id ascending. *)

val stamp : t -> int -> int option

val lookup : t -> int -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** Cross-shard lookup winner at one node (highest priority, ties to
    the lower id) — the fleet-level hop function. *)

val rules : t -> int -> Fr_tern.Rule.t list
(** A node's installed rules over all its shards, id-ascending. *)

(** {1 Rollouts} *)

type probe = t -> round:int -> where:string -> unit

type crash_mode =
  | Boundary  (** die cleanly between rounds *)
  | Mid_submit
      (** journal the next round's submissions, then die inside the
          flush (per-node begin markers, no commits) *)

type round_stat = {
  r_index : int;
  r_kind : Plan.kind;
  r_switches : int;
  r_mods : int;
  r_wall_ms : float;
}

type report = {
  completed : bool;  (** [false] only for crash-stopped runs *)
  rounds_run : int;  (** rounds committed by this call *)
  applied : int;
  failed : int;
  wall_ms : float;
  per_round : round_stat list;
}

val execute :
  ?probe:probe ->
  ?stop_after_rounds:int ->
  ?crash_mode:crash_mode ->
  t ->
  Plan.t ->
  report
(** Drive the plan to completion (or crash after [stop_after_rounds]
    committed rounds — journaled fleets only; the fleet must not be
    used afterwards, {!recover} from its directory instead).  Flip
    rounds update {!stamps} as they run.
    @raise Invalid_argument if the plan was built for a different
    topology, a crash is requested without a journal, or the fleet has
    already crashed. *)

(** {1 Crash recovery} *)

type recovery = {
  fleet : t;
  plan : Plan.t option;  (** the interrupted rollout, re-derived *)
  next_round : int;  (** first round not committed before the crash *)
  replayed_drains : int;
  replayed_mods : int;
  requeued : int;
  warnings : string list;
}

val recover :
  ?domains:int -> journal:string -> unit -> (recovery, string) result
(** Rebuild a fleet from its journal directory alone: every node via
    {!Fr_ctrl.Service.recover}, stamps from the rollout log's committed
    flips over its recorded baseline.  [plan = None] when no rollout
    was in flight. *)

val resume : ?probe:probe -> recovery -> report
(** Finish an interrupted rollout: flush each node's requeued intent,
    then re-drive every uncommitted round, skipping mods the crash-era
    journals already accounted for.  A no-op ([completed = true],
    [rounds_run = 0]) when there is nothing to resume. *)

val pp_report : Format.formatter -> report -> unit
