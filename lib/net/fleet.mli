(** A fleet: one {!Fr_ctrl.Service} per topology node, plus the rollout
    engine that drives a {!Plan} through them.

    Each switch in the topology is a {e full} control-plane service —
    its own shards, scheduler, TCAM models, journal and breaker
    machinery — so a fleet rollout exercises exactly the single-switch
    stack the rest of the repository proves correct, [n] times over.

    {b Rollout execution.}  {!execute} drives the plan round by round:
    submit every switch's batch, flush the touched services (fanned out
    over {!Fr_exec.Pool.shared} when [domains > 1], joined
    deterministically in node order — per-node journal bytes are
    bit-identical to the sequential path, same story as
    [Service.flush]), then apply the flip round's ingress-stamp changes
    one flow at a time.  With a [probe] callback the flushes run
    sequentially in node order and the callback fires after every
    node's flush and every individual stamp flip — those are precisely
    the reachable intermediate instants the conformance oracle checks.

    {b Supervision.}  With [faults] and/or [supervision], {!execute}
    runs the {!Fr_resil} breaker/backoff machinery one level up: each
    switch gets a per-round modelled deadline, jittered retries and a
    circuit breaker; a node whose control agent crashes is re-adopted
    from its own journal mid-rollout.  All supervision decisions run on
    {e modelled} time (summed drain [hardware_ms] plus the fault
    schedule's ack penalties), never the wall clock, so a supervised
    rollout is deterministic and domain-count-invariant.  When a round
    cannot complete within the [hold_budget], the {!hold} policy either
    parks the rollout (resumable) or aborts it with a compensating
    rollback.

    {b Rollback.}  An aborted rollout drives {!Plan.inverse} over the
    executed prefix: re-install what was uninstalled, re-flip flipped
    ingresses back per-flow-atomically, uninstall what was installed —
    every instant of the rollback is consistent w.r.t. the original
    plan, and the fleet lands byte-identically on the pre-rollout
    policy.  The rollback is journaled ([abort_begin] / [rbegin] /
    [rcommit] / [abort_done]), so a controller crash {e during} the
    rollback also recovers.

    {b Durability.}  A journaled fleet owns a directory with one
    service journal per node plus a rollout log: the old/new policies,
    pre-rollout stamps and batch size are recorded when {!execute}
    starts (the plan itself is recomputed deterministically, never
    stored), and each round is bracketed by begin/commit markers.
    {!recover} rebuilds every node from its own journal, re-derives the
    plan (or the in-flight inverse plan) and the committed-round
    prefix, and {!resume} re-drives the remainder idempotently — mods
    already accounted for (installed, or removed, before the crash) are
    skipped, so a crash between any two journal writes lands back on a
    consistent round boundary. *)

type t

val of_policy :
  ?kind:Fr_switch.Firmware.algo_kind ->
  ?shards:int ->
  ?capacity:int ->
  ?domains:int ->
  ?journal:string ->
  ?version_of:(Policy.flow -> int) ->
  Topo.t ->
  Policy.t ->
  t
(** A fleet with the policy pre-installed at each flow's [version_of]
    version (default all 0) and the stamps set to match.  Per node:
    [shards] (default 2) shards of [capacity] (default 64) TCAM slots.
    [domains] (default {!Fr_ctrl.Service.default_domains}) feeds both
    the fleet-level node fan-out and every node service.  [journal]
    names a fresh directory (one sub-journal per node).
    @raise Invalid_argument if the policy fails {!Policy.check} or the
    journal directory already holds a fleet. *)

val topo : t -> Topo.t
val kind_name : t -> string
val domains : t -> int
val journaled : t -> bool

val node : t -> int -> Fr_ctrl.Service.t
(** The switch's service.  @raise Invalid_argument out of range. *)

val stamps : t -> (int * int) list
(** Current ingress stamps, flow-id ascending. *)

val stamp : t -> int -> int option

val lookup : t -> int -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** Cross-shard lookup winner at one node (highest priority, ties to
    the lower id) — the fleet-level hop function. *)

val rules : t -> int -> Fr_tern.Rule.t list
(** A node's installed rules over all its shards, id-ascending. *)

val checkpoint : t -> unit
(** Checkpoint every node's service journal (compact WALs into rule
    snapshots).  Journaled fleets only (a no-op otherwise). *)

(** {1 Rollouts} *)

type probe = t -> round:int -> where:string -> unit

type crash_mode =
  | Boundary  (** die cleanly between rounds *)
  | Mid_submit
      (** journal the next round's submissions, then die inside the
          flush (per-node begin markers, no commits) *)

type hold =
  | Wait
      (** park the rollout at the failing round's begin marker; the
          journal stays resumable via {!recover}/{!resume} *)
  | Abort  (** compensating rollback to the pre-rollout policy *)

type supervision = {
  deadline_ms : float;
      (** per-node modelled deadline for one flush attempt (summed
          drain [hardware_ms] plus any active ack penalty); [infinity]
          disables timeouts *)
  retries : int;  (** extra attempts per node per supervision pass *)
  backoff_base_ms : float;
  backoff_factor : float;
  backoff_max_ms : float;
  backoff_jitter : float;
  breaker_threshold : int;  (** consecutive hard failures to quarantine *)
  breaker_slow_threshold : int;  (** consecutive timeouts to quarantine *)
  breaker_cooldown : int;  (** skipped passes before a half-open probe *)
  hold : hold;  (** what to do when [hold_budget] passes are exhausted *)
  hold_budget : int;  (** supervision passes per round before [hold] *)
  sup_seed : int;  (** seeds the per-node backoff jitter streams *)
}

val default_supervision : supervision
(** No deadline, 2 retries, 1→64 ms backoff (factor 2, jitter 0.2),
    breaker 2/2 with cooldown 1, [Wait] after 16 passes, seed 97. *)

type outcome =
  | Completed
  | Crashed  (** whole-controller crash drill ([stop_after_rounds]) *)
  | Held of int  (** parked at this round under [hold = Wait] *)
  | Aborted of { at_round : int; rolled_back : int }
      (** aborted at [at_round]; [rolled_back] compensating rounds
          committed — the fleet is back on the pre-rollout policy *)

type round_stat = {
  r_index : int;
  r_kind : Plan.kind;
  r_switches : int;
  r_mods : int;
  r_wall_ms : float;
}

type report = {
  completed : bool;  (** [outcome = Completed] *)
  outcome : outcome;
  rounds_run : int;  (** forward rounds committed by this call *)
  applied : int;
  failed : int;  (** unresolved mod failures (later successes clear) *)
  retried : int;  (** supervised per-node retry attempts *)
  quarantines : int;  (** breaker openings across nodes *)
  recovered : int;  (** node re-adoptions from their journals *)
  backoff_ms : float;  (** summed modelled backoff delay *)
  wall_ms : float;
  per_round : round_stat list;
      (** forward then (after an abort) compensating rounds *)
}

val execute :
  ?probe:probe ->
  ?stop_after_rounds:int ->
  ?stop_in_rollback:int ->
  ?crash_mode:crash_mode ->
  ?faults:Scenario.fault_schedule ->
  ?supervision:supervision ->
  ?abort_after_rounds:int ->
  t ->
  Plan.t ->
  report
(** Drive the plan to completion — or crash after [stop_after_rounds]
    committed rounds, or abort (operator-initiated) at the
    [abort_after_rounds] boundary and roll back.  Flip rounds update
    {!stamps} as they run.

    [faults] injects the schedule's per-switch crash / slow / stuck
    faults at their rounds; providing [faults] or [supervision] engages
    the supervised (sequential, modelled-time) round loop.  Crash
    faults and crash drills need a journaled fleet; after a
    whole-controller crash drill ([stop_after_rounds] /
    [stop_in_rollback], which stops the controller after that many
    {e compensating} rounds of an abort's rollback) the fleet must not
    be used — {!recover} from its directory instead.  At every other
    exit, including [Held] and [Aborted], crashed {e nodes} have been
    re-adopted and the fleet remains usable.
    @raise Invalid_argument if the plan was built for a different
    topology, a crash is requested without a journal, both
    [stop_after_rounds] and [abort_after_rounds] are given, or the
    fleet has already crashed. *)

(** {1 Crash recovery} *)

type recovery = {
  fleet : t;
  plan : Plan.t option;
      (** the interrupted rollout re-derived — the {e inverse} plan
          when the crash hit mid-rollback ([aborting]) *)
  next_round : int;  (** first round not committed before the crash *)
  aborting : bool;  (** the interrupted work is a compensating rollback *)
  replayed_drains : int;
  replayed_mods : int;
  requeued : int;
  warnings : string list;
}

val recover :
  ?domains:int -> journal:string -> unit -> (recovery, string) result
(** Rebuild a fleet from its journal directory alone: every node via
    {!Fr_ctrl.Service.recover}, stamps from the rollout log's committed
    (forward, then compensating) flips over its recorded baseline.
    [plan = None] when no rollout was in flight — including after a
    completed rollback ([abort_done]), which lands on the pre-rollout
    policy and stamps. *)

val resume : ?probe:probe -> recovery -> report
(** Finish an interrupted rollout (or rollback, when [aborting]): flush
    each node's requeued intent, then re-drive every uncommitted round,
    skipping mods the crash-era journals already accounted for.  A
    no-op ([completed = true], [rounds_run = 0]) when there is nothing
    to resume. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Offline journal inspection} *)

type rollout_stat = {
  rs_nodes : int;  (** topology nodes (per-node service journals) *)
  rs_stamped : int;  (** flows stamped in the recorded baseline *)
  rs_state : string;
      (** ["idle"], ["in-flight"], ["rolling-back"], ["completed"] or
          ["rolled-back"] *)
  rs_batch : int;  (** [0] when idle *)
  rs_old_flows : int;
  rs_new_flows : int;
  rs_begun : int;  (** forward rounds with a begin marker *)
  rs_committed : int;
  rs_rb_begun : int;  (** compensating rounds with an rbegin marker *)
  rs_rb_committed : int;
  rs_last_boundary : string;
      (** human description of the last consistent boundary the journal
          proves — where {!recover}/{!resume} would pick up *)
}

val is_fleet_journal : string -> bool
(** Does the directory hold fleet metadata ([fleet.meta])? *)

val rollout_stat : journal:string -> unit -> (rollout_stat, string) result
(** Read-only summary of a fleet journal tree's rollout log.  Nothing is
    recovered or modified. *)
