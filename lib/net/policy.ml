module Ternary = Fr_tern.Ternary
module Header = Fr_tern.Header
module Rule = Fr_tern.Rule
module Rng = Fr_prng.Rng

type flow = {
  flow_id : int;
  dst_value : int64;
  plen : int;
  path : int list;
  waypoint : int option;
}

type t = flow list

let ingress f = List.hd f.path
let egress f = List.nth f.path (List.length f.path - 1)

let ip_mask = 0xFFFF_FFFFL

let prefix_bits ~plen v =
  Int64.shift_right_logical (Int64.logand v ip_mask) (32 - plen)

let in_prefix ~plen ~value dst = prefix_bits ~plen value = prefix_bits ~plen dst

let dst_field f = Ternary.prefix_of_int64 ~width:32 ~plen:f.plen f.dst_value

let rule_id ~flow_id ~version = (2 * flow_id) + version
let flow_of_rule_id id = id lsr 1
let version_of_rule_id id = id land 1

let rule f ~version ~port =
  let field =
    Header.pack
      {
        src_ip = Ternary.any 32;
        dst_ip = dst_field f;
        src_port = Ternary.any 16;
        dst_port = Ternary.any 16;
        proto = Ternary.exact_of_int64 ~width:8 (Int64.of_int version);
      }
  in
  Rule.make
    ~id:(rule_id ~flow_id:f.flow_id ~version)
    ~field ~action:(Forward port) ~priority:f.plen

let hop_rules topo f ~version =
  let rec hops = function
    | [] -> []
    | [ last ] -> [ (last, rule f ~version ~port:Topo.host_port) ]
    | u :: (v :: _ as rest) -> (
        match Topo.port_to topo ~src:u ~dst:v with
        | None ->
            invalid_arg
              (Printf.sprintf "Policy.hop_rules: flow %d hops %d -> %d unlinked"
                 f.flow_id u v)
        | Some port -> (u, rule f ~version ~port) :: hops rest)
  in
  hops f.path

let stamp_packet (pkt : Header.packet) ~version = { pkt with p_proto = version }

let packet_for ?(tries = 64) rng ~all f =
  let suffix_width = 32 - f.plen in
  let suffix_mask =
    if suffix_width = 0 then 0L
    else Int64.sub (Int64.shift_left 1L suffix_width) 1L
  in
  let base = Int64.logand f.dst_value (Int64.logxor ip_mask suffix_mask) in
  let longer =
    List.filter (fun g -> g.plen > f.plen) all
  in
  let rec attempt k =
    if k <= 0 then None
    else
      let dst = Int64.logor base (Int64.logand (Rng.bits64 rng) suffix_mask) in
      if List.exists (fun g -> in_prefix ~plen:g.plen ~value:g.dst_value dst) longer
      then attempt (k - 1)
      else
        Some
          {
            Header.p_src_ip = Int64.logand (Rng.bits64 rng) ip_mask;
            p_dst_ip = dst;
            p_src_port = Rng.int_in rng 0 65535;
            p_dst_port = Rng.int_in rng 0 65535;
            p_proto = 0;
          }
  in
  attempt tries

let winner all (pkt : Header.packet) =
  List.fold_left
    (fun best g ->
      if in_prefix ~plen:g.plen ~value:g.dst_value pkt.Header.p_dst_ip then
        match best with
        | Some b when b.plen > g.plen -> best
        | Some b when b.plen = g.plen && b.flow_id < g.flow_id -> best
        | _ -> Some g
      else best)
    None all

let find all id = List.find_opt (fun f -> f.flow_id = id) all

let check topo policy =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec each = function
    | [] -> Ok ()
    | f :: rest ->
        let* () =
          if f.flow_id < 0 then err "flow id %d negative" f.flow_id else Ok ()
        in
        let* () =
          if f.plen < 1 || f.plen > 32 then
            err "flow %d: plen %d out of 1..32" f.flow_id f.plen
          else Ok ()
        in
        let* () =
          if List.length f.path < 2 then
            err "flow %d: path shorter than 2 hops" f.flow_id
          else Ok ()
        in
        let* () =
          if
            List.exists (fun u -> u < 0 || u >= Topo.nodes topo) f.path
          then err "flow %d: path node out of range" f.flow_id
          else Ok ()
        in
        let* () =
          if List.length (List.sort_uniq compare f.path) <> List.length f.path
          then err "flow %d: path is not simple" f.flow_id
          else Ok ()
        in
        let rec linked = function
          | u :: (v :: _ as more) ->
              if Topo.port_to topo ~src:u ~dst:v = None then
                err "flow %d: hop %d -> %d is not a link" f.flow_id u v
              else linked more
          | _ -> Ok ()
        in
        let* () = linked f.path in
        let* () =
          match f.waypoint with
          | Some w when not (List.mem w f.path) ->
              err "flow %d: waypoint %d not on path" f.flow_id w
          | _ -> Ok ()
        in
        let* () =
          match
            List.find_opt
              (fun g ->
                g != f
                && (g.flow_id = f.flow_id
                   || (g.plen = f.plen
                      && prefix_bits ~plen:f.plen g.dst_value
                         = prefix_bits ~plen:f.plen f.dst_value)))
              policy
          with
          | Some g ->
              if g.flow_id = f.flow_id then err "duplicate flow id %d" f.flow_id
              else
                err "flows %d and %d share prefix %Ld/%d" f.flow_id g.flow_id
                  f.dst_value f.plen
          | None -> Ok ()
        in
        each rest
  in
  each policy

let pp_flow ppf f =
  Format.fprintf ppf "flow %d dst=%Ld/%d path=[%s]%s" f.flow_id f.dst_value
    f.plen
    (String.concat "-" (List.map string_of_int f.path))
    (match f.waypoint with
    | None -> ""
    | Some w -> Printf.sprintf " via %d" w)
