(** Seeded rollout scenarios: a topology plus an old → new policy diff.

    One seed determines everything — the flow prefixes (a mix of /16
    roots and /24 children nested inside them, so the per-switch
    dependency graphs have real edges), the paths, the waypoints, and
    which flows the new policy reroutes, withdraws or introduces.  The
    CLI, the bench sweep and the conformance oracle all build their
    fixtures here, so a failing seed reproduces everywhere. *)

type t = {
  topo : Topo.t;
  old_policy : Policy.t;
  new_policy : Policy.t;
  stamps : (int * int) list;  (** every old flow at version 0 *)
}

val make :
  ?flows:int ->
  ?reroute:int ->
  ?withdraw:int ->
  ?introduce:int ->
  ?waypoints:int ->
  seed:int ->
  Topo.t ->
  t
(** Defaults: 6 flows, 2 rerouted, 1 withdrawn, 1 introduced, 2 flows
    carrying waypoints.  [reroute + withdraw] is clamped to [flows].
    Both policies satisfy {!Policy.check} by construction. *)

val plan : ?batch:int -> t -> (Plan.t, string) result
(** Convenience: {!Plan.make} over the scenario's pieces. *)

(** {1 Per-switch fault schedules}

    A rollout's adversary: which switches fail, how, and when.  The
    schedule is interpreted by {!Fleet.execute} — rounds are the
    fleet's clock, so every fault is anchored to a round index. *)

type node_fault =
  | Crash_at of { round : int; mid_flush : bool }
      (** The switch's control agent dies at this round — at the round
          boundary, or (with [mid_flush]) after journaling the round's
          submissions, inside the flush.  The data plane keeps
          forwarding its last installed state (OpenFlow
          fail-standalone); the supervisor re-adopts the node from its
          journal.  Needs a journaled fleet. *)
  | Slow_from of { round : int; slow_ms : float; heal_after : int }
      (** From this round the node acks late: [slow_ms] modelled ms are
          billed per flush attempt (and per hardware op) until
          [heal_after] timed-out attempts have elapsed. *)
  | Stuck_bank of { round : int; shard : int; rows : int list }
      (** From this round the shard's TCAM rows are stuck-at-write
          (PR 8 degraded-hardware machinery): writes there fail until
          the dead-row discovery relocates around them.  Permanent —
          hardware does not heal. *)

type fault_schedule = (int * node_fault list) list
(** [(node, faults)] pairs, node-ascending. *)

val fault_to_string : int * node_fault -> string
(** ["2:crash@3+mid"], ["0:slow@1=250x3"], ["1:stuck@0=1:5+12"]. *)

val fault_of_string : string -> (int * node_fault, string) result
(** Parse the {!fault_to_string} form ([NODE:KIND@ROUND...]). *)

val schedule_of_faults : (int * node_fault) list -> fault_schedule
(** Group a flat fault list into a node-ascending schedule, preserving
    each node's fault order. *)

val chaos_faults :
  ?max_faults:int ->
  ?shards:int ->
  ?capacity:int ->
  seed:int ->
  rounds:int ->
  nodes:int ->
  unit ->
  fault_schedule
(** A seeded random schedule of 1 to [max_faults] (default 3) faults:
    uniformly mixed crash / slow / stuck faults at uniformly random
    rounds and nodes, at most one crash per node.  [shards] (default 2)
    and [capacity] (default 64) bound the stuck banks to addresses the
    fleet's shards actually have. *)

val pp : Format.formatter -> t -> unit
