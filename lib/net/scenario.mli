(** Seeded rollout scenarios: a topology plus an old → new policy diff.

    One seed determines everything — the flow prefixes (a mix of /16
    roots and /24 children nested inside them, so the per-switch
    dependency graphs have real edges), the paths, the waypoints, and
    which flows the new policy reroutes, withdraws or introduces.  The
    CLI, the bench sweep and the conformance oracle all build their
    fixtures here, so a failing seed reproduces everywhere. *)

type t = {
  topo : Topo.t;
  old_policy : Policy.t;
  new_policy : Policy.t;
  stamps : (int * int) list;  (** every old flow at version 0 *)
}

val make :
  ?flows:int ->
  ?reroute:int ->
  ?withdraw:int ->
  ?introduce:int ->
  ?waypoints:int ->
  seed:int ->
  Topo.t ->
  t
(** Defaults: 6 flows, 2 rerouted, 1 withdrawn, 1 introduced, 2 flows
    carrying waypoints.  [reroute + withdraw] is clamped to [flows].
    Both policies satisfy {!Policy.check} by construction. *)

val plan : ?batch:int -> t -> (Plan.t, string) result
(** Convenience: {!Plan.make} over the scenario's pieces. *)

val pp : Format.formatter -> t -> unit
