(** The network-wide consistent update planner.

    Given a topology, the fleet's current per-flow version stamps and an
    old → new policy pair, {!make} emits an ordered sequence of
    per-switch {e rounds} implementing the classic two-phase protocol
    (Reitblatt et al.; ordered-round refinements per Černý et al. and
    Henzinger et al., see PAPERS.md):

    + {b Install} rounds add the new version's rules on every hop of
      each changed or introduced flow's new path.  No stamped packet can
      match them yet, so any prefix of these rounds is consistent.
    + One {b Flip} round moves the ingress stamps: changed flows to the
      complement version, introduced flows to version 0, withdrawn flows
      to "no stamp" (traffic stops).  Each flow's flip is atomic (one
      ingress), so even mid-round instants are consistent — every packet
      is stamped either the whole old or the whole new version.
    + {b Uninstall} rounds remove the superseded version's rules from
      the old paths.  No packet carries that stamp any more.

    Rounds are batched: a round touches each switch with at most
    [batch] flow-mods, and every mod is placed in the earliest round
    whose switch still has room — so rounds × batch bounds the
    per-switch TCAM-update burst while keeping the round count minimal
    for the given batch. *)

type kind = Install | Flip | Uninstall

val kind_to_string : kind -> string

type round = {
  index : int;  (** position in the rollout, from 0 *)
  kind : kind;
  batches : (int * Fr_switch.Agent.flow_mod list) list;
      (** per-switch mods, node-ascending; each list has <= batch mods *)
  stamp_changes : (int * int option) list;
      (** flip round only: flow id -> new stamp ([None] withdraws),
          flow-id ascending.  Applied one flow at a time; every prefix
          is a reachable (and consistent) instant. *)
}

type t

val make :
  ?batch:int ->
  Topo.t ->
  stamps:(int * int) list ->
  old_policy:Policy.t ->
  new_policy:Policy.t ->
  (t, string) result
(** Plan the rollout.  [stamps] must give a version (0 or 1) for exactly
    the flows of [old_policy]; [batch] (default 8) must be positive.
    Fails when either policy is structurally invalid (see
    {!Policy.check}). *)

val topo : t -> Topo.t
val old_policy : t -> Policy.t
val new_policy : t -> Policy.t
val batch : t -> int
val rounds : t -> round list
val num_rounds : t -> int

val stamps_before : t -> (int * int) list
(** The input stamps, flow-id ascending. *)

val stamps_after : t -> (int * int) list
(** Per-flow versions once every round has been applied. *)

val total_mods : t -> int

val inverse : ?upto:int -> t -> t
(** The compensating rollback for the prefix of rounds with
    [index < upto] (default: every round): re-install the old-version
    rules that prefix uninstalled (recomputed from the old policy, so
    they are byte-identical to the pre-rollout state), re-flip every
    flipped ingress back to its {!stamps_before} version (introduced
    flows back to "no stamp"), then remove the new-version rules the
    prefix installed — in that order, so every instant of the rollback
    is itself consistent w.r.t. the original plan's expectations.
    Driving the result lands the fleet exactly on the pre-rollout
    policy: the inverse's {!stamps_after} is the original's
    {!stamps_before}.

    The inverse is an {e executable} plan (rounds, batches, flips), not
    a re-plannable one — its old/new policy fields are the original's
    swapped for bookkeeping only.  When the prefix ends in a partially
    applied round, include that round in [upto] and execute the inverse
    idempotently: compensation mods for never-applied work are already
    accounted for and skip. *)

val touched : round -> int
(** Number of switches the round sends mods to. *)

val round_mods : round -> int

val pp : Format.formatter -> t -> unit
