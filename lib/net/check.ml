module Agent = Fr_switch.Agent
module Rule = Fr_tern.Rule
module Header = Fr_tern.Header
module Rng = Fr_prng.Rng

module Model = struct
  type t = { topo : Topo.t; tables : (int, Rule.t) Hashtbl.t array }

  let create topo =
    { topo; tables = Array.init (Topo.nodes topo) (fun _ -> Hashtbl.create 32) }

  let table t node =
    if node < 0 || node >= Array.length t.tables then
      invalid_arg "Check.Model: node out of range";
    t.tables.(node)

  let apply t node (m : Agent.flow_mod) =
    let tbl = table t node in
    match m with
    | Add r ->
        if Hashtbl.mem tbl r.id then
          invalid_arg
            (Printf.sprintf "Check.Model: duplicate add of rule %d at node %d"
               r.id node);
        Hashtbl.replace tbl r.id r
    | Set_action { id; action } -> (
        match Hashtbl.find_opt tbl id with
        | None ->
            invalid_arg
              (Printf.sprintf "Check.Model: set_action of missing rule %d" id)
        | Some r -> Hashtbl.replace tbl id { r with action })
    | Remove { id } ->
        if not (Hashtbl.mem tbl id) then
          invalid_arg
            (Printf.sprintf "Check.Model: remove of missing rule %d at node %d"
               id node);
        Hashtbl.remove tbl id

  let lookup t node pkt =
    Hashtbl.fold
      (fun _ (r : Rule.t) best ->
        if Rule.matches_packet r pkt then
          match best with
          | Some (b : Rule.t)
            when b.priority > r.priority
                 || (b.priority = r.priority && b.id < r.id) ->
              best
          | _ -> Some r
        else best)
      (table t node) None

  let rules t node =
    Hashtbl.fold (fun _ r acc -> r :: acc) (table t node) []
    |> List.sort (fun (a : Rule.t) b -> compare a.id b.id)

  let of_policy topo ~version_of policy =
    let t = create topo in
    List.iter
      (fun f ->
        List.iter
          (fun (node, r) -> apply t node (Agent.Add r))
          (Policy.hop_rules topo f ~version:(version_of f)))
      policy;
    t
end

type outcome = Delivered of int | Dropped of int | Missing of int | Looped

let outcome_to_string = function
  | Delivered n -> Printf.sprintf "delivered@%d" n
  | Dropped n -> Printf.sprintf "dropped@%d" n
  | Missing n -> Printf.sprintf "no-rule@%d" n
  | Looped -> "looped"

let trace topo ~lookup ~ingress pkt =
  let budget = (2 * Topo.nodes topo) + 2 in
  let rec walk node visited fuel =
    let visited = node :: visited in
    if fuel <= 0 then (List.rev visited, Looped)
    else
      match lookup node pkt with
      | None -> (List.rev visited, Missing node)
      | Some (r : Rule.t) -> (
          match r.action with
          | Drop | Controller -> (List.rev visited, Dropped node)
          | Forward port -> (
              if port = Topo.host_port then (List.rev visited, Delivered node)
              else
                match Topo.next_hop topo ~node ~port with
                | None -> (List.rev visited, Missing node)
                | Some next -> walk next visited (fuel - 1)))
  in
  walk ingress [] budget

let expectations plan =
  let stamps = Plan.stamps_before plan in
  let old_p = Plan.old_policy plan and new_p = Plan.new_policy plan in
  let olds =
    List.map
      (fun (f : Policy.flow) -> ((f.flow_id, List.assoc f.flow_id stamps), f))
      old_p
  in
  let news =
    List.filter_map
      (fun (f : Policy.flow) ->
        match List.assoc_opt f.flow_id (Plan.stamps_after plan) with
        | Some v when not (List.mem_assoc (f.flow_id, v) olds) ->
            Some ((f.flow_id, v), f)
        | _ -> None)
      new_p
  in
  olds @ news

let consistent ?(samples = 2) ~rng plan ~stamps ~lookup ~where =
  let topo = Plan.topo plan in
  let expects = expectations plan in
  let space = Plan.old_policy plan @ Plan.new_policy plan in
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun ((fid, version), (f : Policy.flow)) ->
      if stamps fid = Some version then
        for _ = 1 to samples do
          match Policy.packet_for rng ~all:space f with
          | None -> () (* prefix saturated by nested prefixes; skip *)
          | Some pkt ->
              let pkt = Policy.stamp_packet pkt ~version in
              let visited, outcome =
                trace topo ~lookup ~ingress:(Policy.ingress f) pkt
              in
              if visited <> f.path then
                bad
                  "%s: flow %d v%d took [%s], configured [%s] (%s)" where fid
                  version
                  (String.concat "-" (List.map string_of_int visited))
                  (String.concat "-" (List.map string_of_int f.path))
                  (outcome_to_string outcome)
              else begin
                (match outcome with
                | Delivered n when n = Policy.egress f -> ()
                | o ->
                    bad "%s: flow %d v%d ended %s, expected delivery at %d"
                      where fid version (outcome_to_string o) (Policy.egress f));
                match f.waypoint with
                | Some w when not (List.mem w visited) ->
                    bad "%s: flow %d v%d bypassed waypoint %d" where fid version
                      w
                | _ -> ()
              end
        done)
    expects;
  List.rev !violations

let check_plan ?(samples = 2) ?(seed = 7) plan =
  let topo = Plan.topo plan in
  let rng = Rng.create ~seed in
  let stamp_tbl = Hashtbl.create 16 in
  List.iter
    (fun (fid, v) -> Hashtbl.replace stamp_tbl fid v)
    (Plan.stamps_before plan);
  let model =
    Model.of_policy topo
      ~version_of:(fun f ->
        List.assoc f.flow_id (Plan.stamps_before plan))
      (Plan.old_policy plan)
  in
  let violations = ref [] in
  let probe where =
    violations :=
      !violations
      @ consistent ~samples ~rng plan
          ~stamps:(Hashtbl.find_opt stamp_tbl)
          ~lookup:(Model.lookup model) ~where
  in
  probe "initial";
  List.iter
    (fun (r : Plan.round) ->
      List.iter
        (fun (node, mods) ->
          List.iter (Model.apply model node) mods;
          probe (Printf.sprintf "round %d after node %d" r.index node))
        r.batches;
      List.iter
        (fun (fid, v) ->
          (match v with
          | Some v -> Hashtbl.replace stamp_tbl fid v
          | None -> Hashtbl.remove stamp_tbl fid);
          probe (Printf.sprintf "round %d after flip of flow %d" r.index fid))
        r.stamp_changes)
    (Plan.rounds plan);
  probe "final";
  let reference =
    Model.of_policy topo
      ~version_of:(fun f -> List.assoc f.flow_id (Plan.stamps_after plan))
      (Plan.new_policy plan)
  in
  for node = 0 to Topo.nodes topo - 1 do
    let got = Model.rules model node and want = Model.rules reference node in
    if got <> want then
      violations :=
        !violations
        @ [
            Printf.sprintf
              "final: node %d holds %d rules [%s], reference %d [%s]" node
              (List.length got)
              (String.concat ","
                 (List.map (fun (r : Rule.t) -> string_of_int r.id) got))
              (List.length want)
              (String.concat ","
                 (List.map (fun (r : Rule.t) -> string_of_int r.id) want));
          ]
  done;
  match !violations with [] -> Ok () | vs -> Error vs
