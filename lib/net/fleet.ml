module Rule = Fr_tern.Rule
module Header = Fr_tern.Header
module Agent = Fr_switch.Agent
module Firmware = Fr_switch.Firmware
module Measure = Fr_switch.Measure
module Service = Fr_ctrl.Service
module Shard = Fr_ctrl.Shard
module Journal = Fr_resil.Journal
module Breaker = Fr_resil.Breaker
module Backoff = Fr_resil.Backoff
module Fault = Fr_tcam.Fault
module Rng = Fr_prng.Rng
module Pool = Fr_exec.Pool

type t = {
  topo : Topo.t;
  kind : Firmware.algo_kind;
  domains : int;
  services : Service.t array;
  stamps : (int, int) Hashtbl.t;
  journal : string option;
  mutable log : out_channel option;
  mutable crashed : bool;
}

let meta_file dir = Filename.concat dir "fleet.meta"
let rollout_file dir = Filename.concat dir "rollout.log"
let node_dir dir i = Filename.concat dir (Printf.sprintf "node-%d" i)

(* ------------------------------------------------------------------ *)
(* Line codecs for the fleet metadata and the rollout log.             *)

let flow_to_line (f : Policy.flow) =
  Printf.sprintf "%d %Ld %d %s %s" f.flow_id f.dst_value f.plen
    (String.concat "," (List.map string_of_int f.path))
    (match f.waypoint with None -> "-" | Some w -> string_of_int w)

let flow_of_line line =
  match String.split_on_char ' ' line with
  | [ id; dst; plen; path; wp ] -> (
      try
        Some
          {
            Policy.flow_id = int_of_string id;
            dst_value = Int64.of_string dst;
            plen = int_of_string plen;
            path = List.map int_of_string (String.split_on_char ',' path);
            waypoint = (if wp = "-" then None else Some (int_of_string wp));
          }
      with _ -> None)
  | _ -> None

let write_meta dir t =
  let oc = open_out (meta_file dir) in
  Printf.fprintf oc "fleet 1\n";
  Printf.fprintf oc "topo %s %d\n" (Topo.shape_name t.topo) (Topo.nodes t.topo);
  List.iter (fun (u, v) -> Printf.fprintf oc "link %d %d\n" u v) (Topo.links t.topo);
  Printf.fprintf oc "kind %s\n" (Firmware.algo_kind_name t.kind);
  Hashtbl.fold (fun fid v acc -> (fid, v) :: acc) t.stamps []
  |> List.sort compare
  |> List.iter (fun (fid, v) -> Printf.fprintf oc "stamp %d %d\n" fid v);
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let read_meta dir =
  let path = meta_file dir in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no fleet metadata at %s" path)
  else
    let lines = read_lines path in
    let nodes = ref 0
    and shape = ref "custom"
    and links = ref []
    and kind = ref None
    and stamps = ref [] in
    let bad = ref None in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "fleet"; _ ] -> ()
        | [ "topo"; name; n ] ->
            shape := name;
            nodes := int_of_string n
        | [ "link"; u; v ] ->
            links := (int_of_string u, int_of_string v) :: !links
        | [ "kind"; k ] -> kind := Firmware.algo_kind_of_string k
        | [ "stamp"; fid; v ] ->
            stamps := (int_of_string fid, int_of_string v) :: !stamps
        | _ -> bad := Some line)
      lines;
    match !bad with
    | Some line -> Error ("malformed fleet.meta line: " ^ line)
    | None -> (
        match !kind with
        | None -> Error "fleet.meta: missing or unknown kind"
        | Some kind ->
            let topo =
              match Topo.shape_of_string !shape with
              | Some s -> Topo.make s !nodes
              | None -> Topo.make_links ~nodes:!nodes (List.rev !links)
            in
            Ok (topo, kind, List.sort compare !stamps))

type rollout_state = {
  ro_batch : int;
  ro_old : Policy.t;
  ro_new : Policy.t;
  ro_stamps : (int * int) list;
  ro_begun : int list;  (** ascending *)
  ro_committed : int list;  (** ascending *)
  ro_done : bool;
  ro_abort : int option;  (** [abort_begin]'s round prefix bound *)
  ro_rb_begun : int list;  (** begun rollback rounds, ascending *)
  ro_rb_committed : int list;  (** committed rollback rounds, ascending *)
  ro_aborted : bool;  (** [abort_done] seen — rollback finished *)
}

let read_rollout dir =
  let path = rollout_file dir in
  if not (Sys.file_exists path) then Ok None
  else
    let lines = read_lines path in
    let batch = ref 0
    and old_p = ref []
    and new_p = ref []
    and stamps = ref []
    and begun = ref []
    and committed = ref []
    and finished = ref false
    and abort = ref None
    and rb_begun = ref []
    and rb_committed = ref []
    and aborted = ref false
    and bad = ref None in
    List.iter
      (fun line ->
        let flow_tail prefix =
          String.sub line (String.length prefix)
            (String.length line - String.length prefix)
        in
        if line = "plan" || line = "done" || line = "abort_done" then begin
          if line = "done" then finished := true;
          if line = "abort_done" then aborted := true
        end
        else if String.length line > 4 && String.sub line 0 4 = "old " then (
          match flow_of_line (flow_tail "old ") with
          | Some f -> old_p := f :: !old_p
          | None -> bad := Some line)
        else if String.length line > 4 && String.sub line 0 4 = "new " then (
          match flow_of_line (flow_tail "new ") with
          | Some f -> new_p := f :: !new_p
          | None -> bad := Some line)
        else
          match String.split_on_char ' ' line with
          | [ "rollout"; b ] -> (
              match String.split_on_char '=' b with
              | [ "batch"; n ] -> batch := int_of_string n
              | _ -> bad := Some line)
          | [ "stamp"; fid; v ] ->
              stamps := (int_of_string fid, int_of_string v) :: !stamps
          | [ "begin"; k ] -> begun := int_of_string k :: !begun
          | [ "rbegin"; k ] -> rb_begun := int_of_string k :: !rb_begun
          | [ "commit"; k ] -> committed := int_of_string k :: !committed
          | [ "rcommit"; k ] -> rb_committed := int_of_string k :: !rb_committed
          | [ "abort_begin"; k ] -> abort := Some (int_of_string k)
          | _ -> bad := Some line)
      lines;
    match !bad with
    | Some line -> Error ("malformed rollout.log line: " ^ line)
    | None ->
        Ok
          (Some
             {
               ro_batch = !batch;
               ro_old = List.rev !old_p;
               ro_new = List.rev !new_p;
               ro_stamps = List.sort compare !stamps;
               ro_begun = List.sort compare !begun;
               ro_committed = List.sort compare !committed;
               ro_done = !finished;
               ro_abort = !abort;
               ro_rb_begun = List.sort compare !rb_begun;
               ro_rb_committed = List.sort compare !rb_committed;
               ro_aborted = !aborted;
             })

(* ------------------------------------------------------------------ *)
(* Construction and accessors.                                         *)

let ensure_alive t =
  if t.crashed then invalid_arg "Fleet: fleet used after simulated crash"

let of_policy ?(kind = Firmware.FR_O Fr_sched.Store.Bit_backend) ?(shards = 2)
    ?(capacity = 64) ?domains ?journal ?(version_of = fun _ -> 0) topo policy =
  (match Policy.check topo policy with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fleet.of_policy: " ^ e));
  let domains =
    match domains with Some d -> d | None -> Service.default_domains ()
  in
  (match journal with
  | None -> ()
  | Some dir ->
      Journal.ensure_dir dir;
      if Sys.file_exists (meta_file dir) then
        invalid_arg
          "Fleet.of_policy: journal directory already holds a fleet — recover \
           from it instead");
  let n = Topo.nodes topo in
  let per_node = Array.make n [] in
  List.iter
    (fun f ->
      List.iter
        (fun (node, r) -> per_node.(node) <- r :: per_node.(node))
        (Policy.hop_rules topo f ~version:(version_of f)))
    policy;
  let services =
    Array.init n (fun i ->
        Service.of_rules ~kind
          ?journal:(Option.map (fun d -> node_dir d i) journal)
          ~domains ~shards ~capacity
          (Array.of_list (List.rev per_node.(i))))
  in
  let stamps = Hashtbl.create 16 in
  List.iter
    (fun (f : Policy.flow) -> Hashtbl.replace stamps f.flow_id (version_of f))
    policy;
  let t =
    { topo; kind; domains; services; stamps; journal; log = None; crashed = false }
  in
  Option.iter (fun dir -> write_meta dir t) journal;
  t

let topo t = t.topo
let kind_name t = Firmware.algo_kind_name t.kind
let domains t = t.domains
let journaled t = t.journal <> None

let node t i =
  if i < 0 || i >= Array.length t.services then
    invalid_arg "Fleet.node: out of range";
  t.services.(i)

let stamps t =
  Hashtbl.fold (fun fid v acc -> (fid, v) :: acc) t.stamps []
  |> List.sort compare

let stamp t fid = Hashtbl.find_opt t.stamps fid

(* Cross-shard winner at one node — same total order as
   [Agent.semantic_lookup] within a shard. *)
let lookup t i pkt =
  let svc = node t i in
  let best = ref None in
  for s = 0 to Service.shards svc - 1 do
    match Agent.lookup (Shard.agent (Service.shard svc s)) pkt with
    | None -> ()
    | Some (r : Rule.t) -> (
        match !best with
        | Some (b : Rule.t)
          when b.priority > r.priority
               || (b.priority = r.priority && b.id < r.id) ->
            ()
        | _ -> best := Some r)
  done;
  !best

let rules t i =
  let svc = node t i in
  let acc = ref [] in
  for s = 0 to Service.shards svc - 1 do
    acc := Agent.rules (Shard.agent (Service.shard svc s)) @ !acc
  done;
  List.sort (fun (a : Rule.t) b -> compare a.id b.id) !acc

(* ------------------------------------------------------------------ *)
(* Rollouts.                                                           *)

type probe = t -> round:int -> where:string -> unit
type crash_mode = Boundary | Mid_submit

type hold = Wait | Abort

type supervision = {
  deadline_ms : float;
  retries : int;
  backoff_base_ms : float;
  backoff_factor : float;
  backoff_max_ms : float;
  backoff_jitter : float;
  breaker_threshold : int;
  breaker_slow_threshold : int;
  breaker_cooldown : int;
  hold : hold;
  hold_budget : int;
  sup_seed : int;
}

let default_supervision =
  {
    deadline_ms = infinity;
    retries = 2;
    backoff_base_ms = 1.0;
    backoff_factor = 2.0;
    backoff_max_ms = 64.0;
    backoff_jitter = 0.2;
    breaker_threshold = 2;
    breaker_slow_threshold = 2;
    breaker_cooldown = 1;
    hold = Wait;
    hold_budget = 16;
    sup_seed = 97;
  }

type outcome =
  | Completed
  | Crashed
  | Held of int
  | Aborted of { at_round : int; rolled_back : int }

type round_stat = {
  r_index : int;
  r_kind : Plan.kind;
  r_switches : int;
  r_mods : int;
  r_wall_ms : float;
}

type report = {
  completed : bool;
  outcome : outcome;
  rounds_run : int;
  applied : int;
  failed : int;
  retried : int;
  quarantines : int;
  recovered : int;
  backoff_ms : float;
  wall_ms : float;
  per_round : round_stat list;
}

let log_line t fmt =
  Printf.ksprintf
    (fun s ->
      match t.log with
      | None -> ()
      | Some oc ->
          output_string oc (s ^ "\n");
          flush oc)
    fmt

let close_log t =
  match t.log with
  | None -> ()
  | Some oc ->
      close_out oc;
      t.log <- None

let open_rollout t plan =
  match t.journal with
  | None -> ()
  | Some dir ->
      t.log <- Some (open_out (rollout_file dir));
      log_line t "rollout batch=%d" (Plan.batch plan);
      List.iter
        (fun f -> log_line t "old %s" (flow_to_line f))
        (Plan.old_policy plan);
      List.iter
        (fun f -> log_line t "new %s" (flow_to_line f))
        (Plan.new_policy plan);
      List.iter
        (fun (fid, v) -> log_line t "stamp %d %d" fid v)
        (Plan.stamps_before plan);
      log_line t "plan"

(* Has the crash-era journal already accounted for this mod?  Only
   meaningful after every node flushed its requeued intent. *)
let accounted t node (m : Agent.flow_mod) =
  match m with
  | Add r -> Service.find_rule t.services.(node) r.id <> None
  | Remove { id } -> Service.find_rule t.services.(node) id = None
  | Set_action _ -> false

let apply_round ?probe ~idempotent t (r : Plan.round) =
  let applied = ref 0 and failed = ref 0 in
  let (), wall_ms =
    Measure.time_ms (fun () ->
        let batches =
          if not idempotent then r.batches
          else
            List.filter_map
              (fun (node, mods) ->
                match
                  List.filter (fun m -> not (accounted t node m)) mods
                with
                | [] -> None
                | ms -> Some (node, ms))
              r.batches
        in
        List.iter
          (fun (node, mods) -> Service.submit_all t.services.(node) mods)
          batches;
        let flush_node n =
          let rep = Service.flush t.services.(n) in
          (Service.applied rep, List.length (Service.failures rep))
        in
        let touched = List.map fst batches in
        (match probe with
        | Some p ->
            (* Sequential node order: the callback observes every
               per-node flush boundary as a reachable instant. *)
            List.iter
              (fun n ->
                let a, f = flush_node n in
                applied := !applied + a;
                failed := !failed + f;
                p t ~round:r.index
                  ~where:(Printf.sprintf "round %d after node %d" r.index n))
              touched
        | None ->
            if t.domains > 1 && List.length touched > 1 then begin
              let pool =
                Pool.shared ~workers:(min (t.domains - 1) (List.length touched))
              in
              let joined =
                Pool.run_all pool
                  (Array.of_list
                     (List.map (fun n () -> flush_node n) touched))
              in
              (* Deterministic join in node order; first failure wins. *)
              Array.iter
                (function
                  | Ok (a, f) ->
                      applied := !applied + a;
                      failed := !failed + f
                  | Error _ -> ())
                joined;
              Array.iter
                (function Error e -> raise e | Ok _ -> ())
                joined
            end
            else
              List.iter
                (fun n ->
                  let a, f = flush_node n in
                  applied := !applied + a;
                  failed := !failed + f)
                touched);
        List.iter
          (fun (fid, v) ->
            (match v with
            | Some v -> Hashtbl.replace t.stamps fid v
            | None -> Hashtbl.remove t.stamps fid);
            Option.iter
              (fun p ->
                p t ~round:r.index
                  ~where:
                    (Printf.sprintf "round %d after flip of flow %d" r.index
                       fid))
              probe)
          r.stamp_changes)
  in
  {
    r_index = r.index;
    r_kind = r.kind;
    r_switches = Plan.touched r;
    r_mods = Plan.round_mods r;
    r_wall_ms = wall_ms;
  },
  !applied,
  !failed

let crash t ~mid (r : Plan.round) =
  if mid then
    List.iter
      (fun (node, mods) -> Service.submit_all t.services.(node) mods)
      r.batches;
  Array.iter (fun s -> Service.simulate_crash ~mid_drain:mid s) t.services;
  close_log t;
  t.crashed <- true

(* ------------------------------------------------------------------ *)
(* Per-node supervision: the Fr_resil breaker/backoff machinery, one
   level up — the fleet is to its switches what a service is to its
   shards.  All decisions run on modelled time (drain hardware_ms plus
   the fault schedule's ack penalties), never the wall clock, so a
   supervised rollout is bit-deterministic and domain-count-invariant. *)

type node_sup = {
  breaker : Breaker.t;
  backoff : Backoff.t;
  mutable crash_pending : (int * bool) option;  (* round, mid_flush *)
  mutable slow_sched : (int * float * int) list;
  mutable stuck_sched : (int * int * int list) list;
  mutable active_slow : (float * int) option;  (* ack penalty, heals left *)
  mutable stuck_rows : (int * int list) list;  (* shard -> stuck addresses *)
  mutable down : bool;  (* control agent dead, awaiting re-adoption *)
}

type sup = {
  cfg : supervision;
  mutable hold_now : hold;  (* rollback forces Wait *)
  mutable budget_now : int;
  nodes : node_sup array;
  mutable s_retried : int;
  mutable s_quarantines : int;
  mutable s_recovered : int;
  mutable s_backoff_ms : float;
}

exception Abort_requested of int
exception Parked of int

let make_sup cfg (faults : Scenario.fault_schedule) n =
  let rng = Rng.create ~seed:cfg.sup_seed in
  (* one split jitter stream per node, node order — independent of both
     the fault schedule and the domain count *)
  let nodes =
    Array.init n (fun _ ->
        {
          breaker =
            Breaker.create ~threshold:cfg.breaker_threshold
              ~slow_threshold:cfg.breaker_slow_threshold
              ~cooldown:cfg.breaker_cooldown ();
          backoff =
            Backoff.create ~base_ms:cfg.backoff_base_ms
              ~factor:cfg.backoff_factor ~max_ms:cfg.backoff_max_ms
              ~jitter:cfg.backoff_jitter ~rng:(Rng.split rng) ~seed:0 ();
          crash_pending = None;
          slow_sched = [];
          stuck_sched = [];
          active_slow = None;
          stuck_rows = [];
          down = false;
        })
  in
  List.iter
    (fun (node, fs) ->
      if node < 0 || node >= n then
        invalid_arg "Fleet: fault schedule names a node outside the topology";
      let ns = nodes.(node) in
      List.iter
        (function
          | Scenario.Crash_at { round; mid_flush } ->
              if ns.crash_pending <> None then
                invalid_arg
                  (Printf.sprintf "Fleet: node %d has two crash faults" node);
              ns.crash_pending <- Some (round, mid_flush)
          | Scenario.Slow_from { round; slow_ms; heal_after } ->
              ns.slow_sched <- ns.slow_sched @ [ (round, slow_ms, heal_after) ]
          | Scenario.Stuck_bank { round; shard; rows } ->
              ns.stuck_sched <- ns.stuck_sched @ [ (round, shard, rows) ])
        fs)
    faults;
  {
    cfg;
    hold_now = cfg.hold;
    budget_now = cfg.hold_budget;
    nodes;
    s_retried = 0;
    s_quarantines = 0;
    s_recovered = 0;
    s_backoff_ms = 0.;
  }

let modelled_flush_ms (rep : Service.flush_report) =
  Array.fold_left
    (fun acc (d : Shard.drain_result) -> acc +. d.Shard.hardware_ms)
    0. rep.Service.results

(* (Re)build each shard's fault plan from the node's active slow / stuck
   state.  Also called after a node recovery: fault plans are volatile,
   the hardware's stuck rows are not. *)
let set_node_faults t sup node =
  let ns = sup.nodes.(node) in
  let svc = t.services.(node) in
  let slow = match ns.active_slow with Some (ms, _) -> ms | None -> 0. in
  for s = 0 to Service.shards svc - 1 do
    let stuck =
      match List.assoc_opt s ns.stuck_rows with Some r -> r | None -> []
    in
    let f =
      if stuck = [] && slow = 0. then None
      else
        Some
          (Fault.create ~stuck ~slow_ms:slow
             ~seed:(sup.cfg.sup_seed + (node * 97) + s)
             ())
    in
    Service.set_fault svc ~shard:s f
  done

let recover_node t sup ~applied node =
  let dir =
    match t.journal with
    | Some dir -> dir
    | None -> invalid_arg "Fleet: node crash faults need a journaled fleet"
  in
  match Service.recover ~domains:t.domains ~journal:(node_dir dir node) () with
  | Error e ->
      invalid_arg (Printf.sprintf "Fleet: node %d recovery failed: %s" node e)
  | Ok (r : Service.recovery) ->
      t.services.(node) <- r.service;
      sup.nodes.(node).down <- false;
      sup.s_recovered <- sup.s_recovered + 1;
      set_node_faults t sup node;
      (* crash-era requeued intent first, so the accounted-mod filter
         sees the true installed state before any resubmission *)
      if Service.pending r.service > 0 then begin
        let rep = Service.flush r.service in
        applied := !applied + Service.applied rep
      end

let heal_down t sup ~applied =
  Array.iteri
    (fun node ns -> if ns.down then recover_node t sup ~applied node)
    sup.nodes

(* Engage the faults whose round has come.  Boundary crashes fire here;
   a mid-flush crash on a switch the round does not touch degrades to a
   boundary crash (there is no flush to die inside). *)
let activate_faults t sup ~round ~touched =
  Array.iteri
    (fun node ns ->
      let changed = ref false in
      let due, later =
        List.partition (fun (rd, _, _) -> rd <= round) ns.slow_sched
      in
      ns.slow_sched <- later;
      (match (due, ns.active_slow) with
      | (_, ms, heal) :: _, None ->
          ns.active_slow <- Some (ms, heal);
          changed := true
      | _ -> ());
      let due, later =
        List.partition (fun (rd, _, _) -> rd <= round) ns.stuck_sched
      in
      ns.stuck_sched <- later;
      List.iter
        (fun (_, shard, rows) ->
          let have =
            match List.assoc_opt shard ns.stuck_rows with
            | Some r -> r
            | None -> []
          in
          let merged =
            List.sort_uniq compare (have @ rows)
          in
          ns.stuck_rows <- (shard, merged) :: List.remove_assoc shard ns.stuck_rows;
          changed := true)
        due;
      if !changed then set_node_faults t sup node;
      match ns.crash_pending with
      | Some (rd, mid) when rd <= round && ((not mid) || not (List.mem node touched))
        ->
          ns.crash_pending <- None;
          if not ns.down then begin
            Service.simulate_crash t.services.(node);
            ns.down <- true
          end
      | _ -> ())
    sup.nodes

(* One supervised application of a node's round batch: up to
   [1 + retries] attempts with jittered (modelled) backoff between them.
   An attempt fails on flush failures or on busting the per-node
   modelled deadline; a scheduled mid-flush crash consumes the attempt
   (submissions journaled, no commit) and the next attempt re-adopts the
   node from its journal.  Returns whether the batch landed and whether
   the last miss was a pure timeout. *)
let attempt_node ?probe t sup ~applied ~unresolved (r : Plan.round) node mods =
  let ns = sup.nodes.(node) in
  let attempts = 1 + max 0 sup.cfg.retries in
  let slow_only = ref false in
  let bill_retry attempt =
    sup.s_retried <- sup.s_retried + 1;
    sup.s_backoff_ms <- sup.s_backoff_ms +. Backoff.delay_ms ns.backoff ~attempt
  in
  let heal_tick () =
    match ns.active_slow with
    | Some (_, left) when left <= 1 ->
        ns.active_slow <- None;
        set_node_faults t sup node
    | Some (ms, left) -> ns.active_slow <- Some (ms, left - 1)
    | None -> ()
  in
  let rec go attempt =
    if ns.down then recover_node t sup ~applied node;
    match ns.crash_pending with
    | Some (rd, true) when rd <= r.index ->
        ns.crash_pending <- None;
        let todo = List.filter (fun m -> not (accounted t node m)) mods in
        Service.submit_all t.services.(node) todo;
        Service.simulate_crash ~mid_drain:true t.services.(node);
        ns.down <- true;
        slow_only := false;
        Option.iter
          (fun p ->
            p t ~round:r.index
              ~where:
                (Printf.sprintf "round %d node %d crashed mid-flush" r.index
                   node))
          probe;
        if attempt < attempts then begin
          bill_retry attempt;
          go (attempt + 1)
        end
        else false
    | _ ->
        let todo = List.filter (fun m -> not (accounted t node m)) mods in
        if todo <> [] then Service.submit_all t.services.(node) todo;
        let rep = Service.flush t.services.(node) in
        applied := !applied + Service.applied rep;
        let fails = List.length (Service.failures rep) in
        let ms =
          modelled_flush_ms rep
          +. (match ns.active_slow with Some (s, _) -> s | None -> 0.)
        in
        let timed_out = ms > sup.cfg.deadline_ms in
        if timed_out then heal_tick ();
        if fails = 0 && not timed_out then true
        else begin
          slow_only := fails = 0;
          Hashtbl.replace unresolved node fails;
          Option.iter
            (fun p ->
              p t ~round:r.index
                ~where:
                  (Printf.sprintf "round %d node %d attempt %d %s" r.index node
                     attempt
                     (if fails = 0 then "timed out" else "failed")))
            probe;
          if attempt < attempts then begin
            bill_retry attempt;
            go (attempt + 1)
          end
          else false
        end
  in
  let ok = go 1 in
  (ok, !slow_only)

(* The supervised round loop.  Nodes run sequentially in node order
   (supervision decisions are ordered; the per-node services still use
   their own domains), and a node that exhausts its attempts goes
   through its breaker: enough consecutive misses quarantine it, skipped
   passes cool it down, a half-open pass probes it.  When the round
   still cannot complete after [hold_budget] passes the hold policy
   decides: [Wait] parks the rollout at the round's begin marker
   (resumable), [Abort] raises for the compensating rollback. *)
let apply_round_supervised ?probe t sup ~applied ~failed (r : Plan.round) =
  let unresolved = Hashtbl.create 4 in
  let (), wall_ms =
    Measure.time_ms (fun () ->
        let touched = List.map fst r.batches in
        activate_faults t sup ~round:r.index ~touched;
        let pending =
          ref
            (List.filter_map
               (fun (node, mods) ->
                 match
                   List.filter (fun m -> not (accounted t node m)) mods
                 with
                 | [] -> None
                 | ms -> Some (node, ms))
               r.batches)
        in
        let passes = ref 0 in
        while !pending <> [] do
          let still = ref [] in
          List.iter
            (fun (node, mods) ->
              let ns = sup.nodes.(node) in
              if Breaker.admits ns.breaker then begin
                let opens0 = Breaker.opens ns.breaker in
                let ok, slow_only =
                  attempt_node ?probe t sup ~applied ~unresolved r node mods
                in
                if ok then begin
                  Breaker.note_success ns.breaker;
                  Hashtbl.remove unresolved node;
                  Option.iter
                    (fun p ->
                      p t ~round:r.index
                        ~where:
                          (Printf.sprintf "round %d after node %d" r.index
                             node))
                    probe
                end
                else begin
                  if slow_only then Breaker.note_slow ns.breaker
                  else Breaker.note_failure ns.breaker;
                  if Breaker.opens ns.breaker > opens0 then
                    sup.s_quarantines <- sup.s_quarantines + 1;
                  still := (node, mods) :: !still
                end
              end
              else begin
                Breaker.note_skipped ns.breaker;
                still := (node, mods) :: !still
              end)
            !pending;
          pending := List.rev !still;
          if !pending <> [] then begin
            incr passes;
            if !passes >= sup.budget_now then begin
              Hashtbl.iter (fun _ f -> failed := !failed + f) unresolved;
              match sup.hold_now with
              | Wait -> raise (Parked r.index)
              | Abort -> raise (Abort_requested r.index)
            end
          end
        done;
        List.iter
          (fun (fid, v) ->
            (match v with
            | Some v -> Hashtbl.replace t.stamps fid v
            | None -> Hashtbl.remove t.stamps fid);
            Option.iter
              (fun p ->
                p t ~round:r.index
                  ~where:
                    (Printf.sprintf "round %d after flip of flow %d" r.index
                       fid))
              probe)
          r.stamp_changes)
  in
  {
    r_index = r.index;
    r_kind = r.kind;
    r_switches = Plan.touched r;
    r_mods = Plan.round_mods r;
    r_wall_ms = wall_ms;
  }

let drive ?probe ?sup ~idempotent ?(markers = ("begin", "commit")) ~finalize t
    rounds =
  let mark_begin, mark_commit = markers in
  let per_round = ref [] in
  let applied = ref 0
  and failed = ref 0
  and rounds_run = ref 0 in
  let outcome = ref Completed in
  let (), wall_ms =
    Measure.time_ms (fun () ->
        (try
           List.iter
             (fun (r : Plan.round) ->
               if t.crashed then raise Exit;
               log_line t "%s %d" mark_begin r.index;
               let stat =
                 match sup with
                 | None ->
                     let stat, a, f = apply_round ?probe ~idempotent t r in
                     applied := !applied + a;
                     failed := !failed + f;
                     stat
                 | Some s ->
                     apply_round_supervised ?probe t s ~applied ~failed r
               in
               per_round := stat :: !per_round;
               log_line t "%s %d" mark_commit r.index;
               incr rounds_run;
               Option.iter
                 (fun p ->
                   p t ~round:r.index
                     ~where:(Printf.sprintf "round %d committed" r.index))
                 probe)
             rounds
         with
        | Exit -> outcome := Crashed
        | Parked k ->
            outcome := Held k;
            close_log t
        | Abort_requested k ->
            (* leave the log open: the rollback appends to it *)
            outcome := Aborted { at_round = k; rolled_back = 0 });
        if !outcome = Completed then
          match finalize with
          | Some token ->
              log_line t "%s" token;
              close_log t
          | None -> ())
  in
  {
    completed = !outcome = Completed;
    outcome = !outcome;
    rounds_run = !rounds_run;
    applied = !applied;
    failed = !failed;
    retried = 0;
    quarantines = 0;
    recovered = 0;
    backoff_ms = 0.;
    wall_ms;
    per_round = List.rev !per_round;
  }

let has_crash_fault faults =
  List.exists
    (fun (_, fs) ->
      List.exists
        (function Scenario.Crash_at _ -> true | _ -> false)
        fs)
    faults

let execute ?probe ?stop_after_rounds ?stop_in_rollback
    ?(crash_mode = Boundary) ?faults ?supervision ?abort_after_rounds t plan =
  ensure_alive t;
  if Topo.nodes (Plan.topo plan) <> Topo.nodes t.topo then
    invalid_arg "Fleet.execute: plan topology does not match the fleet";
  (match (stop_after_rounds, abort_after_rounds) with
  | Some _, Some _ ->
      invalid_arg
        "Fleet.execute: stop_after_rounds and abort_after_rounds are exclusive"
  | _ -> ());
  (match (stop_after_rounds, stop_in_rollback) with
  | (Some _ | None), Some _ when t.journal = None ->
      invalid_arg "Fleet.execute: crash drills need a journaled fleet"
  | Some _, _ when t.journal = None ->
      invalid_arg "Fleet.execute: crash drills need a journaled fleet"
  | _ -> ());
  let sup =
    match (faults, supervision) with
    | None, None -> None
    | fs, cfg ->
        let fs = Option.value fs ~default:[] in
        if t.journal = None && has_crash_fault fs then
          invalid_arg "Fleet.execute: crash faults need a journaled fleet";
        Some
          (make_sup
             (Option.value cfg ~default:default_supervision)
             fs
             (Array.length t.services))
  in
  open_rollout t plan;
  let rounds = Plan.rounds plan in
  let finish rep =
    match sup with
    | None -> rep
    | Some s ->
        {
          rep with
          retried = s.s_retried;
          quarantines = s.s_quarantines;
          recovered = s.s_recovered;
          backoff_ms = s.s_backoff_ms;
        }
  in
  (* Compensating rollback: synthesize the inverse of the executed
     prefix and drive it idempotently (never-applied work is already
     accounted for and skips), under a Wait-mode supervisor so healing
     faults cannot wedge the compensation itself.  Journaled as
     abort_begin / rbegin / rcommit / abort_done — a controller crash
     anywhere inside recovers through {!recover}/{!resume}. *)
  let run_rollback forward ~at_round ~upto =
    let healed = ref 0 in
    Option.iter (fun s -> heal_down t s ~applied:healed) sup;
    log_line t "abort_begin %d" upto;
    Option.iter
      (fun s ->
        s.hold_now <- Wait;
        s.budget_now <- max s.cfg.hold_budget 64)
      sup;
    let inv = Plan.inverse ~upto plan in
    let inv_rounds = Plan.rounds inv in
    let merge rb ~outcome =
      finish
        {
          rb with
          completed = outcome = Completed;
          outcome;
          rounds_run = forward.rounds_run;
          applied = forward.applied + rb.applied + !healed;
          failed = forward.failed + rb.failed;
          per_round = forward.per_round @ rb.per_round;
        }
    in
    match stop_in_rollback with
    | Some j when j < List.length inv_rounds ->
        let before, rest =
          List.partition (fun (r : Plan.round) -> r.index < j) inv_rounds
        in
        let rb =
          drive ?probe ?sup ~idempotent:true ~markers:("rbegin", "rcommit")
            ~finalize:None t before
        in
        crash t ~mid:(crash_mode = Mid_submit) (List.hd rest);
        merge rb ~outcome:Crashed
    | _ ->
        let rb =
          drive ?probe ?sup ~idempotent:true ~markers:("rbegin", "rcommit")
            ~finalize:(Some "abort_done") t inv_rounds
        in
        merge rb
          ~outcome:(Aborted { at_round; rolled_back = rb.rounds_run })
  in
  match stop_after_rounds with
  | Some k ->
      let before, rest =
        List.partition (fun (r : Plan.round) -> r.index < k) rounds
      in
      let report =
        drive ?probe ?sup ~idempotent:false
          ~finalize:(if rest = [] then Some "done" else None)
          t before
      in
      if rest = [] then finish report
      else begin
        crash t ~mid:(crash_mode = Mid_submit) (List.hd rest);
        finish { report with completed = false; outcome = Crashed }
      end
  | None -> (
      match abort_after_rounds with
      | Some k when k < List.length rounds ->
          let before, _ =
            List.partition (fun (r : Plan.round) -> r.index < k) rounds
          in
          let rep =
            drive ?probe ?sup ~idempotent:false ~finalize:None t before
          in
          (match rep.outcome with
          | Completed -> run_rollback rep ~at_round:k ~upto:k
          | Aborted { at_round; _ } ->
              run_rollback rep ~at_round ~upto:(at_round + 1)
          | Crashed | Held _ -> finish rep)
      | _ -> (
          let rep =
            drive ?probe ?sup ~idempotent:false ~finalize:(Some "done") t
              rounds
          in
          match rep.outcome with
          | Aborted { at_round; _ } ->
              run_rollback rep ~at_round ~upto:(at_round + 1)
          | Completed | Held _ ->
              let healed = ref 0 in
              Option.iter (fun s -> heal_down t s ~applied:healed) sup;
              finish { rep with applied = rep.applied + !healed }
          | Crashed -> finish rep))

(* ------------------------------------------------------------------ *)
(* Recovery.                                                           *)

type recovery = {
  fleet : t;
  plan : Plan.t option;
  next_round : int;
  aborting : bool;
  replayed_drains : int;
  replayed_mods : int;
  requeued : int;
  warnings : string list;
}

let recover ?domains ~journal () =
  let ( let* ) = Result.bind in
  let* topo, kind, meta_stamps = read_meta journal in
  let domains_v =
    match domains with Some d -> d | None -> Service.default_domains ()
  in
  let n = Topo.nodes topo in
  let services = Array.make n None in
  let replayed_drains = ref 0
  and replayed_mods = ref 0
  and requeued = ref 0
  and warnings = ref [] in
  let rec recover_nodes i =
    if i >= n then Ok ()
    else
      match Service.recover ?domains ~journal:(node_dir journal i) () with
      | Error e -> Error (Printf.sprintf "node %d: %s" i e)
      | Ok (r : Service.recovery) ->
          services.(i) <- Some r.service;
          replayed_drains := !replayed_drains + r.replayed_drains;
          replayed_mods := !replayed_mods + r.replayed_mods;
          requeued := !requeued + r.requeued;
          warnings :=
            !warnings
            @ List.map (Printf.sprintf "node %d: %s" i) r.warnings;
          recover_nodes (i + 1)
  in
  let* () = recover_nodes 0 in
  let services = Array.map Option.get services in
  let* ro = read_rollout journal in
  let stamps = Hashtbl.create 16 in
  let load_stamps pairs =
    Hashtbl.reset stamps;
    List.iter (fun (fid, v) -> Hashtbl.replace stamps fid v) pairs
  in
  load_stamps meta_stamps;
  let replay_flips plan ~below =
    List.iter
      (fun (r : Plan.round) ->
        if r.index < below then
          List.iter
            (fun (fid, v) ->
              match v with
              | Some v -> Hashtbl.replace stamps fid v
              | None -> Hashtbl.remove stamps fid)
            r.stamp_changes)
      (Plan.rounds plan)
  in
  let next_of committed =
    match List.rev committed with [] -> 0 | k :: _ -> k + 1
  in
  let* plan, next_round, aborting =
    match ro with
    | None -> Ok (None, 0, false)
    | Some ro -> (
        load_stamps ro.ro_stamps;
        if ro.ro_aborted then
          (* rollback finished: the fleet is back on the pre-rollout
             policy, and the pre-rollout stamps are already loaded *)
          Ok (None, 0, false)
        else
          match
            Plan.make ~batch:ro.ro_batch topo ~stamps:ro.ro_stamps
              ~old_policy:ro.ro_old ~new_policy:ro.ro_new
          with
          | Error e -> Error ("cannot re-derive interrupted plan: " ^ e)
          | Ok plan ->
              if ro.ro_done then begin
                load_stamps (Plan.stamps_after plan);
                Ok (None, 0, false)
              end
              else begin
                (* Re-apply the flips of every committed forward round. *)
                replay_flips plan ~below:(next_of ro.ro_committed);
                match ro.ro_abort with
                | None -> Ok (Some plan, next_of ro.ro_committed, false)
                | Some upto ->
                    (* the controller died mid-rollback: resynthesize the
                       same inverse and pick up at the next inverse round *)
                    let inv = Plan.inverse ~upto plan in
                    let next_rb = next_of ro.ro_rb_committed in
                    replay_flips inv ~below:next_rb;
                    Ok (Some inv, next_rb, true)
              end)
  in
  let fleet =
    {
      topo;
      kind;
      domains = domains_v;
      services;
      stamps;
      journal = Some journal;
      log = None;
      crashed = false;
    }
  in
  Ok
    {
      fleet;
      plan;
      next_round;
      aborting;
      replayed_drains = !replayed_drains;
      replayed_mods = !replayed_mods;
      requeued = !requeued;
      warnings = !warnings;
    }

let resume ?probe (rc : recovery) =
  let t = rc.fleet in
  ensure_alive t;
  match rc.plan with
  | None ->
      {
        completed = true;
        outcome = Completed;
        rounds_run = 0;
        applied = 0;
        failed = 0;
        retried = 0;
        quarantines = 0;
        recovered = 0;
        backoff_ms = 0.;
        wall_ms = 0.;
        per_round = [];
      }
  | Some plan ->
      (match t.journal with
      | Some dir ->
          t.log <-
            Some
              (open_out_gen
                 [ Open_append; Open_creat; Open_wronly ]
                 0o644 (rollout_file dir))
      | None -> ());
      (* Apply the crash-era journals' requeued intent first, so the
         accounted-mod filter below sees the true installed state. *)
      let pre_applied = ref 0 and pre_failed = ref 0 in
      Array.iter
        (fun svc ->
          if Service.pending svc > 0 then begin
            let rep = Service.flush svc in
            pre_applied := !pre_applied + Service.applied rep;
            pre_failed := !pre_failed + List.length (Service.failures rep)
          end)
        t.services;
      let remaining =
        List.filter
          (fun (r : Plan.round) -> r.index >= rc.next_round)
          (Plan.rounds plan)
      in
      let markers, finalize =
        if rc.aborting then (("rbegin", "rcommit"), "abort_done")
        else (("begin", "commit"), "done")
      in
      let report =
        drive ?probe ~idempotent:true ~markers ~finalize:(Some finalize) t
          remaining
      in
      {
        report with
        applied = report.applied + !pre_applied;
        failed = report.failed + !pre_failed;
      }

let checkpoint t =
  ensure_alive t;
  Array.iter Service.checkpoint t.services

(* ------------------------------------------------------------------ *)
(* Offline journal-tree inspection (no recovery, nothing touched).     *)

type rollout_stat = {
  rs_nodes : int;
  rs_stamped : int;
  rs_state : string;
  rs_batch : int;
  rs_old_flows : int;
  rs_new_flows : int;
  rs_begun : int;
  rs_committed : int;
  rs_rb_begun : int;
  rs_rb_committed : int;
  rs_last_boundary : string;
}

let is_fleet_journal dir = Sys.file_exists (meta_file dir)

let rollout_stat ~journal () =
  let ( let* ) = Result.bind in
  let* topo, _kind, meta_stamps = read_meta journal in
  let* ro = read_rollout journal in
  let base =
    {
      rs_nodes = Topo.nodes topo;
      rs_stamped = List.length meta_stamps;
      rs_state = "idle";
      rs_batch = 0;
      rs_old_flows = 0;
      rs_new_flows = 0;
      rs_begun = 0;
      rs_committed = 0;
      rs_rb_begun = 0;
      rs_rb_committed = 0;
      rs_last_boundary = "pre-rollout baseline";
    }
  in
  match ro with
  | None -> Ok base
  | Some ro ->
      let last l = match List.rev l with [] -> None | k :: _ -> Some k in
      let state, boundary =
        if ro.ro_done then ("completed", "done (post-rollout policy)")
        else if ro.ro_aborted then
          ("rolled-back", "abort_done (pre-rollout policy)")
        else if ro.ro_abort <> None then
          ( "rolling-back",
            match last ro.ro_rb_committed with
            | Some k -> Printf.sprintf "rollback round %d committed" k
            | None -> "abort_begin (no rollback round committed)" )
        else
          ( "in-flight",
            match last ro.ro_committed with
            | Some k -> Printf.sprintf "round %d committed" k
            | None -> "pre-rollout baseline (no round committed)" )
      in
      Ok
        {
          base with
          rs_state = state;
          rs_batch = ro.ro_batch;
          rs_old_flows = List.length ro.ro_old;
          rs_new_flows = List.length ro.ro_new;
          rs_begun = List.length ro.ro_begun;
          rs_committed = List.length ro.ro_committed;
          rs_rb_begun = List.length ro.ro_rb_begun;
          rs_rb_committed = List.length ro.ro_rb_committed;
          rs_last_boundary = boundary;
        }

let pp_report ppf r =
  let label =
    match r.outcome with
    | Completed -> "rollout"
    | Crashed -> "CRASHED rollout"
    | Held k -> Printf.sprintf "HELD rollout (round %d)" k
    | Aborted { at_round; rolled_back } ->
        Printf.sprintf "ABORTED rollout (round %d, %d compensating rounds)"
          at_round rolled_back
  in
  Format.fprintf ppf "%s: %d rounds, %d applied, %d failed, %.1f ms" label
    r.rounds_run r.applied r.failed r.wall_ms;
  if r.retried + r.quarantines + r.recovered > 0 then
    Format.fprintf ppf
      "@.  supervision: %d retries (%.1f ms backoff), %d quarantines, %d \
       node recoveries"
      r.retried r.backoff_ms r.quarantines r.recovered;
  List.iter
    (fun s ->
      Format.fprintf ppf "@.  round %d [%s] %d switches %d mods %.2f ms"
        s.r_index
        (Plan.kind_to_string s.r_kind)
        s.r_switches s.r_mods s.r_wall_ms)
    r.per_round
