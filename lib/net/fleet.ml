module Rule = Fr_tern.Rule
module Header = Fr_tern.Header
module Agent = Fr_switch.Agent
module Firmware = Fr_switch.Firmware
module Measure = Fr_switch.Measure
module Service = Fr_ctrl.Service
module Shard = Fr_ctrl.Shard
module Journal = Fr_resil.Journal
module Pool = Fr_exec.Pool

type t = {
  topo : Topo.t;
  kind : Firmware.algo_kind;
  domains : int;
  services : Service.t array;
  stamps : (int, int) Hashtbl.t;
  journal : string option;
  mutable log : out_channel option;
  mutable crashed : bool;
}

let meta_file dir = Filename.concat dir "fleet.meta"
let rollout_file dir = Filename.concat dir "rollout.log"
let node_dir dir i = Filename.concat dir (Printf.sprintf "node-%d" i)

(* ------------------------------------------------------------------ *)
(* Line codecs for the fleet metadata and the rollout log.             *)

let flow_to_line (f : Policy.flow) =
  Printf.sprintf "%d %Ld %d %s %s" f.flow_id f.dst_value f.plen
    (String.concat "," (List.map string_of_int f.path))
    (match f.waypoint with None -> "-" | Some w -> string_of_int w)

let flow_of_line line =
  match String.split_on_char ' ' line with
  | [ id; dst; plen; path; wp ] -> (
      try
        Some
          {
            Policy.flow_id = int_of_string id;
            dst_value = Int64.of_string dst;
            plen = int_of_string plen;
            path = List.map int_of_string (String.split_on_char ',' path);
            waypoint = (if wp = "-" then None else Some (int_of_string wp));
          }
      with _ -> None)
  | _ -> None

let write_meta dir t =
  let oc = open_out (meta_file dir) in
  Printf.fprintf oc "fleet 1\n";
  Printf.fprintf oc "topo %s %d\n" (Topo.shape_name t.topo) (Topo.nodes t.topo);
  List.iter (fun (u, v) -> Printf.fprintf oc "link %d %d\n" u v) (Topo.links t.topo);
  Printf.fprintf oc "kind %s\n" (Firmware.algo_kind_name t.kind);
  Hashtbl.fold (fun fid v acc -> (fid, v) :: acc) t.stamps []
  |> List.sort compare
  |> List.iter (fun (fid, v) -> Printf.fprintf oc "stamp %d %d\n" fid v);
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let read_meta dir =
  let path = meta_file dir in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no fleet metadata at %s" path)
  else
    let lines = read_lines path in
    let nodes = ref 0
    and shape = ref "custom"
    and links = ref []
    and kind = ref None
    and stamps = ref [] in
    let bad = ref None in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "fleet"; _ ] -> ()
        | [ "topo"; name; n ] ->
            shape := name;
            nodes := int_of_string n
        | [ "link"; u; v ] ->
            links := (int_of_string u, int_of_string v) :: !links
        | [ "kind"; k ] -> kind := Firmware.algo_kind_of_string k
        | [ "stamp"; fid; v ] ->
            stamps := (int_of_string fid, int_of_string v) :: !stamps
        | _ -> bad := Some line)
      lines;
    match !bad with
    | Some line -> Error ("malformed fleet.meta line: " ^ line)
    | None -> (
        match !kind with
        | None -> Error "fleet.meta: missing or unknown kind"
        | Some kind ->
            let topo =
              match Topo.shape_of_string !shape with
              | Some s -> Topo.make s !nodes
              | None -> Topo.make_links ~nodes:!nodes (List.rev !links)
            in
            Ok (topo, kind, List.sort compare !stamps))

type rollout_state = {
  ro_batch : int;
  ro_old : Policy.t;
  ro_new : Policy.t;
  ro_stamps : (int * int) list;
  ro_committed : int list;  (** ascending *)
  ro_done : bool;
}

let read_rollout dir =
  let path = rollout_file dir in
  if not (Sys.file_exists path) then Ok None
  else
    let lines = read_lines path in
    let batch = ref 0
    and old_p = ref []
    and new_p = ref []
    and stamps = ref []
    and committed = ref []
    and finished = ref false
    and bad = ref None in
    List.iter
      (fun line ->
        let flow_tail prefix =
          String.sub line (String.length prefix)
            (String.length line - String.length prefix)
        in
        if line = "plan" || line = "done" then begin
          if line = "done" then finished := true
        end
        else if String.length line > 4 && String.sub line 0 4 = "old " then (
          match flow_of_line (flow_tail "old ") with
          | Some f -> old_p := f :: !old_p
          | None -> bad := Some line)
        else if String.length line > 4 && String.sub line 0 4 = "new " then (
          match flow_of_line (flow_tail "new ") with
          | Some f -> new_p := f :: !new_p
          | None -> bad := Some line)
        else
          match String.split_on_char ' ' line with
          | [ "rollout"; b ] -> (
              match String.split_on_char '=' b with
              | [ "batch"; n ] -> batch := int_of_string n
              | _ -> bad := Some line)
          | [ "stamp"; fid; v ] ->
              stamps := (int_of_string fid, int_of_string v) :: !stamps
          | [ "begin"; _ ] -> ()
          | [ "commit"; k ] -> committed := int_of_string k :: !committed
          | _ -> bad := Some line)
      lines;
    match !bad with
    | Some line -> Error ("malformed rollout.log line: " ^ line)
    | None ->
        Ok
          (Some
             {
               ro_batch = !batch;
               ro_old = List.rev !old_p;
               ro_new = List.rev !new_p;
               ro_stamps = List.sort compare !stamps;
               ro_committed = List.sort compare !committed;
               ro_done = !finished;
             })

(* ------------------------------------------------------------------ *)
(* Construction and accessors.                                         *)

let ensure_alive t =
  if t.crashed then invalid_arg "Fleet: fleet used after simulated crash"

let of_policy ?(kind = Firmware.FR_O Fr_sched.Store.Bit_backend) ?(shards = 2)
    ?(capacity = 64) ?domains ?journal ?(version_of = fun _ -> 0) topo policy =
  (match Policy.check topo policy with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fleet.of_policy: " ^ e));
  let domains =
    match domains with Some d -> d | None -> Service.default_domains ()
  in
  (match journal with
  | None -> ()
  | Some dir ->
      Journal.ensure_dir dir;
      if Sys.file_exists (meta_file dir) then
        invalid_arg
          "Fleet.of_policy: journal directory already holds a fleet — recover \
           from it instead");
  let n = Topo.nodes topo in
  let per_node = Array.make n [] in
  List.iter
    (fun f ->
      List.iter
        (fun (node, r) -> per_node.(node) <- r :: per_node.(node))
        (Policy.hop_rules topo f ~version:(version_of f)))
    policy;
  let services =
    Array.init n (fun i ->
        Service.of_rules ~kind
          ?journal:(Option.map (fun d -> node_dir d i) journal)
          ~domains ~shards ~capacity
          (Array.of_list (List.rev per_node.(i))))
  in
  let stamps = Hashtbl.create 16 in
  List.iter
    (fun (f : Policy.flow) -> Hashtbl.replace stamps f.flow_id (version_of f))
    policy;
  let t =
    { topo; kind; domains; services; stamps; journal; log = None; crashed = false }
  in
  Option.iter (fun dir -> write_meta dir t) journal;
  t

let topo t = t.topo
let kind_name t = Firmware.algo_kind_name t.kind
let domains t = t.domains
let journaled t = t.journal <> None

let node t i =
  if i < 0 || i >= Array.length t.services then
    invalid_arg "Fleet.node: out of range";
  t.services.(i)

let stamps t =
  Hashtbl.fold (fun fid v acc -> (fid, v) :: acc) t.stamps []
  |> List.sort compare

let stamp t fid = Hashtbl.find_opt t.stamps fid

(* Cross-shard winner at one node — same total order as
   [Agent.semantic_lookup] within a shard. *)
let lookup t i pkt =
  let svc = node t i in
  let best = ref None in
  for s = 0 to Service.shards svc - 1 do
    match Agent.lookup (Shard.agent (Service.shard svc s)) pkt with
    | None -> ()
    | Some (r : Rule.t) -> (
        match !best with
        | Some (b : Rule.t)
          when b.priority > r.priority
               || (b.priority = r.priority && b.id < r.id) ->
            ()
        | _ -> best := Some r)
  done;
  !best

let rules t i =
  let svc = node t i in
  let acc = ref [] in
  for s = 0 to Service.shards svc - 1 do
    acc := Agent.rules (Shard.agent (Service.shard svc s)) @ !acc
  done;
  List.sort (fun (a : Rule.t) b -> compare a.id b.id) !acc

(* ------------------------------------------------------------------ *)
(* Rollouts.                                                           *)

type probe = t -> round:int -> where:string -> unit
type crash_mode = Boundary | Mid_submit

type round_stat = {
  r_index : int;
  r_kind : Plan.kind;
  r_switches : int;
  r_mods : int;
  r_wall_ms : float;
}

type report = {
  completed : bool;
  rounds_run : int;
  applied : int;
  failed : int;
  wall_ms : float;
  per_round : round_stat list;
}

let log_line t fmt =
  Printf.ksprintf
    (fun s ->
      match t.log with
      | None -> ()
      | Some oc ->
          output_string oc (s ^ "\n");
          flush oc)
    fmt

let close_log t =
  match t.log with
  | None -> ()
  | Some oc ->
      close_out oc;
      t.log <- None

let open_rollout t plan =
  match t.journal with
  | None -> ()
  | Some dir ->
      t.log <- Some (open_out (rollout_file dir));
      log_line t "rollout batch=%d" (Plan.batch plan);
      List.iter
        (fun f -> log_line t "old %s" (flow_to_line f))
        (Plan.old_policy plan);
      List.iter
        (fun f -> log_line t "new %s" (flow_to_line f))
        (Plan.new_policy plan);
      List.iter
        (fun (fid, v) -> log_line t "stamp %d %d" fid v)
        (Plan.stamps_before plan);
      log_line t "plan"

(* Has the crash-era journal already accounted for this mod?  Only
   meaningful after every node flushed its requeued intent. *)
let accounted t node (m : Agent.flow_mod) =
  match m with
  | Add r -> Service.find_rule t.services.(node) r.id <> None
  | Remove { id } -> Service.find_rule t.services.(node) id = None
  | Set_action _ -> false

let apply_round ?probe ~idempotent t (r : Plan.round) =
  let applied = ref 0 and failed = ref 0 in
  let (), wall_ms =
    Measure.time_ms (fun () ->
        let batches =
          if not idempotent then r.batches
          else
            List.filter_map
              (fun (node, mods) ->
                match
                  List.filter (fun m -> not (accounted t node m)) mods
                with
                | [] -> None
                | ms -> Some (node, ms))
              r.batches
        in
        List.iter
          (fun (node, mods) -> Service.submit_all t.services.(node) mods)
          batches;
        let flush_node n =
          let rep = Service.flush t.services.(n) in
          (Service.applied rep, List.length (Service.failures rep))
        in
        let touched = List.map fst batches in
        (match probe with
        | Some p ->
            (* Sequential node order: the callback observes every
               per-node flush boundary as a reachable instant. *)
            List.iter
              (fun n ->
                let a, f = flush_node n in
                applied := !applied + a;
                failed := !failed + f;
                p t ~round:r.index
                  ~where:(Printf.sprintf "round %d after node %d" r.index n))
              touched
        | None ->
            if t.domains > 1 && List.length touched > 1 then begin
              let pool =
                Pool.shared ~workers:(min (t.domains - 1) (List.length touched))
              in
              let joined =
                Pool.run_all pool
                  (Array.of_list
                     (List.map (fun n () -> flush_node n) touched))
              in
              (* Deterministic join in node order; first failure wins. *)
              Array.iter
                (function
                  | Ok (a, f) ->
                      applied := !applied + a;
                      failed := !failed + f
                  | Error _ -> ())
                joined;
              Array.iter
                (function Error e -> raise e | Ok _ -> ())
                joined
            end
            else
              List.iter
                (fun n ->
                  let a, f = flush_node n in
                  applied := !applied + a;
                  failed := !failed + f)
                touched);
        List.iter
          (fun (fid, v) ->
            (match v with
            | Some v -> Hashtbl.replace t.stamps fid v
            | None -> Hashtbl.remove t.stamps fid);
            Option.iter
              (fun p ->
                p t ~round:r.index
                  ~where:
                    (Printf.sprintf "round %d after flip of flow %d" r.index
                       fid))
              probe)
          r.stamp_changes)
  in
  {
    r_index = r.index;
    r_kind = r.kind;
    r_switches = Plan.touched r;
    r_mods = Plan.round_mods r;
    r_wall_ms = wall_ms;
  },
  !applied,
  !failed

let crash t ~mid (r : Plan.round) =
  if mid then
    List.iter
      (fun (node, mods) -> Service.submit_all t.services.(node) mods)
      r.batches;
  Array.iter (fun s -> Service.simulate_crash ~mid_drain:mid s) t.services;
  close_log t;
  t.crashed <- true

let drive ?probe ~idempotent ~finalize t rounds =
  let per_round = ref [] in
  let applied = ref 0
  and failed = ref 0
  and rounds_run = ref 0
  and completed = ref true in
  let (), wall_ms =
    Measure.time_ms (fun () ->
        (try
           List.iter
             (fun (r : Plan.round) ->
               if t.crashed then raise Exit;
               log_line t "begin %d" r.index;
               let stat, a, f = apply_round ?probe ~idempotent t r in
               per_round := stat :: !per_round;
               applied := !applied + a;
               failed := !failed + f;
               log_line t "commit %d" r.index;
               incr rounds_run;
               Option.iter
                 (fun p ->
                   p t ~round:r.index
                     ~where:(Printf.sprintf "round %d committed" r.index))
                 probe)
             rounds
         with Exit -> completed := false);
        if !completed && finalize then begin
          log_line t "done";
          close_log t
        end)
  in
  {
    completed = !completed;
    rounds_run = !rounds_run;
    applied = !applied;
    failed = !failed;
    wall_ms;
    per_round = List.rev !per_round;
  }

let execute ?probe ?stop_after_rounds ?(crash_mode = Boundary) t plan =
  ensure_alive t;
  if Topo.nodes (Plan.topo plan) <> Topo.nodes t.topo then
    invalid_arg "Fleet.execute: plan topology does not match the fleet";
  (match stop_after_rounds with
  | Some _ when t.journal = None ->
      invalid_arg "Fleet.execute: crash drills need a journaled fleet"
  | _ -> ());
  open_rollout t plan;
  match stop_after_rounds with
  | None -> drive ?probe ~idempotent:false ~finalize:true t (Plan.rounds plan)
  | Some k ->
      let before, rest =
        List.partition (fun (r : Plan.round) -> r.index < k) (Plan.rounds plan)
      in
      let report =
        drive ?probe ~idempotent:false ~finalize:(rest = []) t before
      in
      if rest = [] then report
      else begin
        crash t ~mid:(crash_mode = Mid_submit) (List.hd rest);
        { report with completed = false }
      end

(* ------------------------------------------------------------------ *)
(* Recovery.                                                           *)

type recovery = {
  fleet : t;
  plan : Plan.t option;
  next_round : int;
  replayed_drains : int;
  replayed_mods : int;
  requeued : int;
  warnings : string list;
}

let recover ?domains ~journal () =
  let ( let* ) = Result.bind in
  let* topo, kind, meta_stamps = read_meta journal in
  let domains_v =
    match domains with Some d -> d | None -> Service.default_domains ()
  in
  let n = Topo.nodes topo in
  let services = Array.make n None in
  let replayed_drains = ref 0
  and replayed_mods = ref 0
  and requeued = ref 0
  and warnings = ref [] in
  let rec recover_nodes i =
    if i >= n then Ok ()
    else
      match Service.recover ?domains ~journal:(node_dir journal i) () with
      | Error e -> Error (Printf.sprintf "node %d: %s" i e)
      | Ok (r : Service.recovery) ->
          services.(i) <- Some r.service;
          replayed_drains := !replayed_drains + r.replayed_drains;
          replayed_mods := !replayed_mods + r.replayed_mods;
          requeued := !requeued + r.requeued;
          warnings :=
            !warnings
            @ List.map (Printf.sprintf "node %d: %s" i) r.warnings;
          recover_nodes (i + 1)
  in
  let* () = recover_nodes 0 in
  let services = Array.map Option.get services in
  let* ro = read_rollout journal in
  let stamps = Hashtbl.create 16 in
  let load_stamps pairs =
    Hashtbl.reset stamps;
    List.iter (fun (fid, v) -> Hashtbl.replace stamps fid v) pairs
  in
  load_stamps meta_stamps;
  let* plan, next_round =
    match ro with
    | None -> Ok (None, 0)
    | Some ro -> (
        load_stamps ro.ro_stamps;
        match
          Plan.make ~batch:ro.ro_batch topo ~stamps:ro.ro_stamps
            ~old_policy:ro.ro_old ~new_policy:ro.ro_new
        with
        | Error e -> Error ("cannot re-derive interrupted plan: " ^ e)
        | Ok plan ->
            if ro.ro_done then begin
              load_stamps (Plan.stamps_after plan);
              Ok (None, 0)
            end
            else begin
              let next =
                match List.rev ro.ro_committed with
                | [] -> 0
                | k :: _ -> k + 1
              in
              (* Re-apply the flips of every committed round. *)
              List.iter
                (fun (r : Plan.round) ->
                  if r.index < next then
                    List.iter
                      (fun (fid, v) ->
                        match v with
                        | Some v -> Hashtbl.replace stamps fid v
                        | None -> Hashtbl.remove stamps fid)
                      r.stamp_changes)
                (Plan.rounds plan);
              Ok (Some plan, next)
            end)
  in
  let fleet =
    {
      topo;
      kind;
      domains = domains_v;
      services;
      stamps;
      journal = Some journal;
      log = None;
      crashed = false;
    }
  in
  Ok
    {
      fleet;
      plan;
      next_round;
      replayed_drains = !replayed_drains;
      replayed_mods = !replayed_mods;
      requeued = !requeued;
      warnings = !warnings;
    }

let resume ?probe (rc : recovery) =
  let t = rc.fleet in
  ensure_alive t;
  match rc.plan with
  | None ->
      {
        completed = true;
        rounds_run = 0;
        applied = 0;
        failed = 0;
        wall_ms = 0.;
        per_round = [];
      }
  | Some plan ->
      (match t.journal with
      | Some dir ->
          t.log <-
            Some
              (open_out_gen
                 [ Open_append; Open_creat; Open_wronly ]
                 0o644 (rollout_file dir))
      | None -> ());
      (* Apply the crash-era journals' requeued intent first, so the
         accounted-mod filter below sees the true installed state. *)
      let pre_applied = ref 0 and pre_failed = ref 0 in
      Array.iter
        (fun svc ->
          if Service.pending svc > 0 then begin
            let rep = Service.flush svc in
            pre_applied := !pre_applied + Service.applied rep;
            pre_failed := !pre_failed + List.length (Service.failures rep)
          end)
        t.services;
      let remaining =
        List.filter
          (fun (r : Plan.round) -> r.index >= rc.next_round)
          (Plan.rounds plan)
      in
      let report = drive ?probe ~idempotent:true ~finalize:true t remaining in
      {
        report with
        applied = report.applied + !pre_applied;
        failed = report.failed + !pre_failed;
      }

let pp_report ppf r =
  Format.fprintf ppf "%s: %d rounds, %d applied, %d failed, %.1f ms"
    (if r.completed then "rollout" else "CRASHED rollout")
    r.rounds_run r.applied r.failed r.wall_ms;
  List.iter
    (fun s ->
      Format.fprintf ppf "@.  round %d [%s] %d switches %d mods %.2f ms"
        s.r_index
        (Plan.kind_to_string s.r_kind)
        s.r_switches s.r_mods s.r_wall_ms)
    r.per_round
