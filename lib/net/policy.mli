(** Network policies: prefix-matched flows, paths, waypoints, and the
    version-tagged rules that realise them.

    A {e flow} is the planner's unit of intent: all traffic to one
    destination prefix, entering the fabric at a fixed ingress and
    carried along one configured simple path (optionally through a
    mandatory waypoint).  A policy is a set of flows with pairwise
    distinct prefixes; prefixes may nest, in which case the longest
    prefix wins exactly as in the per-switch tables — nesting is what
    gives the per-switch dependency graphs real edges.

    {b Version tagging.}  Rules are installed per (flow, version) with
    the version ∈ {0, 1} encoded in the proto byte of the match field
    and in the low bit of the rule id.  A packet is {e stamped} with a
    version at its ingress (the two-phase update protocol's ingress
    stamp) and can therefore only ever match rules of that version —
    per-packet consistency reduces to "both versions' rule sets are
    whole at every instant the stamp can name them". *)

type flow = {
  flow_id : int;  (** unique, >= 0 *)
  dst_value : int64;  (** destination prefix bits (32-bit, high-aligned) *)
  plen : int;  (** prefix length, 1..32; doubles as rule priority *)
  path : int list;  (** ingress first, egress last; a simple path *)
  waypoint : int option;  (** must lie on [path] when configured *)
}

type t = flow list

val ingress : flow -> int
val egress : flow -> int

val dst_field : flow -> Fr_tern.Ternary.t
(** The 32-bit destination prefix as a ternary string. *)

val prefix_bits : plen:int -> int64 -> int64
(** The [plen] most significant bits of a 32-bit address — the canonical
    form used to compare prefixes and test membership. *)

val in_prefix : plen:int -> value:int64 -> int64 -> bool
(** [in_prefix ~plen ~value dst] — does [dst] fall inside the prefix? *)

(** {1 Rule encoding} *)

val rule_id : flow_id:int -> version:int -> int
(** [2 * flow_id + version]. *)

val flow_of_rule_id : int -> int

val version_of_rule_id : int -> int

val rule : flow -> version:int -> port:int -> Fr_tern.Rule.t
(** The TCAM rule one hop installs: dst = the flow's prefix, proto = the
    version tag, everything else wildcarded; priority = prefix length;
    action [Forward port]. *)

val hop_rules : Topo.t -> flow -> version:int -> (int * Fr_tern.Rule.t) list
(** [(node, rule)] for every hop of the flow's path: interior hops
    forward to the port leading to the next hop, the egress forwards to
    its host port.
    @raise Invalid_argument if consecutive path nodes are not linked. *)

(** {1 Packets} *)

val stamp_packet :
  Fr_tern.Header.packet -> version:int -> Fr_tern.Header.packet
(** The ingress stamp: rewrite the proto byte to the version tag. *)

val packet_for :
  ?tries:int ->
  Fr_prng.Rng.t ->
  all:t ->
  flow ->
  Fr_tern.Header.packet option
(** A packet in the flow's {e pure region}: dst inside the flow's prefix
    but outside every strictly-longer prefix in [all] — so the flow wins
    the longest-prefix match at every switch that carries it.  Proto is
    left 0 (stamp it with {!stamp_packet}).  [None] when [tries]
    (default 64) rejection samples all landed in nested prefixes. *)

val winner : t -> Fr_tern.Header.packet -> flow option
(** The policy-level longest-prefix match on the packet's destination
    (ties broken by lower flow id, mirroring the TCAM tie-break). *)

val find : t -> int -> flow option

val check : Topo.t -> t -> (unit, string) result
(** Structural validity: ids and prefixes pairwise distinct, every path
    a linked simple path of length >= 2, waypoints on their paths. *)

val pp_flow : Format.formatter -> flow -> unit
