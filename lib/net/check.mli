(** Brute-force transient-path checking.

    This module is the planner's adversary: it knows nothing about
    rounds being "safe by construction" and simply walks {e every}
    reachable instant of a rollout — initial state, after each switch's
    batch inside every round, after each individual ingress-stamp flip,
    and the final state — tracing stamped packets hop by hop through
    per-switch longest-prefix lookups and comparing each trace to the
    exact path its (flow, version) is configured for.

    The per-packet consistency property it enforces: a packet stamped
    with version [v] of flow [f] must traverse {e exactly} the path that
    version of the policy configures for [f] (hence entirely old or
    entirely new, never a mix), be delivered at that path's egress, and
    pass the configured waypoint.  Packets are sampled from each flow's
    {e pure region} (see {!Policy.packet_for}) with respect to the union
    of the old and new policies, so the expected trace is unambiguous.

    The pure model tables in {!Model} mirror
    [Fr_switch.Agent.semantic_lookup] (max priority, ties to the lower
    rule id) without any TCAM, scheduler or service machinery — which is
    what makes this a genuinely independent oracle for both the planner
    ({!check_plan}) and the live fleet (feed {!consistent} a lookup into
    real services). *)

(** Pure per-node rule tables. *)
module Model : sig
  type t

  val create : Topo.t -> t

  val apply : t -> int -> Fr_switch.Agent.flow_mod -> unit
  (** Apply one flow-mod at one node.  [Add] of an existing id and
      [Remove]/[Set_action] of a missing id raise [Invalid_argument] —
      the planner must never emit those. *)

  val lookup : t -> int -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
  (** Highest priority, ties to the lower rule id. *)

  val rules : t -> int -> Fr_tern.Rule.t list
  (** The node's table, id-ascending. *)

  val of_policy :
    Topo.t -> version_of:(Policy.flow -> int) -> Policy.t -> t
  (** Fresh tables holding each flow's rules at the given version. *)
end

type outcome =
  | Delivered of int  (** forwarded to the host port at this node *)
  | Dropped of int  (** matched a [Drop] / [Controller] rule here *)
  | Missing of int  (** no rule matched here *)
  | Looped  (** hop budget exhausted *)

val outcome_to_string : outcome -> string

val trace :
  Topo.t ->
  lookup:(int -> Fr_tern.Header.packet -> Fr_tern.Rule.t option) ->
  ingress:int ->
  Fr_tern.Header.packet ->
  int list * outcome
(** Hop-by-hop walk from [ingress]; returns the nodes visited in order
    (the ingress first) and how the walk ended. *)

val expectations : Plan.t -> ((int * int) * Policy.flow) list
(** [(flow_id, version) -> flow spec] for every (flow, version) pair the
    rollout can stamp: the old policy's flows at their current versions
    and the new policy's changed/introduced flows at their post-flip
    versions. *)

val consistent :
  ?samples:int ->
  rng:Fr_prng.Rng.t ->
  Plan.t ->
  stamps:(int -> int option) ->
  lookup:(int -> Fr_tern.Header.packet -> Fr_tern.Rule.t option) ->
  where:string ->
  string list
(** Check one instant: for every flow the instant stamps, sample up to
    [samples] (default 2) pure-region packets, stamp, trace, and demand
    the exact configured path, delivery at its egress and the waypoint.
    Returns violation descriptions (empty = consistent). *)

val check_plan :
  ?samples:int -> ?seed:int -> Plan.t -> (unit, string list) result
(** Walk every reachable instant of the plan over {!Model} tables and
    also require the final tables to equal fresh tables built from the
    new policy at the post-rollout stamps.  [Ok ()] when no instant
    violates consistency. *)
