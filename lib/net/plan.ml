module Agent = Fr_switch.Agent

type kind = Install | Flip | Uninstall

let kind_to_string = function
  | Install -> "install"
  | Flip -> "flip"
  | Uninstall -> "uninstall"

type round = {
  index : int;
  kind : kind;
  batches : (int * Agent.flow_mod list) list;
  stamp_changes : (int * int option) list;
}

type t = {
  topo : Topo.t;
  old_policy : Policy.t;
  new_policy : Policy.t;
  batch : int;
  stamps_before : (int * int) list;
  stamps_after : (int * int) list;
  rounds : round list;
}

let topo t = t.topo
let old_policy t = t.old_policy
let new_policy t = t.new_policy
let batch t = t.batch
let rounds t = t.rounds
let num_rounds t = List.length t.rounds
let stamps_before t = t.stamps_before
let stamps_after t = t.stamps_after

let touched r = List.length r.batches

let round_mods r =
  List.fold_left (fun acc (_, mods) -> acc + List.length mods) 0 r.batches

let total_mods t = List.fold_left (fun acc r -> acc + round_mods r) 0 t.rounds

let flow_equal (a : Policy.flow) (b : Policy.flow) =
  a.plen = b.plen
  && Policy.prefix_bits ~plen:a.plen a.dst_value
     = Policy.prefix_bits ~plen:b.plen b.dst_value
  && a.path = b.path
  && a.waypoint = b.waypoint

(* Greedy earliest-fit batching: walk the (node, mod) stream in flow-id /
   path order and drop each mod into the first round where its node still
   has head-room.  Mods of one phase never depend on each other (no
   stamped packet can observe the phase in progress), so any placement is
   sound; earliest-fit minimises the round count for the given batch. *)
let pack_rounds ~batch mods =
  let rounds : (int, Agent.flow_mod list) Hashtbl.t list ref = ref [] in
  List.iter
    (fun (node, m) ->
      let rec place = function
        | [] ->
            let tbl = Hashtbl.create 8 in
            Hashtbl.replace tbl node [ m ];
            rounds := !rounds @ [ tbl ]
        | tbl :: rest -> (
            match Hashtbl.find_opt tbl node with
            | Some ms when List.length ms >= batch -> place rest
            | Some ms -> Hashtbl.replace tbl node (m :: ms)
            | None -> Hashtbl.replace tbl node [ m ])
      in
      place !rounds)
    mods;
  List.map
    (fun tbl ->
      Hashtbl.fold (fun node ms acc -> (node, List.rev ms) :: acc) tbl []
      |> List.sort compare)
    !rounds

let make ?(batch = 8) topo ~stamps ~old_policy ~new_policy =
  let ( let* ) = Result.bind in
  let* () = if batch < 1 then Error "batch must be positive" else Ok () in
  let* () =
    Result.map_error (fun e -> "old policy: " ^ e) (Policy.check topo old_policy)
  in
  let* () =
    Result.map_error (fun e -> "new policy: " ^ e) (Policy.check topo new_policy)
  in
  let stamp_of id = List.assoc_opt id stamps in
  let* () =
    let missing =
      List.find_opt
        (fun (f : Policy.flow) ->
          match stamp_of f.flow_id with Some (0 | 1) -> false | _ -> true)
        old_policy
    in
    match missing with
    | Some f ->
        Error (Printf.sprintf "flow %d has no version stamp" f.flow_id)
    | None -> Ok ()
  in
  let sorted p =
    List.sort
      (fun (a : Policy.flow) b -> compare a.flow_id b.flow_id)
      p
  in
  let olds = sorted old_policy and news = sorted new_policy in
  let adds = ref [] and removes = ref [] and flips = ref [] in
  List.iter
    (fun (nf : Policy.flow) ->
      match Policy.find olds nf.flow_id with
      | Some old_f when flow_equal old_f nf -> ()
      | Some old_f ->
          let v = Option.get (stamp_of nf.flow_id) in
          let v' = 1 - v in
          adds :=
            !adds
            @ List.map
                (fun (node, r) -> (node, Agent.Add r))
                (Policy.hop_rules topo nf ~version:v');
          removes :=
            !removes
            @ List.map
                (fun (node, (r : Fr_tern.Rule.t)) ->
                  (node, Agent.Remove { id = r.id }))
                (Policy.hop_rules topo old_f ~version:v);
          flips := (nf.flow_id, Some v') :: !flips
      | None ->
          adds :=
            !adds
            @ List.map
                (fun (node, r) -> (node, Agent.Add r))
                (Policy.hop_rules topo nf ~version:0);
          flips := (nf.flow_id, Some 0) :: !flips)
    news;
  List.iter
    (fun (old_f : Policy.flow) ->
      if Policy.find news old_f.flow_id = None then begin
        let v = Option.get (stamp_of old_f.flow_id) in
        removes :=
          !removes
          @ List.map
              (fun (node, (r : Fr_tern.Rule.t)) ->
                (node, Agent.Remove { id = r.id }))
              (Policy.hop_rules topo old_f ~version:v);
        flips := (old_f.flow_id, None) :: !flips
      end)
    olds;
  let install = pack_rounds ~batch !adds in
  let uninstall = pack_rounds ~batch !removes in
  let flips = List.sort compare !flips in
  let rounds =
    List.map (fun b -> (Install, b, [])) install
    @ (if flips = [] then [] else [ (Flip, [], flips) ])
    @ List.map (fun b -> (Uninstall, b, [])) uninstall
  in
  let rounds =
    List.mapi
      (fun index (kind, batches, stamp_changes) ->
        { index; kind; batches; stamp_changes })
      rounds
  in
  let stamps_after =
    List.filter_map
      (fun (f : Policy.flow) ->
        match List.assoc_opt f.flow_id flips with
        | Some v -> Option.map (fun v -> (f.flow_id, v)) v
        | None -> stamp_of f.flow_id |> Option.map (fun v -> (f.flow_id, v)))
      news
    |> List.sort compare
  in
  Ok
    {
      topo;
      old_policy;
      new_policy;
      batch;
      stamps_before = List.sort compare stamps;
      stamps_after;
      rounds;
    }

let pp ppf t =
  Format.fprintf ppf "plan: %d rounds, %d mods, batch %d@." (num_rounds t)
    (total_mods t) t.batch;
  List.iter
    (fun r ->
      Format.fprintf ppf "  round %d [%s] %d switches, %d mods%s@." r.index
        (kind_to_string r.kind) (touched r) (round_mods r)
        (if r.stamp_changes = [] then ""
         else Printf.sprintf ", %d flips" (List.length r.stamp_changes)))
    t.rounds
