module Agent = Fr_switch.Agent

type kind = Install | Flip | Uninstall

let kind_to_string = function
  | Install -> "install"
  | Flip -> "flip"
  | Uninstall -> "uninstall"

type round = {
  index : int;
  kind : kind;
  batches : (int * Agent.flow_mod list) list;
  stamp_changes : (int * int option) list;
}

type t = {
  topo : Topo.t;
  old_policy : Policy.t;
  new_policy : Policy.t;
  batch : int;
  stamps_before : (int * int) list;
  stamps_after : (int * int) list;
  rounds : round list;
}

let topo t = t.topo
let old_policy t = t.old_policy
let new_policy t = t.new_policy
let batch t = t.batch
let rounds t = t.rounds
let num_rounds t = List.length t.rounds
let stamps_before t = t.stamps_before
let stamps_after t = t.stamps_after

let touched r = List.length r.batches

let round_mods r =
  List.fold_left (fun acc (_, mods) -> acc + List.length mods) 0 r.batches

let total_mods t = List.fold_left (fun acc r -> acc + round_mods r) 0 t.rounds

let flow_equal (a : Policy.flow) (b : Policy.flow) =
  a.plen = b.plen
  && Policy.prefix_bits ~plen:a.plen a.dst_value
     = Policy.prefix_bits ~plen:b.plen b.dst_value
  && a.path = b.path
  && a.waypoint = b.waypoint

(* Greedy earliest-fit batching: walk the (node, mod) stream in flow-id /
   path order and drop each mod into the first round where its node still
   has head-room.  Mods of one phase never depend on each other (no
   stamped packet can observe the phase in progress), so any placement is
   sound; earliest-fit minimises the round count for the given batch. *)
let pack_rounds ~batch mods =
  let rounds : (int, Agent.flow_mod list) Hashtbl.t list ref = ref [] in
  List.iter
    (fun (node, m) ->
      let rec place = function
        | [] ->
            let tbl = Hashtbl.create 8 in
            Hashtbl.replace tbl node [ m ];
            rounds := !rounds @ [ tbl ]
        | tbl :: rest -> (
            match Hashtbl.find_opt tbl node with
            | Some ms when List.length ms >= batch -> place rest
            | Some ms -> Hashtbl.replace tbl node (m :: ms)
            | None -> Hashtbl.replace tbl node [ m ])
      in
      place !rounds)
    mods;
  List.map
    (fun tbl ->
      Hashtbl.fold (fun node ms acc -> (node, List.rev ms) :: acc) tbl []
      |> List.sort compare)
    !rounds

let make ?(batch = 8) topo ~stamps ~old_policy ~new_policy =
  let ( let* ) = Result.bind in
  let* () = if batch < 1 then Error "batch must be positive" else Ok () in
  let* () =
    Result.map_error (fun e -> "old policy: " ^ e) (Policy.check topo old_policy)
  in
  let* () =
    Result.map_error (fun e -> "new policy: " ^ e) (Policy.check topo new_policy)
  in
  let stamp_of id = List.assoc_opt id stamps in
  let* () =
    let missing =
      List.find_opt
        (fun (f : Policy.flow) ->
          match stamp_of f.flow_id with Some (0 | 1) -> false | _ -> true)
        old_policy
    in
    match missing with
    | Some f ->
        Error (Printf.sprintf "flow %d has no version stamp" f.flow_id)
    | None -> Ok ()
  in
  let sorted p =
    List.sort
      (fun (a : Policy.flow) b -> compare a.flow_id b.flow_id)
      p
  in
  let olds = sorted old_policy and news = sorted new_policy in
  let adds = ref [] and removes = ref [] and flips = ref [] in
  List.iter
    (fun (nf : Policy.flow) ->
      match Policy.find olds nf.flow_id with
      | Some old_f when flow_equal old_f nf -> ()
      | Some old_f ->
          let v = Option.get (stamp_of nf.flow_id) in
          let v' = 1 - v in
          adds :=
            !adds
            @ List.map
                (fun (node, r) -> (node, Agent.Add r))
                (Policy.hop_rules topo nf ~version:v');
          removes :=
            !removes
            @ List.map
                (fun (node, (r : Fr_tern.Rule.t)) ->
                  (node, Agent.Remove { id = r.id }))
                (Policy.hop_rules topo old_f ~version:v);
          flips := (nf.flow_id, Some v') :: !flips
      | None ->
          adds :=
            !adds
            @ List.map
                (fun (node, r) -> (node, Agent.Add r))
                (Policy.hop_rules topo nf ~version:0);
          flips := (nf.flow_id, Some 0) :: !flips)
    news;
  List.iter
    (fun (old_f : Policy.flow) ->
      if Policy.find news old_f.flow_id = None then begin
        let v = Option.get (stamp_of old_f.flow_id) in
        removes :=
          !removes
          @ List.map
              (fun (node, (r : Fr_tern.Rule.t)) ->
                (node, Agent.Remove { id = r.id }))
              (Policy.hop_rules topo old_f ~version:v);
        flips := (old_f.flow_id, None) :: !flips
      end)
    olds;
  let install = pack_rounds ~batch !adds in
  let uninstall = pack_rounds ~batch !removes in
  let flips = List.sort compare !flips in
  let rounds =
    List.map (fun b -> (Install, b, [])) install
    @ (if flips = [] then [] else [ (Flip, [], flips) ])
    @ List.map (fun b -> (Uninstall, b, [])) uninstall
  in
  let rounds =
    List.mapi
      (fun index (kind, batches, stamp_changes) ->
        { index; kind; batches; stamp_changes })
      rounds
  in
  let stamps_after =
    List.filter_map
      (fun (f : Policy.flow) ->
        match List.assoc_opt f.flow_id flips with
        | Some v -> Option.map (fun v -> (f.flow_id, v)) v
        | None -> stamp_of f.flow_id |> Option.map (fun v -> (f.flow_id, v)))
      news
    |> List.sort compare
  in
  Ok
    {
      topo;
      old_policy;
      new_policy;
      batch;
      stamps_before = List.sort compare stamps;
      stamps_after;
      rounds;
    }

(* -- compensating rollback synthesis ------------------------------- *)

let stamps_at t ~upto =
  let stamps = Hashtbl.create 16 in
  List.iter (fun (fid, v) -> Hashtbl.replace stamps fid v) t.stamps_before;
  List.iter
    (fun r ->
      if r.index < upto then
        List.iter
          (fun (fid, v) ->
            match v with
            | Some v -> Hashtbl.replace stamps fid v
            | None -> Hashtbl.remove stamps fid)
          r.stamp_changes)
    t.rounds;
  Hashtbl.fold (fun fid v acc -> (fid, v) :: acc) stamps []
  |> List.sort compare

let inverse ?(upto = max_int) t =
  let executed = List.filter (fun r -> r.index < upto) t.rounds in
  (* Every rule the executed Uninstall rounds removed is an old-policy
     rule at its pre-rollout version; Remove mods only carry ids, so the
     full rules are recomputed from the old policy — byte-identical to
     what the fleet held before the rollout. *)
  let old_rules = Hashtbl.create 64 in
  List.iter
    (fun (f : Policy.flow) ->
      let v = List.assoc f.flow_id t.stamps_before in
      List.iter
        (fun (node, (r : Fr_tern.Rule.t)) ->
          Hashtbl.replace old_rules (node, r.id) r)
        (Policy.hop_rules t.topo f ~version:v))
    t.old_policy;
  let reinstalls = ref [] and uninstalls = ref [] and flipped = ref None in
  List.iter
    (fun r ->
      (match r.kind with
      | Install ->
          List.iter
            (fun (node, mods) ->
              List.iter
                (function
                  | Agent.Add (rl : Fr_tern.Rule.t) ->
                      uninstalls :=
                        (node, Agent.Remove { id = rl.id }) :: !uninstalls
                  | _ -> ())
                mods)
            r.batches
      | Uninstall ->
          List.iter
            (fun (node, mods) ->
              List.iter
                (function
                  | Agent.Remove { id } -> (
                      match Hashtbl.find_opt old_rules (node, id) with
                      | Some rl ->
                          reinstalls := (node, Agent.Add rl) :: !reinstalls
                      | None ->
                          invalid_arg
                            (Printf.sprintf
                               "Plan.inverse: removed rule %d at node %d is \
                                not an old-policy rule"
                               id node))
                  | _ -> ())
                mods)
            r.batches
      | Flip -> ());
      if r.kind = Flip then flipped := Some r.stamp_changes)
    executed;
  (* Compensation order mirrors the two-phase protocol: restore the old
     version's rules first (no packet is stamped with them yet), then
     flip every flipped ingress back per-flow-atomically, then strip the
     new version's installed state (no packet carries it any more).
     Every prefix instant stays consistent w.r.t. the original plan. *)
  let before = List.sort compare t.stamps_before in
  let flip_back =
    match !flipped with
    | None -> []
    | Some changes ->
        List.map
          (fun (fid, _) -> (fid, List.assoc_opt fid before))
          changes
        |> List.sort compare
  in
  let rounds =
    List.map
      (fun b -> (Install, b, []))
      (pack_rounds ~batch:t.batch (List.rev !reinstalls))
    @ (if flip_back = [] then [] else [ (Flip, [], flip_back) ])
    @ List.map
        (fun b -> (Uninstall, b, []))
        (pack_rounds ~batch:t.batch (List.rev !uninstalls))
  in
  let rounds =
    List.mapi
      (fun index (kind, batches, stamp_changes) ->
        { index; kind; batches; stamp_changes })
      rounds
  in
  {
    topo = t.topo;
    old_policy = t.new_policy;
    new_policy = t.old_policy;
    batch = t.batch;
    stamps_before = stamps_at t ~upto;
    stamps_after = before;
    rounds;
  }

let pp ppf t =
  Format.fprintf ppf "plan: %d rounds, %d mods, batch %d@." (num_rounds t)
    (total_mods t) t.batch;
  List.iter
    (fun r ->
      Format.fprintf ppf "  round %d [%s] %d switches, %d mods%s@." r.index
        (kind_to_string r.kind) (touched r) (round_mods r)
        (if r.stamp_changes = [] then ""
         else Printf.sprintf ", %d flips" (List.length r.stamp_changes)))
    t.rounds
