type shape = Line | Ring | Tree

let shape_to_string = function Line -> "line" | Ring -> "ring" | Tree -> "tree"

let shape_of_string s =
  match String.lowercase_ascii s with
  | "line" -> Some Line
  | "ring" -> Some Ring
  | "tree" -> Some Tree
  | _ -> None

type t = {
  name : string;
  n : int;
  adj : int array array;  (** sorted neighbour lists; port i+1 = adj.(u).(i) *)
}

let host_port = 0

let of_links ~name ~nodes links =
  if nodes < 2 then invalid_arg "Topo: need at least 2 nodes";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= nodes || v < 0 || v >= nodes then
        invalid_arg (Printf.sprintf "Topo: link (%d,%d) out of range" u v);
      if u = v then invalid_arg (Printf.sprintf "Topo: self-loop on %d" u);
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Topo: duplicate link (%d,%d)" u v);
      Hashtbl.replace seen key ())
    links;
  let adj = Array.make nodes [] in
  Hashtbl.iter
    (fun (u, v) () ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    seen;
  { name; n = nodes; adj = Array.map (fun l -> Array.of_list (List.sort compare l)) adj }

let make_links ~nodes links = of_links ~name:"custom" ~nodes links

let make shape n =
  match shape with
  | Line ->
      of_links ~name:"line" ~nodes:n (List.init (n - 1) (fun i -> (i, i + 1)))
  | Ring ->
      if n < 3 then invalid_arg "Topo: a ring needs at least 3 nodes";
      of_links ~name:"ring" ~nodes:n
        ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))
  | Tree ->
      let links = ref [] in
      for i = 0 to n - 1 do
        if (2 * i) + 1 < n then links := (i, (2 * i) + 1) :: !links;
        if (2 * i) + 2 < n then links := (i, (2 * i) + 2) :: !links
      done;
      of_links ~name:"tree" ~nodes:n !links

let shape_name t = t.name
let nodes t = t.n

let links t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    Array.iter (fun v -> if u < v then acc := (u, v) :: !acc) t.adj.(u)
  done;
  List.sort compare !acc

let neighbors t u =
  if u < 0 || u >= t.n then invalid_arg "Topo.neighbors: node out of range";
  Array.to_list t.adj.(u)

let port_to t ~src ~dst =
  if src < 0 || src >= t.n then None
  else
    let rec find i =
      if i >= Array.length t.adj.(src) then None
      else if t.adj.(src).(i) = dst then Some (i + 1)
      else find (i + 1)
    in
    find 0

let next_hop t ~node ~port =
  if node < 0 || node >= t.n || port <= 0 then None
  else if port - 1 < Array.length t.adj.(node) then Some t.adj.(node).(port - 1)
  else None

let simple_paths ?(limit = 16) t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Topo.simple_paths: node out of range";
  let found = ref [] and count = ref 0 in
  let on_path = Array.make t.n false in
  let rec dfs u acc =
    if !count < limit then
      if u = dst then begin
        found := List.rev (u :: acc) :: !found;
        incr count
      end
      else begin
        on_path.(u) <- true;
        Array.iter (fun v -> if not on_path.(v) then dfs v (u :: acc)) t.adj.(u);
        on_path.(u) <- false
      end
  in
  dfs src [];
  List.rev !found

let pp ppf t =
  Format.fprintf ppf "%s(%d nodes, %d links)" t.name t.n (List.length (links t))
