(** FastRule — efficient and scalable flow-entry updates for TCAM-based
    OpenFlow switches (Qiu et al., ICDCS 2018).

    This module is the library's front door: it re-exports every component
    under one namespace, grouped the way the paper presents the system.
    See DESIGN.md for the architecture and EXPERIMENTS.md for the
    reproduction results.

    {1 Quick tour}

    {[
      let table = Fastrule.Dataset.build_table Fastrule.Dataset.ACL4 ~seed:1 ~n:1000 in
      let tcam  = Fastrule.Layout.(place Original) ~tcam_size:2048 ~order:table.order in
      let graph = Fastrule.Graph.copy table.graph in
      let fr    = Fastrule.Greedy.create ~graph ~tcam () in
      (* schedule an insertion between two existing entries ... *)
    ]}

    or drive a whole update stream through {!Firmware}. *)

(** {1 Infrastructure} *)

module Rng = Fr_prng.Rng

(** {1 Match fields and rules} *)

module Ternary = Fr_tern.Ternary
module Header = Fr_tern.Header
module Rule = Fr_tern.Rule
module Range = Fr_tern.Range

(** {1 The dependency graph (policy compiler)} *)

module Graph = Fr_dag.Graph
module Topo = Fr_dag.Topo
module Dag_build = Fr_dag.Build
module Dag_stats = Fr_dag.Stats
module Overlap_index = Fr_dag.Overlap_index
module Levels = Fr_dag.Levels

(** {1 Data structures (§IV.E)} *)

module Fenwick_sum = Fr_bitree.Fenwick_sum
module Min_tree = Fr_bitree.Min_tree
module Segment_tree = Fr_bitree.Segment_tree

(** {1 The TCAM} *)

module Op = Fr_tcam.Op
module Tcam = Fr_tcam.Tcam
module Image = Fr_tcam.Image
module Layout = Fr_tcam.Layout
module Latency = Fr_tcam.Latency
module Hw_emu = Fr_tcam.Hw_emu
module Defrag = Fr_tcam.Defrag
module Fault = Fr_tcam.Fault
module Deadmap = Fr_tcam.Deadmap

(** {1 Schedulers (§III–§V)} *)

module Algo = Fr_sched.Algo
module Dir = Fr_sched.Dir
module Metric = Fr_sched.Metric
module Store = Fr_sched.Store
module Naive = Fr_sched.Naive
module Ruletris = Fr_sched.Ruletris

module Greedy = Fr_sched.Fastrule
(** The FastRule greedy itself (named [Greedy] here to avoid shadowing this
    facade). *)

module Separated = Fr_sched.Separated
module Check = Fr_sched.Check
module Sabotage = Fr_sched.Sabotage

(** {1 Workloads (§VI.2)} *)

module Profile = Fr_workload.Profile
module Classbench = Fr_workload.Classbench
module Route_gen = Fr_workload.Route_gen
module Dataset = Fr_workload.Dataset
module Updates = Fr_workload.Updates
module Rules_io = Fr_workload.Rules_io
module Zipf = Fr_workload.Zipf

(** {1 Switch firmware and experiments (§VI)} *)

module Measure = Fr_switch.Measure
module Firmware = Fr_switch.Firmware
module Agent = Fr_switch.Agent
module Queue_sim = Fr_switch.Queue_sim
module Experiment = Fr_switch.Experiment
module Report = Fr_switch.Report

(** {1 Resilience (journal, retry, circuit breaker)} *)

module Journal = Fr_resil.Journal
module Backoff = Fr_resil.Backoff
module Breaker = Fr_resil.Breaker

(** {1 Execution (domain pool for parallel drains)} *)

module Pool = Fr_exec.Pool

(** {1 The control plane (sharded multi-agent service)} *)

module Partition = Fr_ctrl.Partition
module Coalesce = Fr_ctrl.Coalesce
module Telemetry = Fr_ctrl.Telemetry
module Shard = Fr_ctrl.Shard
module Ctrl = Fr_ctrl.Service
module Churn = Fr_ctrl.Churn

(** {1 The TCAM-as-cache tier (small TCAM, big software table)} *)

module Cache_backing = Fr_cache.Backing
module Cache_policy = Fr_cache.Policy
module Cache = Fr_cache.Tier
module Cache_driver = Fr_cache.Driver

(** {1 The data plane (wait-free snapshot lookups under update storms)} *)

module Plane_hist = Fr_plane.Hist
module Plane_backend = Fr_plane.Backend
module Plane = Fr_plane.Storm

(** {1 Conformance (differential oracle, fault injection)} *)

module Trace = Fr_conform.Trace
module Oracle = Fr_conform.Oracle
module Shrink = Fr_conform.Shrink
module Bundle = Fr_conform.Bundle

(** {1 The fleet (network-wide consistent updates)} *)

module Net_topo = Fr_net.Topo
module Net_policy = Fr_net.Policy
module Net_plan = Fr_net.Plan
module Net_check = Fr_net.Check
module Net_scenario = Fr_net.Scenario
module Net = Fr_net.Fleet
