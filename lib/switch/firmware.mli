(** The switch firmware pipeline (§III): compiler -> TCAM update scheduler
    -> TCAM, with the paper's two-clock accounting.

    A {!run} owns one live table: the dependency graph, the TCAM image, a
    scheduler, and two meters —

    - {e firmware time}: wall-clock spent computing update sequences
      (scheduling plus the scheduler's own bookkeeping), per update;
    - {e TCAM update time}: the modelled hardware cost of applying the
      sequences ([#ops x per-op latency], 0.6 ms each by default).

    [exec] drives one update through the full pipeline.  An optional
    paranoid mode re-checks the dependency invariant after every update
    (used by tests and examples; disabled in benchmarks). *)

type algo_kind =
  | Naive
  | Ruletris
  | FR_O of Fr_sched.Store.backend  (** FastRule, original layout *)
  | FR_SD of Fr_sched.Store.backend  (** separated layout, dirty delete *)
  | FR_SB of Fr_sched.Store.backend  (** separated layout, balance delete *)

val algo_kind_name : algo_kind -> string
(** Short display name ("naive", "ruletris", "fr-o", "fr-sd", "fr-sb"). *)

val algo_kind_of_string : string -> algo_kind option
(** Inverse of {!algo_kind_name}, accepting the CLI's backend-qualified
    spellings ("fr-o/array", "fr-o/od"); bare FastRule names resolve to
    the BIT back-end.  Used wherever a kind crosses a serialisation
    boundary (CLI flags, journal metadata). *)

val layout_of : algo_kind -> Fr_tcam.Layout.t

val standard_algos : Fr_sched.Store.backend -> algo_kind list
(** The paper's five: Naive, RuleTris, FR-O, FR-SD, FR-SB (FastRule
    variants on the given metric back-end). *)

val make_scheduler :
  algo_kind -> graph:Fr_dag.Graph.t -> tcam:Fr_tcam.Tcam.t -> Fr_sched.Algo.t
(** Instantiate the scheduler of an algorithm kind over existing state —
    the factory {!create} uses, exposed for components (e.g. {!Agent})
    that own their graph and TCAM. *)

type run

val create :
  ?latency:Fr_tcam.Latency.t ->
  ?check_invariant:bool ->
  ?contract_on_delete:bool ->
  ?layout_override:Fr_tcam.Layout.t ->
  algo_kind ->
  table:Fr_workload.Dataset.table ->
  tcam_size:int ->
  unit ->
  run
(** Place the table in a fresh TCAM according to the algorithm's layout
    (overridable, e.g. to study the interleaved layout), copy the graph,
    and set up the scheduler.  [contract_on_delete] preserves transitive
    ordering through deleted entries (semantics-preserving deletion; the
    paper's evaluation uses plain deletion, the default).
    @raise Invalid_argument if the table does not fit. *)

val graph : run -> Fr_dag.Graph.t
val tcam : run -> Fr_tcam.Tcam.t
val algo_name : run -> string

val scheduler : run -> Fr_sched.Algo.t
(** The underlying scheduler — for callers that want to drive updates
    manually (e.g. to interpose {!Fr_sched.Check} between scheduling and
    application) while reusing [create]'s setup. *)

val exec : run -> Fr_workload.Updates.t -> (unit, string) result
(** One update through resolve -> compile -> schedule -> apply -> account.
    On [Error] the update is counted as failed and the table is left
    untouched (the graph effect of a failed insert is rolled back). *)

val exec_all : run -> Fr_workload.Updates.t list -> int
(** Runs a whole stream; returns the number of failed updates. *)

val firmware_times : run -> Measure.Series.t
(** Per-update firmware milliseconds. *)

val tcam_ms_total : run -> float
val tcam_writes : run -> int
val tcam_erases : run -> int
val moves_total : run -> int
(** Writes that re-positioned an existing entry. *)

val updates_done : run -> int
val failures : run -> int

val seq_lengths : run -> Measure.Series.t
(** Per-update sequence length (op count), for move-count analyses. *)
