(** The switch agent: a self-contained flow-table manager.

    This is the API a downstream user actually programs against — the
    OpenFlow-facing layer the paper's firmware sits beneath.  It owns the
    rule store, the dependency graph, the TCAM and a scheduler, and turns
    flow-mod messages into hardware update sequences:

    - [Add rule]: compile the rule's minimal dependencies against the live
      table (the policy-compiler stage), then schedule and apply the
      insertion;
    - [Set_action]: rewrite the entry in place — one hardware write, zero
      movements.  This is sound because the dependency graph orders
      {e every} overlapping pair regardless of actions, so an action
      change can never require reordering.  If the entry sits on a row
      the dead map has condemned (in-place rewrite would fail forever),
      the agent relocates it through the scheduler's own Remove + Add
      path instead, keeping every scheduler invariant;
    - [Remove id]: schedule the deletion and remove the node {e with
      contraction}, preserving the transitive shadowing order that flowed
      through the removed rule (two rules that both overlapped it may
      overlap each other; the reduced graph may have relied on the removed
      node to order them).

    The agent optionally verifies every sequence against the shadow table
    ({!Fr_sched.Check}) before touching the TCAM, and meters the paper's
    two clocks. *)

type flow_mod =
  | Add of Fr_tern.Rule.t
  | Set_action of { id : int; action : Fr_tern.Rule.action }
  | Remove of { id : int }

val pp_flow_mod : Format.formatter -> flow_mod -> unit

type t

val create :
  ?kind:Firmware.algo_kind ->
  ?scheduler:(graph:Fr_dag.Graph.t -> tcam:Fr_tcam.Tcam.t -> Fr_sched.Algo.t) ->
  ?latency:Fr_tcam.Latency.t ->
  ?verify:bool ->
  capacity:int ->
  unit ->
  t
(** An empty table.  Defaults: FastRule on the original layout with the
    BIT back-end, 0.6 ms/op latency model, [verify = false].
    [scheduler] overrides the {!Firmware.make_scheduler} factory for
    [kind] while keeping [kind]'s layout — the conformance harness uses it
    to interpose recorders and saboteurs ({!Fr_sched.Sabotage}) around the
    real scheduler. *)

val of_rules :
  ?kind:Firmware.algo_kind ->
  ?scheduler:(graph:Fr_dag.Graph.t -> tcam:Fr_tcam.Tcam.t -> Fr_sched.Algo.t) ->
  ?latency:Fr_tcam.Latency.t ->
  ?verify:bool ->
  ?deadmap:Fr_tcam.Deadmap.t ->
  capacity:int ->
  Fr_tern.Rule.t array ->
  t
(** Bulk-load an initial policy (compiled in one pass, placed according to
    the scheduler's layout).  [deadmap] is adopted by the fresh TCAM and
    placement packs around its dead rows — the restart path for a switch
    whose hardware already has known-bad banks ({!Fr_ctrl.Shard.reset}
    carries the map across rebuilds so rediscovery is not needed).
    @raise Invalid_argument if the rules do not fit (on the writable rows)
    or ids collide. *)

val apply : t -> flow_mod -> (unit, string) result
(** Process one flow-mod end to end.  On [Error] the table is unchanged —
    with two deliberate exceptions under an installed fault plan (see
    {!set_fault}): a fault that interrupts a sequence mid-way leaves the
    already-applied prefix in place (safe: a verified sequence keeps the
    dependency invariant after {e every} op), and a [Remove] whose erase
    landed before the fault completes its logical removal so the store
    and the TCAM keep agreeing.  Error messages are classifiable by
    prefix: ["verify: ..."] is a shadow-table rejection of the emitted
    sequence (the scheduler is wrong), ["fault: ..."] an injected
    hardware failure; anything else is a scheduling/request rejection. *)

val apply_batch :
  ?refresh_every:int -> t -> flow_mod list -> (unit, string) result list
(** Process a list of flow-mods in order, returning one result per mod
    (same positions).  Maximal runs of consecutive [Add]s are driven
    through the scheduler's batched-insert path when it offers one
    ({!Fr_sched.Algo.t}[.insert_batch]): dependencies are compiled
    sequentially so batch members order against each other, and metric
    maintenance is flushed every [refresh_every] insertions (default [1]
    — every slot the batch consumes is accounted before the next member
    schedules, preserving per-op sequence quality; raise it to trade
    movements for less maintenance, see {!Fr_sched.Fastrule.insert_batch}).
    A failed mod never disturbs its batch mates — earlier requests stay
    applied, later ones are re-scheduled without the failed rule — so each
    result is exactly what the sequential [apply] stream would have
    produced.  Agents created with [verify = true], agents with a fault
    plan installed (and schedulers without a batch path) fall back to
    per-mod {!apply}, so the shadow-table check and the fault plan still
    guard every sequence. *)

val set_fault : t -> Fr_tcam.Fault.t option -> unit
(** Install (or clear) a fault plan consulted before every hardware op.
    Intended for the conformance harness on the (default) FastRule
    schedulers, whose [after_apply] bookkeeping recomputes from TCAM
    truth and therefore survives partially-applied sequences; the
    stateful baselines (Naive's pending renumber) are not fault-safe. *)

val fault : t -> Fr_tcam.Fault.t option

val dead_rows : t -> int
(** Rows the TCAM's {!Fr_tcam.Deadmap} currently marks dead.  Rows are
    condemned by failed writes (see {!apply}: a ["fault: ..."] error on an
    insert op also strikes its target address) and revived by successful
    writes or {!probe_dead}. *)

val probe_dead : t -> int * int
(** Re-test every dead row against the installed fault plan (a probe is a
    scratch write-and-erase on a row holding no entry, so it is safe on
    live hardware).  Rows that no longer reject writes are revived in the
    dead map; with no fault plan installed every dead mark is spurious
    and is cleared.  Returns [(probed, recovered)]. *)

val lookup : t -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** What the hardware answers: highest-address match.  Increments the
    matched rule's packet counter (OpenFlow flow stats). *)

val published : t -> Fr_tcam.Image.t
(** The wait-free read face: the latest snapshot image, republished by
    every committed hardware op and payload (re)bind.  One atomic load;
    the returned image is immutable and stays valid however long the
    caller holds it.  Safe to call from any domain while this agent's
    domain is mid-flush. *)

val lookup_published : t -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** [Image.lookup (published t)] — the lookup a reader domain performs
    during an update storm.  Wait-free and unsynchronised, so it does
    {e no} hit accounting; readers keep local tallies and merge them with
    {!account_hits} after joining. *)

val account_hits : t -> misses:int -> (int * int) list -> unit
(** Merge reader-side tallies [(rule id, packets)] plus a miss count into
    the agent's flow-stats counters (call on the agent's own domain, after
    the readers joined).  Packets for rules still installed land on their
    counters exactly as live {!lookup}s would; packets whose winning rule
    has since been removed are kept in {!retired_hits} — served from a
    snapshot is still served.  @raise Invalid_argument on negative
    counts. *)

val retired_hits : t -> int
(** Snapshot-served packets whose winning rule was removed before the
    tallies merged ({!account_hits}); they still count in
    {!total_packets}. *)

val set_publish_observer : t -> (Fr_tcam.Image.t -> unit) option -> unit
(** Observe every publication (after the published pointer moves).  The
    conformance oracle uses this to capture each mid-cascade instant;
    leave it [None] on hot paths. *)

val packet_count : t -> int -> int
(** Packets accounted to a rule by {!lookup} since installation (0 for
    unknown rules; counters vanish with the rule on [Remove] and survive
    [Set_action]). *)

val total_packets : t -> int
(** All packets looked up, including misses. *)

val miss_count : t -> int
(** Lookups that matched nothing (would punt to the controller). *)

val semantic_lookup : t -> Fr_tern.Header.packet -> Fr_tern.Rule.t option
(** The specification: highest-priority match over the rule store (ties to
    the lower id), evaluated linearly.  {!lookup} must always agree — the
    test suite drives random packets through both. *)

val rule : t -> int -> Fr_tern.Rule.t option
val rule_count : t -> int
val capacity : t -> int
val rules : t -> Fr_tern.Rule.t list

val graph : t -> Fr_dag.Graph.t
val tcam : t -> Fr_tcam.Tcam.t

val firmware_ms_total : t -> float
val tcam_ms_total : t -> float
val mods_applied : t -> int

val verify_ms_total : t -> float
(** Wall-clock spent in {!Fr_sched.Check.sequence} (0 unless
    [verify = true]) — the price of the safety net, reported separately
    from firmware time so the conformance bench can quote verification
    overhead honestly. *)

val verified_ops : t -> int
(** Ops run through the shadow-table check so far. *)

val snapshot : t -> string
(** The installed policy in the {!Fr_workload.Rules_io} text format
    (priority order is part of each rule; the TCAM image itself is
    re-derivable). *)

val save : t -> string -> unit
(** [save t path] — {!snapshot} to a file. *)

val verify_consistent : t -> (unit, string) result
(** Cross-check the three views of the table: every stored rule has a
    TCAM entry, the TCAM holds nothing else, and the image respects the
    dependency-graph order ({!Fr_tcam.Tcam.check_dag_order}).  The
    recovery path ([Fr_resil] / [Fr_ctrl.Service.recover]) runs this on
    every rebuilt shard before putting it back in service. *)

val restore :
  ?kind:Firmware.algo_kind ->
  ?latency:Fr_tcam.Latency.t ->
  ?verify:bool ->
  capacity:int ->
  string ->
  (t, string) result
(** Load a table saved by {!save} into a fresh agent. *)
