module Rule = Fr_tern.Rule
module Tcam = Fr_tcam.Tcam
module Op = Fr_tcam.Op
module Layout = Fr_tcam.Layout
module Latency = Fr_tcam.Latency
module Graph = Fr_dag.Graph
module Build = Fr_dag.Build
module Overlap_index = Fr_dag.Overlap_index
module Algo = Fr_sched.Algo
module Check = Fr_sched.Check

type flow_mod =
  | Add of Rule.t
  | Set_action of { id : int; action : Rule.action }
  | Remove of { id : int }

let pp_flow_mod ppf = function
  | Add r -> Format.fprintf ppf "add %a" Rule.pp r
  | Set_action { id; action } ->
      Format.fprintf ppf "set-action %d -> %a" id Rule.pp_action action
  | Remove { id } -> Format.fprintf ppf "remove %d" id

type t = {
  store : (int, Rule.t) Hashtbl.t;
  index : Overlap_index.t;  (* narrows the per-Add overlap scan *)
  graph : Graph.t;
  tcam : Tcam.t;
  algo : Algo.t;
  latency : Latency.t;
  verify : bool;
  mutable fault : Fr_tcam.Fault.t option;
  mutable fw_ms : float;
  mutable tcam_ms : float;
  mutable verify_ms : float;
  mutable verified_ops : int;
  mutable mods : int;
  counters : (int, int) Hashtbl.t;  (* rule id -> packets matched *)
  mutable packets : int;
  mutable misses : int;
  mutable retired_hits : int;  (* snapshot hits whose rule has been removed *)
  published : Fr_tcam.Image.t Atomic.t;  (* the wait-free read face *)
  mutable publish_observer : (Fr_tcam.Image.t -> unit) option;
}

(* Every committed hardware op (and payload bind/unbind) republishes: one
   atomic store here, one atomic load on the reader side.  The observer
   rides along for the conformance oracle, which wants every mid-cascade
   instant, not just the latest. *)
let install_publisher t =
  Atomic.set t.published (Tcam.image t.tcam);
  Tcam.set_publisher t.tcam
    (Some
       (fun img ->
         Atomic.set t.published img;
         match t.publish_observer with Some f -> f img | None -> ()))

let default_kind = Firmware.FR_O Fr_sched.Store.Bit_backend

let default_scheduler kind ~graph ~tcam = Firmware.make_scheduler kind ~graph ~tcam

let create ?(kind = default_kind) ?scheduler ?(latency = Latency.default)
    ?(verify = false) ~capacity () =
  let tcam = Tcam.create ~size:capacity in
  let graph = Graph.create () in
  let make = Option.value scheduler ~default:(default_scheduler kind) in
  let t =
    {
      store = Hashtbl.create 64;
      index = Overlap_index.create ();
      graph;
      tcam;
      algo = make ~graph ~tcam;
      latency;
      verify;
      fault = None;
      fw_ms = 0.0;
      tcam_ms = 0.0;
      verify_ms = 0.0;
      verified_ops = 0;
      mods = 0;
      counters = Hashtbl.create 64;
      packets = 0;
      misses = 0;
      retired_hits = 0;
      published = Atomic.make Fr_tcam.Image.empty;
      publish_observer = None;
    }
  in
  install_publisher t;
  t

let of_rules ?(kind = default_kind) ?scheduler ?(latency = Latency.default)
    ?(verify = false) ?deadmap ~capacity rules =
  let seen = Hashtbl.create (Array.length rules) in
  Array.iter
    (fun (r : Rule.t) ->
      if Hashtbl.mem seen r.Rule.id then
        invalid_arg (Printf.sprintf "Agent.of_rules: duplicate id %d" r.Rule.id);
      Hashtbl.replace seen r.Rule.id ())
    rules;
  let graph = Build.compile_fast rules in
  let order = Fr_workload.Dataset.precedence_order rules in
  let layout = Firmware.layout_of kind in
  let tcam = Layout.place ?deadmap layout ~tcam_size:capacity ~order in
  let make = Option.value scheduler ~default:(default_scheduler kind) in
  let t =
    {
      store = Hashtbl.create (2 * Array.length rules);
      index = Overlap_index.create ();
      graph;
      tcam;
      algo = make ~graph ~tcam;
      latency;
      verify;
      fault = None;
      fw_ms = 0.0;
      tcam_ms = 0.0;
      verify_ms = 0.0;
      verified_ops = 0;
      mods = 0;
      counters = Hashtbl.create 64;
      packets = 0;
      misses = 0;
      retired_hits = 0;
      published = Atomic.make Fr_tcam.Image.empty;
      publish_observer = None;
    }
  in
  Array.iter
    (fun (r : Rule.t) ->
      Hashtbl.replace t.store r.Rule.id r;
      Overlap_index.add t.index r;
      Tcam.bind_rule t.tcam r)
    rules;
  install_publisher t;
  t

let existing t = Hashtbl.fold (fun _ r acc -> r :: acc) t.store []
let set_fault t f = t.fault <- f

(* Apply op-by-op, asking the fault plan before each op; the applied
   prefix stays — a verified sequence keeps the dependency invariant after
   every single op, so stopping mid-sequence leaves a consistent table.
   Writes and erases take different fault paths (stuck rows reject new
   content but their valid bit still clears), and every failed write is
   reported to the dead map — this is how the firmware discovers dead
   rows in the first place. *)
let apply_faulted t fault ops =
  let rec go applied = function
    | [] -> (List.rev applied, Ok ())
    | op :: rest ->
        let addr = Op.addr op in
        let failed =
          match op with
          | Op.Insert _ ->
              if Fr_tcam.Fault.should_fail fault ~addr then begin
                ignore (Tcam.note_write_failure t.tcam ~addr);
                true
              end
              else false
          | Op.Delete _ -> Fr_tcam.Fault.should_fail_erase fault ~addr
        in
        if failed then
          ( List.rev applied,
            Error
              (Format.asprintf "fault: injected write failure on %a" Op.pp op)
          )
        else begin
          Tcam.apply_sequence t.tcam [ op ];
          go (op :: applied) rest
        end
  in
  go [] ops

let commit t ops =
  (if t.verify then begin
     let r, dt = Measure.time_ms (fun () -> Check.sequence t.graph t.tcam ops) in
     t.verify_ms <- t.verify_ms +. dt;
     t.verified_ops <- t.verified_ops + List.length ops;
     match r with Ok () -> Ok () | Error e -> Error ("verify: " ^ e)
   end
   else Ok ())
  |> function
  | Error _ as e -> e
  | Ok () ->
      let applied, outcome =
        match t.fault with
        | None ->
            Tcam.apply_sequence t.tcam ops;
            (ops, Ok ())
        | Some fault -> apply_faulted t fault ops
      in
      t.tcam_ms <- t.tcam_ms +. Latency.sequence_ms t.latency applied;
      (* Latency faults slow every op actually driven to hardware. *)
      (match t.fault with
      | Some f ->
          t.tcam_ms <-
            t.tcam_ms +. (Fr_tcam.Fault.slow_ms f *. float (List.length applied))
      | None -> ());
      (* The metric refreshes recompute from the TCAM's actual state, so
         feeding them the applied prefix keeps the store truthful even
         after a mid-sequence fault. *)
      let (), dt = Measure.time_ms (fun () -> t.algo.Algo.after_apply applied) in
      t.fw_ms <- t.fw_ms +. dt;
      (match outcome with Ok () -> t.mods <- t.mods + 1 | Error _ -> ());
      outcome

let rec apply t fm =
  match fm with
  | Add rule ->
      if Hashtbl.mem t.store rule.Rule.id then
        Error (Printf.sprintf "rule %d already installed" rule.Rule.id)
      else begin
        let (deps, dependents), dt_compile =
          Measure.time_ms (fun () ->
              (* Only overlapping rules can contribute constraints, so the
                 index-narrowed set is equivalent to the full table. *)
              Build.dependencies_of t.graph
                ~existing:(Overlap_index.overlapping t.index rule)
                rule)
        in
        Graph.add_node t.graph rule.Rule.id;
        List.iter (fun v -> Graph.add_edge t.graph rule.Rule.id v) deps;
        List.iter (fun u -> Graph.add_edge t.graph u rule.Rule.id) dependents;
        let result, dt_sched =
          Measure.time_ms (fun () ->
              t.algo.Algo.schedule_insert ~rule_id:rule.Rule.id ~deps ~dependents)
        in
        t.fw_ms <- t.fw_ms +. dt_compile +. dt_sched;
        match result with
        | Error _ as e ->
            Graph.remove_node t.graph rule.Rule.id;
            e
        | Ok ops -> (
            (* Bind the payload before the sequence commits: the op that
               writes the new entry publishes a snapshot that must already
               resolve this id. *)
            Tcam.bind_rule t.tcam rule;
            match commit t ops with
            | Error _ as e ->
                Graph.remove_node t.graph rule.Rule.id;
                if not (Tcam.mem t.tcam rule.Rule.id) then
                  Tcam.unbind_rule t.tcam ~id:rule.Rule.id;
                e
            | Ok () ->
                Hashtbl.replace t.store rule.Rule.id rule;
                Overlap_index.add t.index rule;
                Ok ())
      end
  | Set_action { id; action } -> (
      match (Hashtbl.find_opt t.store id, Tcam.addr_of t.tcam id) with
      | Some rule, Some addr when Tcam.is_dead t.tcam addr -> (
          (* The entry sits on a row that rejects writes: an in-place
             rewrite would fail forever.  Relocate through the scheduler's
             own Remove + Add path so every region/rank invariant is
             maintained; the transient absence is invisible at flow-mod
             boundaries.  If the re-Add fails after the Remove landed the
             rule is lost — the caller sees the error and can re-issue. *)
          match apply t (Remove { id }) with
          | Error _ as e -> e
          | Ok () -> (
              match apply t (Add { rule with Rule.action }) with
              | Ok () -> Ok ()
              | Error e -> Error ("relocate: " ^ e)))
      | Some rule, Some addr -> (
          (* One in-place hardware write; the dependency graph is
             action-agnostic so no reordering can be needed. *)
          let ops = [ Op.insert ~rule_id:id ~addr ] in
          match commit t ops with
          | Error _ as e -> e
          | Ok () ->
              let updated = { rule with Rule.action } in
              Hashtbl.replace t.store id updated;
              Overlap_index.add t.index updated;
              (* Rebind after the write commits: the snapshot carrying the
                 new payload is the post-state, the one before it the
                 pre-state — matching is action-agnostic so both answer
                 lookups identically. *)
              Tcam.bind_rule t.tcam updated;
              Ok ())
      | _ -> Error (Printf.sprintf "rule %d is not installed" id))
  | Remove { id } -> (
      if not (Hashtbl.mem t.store id) then
        Error (Printf.sprintf "rule %d is not installed" id)
      else
        let result, dt =
          Measure.time_ms (fun () -> t.algo.Algo.schedule_delete ~rule_id:id)
        in
        t.fw_ms <- t.fw_ms +. dt;
        let finish () =
          (* Contraction keeps transitive shadowing order alive. *)
          Graph.remove_node ~contract:true t.graph id;
          (match Hashtbl.find_opt t.store id with
          | Some r -> Overlap_index.remove t.index r
          | None -> ());
          Hashtbl.remove t.store id;
          Hashtbl.remove t.counters id;
          (* Unbind only after the entry has left the slots: snapshots
             taken during the trailing balance moves still resolve every
             id they can match. *)
          Tcam.unbind_rule t.tcam ~id
        in
        match result with
        | Error _ as e -> e
        | Ok ops -> (
            match commit t ops with
            | Error e when not (Tcam.mem t.tcam id) ->
                (* A fault interrupted the sequence after the erase itself
                   landed (e.g. before a balance move): the entry is gone
                   from hardware, so complete the logical removal — the
                   recovery that keeps store and TCAM agreeing — but still
                   report the casualty. *)
                finish ();
                Error (e ^ " (entry removed; trailing moves abandoned)")
            | Error _ as e -> e
            | Ok () ->
                finish ();
                Ok ()))

(* A run of consecutive [Add]s through the scheduler's batched-insert
   path.  Dependencies are compiled one rule at a time against the live
   table {e plus} the batch mates already compiled, and every node/edge is
   in the graph before scheduling starts, so later requests may
   legitimately constrain against earlier ones (the batch applies its
   sequences in request order).  Store/index insertions are tentative and
   rolled back for the requests that fail. *)
let add_run t ~refresh_every (adds : (int * Rule.t) list)
    (results : (unit, string) result array) batch =
  let requests =
    List.filter_map
      (fun (pos, (rule : Rule.t)) ->
        if Hashtbl.mem t.store rule.Rule.id then begin
          results.(pos) <-
            Error (Printf.sprintf "rule %d already installed" rule.Rule.id);
          None
        end
        else begin
          let (deps, dependents), dt_compile =
            Measure.time_ms (fun () ->
                Build.dependencies_of t.graph
                  ~existing:(Overlap_index.overlapping t.index rule)
                  rule)
          in
          t.fw_ms <- t.fw_ms +. dt_compile;
          Graph.add_node t.graph rule.Rule.id;
          List.iter (fun v -> Graph.add_edge t.graph rule.Rule.id v) deps;
          List.iter (fun u -> Graph.add_edge t.graph u rule.Rule.id) dependents;
          Hashtbl.replace t.store rule.Rule.id rule;
          Overlap_index.add t.index rule;
          Tcam.bind_rule t.tcam rule;
          Some (pos, rule, deps, dependents)
        end)
      adds
  in
  let rollback (rule : Rule.t) =
    Graph.remove_node t.graph rule.Rule.id;
    Overlap_index.remove t.index rule;
    Hashtbl.remove t.store rule.Rule.id;
    if not (Tcam.mem t.tcam rule.Rule.id) then
      Tcam.unbind_rule t.tcam ~id:rule.Rule.id
  in
  let rec schedule = function
    | [] -> ()
    | requests -> (
        let tuples =
          List.map (fun (_, (r : Rule.t), d, ds) -> (r.Rule.id, d, ds)) requests
        in
        let ops_before = Tcam.ops_issued t.tcam in
        let result, dt = Measure.time_ms (fun () -> batch ~refresh_every tuples) in
        t.fw_ms <- t.fw_ms +. dt;
        (* The batch applies its sequences itself; the modelled hardware
           cost is the op-count delta (insertion sequences are writes). *)
        t.tcam_ms <-
          t.tcam_ms
          +. Latency.ops_ms t.latency
               ~writes:(Tcam.ops_issued t.tcam - ops_before)
               ~erases:0;
        match result with
        | Ok _ ->
            List.iter
              (fun (pos, _, _, _) ->
                results.(pos) <- Ok ();
                t.mods <- t.mods + 1)
              requests
        | Error e -> (
            (* Requests before the first un-installed rule are applied and
               stay; the failed one is rolled back and excised from its
               mates' constraint lists before the rest is retried. *)
            match
              List.partition
                (fun (_, (r : Rule.t), _, _) ->
                  Tcam.addr_of t.tcam r.Rule.id <> None)
                requests
            with
            | applied, [] ->
                List.iter
                  (fun (pos, _, _, _) ->
                    results.(pos) <- Ok ();
                    t.mods <- t.mods + 1)
                  applied
            | applied, (fail_pos, failed, _, _) :: rest ->
                List.iter
                  (fun (pos, _, _, _) ->
                    results.(pos) <- Ok ();
                    t.mods <- t.mods + 1)
                  applied;
                results.(fail_pos) <- Error e;
                rollback failed;
                let fid = failed.Rule.id in
                schedule
                  (List.map
                     (fun (pos, r, deps, dependents) ->
                       ( pos,
                         r,
                         List.filter (fun v -> v <> fid) deps,
                         List.filter (fun u -> u <> fid) dependents ))
                     rest)))
  in
  schedule requests

let apply_batch ?(refresh_every = 1) t mods =
  if refresh_every < 1 then
    invalid_arg "Agent.apply_batch: refresh_every must be >= 1";
  match t.algo.Algo.insert_batch with
  | Some batch when (not t.verify) && t.fault = None ->
      let mods = Array.of_list mods in
      let results = Array.make (Array.length mods) (Ok ()) in
      let n = Array.length mods in
      let i = ref 0 in
      while !i < n do
        match mods.(!i) with
        | Add _ ->
            let run = ref [] in
            while
              !i < n && (match mods.(!i) with Add _ -> true | _ -> false)
            do
              (match mods.(!i) with
              | Add rule -> run := (!i, rule) :: !run
              | _ -> assert false);
              incr i
            done;
            add_run t ~refresh_every (List.rev !run) results batch
        | fm ->
            results.(!i) <- apply t fm;
            incr i
      done;
      Array.to_list results
  | _ -> List.map (apply t) mods

let lookup t packet =
  t.packets <- t.packets + 1;
  match Tcam.lookup t.tcam ~rules:(Hashtbl.find t.store) packet with
  | Some id ->
      Hashtbl.replace t.counters id
        (1 + Option.value (Hashtbl.find_opt t.counters id) ~default:0);
      Hashtbl.find_opt t.store id
  | None ->
      t.misses <- t.misses + 1;
      None

let packet_count t id = Option.value (Hashtbl.find_opt t.counters id) ~default:0
let total_packets t = t.packets
let miss_count t = t.misses
let retired_hits t = t.retired_hits

let published t = Atomic.get t.published

let lookup_published t packet =
  Fr_tcam.Image.lookup (Atomic.get t.published) packet

let set_publish_observer t f = t.publish_observer <- f

(* Reader domains tally hits against whatever snapshots they held; the
   merge happens on the agent's own domain after they join.  A tallied
   rule may have been removed since the snapshot that served it — those
   packets were genuinely forwarded by that rule, so they are kept as
   [retired_hits] rather than silently dropped (the counter fix: packets
   served from an image still account to the winning rule). *)
let account_hits t ~misses tallies =
  List.iter
    (fun (id, n) ->
      if n < 0 then invalid_arg "Agent.account_hits: negative tally";
      if n > 0 then begin
        t.packets <- t.packets + n;
        if Hashtbl.mem t.store id then
          Hashtbl.replace t.counters id
            (n + Option.value (Hashtbl.find_opt t.counters id) ~default:0)
        else t.retired_hits <- t.retired_hits + n
      end)
    tallies;
  if misses < 0 then invalid_arg "Agent.account_hits: negative misses";
  t.packets <- t.packets + misses;
  t.misses <- t.misses + misses

(* Highest priority wins; equal priorities resolve to the smaller id — the
   same total order the compiler's "beats" uses. *)
let semantic_lookup t packet =
  Hashtbl.fold
    (fun _ (r : Rule.t) best ->
      if not (Rule.matches_packet r packet) then best
      else
        match best with
        | None -> Some r
        | Some (b : Rule.t) ->
            if
              r.Rule.priority > b.Rule.priority
              || (r.Rule.priority = b.Rule.priority && r.Rule.id < b.Rule.id)
            then Some r
            else best)
    t.store None

(* Priority order (precedence) makes the snapshot canonical. *)
let snapshot t =
  let rules = Array.of_list (existing t) in
  Array.sort
    (fun (a : Rule.t) (b : Rule.t) ->
      let c = Int.compare b.Rule.priority a.Rule.priority in
      if c <> 0 then c else Int.compare a.Rule.id b.Rule.id)
    rules;
  Fr_workload.Rules_io.to_string rules

let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try output_string oc (snapshot t)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let rule t id = Hashtbl.find_opt t.store id
let rule_count t = Hashtbl.length t.store
let capacity t = Tcam.size t.tcam
let rules t = existing t
let graph t = t.graph
let tcam t = t.tcam
let firmware_ms_total t = t.fw_ms
let tcam_ms_total t = t.tcam_ms
let verify_ms_total t = t.verify_ms
let verified_ops t = t.verified_ops
let mods_applied t = t.mods
let fault t = t.fault
let dead_rows t = Tcam.dead_count t.tcam

(* Heal drill: re-test every row the dead map condemns.  A probe is a
   scratch write-and-erase, so a row is recovered exactly when writes to
   it no longer fail — the fault plan's stuck set answers that without
   burning a spontaneous-failure draw (probes are retried on a bus
   glitch).  No plan installed means the hardware is healthy and every
   mark was spurious. *)
let probe_dead t =
  let dead = Tcam.deadmap t.tcam in
  let addrs = Fr_tcam.Deadmap.dead_list dead in
  let recovered = ref 0 in
  List.iter
    (fun addr ->
      let still_stuck =
        match t.fault with
        | Some f -> Fr_tcam.Fault.is_stuck f ~addr
        | None -> false
      in
      if (not still_stuck) && Fr_tcam.Deadmap.note_success dead ~addr then
        incr recovered)
    addrs;
  (List.length addrs, !recovered)

(* Recovery post-condition: the store, the TCAM image and the dependency
   graph must tell one coherent story before a rebuilt agent is put back
   in service. *)
let verify_consistent t =
  let stored = Hashtbl.length t.store in
  let in_tcam = Tcam.used_count t.tcam in
  if stored <> in_tcam then
    Error
      (Printf.sprintf "store holds %d rules but TCAM holds %d entries" stored
         in_tcam)
  else
    let missing =
      Hashtbl.fold
        (fun id _ acc -> if Tcam.mem t.tcam id then acc else id :: acc)
        t.store []
    in
    match missing with
    | id :: _ -> Error (Printf.sprintf "rule %d is stored but not in the TCAM" id)
    | [] -> (
        match Tcam.check_dag_order t.tcam t.graph with
        | Error e -> Error ("dependency order: " ^ e)
        | Ok () -> (
            match Tcam.image_consistent t.tcam with
            | Ok () -> Ok ()
            | Error e -> Error ("published image: " ^ e)))

let restore ?kind ?latency ?verify ~capacity path =
  match Fr_workload.Rules_io.load path with
  | Error _ as e -> e
  | Ok rules -> (
      match of_rules ?kind ?latency ?verify ~capacity rules with
      | t -> Ok t
      | exception Invalid_argument msg -> Error msg)
