module Tcam = Fr_tcam.Tcam
module Op = Fr_tcam.Op
module Layout = Fr_tcam.Layout
module Latency = Fr_tcam.Latency
module Graph = Fr_dag.Graph
module Store = Fr_sched.Store
module Algo = Fr_sched.Algo
module Updates = Fr_workload.Updates
module Dataset = Fr_workload.Dataset

type algo_kind =
  | Naive
  | Ruletris
  | FR_O of Store.backend
  | FR_SD of Store.backend
  | FR_SB of Store.backend

let algo_kind_name = function
  | Naive -> "naive"
  | Ruletris -> "ruletris"
  | FR_O _ -> "fr-o"
  | FR_SD _ -> "fr-sd"
  | FR_SB _ -> "fr-sb"

(* Inverse of [algo_kind_name] plus the CLI's backend-qualified spellings
   (fr-o/array, fr-o/od); bare FastRule names resolve to the BIT backend. *)
let algo_kind_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some Naive
  | "ruletris" -> Some Ruletris
  | "fr-o" -> Some (FR_O Store.Bit_backend)
  | "fr-o/array" -> Some (FR_O Store.Array_backend)
  | "fr-o/od" | "fr-o/on-demand" -> Some (FR_O Store.On_demand)
  | "fr-sd" -> Some (FR_SD Store.Bit_backend)
  | "fr-sb" -> Some (FR_SB Store.Bit_backend)
  | _ -> None

let layout_of = function
  | Naive | Ruletris | FR_O _ -> Layout.Original
  | FR_SD _ | FR_SB _ -> Layout.Separated

let standard_algos backend =
  [ Naive; Ruletris; FR_O backend; FR_SD backend; FR_SB backend ]

type run = {
  graph : Graph.t;
  tcam : Tcam.t;
  algo : Algo.t;
  latency : Latency.t;
  check_invariant : bool;
  contract_on_delete : bool;
  firmware : Measure.Series.t;
  seq_lens : Measure.Series.t;
  mutable tcam_ms : float;
  mutable writes : int;
  mutable erases : int;
  mutable done_count : int;
  mutable failed : int;
}

let make_scheduler kind ~graph ~tcam =
  match kind with
  | Naive -> Fr_sched.Naive.(algo (create ~tcam))
  | Ruletris -> Fr_sched.Ruletris.make ~graph ~tcam
  | FR_O backend -> Fr_sched.Fastrule.(algo (create ~backend ~graph ~tcam ()))
  | FR_SD backend ->
      Fr_sched.Separated.(algo (create ~backend ~delete_mode:Dirty ~graph ~tcam ()))
  | FR_SB backend ->
      Fr_sched.Separated.(
        algo (create ~backend ~delete_mode:Balance ~graph ~tcam ()))

let create ?(latency = Latency.default) ?(check_invariant = false)
    ?(contract_on_delete = false) ?layout_override kind ~table ~tcam_size () =
  let layout = Option.value layout_override ~default:(layout_of kind) in
  let tcam = Layout.place layout ~tcam_size ~order:table.Dataset.order in
  let graph = Graph.copy table.Dataset.graph in
  let algo = make_scheduler kind ~graph ~tcam in
  {
    graph;
    tcam;
    algo;
    latency;
    check_invariant;
    contract_on_delete;
    firmware = Measure.Series.create ();
    seq_lens = Measure.Series.create ();
    tcam_ms = 0.0;
    writes = 0;
    erases = 0;
    done_count = 0;
    failed = 0;
  }

let graph r = r.graph
let tcam r = r.tcam
let algo_name r = r.algo.Algo.name
let scheduler r = r.algo

let account_ops r ops =
  Measure.Series.add r.seq_lens (float_of_int (List.length ops));
  List.iter
    (function
      | Op.Insert _ -> r.writes <- r.writes + 1
      | Op.Delete _ -> r.erases <- r.erases + 1)
    ops;
  r.tcam_ms <- r.tcam_ms +. Latency.sequence_ms r.latency ops

let check r =
  if r.check_invariant then
    match Tcam.check_dag_order r.tcam r.graph with
    | Ok () -> Ok ()
    | Error msg -> Error ("dependency invariant violated: " ^ msg)
  else Ok ()

let exec r update =
  let resolved = Updates.resolve r.graph r.tcam update in
  let outcome =
    match resolved with
    | Updates.R_insert { id; deps; dependents } -> (
        (* Compiler stage first: the scheduler sees the new node's edges. *)
        Updates.apply_graph r.graph resolved;
        let result, dt =
          Measure.time_ms (fun () ->
              r.algo.Algo.schedule_insert ~rule_id:id ~deps ~dependents)
        in
        match result with
        | Error msg ->
            Graph.remove_node r.graph id;
            Error msg
        | Ok ops ->
            account_ops r ops;
            Tcam.apply_sequence r.tcam ops;
            let (), dt2 = Measure.time_ms (fun () -> r.algo.Algo.after_apply ops) in
            Measure.Series.add r.firmware (dt +. dt2);
            check r)
    | Updates.R_delete { id } -> (
        let result, dt =
          Measure.time_ms (fun () -> r.algo.Algo.schedule_delete ~rule_id:id)
        in
        match result with
        | Error msg -> Error msg
        | Ok ops ->
            account_ops r ops;
            Tcam.apply_sequence r.tcam ops;
            Updates.apply_graph ~contract:r.contract_on_delete r.graph resolved;
            let (), dt2 = Measure.time_ms (fun () -> r.algo.Algo.after_apply ops) in
            Measure.Series.add r.firmware (dt +. dt2);
            check r)
  in
  (match outcome with
  | Ok () -> r.done_count <- r.done_count + 1
  | Error _ -> r.failed <- r.failed + 1);
  outcome

let exec_all r updates =
  List.iter (fun u -> ignore (exec r u)) updates;
  r.failed

let firmware_times r = r.firmware
let tcam_ms_total r = r.tcam_ms
let tcam_writes r = r.writes
let tcam_erases r = r.erases
let moves_total r = Tcam.moves_issued r.tcam
let updates_done r = r.done_count
let failures r = r.failed
let seq_lengths r = r.seq_lens
