open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_table = lazy (Dataset.build_table Dataset.ACL4 ~seed:31 ~n:150)

let stream_for table ~count ~with_deletes ~seed =
  let rng = Rng.create ~seed in
  Updates.generate rng
    ~live:(Array.to_list table.Dataset.order)
    ~count ~with_deletes ~id_base:10_000

let all_kinds =
  [
    Firmware.Naive;
    Firmware.Ruletris;
    Firmware.FR_O Store.Bit_backend;
    Firmware.FR_O Store.Array_backend;
    Firmware.FR_O Store.On_demand;
    Firmware.FR_SD Store.Bit_backend;
    Firmware.FR_SB Store.Bit_backend;
  ]

let test_all_algorithms_run_clean () =
  let table = Lazy.force small_table in
  let stream = stream_for table ~count:120 ~with_deletes:true ~seed:77 in
  List.iter
    (fun kind ->
      let run = Firmware.create ~check_invariant:true kind ~table ~tcam_size:400 () in
      let failed = Firmware.exec_all run stream in
      let name = Firmware.algo_kind_name kind in
      check_int (name ^ " failures") 0 failed;
      check_int (name ^ " updates") 120 (Firmware.updates_done run);
      check (name ^ " firmware timed") true
        (Measure.Series.count (Firmware.firmware_times run) = 120);
      check (name ^ " final invariant") true
        (Tcam.check_dag_order (Firmware.tcam run) (Firmware.graph run) = Ok ()))
    all_kinds

let test_final_tables_agree_on_membership () =
  (* Whatever the algorithm, the same stream must leave the same set of
     entries stored. *)
  let table = Lazy.force small_table in
  let stream = stream_for table ~count:100 ~with_deletes:true ~seed:78 in
  let membership kind =
    let run = Firmware.create kind ~table ~tcam_size:400 () in
    ignore (Firmware.exec_all run stream);
    List.sort Int.compare (Tcam.used_ids (Firmware.tcam run))
  in
  let reference = membership Firmware.Naive in
  List.iter
    (fun kind ->
      Alcotest.(check (list int))
        (Firmware.algo_kind_name kind ^ " membership")
        reference (membership kind))
    [ Firmware.Ruletris; Firmware.FR_O Store.Bit_backend; Firmware.FR_SB Store.Bit_backend ]

let test_tcam_accounting () =
  let table = Lazy.force small_table in
  let stream = stream_for table ~count:50 ~with_deletes:false ~seed:79 in
  let run = Firmware.create (Firmware.FR_O Store.Bit_backend) ~table ~tcam_size:400 () in
  ignore (Firmware.exec_all run stream);
  (* Insert-only: at least one write per update; modelled time = writes x 0.6. *)
  check (">= 1 write per insert") true (Firmware.tcam_writes run >= 50);
  check_int "no erases" 0 (Firmware.tcam_erases run);
  Alcotest.(check (float 1e-6))
    "latency model" (0.6 *. float_of_int (Firmware.tcam_writes run))
    (Firmware.tcam_ms_total run)

let test_insert_errors_rollback () =
  (* A full TCAM makes inserts fail; the graph must not keep the node. *)
  let table = Lazy.force small_table in
  let n = Array.length table.Dataset.rules in
  let run = Firmware.create (Firmware.FR_O Store.Bit_backend) ~table ~tcam_size:n () in
  let u = Updates.Insert { id = 99_999; anchor = None } in
  (match Firmware.exec run u with
  | Ok () -> Alcotest.fail "expected failure on full TCAM"
  | Error _ -> ());
  check_int "failure counted" 1 (Firmware.failures run);
  check "node rolled back" false (Graph.mem_node (Firmware.graph run) 99_999)

let test_fr_backends_same_sequences () =
  (* The three metric back-ends must produce byte-identical behaviour:
     same moves, same final image. *)
  let table = Lazy.force small_table in
  let stream = stream_for table ~count:150 ~with_deletes:true ~seed:80 in
  let image backend =
    let run = Firmware.create (Firmware.FR_O backend) ~table ~tcam_size:400 () in
    ignore (Firmware.exec_all run stream);
    ( Firmware.tcam_writes run,
      Array.init 400 (fun a -> Tcam.read (Firmware.tcam run) a) )
  in
  let w1, img1 = image Store.On_demand in
  let w2, img2 = image Store.Array_backend in
  let w3, img3 = image Store.Bit_backend in
  check_int "writes od=arr" w1 w2;
  check_int "writes arr=bit" w2 w3;
  check "image od=arr" true (img1 = img2);
  check "image arr=bit" true (img2 = img3)

let test_contract_on_delete () =
  (* Chain a -> b -> c; deleting b with contraction must leave a -> c in
     the run's graph so later scheduling still keeps a below c. *)
  let table = Lazy.force small_table in
  let run =
    Firmware.create ~contract_on_delete:true (Firmware.FR_O Store.Bit_backend)
      ~table ~tcam_size:400 ()
  in
  let g = Firmware.graph run in
  (* Find an entry with both a dependent and a dependency. *)
  let middle =
    List.find_opt
      (fun u -> Graph.out_degree g u > 0 && Graph.in_degree g u > 0)
      (Graph.nodes g)
  in
  match middle with
  | None -> ()  (* table had no 3-chain; nothing to assert *)
  | Some b ->
      let below = List.hd (Graph.dependents g b) in
      let above = List.hd (Graph.deps g b) in
      (match Firmware.exec run (Updates.Delete { id = b }) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "delete failed: %s" e);
      check "contracted ordering kept" true (Topo.reachable g below above)

let test_layout_override () =
  (* FR-O on the interleaved layout: still correct, fewer moves per insert
     while local gaps last. *)
  let table = Lazy.force small_table in
  let stream = stream_for table ~count:60 ~with_deletes:false ~seed:81 in
  let run =
    Firmware.create ~check_invariant:true
      ~layout_override:(Layout.Interleaved 2) (Firmware.FR_O Store.Bit_backend)
      ~table ~tcam_size:600 ()
  in
  check_int "no failures" 0 (Firmware.exec_all run stream)

let suite =
  [
    ( "firmware",
      [
        Alcotest.test_case "all algorithms run clean" `Quick test_all_algorithms_run_clean;
        Alcotest.test_case "membership agreement" `Quick test_final_tables_agree_on_membership;
        Alcotest.test_case "tcam accounting" `Quick test_tcam_accounting;
        Alcotest.test_case "insert errors roll back" `Quick test_insert_errors_rollback;
        Alcotest.test_case "backends byte-identical" `Quick test_fr_backends_same_sequences;
        Alcotest.test_case "contract on delete" `Quick test_contract_on_delete;
        Alcotest.test_case "layout override" `Quick test_layout_override;
      ] );
  ]
