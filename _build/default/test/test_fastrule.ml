open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok = function
  | Ok x -> x
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let op_list = Alcotest.testable Op.pp Op.equal

let test_fig3_sequence_all_backends () =
  List.iter
    (fun backend ->
      let graph, tcam = Fixtures.fig3_with_request () in
      let st = Greedy.create ~backend ~graph ~tcam () in
      let algo = Greedy.algo st in
      let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 5 ] ~dependents:[ 6 ]) in
      (* Application order = reverse of the paper's discovery order
         U = (I,9,0x3),(I,5,0x4),(I,4,0x6),(I,2,0x9). *)
      Alcotest.(check (list op_list))
        (Store.backend_to_string backend)
        [
          Op.insert ~rule_id:2 ~addr:0x9;
          Op.insert ~rule_id:4 ~addr:0x6;
          Op.insert ~rule_id:5 ~addr:0x4;
          Op.insert ~rule_id:9 ~addr:0x3;
        ]
        ops;
      Tcam.apply_sequence tcam ops;
      algo.Algo.after_apply ops;
      check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
      check "9 at 0x3" true (Tcam.read tcam 0x3 = Tcam.Used 9))
    Store.all_backends

let test_direct_free () =
  let tcam = Tcam.create ~size:4 in
  Tcam.write tcam ~rule_id:0 ~addr:0;
  let graph = Graph.create () in
  Graph.add_node graph 0;
  Graph.add_node graph 9;
  let st = Greedy.create ~graph ~tcam () in
  let algo = Greedy.algo st in
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[] ~dependents:[ 0 ]) in
  (* The lowest free address wins the metric-0 tie (nearest the entries). *)
  Alcotest.(check (list op_list)) "single op" [ Op.insert ~rule_id:9 ~addr:1 ] ops

let test_insert_between_adjacent () =
  (* Dependent directly below dependency: the window is exactly the
     dependency's slot, which must be displaced. *)
  let tcam = Tcam.create ~size:4 in
  Tcam.write tcam ~rule_id:0 ~addr:0;
  Tcam.write tcam ~rule_id:1 ~addr:1;
  let graph = Graph.create () in
  Graph.add_edge graph 0 1;
  Graph.add_node graph 9;
  Graph.add_edge graph 9 1;
  Graph.add_edge graph 0 9;
  let st = Greedy.create ~graph ~tcam () in
  let algo = Greedy.algo st in
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 1 ] ~dependents:[ 0 ]) in
  Tcam.apply_sequence tcam ops;
  algo.Algo.after_apply ops;
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
  check_int "two ops" 2 (List.length ops);
  check "9 took 1's slot" true (Tcam.read tcam 1 = Tcam.Used 9)

let test_window_errors () =
  let graph, tcam = Fixtures.fig3_with_request () in
  let algo = Greedy.algo (Greedy.create ~graph ~tcam ()) in
  check "contradictory window" true
    (Result.is_error (algo.Algo.schedule_insert ~rule_id:10 ~deps:[ 6 ] ~dependents:[ 5 ]));
  check "duplicate id" true
    (Result.is_error (algo.Algo.schedule_insert ~rule_id:5 ~deps:[] ~dependents:[]));
  check "unknown constraint" true
    (Result.is_error (algo.Algo.schedule_insert ~rule_id:10 ~deps:[ 404 ] ~dependents:[]))

let test_delete_then_reuse () =
  let graph, tcam = Fixtures.fig3_with_request () in
  let st = Greedy.create ~graph ~tcam () in
  let algo = Greedy.algo st in
  (* Delete entry 4 (0x4): zero-movement erase. *)
  let ops = ok (algo.Algo.schedule_delete ~rule_id:4) in
  check_int "erase only" 1 (List.length ops);
  Tcam.apply_sequence tcam ops;
  Graph.remove_node graph 4;
  algo.Algo.after_apply ops;
  (* Now insert 9 between 6 and 5 again: 5 can fall into the fresh hole at
     0x4, giving the shorter 2-op chain. *)
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 5 ] ~dependents:[ 6 ]) in
  Alcotest.(check (list op_list)) "hole reused"
    [ Op.insert ~rule_id:5 ~addr:0x4; Op.insert ~rule_id:9 ~addr:0x3 ]
    ops;
  Tcam.apply_sequence tcam ops;
  algo.Algo.after_apply ops;
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ())

let test_stores_stay_truthful_across_updates () =
  (* After a batch of random inserts/deletes, the maintained stores equal a
     from-scratch recomputation. *)
  let rng = Rng.create ~seed:321 in
  List.iter
    (fun backend ->
      let graph, tcam = Fixtures.random_scenario rng ~size:100 ~k:25 ~edge_prob:0.07 in
      let st = Greedy.create ~backend ~graph ~tcam () in
      let algo = Greedy.algo st in
      let next = ref 1000 in
      for _ = 1 to 40 do
        let ids = Tcam.used_ids tcam in
        if Rng.chance rng 0.3 && List.length ids > 5 then begin
          let id = List.nth ids (Rng.int rng (List.length ids)) in
          let ops = ok (algo.Algo.schedule_delete ~rule_id:id) in
          Tcam.apply_sequence tcam ops;
          Graph.remove_node graph id;
          algo.Algo.after_apply ops
        end
        else begin
          let id = !next in
          incr next;
          let dep = List.nth ids (Rng.int rng (List.length ids)) in
          Graph.add_node graph id;
          Graph.add_edge graph id dep;
          let ops = ok (algo.Algo.schedule_insert ~rule_id:id ~deps:[ dep ] ~dependents:[]) in
          Tcam.apply_sequence tcam ops;
          algo.Algo.after_apply ops
        end;
        check "invariant holds" true (Tcam.check_dag_order tcam graph = Ok ())
      done;
      let snapshot = Store.snapshot (Greedy.store st) in
      Array.iteri
        (fun a v ->
          check_int
            (Printf.sprintf "%s truthful at 0x%x" (Store.backend_to_string backend) a)
            (Metric.compute Dir.Up graph tcam ~addr:a)
            v)
        snapshot)
    Store.all_backends

let test_insert_batch () =
  let rng = Rng.create ~seed:777 in
  for _ = 1 to 10 do
    let graph, tcam = Fixtures.random_scenario rng ~size:120 ~k:40 ~edge_prob:0.06 in
    let st = Greedy.create ~backend:Store.Bit_backend ~graph ~tcam () in
    (* Build a batch of 15 requests anchored on existing entries. *)
    let ids = Array.of_list (Tcam.used_ids tcam) in
    let requests =
      List.init 15 (fun i ->
          let id = 500 + i in
          let dep = Rng.pick rng ids in
          Graph.add_node graph id;
          Graph.add_edge graph id dep;
          (id, [ dep ], []))
    in
    (match Greedy.insert_batch st requests with
    | Error e -> Alcotest.failf "batch failed: %s" e
    | Ok ops ->
        check "ops non-empty" true (List.length ops >= 15);
        (* Sequences were already applied. *)
        List.iter
          (fun (id, _, _) -> check "installed" true (Tcam.mem tcam id))
          requests);
    check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
    (* The deferred maintenance must leave the store truthful. *)
    let snap = Store.snapshot (Greedy.store st) in
    Array.iteri
      (fun a v -> check_int "truthful" (Metric.compute Dir.Up graph tcam ~addr:a) v)
      snap
  done

let test_insert_batch_bad_request_keeps_store_truthful () =
  let graph, tcam = Fixtures.fig3_with_request () in
  let st = Greedy.create ~graph ~tcam () in
  Graph.add_node graph 50;
  (* Second request is contradictory (dep below dependent). *)
  let requests = [ (9, [ 5 ], [ 6 ]); (50, [ 6 ], [ 5 ]) ] in
  (match Greedy.insert_batch st requests with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ());
  check "first applied" true (Tcam.mem tcam 9);
  check "second not" false (Tcam.mem tcam 50);
  let snap = Store.snapshot (Greedy.store st) in
  Array.iteri
    (fun a v -> check_int "truthful after error" (Metric.compute Dir.Up graph tcam ~addr:a) v)
    snap

let test_chain_bounded_by_metric () =
  (* The chain the greedy emits is never longer than the initial window's
     minimum metric + 1 (it follows strictly decreasing metrics). *)
  let rng = Rng.create ~seed:55 in
  for _ = 1 to 20 do
    let graph, tcam = Fixtures.random_scenario rng ~size:30 ~k:22 ~edge_prob:0.1 in
    let st = Greedy.create ~backend:Store.Array_backend ~graph ~tcam () in
    let algo = Greedy.algo st in
    let ids = Tcam.used_ids tcam in
    let dep = List.nth ids (Rng.int rng (List.length ids)) in
    Graph.add_node graph 777;
    Graph.add_edge graph 777 dep;
    let lo = 0 and hi = Option.get (Tcam.addr_of tcam dep) in
    (match Store.min_in (Greedy.store st) ~lo ~hi with
    | None -> ()
    | Some (_, m) ->
        let ops = ok (algo.Algo.schedule_insert ~rule_id:777 ~deps:[ dep ] ~dependents:[]) in
        check "length <= M+1" true (List.length ops <= m + 1));
    Graph.remove_node graph 777
  done

let suite =
  [
    ( "fastrule-greedy",
      [
        Alcotest.test_case "fig3 exact sequence (all backends)" `Quick
          test_fig3_sequence_all_backends;
        Alcotest.test_case "direct free slot" `Quick test_direct_free;
        Alcotest.test_case "adjacent window" `Quick test_insert_between_adjacent;
        Alcotest.test_case "window errors" `Quick test_window_errors;
        Alcotest.test_case "delete then reuse hole" `Quick test_delete_then_reuse;
        Alcotest.test_case "stores stay truthful" `Quick test_stores_stay_truthful_across_updates;
        Alcotest.test_case "insert batch" `Quick test_insert_batch;
        Alcotest.test_case "insert batch error handling" `Quick
          test_insert_batch_bad_request_keeps_store_truthful;
        Alcotest.test_case "chain bounded by metric" `Quick test_chain_bounded_by_metric;
      ] );
  ]
