open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_empty_summary () =
  let s = Measure.summarize [||] in
  check_int "count" 0 s.Measure.count;
  check_float "mean" 0.0 s.Measure.mean

let test_basic_summary () =
  let s = Measure.summarize [| 3.0; 1.0; 2.0 |] in
  check_int "count" 3 s.Measure.count;
  check_float "total" 6.0 s.Measure.total;
  check_float "mean" 2.0 s.Measure.mean;
  check_float "min" 1.0 s.Measure.min;
  check_float "max" 3.0 s.Measure.max;
  check_float "p50" 2.0 s.Measure.p50

let test_percentiles () =
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let s = Measure.summarize samples in
  check_float "p50" 50.0 s.Measure.p50;
  check_float "p95" 95.0 s.Measure.p95;
  check_float "p99" 99.0 s.Measure.p99;
  check_float "max" 100.0 s.Measure.max

let test_singleton () =
  let s = Measure.summarize [| 7.5 |] in
  check_float "all equal" 7.5 s.Measure.p99;
  check_float "mean" 7.5 s.Measure.mean

let test_series_growth () =
  let sr = Measure.Series.create () in
  for i = 1 to 1000 do
    Measure.Series.add sr (float_of_int i)
  done;
  check_int "count" 1000 (Measure.Series.count sr);
  let s = Measure.Series.summary sr in
  check_float "max" 1000.0 s.Measure.max;
  check_float "mean" 500.5 s.Measure.mean;
  check_int "snapshot length" 1000 (Array.length (Measure.Series.to_array sr))

let test_time_ms () =
  let x, dt = Measure.time_ms (fun () -> 42) in
  check_int "result" 42 x;
  check "non-negative" true (dt >= 0.0)

let test_summarize_does_not_mutate () =
  let samples = [| 3.0; 1.0; 2.0 |] in
  ignore (Measure.summarize samples);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] samples

let suite =
  [
    ( "measure",
      [
        Alcotest.test_case "empty" `Quick test_empty_summary;
        Alcotest.test_case "basic" `Quick test_basic_summary;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "singleton" `Quick test_singleton;
        Alcotest.test_case "series growth" `Quick test_series_growth;
        Alcotest.test_case "time_ms" `Quick test_time_ms;
        Alcotest.test_case "no mutation" `Quick test_summarize_does_not_mutate;
      ] );
  ]
