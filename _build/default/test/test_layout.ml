open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let order = [| 10; 11; 12; 13; 14; 15 |]

let test_capacity () =
  check_int "original" 6 (Layout.capacity_needed Layout.Original ~n:6);
  check_int "separated" 6 (Layout.capacity_needed Layout.Separated ~n:6);
  check_int "interleaved-2" 9 (Layout.capacity_needed (Layout.Interleaved 2) ~n:6);
  check_int "interleaved-1" 12 (Layout.capacity_needed (Layout.Interleaved 1) ~n:6)

let test_place_original () =
  let t = Layout.place Layout.Original ~tcam_size:10 ~order in
  Array.iteri (fun i id -> check "packed" true (Tcam.read t i = Tcam.Used id)) order;
  check "free above" true (Tcam.read t 6 = Tcam.Free);
  check_int "no ops counted" 0 (Tcam.ops_issued t)

let test_place_interleaved () =
  let t = Layout.place (Layout.Interleaved 2) ~tcam_size:12 ~order in
  (* entries at i + i/2: 0,1,3,4,6,7; gaps at 2,5,8. *)
  check "e0" true (Tcam.read t 0 = Tcam.Used 10);
  check "e1" true (Tcam.read t 1 = Tcam.Used 11);
  check "gap" true (Tcam.read t 2 = Tcam.Free);
  check "e2" true (Tcam.read t 3 = Tcam.Used 12);
  check "gap2" true (Tcam.read t 5 = Tcam.Free)

let test_place_separated () =
  let t = Layout.place Layout.Separated ~tcam_size:10 ~order in
  (* bottom half (3) at 0..2, top half (3) at 7..9, middle free. *)
  check "b0" true (Tcam.read t 0 = Tcam.Used 10);
  check "b2" true (Tcam.read t 2 = Tcam.Used 12);
  check "middle free" true (Tcam.read t 4 = Tcam.Free);
  check "t0" true (Tcam.read t 7 = Tcam.Used 13);
  check "t2" true (Tcam.read t 9 = Tcam.Used 15)

let test_separated_regions_of () =
  let t = Layout.place Layout.Separated ~tcam_size:10 ~order in
  let r = Layout.separated_regions_of t in
  check_int "bottom_next" 3 r.Layout.bottom_next;
  check_int "top_next" 6 r.Layout.top_next;
  check_int "bottom_count" 3 r.Layout.bottom_count;
  check_int "top_count" 3 r.Layout.top_count;
  check_int "middle" 4 (Layout.middle_free r)

let test_no_fit () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Layout.place: entries do not fit in the TCAM") (fun () ->
      ignore (Layout.place Layout.Original ~tcam_size:5 ~order))

let test_empty_separated () =
  let t = Layout.place Layout.Separated ~tcam_size:8 ~order:[||] in
  let r = Layout.separated_regions_of t in
  check_int "bottom empty" 0 r.Layout.bottom_next;
  check_int "top empty" 7 r.Layout.top_next;
  check_int "middle all" 8 (Layout.middle_free r)

let suite =
  [
    ( "layout",
      [
        Alcotest.test_case "capacity_needed" `Quick test_capacity;
        Alcotest.test_case "place original" `Quick test_place_original;
        Alcotest.test_case "place interleaved" `Quick test_place_interleaved;
        Alcotest.test_case "place separated" `Quick test_place_separated;
        Alcotest.test_case "regions inference" `Quick test_separated_regions_of;
        Alcotest.test_case "does not fit" `Quick test_no_fit;
        Alcotest.test_case "empty separated table" `Quick test_empty_separated;
      ] );
  ]
