(* Shared test fixtures. *)

open Fastrule

(* The Fig. 3 configuration: nine entries at 0x1..0x8 (0x0, 0x9 free) with
   the dependency chains 5 -> 7 -> 8 -> 3 and 4 -> 2.  Entry ids are the
   figure's node labels; the new node is 9 with 6 -> 9 -> 5. *)
let fig3 () =
  let tcam = Tcam.create ~size:10 in
  List.iter
    (fun (id, addr) -> Tcam.write tcam ~rule_id:id ~addr)
    [ (1, 0x1); (6, 0x2); (5, 0x3); (4, 0x4); (7, 0x5); (2, 0x6); (8, 0x7); (3, 0x8) ];
  Tcam.reset_counters tcam;
  let graph = Graph.create () in
  List.iter (Graph.add_node graph) [ 1; 6; 5; 4; 7; 2; 8; 3 ];
  List.iter
    (fun (u, v) -> Graph.add_edge graph u v)
    [ (5, 7); (7, 8); (8, 3); (4, 2) ];
  (graph, tcam)

(* Add the Fig. 3 insertion request's node and edges (compiler stage). *)
let fig3_with_request () =
  let graph, tcam = fig3 () in
  Graph.add_node graph 9;
  Graph.add_edge graph 9 5;
  Graph.add_edge graph 6 9;
  (graph, tcam)

(* A small random scenario builder used by several suites: a fresh TCAM of
   [size] holding [k] entries at random distinct addresses with a random
   DAG over them whose edges always point to higher addresses (so the
   dependency invariant holds by construction). *)
let random_scenario rng ~size ~k ~edge_prob =
  let tcam = Tcam.create ~size in
  let addrs = Array.init size (fun i -> i) in
  Rng.shuffle rng addrs;
  let placed = Array.sub addrs 0 k in
  Array.sort Int.compare placed;
  Array.iteri (fun i addr -> Tcam.write tcam ~rule_id:i ~addr) placed;
  Tcam.reset_counters tcam;
  let graph = Graph.create () in
  for i = 0 to k - 1 do
    Graph.add_node graph i
  done;
  (* Entry i sits at placed.(i); edges i -> j require placed.(i) < placed.(j),
     i.e. i < j. *)
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if Rng.chance rng edge_prob then Graph.add_edge graph i j
    done
  done;
  (graph, tcam)
