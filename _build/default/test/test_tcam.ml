open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create_read () =
  let t = Tcam.create ~size:8 in
  check_int "size" 8 (Tcam.size t);
  check_int "free" 8 (Tcam.free_count t);
  check "slot free" true (Tcam.read t 0 = Tcam.Free);
  Alcotest.check_raises "oob" (Invalid_argument "Tcam: address out of range")
    (fun () -> ignore (Tcam.read t 8))

let test_write_erase () =
  let t = Tcam.create ~size:8 in
  Tcam.write t ~rule_id:42 ~addr:3;
  check "used" true (Tcam.read t 3 = Tcam.Used 42);
  check "addr_of" true (Tcam.addr_of t 42 = Some 3);
  check_int "used count" 1 (Tcam.used_count t);
  Tcam.erase t ~addr:3;
  check "freed" true (Tcam.read t 3 = Tcam.Free);
  check "index cleared" true (Tcam.addr_of t 42 = None);
  check_int "ops" 2 (Tcam.ops_issued t)

let test_move_semantics () =
  let t = Tcam.create ~size:8 in
  Tcam.write t ~rule_id:1 ~addr:2;
  Tcam.write t ~rule_id:1 ~addr:5;
  check "new slot" true (Tcam.read t 5 = Tcam.Used 1);
  check "old slot freed" true (Tcam.read t 2 = Tcam.Free);
  check_int "one move" 1 (Tcam.moves_issued t);
  check_int "used stays 1" 1 (Tcam.used_count t)

let test_clobber_rejected () =
  let t = Tcam.create ~size:8 in
  Tcam.write t ~rule_id:1 ~addr:2;
  Alcotest.check_raises "clobber"
    (Invalid_argument "Tcam.write: address 0x2 already holds entry 1")
    (fun () -> Tcam.write t ~rule_id:9 ~addr:2);
  (* Rewriting the same entry in place is fine. *)
  Tcam.write t ~rule_id:1 ~addr:2;
  check_int "still one entry" 1 (Tcam.used_count t)

let test_apply_sequence_chain () =
  (* Chain in application order: the free-slot op first. *)
  let t = Tcam.create ~size:8 in
  Tcam.write t ~rule_id:10 ~addr:0;
  Tcam.write t ~rule_id:11 ~addr:1;
  let ops =
    [ Op.insert ~rule_id:11 ~addr:2; Op.insert ~rule_id:10 ~addr:1; Op.insert ~rule_id:99 ~addr:0 ]
  in
  Tcam.apply_sequence t ops;
  check "99 at 0" true (Tcam.read t 0 = Tcam.Used 99);
  check "10 at 1" true (Tcam.read t 1 = Tcam.Used 10);
  check "11 at 2" true (Tcam.read t 2 = Tcam.Used 11)

let test_iter_and_scans () =
  let t = Tcam.create ~size:8 in
  Tcam.write t ~rule_id:5 ~addr:1;
  Tcam.write t ~rule_id:6 ~addr:4;
  Alcotest.(check (list int)) "used ids in addr order" [ 5; 6 ] (Tcam.used_ids t);
  check "highest" true (Tcam.highest_used t = Some 4);
  check "lowest free" true (Tcam.lowest_free t = Some 0)

let test_lookup_highest_wins () =
  (* Highest-address match wins, per TCAM semantics. *)
  let mk id s prio =
    Rule.make ~id ~field:(Ternary.of_string s) ~action:(Rule.Forward id) ~priority:prio
  in
  let r0 = mk 0 (String.make 104 '*') 0 in
  let spec =
    {
      Header.wildcard with
      Header.proto = Ternary.exact_of_int64 ~width:8 6L;
    }
  in
  let r1 = Rule.make ~id:1 ~field:(Header.pack spec) ~action:Rule.Drop ~priority:9 in
  let rules = function 0 -> r0 | 1 -> r1 | _ -> assert false in
  let t = Tcam.create ~size:4 in
  Tcam.write t ~rule_id:0 ~addr:0;
  Tcam.write t ~rule_id:1 ~addr:2;
  let tcp =
    { Header.p_src_ip = 0L; p_dst_ip = 0L; p_src_port = 0; p_dst_port = 0; p_proto = 6 }
  in
  check "tcp hits specific" true (Tcam.lookup t ~rules tcp = Some 1);
  check "udp hits default" true
    (Tcam.lookup t ~rules { tcp with Header.p_proto = 17 } = Some 0);
  Tcam.erase t ~addr:0;
  check "no default" true (Tcam.lookup t ~rules { tcp with Header.p_proto = 17 } = None)

let test_check_dag_order () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  let t = Tcam.create ~size:4 in
  Tcam.write t ~rule_id:1 ~addr:0;
  Tcam.write t ~rule_id:2 ~addr:3;
  check "ok order" true (Tcam.check_dag_order t g = Ok ());
  (* Swap: violation. *)
  Tcam.erase t ~addr:0;
  Tcam.erase t ~addr:3;
  Tcam.write t ~rule_id:1 ~addr:3;
  Tcam.write t ~rule_id:2 ~addr:0;
  check "violation detected" true (Result.is_error (Tcam.check_dag_order t g))

let test_check_dag_order_partial () =
  (* Absent entries are not constrained. *)
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  let t = Tcam.create ~size:4 in
  Tcam.write t ~rule_id:1 ~addr:3;
  check "partial ok" true (Tcam.check_dag_order t g = Ok ())

let test_copy () =
  let t = Tcam.create ~size:4 in
  Tcam.write t ~rule_id:7 ~addr:1;
  let t' = Tcam.copy t in
  Tcam.erase t' ~addr:1;
  check "original intact" true (Tcam.read t 1 = Tcam.Used 7);
  check "copy changed" true (Tcam.read t' 1 = Tcam.Free)

let suite =
  [
    ( "tcam",
      [
        Alcotest.test_case "create/read" `Quick test_create_read;
        Alcotest.test_case "write/erase" `Quick test_write_erase;
        Alcotest.test_case "move semantics" `Quick test_move_semantics;
        Alcotest.test_case "clobber rejected" `Quick test_clobber_rejected;
        Alcotest.test_case "apply_sequence chain" `Quick test_apply_sequence_chain;
        Alcotest.test_case "iterators & scans" `Quick test_iter_and_scans;
        Alcotest.test_case "lookup highest wins" `Quick test_lookup_highest_wins;
        Alcotest.test_case "dag-order check" `Quick test_check_dag_order;
        Alcotest.test_case "dag-order partial" `Quick test_check_dag_order_partial;
        Alcotest.test_case "copy isolation" `Quick test_copy;
      ] );
  ]
