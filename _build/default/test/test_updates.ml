open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_counts_and_ids () =
  let rng = Rng.create ~seed:1 in
  let us = Updates.generate rng ~live:[ 0; 1; 2 ] ~count:10 ~with_deletes:false ~id_base:100 in
  check_int "count" 10 (List.length us);
  List.iteri
    (fun i u ->
      match u with
      | Updates.Insert { id; anchor } ->
          check_int "sequential ids" (100 + i) id;
          check "has anchor" true (anchor <> None)
      | Updates.Delete _ -> Alcotest.fail "no deletes expected")
    us

let test_alternation () =
  let rng = Rng.create ~seed:2 in
  let us = Updates.generate rng ~live:[ 0; 1; 2; 3 ] ~count:10 ~with_deletes:true ~id_base:50 in
  List.iteri
    (fun i u ->
      match (i mod 2, u) with
      | 0, Updates.Insert _ -> ()
      | 1, Updates.Delete _ -> ()
      | _ -> Alcotest.fail "expected strict insert/delete alternation")
    us

let test_deletes_target_live_entries () =
  (* Replay bookkeeping: a delete must always name a currently-live id and
     anchors must be live too. *)
  let rng = Rng.create ~seed:3 in
  let live0 = [ 0; 1; 2; 3; 4 ] in
  let us = Updates.generate rng ~live:live0 ~count:200 ~with_deletes:true ~id_base:10 in
  let live = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace live i ()) live0;
  List.iter
    (fun u ->
      match u with
      | Updates.Insert { id; anchor } ->
          (match anchor with
          | Some (x, y) ->
              check "anchor x live" true (Hashtbl.mem live x);
              check "anchor y live" true (Hashtbl.mem live y);
              check "anchors distinct" true (x <> y)
          | None -> ());
          Hashtbl.replace live id ()
      | Updates.Delete { id } ->
          check "delete live" true (Hashtbl.mem live id);
          Hashtbl.remove live id)
    us

let test_resolve_orientation_by_reachability () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  (* 1 depends on 2 *)
  let tcam = Tcam.create ~size:8 in
  Tcam.write tcam ~rule_id:1 ~addr:0;
  Tcam.write tcam ~rule_id:2 ~addr:5;
  let u = Updates.Insert { id = 9; anchor = Some (2, 1) } in
  (match Updates.resolve g tcam u with
  | Updates.R_insert { id; deps; dependents } ->
      check_int "id" 9 id;
      Alcotest.(check (list int)) "deps" [ 2 ] deps;
      Alcotest.(check (list int)) "dependents" [ 1 ] dependents
  | Updates.R_delete _ -> Alcotest.fail "expected insert");
  (* Unrelated anchors: orientation by address. *)
  let g2 = Graph.create () in
  Graph.add_node g2 1;
  Graph.add_node g2 2;
  match Updates.resolve g2 tcam (Updates.Insert { id = 9; anchor = Some (2, 1) }) with
  | Updates.R_insert { deps; dependents; _ } ->
      Alcotest.(check (list int)) "addr-high is dep" [ 2 ] deps;
      Alcotest.(check (list int)) "addr-low is dependent" [ 1 ] dependents
  | Updates.R_delete _ -> Alcotest.fail "expected insert"

let test_resolve_missing_anchor_rejected () =
  let g = Graph.create () in
  let tcam = Tcam.create ~size:4 in
  (* Either anchor may be reported first (evaluation order). *)
  check "missing anchor raises" true
    (match Updates.resolve g tcam (Updates.Insert { id = 1; anchor = Some (7, 8) }) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_apply_graph () =
  let g = Graph.create () in
  Graph.add_node g 1;
  Graph.add_node g 2;
  Updates.apply_graph g (Updates.R_insert { id = 9; deps = [ 2 ]; dependents = [ 1 ] });
  check "node added" true (Graph.mem_node g 9);
  check "edge to dep" true (Graph.mem_edge g 9 2);
  check "edge from dependent" true (Graph.mem_edge g 1 9);
  Updates.apply_graph g (Updates.R_delete { id = 9 });
  check "node removed" false (Graph.mem_node g 9);
  check_int "edges cleaned" 0 (Graph.n_edges g)

let test_stream_replay_is_layout_independent () =
  (* The same stream must be executable on two different layouts. *)
  let table = Dataset.build_table Dataset.ACL5 ~seed:21 ~n:200 in
  let rng = Rng.create ~seed:5 in
  let stream =
    Updates.generate rng ~live:(Array.to_list table.Dataset.order) ~count:100
      ~with_deletes:true ~id_base:1000
  in
  List.iter
    (fun kind ->
      let run = Firmware.create ~check_invariant:true kind ~table ~tcam_size:400 () in
      let failed = Firmware.exec_all run stream in
      check_int (Firmware.algo_kind_name kind ^ " no failures") 0 failed)
    [ Firmware.FR_O Store.Bit_backend; Firmware.FR_SB Store.Bit_backend ]

let suite =
  [
    ( "updates",
      [
        Alcotest.test_case "counts & ids" `Quick test_counts_and_ids;
        Alcotest.test_case "insert/delete alternation" `Quick test_alternation;
        Alcotest.test_case "deletes target live" `Quick test_deletes_target_live_entries;
        Alcotest.test_case "resolve orientation" `Quick test_resolve_orientation_by_reachability;
        Alcotest.test_case "resolve missing anchor" `Quick test_resolve_missing_anchor_rejected;
        Alcotest.test_case "apply_graph" `Quick test_apply_graph;
        Alcotest.test_case "replay across layouts" `Quick test_stream_replay_is_layout_independent;
      ] );
  ]
