open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let rng () = Rng.create ~seed:99

let test_underload_periodic () =
  (* Service 1 ms, arrivals every 10 ms: no queueing, sojourn = service. *)
  let r =
    Queue_sim.simulate (rng ()) ~service_ms:[| 1.0 |]
      ~arrival:(Queue_sim.Periodic 100.0) ~count:200 ()
  in
  check_int "all served" 200 r.Queue_sim.served;
  check_int "none dropped" 0 r.Queue_sim.dropped;
  check_float "sojourn = service" 1.0 r.Queue_sim.mean_sojourn_ms;
  check_int "no backlog" 1 r.Queue_sim.max_queue_depth;
  check "low utilisation" true (r.Queue_sim.utilisation < 0.2)

let test_overload_queues_grow () =
  (* Service 10 ms, arrivals every 1 ms: the k-th arrival waits ~9k ms. *)
  let r =
    Queue_sim.simulate (rng ()) ~service_ms:[| 10.0 |]
      ~arrival:(Queue_sim.Periodic 1000.0) ~count:100 ()
  in
  check "sojourns explode" true (r.Queue_sim.max_sojourn_ms > 800.0);
  check "high utilisation" true (r.Queue_sim.utilisation > 0.95);
  check "deep queue" true (r.Queue_sim.max_queue_depth > 50)

let test_queue_capacity_drops () =
  let r =
    Queue_sim.simulate (rng ()) ~service_ms:[| 10.0 |]
      ~arrival:(Queue_sim.Periodic 1000.0) ~queue_capacity:5 ~count:100 ()
  in
  check "drops happened" true (r.Queue_sim.dropped > 50);
  check_int "offered" 100 r.Queue_sim.offered;
  check "bounded depth" true (r.Queue_sim.max_queue_depth <= 6);
  check "bounded sojourn" true (r.Queue_sim.max_sojourn_ms < 100.0)

let test_poisson_mean_load () =
  (* rho = 0.5: utilisation should be near 0.5, sojourn finite. *)
  let r =
    Queue_sim.simulate (rng ()) ~service_ms:[| 1.0 |]
      ~arrival:(Queue_sim.Poisson 500.0) ~count:5_000 ()
  in
  check "util near 0.5" true
    (r.Queue_sim.utilisation > 0.4 && r.Queue_sim.utilisation < 0.6);
  (* M/D/1 at rho=0.5: mean wait = rho*S/(2(1-rho)) = 0.5 ms -> sojourn 1.5. *)
  check "sojourn near M/D/1" true
    (r.Queue_sim.mean_sojourn_ms > 1.2 && r.Queue_sim.mean_sojourn_ms < 1.9)

let test_saturation_rate () =
  check_float "1ms -> 1000/s" 1000.0 (Queue_sim.saturation_rate ~service_ms:[| 1.0 |]);
  check_float "mixed" 500.0 (Queue_sim.saturation_rate ~service_ms:[| 1.0; 3.0 |])

let test_service_times_of_run () =
  let table = Dataset.build_table Dataset.ACL5 ~seed:71 ~n:100 in
  let rng = Rng.create ~seed:72 in
  let stream =
    Updates.generate rng ~live:(Array.to_list table.Dataset.order) ~count:50
      ~with_deletes:false ~id_base:1000
  in
  let run = Firmware.create (Firmware.FR_O Store.Bit_backend) ~table ~tcam_size:200 () in
  ignore (Firmware.exec_all run stream);
  let svc = Queue_sim.service_times_of_run run in
  check_int "one service time per update" 50 (Array.length svc);
  (* Every update wrote at least the new entry: >= 0.6 ms. *)
  Array.iter (fun s -> check ">= one write" true (s >= 0.6)) svc

let test_invalid_args () =
  Alcotest.check_raises "empty services"
    (Invalid_argument "Queue_sim.simulate: no service times") (fun () ->
      ignore
        (Queue_sim.simulate (rng ()) ~service_ms:[||]
           ~arrival:(Queue_sim.Periodic 1.0) ~count:5 ()))

let suite =
  [
    ( "queue-sim",
      [
        Alcotest.test_case "underload periodic" `Quick test_underload_periodic;
        Alcotest.test_case "overload grows" `Quick test_overload_queues_grow;
        Alcotest.test_case "capacity drops" `Quick test_queue_capacity_drops;
        Alcotest.test_case "poisson M/D/1 sanity" `Quick test_poisson_mean_load;
        Alcotest.test_case "saturation rate" `Quick test_saturation_rate;
        Alcotest.test_case "service times of run" `Quick test_service_times_of_run;
        Alcotest.test_case "invalid args" `Quick test_invalid_args;
      ] );
  ]
