open Fastrule

let check_int = Alcotest.(check int)
let check_addrs = Alcotest.(check (list int))

let test_fig3_metrics () =
  let graph, tcam = Fixtures.fig3 () in
  let m addr = Metric.compute Dir.Up graph tcam ~addr in
  check_int "M(0x3)" 4 (m 0x3);
  check_int "M(0x4)" 2 (m 0x4);
  check_int "M(0x5)" 3 (m 0x5);
  check_int "M(0x6)" 1 (m 0x6);
  check_int "M(0x7)" 2 (m 0x7);
  check_int "M(0x8)" 1 (m 0x8);
  check_int "M(0x9) free" 0 (m 0x9);
  check_int "M(0x1) isolated" 1 (m 0x1)

let test_fig3_paths () =
  let graph, tcam = Fixtures.fig3 () in
  let p addr = Metric.path Dir.Up graph tcam ~addr in
  check_addrs "P(0x3)" [ 0x3; 0x5; 0x7; 0x8 ] (p 0x3);
  check_addrs "P(0x4)" [ 0x4; 0x6 ] (p 0x4);
  check_addrs "P(0x5)" [ 0x5; 0x7; 0x8 ] (p 0x5);
  check_addrs "P free" [] (p 0x9)

let test_nearest_hop_selection () =
  (* A node with two dependencies follows the nearer (lower) address. *)
  let tcam = Tcam.create ~size:8 in
  Tcam.write tcam ~rule_id:0 ~addr:0;
  Tcam.write tcam ~rule_id:1 ~addr:3;
  Tcam.write tcam ~rule_id:2 ~addr:6;
  let g = Graph.create () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  check_int "hop to 3" 3 (Option.get (Dir.next_hop Dir.Up g tcam 0));
  check_addrs "path" [ 0; 3 ] (Metric.path Dir.Up g tcam ~addr:0);
  check_int "M" 2 (Metric.compute Dir.Up g tcam ~addr:0)

let test_down_direction_mirrors () =
  (* Down metric follows dependents toward lower addresses. *)
  let tcam = Tcam.create ~size:8 in
  Tcam.write tcam ~rule_id:0 ~addr:1;
  Tcam.write tcam ~rule_id:1 ~addr:4;
  Tcam.write tcam ~rule_id:2 ~addr:6;
  let g = Graph.create () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  check_int "M down at 6" 3 (Metric.compute Dir.Down g tcam ~addr:6);
  check_addrs "path down" [ 6; 4; 1 ] (Metric.path Dir.Down g tcam ~addr:6);
  check_int "M down at 1" 1 (Metric.compute Dir.Down g tcam ~addr:1);
  (* Up-bounds mirror too. *)
  check_int "bound up of 0" 4 (Dir.bound Dir.Up g tcam 0);
  check_int "bound down of 2" 4 (Dir.bound Dir.Down g tcam 2);
  check_int "bound down unconstrained" 0 (Dir.bound Dir.Down g tcam 0);
  check_int "bound up unconstrained" 7 (Dir.bound Dir.Up g tcam 2)

let test_absent_deps_ignored () =
  (* Dependencies not present in the TCAM do not constrain or count. *)
  let tcam = Tcam.create ~size:4 in
  Tcam.write tcam ~rule_id:0 ~addr:0;
  let g = Graph.create () in
  Graph.add_edge g 0 99 (* 99 not stored *);
  check_int "M ignores absent" 1 (Metric.compute Dir.Up g tcam ~addr:0);
  check_int "bound ignores absent" 3 (Dir.bound Dir.Up g tcam 0)

let suite =
  [
    ( "metric",
      [
        Alcotest.test_case "fig3 metric values" `Quick test_fig3_metrics;
        Alcotest.test_case "fig3 paths" `Quick test_fig3_paths;
        Alcotest.test_case "nearest hop" `Quick test_nearest_hop_selection;
        Alcotest.test_case "down direction mirrors" `Quick test_down_direction_mirrors;
        Alcotest.test_case "absent deps ignored" `Quick test_absent_deps_ignored;
      ] );
  ]
