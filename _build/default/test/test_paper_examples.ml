(* Replays of the paper's worked examples, asserted step by step. *)

open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok = function
  | Ok x -> x
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* --- Fig. 1: inserting "C*A" ------------------------------------------- *)
(* Alphabet {A,B,C} encoded in 2 bits per item (A=00, B=01, C=10); three
   items per match field.  As in the figure, the free space sits at the
   BOTTOM of the TCAM: 0x5 CAA / 0x4 **A / 0x3 A*B / 0x2 **B / 0x1 ***,
   0x0 free (the paper's 0x6..0x1 shifted down by one).  Displacement
   chains therefore cascade downward — the [Dir.Down] scheduler. *)

let fig1_rules =
  let mk id prio s =
    Rule.make ~id ~field:(Ternary.of_string s) ~action:(Rule.Forward id) ~priority:prio
  in
  [|
    mk 0 25 "100000" (* CAA *);
    mk 1 16 "****00" (* **A *);
    mk 2 15 "00**01" (* A*B *);
    mk 3 10 "****01" (* **B *);
    mk 4 6 "******" (* *** *);
  |]

let fig1_setup () =
  let graph = Dag_build.compile fig1_rules in
  let order = Dataset.precedence_order fig1_rules in
  let tcam = Tcam.create ~size:6 in
  Array.iteri (fun i id -> Tcam.write tcam ~rule_id:id ~addr:(i + 1)) order;
  Tcam.reset_counters tcam;
  (graph, tcam)

let test_fig1_dag_shape () =
  let graph, tcam = fig1_setup () in
  (* *** depends on everything overlapping; minimum edges: *** -> {**A, **B};
     **B -> A*B; **A -> CAA. *)
  check "***->**A" true (Graph.mem_edge graph 4 1);
  check "***->**B" true (Graph.mem_edge graph 4 3);
  check "**B->A*B" true (Graph.mem_edge graph 3 2);
  check "**A->CAA" true (Graph.mem_edge graph 1 0);
  check "no shortcut ***->CAA" false (Graph.mem_edge graph 4 0);
  (* Placement: free at 0x0, *** at 0x1 ... CAA at 0x5. *)
  check "free bottom" true (Tcam.read tcam 0 = Tcam.Free);
  check "*** low" true (Tcam.read tcam 1 = Tcam.Used 4);
  check "CAA top" true (Tcam.read tcam 5 = Tcam.Used 0)

let test_fig1_priority_solution_needs_4_moves () =
  (* The naive baseline must shift the 4 entries below CAA down into the
     free space, exactly like Fig. 1(b). *)
  let _, tcam = fig1_setup () in
  let st = Naive.create ~tcam in
  let algo = Naive.algo st in
  (* C*A: depends on CAA (id 0); **A (id 1) depends on it. *)
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 0 ] ~dependents:[ 1 ]) in
  check_int "5 writes = 4 movements + insert" 5 (List.length ops);
  Tcam.apply_sequence tcam ops;
  check "C*A sits below CAA" true
    (Option.get (Tcam.addr_of tcam 9) < Option.get (Tcam.addr_of tcam 0));
  check "C*A sits above **A" true
    (Option.get (Tcam.addr_of tcam 9) > Option.get (Tcam.addr_of tcam 1))

let test_fig1_dag_solution_needs_2_moves () =
  (* FastRule on the DAG needs only 2 movements, like Fig. 1(c): C*A takes
     **A's slot and **A falls toward the free space — the other branch
     (A*B, **B) does not move. *)
  let graph, tcam = fig1_setup () in
  Graph.add_node graph 9;
  Graph.add_edge graph 9 0;
  Graph.add_edge graph 1 9;
  let algo = Greedy.algo (Greedy.create ~dir:Dir.Down ~graph ~tcam ()) in
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 0 ] ~dependents:[ 1 ]) in
  check_int "3 writes = 2 movements + insert" 3 (List.length ops);
  Tcam.apply_sequence tcam ops;
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
  check "C*A took **A's slot" true (Tcam.read tcam 4 = Tcam.Used 9);
  check "A*B did not move" true (Tcam.read tcam 3 = Tcam.Used 2);
  check "**B did not move" true (Tcam.read tcam 2 = Tcam.Used 3)

(* --- Fig. 3: the greedy walk ------------------------------------------ *)

let test_fig3_full_walkthrough () =
  let graph, tcam = Fixtures.fig3_with_request () in
  (* The paper's first call: SCHEDULE(0x3, 0x3, 9) — window {0x3} only. *)
  (match Algo.insert_window tcam ~deps:[ 5 ] ~dependents:[ 6 ] with
  | Ok (lo, hi) ->
      check_int "window lo" 0x2 lo;
      check_int "window hi" 0x3 hi
  | Error e -> Alcotest.failf "window: %s" e);
  let st = Greedy.create ~backend:Store.Bit_backend ~graph ~tcam () in
  let algo = Greedy.algo st in
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 5 ] ~dependents:[ 6 ]) in
  (* Paper order: U = (I,9,0x3),(I,5,0x4),(I,4,0x6),(I,2,0x9). *)
  let paper_order = List.rev ops in
  Alcotest.(check (list (pair int int)))
    "U(0x3)"
    [ (9, 0x3); (5, 0x4); (4, 0x6); (2, 0x9) ]
    (List.map
       (function
         | Op.Insert { rule_id; addr } -> (rule_id, addr)
         | Op.Delete _ -> Alcotest.fail "no deletes in an insert chain")
       paper_order);
  Tcam.apply_sequence tcam ops;
  algo.Algo.after_apply ops;
  (* Fig. 3(b): final table. *)
  List.iter
    (fun (id, addr) ->
      check (Printf.sprintf "entry %d at 0x%x" id addr) true
        (Tcam.addr_of tcam id = Some addr))
    [ (1, 0x1); (6, 0x2); (9, 0x3); (5, 0x4); (7, 0x5); (4, 0x6); (8, 0x7); (3, 0x8); (2, 0x9) ]

(* --- Fig. 5: BIT query/update ------------------------------------------ *)

let test_fig5_bit_example () =
  (* Fig. 5(a): querying min over M[1..6] decomposes into B[4] and B[6].
     We reproduce the array M = [2;4;1;3;5;9;...] (1-indexed in the paper;
     0-indexed here) and check the query; then Fig. 5(b)'s update of M[6]
     from 9 to 2. *)
  let m = [| 2; 4; 1; 3; 5; 9; 7; 8 |] in
  let t = Min_tree.create 8 ~init:0 in
  Array.iteri (fun i v -> Min_tree.set t i v) m;
  (match Min_tree.min_in t ~lo:0 ~hi:5 with
  | Some (i, v) ->
      check_int "min M[1..6]" 1 v;
      check_int "achieved at index 3 (paper's 3rd)" 2 i
  | None -> Alcotest.fail "non-empty");
  (* Update the 6th cell from 9 down to 2: the range minimum of [5..6]
     becomes 2, but the global minimum stays 1. *)
  Min_tree.set t 5 2;
  check_int "B[6] region" 2 (Option.get (Min_tree.min_value_in t ~lo:4 ~hi:5));
  check_int "global still 1" 1 (Option.get (Min_tree.min_value_in t ~lo:0 ~hi:7))

(* --- Fig. 6: separated layout insert/delete ---------------------------- *)

let test_fig6_balance_delete_refills () =
  (* Fig. 6(c)/(d): after deleting an entry in a region, balance delete
     moves another entry into the hole immediately. *)
  let order = [| 0; 1; 2; 3 |] in
  let tcam = Layout.place Layout.Separated ~tcam_size:8 ~order in
  let graph = Graph.create () in
  Array.iter (Graph.add_node graph) order;
  let st = Separated.create ~delete_mode:Separated.Balance ~graph ~tcam () in
  let algo = Separated.algo st in
  let ops = ok (algo.Algo.schedule_delete ~rule_id:0) in
  Tcam.apply_sequence tcam ops;
  Graph.remove_node graph 0;
  algo.Algo.after_apply ops;
  (* The orange node is gone and a blue one (entry 1) fills its slot. *)
  check "hole refilled" true (Tcam.read tcam 0 = Tcam.Used 1);
  check "edge returned to pool" true (Tcam.read tcam 1 = Tcam.Free)

let suite =
  [
    ( "paper-examples",
      [
        Alcotest.test_case "fig1 DAG shape" `Quick test_fig1_dag_shape;
        Alcotest.test_case "fig1 priority = 4 moves" `Quick
          test_fig1_priority_solution_needs_4_moves;
        Alcotest.test_case "fig1 DAG = 2 moves" `Quick test_fig1_dag_solution_needs_2_moves;
        Alcotest.test_case "fig3 full walkthrough" `Quick test_fig3_full_walkthrough;
        Alcotest.test_case "fig5 BIT example" `Quick test_fig5_bit_example;
        Alcotest.test_case "fig6 balance delete" `Quick test_fig6_balance_delete_refills;
      ] );
  ]
