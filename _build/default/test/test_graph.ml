open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sorted = List.sort Int.compare

let test_add_remove_nodes () =
  let g = Graph.create () in
  check_int "empty" 0 (Graph.n_nodes g);
  Graph.add_node g 1;
  Graph.add_node g 1;
  check_int "idempotent add" 1 (Graph.n_nodes g);
  Graph.remove_node g 1;
  check_int "removed" 0 (Graph.n_nodes g);
  Graph.remove_node g 42 (* no-op *)

let test_edges () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  Graph.add_edge g 1 3;
  Graph.add_edge g 2 3;
  Graph.add_edge g 1 2;
  check_int "edges" 3 (Graph.n_edges g);
  check_int "nodes implied" 3 (Graph.n_nodes g);
  check "mem" true (Graph.mem_edge g 1 2);
  check "directed" false (Graph.mem_edge g 2 1);
  Alcotest.(check (list int)) "deps of 1" [ 2; 3 ] (sorted (Graph.deps g 1));
  Alcotest.(check (list int)) "dependents of 3" [ 1; 2 ] (sorted (Graph.dependents g 3));
  check_int "out_degree" 2 (Graph.out_degree g 1);
  check_int "in_degree" 2 (Graph.in_degree g 3)

let test_self_edge_rejected () =
  let g = Graph.create () in
  Alcotest.check_raises "self" (Invalid_argument "Graph.add_edge: self-edge")
    (fun () -> Graph.add_edge g 5 5)

let test_remove_edge () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  Graph.remove_edge g 1 2;
  check_int "edge gone" 0 (Graph.n_edges g);
  check "deps empty" true (Graph.deps g 1 = []);
  Graph.remove_edge g 1 2 (* no-op *)

let test_remove_node_cleans_edges () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  Graph.add_edge g 0 2;
  Graph.remove_node g 2;
  check_int "edges cleaned" 0 (Graph.n_edges g);
  check "no dangling dep" true (Graph.deps g 1 = []);
  check "no dangling dependent" true (Graph.dependents g 3 = [])

let test_remove_node_contract () =
  (* 1 -> 2 -> 3 plus 0 -> 2: contracting 2 must leave 1 -> 3 and 0 -> 3. *)
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  Graph.add_edge g 0 2;
  Graph.add_edge g 2 3;
  Graph.remove_node ~contract:true g 2;
  check "1->3" true (Graph.mem_edge g 1 3);
  check "0->3" true (Graph.mem_edge g 0 3);
  check_int "edge count" 2 (Graph.n_edges g)

let test_copy_isolated () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  let g' = Graph.copy g in
  Graph.add_edge g' 2 3;
  Graph.remove_node g' 1;
  check_int "original nodes" 2 (Graph.n_nodes g);
  check_int "original edges" 1 (Graph.n_edges g);
  check "copy has new edge" true (Graph.mem_edge g' 2 3)

let test_fold_iter () =
  let g = Graph.create () in
  Graph.add_edge g 1 10;
  Graph.add_edge g 1 20;
  let sum = Graph.fold_deps g 1 ~init:0 ~f:( + ) in
  check_int "fold" 30 sum;
  let seen = ref [] in
  Graph.iter_dependents g 10 (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "iter deps" [ 1 ] !seen

let suite =
  [
    ( "graph",
      [
        Alcotest.test_case "add/remove nodes" `Quick test_add_remove_nodes;
        Alcotest.test_case "edges" `Quick test_edges;
        Alcotest.test_case "self-edge rejected" `Quick test_self_edge_rejected;
        Alcotest.test_case "remove edge" `Quick test_remove_edge;
        Alcotest.test_case "remove node cleans edges" `Quick test_remove_node_cleans_edges;
        Alcotest.test_case "contraction preserves order" `Quick test_remove_node_contract;
        Alcotest.test_case "copy is isolated" `Quick test_copy_isolated;
        Alcotest.test_case "fold/iter" `Quick test_fold_iter;
      ] );
  ]
