open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let t = Ternary.of_string

let test_roundtrip () =
  List.iter
    (fun s -> check_str s s (Ternary.to_string (t s)))
    [ "0"; "1"; "*"; "10*1"; "****"; "0101"; "1*0*1*0*"; String.make 100 '*' ]

let test_of_string_rejects () =
  Alcotest.check_raises "bad char" (Invalid_argument "Ternary.of_string: expected '0', '1' or '*'")
    (fun () -> ignore (t "10x"));
  Alcotest.check_raises "empty" (Invalid_argument "Ternary.of_string: empty string")
    (fun () -> ignore (t ""))

let test_get_set () =
  let x = t "10*" in
  check "bit2 one" true (Ternary.get x 2 = Ternary.One);
  check "bit1 zero" true (Ternary.get x 1 = Ternary.Zero);
  check "bit0 any" true (Ternary.get x 0 = Ternary.Any);
  let y = Ternary.set x 0 Ternary.One in
  check_str "set" "101" (Ternary.to_string y);
  check_str "orig unchanged" "10*" (Ternary.to_string x)

let test_exact_prefix () =
  let e = Ternary.exact_of_int64 ~width:8 0xA5L in
  check_str "exact" "10100101" (Ternary.to_string e);
  check "is_exact" true (Ternary.is_exact e);
  let p = Ternary.prefix_of_int64 ~width:8 ~plen:4 0xA5L in
  check_str "prefix" "1010****" (Ternary.to_string p);
  check_int "wildcards" 4 (Ternary.num_wildcards p);
  let z = Ternary.prefix_of_int64 ~width:8 ~plen:0 0xFFL in
  check_str "plen0" "********" (Ternary.to_string z)

let test_overlap_basic () =
  (* The Fig. 1 example alphabet: three match items; we encode each item
     with 2 bits (A=00, B=01, C=10) so "C*A" etc. become 6-bit strings. *)
  let caa = t "100000" and c_a = t "10**00" and any_a = t "****00" in
  let a_b = t "00**01" and any_b = t "****01" and all = t "******" in
  check "CAA in C*A" true (Ternary.subsumes c_a caa);
  check "C*A in **A" true (Ternary.subsumes any_a c_a);
  check "A*B in **B" true (Ternary.subsumes any_b a_b);
  check "C*A !in **B" false (Ternary.overlaps c_a any_b);
  check "all overlaps everything" true (Ternary.overlaps all caa);
  check "**A and **B disjoint" false (Ternary.overlaps any_a any_b)

let test_overlap_symmetry () =
  let a = t "1*0*" and b = t "*10*" and c = t "0***" in
  check "a~b" true (Ternary.overlaps a b && Ternary.overlaps b a);
  check "a!~c" false (Ternary.overlaps a c || Ternary.overlaps c a)

let test_subsumes_strictness () =
  let broad = t "1***" and narrow = t "10*1" in
  check "broad covers narrow" true (Ternary.subsumes broad narrow);
  check "narrow not covers broad" false (Ternary.subsumes narrow broad);
  check "self" true (Ternary.subsumes broad broad)

let test_intersect () =
  let a = t "1**0" and b = t "*01*" in
  (match Ternary.intersect a b with
  | Some i -> check_str "intersection" "1010" (Ternary.to_string i)
  | None -> Alcotest.fail "expected overlap");
  check "disjoint" true (Ternary.intersect (t "11") (t "00") = None)

let test_width_mismatch () =
  Alcotest.check_raises "overlaps width"
    (Invalid_argument "Ternary.overlaps: width mismatch") (fun () ->
      ignore (Ternary.overlaps (t "1") (t "11")))

let test_matches_value () =
  let x = t "1*0" in
  check "101 no" false (Ternary.matches_value x [| 0b101L |]);
  check "100 yes" true (Ternary.matches_value x [| 0b100L |]);
  check "110 yes" true (Ternary.matches_value x [| 0b110L |]);
  check "010 no" false (Ternary.matches_value x [| 0b010L |])

let test_concat_slice () =
  let hi = t "10" and lo = t "0*1" in
  let c = Ternary.concat hi lo in
  check_str "concat" "100*1" (Ternary.to_string c);
  check_str "slice hi" "10" (Ternary.to_string (Ternary.slice c ~lo:3 ~len:2));
  check_str "slice lo" "0*1" (Ternary.to_string (Ternary.slice c ~lo:0 ~len:3))

let test_wide_strings () =
  (* Cross the 64-bit chunk boundary. *)
  let s = String.concat "" [ String.make 60 '1'; "0*01"; String.make 40 '*' ] in
  let x = t s in
  check_int "width" 104 (Ternary.width x);
  check_str "roundtrip" s (Ternary.to_string x);
  check_int "wildcards" 41 (Ternary.num_wildcards x);
  let y = Ternary.set x 103 Ternary.Zero in
  check "msb changed" true (Ternary.get y 103 = Ternary.Zero);
  check "no longer overlaps" false (Ternary.overlaps x y)

let test_compare_equal_hash () =
  let a = t "10*" and b = t "10*" and c = t "1*0" in
  check "equal" true (Ternary.equal a b);
  check_int "compare eq" 0 (Ternary.compare a b);
  check "hash eq" true (Ternary.hash a = Ternary.hash b);
  check "neq" false (Ternary.equal a c);
  check "compare antisym" true
    (Ternary.compare a c = -Ternary.compare c a)

let test_random_exact_in () =
  let rng = Rng.create ~seed:7 in
  let x = t "1*0*1***" in
  for _ = 1 to 100 do
    let v = Ternary.random_exact_in rng x in
    check "member" true (Ternary.matches_value x v)
  done

let test_random_respects_width () =
  let rng = Rng.create ~seed:9 in
  for w = 1 to 70 do
    let x = Ternary.random rng ~width:w ~wildcard_prob:0.5 in
    check_int "width" w (Ternary.width x)
  done

let suite =
  [
    ( "ternary",
      [
        Alcotest.test_case "string roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "of_string rejects garbage" `Quick test_of_string_rejects;
        Alcotest.test_case "get/set" `Quick test_get_set;
        Alcotest.test_case "exact & prefix constructors" `Quick test_exact_prefix;
        Alcotest.test_case "fig1-style overlap" `Quick test_overlap_basic;
        Alcotest.test_case "overlap symmetry" `Quick test_overlap_symmetry;
        Alcotest.test_case "subsumption strictness" `Quick test_subsumes_strictness;
        Alcotest.test_case "intersection" `Quick test_intersect;
        Alcotest.test_case "width mismatch rejected" `Quick test_width_mismatch;
        Alcotest.test_case "matches_value" `Quick test_matches_value;
        Alcotest.test_case "concat/slice" `Quick test_concat_slice;
        Alcotest.test_case "multi-chunk widths" `Quick test_wide_strings;
        Alcotest.test_case "equal/compare/hash" `Quick test_compare_equal_hash;
        Alcotest.test_case "random member sampling" `Quick test_random_exact_in;
        Alcotest.test_case "random widths" `Quick test_random_respects_width;
      ] );
  ]
