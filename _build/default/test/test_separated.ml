open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok = function
  | Ok x -> x
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* 6 entries in a 12-slot separated TCAM: bottom 0,1,2 at 0..2 and top
   3,4,5 at 9..11, middle 3..8 free.  Chain edges 0 -> 1 -> ... -> 5 give a
   fully ordered table (ascending addresses = ascending position). *)
let setup ?(delete_mode = Separated.Dirty) ?(backend = Store.Bit_backend) () =
  let order = [| 0; 1; 2; 3; 4; 5 |] in
  let tcam = Layout.place Layout.Separated ~tcam_size:12 ~order in
  let graph = Graph.create () in
  Array.iter (Graph.add_node graph) order;
  for i = 0 to 4 do
    Graph.add_edge graph i (i + 1)
  done;
  let st = Separated.create ~backend ~delete_mode ~graph ~tcam () in
  (graph, tcam, st, Separated.algo st)

let exec graph tcam (algo : Algo.t) u =
  match u with
  | `Ins (id, deps, dependents) ->
      Graph.add_node graph id;
      List.iter (fun v -> Graph.add_edge graph id v) deps;
      List.iter (fun x -> Graph.add_edge graph x id) dependents;
      let ops = ok (algo.Algo.schedule_insert ~rule_id:id ~deps ~dependents) in
      Tcam.apply_sequence tcam ops;
      algo.Algo.after_apply ops;
      ops
  | `Del id ->
      let ops = ok (algo.Algo.schedule_delete ~rule_id:id) in
      Tcam.apply_sequence tcam ops;
      Graph.remove_node graph id;
      algo.Algo.after_apply ops;
      ops

let test_straddling_goes_middle () =
  let graph, tcam, st, algo = setup () in
  (* Between bottom entry 2 and top entry 3: straddles, zero movements.
     Counts are equal (3/3) so the balance rule picks the top side. *)
  let ops = exec graph tcam algo (`Ins (9, [ 3 ], [ 2 ])) in
  check_int "one op" 1 (List.length ops);
  let r = Separated.regions st in
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
  check_int "joined top" 4 r.Layout.top_count;
  check_int "top edge moved" 7 r.Layout.top_next;
  check "placed at old top edge" true (Tcam.read tcam 8 = Tcam.Used 9)

let test_balance_rule_prefers_smaller_side () =
  let graph, tcam, st, algo = setup () in
  ignore (exec graph tcam algo (`Ins (9, [ 3 ], [ 2 ])));
  (* Top now has 4, bottom 3: the next straddling insert goes bottom. *)
  let _ = exec graph tcam algo (`Ins (10, [ 9 ], [ 2 ])) in
  let r = Separated.regions st in
  check_int "joined bottom" 4 r.Layout.bottom_count;
  check_int "bottom edge moved" 4 r.Layout.bottom_next;
  check "placed at old bottom edge" true (Tcam.read tcam 3 = Tcam.Used 10);
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ())

let test_bottom_region_chain () =
  let graph, tcam, st, algo = setup () in
  (* Insert below entry 1 (addr 1, inside bottom): the chain displaces 1
     then 2 into the middle edge — clamped at one spill slot. *)
  let ops = exec graph tcam algo (`Ins (9, [ 1 ], [ 0 ])) in
  check_int "three ops" 3 (List.length ops);
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
  let r = Separated.regions st in
  check_int "bottom grew" 4 r.Layout.bottom_count;
  check_int "bottom edge" 4 r.Layout.bottom_next;
  check "2 spilled to edge" true (Tcam.read tcam 3 = Tcam.Used 2)

let test_top_region_chain_descends () =
  let graph, tcam, st, algo = setup () in
  (* Insert above entry 4 (addr 10, inside top): downward chain, spilling
     entry 3 one slot into the middle. *)
  let ops = exec graph tcam algo (`Ins (9, [ 5 ], [ 4 ])) in
  check_int "three ops" 3 (List.length ops);
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
  let r = Separated.regions st in
  check_int "top grew" 4 r.Layout.top_count;
  check_int "top edge" 7 r.Layout.top_next;
  check "3 spilled to edge" true (Tcam.read tcam 8 = Tcam.Used 3)

let test_dirty_delete () =
  let graph, tcam, st, algo = setup ~delete_mode:Separated.Dirty () in
  let ops = exec graph tcam algo (`Del 1) in
  check_int "one op" 1 (List.length ops);
  check "hole inside bottom" true (Tcam.read tcam 1 = Tcam.Free);
  let r = Separated.regions st in
  check_int "count dropped" 2 r.Layout.bottom_count;
  check_int "edge unchanged" 3 r.Layout.bottom_next

let test_balance_delete_bottom () =
  let graph, tcam, st, algo = setup ~delete_mode:Separated.Balance () in
  (* Delete entry 0 at the very bottom: the hole must migrate to the
     region's middle edge.  Entry 1 depends on 2 above, but moving any
     entry down is always legal here; the farthest legal mover is 2. *)
  let ops = exec graph tcam algo (`Del 0) in
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
  let r = Separated.regions st in
  check_int "count dropped" 2 r.Layout.bottom_count;
  check_int "edge shrank" 2 r.Layout.bottom_next;
  check "edge slot returned to pool" true (Tcam.read tcam 2 = Tcam.Free);
  check "extra movement happened" true (List.length ops >= 2)

let test_balance_delete_top () =
  let graph, tcam, st, algo = setup ~delete_mode:Separated.Balance () in
  let ops = exec graph tcam algo (`Del 5) in
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
  let r = Separated.regions st in
  check_int "top count dropped" 2 r.Layout.top_count;
  check_int "top edge grew" 9 r.Layout.top_next;
  check "slot returned to pool" true (Tcam.read tcam 9 = Tcam.Free);
  check "movement happened" true (List.length ops >= 2)

let test_balance_delete_at_edge_is_cheap () =
  let graph, tcam, _st, algo = setup ~delete_mode:Separated.Balance () in
  (* Deleting the entry already at the bottom edge costs no movements. *)
  let ops = exec graph tcam algo (`Del 2) in
  check_int "erase only" 1 (List.length ops)

let test_middle_exhaustion_fallback () =
  (* Fill the middle, then keep inserting: the scheduler must degrade
     gracefully and stay correct. *)
  let graph, tcam, _st, algo = setup () in
  let prev = ref 2 in
  for id = 20 to 25 do
    ignore (exec graph tcam algo (`Ins (id, [ 3 ], [ !prev ])));
    prev := id
  done;
  check "invariant after fill" true (Tcam.check_dag_order tcam graph = Ok ());
  check_int "table full" 12 (Tcam.used_count tcam)

let test_random_mixed_stream_stays_valid () =
  let rng = Rng.create ~seed:888 in
  List.iter
    (fun delete_mode ->
      let graph, tcam, st, algo = setup ~delete_mode () in
      let next = ref 100 in
      for _ = 1 to 60 do
        let ids = Tcam.used_ids tcam in
        let n_ids = List.length ids in
        if (Rng.chance rng 0.45 && n_ids > 2) || Tcam.free_count tcam = 0 then
          ignore (exec graph tcam algo (`Del (List.nth ids (Rng.int rng n_ids))))
        else begin
          let id = !next in
          incr next;
          let x = List.nth ids (Rng.int rng n_ids) in
          let y = List.nth ids (Rng.int rng n_ids) in
          let deps, dependents =
            if x = y then ([ x ], [])
            else if Topo.reachable graph x y then ([ y ], [ x ])
            else if Topo.reachable graph y x then ([ x ], [ y ])
            else
              let ax = Option.get (Tcam.addr_of tcam x)
              and ay = Option.get (Tcam.addr_of tcam y) in
              if ax < ay then ([ y ], [ x ]) else ([ x ], [ y ])
          in
          ignore (exec graph tcam algo (`Ins (id, deps, dependents)))
        end;
        check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
        (* Both maintained metric stores must stay truthful throughout. *)
        for a = 0 to Tcam.size tcam - 1 do
          check "up store truthful" true
            (Store.get (Separated.up_store st) a
            = Metric.compute Dir.Up graph tcam ~addr:a);
          check "down store truthful" true
            (Store.get (Separated.down_store st) a
            = Metric.compute Dir.Down graph tcam ~addr:a)
        done
      done)
    [ Separated.Dirty; Separated.Balance ]

let suite =
  [
    ( "separated",
      [
        Alcotest.test_case "straddling goes middle" `Quick test_straddling_goes_middle;
        Alcotest.test_case "balance rule picks smaller side" `Quick
          test_balance_rule_prefers_smaller_side;
        Alcotest.test_case "bottom chain clamps at edge" `Quick test_bottom_region_chain;
        Alcotest.test_case "top chain descends" `Quick test_top_region_chain_descends;
        Alcotest.test_case "dirty delete" `Quick test_dirty_delete;
        Alcotest.test_case "balance delete bottom" `Quick test_balance_delete_bottom;
        Alcotest.test_case "balance delete top" `Quick test_balance_delete_top;
        Alcotest.test_case "balance delete at edge" `Quick test_balance_delete_at_edge_is_cheap;
        Alcotest.test_case "middle exhaustion fallback" `Quick test_middle_exhaustion_fallback;
        Alcotest.test_case "random mixed stream" `Quick test_random_mixed_stream_stays_valid;
      ] );
  ]
