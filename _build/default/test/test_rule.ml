open Fastrule

let check = Alcotest.(check bool)

let rule ~id ?(prio = 10) ?(action = Rule.Drop) s =
  (* Small synthetic rules over an 8-bit header for readability. *)
  Rule.make ~id ~field:(Ternary.of_string s) ~action ~priority:prio

let test_overlaps_subsumes () =
  let broad = rule ~id:0 "1*******" and narrow = rule ~id:1 "10101010" in
  check "overlap" true (Rule.overlaps broad narrow);
  check "subsumes" true (Rule.subsumes broad narrow);
  check "not reverse" false (Rule.subsumes narrow broad);
  let other = rule ~id:2 "0*******" in
  check "disjoint" false (Rule.overlaps broad other)

let test_conflicts () =
  let a = rule ~id:0 ~action:Rule.Drop "1*******" in
  let b = rule ~id:1 ~action:(Rule.Forward 2) "10******" in
  let c = rule ~id:2 ~action:Rule.Drop "11******" in
  check "different action conflicts" true (Rule.conflicts a b);
  check "same action no conflict" false (Rule.conflicts a c);
  check "disjoint no conflict" false
    (Rule.conflicts b (rule ~id:3 ~action:Rule.Drop "0*******"))

let test_equal_action () =
  check "fwd eq" true (Rule.equal_action (Rule.Forward 3) (Rule.Forward 3));
  check "fwd neq" false (Rule.equal_action (Rule.Forward 3) (Rule.Forward 4));
  check "drop/ctrl" false (Rule.equal_action Rule.Drop Rule.Controller);
  check "ctrl eq" true (Rule.equal_action Rule.Controller Rule.Controller)

let test_matches_packet () =
  let spec =
    {
      Header.wildcard with
      Header.proto = Ternary.exact_of_int64 ~width:8 17L;
    }
  in
  let r =
    Rule.make ~id:9 ~field:(Header.pack spec) ~action:Rule.Drop ~priority:1
  in
  let p =
    {
      Header.p_src_ip = 1L;
      p_dst_ip = 2L;
      p_src_port = 3;
      p_dst_port = 4;
      p_proto = 17;
    }
  in
  check "udp matches" true (Rule.matches_packet r p);
  check "tcp does not" false (Rule.matches_packet r { p with Header.p_proto = 6 })

let suite =
  [
    ( "rule",
      [
        Alcotest.test_case "overlaps/subsumes" `Quick test_overlaps_subsumes;
        Alcotest.test_case "conflicts" `Quick test_conflicts;
        Alcotest.test_case "equal_action" `Quick test_equal_action;
        Alcotest.test_case "matches_packet" `Quick test_matches_packet;
      ] );
  ]
