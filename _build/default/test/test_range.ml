open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let members_of_cover cover ~width =
  (* Exhaustive membership over small widths. *)
  List.init (1 lsl width) (fun v ->
      List.exists (fun t -> Ternary.matches_value t [| Int64.of_int v |]) cover)

let test_exact_cover_small_widths () =
  (* Every interval over 1..8-bit fields is covered exactly. *)
  for width = 1 to 8 do
    let top = (1 lsl width) - 1 in
    for lo = 0 to top do
      for hi = lo to top do
        let cover = Range.expand ~width ~lo ~hi in
        let mem = members_of_cover cover ~width in
        List.iteri
          (fun v inside ->
            if inside <> (v >= lo && v <= hi) then
              Alcotest.failf "w=%d [%d,%d]: value %d wrong" width lo hi v)
          mem
      done
    done
  done;
  check "exhaustive cover" true true

let test_cover_disjoint () =
  (* The blocks are pairwise disjoint. *)
  let cover = Range.expand ~width:8 ~lo:3 ~hi:200 in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b -> if i < j then check "disjoint" false (Ternary.overlaps a b))
        cover)
    cover

let test_minimality_spots () =
  (* Known covers. *)
  check_int "full range is one prefix" 1 (Range.cover_size ~width:16 ~lo:0 ~hi:65535);
  check_int "single value" 1 (Range.cover_size ~width:16 ~lo:42 ~hi:42);
  check_int "aligned block" 1 (Range.cover_size ~width:16 ~lo:1024 ~hi:2047);
  (* The classic worst case [1, 2^w - 2]. *)
  check_int "worst case w=8" (Range.max_cover_size ~width:8)
    (Range.cover_size ~width:8 ~lo:1 ~hi:254);
  check_int "worst case w=16" (Range.max_cover_size ~width:16)
    (Range.cover_size ~width:16 ~lo:1 ~hi:65534);
  (* >=1024 (ephemeral ports) is cheap. *)
  check_int "1024-65535" 6 (Range.cover_size ~width:16 ~lo:1024 ~hi:65535)

let test_worst_case_bound_random () =
  let rng = Rng.create ~seed:31 in
  for _ = 1 to 500 do
    let lo = Rng.int rng 65536 in
    let hi = Rng.int_in rng lo 65535 in
    let c = Range.cover_size ~width:16 ~lo ~hi in
    check "within bound" true (c >= 1 && c <= Range.max_cover_size ~width:16)
  done

let test_bad_args () =
  Alcotest.check_raises "inverted" (Invalid_argument "Range: interval out of bounds")
    (fun () -> ignore (Range.expand ~width:8 ~lo:5 ~hi:4));
  Alcotest.check_raises "too wide" (Invalid_argument "Range: width out of (0,62]")
    (fun () -> ignore (Range.expand ~width:63 ~lo:0 ~hi:1));
  Alcotest.check_raises "overflow" (Invalid_argument "Range: interval out of bounds")
    (fun () -> ignore (Range.expand ~width:4 ~lo:0 ~hi:16))

let test_expand_five_tuple () =
  let spec =
    { Header.wildcard with Header.proto = Ternary.exact_of_int64 ~width:8 6L }
  in
  let expanded = Range.expand_five_tuple ~dst_range:(1024, 65535) spec in
  check_int "six siblings" 6 (List.length expanded);
  (* Disjoint and same proto. *)
  let packed = List.map Header.pack expanded in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b -> if i < j then check "siblings disjoint" false (Ternary.overlaps a b))
        packed)
    packed;
  (* A packet in the range matches exactly one sibling; below the range, none. *)
  let pkt port =
    { Header.p_src_ip = 1L; p_dst_ip = 2L; p_src_port = 7; p_dst_port = port; p_proto = 6 }
  in
  let hits port =
    List.length
      (List.filter (fun f -> Ternary.matches_value f (Header.packet_bits (pkt port))) packed)
  in
  check_int "in range" 1 (hits 8080);
  check_int "boundary lo" 1 (hits 1024);
  check_int "below" 0 (hits 1023);
  (* Both ranges at once multiply. *)
  let both = Range.expand_five_tuple ~src_range:(0, 1023) ~dst_range:(1024, 65535) spec in
  check_int "product" 6 (List.length both)

let suite =
  [
    ( "range",
      [
        Alcotest.test_case "exact cover (exhaustive small)" `Quick test_exact_cover_small_widths;
        Alcotest.test_case "blocks disjoint" `Quick test_cover_disjoint;
        Alcotest.test_case "known covers & worst case" `Quick test_minimality_spots;
        Alcotest.test_case "random within bound" `Quick test_worst_case_bound_random;
        Alcotest.test_case "bad arguments" `Quick test_bad_args;
        Alcotest.test_case "five-tuple expansion" `Quick test_expand_five_tuple;
      ] );
  ]
