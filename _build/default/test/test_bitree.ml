open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Fenwick_sum ------------------------------------------------------ *)

let test_sum_basic () =
  let t = Fenwick_sum.create 10 in
  Fenwick_sum.add t 3 5;
  Fenwick_sum.add t 7 2;
  check_int "prefix 2" 0 (Fenwick_sum.prefix_sum t 2);
  check_int "prefix 3" 5 (Fenwick_sum.prefix_sum t 3);
  check_int "prefix 9" 7 (Fenwick_sum.prefix_sum t 9);
  check_int "range 4..7" 2 (Fenwick_sum.range_sum t 4 7);
  check_int "total" 7 (Fenwick_sum.total t)

let test_sum_set_get () =
  let t = Fenwick_sum.create 5 in
  Fenwick_sum.set t 2 10;
  check_int "get" 10 (Fenwick_sum.get t 2);
  Fenwick_sum.set t 2 3;
  check_int "re-set" 3 (Fenwick_sum.get t 2);
  check_int "total" 3 (Fenwick_sum.total t)

let test_sum_vs_naive () =
  let rng = Rng.create ~seed:42 in
  let n = 64 in
  let t = Fenwick_sum.create n in
  let reference = Array.make n 0 in
  for _ = 1 to 500 do
    let i = Rng.int rng n in
    let d = Rng.int_in rng (-10) 10 in
    Fenwick_sum.add t i d;
    reference.(i) <- reference.(i) + d;
    let lo = Rng.int rng n in
    let hi = Rng.int_in rng lo (n - 1) in
    let expect = ref 0 in
    for k = lo to hi do
      expect := !expect + reference.(k)
    done;
    check_int "range matches naive" !expect (Fenwick_sum.range_sum t lo hi)
  done

let test_sum_empty_and_bounds () =
  let t = Fenwick_sum.create 0 in
  check_int "empty total" 0 (Fenwick_sum.total t);
  let t = Fenwick_sum.create 4 in
  check_int "inverted range" 0 (Fenwick_sum.range_sum t 3 1);
  Alcotest.check_raises "oob" (Invalid_argument "Fenwick_sum.add: index out of range")
    (fun () -> Fenwick_sum.add t 4 1)

(* --- Min_tree --------------------------------------------------------- *)

let test_min_basic () =
  let t = Min_tree.create 8 ~init:5 in
  Min_tree.set t 3 1;
  Min_tree.set t 6 0;
  (match Min_tree.min_in t ~lo:0 ~hi:7 with
  | Some (i, v) ->
      check_int "argmin" 6 i;
      check_int "min" 0 v
  | None -> Alcotest.fail "range non-empty");
  (match Min_tree.min_in t ~lo:0 ~hi:5 with
  | Some (i, v) ->
      check_int "argmin left" 3 i;
      check_int "min left" 1 v
  | None -> Alcotest.fail "range non-empty");
  check "empty range" true (Min_tree.min_in t ~lo:5 ~hi:4 = None)

let test_min_tie_prefers_high () =
  let t = Min_tree.create 16 ~init:7 in
  Min_tree.set t 2 3;
  Min_tree.set t 9 3;
  Min_tree.set t 12 3;
  (match Min_tree.min_in t ~lo:0 ~hi:15 with
  | Some (i, _) -> check_int "highest tie wins" 12 i
  | None -> Alcotest.fail "non-empty");
  match Min_tree.min_in t ~lo:0 ~hi:10 with
  | Some (i, _) -> check_int "highest tie in subrange" 9 i
  | None -> Alcotest.fail "non-empty"

let test_min_all_equal () =
  let t = Min_tree.create 8 ~init:max_int in
  match Min_tree.min_in t ~lo:2 ~hi:6 with
  | Some (i, v) ->
      check_int "max_int value" max_int v;
      check_int "highest index" 6 i
  | None -> Alcotest.fail "non-empty"

let test_min_updates_both_directions () =
  let t = Min_tree.create 8 ~init:4 in
  Min_tree.set t 5 1;
  check_int "decreased" 1 (Option.get (Min_tree.min_value_in t ~lo:0 ~hi:7));
  Min_tree.set t 5 9;
  (* The old minimum must not linger after the value went back up. *)
  check_int "increased back" 4 (Option.get (Min_tree.min_value_in t ~lo:0 ~hi:7));
  check_int "get" 9 (Min_tree.get t 5)

let test_min_vs_naive () =
  let rng = Rng.create ~seed:4242 in
  let n = 100 in
  let t = Min_tree.create n ~init:50 in
  let reference = Array.make n 50 in
  for _ = 1 to 1000 do
    let i = Rng.int rng n in
    let v = Rng.int rng 100 in
    Min_tree.set t i v;
    reference.(i) <- v;
    let lo = Rng.int rng n in
    let hi = Rng.int_in rng lo (n - 1) in
    let best_v = ref max_int and best_i = ref (-1) in
    for k = lo to hi do
      if reference.(k) <= !best_v then begin
        best_v := reference.(k);
        best_i := k
      end
    done;
    match Min_tree.min_in t ~lo ~hi with
    | None -> Alcotest.fail "non-empty range"
    | Some (i, v) ->
        check_int "value matches naive" !best_v v;
        check_int "argmin matches naive (high ties)" !best_i i
  done

let test_min_clamping () =
  let t = Min_tree.create 4 ~init:2 in
  Min_tree.set t 0 1;
  match Min_tree.min_in t ~lo:(-5) ~hi:99 with
  | Some (i, v) ->
      check_int "clamped argmin" 0 i;
      check_int "clamped min" 1 v
  | None -> Alcotest.fail "non-empty"

let test_min_snapshot () =
  let t = Min_tree.create 4 ~init:0 in
  Min_tree.set t 1 7;
  Alcotest.(check (array int)) "to_array" [| 0; 7; 0; 0 |] (Min_tree.to_array t)

(* --- Segment_tree ------------------------------------------------------ *)

let test_seg_basic () =
  let t = Segment_tree.create 8 ~init:5 in
  Segment_tree.set t 3 1;
  Segment_tree.set t 6 0;
  (match Segment_tree.min_in t ~lo:0 ~hi:7 with
  | Some (i, v) ->
      check_int "argmin" 6 i;
      check_int "min" 0 v
  | None -> Alcotest.fail "non-empty");
  check "empty range" true (Segment_tree.min_in t ~lo:5 ~hi:4 = None);
  check_int "get" 1 (Segment_tree.get t 3)

let test_seg_matches_min_tree () =
  (* The two structures implement the same abstract interface, including
     the highest-index tie-break: drive them in lockstep. *)
  let rng = Rng.create ~seed:9191 in
  List.iter
    (fun n ->
      let st = Segment_tree.create n ~init:13 in
      let mt = Min_tree.create n ~init:13 in
      for _ = 1 to 400 do
        let i = Rng.int rng n and v = Rng.int rng 40 in
        Segment_tree.set st i v;
        Min_tree.set mt i v;
        let lo = Rng.int rng n in
        let hi = Rng.int_in rng lo (n - 1) in
        check "same answer" true
          (Segment_tree.min_in st ~lo ~hi = Min_tree.min_in mt ~lo ~hi)
      done;
      Alcotest.(check (array int))
        "same contents" (Min_tree.to_array mt) (Segment_tree.to_array st))
    [ 1; 7; 8; 33; 100 ]

let test_seg_non_pow2 () =
  (* Sizes straddling the power-of-two padding must never leak padding
     cells into answers. *)
  let t = Segment_tree.create 5 ~init:max_int in
  match Segment_tree.min_in t ~lo:0 ~hi:4 with
  | Some (i, v) ->
      check_int "real cell" 4 i;
      check_int "max_int ok" max_int v;
      check "in range" true (i >= 0 && i < 5)
  | None -> Alcotest.fail "non-empty"

let test_seg_bounds () =
  let t = Segment_tree.create 4 ~init:0 in
  Alcotest.check_raises "oob set"
    (Invalid_argument "Segment_tree.set: index out of range") (fun () ->
      Segment_tree.set t 4 1);
  check "clamped query" true (Segment_tree.min_in t ~lo:(-3) ~hi:99 <> None)

let suite =
  [
    ( "fenwick-sum",
      [
        Alcotest.test_case "basic sums" `Quick test_sum_basic;
        Alcotest.test_case "set/get" `Quick test_sum_set_get;
        Alcotest.test_case "random vs naive" `Quick test_sum_vs_naive;
        Alcotest.test_case "empty & bounds" `Quick test_sum_empty_and_bounds;
      ] );
    ( "min-tree",
      [
        Alcotest.test_case "basic min/argmin" `Quick test_min_basic;
        Alcotest.test_case "ties prefer high index" `Quick test_min_tie_prefers_high;
        Alcotest.test_case "all-max_int range" `Quick test_min_all_equal;
        Alcotest.test_case "update up and down" `Quick test_min_updates_both_directions;
        Alcotest.test_case "random vs naive" `Quick test_min_vs_naive;
        Alcotest.test_case "range clamping" `Quick test_min_clamping;
        Alcotest.test_case "snapshot" `Quick test_min_snapshot;
      ] );
    ( "segment-tree",
      [
        Alcotest.test_case "basic" `Quick test_seg_basic;
        Alcotest.test_case "lockstep with min-tree" `Quick test_seg_matches_min_tree;
        Alcotest.test_case "non-power-of-two sizes" `Quick test_seg_non_pow2;
        Alcotest.test_case "bounds" `Quick test_seg_bounds;
      ] );
  ]
