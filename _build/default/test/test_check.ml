open Fastrule

let check = Alcotest.(check bool)

let setup () =
  let graph, tcam = Fixtures.fig3_with_request () in
  (graph, tcam)

let test_valid_sequence_accepted () =
  let graph, tcam = setup () in
  let fr = Greedy.create ~graph ~tcam () in
  let algo = Greedy.algo fr in
  match algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 5 ] ~dependents:[ 6 ] with
  | Error e -> Alcotest.failf "schedule: %s" e
  | Ok ops ->
      check "verifies" true (Check.sequence graph tcam ops = Ok ());
      check "apply_verified" true (Check.apply_verified graph tcam ops = Ok ());
      check "applied" true (Tcam.read tcam 0x3 = Tcam.Used 9)

let test_clobber_rejected () =
  let graph, tcam = setup () in
  (* Writing 9 over entry 5 without moving 5 first. *)
  let bad = [ Op.insert ~rule_id:9 ~addr:0x3 ] in
  check "clobber detected" true (Result.is_error (Check.sequence graph tcam bad));
  (* The TCAM is untouched by a failed verification. *)
  check "tcam untouched" true (Tcam.read tcam 0x3 = Tcam.Used 5)

let test_order_violation_rejected () =
  let graph, tcam = setup () in
  (* Moving entry 5 above its dependency at 0x5 is fine; moving its
     dependency 7 below 5 is not. *)
  let bad = [ Op.insert ~rule_id:7 ~addr:0x0 ] in
  check "order violation detected" true
    (Result.is_error (Check.sequence graph tcam bad))

let test_intermediate_states_checked () =
  let graph, tcam = setup () in
  (* Valid final state but an op order that clobbers on the way: the
     paper-order chain (new entry first) must be rejected because it
     overwrites live entries. *)
  let paper_order =
    [
      Op.insert ~rule_id:9 ~addr:0x3;
      Op.insert ~rule_id:5 ~addr:0x4;
      Op.insert ~rule_id:4 ~addr:0x6;
      Op.insert ~rule_id:2 ~addr:0x9;
    ]
  in
  check "discovery order clobbers" true
    (Result.is_error (Check.sequence graph tcam paper_order))

let test_delete_checked () =
  let graph, tcam = setup () in
  check "delete fine" true
    (Check.sequence graph tcam [ Op.delete ~addr:0x1 ] = Ok ())

let test_apply_verified_rolls_nothing () =
  let graph, tcam = setup () in
  let before = Tcam.copy tcam in
  let bad = [ Op.insert ~rule_id:9 ~addr:0x3 ] in
  (match Check.apply_verified graph tcam bad with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error _ -> ());
  for a = 0 to Tcam.size tcam - 1 do
    check "slot unchanged" true (Tcam.read tcam a = Tcam.read before a)
  done

let suite =
  [
    ( "check",
      [
        Alcotest.test_case "valid sequence accepted" `Quick test_valid_sequence_accepted;
        Alcotest.test_case "clobber rejected" `Quick test_clobber_rejected;
        Alcotest.test_case "order violation rejected" `Quick test_order_violation_rejected;
        Alcotest.test_case "intermediate states" `Quick test_intermediate_states_checked;
        Alcotest.test_case "delete" `Quick test_delete_checked;
        Alcotest.test_case "failed verify leaves tcam intact" `Quick
          test_apply_verified_rolls_nothing;
      ] );
  ]
