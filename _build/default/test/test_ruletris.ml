open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok = function
  | Ok x -> x
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let test_fig3_optimal_length () =
  (* On the Fig. 3 instance the optimum is the same 4-op sequence the
     greedy finds. *)
  let graph, tcam = Fixtures.fig3_with_request () in
  let algo = Ruletris.make ~graph ~tcam in
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 5 ] ~dependents:[ 6 ]) in
  check_int "length" 4 (List.length ops);
  Tcam.apply_sequence tcam ops;
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ())

let test_prefers_fewer_moves_than_greedy_can () =
  (* A window where the nearest-chain metric misleads the greedy:
     occupant at the low address has a short chain bound, the one above
     has direct access to free space.  The DP must find the 2-op path. *)
  let tcam = Tcam.create ~size:6 in
  (* 0:a 1:b 2:c 3..5 free;  a->b (a below b). *)
  List.iter (fun (id, addr) -> Tcam.write tcam ~rule_id:id ~addr)
    [ (0, 0); (1, 1); (2, 2) ];
  let graph = Graph.create () in
  List.iter (Graph.add_node graph) [ 0; 1; 2 ];
  Graph.add_edge graph 0 1;
  (* Insert f below entry 0: must displace 0; 0's window is (addr, 1];
     displacing 1 then has the free top.  Optimal = 3 inserts. *)
  Graph.add_node graph 9;
  Graph.add_edge graph 9 0;
  let algo = Ruletris.make ~graph ~tcam in
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 0 ] ~dependents:[] ) in
  Tcam.apply_sequence tcam ops;
  check "invariant" true (Tcam.check_dag_order tcam graph = Ok ());
  check_int "optimal 3 ops" 3 (List.length ops)

let test_direct_free_slot () =
  let tcam = Tcam.create ~size:4 in
  Tcam.write tcam ~rule_id:0 ~addr:0;
  let graph = Graph.create () in
  Graph.add_node graph 0;
  Graph.add_node graph 9;
  let algo = Ruletris.make ~graph ~tcam in
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[] ~dependents:[ 0 ]) in
  check_int "one op" 1 (List.length ops)

let test_min_cost_hook () =
  let graph, tcam = Fixtures.fig3 () in
  (* Freeing 0x6 costs moving entry 2 to free space: 1 move; +1 for the new
     entry = 2 writes. *)
  check "cost window {0x6}" true
    (Ruletris.min_cost_in_window ~graph tcam ~lo:0x6 ~hi:0x6 = Some 2);
  (* A window containing free space costs just the new write. *)
  check "free window" true
    (Ruletris.min_cost_in_window ~graph tcam ~lo:0x6 ~hi:0x9 = Some 1)

let test_unreachable () =
  (* Full TCAM: no sequence exists. *)
  let tcam = Tcam.create ~size:2 in
  Tcam.write tcam ~rule_id:0 ~addr:0;
  Tcam.write tcam ~rule_id:1 ~addr:1;
  let graph = Graph.create () in
  List.iter (Graph.add_node graph) [ 0; 1; 9 ];
  let algo = Ruletris.make ~graph ~tcam in
  check "no room" true
    (Result.is_error (algo.Algo.schedule_insert ~rule_id:9 ~deps:[] ~dependents:[]))

let test_delete () =
  let graph, tcam = Fixtures.fig3 () in
  let algo = Ruletris.make ~graph ~tcam in
  let ops = ok (algo.Algo.schedule_delete ~rule_id:4) in
  check_int "one op" 1 (List.length ops);
  Tcam.apply_sequence tcam ops;
  check "gone" true (Tcam.addr_of tcam 4 = None)

let test_optimality_vs_greedy_random () =
  (* DP length <= greedy length on random instances (optimality witness). *)
  let rng = Rng.create ~seed:123 in
  for _ = 1 to 30 do
    let graph, tcam = Fixtures.random_scenario rng ~size:24 ~k:18 ~edge_prob:0.1 in
    Graph.add_node graph 99;
    (* Random satisfiable request: below some entry. *)
    let ids = Tcam.used_ids tcam in
    let dep = List.nth ids (Rng.int rng (List.length ids)) in
    Graph.add_edge graph 99 dep;
    let greedy =
      Greedy.algo (Greedy.create ~backend:Store.Array_backend ~graph ~tcam ())
    in
    let dp = Ruletris.make ~graph ~tcam in
    let g_ops = ok (greedy.Algo.schedule_insert ~rule_id:99 ~deps:[ dep ] ~dependents:[]) in
    let d_ops = ok (dp.Algo.schedule_insert ~rule_id:99 ~deps:[ dep ] ~dependents:[]) in
    check "dp <= greedy" true (List.length d_ops <= List.length g_ops);
    (* Both sequences are valid on their own copy. *)
    let t1 = Tcam.copy tcam in
    Tcam.apply_sequence t1 g_ops;
    check "greedy valid" true (Tcam.check_dag_order t1 graph = Ok ());
    let t2 = Tcam.copy tcam in
    Tcam.apply_sequence t2 d_ops;
    check "dp valid" true (Tcam.check_dag_order t2 graph = Ok ())
  done

let suite =
  [
    ( "ruletris",
      [
        Alcotest.test_case "fig3 optimal" `Quick test_fig3_optimal_length;
        Alcotest.test_case "forced chain" `Quick test_prefers_fewer_moves_than_greedy_can;
        Alcotest.test_case "direct free slot" `Quick test_direct_free_slot;
        Alcotest.test_case "min-cost hook" `Quick test_min_cost_hook;
        Alcotest.test_case "unreachable" `Quick test_unreachable;
        Alcotest.test_case "delete" `Quick test_delete;
        Alcotest.test_case "optimality vs greedy" `Quick test_optimality_vs_greedy_random;
      ] );
  ]
