open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok = function
  | Ok x -> x
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* Three entries packed at the bottom of an 8-slot TCAM. *)
let setup () =
  let tcam = Tcam.create ~size:8 in
  List.iter (fun (id, a) -> Tcam.write tcam ~rule_id:id ~addr:a)
    [ (0, 0); (1, 1); (2, 2) ];
  Tcam.reset_counters tcam;
  (tcam, Naive.create ~tcam)

let test_insert_on_top () =
  let tcam, st = setup () in
  let algo = Naive.algo st in
  (* No constraints: lands above everything, one op. *)
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[] ~dependents:[ 2 ]) in
  check_int "single op" 1 (List.length ops);
  Tcam.apply_sequence tcam ops;
  algo.Algo.after_apply ops;
  check "placed at 3" true (Tcam.read tcam 3 = Tcam.Used 9);
  check "priority assigned" true (Naive.priority_of st 9 <> None)

let test_insert_shifts_up () =
  let tcam, st = setup () in
  let algo = Naive.algo st in
  (* Must sit below entry 1 and above entry 0: displaces 1 and 2 upward. *)
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 1 ] ~dependents:[ 0 ]) in
  check_int "three ops" 3 (List.length ops);
  Tcam.apply_sequence tcam ops;
  algo.Algo.after_apply ops;
  check "9 at 1" true (Tcam.read tcam 1 = Tcam.Used 9);
  check "1 at 2" true (Tcam.read tcam 2 = Tcam.Used 1);
  check "2 at 3" true (Tcam.read tcam 3 = Tcam.Used 2);
  (* Priority order respected. *)
  let p = Naive.priority_of st in
  check "prio between" true
    (Option.get (p 9) > Option.get (p 0) && Option.get (p 9) < Option.get (p 1))

let test_insert_uses_nearest_hole () =
  let tcam, st = setup () in
  let algo = Naive.algo st in
  (* Free a hole below: delete entry 0, then insert below 2; the shift
     should go down into the hole (1 move) rather than up (1 move) — tie
     goes up, so force a clear case: insert below entry 1 after freeing 0. *)
  let del = ok (algo.Algo.schedule_delete ~rule_id:0) in
  Tcam.apply_sequence tcam del;
  algo.Algo.after_apply del;
  let ops = ok (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 1 ] ~dependents:[] ) in
  Tcam.apply_sequence tcam ops;
  algo.Algo.after_apply ops;
  (* 9 must end up below 1 wherever the shift went. *)
  let a9 = Option.get (Tcam.addr_of tcam 9) in
  let a1 = Option.get (Tcam.addr_of tcam 1) in
  check "below dep" true (a9 < a1);
  check "cheap: at most 2 ops" true (List.length ops <= 2)

let test_delete () =
  let tcam, st = setup () in
  let algo = Naive.algo st in
  let ops = ok (algo.Algo.schedule_delete ~rule_id:1) in
  check_int "one op" 1 (List.length ops);
  Tcam.apply_sequence tcam ops;
  algo.Algo.after_apply ops;
  check "erased" true (Tcam.read tcam 1 = Tcam.Free);
  check "priority dropped" true (Naive.priority_of st 1 = None)

let test_renumber_on_gap_exhaustion () =
  let tcam = Tcam.create ~size:64 in
  Tcam.write tcam ~rule_id:0 ~addr:0;
  Tcam.write tcam ~rule_id:1 ~addr:1;
  let st = Naive.create ~tcam in
  let algo = Naive.algo st in
  (* Repeatedly insert between the two newest neighbours: midpoints shrink
     the gap to nothing and force a renumbering pass. *)
  let below = ref 0 and above = ref 1 in
  for id = 2 to 30 do
    let ops =
      ok (algo.Algo.schedule_insert ~rule_id:id ~deps:[ !above ] ~dependents:[ !below ])
    in
    Tcam.apply_sequence tcam ops;
    algo.Algo.after_apply ops;
    below := id
  done;
  check "renumbered at least once" true (Naive.renumber_count st > 0);
  (* Order still consistent: every inserted id sits between its bounds. *)
  let a id = Option.get (Tcam.addr_of tcam id) in
  check "last below above" true (a 30 < a 1 && a 30 > a 0)

let test_full_table_error () =
  let tcam = Tcam.create ~size:2 in
  Tcam.write tcam ~rule_id:0 ~addr:0;
  Tcam.write tcam ~rule_id:1 ~addr:1;
  let st = Naive.create ~tcam in
  let algo = Naive.algo st in
  check "full" true
    (Result.is_error (algo.Algo.schedule_insert ~rule_id:9 ~deps:[] ~dependents:[]))

let test_errors () =
  let _tcam, st = setup () in
  let algo = Naive.algo st in
  check "duplicate id" true
    (Result.is_error (algo.Algo.schedule_insert ~rule_id:1 ~deps:[] ~dependents:[]));
  check "missing constraint" true
    (Result.is_error (algo.Algo.schedule_insert ~rule_id:9 ~deps:[ 77 ] ~dependents:[]));
  check "delete missing" true (Result.is_error (algo.Algo.schedule_delete ~rule_id:42))

let suite =
  [
    ( "naive",
      [
        Alcotest.test_case "insert on top" `Quick test_insert_on_top;
        Alcotest.test_case "insert shifts up" `Quick test_insert_shifts_up;
        Alcotest.test_case "insert uses nearest hole" `Quick test_insert_uses_nearest_hole;
        Alcotest.test_case "delete" `Quick test_delete;
        Alcotest.test_case "renumber on gap exhaustion" `Quick test_renumber_on_gap_exhaustion;
        Alcotest.test_case "full table error" `Quick test_full_table_error;
        Alcotest.test_case "request errors" `Quick test_errors;
      ] );
  ]
